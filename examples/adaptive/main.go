// Adaptive: a query executed under the feedback controller seeds its
// parallel degree from the calibration-fit DOP model, then retunes worker
// count and readahead mid-flight from live queue-depth, throughput, and
// pool-pressure signals — growing only through the broker lease. This
// example runs the same cold range-aggregate at every static degree and
// once adaptively, and prints the controller's decision trail: the
// adaptive run should land within a few percent of whichever static
// degree happens to win, without being told which one that is.
package main

import (
	"fmt"
	"log"
	"os"
	"strings"
	"text/tabwriter"

	"pioqo"
)

func main() {
	w := tabwriter.NewWriter(os.Stdout, 2, 0, 2, ' ', 0)
	fmt.Fprintln(w, "arm\tdegree\truntime\tpage reads")

	run := func(adaptive bool, degree int) *pioqo.System {
		sys := pioqo.New(pioqo.Config{
			Device:    pioqo.SSD,
			PoolPages: 1024,
			Adaptive:  adaptive,
			EventLog:  4096,
		})
		tab, err := sys.CreateTable("t", 400_000, 33, pioqo.WithSyntheticData())
		if err != nil {
			log.Fatal(err)
		}
		if _, err := sys.Calibrate(pioqo.CalibrationOptions{}); err != nil {
			log.Fatal(err)
		}
		q := pioqo.Query{Table: tab, Low: 0, High: 1999} // selective index range
		opts := []pioqo.QueryOption{pioqo.Cold()}
		arm := "adaptive"
		if !adaptive {
			opts = append(opts, pioqo.WithStaticDegree(degree))
			arm = fmt.Sprintf("static d%d", degree)
		}
		res, err := sys.Execute(q, opts...)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Fprintf(w, "%s\t%d\t%v\t%d\n", arm, res.Plan.Degree, res.Runtime, res.PageReads)
		return sys
	}

	for _, d := range []int{1, 4, 32} {
		run(false, d)
	}
	sys := run(true, 0)
	w.Flush()

	fmt.Println("\ncontroller decision trail:")
	for _, ev := range sys.EngineEvents() {
		if strings.HasPrefix(ev.Name, "adapt.") || strings.HasPrefix(ev.Name, "lease.") {
			fmt.Printf("  %-18s %s=%d %s=%d\n", ev.Name, ev.AName, ev.A, ev.BName, ev.B)
		}
	}
}
