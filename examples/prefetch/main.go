// Prefetch: reproduce §3.3 of the paper — asynchronous per-worker
// prefetching raises the device queue depth of an index scan without
// spending worker threads, and combining a few workers with deep prefetch
// matches many workers with none (Fig. 5).
package main

import (
	"fmt"
	"log"
	"os"
	"text/tabwriter"

	"pioqo"
)

func main() {
	sys := pioqo.New(pioqo.Config{Device: pioqo.SSD, PoolPages: 4096})
	tab, err := sys.CreateTable("T", 400_000, 33, pioqo.WithSyntheticData())
	if err != nil {
		log.Fatal(err)
	}
	// A 3% range scan through the index: ~12,000 random page fetches.
	q := pioqo.Query{Table: tab, Low: 0, High: int64(0.03*400_000) - 1}

	run := func(degree, prefetch int) float64 {
		res, err := sys.ExecutePlan(q,
			pioqo.Plan{Method: pioqo.IndexScan, Degree: degree},
			pioqo.Cold(), pioqo.WithPrefetch(prefetch))
		if err != nil {
			log.Fatal(err)
		}
		return float64(res.Runtime) / 1e6 // ms
	}

	w := tabwriter.NewWriter(os.Stdout, 4, 0, 2, ' ', 0)
	fmt.Fprint(w, "workers\\prefetch")
	prefetches := []int{0, 1, 2, 4, 8, 16, 32}
	for _, p := range prefetches {
		fmt.Fprintf(w, "\tn=%d", p)
	}
	fmt.Fprintln(w)
	for _, degree := range []int{1, 2, 4, 8, 16, 32} {
		fmt.Fprintf(w, "%d", degree)
		for _, p := range prefetches {
			fmt.Fprintf(w, "\t%.1fms", run(degree, p))
		}
		fmt.Fprintln(w)
	}
	w.Flush()

	fmt.Println()
	w32 := run(32, 0)
	p4x32 := run(4, 32)
	fmt.Printf("32 workers, no prefetch:       %.1fms\n", w32)
	fmt.Printf("4 workers, prefetch depth 32:  %.1fms\n", p4x32)
	fmt.Println("A handful of workers with deep prefetch rivals a full worker fleet —")
	fmt.Println("the queue depth, not the thread count, is what the SSD responds to.")
}
