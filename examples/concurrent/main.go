// Concurrent: the paper's §4.3 closes with "when multiple queries are
// running on the system concurrently, the optimizer needs to pass a lower
// queue depth number to the QDTT model". This example runs a batch of
// queries together: the planner splits the device's beneficial queue depth
// across the batch, and the batch finishes far sooner than running the
// same queries back to back.
package main

import (
	"fmt"
	"log"
	"time"

	"pioqo"
)

func main() {
	sys := pioqo.New(pioqo.Config{Device: pioqo.SSD, PoolPages: 2048})
	tab, err := sys.CreateTable("events", 400_000, 33, pioqo.WithSyntheticData())
	if err != nil {
		log.Fatal(err)
	}
	if _, err := sys.Calibrate(pioqo.CalibrationOptions{}); err != nil {
		log.Fatal(err)
	}

	// Four disjoint range probes, each ~0.05% selectivity.
	var queries []pioqo.Query
	for i := 0; i < 4; i++ {
		lo := int64(i) * 100_000
		queries = append(queries, pioqo.Query{Table: tab, Low: lo, High: lo + 199})
	}

	// Back to back, each query planned with the whole device to itself.
	var serialTotal time.Duration
	for _, q := range queries {
		res, err := sys.Execute(q, pioqo.Cold())
		if err != nil {
			log.Fatal(err)
		}
		serialTotal += res.Runtime
		fmt.Printf("serial: %v in %v\n", res.Plan, res.Runtime)
	}

	// As one batch: the resource broker admits each query with a lease on
	// the shared queue-depth credits, buffer pool, and CPU workers; plans
	// are priced under the leased budget and credits freed by finished
	// queries are re-brokered to the admission queue.
	sys.FlushBufferPool()
	batch, err := sys.ExecuteConcurrent(queries, pioqo.Cold())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nconcurrent batch: queue budget %d per query\n", batch.QueueBudget)
	for i, r := range batch.Results {
		adm := batch.Admissions[i]
		fmt.Printf("  query %d: %v in %v (%d rows; budget %d, waited %v)\n",
			i, r.Plan, r.Runtime, r.Rows, adm.Budget, adm.Wait)
	}
	fmt.Printf("\nserial total:   %v\n", serialTotal)
	fmt.Printf("batch elapsed:  %v (%.1fx faster, %.0f MB/s sustained)\n",
		batch.Elapsed, float64(serialTotal)/float64(batch.Elapsed),
		batch.IOThroughputMBps)
}
