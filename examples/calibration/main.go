// Calibration: reproduce §4.4's comparison of the group-waiting (GW) and
// active-waiting (AW) calibration drivers. On an SSD the two agree; on a
// spindle array, queueing raises latency, GW's barrier drains the queue,
// and only AW measures the achievable parallel cost (Figs. 9-11). The §4.6
// early-stop control is also shown cutting HDD calibration short.
package main

import (
	"fmt"
	"log"
	"os"
	"text/tabwriter"

	"pioqo"
)

func main() {
	w := tabwriter.NewWriter(os.Stdout, 2, 0, 2, ' ', 0)
	for _, dev := range []pioqo.DeviceKind{pioqo.SSD, pioqo.RAID8} {
		gw := calibrateWith(dev, pioqo.GroupWait)
		aw := calibrateWith(dev, pioqo.ActiveWait)
		band := gw.Bands[len(gw.Bands)-1] // whole device

		fmt.Fprintf(w, "== %v, band %d pages ==\n", dev, band)
		fmt.Fprintln(w, "queue_depth\tGW_us/page\tAW_us/page\tGW-AW")
		for _, depth := range gw.Depths {
			g := gw.Model.PageCost(band, depth)
			a := aw.Model.PageCost(band, depth)
			fmt.Fprintf(w, "%d\t%.1f\t%.1f\t%+.1f\n", depth, g, a, g-a)
		}
		fmt.Fprintln(w)
	}
	w.Flush()

	fmt.Println("On SSD the barrier costs almost nothing (latency is flat up to the")
	fmt.Println("parallelism limit); on the RAID the group barrier drains the queue")
	fmt.Println("that keeps the spindles busy, so GW overestimates — AW is the safe")
	fmt.Println("general-purpose calibration driver, as the paper concludes.")

	// §4.6: the early-stop control ends calibration as soon as deeper
	// queues stop paying, which on a single spindle is immediately.
	fmt.Println()
	hdd := pioqo.New(pioqo.Config{Device: pioqo.HDD})
	cal, err := hdd.Calibrate(pioqo.CalibrationOptions{StopThreshold: 0.20})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("HDD calibration with T=20%%: stopped_early=%v after %v (%d reads)\n",
		cal.StoppedEarly, cal.Elapsed, cal.Reads)
	full, err := pioqo.New(pioqo.Config{Device: pioqo.HDD}).
		Calibrate(pioqo.CalibrationOptions{StopThreshold: -1})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("without the control:        %v (%d reads)\n", full.Elapsed, full.Reads)
}

// calibrateWith calibrates a fresh system of the given kind with the given
// driver, disabling early stop so all depths are measured on both devices.
func calibrateWith(dev pioqo.DeviceKind, m pioqo.CalibrationMethod) *pioqo.Calibration {
	sys := pioqo.New(pioqo.Config{Device: dev})
	cal, err := sys.Calibrate(pioqo.CalibrationOptions{
		Method:        m,
		Repetitions:   5,
		StopThreshold: -1,
	})
	if err != nil {
		log.Fatal(err)
	}
	return cal
}
