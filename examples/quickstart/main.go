// Quickstart: build a table on a simulated SSD, calibrate the QDTT cost
// model, and run the paper's probe query — first with a queue-depth-aware
// plan, then with the plan a depth-oblivious (DTT) optimizer would pick.
package main

import (
	"fmt"
	"log"

	"pioqo"
)

func main() {
	// A system is a single-table-or-more analytical engine over one
	// simulated device; everything below runs in deterministic virtual
	// time.
	sys := pioqo.New(pioqo.Config{Device: pioqo.SSD, PoolPages: 2048})

	// 400k rows, 33 per page — the paper's "typical" T33 shape. C2 is
	// uniform and indexed; C1 is the aggregated column.
	tab, err := sys.CreateTable("orders", 400_000, 33)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("table %q: %d rows on %d pages (%s)\n",
		tab.Name(), tab.Rows(), tab.Pages(), sys.DeviceName())

	// Calibration measures the device and produces the QDTT model: the
	// amortized cost of a page read as a function of band size AND queue
	// depth. This is the paper's §4.4 process (active waiting, M=3200).
	cal, err := sys.Calibrate(pioqo.CalibrationOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("calibrated %d bands x %d depths in %v of device time (%d reads)\n",
		len(cal.Bands), len(cal.Depths), cal.Elapsed, cal.Reads)

	// SELECT MAX(C1) FROM orders WHERE C2 BETWEEN 0 AND 799 — a 0.2%
	// selectivity range probe.
	q := pioqo.Query{Table: tab, Low: 0, High: 799}

	res, err := sys.Execute(q, pioqo.Cold())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nQDTT optimizer chose %v\n", res.Plan)
	fmt.Printf("  MAX(C1) = %d over %d rows in %v (%d page reads, %.0f MB/s)\n",
		res.Value, res.Rows, res.Runtime, res.PageReads, res.IOThroughputMBps)

	// The same query through the old, depth-oblivious optimizer: DTT sees
	// no I/O benefit in parallelism, so it stays serial and pays full
	// random-read latency for every row.
	old, err := sys.Execute(q, pioqo.Cold(),
		pioqo.WithPlanOptions(pioqo.PlanOptions{DepthOblivious: true}))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nDTT optimizer chose %v\n", old.Plan)
	fmt.Printf("  same answer (%d) in %v — %.1fx slower\n",
		old.Value, old.Runtime, float64(old.Runtime)/float64(res.Runtime))
}
