// Breakeven: reproduce the paper's central observation end to end — the
// selectivity at which a full table scan overtakes an index scan shifts
// dramatically to the right on an SSD once the scans run with intra-query
// parallelism, and barely moves on a spinning disk (Fig. 4 / Table 2).
package main

import (
	"fmt"
	"log"
	"math"

	"pioqo"
)

const (
	rows = 200_000
	rpp  = 33
)

func main() {
	for _, dev := range []pioqo.DeviceKind{pioqo.HDD, pioqo.SSD} {
		fmt.Printf("== %v ==\n", dev)
		np := breakEven(dev, 1)
		p := breakEven(dev, 32)
		fmt.Printf("  IS/FTS break-even:       %.4f%%\n", np*100)
		fmt.Printf("  PIS32/PFTS32 break-even: %.4f%%\n", p*100)
		fmt.Printf("  shift: %.1fx\n\n", p/np)
	}
	fmt.Println("The SSD shift dwarfs the HDD shift — a depth-oblivious optimizer")
	fmt.Println("choosing between scan methods on SSD is wrong over the whole band")
	fmt.Println("between the two crossings.")
}

// breakEven bisects for the selectivity where the index scan's measured
// runtime crosses the full scan's, both at the given parallel degree.
func breakEven(dev pioqo.DeviceKind, degree int) float64 {
	sys := pioqo.New(pioqo.Config{Device: dev, PoolPages: 1024})
	tab, err := sys.CreateTable("T", rows, rpp, pioqo.WithSyntheticData())
	if err != nil {
		log.Fatal(err)
	}

	runtime := func(method pioqo.AccessMethod, sel float64) float64 {
		hi := int64(sel*rows) - 1
		if hi < 0 {
			hi = 0
		}
		res, err := sys.ExecutePlan(
			pioqo.Query{Table: tab, Low: 0, High: hi},
			pioqo.Plan{Method: method, Degree: degree},
			pioqo.Cold())
		if err != nil {
			log.Fatal(err)
		}
		return float64(res.Runtime)
	}

	fts := runtime(pioqo.FullTableScan, 0.5) // independent of selectivity
	indexWins := func(sel float64) bool { return runtime(pioqo.IndexScan, sel) < fts }

	lo, hi := 1e-6, 0.9
	if !indexWins(lo) {
		return lo
	}
	if indexWins(hi) {
		return hi
	}
	for i := 0; i < 12; i++ {
		mid := math.Sqrt(lo * hi)
		if indexWins(mid) {
			lo = mid
		} else {
			hi = mid
		}
	}
	return math.Sqrt(lo * hi)
}
