// Adaptivity: the paper argues a query optimizer "must have a principled
// way to determine what the likely benefit is when using I/O parallelism"
// across "a range of storage technologies (HDD, RAID HDD, SSD, and even
// future technologies)". This example calibrates four device generations
// with the *same* code and shows the optimizer's chosen parallel degree
// and estimated benefit tracking each device's measured capability.
package main

import (
	"fmt"
	"log"
	"os"
	"text/tabwriter"

	"pioqo"
)

func main() {
	w := tabwriter.NewWriter(os.Stdout, 2, 0, 2, ' ', 0)
	fmt.Fprintln(w, "device\tqd32 gain (calibrated)\tchosen plan\testimated\tmeasured")
	for _, kind := range []pioqo.DeviceKind{pioqo.HDD, pioqo.SATA, pioqo.SSD, pioqo.NVME} {
		sys := pioqo.New(pioqo.Config{Device: kind, PoolPages: 1024})
		tab, err := sys.CreateTable("t", 200_000, 33, pioqo.WithSyntheticData())
		if err != nil {
			log.Fatal(err)
		}
		cal, err := sys.Calibrate(pioqo.CalibrationOptions{StopThreshold: -1})
		if err != nil {
			log.Fatal(err)
		}
		band := sys.DevicePages()
		gain := cal.Model.PageCost(band, 1) / cal.Model.PageCost(band, 32)

		q := pioqo.Query{Table: tab, Low: 0, High: 1999} // 1% range
		res, err := sys.Execute(q, pioqo.Cold())
		if err != nil {
			log.Fatal(err)
		}
		fmt.Fprintf(w, "%v\t%.1fx\t%v\t%v\t%v\n",
			kind, gain, res.Plan, res.Plan.EstimatedCost, res.Runtime)
	}
	w.Flush()
	fmt.Println("\nNo device-specific branches anywhere: the calibrated QDTT model is")
	fmt.Println("the only thing that differs, and the plans follow it.")
}
