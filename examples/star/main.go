// Star: a small star-schema session exercising the operator extensions —
// parallel hash join, index nested-loop join (chosen by the planner from
// distinct-key statistics), and parallel hash group-by — all planned with
// the same calibrated QDTT model as the paper's scans.
package main

import (
	"fmt"
	"log"

	"pioqo"
)

func main() {
	sys := pioqo.New(pioqo.Config{Device: pioqo.SSD, PoolPages: 4096})

	// A fact table, a uniform dimension, and a skewed dimension whose few
	// hot keys repeat a lot (Zipf 1.5).
	fact, err := sys.CreateTable("fact", 200_000, 33)
	if err != nil {
		log.Fatal(err)
	}
	dim, err := sys.CreateTable("dim", 30_000, 33)
	if err != nil {
		log.Fatal(err)
	}
	hot, err := sys.CreateTable("hot", 30_000, 33, pioqo.WithZipfData(1.5))
	if err != nil {
		log.Fatal(err)
	}
	if _, err := sys.Calibrate(pioqo.CalibrationOptions{}); err != nil {
		log.Fatal(err)
	}

	// Join 1: uniform dimension — the predicate pushes down to the fact
	// side, so the planner keeps the hash join.
	j1, err := sys.ExecuteJoin(pioqo.JoinQuery{
		Build: dim, Probe: fact, Low: 0, High: 999, Agg: pioqo.Count,
	}, pioqo.Cold())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("fact ⋈ dim   : %-11s %6d pairs in %8v  (build %v, probe %v)\n",
		j1.Method, j1.Pairs, j1.Runtime, j1.BuildPlan, j1.ProbePlan)

	// Join 2: skewed dimension over a wide range — few distinct keys, so
	// the distinct-count statistics flip the planner to index nested-loop.
	j2, err := sys.ExecuteJoin(pioqo.JoinQuery{
		Build: hot, Probe: fact, Low: 0, High: 29_999, Agg: pioqo.Count,
	}, pioqo.Cold())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("fact ⋈ hot   : %-11s %6d pairs in %8v  (build %v, probe %v)\n",
		j2.Method, j2.Pairs, j2.Runtime, j2.BuildPlan, j2.ProbePlan)

	// Grouped aggregation over the fact table.
	gb, err := sys.ExecuteGroupBy(pioqo.GroupByQuery{
		Table: fact, Low: 0, High: 9_999, GroupWidth: 2_000, Agg: pioqo.Count,
	}, pioqo.Cold())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("group-by     : %d groups over %d rows in %v via %v\n",
		len(gb.Groups), gb.Rows, gb.Runtime, gb.Plan)
	for _, g := range gb.Groups {
		fmt.Printf("  key range [%d, %d): %d rows\n",
			g.Key*2000, (g.Key+1)*2000, g.Value)
	}
}
