package pioqo

import (
	"fmt"
	"time"

	"pioqo/internal/broker"
)

// ConcurrentResult reports a batch of queries executed together.
type ConcurrentResult struct {
	// Results holds one entry per query, in input order; each Runtime is
	// that query's own start-to-finish virtual time (admission wait
	// excluded — see Admissions).
	Results []Result

	// Admissions holds each query's broker admission record, in input
	// order: leased budget, pool reservation, queue wait, re-plan flag.
	Admissions []Admission

	// Elapsed is the batch makespan: submission of the first query to
	// completion of the last, admission waits included.
	Elapsed time.Duration

	// QueueBudget is the initial even per-query share of the device's
	// beneficial queue depth. Individual admissions may receive more or
	// less as the broker redistributes freed credits; see Admissions.
	QueueBudget int

	// IOThroughputMBps is the device throughput sustained over the batch.
	IOThroughputMBps float64
}

// ExecuteConcurrent optimizes and runs several queries simultaneously,
// sharing CPU, buffer pool, and the device queue. Following the paper's
// §4.3 guidance — "when multiple queries are running on the system
// concurrently, the optimizer needs to pass a lower queue depth number to
// the QDTT model" — each query is planned under a queue-depth budget
// leased from the system's resource broker: admissions are batched so a
// few well-budgeted queries run instead of everyone starving equally, and
// credits freed by finishing queries (or winding-down worker fleets) are
// re-brokered to the ones still queued, which re-plan under their actual
// grant. A PlanOptions.QueueBudget set by the caller wins over brokered
// budgets for every query in the batch; StaticSplit() freezes the batch
// into the pre-broker one-shot even split for A/B comparison.
func (s *System) ExecuteConcurrent(queries []Query, opts ...QueryOption) (ConcurrentResult, error) {
	if len(queries) == 0 {
		return ConcurrentResult{}, fmt.Errorf("%w: no queries", ErrInvalidQuery)
	}
	var eo queryOptions
	for _, o := range opts {
		o(&eo)
	}
	if s.model == nil {
		return ConcurrentResult{}, fmt.Errorf("%w: ExecuteConcurrent needs the calibrated cost model", ErrNotCalibrated)
	}
	if eo.cold {
		// Flush before planning: residency statistics feed the optimizer.
		s.FlushBufferPool()
	}

	ses, err := s.batchSession(len(queries), eo)
	if err != nil {
		return ConcurrentResult{}, err
	}
	subs := make([]*Submission, len(queries))
	for i, q := range queries {
		if subs[i], err = ses.submit(q, eo); err != nil {
			// Earlier submissions already hold admission-queue slots (and,
			// once admitted, credits and pool reservations). Cancel them and
			// drain so everything is reclaimed before reporting the error —
			// otherwise the shared broker would leak the partial batch's
			// leases into every later query on this system.
			for _, sub := range subs[:i] {
				sub.Cancel()
			}
			_ = ses.Drain()
			return ConcurrentResult{}, err
		}
	}

	// Meter the device over exactly the batch window; Elapsed is the
	// makespan, not the max per-query runtime. Sessions are single-node,
	// so the coordinator's device is the batch's device.
	s.coord().Dev.Metrics().Reset()
	s.coord().Pool.ResetStats()
	start := s.env.Now()
	if err := ses.Drain(); err != nil {
		return ConcurrentResult{}, err
	}
	io := s.coord().Dev.Metrics().Snapshot()

	shares := broker.SplitCredits(ses.b.Total(), len(queries))
	out := ConcurrentResult{
		Results:          make([]Result, len(queries)),
		Admissions:       make([]Admission, len(queries)),
		Elapsed:          time.Duration(s.env.Now() - start),
		QueueBudget:      shares[len(shares)-1],
		IOThroughputMBps: io.ThroughputMBps,
	}
	for i, sub := range subs {
		if out.Results[i], err = sub.Result(); err != nil {
			return ConcurrentResult{}, err
		}
		out.Admissions[i] = sub.Admission()
	}
	if len(queries) == 1 {
		// The batch window is the query window: a single-query batch
		// reports the same device traffic a standalone Execute would.
		out.Results[0].PageReads = io.Requests
		out.Results[0].IOThroughputMBps = io.ThroughputMBps
	}
	return out, nil
}

// batchSession returns the session a batch runs on: the shared dynamic
// broker normally, or a private one-shot static broker under StaticSplit()
// — sized over the batch, with no pool reservations and no re-brokering,
// reproducing the pre-broker even split for A/B benchmarking.
func (s *System) batchSession(parties int, eo queryOptions) (*Session, error) {
	if !eo.staticSplit {
		return s.OpenSession()
	}
	if s.model == nil {
		return nil, fmt.Errorf("%w: ExecuteConcurrent needs the calibrated cost model", ErrNotCalibrated)
	}
	b := broker.New(broker.Config{
		Env:     s.env,
		Model:   s.model,
		Band:    s.DevicePages(),
		Static:  true,
		Parties: parties,
		Log:     s.events,
	})
	return &Session{sys: s, b: b}, nil
}
