package pioqo

import (
	"errors"
	"time"

	"pioqo/internal/exec"
)

// ConcurrentResult reports a batch of queries executed together.
type ConcurrentResult struct {
	// Results holds one entry per query, in input order; each Runtime is
	// that query's own start-to-finish virtual time.
	Results []Result

	// Elapsed is the wall-clock of the whole batch (max over queries).
	Elapsed time.Duration

	// QueueBudget is the per-query device queue-depth budget the planner
	// used.
	QueueBudget int

	// IOThroughputMBps is the device throughput sustained over the batch.
	IOThroughputMBps float64
}

// ExecuteConcurrent optimizes and runs several queries simultaneously,
// sharing CPU, buffer pool, and the device queue. Following the paper's
// §4.3 guidance — "when multiple queries are running on the system
// concurrently, the optimizer needs to pass a lower queue depth number to
// the QDTT model" — each query is planned under a queue-depth budget of
// (device's beneficial depth) / (number of queries), unless the supplied
// PlanOptions already set one.
func (s *System) ExecuteConcurrent(queries []Query, opts ...ExecOption) (ConcurrentResult, error) {
	if len(queries) == 0 {
		return ConcurrentResult{}, errors.New("pioqo: no queries")
	}
	var eo execOptions
	for _, o := range opts {
		o(&eo)
	}
	if s.model == nil {
		return ConcurrentResult{}, errors.New("pioqo: ExecuteConcurrent requires calibration")
	}
	if eo.cold {
		// Flush before planning: residency statistics feed the optimizer.
		s.pool.Flush()
	}

	po := eo.plan
	if po.QueueBudget == 0 {
		// Beneficial depth at whole-device band, split across the batch.
		beneficial := s.model.MaxBeneficialDepth(s.DevicePages(), 0.05)
		budget := beneficial / len(queries)
		if budget < 1 {
			budget = 1
		}
		po.QueueBudget = budget
	}

	specs := make([]exec.Spec, len(queries))
	for i, q := range queries {
		plan, err := s.Plan(q, po)
		if err != nil {
			return ConcurrentResult{}, err
		}
		specs[i] = exec.Spec{
			Table:             q.Table.tab,
			Index:             q.Table.idx,
			Lo:                q.Low,
			Hi:                q.High,
			Method:            plan.Method.internal(),
			Degree:            plan.Degree,
			Agg:               q.Agg.internal(),
			PrefetchPerWorker: plan.Prefetch,
		}
		if eo.prefetch > 0 {
			specs[i].PrefetchPerWorker = eo.prefetch
		}
	}

	results, io := exec.ExecuteAll(s.execContext(), specs)
	out := ConcurrentResult{
		QueueBudget:      po.QueueBudget,
		IOThroughputMBps: io.ThroughputMBps,
	}
	var maxRt time.Duration
	for i, r := range results {
		res := Result{
			Value:   r.Value,
			Found:   r.Found,
			Rows:    r.RowsMatched,
			Runtime: time.Duration(r.Runtime),
		}
		res.Plan, _ = s.planFromSpec(specs[i])
		out.Results = append(out.Results, res)
		if res.Runtime > maxRt {
			maxRt = res.Runtime
		}
	}
	out.Elapsed = maxRt
	return out, nil
}

// planFromSpec reconstructs the public plan shape from an internal spec
// (estimates omitted — they were already consumed during planning).
func (s *System) planFromSpec(spec exec.Spec) (Plan, error) {
	method := FullTableScan
	switch spec.Method {
	case exec.IndexScan:
		method = IndexScan
	case exec.SortedIndexScan:
		method = SortedIndexScan
	}
	return Plan{Method: method, Degree: spec.Degree, Prefetch: spec.PrefetchPerWorker}, nil
}
