package pioqo

import "testing"

func TestUpdateModifiesValuesDurably(t *testing.T) {
	sys, tab := newCalibrated(t, SSD, 20000, 33)
	q := Query{Table: tab, Low: 100, High: 299, Agg: Sum}

	before, err := sys.Execute(q, Cold())
	if err != nil {
		t.Fatal(err)
	}
	up, err := sys.Update(UpdateQuery{Table: tab, Low: 100, High: 299, Delta: 7}, Cold())
	if err != nil {
		t.Fatal(err)
	}
	if up.RowsUpdated != before.Rows {
		t.Errorf("updated %d rows, scan matched %d", up.RowsUpdated, before.Rows)
	}
	if up.PagesWritten == 0 {
		t.Error("no dirty pages written back")
	}
	if up.Runtime <= 0 {
		t.Error("non-positive update runtime")
	}

	after, err := sys.Execute(q, Cold())
	if err != nil {
		t.Fatal(err)
	}
	if want := before.Value + 7*before.Rows; after.Value != want {
		t.Errorf("SUM after update = %d, want %d", after.Value, want)
	}
}

func TestUpdateDisjointRangeLeavesOthersAlone(t *testing.T) {
	sys, tab := newCalibrated(t, SSD, 10000, 33)
	probe := Query{Table: tab, Low: 5000, High: 5999, Agg: Sum}
	before, err := sys.Execute(probe, Cold())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Update(UpdateQuery{Table: tab, Low: 0, High: 999, Delta: 100}); err != nil {
		t.Fatal(err)
	}
	after, err := sys.Execute(probe, Cold())
	if err != nil {
		t.Fatal(err)
	}
	if after.Value != before.Value {
		t.Errorf("untouched range changed: %d -> %d", before.Value, after.Value)
	}
}

func TestUpdateRejectsSyntheticTables(t *testing.T) {
	sys := New(Config{Device: SSD, PoolPages: 512})
	tab, err := sys.CreateTable("t", 10000, 33, WithSyntheticData())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Calibrate(CalibrationOptions{MaxReads: 400}); err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Update(UpdateQuery{Table: tab, Low: 0, High: 9, Delta: 1}); err == nil {
		t.Error("update of a synthetic table succeeded")
	}
	if _, err := sys.Update(UpdateQuery{Delta: 1}); err == nil {
		t.Error("update without a table succeeded")
	}
}

func TestUpdateWriteBackOnEviction(t *testing.T) {
	// A pool far smaller than the update's footprint forces write-backs
	// during the scan, not just at the checkpoint.
	sys := New(Config{Device: SSD, PoolPages: 64})
	tab, err := sys.CreateTable("t", 30000, 33)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Calibrate(CalibrationOptions{MaxReads: 400}); err != nil {
		t.Fatal(err)
	}
	up, err := sys.Update(UpdateQuery{Table: tab, Low: 0, High: 29999, Delta: 1}, Cold())
	if err != nil {
		t.Fatal(err)
	}
	if up.PagesWritten < tab.Pages()/2 {
		t.Errorf("only %d pages written for a full-table update of %d pages",
			up.PagesWritten, tab.Pages())
	}
}
