package pioqo

import (
	"testing"
)

func TestSessionStreamingAdmission(t *testing.T) {
	sys, tab := newCalibrated(t, SSD, 50000, 33)
	q1 := Query{Table: tab, Low: 0, High: 999}
	q2 := Query{Table: tab, Low: 30000, High: 30999}

	var want []Result
	for _, q := range []Query{q1, q2} {
		res, err := sys.Execute(q, Cold())
		if err != nil {
			t.Fatal(err)
		}
		want = append(want, res)
	}
	sys.FlushBufferPool()

	ses, err := sys.OpenSession()
	if err != nil {
		t.Fatal(err)
	}
	subs := make([]*Submission, 2)
	for i, q := range []Query{q1, q2} {
		if subs[i], err = ses.Submit(q); err != nil {
			t.Fatal(err)
		}
		if subs[i].Done() {
			t.Fatalf("submission %d done before Drain", i)
		}
	}
	if err := ses.Drain(); err != nil {
		t.Fatal(err)
	}
	for i, sub := range subs {
		res, err := sub.Result()
		if err != nil {
			t.Fatal(err)
		}
		if res.Value != want[i].Value || res.Rows != want[i].Rows {
			t.Errorf("query %d: session (%d, %d rows) vs serial (%d, %d rows)",
				i, res.Value, res.Rows, want[i].Value, want[i].Rows)
		}
		if adm := sub.Admission(); adm.Budget <= 0 {
			t.Errorf("query %d: budget %d, want a bounded two-way split", i, adm.Budget)
		}
	}

	// The session stays open: a third query submitted to the now-idle
	// broker is a sole query and gets an unbounded lease.
	sub3, err := ses.Submit(q1)
	if err != nil {
		t.Fatal(err)
	}
	if err := ses.Drain(); err != nil {
		t.Fatal(err)
	}
	if _, err := sub3.Result(); err != nil {
		t.Fatal(err)
	}
	if adm := sub3.Admission(); adm.Budget != 0 {
		t.Errorf("idle-session query budget = %d, want 0 (unbounded)", adm.Budget)
	}
}

func TestSystemSubmitDefaultSession(t *testing.T) {
	sys, tab := newCalibrated(t, SSD, 50000, 33)
	sub, err := sys.Submit(Query{Table: tab, Low: 0, High: 99})
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.Drain(); err != nil {
		t.Fatal(err)
	}
	res, err := sub.Result()
	if err != nil {
		t.Fatal(err)
	}
	if !res.Found || res.Rows == 0 {
		t.Errorf("result %+v, want a non-empty match", res)
	}

	uncal := New(Config{Device: SSD})
	tab2, err := uncal.CreateTable("t", 100, 10)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := uncal.Submit(Query{Table: tab2}); err == nil {
		t.Error("uncalibrated Submit accepted")
	}
}

func TestSessionTelemetryRecordsAdmission(t *testing.T) {
	sys, tab := newCalibrated(t, SSD, 50000, 33)
	ses, err := sys.OpenSession()
	if err != nil {
		t.Fatal(err)
	}
	var tel1, tel2 QueryTelemetry
	if _, err := ses.Submit(Query{Table: tab, Low: 0, High: 999}, WithTrace(&tel1)); err != nil {
		t.Fatal(err)
	}
	if _, err := ses.Submit(Query{Table: tab, Low: 25000, High: 25999}, WithTrace(&tel2)); err != nil {
		t.Fatal(err)
	}
	if err := ses.Drain(); err != nil {
		t.Fatal(err)
	}
	for i, tel := range []QueryTelemetry{tel1, tel2} {
		if tel.Root == nil {
			t.Fatalf("query %d: no span tree captured", i)
		}
		var admit *SpanNode
		tel.Root.Walk(func(n *SpanNode) {
			if n.Name == "admit" {
				admit = n
			}
		})
		if admit == nil {
			t.Fatalf("query %d: no admit span in trace:\n%s", i, tel.Tree())
		}
		if _, ok := admit.Attr("budget"); !ok {
			t.Errorf("query %d: admit span missing budget attribute", i)
		}
	}
}
