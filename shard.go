package pioqo

import (
	"fmt"
	"time"

	"pioqo/internal/btree"
	"pioqo/internal/exec"
	"pioqo/internal/fault"
	"pioqo/internal/obs"
	"pioqo/internal/obs/event"
	"pioqo/internal/opt"
	"pioqo/internal/sim"
	"pioqo/internal/stats"
	"pioqo/internal/table"
)

// Scatter-gather execution over the simulated cluster: a sharded table
// spreads one logical rowset across the nodes, the optimizer plans each
// shard's access path independently under that shard's device band and
// budget split, and the gather operator runs the per-shard scans on their
// own nodes concurrently (one virtual clock), merging decomposable
// partials on the coordinator. Slow shard reads are hedged: a read still
// outstanding past the hedge delay gets a speculative duplicate, first
// completion wins (fault.Hedger), which caps the makespan damage a
// straggling device can do.

// PartitionKind selects how a sharded table spreads rows across nodes.
type PartitionKind int

const (
	// PartitionHash assigns each row by a hash of its C2 key — even row
	// counts whatever the key distribution, but every shard holds every
	// key range, so range predicates cannot prune shards.
	PartitionHash PartitionKind = iota

	// PartitionRange splits the key domain into equal-width slices, shard
	// i holding [cuts[i-1], cuts[i]). Range predicates prune
	// non-overlapping shards; skewed key distributions overload the hot
	// shards.
	PartitionRange

	// PartitionRangeBalanced range-partitions on quantile cuts of the
	// actual key multiset instead of equal-width slices — the rebalanced
	// layout that keeps per-shard row counts near-even under skew while
	// retaining range pruning.
	PartitionRangeBalanced
)

func (k PartitionKind) String() string {
	switch k {
	case PartitionRange:
		return "range"
	case PartitionRangeBalanced:
		return "range-balanced"
	default:
		return "hash"
	}
}

// createShardedTable is CreateTable's multi-node path: it draws the full
// rowset in exactly the order the unsharded constructor would (so the
// union of the partitions is the same multiset whatever the shard count,
// and merged decomposable aggregates are byte-identical to the unsharded
// answer), then deals rows out to per-node heaps with per-shard indexes
// and histograms.
func (s *System) createShardedTable(name string, rows int64, rpp int, o tableOptions) (*Table, error) {
	if o.synthetic {
		return nil, fmt.Errorf("pioqo: table %q: synthetic tables are single-node; partitioning needs materialized columns", name)
	}
	var cols table.Columns
	if o.zipf > 0 {
		cols = table.DrawColumnsZipf(rows, o.seed, o.zipf)
	} else {
		cols = table.DrawColumns(rows, o.seed)
	}

	kind := s.partition
	if o.part >= 0 {
		kind = o.part
	}
	n := len(s.nodes)
	var cuts []int64
	switch kind {
	case PartitionRange:
		cuts = table.EqualWidthCuts(cols.Domain, n)
	case PartitionRangeBalanced:
		cuts = stats.BalancedCuts(cols.C2, n)
	}
	assign := func(key int64) int { return table.HashShard(key, n) }
	if cuts != nil {
		assign = func(key int64) int { return table.RangeShard(key, cuts) }
	}
	parts, _ := cols.Partition(n, assign)

	t := &Table{sys: s, name: name, kind: kind, cuts: cuts, parts: make([]tablePart, n)}
	for i, pc := range parts {
		part := &t.parts[i]
		part.node = s.nodes[i]
		if len(pc.C1) == 0 {
			continue // empty partition: nothing on this node
		}
		prows := int64(len(pc.C1))
		heapPages := (prows + int64(rpp) - 1) / int64(rpp)
		need := heapPages + prows/btree.DefaultLeafCap + 8
		if need > part.node.Manager.Free() {
			return nil, fmt.Errorf("pioqo: table %q shard %d needs %d pages, node device has %d free",
				name, i, need, part.node.Manager.Free())
		}
		mt := table.NewMaterializedFrom(part.node.Manager,
			fmt.Sprintf("%s#%d", name, i), rpp, pc.C1, pc.C2, cols.Domain)
		part.tab = mt
		if !o.noIndex {
			part.idx = btree.NewMaterialized(part.node.Manager, mt, 0, 0)
		}
		part.hist = stats.BuildHistogram(mt, 0)
	}
	s.tables[name] = t
	return t, nil
}

// activeShards returns the shard ids a query over [lo, hi] must touch:
// non-empty partitions whose key range overlaps the predicate. Hash
// partitions cannot prune (every shard holds every key range); range
// partitions drop the shards whose slice misses the predicate entirely.
func (t *Table) activeShards(lo, hi int64) []int {
	var out []int
	for i := range t.parts {
		if t.parts[i].tab == nil {
			continue
		}
		if t.cuts != nil {
			shardLo := int64(0)
			if i > 0 {
				shardLo = t.cuts[i-1]
			}
			if i < len(t.cuts) && lo >= t.cuts[i] { // predicate entirely above the slice
				continue
			}
			if hi < shardLo { // predicate entirely below the slice
				continue
			}
			if lo > hi {
				continue
			}
		}
		out = append(out, i)
	}
	return out
}

// planSharded is Plan's scatter-gather path: each active shard is planned
// independently — its own access path, degree, and prefetch under its
// node's pool capacity and its split of the caller's queue-depth budget —
// and the merge stage is priced on top (opt.ChooseSharded). The public
// plan reports the makespan estimate and carries the per-shard plans for
// executeGather.
func (s *System) planSharded(q Query, o PlanOptions) (Plan, error) {
	if err := q.validate(); err != nil {
		return Plan{}, err
	}
	t := q.Table
	active := t.activeShards(q.Low, q.High)
	if len(active) == 0 {
		// Every shard pruned: the query is answered without touching a
		// device. Report a degenerate plan; executeGather short-circuits.
		return Plan{Method: IndexScan, Degree: 1, Fanout: 0, pruned: len(t.parts)}, nil
	}
	po := o
	po.ShareParties = 0 // circulating scans are single-node
	var budgets []int
	if o.QueueBudget > 0 {
		budgets = splitBudget(o.QueueBudget, len(active))
	}
	cfgs := make([]opt.Config, len(active))
	ins := make([]opt.Input, len(active))
	for j, si := range active {
		part := &t.parts[si]
		pj := po
		if budgets != nil {
			pj.QueueBudget = budgets[j]
		}
		cfg, err := s.planConfig(part.node, pj)
		if err != nil {
			return Plan{}, err
		}
		cfgs[j] = cfg
		ins[j] = opt.Input{
			Table: part.tab,
			Index: part.idx,
			Pool:  part.node.Pool,
			Stats: part.hist,
			Lo:    q.Low,
			Hi:    q.High,
		}
	}
	choose := s.memo.Choose
	if o.GreedyPlanning || s.greedy {
		choose = s.pcache.Choose
	}
	sp := opt.ChooseSharded(choose, cfgs, ins, opt.MergeScalar, 0)

	// The public shape mirrors the slowest shard's choice (the one the
	// makespan estimate is pinned to); per-shard plans ride along for the
	// executor.
	tmpl := sp.Shards[0]
	for _, p := range sp.Shards[1:] {
		if p.TotalMicros > tmpl.TotalMicros {
			tmpl = p
		}
	}
	pub := fromInternalPlan(tmpl)
	pub.Shared = false
	pub.EstimatedCost = time.Duration(sp.TotalMicros * 1e3)
	pub.EstimatedIO = time.Duration(sp.IOMicros * 1e3)
	pub.EstimatedCPU = time.Duration(sp.CPUMicros * 1e3)
	pub.EstimatedRows = sp.EstRows
	pub.Fanout = len(active)
	pub.scatter = &scatterPlan{plans: sp.Shards, active: active}
	pub.pruned = len(t.parts) - len(active)
	return pub, nil
}

// splitBudget deals a queue-depth budget across shards, at least one
// credit each (a zero per-shard budget would mean "uncapped").
func splitBudget(total, shards int) []int {
	out := make([]int, shards)
	for i := range out {
		out[i] = total / shards
		if i < total%shards {
			out[i]++
		}
		if out[i] < 1 {
			out[i] = 1
		}
	}
	return out
}

// executeGather is executePlan's scatter-gather tail: it builds one
// node-local scan spec per active shard (per-shard plans when the plan
// carries them, the plan's uniform shape otherwise), arms the straggler
// hedgers for the duration of the run, and executes the gather operator.
// All shard specs share one Progress counter and one abort control, so
// live progress and cancellation span the cluster.
func (s *System) executeGather(q Query, plan Plan, eo queryOptions, ts *telemetrySession, ctl *fault.Control) (Result, error) {
	t := q.Table
	if plan.Method != FullTableScan && !t.Indexed() {
		return Result{}, fmt.Errorf("%w: table %q has no index", ErrInvalidQuery, t.Name())
	}
	if eo.degree > 0 {
		plan.Degree = eo.degree
	}
	if plan.Degree <= 0 {
		plan.Degree = 1
	}
	var active []int
	if plan.scatter != nil {
		active = plan.scatter.active
	} else {
		// Caller-constructed plan (ExecutePlan): scatter uniformly.
		active = t.activeShards(q.Low, q.High)
	}
	plan.Fanout = len(active)
	plan.pruned = len(t.parts) - len(active)

	qid := s.nextQID
	s.nextQID++
	s.events.Emit(event.EvQueryStart, qid, estimatePages(q, plan), int64(eo.plan.QueueBudget))
	if len(active) == 0 {
		// Every shard pruned: no rows anywhere. COUNT of nothing is 0 and
		// found, as in the unsharded executor.
		s.events.Emit(event.EvQueryDone, qid, 0, 0)
		res := Result{Plan: plan}
		if q.Agg == Count {
			res.Found = true
		}
		ts.finish(s, plan, 0, eo)
		return res, nil
	}

	var pages int64
	gs := exec.GatherSpec{
		Agg:    q.Agg.internal(),
		Pruned: plan.pruned,
		QID:    qid,
	}
	for j, si := range active {
		part := &t.parts[si]
		shardPlan := plan
		if plan.scatter != nil {
			shardPlan = fromInternalPlan(plan.scatter.plans[j])
			if eo.degree > 0 {
				shardPlan.Degree = eo.degree
			}
		}
		prefetch := eo.prefetch
		if prefetch == 0 {
			prefetch = shardPlan.Prefetch
		}
		ctx := s.nodeContext(part.node)
		ctx.Tracer = ts.trc()
		gs.Shards = append(gs.Shards, exec.ShardScan{
			Ctx: ctx,
			Spec: exec.Spec{
				Table:             part.tab,
				Index:             part.idx,
				Lo:                q.Low,
				Hi:                q.High,
				Method:            shardPlan.Method.internal(),
				Degree:            shardPlan.Degree,
				Agg:               q.Agg.internal(),
				PrefetchPerWorker: prefetch,
				Span:              ts.span(),
				Ctl:               ctl,
				Retry:             eo.retry.internal(),
				QID:               qid,
				Progress:          &pages,
			},
		})
	}

	// Hedging is armed only for the gather window: calibration and
	// single-node traffic never see speculative duplicates.
	before := s.armHedgers(active, t)
	res := exec.ExecuteGather(gs)
	s.disarmHedgers(active, t, before)

	s.events.Emit(event.EvQueryDone, qid, pages, int64(res.Runtime))
	result := Result{
		Value:            res.Value,
		Found:            res.Found,
		Rows:             res.RowsMatched,
		Plan:             plan,
		Runtime:          time.Duration(res.Runtime),
		PageReads:        res.IO.Requests,
		IOThroughputMBps: res.IO.ThroughputMBps,
	}
	ts.finish(s, plan, result.Runtime, eo)
	if res.Err != nil {
		return Result{}, &QueryError{Op: "query", Table: t.Name(), Err: res.Err}
	}
	return result, nil
}

// armHedgers arms the active shards' straggler hedgers and snapshots their
// stats, so the issue/win deltas of this gather can be rolled into the
// registry counters on disarm.
func (s *System) armHedgers(active []int, t *Table) []fault.HedgeStats {
	if s.hedge == 0 {
		return nil
	}
	before := make([]fault.HedgeStats, len(active))
	for j, si := range active {
		if h := t.parts[si].node.Hedge; h != nil {
			before[j] = h.Stats()
			h.Arm()
		}
	}
	return before
}

func (s *System) disarmHedgers(active []int, t *Table, before []fault.HedgeStats) {
	if before == nil {
		return
	}
	var issued, wins int64
	for j, si := range active {
		h := t.parts[si].node.Hedge
		if h == nil {
			continue
		}
		h.Disarm()
		st := h.Stats()
		issued += st.Issued - before[j].Issued
		wins += st.Wins - before[j].Wins
	}
	if issued > 0 {
		s.reg.Counter(obs.MetricShardHedgeIssued).Add(issued)
	}
	if wins > 0 {
		s.reg.Counter(obs.MetricShardHedgeWins).Add(wins)
	}
}

// executeGatherGroupBy is ExecuteGroupBy's scatter-gather tail: per-shard
// grouped aggregations over each node's partition, group partials folded
// on the coordinator (the decomposable GROUP BY merge).
func (s *System) executeGatherGroupBy(q GroupByQuery, plan Plan, eo queryOptions) (GroupByResult, error) {
	t := q.Table
	var active []int
	if plan.scatter != nil {
		active = plan.scatter.active
	} else {
		active = t.activeShards(q.Low, q.High)
	}
	qid := s.nextQID
	s.nextQID++
	if len(active) == 0 {
		return GroupByResult{Plan: plan}, nil
	}

	shards := make([]exec.ShardScan, len(active))
	for j, si := range active {
		part := &t.parts[si]
		shardPlan := plan
		if plan.scatter != nil {
			shardPlan = fromInternalPlan(plan.scatter.plans[j])
		}
		ctx := s.nodeContext(part.node)
		shards[j] = exec.ShardScan{
			Ctx: ctx,
			Spec: exec.Spec{
				Table:             part.tab,
				Index:             part.idx,
				Lo:                q.Low,
				Hi:                q.High,
				Method:            shardPlan.Method.internal(),
				Degree:            shardPlan.Degree,
				PrefetchPerWorker: shardPlan.Prefetch,
				QID:               qid,
			},
		}
	}

	before := s.armHedgers(active, t)
	start := s.env.Now()
	var res exec.GroupByResult
	s.env.Go("gather-groupby", func(p *sim.Proc) {
		res = exec.RunGatherGroupBy(p, shards, q.GroupWidth, q.Agg.internal(), qid)
	})
	s.env.Run()
	s.disarmHedgers(active, t, before)

	out := GroupByResult{
		Rows:    res.Rows,
		Plan:    plan,
		Runtime: time.Duration(s.env.Now() - start),
	}
	for _, g := range res.Groups {
		out.Groups = append(out.Groups, GroupRow{Key: g.Key, Value: g.Value, Rows: g.Rows})
	}
	return out, nil
}

// HedgeStats reports the cluster's straggler-hedging activity: speculative
// reads issued and the races they won. Zeros on unhedged systems.
type HedgeStats struct {
	Issued int64
	Wins   int64
}

// HedgeStats sums hedging activity across all nodes.
func (s *System) HedgeStats() HedgeStats {
	var hs HedgeStats
	for _, n := range s.nodes {
		if n.Hedge != nil {
			st := n.Hedge.Stats()
			hs.Issued += st.Issued
			hs.Wins += st.Wins
		}
	}
	return hs
}

// NodeIOStats is one node's device traffic snapshot.
type NodeIOStats struct {
	Node     int
	Requests int64
	Bytes    int64
}

// NodeIO reports each node's cumulative device read/write request count —
// how evenly the cluster's I/O spread across shards.
func (s *System) NodeIO() []NodeIOStats {
	out := make([]NodeIOStats, len(s.nodes))
	for i, n := range s.nodes {
		snap := n.Dev.Metrics().Snapshot()
		out[i] = NodeIOStats{Node: i, Requests: snap.Requests, Bytes: snap.Bytes}
	}
	return out
}
