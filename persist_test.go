package pioqo

import (
	"bytes"
	"strings"
	"testing"
)

func TestSaveAndLoadModel(t *testing.T) {
	sys, tab := newCalibrated(t, SSD, 50000, 33)
	wantPlan, err := sys.Plan(Query{Table: tab, Low: 0, High: 99}, PlanOptions{})
	if err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	if err := sys.SaveModel(&buf); err != nil {
		t.Fatal(err)
	}

	// A fresh system over the same device kind, loading instead of
	// calibrating, must plan identically.
	fresh := New(Config{Device: SSD, PoolPages: 1024})
	tab2, err := fresh.CreateTable("t", 50000, 33)
	if err != nil {
		t.Fatal(err)
	}
	if err := fresh.LoadModel(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatal(err)
	}
	gotPlan, err := fresh.Plan(Query{Table: tab2, Low: 0, High: 99}, PlanOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if gotPlan.Method != wantPlan.Method || gotPlan.Degree != wantPlan.Degree {
		t.Errorf("loaded-model plan %v differs from calibrated plan %v", gotPlan, wantPlan)
	}

	// And queries run fine against the loaded model.
	res, err := fresh.Execute(Query{Table: tab2, Low: 0, High: 99}, Cold())
	if err != nil {
		t.Fatal(err)
	}
	if !res.Found {
		t.Error("query with loaded model found nothing")
	}
}

func TestSaveModelRequiresCalibration(t *testing.T) {
	sys := New(Config{Device: SSD})
	var buf bytes.Buffer
	if err := sys.SaveModel(&buf); err == nil {
		t.Error("SaveModel before calibration succeeded")
	}
}

func TestLoadModelRejectsGarbage(t *testing.T) {
	sys := New(Config{Device: SSD})
	if err := sys.LoadModel(strings.NewReader("not json")); err == nil {
		t.Error("LoadModel accepted garbage")
	}
	if err := sys.LoadModel(strings.NewReader(
		`{"version":1,"bands":[2,1],"depths":[1],"cost_us_per_page":[[1,1]]}`)); err == nil {
		t.Error("LoadModel accepted a malformed grid")
	}
	if _, err := sys.Model(); err == nil {
		t.Error("failed load left a model installed")
	}
}
