package pioqo

import (
	"testing"
	"time"
)

// newCalibrated returns a small calibrated SSD system with one table.
func newCalibrated(t *testing.T, dev DeviceKind, rows int64, rpp int) (*System, *Table) {
	t.Helper()
	sys := New(Config{Device: dev, PoolPages: 1024})
	tab, err := sys.CreateTable("t", rows, rpp)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Calibrate(CalibrationOptions{MaxReads: 640}); err != nil {
		t.Fatal(err)
	}
	return sys, tab
}

func TestQuickstartFlow(t *testing.T) {
	sys, tab := newCalibrated(t, SSD, 50000, 33)
	res, err := sys.Execute(Query{Table: tab, Low: 0, High: 499}, Cold())
	if err != nil {
		t.Fatal(err)
	}
	if !res.Found {
		t.Fatal("1% range matched nothing")
	}
	if res.Rows < 300 || res.Rows > 800 {
		t.Errorf("matched %d rows, want ~500", res.Rows)
	}
	if res.Runtime <= 0 {
		t.Error("non-positive runtime")
	}
	if res.Plan.Method != IndexScan {
		t.Errorf("plan = %v, want an index scan at 1%% selectivity", res.Plan)
	}
}

func TestExecuteRequiresCalibration(t *testing.T) {
	sys := New(Config{Device: SSD})
	tab, err := sys.CreateTable("t", 1000, 33)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Execute(Query{Table: tab, Low: 0, High: 10}); err == nil {
		t.Error("Execute before Calibrate did not fail")
	}
	if _, err := sys.Model(); err == nil {
		t.Error("Model before Calibrate did not fail")
	}
}

func TestCreateTableValidation(t *testing.T) {
	sys := New(Config{Device: SSD})
	if _, err := sys.CreateTable("", 10, 1); err == nil {
		t.Error("empty name accepted")
	}
	if _, err := sys.CreateTable("t", 0, 1); err == nil {
		t.Error("zero rows accepted")
	}
	if _, err := sys.CreateTable("t", 10, 0); err == nil {
		t.Error("zero rows/page accepted")
	}
	if _, err := sys.CreateTable("t", 10, 1); err != nil {
		t.Fatalf("valid table rejected: %v", err)
	}
	if _, err := sys.CreateTable("t", 10, 1); err == nil {
		t.Error("duplicate name accepted")
	}
	if _, err := sys.CreateTable("huge", 1<<40, 1); err == nil {
		t.Error("table beyond device capacity accepted")
	}
}

func TestExecuteAnswersMatchAcrossPlans(t *testing.T) {
	sys, tab := newCalibrated(t, SSD, 20000, 33)
	q := Query{Table: tab, Low: 100, High: 2099}
	var results []Result
	for _, plan := range []Plan{
		{Method: FullTableScan, Degree: 1},
		{Method: FullTableScan, Degree: 8},
		{Method: IndexScan, Degree: 1},
		{Method: IndexScan, Degree: 32},
	} {
		res, err := sys.ExecutePlan(q, plan, Cold())
		if err != nil {
			t.Fatal(err)
		}
		results = append(results, res)
	}
	for i := 1; i < len(results); i++ {
		if results[i].Value != results[0].Value || results[i].Rows != results[0].Rows {
			t.Errorf("plan %d answer (max=%d rows=%d) differs from plan 0 (max=%d rows=%d)",
				i, results[i].Value, results[i].Rows, results[0].Value, results[0].Rows)
		}
	}
}

func TestDepthObliviousPlannerAvoidsParallelIndexScan(t *testing.T) {
	sys, tab := newCalibrated(t, SSD, 100000, 33)
	q := Query{Table: tab, Low: 0, High: 99} // 0.1% selectivity
	oldPlan, err := sys.Plan(q, PlanOptions{DepthOblivious: true})
	if err != nil {
		t.Fatal(err)
	}
	newPlan, err := sys.Plan(q, PlanOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if oldPlan.Method == IndexScan && oldPlan.Degree > 1 {
		t.Errorf("DTT planner chose parallel index scan %v", oldPlan)
	}
	if newPlan.Method != IndexScan || newPlan.Degree < 8 {
		t.Errorf("QDTT planner chose %v, want high-degree index scan", newPlan)
	}
}

func TestQDTTPlanRunsFasterOnSSD(t *testing.T) {
	sys, tab := newCalibrated(t, SSD, 100000, 33)
	q := Query{Table: tab, Low: 0, High: 99}
	oldRes, err := sys.Execute(q, Cold(), WithPlanOptions(PlanOptions{DepthOblivious: true}))
	if err != nil {
		t.Fatal(err)
	}
	newRes, err := sys.Execute(q, Cold())
	if err != nil {
		t.Fatal(err)
	}
	if speedup := float64(oldRes.Runtime) / float64(newRes.Runtime); speedup < 3 {
		t.Errorf("QDTT speedup = %.1fx (old %v via %v, new %v via %v), want >= 3x",
			speedup, oldRes.Runtime, oldRes.Plan, newRes.Runtime, newRes.Plan)
	}
}

func TestExplainIsSortedAndConsistentWithPlan(t *testing.T) {
	sys, tab := newCalibrated(t, SSD, 20000, 33)
	q := Query{Table: tab, Low: 0, High: 1999}
	plans, err := sys.Explain(q, PlanOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(plans) != 12 {
		t.Fatalf("%d candidates, want 12", len(plans))
	}
	for i := 1; i < len(plans); i++ {
		if plans[i].EstimatedCost < plans[i-1].EstimatedCost {
			t.Fatal("Explain not sorted by cost")
		}
	}
	chosen, err := sys.Plan(q, PlanOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if chosen != plans[0] {
		t.Error("Plan differs from Explain's cheapest candidate")
	}
}

func TestMaxDegreeCap(t *testing.T) {
	sys, tab := newCalibrated(t, SSD, 100000, 1)
	plans, err := sys.Explain(Query{Table: tab, Low: 0, High: 99}, PlanOptions{MaxDegree: 4})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range plans {
		if p.Degree > 4 {
			t.Errorf("plan %v exceeds MaxDegree 4", p)
		}
	}
}

func TestWithoutIndexTableOnlyFullScans(t *testing.T) {
	sys := New(Config{Device: SSD, PoolPages: 512})
	tab, err := sys.CreateTable("t", 5000, 33, WithoutIndex())
	if err != nil {
		t.Fatal(err)
	}
	if tab.Indexed() {
		t.Fatal("WithoutIndex table reports an index")
	}
	if _, err := sys.Calibrate(CalibrationOptions{MaxReads: 400}); err != nil {
		t.Fatal(err)
	}
	plan, err := sys.Plan(Query{Table: tab, Low: 0, High: 9}, PlanOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if plan.Method != FullTableScan {
		t.Errorf("plan %v on unindexed table, want full scan", plan)
	}
	if _, err := sys.ExecutePlan(Query{Table: tab, Low: 0, High: 9},
		Plan{Method: IndexScan, Degree: 1}); err == nil {
		t.Error("index-scan plan on unindexed table did not fail")
	}
}

func TestSyntheticTableOption(t *testing.T) {
	sys := New(Config{Device: SSD, PoolPages: 512})
	tab, err := sys.CreateTable("big", 1_000_000, 33, WithSyntheticData())
	if err != nil {
		t.Fatal(err)
	}
	if tab.Rows() != 1_000_000 {
		t.Errorf("rows = %d", tab.Rows())
	}
	if _, err := sys.Calibrate(CalibrationOptions{MaxReads: 400}); err != nil {
		t.Fatal(err)
	}
	res, err := sys.Execute(Query{Table: tab, Low: 0, High: 999}, Cold())
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows != 1000 {
		t.Errorf("matched %d rows, want exactly 1000 (synthetic keys are a permutation)", res.Rows)
	}
}

func TestColdVsWarm(t *testing.T) {
	sys, tab := newCalibrated(t, SSD, 10000, 33)
	q := Query{Table: tab, Low: 0, High: 9999}
	cold, err := sys.Execute(q, Cold())
	if err != nil {
		t.Fatal(err)
	}
	warm, err := sys.Execute(q)
	if err != nil {
		t.Fatal(err)
	}
	if warm.Runtime >= cold.Runtime {
		t.Errorf("warm run %v not faster than cold %v", warm.Runtime, cold.Runtime)
	}
	if sys.BufferPoolResident(tab) == 0 {
		t.Error("no resident pages after a warm run")
	}
}

func TestWithPrefetchSpeedsUpSerialIndexScan(t *testing.T) {
	sys, tab := newCalibrated(t, SSD, 100000, 1)
	q := Query{Table: tab, Low: 0, High: 9999}
	plan := Plan{Method: IndexScan, Degree: 1}
	plain, err := sys.ExecutePlan(q, plan, Cold())
	if err != nil {
		t.Fatal(err)
	}
	prefetched, err := sys.ExecutePlan(q, plan, Cold(), WithPrefetch(16))
	if err != nil {
		t.Fatal(err)
	}
	if gain := float64(plain.Runtime) / float64(prefetched.Runtime); gain < 4 {
		t.Errorf("prefetch gain = %.1fx, want >= 4x on SSD", gain)
	}
}

func TestCalibrationEarlyStopsOnHDD(t *testing.T) {
	sys := New(Config{Device: HDD})
	cal, err := sys.Calibrate(CalibrationOptions{MaxReads: 640})
	if err != nil {
		t.Fatal(err)
	}
	if !cal.StoppedEarly {
		t.Error("HDD calibration did not stop early at the default threshold")
	}
	if cal.Elapsed <= 0 || cal.Reads <= 0 {
		t.Errorf("degenerate calibration stats: %+v", cal)
	}
}

func TestHDDPlannerPrefersSerialIndexScan(t *testing.T) {
	sys := New(Config{Device: HDD, PoolPages: 1024})
	tab, err := sys.CreateTable("t", 50000, 33)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Calibrate(CalibrationOptions{MaxReads: 640}); err != nil {
		t.Fatal(err)
	}
	plan, err := sys.Plan(Query{Table: tab, Low: 0, High: 4}, PlanOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// On the HDD the QDTT model reports little parallel benefit, so even
	// the new optimizer should stay at a low degree for a tiny range.
	if plan.Method != IndexScan {
		t.Errorf("plan %v, want index scan for 0.01%% selectivity", plan)
	}
	if plan.Degree > 8 {
		t.Errorf("plan %v: HDD should not warrant high parallel degrees", plan)
	}
}

func TestResultRuntimeIsVirtual(t *testing.T) {
	sys, tab := newCalibrated(t, SSD, 200000, 1)
	start := time.Now()
	res, err := sys.Execute(Query{Table: tab, Low: 0, High: 49999}, Cold())
	if err != nil {
		t.Fatal(err)
	}
	host := time.Since(start)
	if res.Runtime < 100*time.Millisecond {
		t.Errorf("modelled runtime %v suspiciously small for 50k random reads", res.Runtime)
	}
	if host > 10*time.Second {
		t.Errorf("host time %v too large; simulation should be fast", host)
	}
}

func TestPlanString(t *testing.T) {
	p := Plan{Method: IndexScan, Degree: 32, EstimatedCost: time.Millisecond}
	if got := p.String(); got[:6] != "PIS32 " {
		t.Errorf("String() = %q", got)
	}
}

func TestPlanMemoization(t *testing.T) {
	sys, tab := newCalibrated(t, SSD, 50000, 33)
	q := Query{Table: tab, Low: 0, High: 499}

	before := sys.MetricsSnapshot()
	p1, err := sys.Plan(q, PlanOptions{})
	if err != nil {
		t.Fatal(err)
	}
	// Re-planning the identical probe with untouched residency must replay
	// the cached enumeration and still count as an optimization.
	p2, err := sys.Plan(q, PlanOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if p1 != p2 {
		t.Fatalf("memoized plan %v differs from first plan %v", p2, p1)
	}
	d := sys.MetricsSince(before)
	if d.Counter("opt.memo_misses") != 1 || d.Counter("opt.memo_hits") != 1 {
		t.Fatalf("memo traffic = %d misses, %d hits; want 1, 1",
			d.Counter("opt.memo_misses"), d.Counter("opt.memo_hits"))
	}
	if d.Counter("opt.optimizations") != 2 {
		t.Fatalf("opt.optimizations = %d, want 2", d.Counter("opt.optimizations"))
	}

	// Executing the query moves pages through the pool; the epoch in the
	// memo key changes and the next planning round must re-cost.
	if _, err := sys.Execute(q, Cold()); err != nil {
		t.Fatal(err)
	}
	before = sys.MetricsSnapshot()
	if _, err := sys.Plan(q, PlanOptions{}); err != nil {
		t.Fatal(err)
	}
	if d := sys.MetricsSince(before); d.Counter("opt.memo_misses") != 1 {
		t.Fatalf("plan after execution: %d misses, want 1 (epoch invalidation)",
			d.Counter("opt.memo_misses"))
	}

	// DepthOblivious planning shares one cached depth-one projection, so
	// repeats hit the memo too.
	before = sys.MetricsSnapshot()
	sys.Plan(q, PlanOptions{DepthOblivious: true})
	sys.Plan(q, PlanOptions{DepthOblivious: true})
	if d := sys.MetricsSince(before); d.Counter("opt.memo_hits") != 1 {
		t.Fatalf("depth-oblivious repeat: %d hits, want 1", d.Counter("opt.memo_hits"))
	}

	// Recalibration installs a fresh model and must drop the memo.
	if _, err := sys.Calibrate(CalibrationOptions{MaxReads: 640}); err != nil {
		t.Fatal(err)
	}
	if hits, misses := sys.memo.Stats(); hits != 0 || misses != 0 {
		t.Fatalf("memo not reset by calibration: %d hits, %d misses", hits, misses)
	}
}
