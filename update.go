package pioqo

import (
	"errors"
	"fmt"
	"time"

	"pioqo/internal/exec"
	"pioqo/internal/sim"
	"pioqo/internal/table"
)

// UpdateQuery modifies matching rows in place:
//
//	UPDATE t SET C1 = C1 + Delta WHERE C2 BETWEEN Low AND High
//
// Updates go beyond the paper's read-only evaluation but exercise the rest
// of a real engine's write path: modified pages are marked dirty in the
// buffer pool and written back to the simulated device on eviction or at
// the closing checkpoint, whose I/O is part of the reported runtime.
type UpdateQuery struct {
	Table *Table
	Low,
	High int64
	// Delta is added to each matching row's C1.
	Delta int64
}

// UpdateResult reports an executed update.
type UpdateResult struct {
	RowsUpdated int64
	// PagesWritten counts dirty-page write-backs (evictions plus the final
	// checkpoint).
	PagesWritten int64
	// Plan is the scan plan that located the rows.
	Plan    Plan
	Runtime time.Duration
}

// Update optimizes the locating scan like any query, applies the mutation
// through the buffer pool, and checkpoints dirty pages before returning.
// Only materialized tables are updatable (synthetic values are computed).
func (s *System) Update(q UpdateQuery, opts ...QueryOption) (UpdateResult, error) {
	if q.Table == nil {
		return UpdateResult{}, errors.New("pioqo: update without a table")
	}
	if q.Table.sharded() {
		return UpdateResult{}, fmt.Errorf("pioqo: table %q is partitioned across %d nodes; updates are single-node only",
			q.Table.Name(), len(q.Table.parts))
	}
	mat, ok := q.Table.one().tab.(*table.Materialized)
	if !ok {
		return UpdateResult{}, fmt.Errorf("pioqo: table %q is synthetic and read-only", q.Table.Name())
	}
	var eo queryOptions
	for _, o := range opts {
		o(&eo)
	}
	if eo.cold {
		s.FlushBufferPool()
	}
	plan, err := s.Plan(Query{Table: q.Table, Low: q.Low, High: q.High}, eo.plan)
	if err != nil {
		return UpdateResult{}, err
	}

	spec := exec.Spec{
		Table:             q.Table.one().tab,
		Index:             q.Table.one().idx,
		Lo:                q.Low,
		Hi:                q.High,
		Method:            plan.Method.internal(),
		Degree:            plan.Degree,
		PrefetchPerWorker: plan.Prefetch,
		Agg:               exec.AggCount,
		Update:            func(rowID int64) { mat.SetC1(rowID, mat.RowAt(rowID).C1+q.Delta) },
	}

	ctx := s.execContext()
	ctx.Dev.Metrics().Reset()
	ctx.Pool.ResetStats()
	start := s.env.Now()
	var res exec.Result
	s.env.Go("update", func(p *sim.Proc) {
		res = exec.RunScan(p, ctx, spec)
		// Checkpoint: the update is not done until its pages are durable.
		s.coord().Pool.FlushDirty(p)
	})
	s.env.Run()

	return UpdateResult{
		RowsUpdated:  res.RowsMatched,
		PagesWritten: s.coord().Pool.Stats.DirtyWrites,
		Plan:         plan,
		Runtime:      time.Duration(s.env.Now() - start),
	}, nil
}
