// Package pioqo is a parallel-I/O-aware query optimization engine — a full
// reproduction of "Parallel I/O Aware Query Optimization" (Ghodsnia, Bowman,
// Nica; SIGMOD 2014).
//
// The package bundles a deterministic virtual-time storage stack (HDD, SSD,
// and RAID0 device models; buffer pool; heap tables; B+-tree index), the
// paper's four access methods (full table scan and index scan, serial and
// intra-query parallel, with asynchronous prefetching), and its two I/O cost
// models: the classic band-size-only DTT model and the queue-depth-aware
// QDTT model that is the paper's contribution. A calibration pass measures
// the attached device and produces the QDTT model; the cost-based optimizer
// then chooses access method and parallel degree per query.
//
// A minimal session:
//
//	sys := pioqo.New(pioqo.Config{Device: pioqo.SSD})
//	tab, _ := sys.CreateTable("orders", 200_000, 33)
//	cal, _ := sys.Calibrate(pioqo.CalibrationOptions{})
//	res, _ := sys.Execute(pioqo.Query{Table: tab, Low: 0, High: 999})
//	fmt.Println(res.Value, res.Runtime)
//
// Everything runs in simulated time: Execute's Result.Runtime is the
// modelled wall-clock of the query on the modelled device, typically
// computed in well under a millisecond of host time.
package pioqo

import (
	"errors"
	"fmt"
	"sort"
	"time"

	"pioqo/internal/adapt"
	"pioqo/internal/broker"
	"pioqo/internal/btree"
	"pioqo/internal/cost"
	"pioqo/internal/exec"
	"pioqo/internal/node"
	"pioqo/internal/obs"
	"pioqo/internal/obs/event"
	"pioqo/internal/opt"
	"pioqo/internal/sim"
	"pioqo/internal/stats"
	"pioqo/internal/table"
	"pioqo/internal/workload"
)

// DeviceKind selects the simulated storage device backing a System.
type DeviceKind = workload.DeviceKind

// Available device models: a consumer PCIe SSD (~1.5 GB/s sequential,
// ~200 K IOPS at queue depth 32), a commodity 7200 RPM hard drive
// (~110 MB/s sequential), a stripe set of eight 15 kRPM spindles, a
// SATA-generation SSD (beneficial queue depth ~16), and a datacenter NVMe
// drive (beneficial depth beyond 32) — the "range of storage technologies"
// the paper argues a calibrated cost model must span.
const (
	SSD   = workload.SSD
	HDD   = workload.HDD
	RAID8 = workload.RAID8
	SATA  = workload.SATA
	NVME  = workload.NVME
)

// Config sizes a System. Zero values take the documented defaults.
type Config struct {
	// Device is the storage model to attach. Default SSD.
	Device DeviceKind

	// PoolPages is the buffer pool size in 4 KiB frames. Default 16384
	// (64 MiB, the paper's small-pool setting).
	PoolPages int

	// Cores is the number of logical CPU cores. Default 8.
	Cores int

	// Seed makes all data generation and device behaviour reproducible.
	// Default 1.
	Seed int64

	// Faults, when set, is a fault schedule installed at assembly time,
	// active from virtual time zero — which includes any Calibrate pass.
	// To degrade queries without degrading calibration, call InjectFaults
	// after Calibrate instead; its windows count from the call.
	Faults *FaultSchedule

	// NoScanSharing disables the shared circulating-scan subsystem: every
	// session-submitted full scan reads the heap privately, as in the
	// pre-sharing engine. For A/B benchmarking heavy concurrent traffic
	// (experiments.SharedScan); per-query opt-out is WithNoScanSharing.
	NoScanSharing bool

	// NoDegradationReplan stops the resource broker from shrinking its
	// credit supply when the device reports sustained degradation, so
	// queries keep planning at the healthy queue depth. For A/B
	// benchmarking the degradation response (experiments.Degradation).
	NoDegradationReplan bool

	// GreedyPlanning routes every optimization through the serving-scale
	// plan path: the parameterized plan cache (keyed on query shape with
	// logarithmic selectivity bands, constants bound at lookup) backed by
	// the greedy O(n) access-path fast path with cost-crossover fallback
	// to full enumeration. Off by default — the exhaustive memoized
	// enumeration stays byte-identical to previous releases; per-query
	// opt-in is WithGreedyPlanning.
	GreedyPlanning bool

	// Adaptive makes feedback-driven execution the system default: every
	// eligible query (demand full scans and index scans) runs under the
	// per-query feedback controller, which seeds its initial degree from
	// the calibration sweep's DOP model and retunes worker count and
	// readahead at batch boundaries from live device, broker, and pool
	// signals. Off by default — static plans stay byte-identical to
	// previous releases. Per-query opt-in is WithAdaptive; per-query
	// opt-out is WithStaticDegree.
	Adaptive bool

	// EventLog, when positive, enables the engine's structured event log
	// at assembly time with that ring capacity (see EnableEventLog).
	// Default 0: disabled, with every emit site a single nil check.
	EventLog int

	// Shards is the number of simulated cluster nodes. Default 1 — the
	// single-node engine, byte-identical to pre-cluster builds. With N > 1
	// every node gets its own device, buffer pool, CPU cores, and
	// fault-injection domain (all on one virtual clock); tables are
	// partitioned across nodes at creation and queries run scatter-gather
	// (see DESIGN.md §13). PoolPages and Cores size each node.
	Shards int

	// Partition is the default partitioning for tables created on a
	// sharded system. Default PartitionHash. Per-table override is
	// WithPartition.
	Partition PartitionKind

	// NoHedge disables straggler hedging: scatter-gather queries wait out
	// slow shard reads instead of re-issuing them. The A/B control for
	// benchmarking the hedging policy.
	NoHedge bool

	// HedgeDelay is the straggler-hedge re-issue threshold: a shard read
	// still outstanding after this long gets a speculative duplicate, and
	// the first completion wins. Default 1ms (tuned for SSD-class media;
	// raise it for spinning devices). Only sharded systems hedge.
	HedgeDelay time.Duration
}

// System is a single-user analytical engine over a simulated cluster of
// one or more nodes, each with its own device, buffer pool, and CPU cores
// on one shared virtual clock. It is not safe for concurrent use by
// multiple host goroutines; queries within it execute with intra-query
// parallelism (and, when sharded, cross-node scatter-gather) in virtual
// time.
type System struct {
	env *sim.Env

	// nodes holds the cluster's storage stacks, one per shard. Node 0 is
	// the coordinator: it publishes its device and pool instruments into
	// the registry, hosts the scan-share registry and the session broker,
	// and is the node single-node paths run on. Every access to a device,
	// pool, injector, or CPU resource goes through a node — the fields the
	// pre-cluster System carried are gone, and scripts/verify.sh keeps
	// them out.
	nodes []*node.Node

	costs exec.CPUCosts
	cores int
	seed  int64

	// partition is the default partitioning for sharded tables; hedge is
	// the straggler-hedge re-issue threshold (0 = hedging disabled).
	partition PartitionKind
	hedge     sim.Duration

	// noDegrade disables the broker's degraded-supply response.
	noDegrade bool

	tables map[string]*Table
	model  *cost.QDTT

	// adaptive is the Config.Adaptive system default; dop is the offline
	// DOP model fit on the calibration sweep's points, consulted by
	// adaptive executions to seed their initial degree. dop is dropped
	// with the cost model (LoadModel restores no sweep, so a loaded model
	// runs adaptively with static-plan seeds).
	adaptive bool
	dop      *adapt.Model

	// memo caches plan enumerations across queries; depthOne caches the
	// model's depth-oblivious projection for DepthOblivious planning. Both
	// are dropped whenever a calibration installs a new model.
	memo     *opt.Memo
	depthOne *cost.DTT

	// pcache is the serving-scale parameterized plan cache; Plan routes
	// through it instead of the memo when greedy planning is on (system
	// default greedy, or per-query WithGreedyPlanning). gridKeys caches the
	// flattened enumeration-grid strings plan caches key on, one per
	// distinct PlanOptions grid, so per-query planning never rebuilds them.
	pcache   *opt.ParamCache
	greedy   bool
	gridKeys map[gridSpec]string

	// broker is the shared resource-governance layer (internal/broker),
	// built lazily from the calibrated model and dropped with it; session
	// is the default Submit session riding on it.
	broker  *broker.Broker
	session *Session

	// reg is the engine-wide metrics registry; the device and pool publish
	// cumulative instruments into it at assembly time. observer, when set,
	// receives per-query telemetry.
	reg      *obs.Registry
	observer Observer

	// events is the structured engine event log; nil = disabled, making
	// every emit site a single nil check. nextQID numbers queries for
	// event attribution and advances whether or not the log is on — pure
	// host-side state, invisible to the simulation.
	events  *event.Log
	nextQID int64
}

// New builds a system per cfg.
func New(cfg Config) *System {
	if cfg.PoolPages == 0 {
		cfg.PoolPages = 16384
	}
	if cfg.Cores == 0 {
		cfg.Cores = 8
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	if cfg.Shards <= 0 {
		cfg.Shards = 1
	}
	env := sim.NewEnv(cfg.Seed)
	s := &System{
		env:       env,
		costs:     exec.DefaultCPUCosts(),
		cores:     cfg.Cores,
		seed:      cfg.Seed,
		partition: cfg.Partition,
		noDegrade: cfg.NoDegradationReplan,
		adaptive:  cfg.Adaptive,
		tables:    make(map[string]*Table),
		memo:      opt.NewMemo(),
		pcache:    opt.NewParamCache(),
		greedy:    cfg.GreedyPlanning,
		gridKeys:  make(map[gridSpec]string),
		reg:       obs.NewRegistry(env),
	}
	if cfg.Shards > 1 && !cfg.NoHedge {
		hd := cfg.HedgeDelay
		if hd == 0 {
			hd = time.Millisecond
		}
		s.hedge = sim.Duration(hd)
	}
	// Node assembly replicates the pre-cluster construction sequence (the
	// fault injector always wraps the raw device; unarmed it is pure
	// passthrough, adding no events and drawing no randomness), so a
	// one-shard system is byte-identical to the single-device builds. Only
	// the coordinator hosts the scan-share registry: the circulating-scan
	// subsystem serves session traffic, which is single-node.
	for i := 0; i < cfg.Shards; i++ {
		s.nodes = append(s.nodes, node.New(env, i, node.Config{
			Kind:       cfg.Device,
			PoolPages:  cfg.PoolPages,
			Cores:      cfg.Cores,
			Shares:     i == 0 && !cfg.NoScanSharing,
			HedgeDelay: s.hedge,
		}))
	}
	n0 := s.coord()
	n0.Dev.Metrics().Publish(s.reg)
	n0.Pool.Publish(s.reg)
	if n0.Shares != nil {
		n0.Shares.Publish(s.reg)
	}
	if cfg.EventLog > 0 {
		s.EnableEventLog(cfg.EventLog)
	}
	if cfg.Faults != nil {
		s.InjectFaults(*cfg.Faults)
	}
	return s
}

// coord returns the coordinator node (node 0): the stack single-node
// execution runs on and the one whose instruments the registry publishes.
func (s *System) coord() *node.Node { return s.nodes[0] }

// Shards reports the number of simulated cluster nodes.
func (s *System) Shards() int { return len(s.nodes) }

// Table is a heap table with two integer columns, C1 (aggregated) and C2
// (uniform by default, optionally Zipf-skewed, optionally indexed), plus
// padding captured by the rows-per-page parameter. On a sharded system the
// table is partitioned: each node holds one horizontal slice (its own heap
// file, C2 index, and histogram on its own device), and queries over it
// scatter-gather.
type Table struct {
	sys  *System
	name string

	// kind and cuts describe the partitioning of a sharded table: cuts
	// holds the ascending upper-exclusive range bounds (len(parts)-1) for
	// the range kinds, nil for hash. Unsharded tables have one part.
	kind PartitionKind
	cuts []int64

	parts []tablePart
}

// tablePart is one node's slice of a table. An empty partition (a range
// cut that caught no rows) keeps its node but has a nil tab.
type tablePart struct {
	node *node.Node
	tab  table.Table
	idx  *btree.Index
	hist *stats.Histogram // nil for synthetic (uniform-by-construction) tables
}

// sharded reports whether the table is partitioned across multiple nodes.
func (t *Table) sharded() bool { return len(t.parts) > 1 }

// one returns the sole part of an unsharded table — the accessor every
// single-node path uses after its sharded() guard.
func (t *Table) one() *tablePart { return &t.parts[0] }

// Name returns the table name.
func (t *Table) Name() string { return t.name }

// Rows returns the table cardinality (summed across shards).
func (t *Table) Rows() int64 {
	var n int64
	for i := range t.parts {
		if t.parts[i].tab != nil {
			n += t.parts[i].tab.Rows()
		}
	}
	return n
}

// Pages returns the heap size in pages (summed across shards).
func (t *Table) Pages() int64 {
	var n int64
	for i := range t.parts {
		if t.parts[i].tab != nil {
			n += t.parts[i].tab.Pages()
		}
	}
	return n
}

// Indexed reports whether the C2 index has been created.
func (t *Table) Indexed() bool {
	for i := range t.parts {
		if t.parts[i].idx != nil {
			return true
		}
	}
	return false
}

// Partitioning reports how a sharded table spreads rows across nodes;
// meaningful only when the system has more than one shard.
func (t *Table) Partitioning() PartitionKind { return t.kind }

// ShardRows reports each shard's row count, in node order — the balance a
// partitioning achieved (one entry for unsharded tables). Rebalancing a
// skewed range partition is recreating the table with
// PartitionRangeBalanced.
func (t *Table) ShardRows() []int64 {
	out := make([]int64, len(t.parts))
	for i := range t.parts {
		if t.parts[i].tab != nil {
			out[i] = t.parts[i].tab.Rows()
		}
	}
	return out
}

// TableOption configures CreateTable.
type TableOption func(*tableOptions)

type tableOptions struct {
	synthetic bool
	noIndex   bool
	seed      int64
	zipf      float64
	part      PartitionKind // -1 = system default
}

// WithSyntheticData stores no row values: C2 is an invertible permutation
// of the row number and C1 a hash, so arbitrarily large tables use O(1)
// memory. Use for large-scale sweeps; the default materialized backing is
// better for verifying answers.
func WithSyntheticData() TableOption { return func(o *tableOptions) { o.synthetic = true } }

// WithoutIndex skips creating the non-clustered C2 index; index scans on
// the table become unavailable and the optimizer will only consider full
// scans.
func WithoutIndex() TableOption { return func(o *tableOptions) { o.noIndex = true } }

// WithTableSeed overrides the data-generation seed for this table.
func WithTableSeed(seed int64) TableOption { return func(o *tableOptions) { o.seed = seed } }

// WithZipfData draws C2 from a Zipf distribution with the given exponent
// (> 1) instead of uniformly — heavily skewed toward small keys. The
// engine builds an equi-width histogram on C2 at load time and the
// optimizer estimates predicate cardinalities from it, so plans stay sound
// on skewed data. Incompatible with WithSyntheticData.
func WithZipfData(exponent float64) TableOption {
	return func(o *tableOptions) { o.zipf = exponent }
}

// WithPartition overrides the system's default partitioning for this
// table. Ignored on single-shard systems.
func WithPartition(k PartitionKind) TableOption {
	return func(o *tableOptions) { o.part = k }
}

// CreateTable builds a heap of rows rows at rowsPerPage occupancy together
// with (unless disabled) the non-clustered C2 index, allocating both on the
// system device.
func (s *System) CreateTable(name string, rows int64, rowsPerPage int, options ...TableOption) (*Table, error) {
	if name == "" {
		return nil, errors.New("pioqo: empty table name")
	}
	if _, dup := s.tables[name]; dup {
		return nil, fmt.Errorf("pioqo: table %q already exists", name)
	}
	if rows <= 0 || rowsPerPage <= 0 {
		return nil, fmt.Errorf("pioqo: table %q: rows=%d rowsPerPage=%d", name, rows, rowsPerPage)
	}
	o := tableOptions{seed: s.seed, part: -1}
	for _, opt := range options {
		opt(&o)
	}
	if o.synthetic && o.zipf > 0 {
		return nil, fmt.Errorf("pioqo: table %q: synthetic data is uniform by construction; WithZipfData needs a materialized table", name)
	}
	if o.zipf != 0 && o.zipf <= 1 {
		return nil, fmt.Errorf("pioqo: table %q: zipf exponent %f must exceed 1", name, o.zipf)
	}
	if len(s.nodes) > 1 {
		return s.createShardedTable(name, rows, rowsPerPage, o)
	}

	mgr := s.coord().Manager
	heapPages := (rows + int64(rowsPerPage) - 1) / int64(rowsPerPage)
	need := heapPages + rows/btree.DefaultLeafCap + 8
	if need > mgr.Free() {
		return nil, fmt.Errorf("pioqo: table %q needs %d pages, device has %d free",
			name, need, mgr.Free())
	}

	t := &Table{sys: s, name: name, parts: make([]tablePart, 1)}
	part := &t.parts[0]
	part.node = s.coord()
	switch {
	case o.synthetic:
		st := table.NewSynthetic(mgr, name, rows, rowsPerPage, o.seed)
		part.tab = st
		if !o.noIndex {
			part.idx = btree.NewSynthetic(mgr, st, 0, 0)
		}
	default:
		var mt *table.Materialized
		if o.zipf > 0 {
			mt = table.NewMaterializedZipf(mgr, name, rows, rowsPerPage, o.seed, o.zipf)
		} else {
			mt = table.NewMaterialized(mgr, name, rows, rowsPerPage, o.seed)
		}
		part.tab = mt
		if !o.noIndex {
			part.idx = btree.NewMaterialized(mgr, mt, 0, 0)
		}
		part.hist = stats.BuildHistogram(mt, 0)
	}
	s.tables[name] = t
	return t, nil
}

// TableByName returns a previously created table, or false.
func (s *System) TableByName(name string) (*Table, bool) {
	t, ok := s.tables[name]
	return t, ok
}

// Tables returns the names of all created tables, sorted.
func (s *System) Tables() []string {
	names := make([]string, 0, len(s.tables))
	for name := range s.tables {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// FlushBufferPool drops every unpinned page on every node, modelling a
// cold cache cluster-wide.
func (s *System) FlushBufferPool() {
	for _, n := range s.nodes {
		n.Pool.Flush()
	}
}

// BufferPoolResident reports how many of t's heap pages are cached,
// summed across the nodes holding its partitions.
func (s *System) BufferPoolResident(t *Table) int64 {
	var n int64
	for i := range t.parts {
		part := &t.parts[i]
		if part.tab != nil {
			n += part.node.Pool.Resident(part.tab.File())
		}
	}
	return n
}

// DeviceName reports the attached device model (all nodes run the same).
func (s *System) DeviceName() string { return s.coord().Dev.Name() }

// nodeContext builds the executor context addressing one node's stack.
func (s *System) nodeContext(n *node.Node) *exec.Context {
	return &exec.Context{Env: s.env, CPU: n.CPU, Pool: n.Pool, Dev: n.Dev,
		Costs: s.costs, Reg: s.reg, Log: s.events, Shares: n.Shares}
}

// execContext is the coordinator-node context single-node paths run on.
func (s *System) execContext() *exec.Context { return s.nodeContext(s.coord()) }

// Now reports the system's virtual clock.
func (s *System) Now() time.Duration { return time.Duration(s.env.Now()) }
