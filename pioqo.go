// Package pioqo is a parallel-I/O-aware query optimization engine — a full
// reproduction of "Parallel I/O Aware Query Optimization" (Ghodsnia, Bowman,
// Nica; SIGMOD 2014).
//
// The package bundles a deterministic virtual-time storage stack (HDD, SSD,
// and RAID0 device models; buffer pool; heap tables; B+-tree index), the
// paper's four access methods (full table scan and index scan, serial and
// intra-query parallel, with asynchronous prefetching), and its two I/O cost
// models: the classic band-size-only DTT model and the queue-depth-aware
// QDTT model that is the paper's contribution. A calibration pass measures
// the attached device and produces the QDTT model; the cost-based optimizer
// then chooses access method and parallel degree per query.
//
// A minimal session:
//
//	sys := pioqo.New(pioqo.Config{Device: pioqo.SSD})
//	tab, _ := sys.CreateTable("orders", 200_000, 33)
//	cal, _ := sys.Calibrate(pioqo.CalibrationOptions{})
//	res, _ := sys.Execute(pioqo.Query{Table: tab, Low: 0, High: 999})
//	fmt.Println(res.Value, res.Runtime)
//
// Everything runs in simulated time: Execute's Result.Runtime is the
// modelled wall-clock of the query on the modelled device, typically
// computed in well under a millisecond of host time.
package pioqo

import (
	"errors"
	"fmt"
	"sort"
	"time"

	"pioqo/internal/broker"
	"pioqo/internal/btree"
	"pioqo/internal/buffer"
	"pioqo/internal/cost"
	"pioqo/internal/device"
	"pioqo/internal/disk"
	"pioqo/internal/exec"
	"pioqo/internal/fault"
	"pioqo/internal/obs"
	"pioqo/internal/obs/event"
	"pioqo/internal/opt"
	"pioqo/internal/sim"
	"pioqo/internal/stats"
	"pioqo/internal/table"
	"pioqo/internal/workload"
)

// DeviceKind selects the simulated storage device backing a System.
type DeviceKind = workload.DeviceKind

// Available device models: a consumer PCIe SSD (~1.5 GB/s sequential,
// ~200 K IOPS at queue depth 32), a commodity 7200 RPM hard drive
// (~110 MB/s sequential), a stripe set of eight 15 kRPM spindles, a
// SATA-generation SSD (beneficial queue depth ~16), and a datacenter NVMe
// drive (beneficial depth beyond 32) — the "range of storage technologies"
// the paper argues a calibrated cost model must span.
const (
	SSD   = workload.SSD
	HDD   = workload.HDD
	RAID8 = workload.RAID8
	SATA  = workload.SATA
	NVME  = workload.NVME
)

// Config sizes a System. Zero values take the documented defaults.
type Config struct {
	// Device is the storage model to attach. Default SSD.
	Device DeviceKind

	// PoolPages is the buffer pool size in 4 KiB frames. Default 16384
	// (64 MiB, the paper's small-pool setting).
	PoolPages int

	// Cores is the number of logical CPU cores. Default 8.
	Cores int

	// Seed makes all data generation and device behaviour reproducible.
	// Default 1.
	Seed int64

	// Faults, when set, is a fault schedule installed at assembly time,
	// active from virtual time zero — which includes any Calibrate pass.
	// To degrade queries without degrading calibration, call InjectFaults
	// after Calibrate instead; its windows count from the call.
	Faults *FaultSchedule

	// NoScanSharing disables the shared circulating-scan subsystem: every
	// session-submitted full scan reads the heap privately, as in the
	// pre-sharing engine. For A/B benchmarking heavy concurrent traffic
	// (experiments.SharedScan); per-query opt-out is WithNoScanSharing.
	NoScanSharing bool

	// NoDegradationReplan stops the resource broker from shrinking its
	// credit supply when the device reports sustained degradation, so
	// queries keep planning at the healthy queue depth. For A/B
	// benchmarking the degradation response (experiments.Degradation).
	NoDegradationReplan bool

	// GreedyPlanning routes every optimization through the serving-scale
	// plan path: the parameterized plan cache (keyed on query shape with
	// logarithmic selectivity bands, constants bound at lookup) backed by
	// the greedy O(n) access-path fast path with cost-crossover fallback
	// to full enumeration. Off by default — the exhaustive memoized
	// enumeration stays byte-identical to previous releases; per-query
	// opt-in is WithGreedyPlanning.
	GreedyPlanning bool

	// EventLog, when positive, enables the engine's structured event log
	// at assembly time with that ring capacity (see EnableEventLog).
	// Default 0: disabled, with every emit site a single nil check.
	EventLog int
}

// System is a single-user analytical engine over one simulated device. It
// is not safe for concurrent use by multiple host goroutines; queries
// within it execute with intra-query parallelism in virtual time.
type System struct {
	env     *sim.Env
	dev     device.Device
	inj     *fault.Injector // always wraps the raw device; passthrough unarmed
	manager *disk.Manager
	pool    *buffer.Pool
	// shares is the per-table circulating-scan registry concurrent full
	// scans attach to; nil when Config.NoScanSharing disabled the subsystem.
	shares *buffer.Shares
	cpu     *sim.Resource
	costs   exec.CPUCosts
	cores   int
	seed    int64

	// noDegrade disables the broker's degraded-supply response.
	noDegrade bool

	tables map[string]*Table
	model  *cost.QDTT

	// memo caches plan enumerations across queries; depthOne caches the
	// model's depth-oblivious projection for DepthOblivious planning. Both
	// are dropped whenever a calibration installs a new model.
	memo     *opt.Memo
	depthOne *cost.DTT

	// pcache is the serving-scale parameterized plan cache; Plan routes
	// through it instead of the memo when greedy planning is on (system
	// default greedy, or per-query WithGreedyPlanning). gridKeys caches the
	// flattened enumeration-grid strings plan caches key on, one per
	// distinct PlanOptions grid, so per-query planning never rebuilds them.
	pcache   *opt.ParamCache
	greedy   bool
	gridKeys map[gridSpec]string

	// broker is the shared resource-governance layer (internal/broker),
	// built lazily from the calibrated model and dropped with it; session
	// is the default Submit session riding on it.
	broker  *broker.Broker
	session *Session

	// reg is the engine-wide metrics registry; the device and pool publish
	// cumulative instruments into it at assembly time. observer, when set,
	// receives per-query telemetry.
	reg      *obs.Registry
	observer Observer

	// events is the structured engine event log; nil = disabled, making
	// every emit site a single nil check. nextQID numbers queries for
	// event attribution and advances whether or not the log is on — pure
	// host-side state, invisible to the simulation.
	events  *event.Log
	nextQID int64
}

// New builds a system per cfg.
func New(cfg Config) *System {
	if cfg.PoolPages == 0 {
		cfg.PoolPages = 16384
	}
	if cfg.Cores == 0 {
		cfg.Cores = 8
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	env := sim.NewEnv(cfg.Seed)
	// The fault injector always wraps the raw device. Unarmed it is pure
	// passthrough — it returns the inner device's completions directly,
	// adding no events and drawing no randomness — so a fault-free system
	// behaves byte-identically to one without the layer.
	inj := fault.Wrap(env, workload.NewDevice(env, cfg.Device))
	s := &System{
		env:       env,
		dev:       inj,
		inj:       inj,
		manager:   disk.NewManager(inj),
		pool:      buffer.NewPool(env, cfg.PoolPages),
		cpu:       sim.NewResource(env, "cpu", cfg.Cores),
		costs:     exec.DefaultCPUCosts(),
		cores:     cfg.Cores,
		seed:      cfg.Seed,
		noDegrade: cfg.NoDegradationReplan,
		tables:    make(map[string]*Table),
		memo:      opt.NewMemo(),
		pcache:    opt.NewParamCache(),
		greedy:    cfg.GreedyPlanning,
		gridKeys:  make(map[gridSpec]string),
		reg:       obs.NewRegistry(env),
	}
	s.dev.Metrics().Publish(s.reg)
	s.pool.Publish(s.reg)
	if !cfg.NoScanSharing {
		s.shares = buffer.NewShares(env, s.pool, buffer.ShareConfig{})
		s.shares.Publish(s.reg)
	}
	if cfg.EventLog > 0 {
		s.EnableEventLog(cfg.EventLog)
	}
	if cfg.Faults != nil {
		s.inj.Arm(cfg.Faults.internal())
	}
	return s
}

// Table is a heap table with two integer columns, C1 (aggregated) and C2
// (uniform by default, optionally Zipf-skewed, optionally indexed), plus
// padding captured by the rows-per-page parameter.
type Table struct {
	sys  *System
	tab  table.Table
	idx  *btree.Index
	hist *stats.Histogram // nil for synthetic (uniform-by-construction) tables
}

// Name returns the table name.
func (t *Table) Name() string { return t.tab.Name() }

// Rows returns the table cardinality.
func (t *Table) Rows() int64 { return t.tab.Rows() }

// Pages returns the heap size in pages.
func (t *Table) Pages() int64 { return t.tab.Pages() }

// Indexed reports whether the C2 index has been created.
func (t *Table) Indexed() bool { return t.idx != nil }

// TableOption configures CreateTable.
type TableOption func(*tableOptions)

type tableOptions struct {
	synthetic bool
	noIndex   bool
	seed      int64
	zipf      float64
}

// WithSyntheticData stores no row values: C2 is an invertible permutation
// of the row number and C1 a hash, so arbitrarily large tables use O(1)
// memory. Use for large-scale sweeps; the default materialized backing is
// better for verifying answers.
func WithSyntheticData() TableOption { return func(o *tableOptions) { o.synthetic = true } }

// WithoutIndex skips creating the non-clustered C2 index; index scans on
// the table become unavailable and the optimizer will only consider full
// scans.
func WithoutIndex() TableOption { return func(o *tableOptions) { o.noIndex = true } }

// WithTableSeed overrides the data-generation seed for this table.
func WithTableSeed(seed int64) TableOption { return func(o *tableOptions) { o.seed = seed } }

// WithZipfData draws C2 from a Zipf distribution with the given exponent
// (> 1) instead of uniformly — heavily skewed toward small keys. The
// engine builds an equi-width histogram on C2 at load time and the
// optimizer estimates predicate cardinalities from it, so plans stay sound
// on skewed data. Incompatible with WithSyntheticData.
func WithZipfData(exponent float64) TableOption {
	return func(o *tableOptions) { o.zipf = exponent }
}

// CreateTable builds a heap of rows rows at rowsPerPage occupancy together
// with (unless disabled) the non-clustered C2 index, allocating both on the
// system device.
func (s *System) CreateTable(name string, rows int64, rowsPerPage int, options ...TableOption) (*Table, error) {
	if name == "" {
		return nil, errors.New("pioqo: empty table name")
	}
	if _, dup := s.tables[name]; dup {
		return nil, fmt.Errorf("pioqo: table %q already exists", name)
	}
	if rows <= 0 || rowsPerPage <= 0 {
		return nil, fmt.Errorf("pioqo: table %q: rows=%d rowsPerPage=%d", name, rows, rowsPerPage)
	}
	o := tableOptions{seed: s.seed}
	for _, opt := range options {
		opt(&o)
	}
	heapPages := (rows + int64(rowsPerPage) - 1) / int64(rowsPerPage)
	need := heapPages + rows/btree.DefaultLeafCap + 8
	if need > s.manager.Free() {
		return nil, fmt.Errorf("pioqo: table %q needs %d pages, device has %d free",
			name, need, s.manager.Free())
	}

	t := &Table{sys: s}
	switch {
	case o.synthetic && o.zipf > 0:
		return nil, fmt.Errorf("pioqo: table %q: synthetic data is uniform by construction; WithZipfData needs a materialized table", name)
	case o.synthetic:
		st := table.NewSynthetic(s.manager, name, rows, rowsPerPage, o.seed)
		t.tab = st
		if !o.noIndex {
			t.idx = btree.NewSynthetic(s.manager, st, 0, 0)
		}
	default:
		var mt *table.Materialized
		if o.zipf > 0 {
			if o.zipf <= 1 {
				return nil, fmt.Errorf("pioqo: table %q: zipf exponent %f must exceed 1", name, o.zipf)
			}
			mt = table.NewMaterializedZipf(s.manager, name, rows, rowsPerPage, o.seed, o.zipf)
		} else {
			mt = table.NewMaterialized(s.manager, name, rows, rowsPerPage, o.seed)
		}
		t.tab = mt
		if !o.noIndex {
			t.idx = btree.NewMaterialized(s.manager, mt, 0, 0)
		}
		t.hist = stats.BuildHistogram(mt, 0)
	}
	s.tables[name] = t
	return t, nil
}

// TableByName returns a previously created table, or false.
func (s *System) TableByName(name string) (*Table, bool) {
	t, ok := s.tables[name]
	return t, ok
}

// Tables returns the names of all created tables, sorted.
func (s *System) Tables() []string {
	names := make([]string, 0, len(s.tables))
	for name := range s.tables {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// FlushBufferPool drops every unpinned page, modelling a cold cache.
func (s *System) FlushBufferPool() { s.pool.Flush() }

// BufferPoolResident reports how many of t's heap pages are cached.
func (s *System) BufferPoolResident(t *Table) int64 { return s.pool.Resident(t.tab.File()) }

// DeviceName reports the attached device model.
func (s *System) DeviceName() string { return s.dev.Name() }

func (s *System) execContext() *exec.Context {
	return &exec.Context{Env: s.env, CPU: s.cpu, Pool: s.pool, Dev: s.dev,
		Costs: s.costs, Reg: s.reg, Log: s.events, Shares: s.shares}
}

// Now reports the system's virtual clock.
func (s *System) Now() time.Duration { return time.Duration(s.env.Now()) }
