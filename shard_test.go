package pioqo

import (
	"testing"
	"time"
)

// newShardedCalibrated builds a calibrated cluster with one partitioned
// table (zipf <= 0 means uniform data).
func newShardedCalibrated(t *testing.T, shards int, kind PartitionKind, rows int64, zipf float64, opts ...TableOption) (*System, *Table) {
	t.Helper()
	sys := New(Config{Device: SSD, PoolPages: 1024, Shards: shards, Partition: kind})
	topts := opts
	if zipf > 0 {
		topts = append([]TableOption{WithZipfData(zipf)}, opts...)
	}
	tab, err := sys.CreateTable("t", rows, 33, topts...)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Calibrate(CalibrationOptions{MaxReads: 640}); err != nil {
		t.Fatal(err)
	}
	return sys, tab
}

// TestShardedAggregatesMatchUnsharded is the merge-decomposability
// invariant: per-shard MAX/MIN/COUNT/SUM partials folded by the gather
// operator must equal the unsharded answer byte for byte, across every
// partitioning, shard count, and both data distributions — the partitions
// hold the same row multiset, so the decomposable folds commute.
func TestShardedAggregatesMatchUnsharded(t *testing.T) {
	queries := []Query{
		{Low: 0, High: 499},
		{Low: 100, High: 30000},
		{Low: 0, High: 49999}, // everything
		{Low: 700, High: 650}, // empty range
	}
	aggs := []Aggregate{Max, Min, Count, Sum}
	for _, zipf := range []float64{0, 1.3} {
		ref, refTab := newShardedCalibrated(t, 1, PartitionHash, 50000, zipf)
		want := make(map[[3]int64]Result)
		for _, q := range queries {
			for _, agg := range aggs {
				q.Table, q.Agg = refTab, agg
				res, err := ref.Execute(q)
				if err != nil {
					t.Fatal(err)
				}
				want[[3]int64{q.Low, q.High, int64(agg)}] = res
			}
		}
		for _, kind := range []PartitionKind{PartitionHash, PartitionRange, PartitionRangeBalanced} {
			for _, shards := range []int{2, 4, 8} {
				sys, tab := newShardedCalibrated(t, shards, kind, 50000, zipf)
				for _, q := range queries {
					for _, agg := range aggs {
						q.Table, q.Agg = tab, agg
						res, err := sys.Execute(q)
						if err != nil {
							t.Fatal(err)
						}
						w := want[[3]int64{q.Low, q.High, int64(agg)}]
						if res.Value != w.Value || res.Found != w.Found || res.Rows != w.Rows {
							t.Errorf("zipf=%v %v shards=%d %v [%d,%d]: got (%d,%v,%d rows), unsharded (%d,%v,%d rows)",
								zipf, kind, shards, agg, q.Low, q.High,
								res.Value, res.Found, res.Rows, w.Value, w.Found, w.Rows)
						}
					}
				}
			}
		}
	}
}

// TestShardedGroupByMatchesUnsharded checks the GROUP BY decomposition:
// per-shard group hashes folded on the coordinator must reproduce the
// unsharded groups exactly, keys and order included.
func TestShardedGroupByMatchesUnsharded(t *testing.T) {
	ref, refTab := newShardedCalibrated(t, 1, PartitionHash, 50000, 1.3)
	want, err := ref.ExecuteGroupBy(GroupByQuery{Table: refTab, Low: 0, High: 20000, GroupWidth: 1000, Agg: Sum})
	if err != nil {
		t.Fatal(err)
	}
	for _, kind := range []PartitionKind{PartitionHash, PartitionRangeBalanced} {
		sys, tab := newShardedCalibrated(t, 4, kind, 50000, 1.3)
		got, err := sys.ExecuteGroupBy(GroupByQuery{Table: tab, Low: 0, High: 20000, GroupWidth: 1000, Agg: Sum})
		if err != nil {
			t.Fatal(err)
		}
		if got.Rows != want.Rows || len(got.Groups) != len(want.Groups) {
			t.Fatalf("%v: %d rows in %d groups, unsharded %d rows in %d groups",
				kind, got.Rows, len(got.Groups), want.Rows, len(want.Groups))
		}
		for i, g := range got.Groups {
			if g != want.Groups[i] {
				t.Errorf("%v group[%d] = %+v, unsharded %+v", kind, i, g, want.Groups[i])
			}
		}
	}
}

// TestRangePartitionPruning checks that a range predicate over a
// range-partitioned table prunes the non-overlapping shards from the scatter.
func TestRangePartitionPruning(t *testing.T) {
	sys, tab := newShardedCalibrated(t, 8, PartitionRange, 50000, 0)
	plan, err := sys.Plan(Query{Table: tab, Low: 0, High: 499}, PlanOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if plan.Fanout != 1 {
		t.Errorf("narrow range over 8 range shards: fanout %d, want 1 (plan %v)", plan.Fanout, plan)
	}
	res, err := sys.Execute(Query{Table: tab, Low: 0, High: 499})
	if err != nil {
		t.Fatal(err)
	}
	if res.Plan.Fanout != 1 {
		t.Errorf("executed fanout %d, want 1", res.Plan.Fanout)
	}
	// Hash partitions hold every key range: no pruning possible.
	hsys, htab := newShardedCalibrated(t, 8, PartitionHash, 50000, 0)
	hplan, err := hsys.Plan(Query{Table: htab, Low: 0, High: 499}, PlanOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if hplan.Fanout != 8 {
		t.Errorf("hash partition fanout %d, want 8", hplan.Fanout)
	}
	// Correctness under pruning: same answer as unsharded.
	ref, refTab := newShardedCalibrated(t, 1, PartitionHash, 50000, 0)
	want, err := ref.Execute(Query{Table: refTab, Low: 0, High: 499})
	if err != nil {
		t.Fatal(err)
	}
	if res.Value != want.Value || res.Rows != want.Rows {
		t.Errorf("pruned result (%d, %d rows) != unsharded (%d, %d rows)",
			res.Value, res.Rows, want.Value, want.Rows)
	}
}

// TestRangeBalancedCutsRebalance checks the rebalance sweep's premise:
// equal-width cuts overload the hot shard of a Zipf table, quantile cuts
// spread it near-evenly.
func TestRangeBalancedCutsRebalance(t *testing.T) {
	_, naive := newShardedCalibrated(t, 8, PartitionRange, 50000, 1.3)
	_, balanced := newShardedCalibrated(t, 8, PartitionRangeBalanced, 50000, 1.3)
	imbalance := func(rows []int64) float64 {
		var max, total int64
		for _, r := range rows {
			total += r
			if r > max {
				max = r
			}
		}
		return float64(max) / (float64(total) / float64(len(rows)))
	}
	ni, bi := imbalance(naive.ShardRows()), imbalance(balanced.ShardRows())
	if ni < 4 {
		t.Errorf("equal-width cuts on zipf data: max/mean imbalance %.2f, expected heavy (>4x) skew; rows %v",
			ni, naive.ShardRows())
	}
	// Range cuts cannot split a single hot key, so the balanced layout's
	// floor is the hot key's mass (~26% of rows at zipf 1.3, ~2.1x the
	// 8-shard mean); require at least a halving of the naive imbalance.
	if bi*2 > ni {
		t.Errorf("balanced cuts imbalance %.2f did not halve naive %.2f; rows %v",
			bi, ni, balanced.ShardRows())
	}
}

// TestHedgingUnderStragglers checks the straggler-hedging policy: with a
// straggler-injecting fault schedule on every node, the hedged cluster
// answers identically to the unhedged one (speculative duplicates are
// deduplicated — exactly-once rows), issues hedges, wins some, and doesn't
// run slower.
func TestHedgingUnderStragglers(t *testing.T) {
	sch := FaultSchedule{Windows: []FaultWindow{{
		StragglerRate:    0.10,
		StragglerLatency: 20 * time.Millisecond,
	}}}
	run := func(noHedge bool) (Result, HedgeStats) {
		sys := New(Config{Device: SSD, PoolPages: 1024, Shards: 4, NoHedge: noHedge, HedgeDelay: 2 * time.Millisecond})
		tab, err := sys.CreateTable("t", 100000, 33)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := sys.Calibrate(CalibrationOptions{MaxReads: 640}); err != nil {
			t.Fatal(err)
		}
		sys.InjectFaults(sch)
		res, err := sys.Execute(Query{Table: tab, Low: 0, High: 99999})
		if err != nil {
			t.Fatal(err)
		}
		return res, sys.HedgeStats()
	}
	hedged, hs := run(false)
	unhedged, uhs := run(true)
	if uhs.Issued != 0 {
		t.Errorf("NoHedge system issued %d hedges", uhs.Issued)
	}
	if hs.Issued == 0 {
		t.Error("hedged system issued no speculative reads under 10% stragglers")
	}
	if hs.Wins == 0 {
		t.Error("no hedge ever won against a 20ms straggler")
	}
	if hedged.Value != unhedged.Value || hedged.Rows != unhedged.Rows || hedged.Found != unhedged.Found {
		t.Errorf("hedged answer (%d, %d rows) != unhedged (%d, %d rows): speculative read leaked into results",
			hedged.Value, hedged.Rows, unhedged.Value, unhedged.Rows)
	}
	if hedged.Runtime > unhedged.Runtime {
		t.Errorf("hedging slowed the scatter down: %v hedged vs %v unhedged", hedged.Runtime, unhedged.Runtime)
	}
}

// TestShardedMakespanScales checks the scatter's point: spreading a scan
// over N devices divides the makespan.
func TestShardedMakespanScales(t *testing.T) {
	runtimes := make(map[int]time.Duration)
	for _, shards := range []int{1, 8} {
		sys, tab := newShardedCalibrated(t, shards, PartitionHash, 200000, 0)
		res, err := sys.Execute(Query{Table: tab, Low: 0, High: 199999}, Cold())
		if err != nil {
			t.Fatal(err)
		}
		runtimes[shards] = res.Runtime
	}
	if runtimes[8] <= 0 || runtimes[1] < 2*runtimes[8] {
		t.Errorf("full scan: 1 shard %v, 8 shards %v — want >2x makespan improvement",
			runtimes[1], runtimes[8])
	}
}

// TestShardedSingleNodeOpsRejected checks that the single-node entrypoints
// reject partitioned tables with a clear error instead of scanning one
// partition silently.
func TestShardedSingleNodeOpsRejected(t *testing.T) {
	sys, tab := newShardedCalibrated(t, 4, PartitionHash, 20000, 0)
	if _, err := sys.Submit(Query{Table: tab, Low: 0, High: 99}); err == nil {
		t.Error("Submit on a sharded table succeeded; want error")
	}
	if _, err := sys.Update(UpdateQuery{Table: tab, Low: 0, High: 99, Delta: 1}); err == nil {
		t.Error("Update on a sharded table succeeded; want error")
	}
	if _, err := sys.ExecuteJoin(JoinQuery{Build: tab, Probe: tab, Low: 0, High: 99}); err == nil {
		t.Error("ExecuteJoin on a sharded table succeeded; want error")
	}
	if _, err := sys.Explain(Query{Table: tab, Low: 0, High: 99}, PlanOptions{}); err == nil {
		t.Error("Explain on a sharded table succeeded; want error")
	}
	if _, err := sys.CreateTable("syn", 1000, 33, WithSyntheticData()); err == nil {
		t.Error("synthetic sharded table succeeded; want error")
	}
}

// TestShardedProgressAndEvents checks the observability surface: the
// shard.* events land in the engine log and per-shard progress rolls up
// into the query counter.
func TestShardedProgressAndEvents(t *testing.T) {
	sys := New(Config{Device: SSD, PoolPages: 1024, Shards: 4, EventLog: 4096})
	tab, err := sys.CreateTable("t", 50000, 33)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Calibrate(CalibrationOptions{MaxReads: 640}); err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Execute(Query{Table: tab, Low: 0, High: 49999}); err != nil {
		t.Fatal(err)
	}
	seen := map[string]int{}
	for _, e := range sys.EngineEvents() {
		seen[e.Name]++
	}
	if seen["shard.scatter"] != 1 {
		t.Errorf("shard.scatter events = %d, want 1", seen["shard.scatter"])
	}
	if seen["shard.partial"] != 4 {
		t.Errorf("shard.partial events = %d, want 4", seen["shard.partial"])
	}
	if seen["shard.gather.done"] != 1 {
		t.Errorf("shard.gather.done events = %d, want 1", seen["shard.gather.done"])
	}
	io := sys.NodeIO()
	if len(io) != 4 {
		t.Fatalf("NodeIO reported %d nodes, want 4", len(io))
	}
	for _, n := range io {
		if n.Requests == 0 {
			t.Errorf("node %d issued no device reads during a full scatter scan", n.Node)
		}
	}
}
