#!/bin/sh
# Full verification gate: the tier-1 check from ROADMAP.md, plus static
# analysis and a race-detector pass over the packages with the most
# scheduling-sensitive state (the simulator core and the observability
# primitives layered on it).
set -eux

cd "$(dirname "$0")/.."

# Tier 1 (keep in sync with ROADMAP.md).
go build ./...
go test ./...

# Tier 2: vet everything, race-test the event loop and metrics/span layer,
# plus the host-parallel sweep runner and the experiments that fan out on it
# (the determinism tests compare serial vs parallel output byte for byte),
# plus the batched executor and memoized optimizer, plus the root-package
# telemetry paths (observer + per-query WithTrace attribution under
# concurrent sessions, event log, progress, SLO reporting).
go vet ./...
go test -race ./internal/sim/... ./internal/obs/... ./internal/host/... ./internal/experiments/... ./internal/exec/... ./internal/opt/... ./internal/broker/... ./internal/fault/... ./internal/buffer/... ./internal/node/... ./internal/adapt/...
go test -race -run 'TestEventLog|TestLiveProgress|TestSLOReport|TestConcurrentAttribution|TestObserver|TestAdaptive|TestWithAdaptive' .

# Node-assembly lint: a cluster node's storage stack (device, fault
# injector, disk manager, buffer pool, share registry) is assembled in
# internal/node and only there — the public package addresses nodes, never
# raw storage constructors. A direct constructor call in the root package
# rebuilds the pre-cluster single-device ownership the node refactor
# removed, and bypasses the hedger/injector layering scans depend on.
if grep -nE '(workload\.NewDevice|fault\.Wrap|buffer\.NewPool|buffer\.NewShares|disk\.NewManager)\(' ./*.go |
	grep -v '_test\.go'; then
	echo "verify: raw storage-stack constructor in the public package (assemble through internal/node)" >&2
	exit 1
fi

# Node-addressing lint: the System owns nodes, not storage fields. Direct
# s.dev/s.pool/s.inj/s.shares/s.manager/s.cpu accesses are the pre-cluster
# field layout; engine code must go through s.nodes[i] / s.coord().
if grep -nE 's\.(dev|pool|inj|shares|manager|cpu)\b' ./*.go |
	grep -v '_test\.go'; then
	echo "verify: direct System storage-field access in the public package (address the node instead)" >&2
	exit 1
fi

# Batch-accounting lint: every worker CPU charge in the executor must flow
# through the cpuBudget (batch.go) so debt settles before device
# interactions. A raw Use against the CPU resource anywhere else in the
# package reintroduces per-row kernel round-trips unnoticed.
if grep -n 'Use(ctx\.CPU\|Use(m\.ctx\.CPU' internal/exec/*.go | grep -v 'internal/exec/batch.go'; then
	echo "verify: raw CPU Use outside internal/exec/batch.go (route through cpuBudget/useCPU)" >&2
	exit 1
fi

# Resource-governance lint: queue-depth supply arithmetic belongs to the
# broker. MaxBeneficialDepth is defined in internal/cost and consumed only
# by internal/broker; any other call site is a query hand-rolling its own
# budget split outside admission control, which is exactly the scattered
# arithmetic the broker layer replaced.
if grep -rn 'MaxBeneficialDepth' --include='*.go' . |
	grep -v '_test\.go' |
	grep -v './internal/cost/' |
	grep -v './internal/broker/'; then
	echo "verify: MaxBeneficialDepth used outside internal/broker (lease budgets from the broker instead)" >&2
	exit 1
fi

# Error-taxonomy lint: sentinel conditions (cancellation, deadlines, device
# faults, closed admission) must be expressed by wrapping the taxonomy
# sentinels from internal/fault, never by minting fresh string errors —
# a raw errors.New/fmt.Errorf for one of these breaks every errors.Is
# caller silently.
if grep -rnE '(errors\.New|fmt\.Errorf)\("[^"]*([Cc]ancel|[Dd]eadline|[Dd]evice fault|[Aa]dmission)' \
	--include='*.go' . |
	grep -v '_test\.go' |
	grep -v './internal/fault/'; then
	echo "verify: raw string error for a taxonomy condition (wrap the internal/fault sentinel instead)" >&2
	exit 1
fi

# Context-discipline lint: the executor runs in virtual time and takes its
# abort signal from fault.Control, threaded in by the public API layer. A
# context.Background() inside internal/exec means a code path manufactured
# its own context instead of accepting the caller's — cancellation would
# silently stop propagating.
if grep -n 'context\.Background()' internal/exec/*.go; then
	echo "verify: context.Background() inside internal/exec (thread the caller's abort control instead)" >&2
	exit 1
fi

# Shared-scan consumer lint: an attached scan consumes pages pushed by its
# table's circulating producer — the whole point is that riders add zero
# demand I/O. A FetchPage or Prefetch call in the shared consumer path
# would silently reintroduce per-rider device traffic and unravel the
# one-lap-over-N economics the optimizer prices the attach path with.
if grep -nE '\.(FetchPage|Prefetch|PrefetchRun|PrefetchRunTrimmed)\(' internal/exec/shared.go; then
	echo "verify: demand fetch/prefetch in the shared-scan consumer path (pages must come from the circulating producer)" >&2
	exit 1
fi

# Metric-name catalog lint: every registry instrument name lives in
# internal/obs/catalog.go as an obs.Metric* constant. A string literal at a
# Counter/Gauge/Histogram/AdoptGauge call site is an ad-hoc metric name the
# catalog (and every dashboard keyed on it) doesn't know about.
if grep -rnE '\.(Counter|Gauge|Histogram|AdoptGauge)\(\s*"' --include='*.go' . |
	grep -v '_test\.go' |
	grep -v './internal/obs/'; then
	echo "verify: string-literal metric name at an instrument call site (add it to internal/obs/catalog.go)" >&2
	exit 1
fi

# Event-name catalog lint: event-log emissions carry typed event.Ev*
# constants from internal/obs/event/catalog.go, never ad-hoc values — the
# JSONL schema and its replay guarantee depend on the catalog being the
# single source of event names.
if grep -rnE '(log|Log|events)\.Emit\(' --include='*.go' . |
	grep -v '_test\.go' |
	grep -v './internal/obs/event/' |
	grep -v 'event\.Ev'; then
	echo "verify: event emission without a typed event.Ev* constant (add the type to internal/obs/event/catalog.go)" >&2
	exit 1
fi

# Planner-event catalog lint: the serving planner's event names
# ("plancache.*" / "planner.*") exist only as catalog descriptions in
# internal/obs — call sites emit the typed event.EvPlan*/EvGreedy*
# constants. A literal name elsewhere is an emission the catalog, the JSONL
# schema, and the planner dashboards don't know about.
if grep -rnE '"(plancache|planner)\.' --include='*.go' . |
	grep -v '_test\.go' |
	grep -v './internal/obs/'; then
	echo "verify: literal plancache.*/planner.* event name outside internal/obs (emit a cataloged event.Ev* constant)" >&2
	exit 1
fi

# Every planner event type added for the serving plan path must be
# described in the event catalog; an empty Desc breaks JSONL consumers.
for ev in plancache.band_hit plancache.band_miss plancache.revalidate planner.greedy planner.fallback; do
	if ! grep -q "\"$ev\"" internal/obs/event/catalog.go; then
		echo "verify: planner event $ev missing from internal/obs/event/catalog.go" >&2
		exit 1
	fi
done

# Every scatter-gather event type must be described in the event catalog;
# an empty Desc breaks JSONL consumers.
for ev in shard.scatter shard.partial shard.hedge.issue shard.hedge.win shard.gather.done; do
	if ! grep -q "\"$ev\"" internal/obs/event/catalog.go; then
		echo "verify: shard event $ev missing from internal/obs/event/catalog.go" >&2
		exit 1
	fi
done

# Every adaptive-execution event type must be described in the event
# catalog; an empty Desc breaks JSONL consumers.
for ev in adapt.seed adapt.grow adapt.shrink adapt.spec.issue adapt.spec.cancel lease.grow; do
	if ! grep -q "\"$ev\"" internal/obs/event/catalog.go; then
		echo "verify: adaptive event $ev missing from internal/obs/event/catalog.go" >&2
		exit 1
	fi
done

# Degree-change lint: mid-flight parallelism changes acquire credits
# through the broker lease's grow path and nowhere else. The controller
# (internal/adapt) is the only caller of Lease.Grow, and the broker is the
# only definer; a call anywhere else bypasses admission control and the
# governed-teardown accounting that keeps lease credits conserved.
if grep -rn '\.Grow(' --include='*.go' . |
	grep -v '_test\.go' |
	grep -v './internal/adapt/' |
	grep -v './internal/broker/'; then
	echo "verify: Lease.Grow called outside internal/adapt (degree changes go through the controller's lease path)" >&2
	exit 1
fi

# Zero-overhead gate: the disabled event-log path must stay allocation-free
# — a nil log's Emit is one comparison, so observability-off runs remain
# byte-identical to pre-observability builds at zero cost.
EMIT_DISABLED=$(go test -run '^$' -bench 'EmitDisabled' -benchmem ./internal/obs/event/ | grep '^BenchmarkEmitDisabled')
echo "$EMIT_DISABLED"
if ! echo "$EMIT_DISABLED" | grep -q ' 0 allocs/op'; then
	echo "verify: disabled event-log Emit allocates (must be 0 allocs/op)" >&2
	exit 1
fi
