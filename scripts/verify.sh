#!/bin/sh
# Full verification gate: the tier-1 check from ROADMAP.md, plus static
# analysis and a race-detector pass over the packages with the most
# scheduling-sensitive state (the simulator core and the observability
# primitives layered on it).
set -eux

cd "$(dirname "$0")/.."

# Tier 1 (keep in sync with ROADMAP.md).
go build ./...
go test ./...

# Tier 2: vet everything, race-test the event loop and metrics/span layer,
# plus the host-parallel sweep runner and the experiments that fan out on it
# (the determinism tests compare serial vs parallel output byte for byte),
# plus the batched executor and memoized optimizer.
go vet ./...
go test -race ./internal/sim/... ./internal/obs/... ./internal/host/... ./internal/experiments/... ./internal/exec/... ./internal/opt/... ./internal/broker/...

# Batch-accounting lint: every worker CPU charge in the executor must flow
# through the cpuBudget (batch.go) so debt settles before device
# interactions. A raw Use against the CPU resource anywhere else in the
# package reintroduces per-row kernel round-trips unnoticed.
if grep -n 'Use(ctx\.CPU\|Use(m\.ctx\.CPU' internal/exec/*.go | grep -v 'internal/exec/batch.go'; then
	echo "verify: raw CPU Use outside internal/exec/batch.go (route through cpuBudget/useCPU)" >&2
	exit 1
fi

# Resource-governance lint: queue-depth supply arithmetic belongs to the
# broker. MaxBeneficialDepth is defined in internal/cost and consumed only
# by internal/broker; any other call site is a query hand-rolling its own
# budget split outside admission control, which is exactly the scattered
# arithmetic the broker layer replaced.
if grep -rn 'MaxBeneficialDepth' --include='*.go' . |
	grep -v '_test\.go' |
	grep -v './internal/cost/' |
	grep -v './internal/broker/'; then
	echo "verify: MaxBeneficialDepth used outside internal/broker (lease budgets from the broker instead)" >&2
	exit 1
fi
