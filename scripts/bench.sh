#!/bin/sh
# Benchmark snapshot for the simulation-kernel fast paths and the
# host-parallel sweep runner. Runs the kernel microbenchmarks with
# -benchmem, then times representative sweeps (fig4 panel b, fig8, fig12)
# serially and with one worker per core, and writes everything to
# BENCH_PR2.json. Wall-clock gains only appear on multi-core hosts; the
# core count is recorded so single-core numbers aren't misread.
#
# A second snapshot, BENCH_PR3.json, covers the batch-granular executor:
# host ns per simulated row for the large full scan (degrees 1 and 8) and
# the hash-join build, against the row-at-a-time numbers captured on this
# host immediately before the batching change, plus the same sweep
# wall-clocks for comparison with the PR2 section.
set -eu

cd "$(dirname "$0")/.."

OUT=BENCH_PR2.json
CORES=$(getconf _NPROCESSORS_ONLN)
GO_VERSION=$(go env GOVERSION)
GIT_COMMIT=$(git rev-parse --short HEAD 2>/dev/null || echo unknown)
# Every BENCH_*.json opens with this host stanza so snapshots from
# different machines or toolchains are never compared as like-for-like.
HOST_META="\"host_cores\": $CORES,
  \"go_version\": \"$GO_VERSION\",
  \"git_commit\": \"$GIT_COMMIT\""
BIN=$(mktemp -d)/pioqo-bench
trap 'rm -rf "$(dirname "$BIN")"' EXIT

go build -o "$BIN" ./cmd/pioqo-bench

# seconds SINCE: prints fractional seconds elapsed since $1 (ns timestamp).
seconds_since() {
	awk -v s="$1" -v e="$(date +%s%N)" 'BEGIN { printf "%.3f", (e - s) / 1e9 }'
}

sweep_seconds() { # experiment, extra flags..., parallel setting last
	exp=$1
	par=$2
	panel=$3
	start=$(date +%s%N)
	if [ -n "$panel" ]; then
		"$BIN" -scale quick -parallel "$par" -panel "$panel" "$exp" >/dev/null
	else
		"$BIN" -scale quick -parallel "$par" "$exp" >/dev/null
	fi
	seconds_since "$start"
}

KERNEL=$(go test -run '^$' -bench 'EventThroughput|ProcessContextSwitch|ManyProcesses|ResourceContention|TypedEvents' \
	-benchmem ./internal/sim/ |
	awk '
		/^Benchmark/ {
			name = $1
			sub(/-[0-9]+$/, "", name)
			printf "%s    {\"name\": \"%s\", \"ns_per_op\": %s, \"bytes_per_op\": %s, \"allocs_per_op\": %s}", sep, name, $3, $5, $7
			sep = ",\n"
		}
	')

FIG4_SERIAL=$(sweep_seconds fig4 1 b)
FIG4_PARALLEL=$(sweep_seconds fig4 0 b)
FIG8_SERIAL=$(sweep_seconds fig8 1 "")
FIG8_PARALLEL=$(sweep_seconds fig8 0 "")
FIG12_SERIAL=$(sweep_seconds fig12 1 "")
FIG12_PARALLEL=$(sweep_seconds fig12 0 "")

cat >"$OUT" <<EOF
{
  $HOST_META,
  "kernel_baseline_pre_pr2": [
    {"name": "BenchmarkEventThroughput", "ns_per_op": 44.49, "bytes_per_op": 24, "allocs_per_op": 1},
    {"name": "BenchmarkProcessContextSwitch", "ns_per_op": 1182, "bytes_per_op": 88, "allocs_per_op": 6},
    {"name": "BenchmarkManyProcesses", "ns_per_op": 1215, "bytes_per_op": 88, "allocs_per_op": 6},
    {"name": "BenchmarkResourceContention", "ns_per_op": 1713, "bytes_per_op": 184, "allocs_per_op": 10}
  ],
  "kernel_benchmarks": [
$KERNEL
  ],
  "sweep_wall_seconds": {
    "fig4_panel_b": {"serial": $FIG4_SERIAL, "parallel": $FIG4_PARALLEL},
    "fig8": {"serial": $FIG8_SERIAL, "parallel": $FIG8_PARALLEL},
    "fig12": {"serial": $FIG12_SERIAL, "parallel": $FIG12_PARALLEL}
  }
}
EOF

echo "wrote $OUT (host_cores=$CORES)"

# ---- PR3: batch execution kernel ----------------------------------------

OUT3=BENCH_PR3.json

# The executor benchmarks report a per-simulated-row custom metric
# (ns/simrow, ns/buildrow) after ns/op; keep both.
EXEC=$(go test -run '^$' -bench 'FullScanHostTime|HashJoinBuild' ./internal/exec/ |
	awk '
		/^Benchmark/ {
			name = $1
			sub(/-[0-9]+$/, "", name)
			printf "%s    {\"name\": \"%s\", \"ns_per_op\": %s, \"%s\": %s}", sep, name, $3, $6, $5
			sep = ",\n"
		}
	')

cat >"$OUT3" <<EOF
{
  $HOST_META,
  "exec_baseline_pre_pr3": [
    {"name": "BenchmarkFullScanHostTime/degree1", "ns/simrow": 14.87},
    {"name": "BenchmarkFullScanHostTime/degree8", "ns/simrow": 15.12},
    {"name": "BenchmarkHashJoinBuild", "ns/buildrow": 153.3}
  ],
  "exec_benchmarks": [
$EXEC
  ],
  "sweep_wall_seconds": {
    "fig4_panel_b": {"serial": $FIG4_SERIAL, "parallel": $FIG4_PARALLEL},
    "fig8": {"serial": $FIG8_SERIAL, "parallel": $FIG8_PARALLEL},
    "fig12": {"serial": $FIG12_SERIAL, "parallel": $FIG12_PARALLEL}
  }
}
EOF

echo "wrote $OUT3 (host_cores=$CORES)"

# ---- PR4: resource broker admission control ------------------------------

# BENCH_PR4.json captures the headline claim for the shared resource-
# governance layer: on a skewed 8-query concurrent mix, brokered admission
# (dynamic queue-depth leases, re-brokered as credits free up) must beat
# the pre-broker static even queue-budget split on batch makespan, at both
# the default and quick experiment scales. These are virtual-time numbers
# from the deterministic simulator, so they are host-independent.

OUT4=BENCH_PR4.json

ADMISSION_DEFAULT=$("$BIN" -scale default -concurrent 8 -json admission)
ADMISSION_QUICK=$("$BIN" -scale quick -concurrent 8 -json admission)

cat >"$OUT4" <<EOF
{
  $HOST_META,
  "queries": 8,
  "workload": "skewed mix: one ~0.25% mid-selectivity scan plus seven ~0.05% scans",
  "admission_default_scale": $ADMISSION_DEFAULT,
  "admission_quick_scale": $ADMISSION_QUICK
}
EOF

echo "wrote $OUT4 (host_cores=$CORES)"

# ---- PR5: fault injection & graceful degradation --------------------------

# BENCH_PR5.json captures the degradation-response claim: on the same
# skewed 8-query mix with half the SSD's internal channels faulted away
# (injected post-calibration, so the surprise lands on the broker, not the
# cost model), the broker's degraded re-planning — shrinking the credit
# supply so admissions re-plan at a queue depth the device can still absorb
# — must beat the no-replan response on batch makespan. Virtual-time
# numbers from the deterministic simulator; host-independent.

OUT5=BENCH_PR5.json

DEGRADE_DEFAULT=$("$BIN" -scale default -concurrent 8 -json degrade)
DEGRADE_QUICK=$("$BIN" -scale quick -concurrent 8 -json degrade)

cat >"$OUT5" <<EOF
{
  $HOST_META,
  "queries": 8,
  "workload": "skewed mix: one ~0.25% mid-selectivity scan plus seven ~0.05% scans",
  "fault": "50% SSD channel loss injected after calibration, open-ended window",
  "degrade_default_scale": $DEGRADE_DEFAULT,
  "degrade_quick_scale": $DEGRADE_QUICK
}
EOF

echo "wrote $OUT5 (host_cores=$CORES)"

# ---- PR6: observability — event log overhead & workload SLOs --------------

# BENCH_PR6.json captures the observability layer's two claims: the
# disabled event-log path costs nothing (0 allocs/op, single-ns Emit on a
# nil log), and enabled emission stays allocation-free pure ring mutation —
# plus the slo experiment's per-shape service levels on the skewed 8-query
# mix at both scales (virtual-time numbers; host-independent).

OUT6=BENCH_PR6.json

EMIT=$(go test -run '^$' -bench 'EmitDisabled|EmitEnabled' -benchmem ./internal/obs/event/ |
	awk '
		/^Benchmark/ {
			name = $1
			sub(/-[0-9]+$/, "", name)
			printf "%s    {\"name\": \"%s\", \"ns_per_op\": %s, \"bytes_per_op\": %s, \"allocs_per_op\": %s}", sep, name, $3, $5, $7
			sep = ",\n"
		}
	')

SLO_DEFAULT=$("$BIN" -scale default -concurrent 8 -json slo)
SLO_QUICK=$("$BIN" -scale quick -concurrent 8 -json slo)

cat >"$OUT6" <<EOF
{
  $HOST_META,
  "queries": 8,
  "workload": "skewed mix: one ~0.25% mid-selectivity scan plus seven ~0.05% scans",
  "event_log_benchmarks": [
$EMIT
  ],
  "slo_default_scale": $SLO_DEFAULT,
  "slo_quick_scale": $SLO_QUICK
}
EOF

echo "wrote $OUT6 (host_cores=$CORES)"

# ---- PR7: shared circulating scans under heavy traffic --------------------

# BENCH_PR7.json captures the scan-sharing claim: on a thousand-query
# concurrent mix over three hot HDD tables — 5% full-table reporting scans
# riding on hot-stripe point traffic — circulating shared scans (every
# eligible scan attaches to its table's one producer and rides exactly one
# lap, admitted with zero queue-depth credits) must at least halve the
# batch makespan against the same mix with sharing disabled. The quick
# scale is also recorded for regression tracking, but no speedup is claimed
# there: its buffer pool is smaller than the three producers' circulation
# windows, which is precisely the regime where sharing should lose.
# Virtual-time numbers from the deterministic simulator; host-independent.

OUT7=BENCH_PR7.json

SHARED_DEFAULT=$("$BIN" -scale default -concurrent 1000 -json shared)
SHARED_QUICK=$("$BIN" -scale quick -concurrent 300 -json shared)

cat >"$OUT7" <<EOF
{
  $HOST_META,
  "queries": 1000,
  "workload": "3 hot HDD tables; 950 point lookups on a 1% hot key stripe + 50 full-table scans, submitted concurrently",
  "shared_default_scale": $SHARED_DEFAULT,
  "shared_quick_scale": $SHARED_QUICK
}
EOF

echo "wrote $OUT7 (host_cores=$CORES)"

# ---- PR8: serving-scale planning ------------------------------------------

# BENCH_PR8.json captures the serving-scale planner's two claims. Throughput
# (host wall-clock, so host-dependent — compare only within one snapshot):
# on a parameterized workload with fresh predicate constants every query,
# the parameterized selectivity-band cache must beat the PR 7 serving
# baseline — the exact-key memo, which misses on every fresh constant — by
# at least 100x plans/sec. Quality (virtual-time cost model, deterministic):
# across the selectivity x device grid the greedy O(n) fast path must pick
# the full enumeration's winner on >= 95% of points and price within 5% of
# it everywhere else. The public-API microbenchmarks (BenchmarkChoose vs
# BenchmarkGreedyChoose) record the same A/B including engine overhead.

OUT8=BENCH_PR8.json

PLAN_DEFAULT=$("$BIN" -scale default -queries 100000 -json planbench)
PLAN_QUICK=$("$BIN" -scale quick -queries 20000 -json planbench)

PLANNER_MICRO=$(go test -run '^$' -bench 'BenchmarkChoose$|BenchmarkGreedyChoose$' -benchmem . |
	awk '
		/^Benchmark/ {
			name = $1
			sub(/-[0-9]+$/, "", name)
			printf "%s    {\"name\": \"%s\", \"ns_per_op\": %s, \"bytes_per_op\": %s, \"allocs_per_op\": %s}", sep, name, $3, $5, $7
			sep = ",\n"
		}
	')

cat >"$OUT8" <<EOF
{
  $HOST_META,
  "workload": "one query shape, fresh predicate constants every lookup; 4 serving selectivities cycling, window position striding the key domain",
  "claims": {
    "throughput": "paramcache plans/sec >= 100x memo-miss plans/sec per device (speedup_vs_memo_miss field)",
    "quality": "greedy agrees with full enumeration on >= 95% of the selectivity x device grid, <= 5% cost regret elsewhere (AgreePct / MaxRegretPct fields)"
  },
  "planner_microbenchmarks": [
$PLANNER_MICRO
  ],
  "planbench_default_scale": $PLAN_DEFAULT,
  "planbench_quick_scale": $PLAN_QUICK
}
EOF

echo "wrote $OUT8 (host_cores=$CORES)"

# ---- PR9: sharded scatter-gather over a simulated cluster -----------------

# BENCH_PR9.json captures the cluster execution layer's two claims, both in
# virtual time (deterministic; host-independent). Scaling: on the skewed
# query mix (full-range scan plus narrowing low-key ranges over a Zipf 1.3
# table, hash-partitioned), going from 1 to 8 shards must cut the mix
# makespan by more than 2x — sublinear on purpose, since the Zipf mix's
# narrow scans leave less parallel work than the uniform grid's (recorded
# alongside, where 8 shards approach 7x). Hedging: with 5% straggler
# injection (20ms) on every node's device, the hedged cluster must beat the
# unhedged one on the same mix — the slowest shard sets the gather makespan,
# which is exactly what speculative re-issue attacks. The rebalance sweep
# records the partition-balance story: equal-width range cuts pile the Zipf
# mass onto one shard; quantile cuts and hash spread it.

OUT9=BENCH_PR9.json

SHARD_DEFAULT=$("$BIN" -scale default -shards 8 -json shard)
SHARD_QUICK=$("$BIN" -scale quick -shards 4 -json shard)

cat >"$OUT9" <<EOF
{
  $HOST_META,
  "workload": "skewed mix: full-range scan + 25%/5%/1%-of-domain key ranges, each cold, over a hash/range-partitioned table",
  "claims": {
    "scaling": "zipf 1.3 mix makespan improves > 2x from 1 to 8 shards (scale arm, Speedup field)",
    "hedging": "hedged makespan < unhedged under 5% injected 20ms stragglers (hedge arms)",
    "rebalance": "quantile cuts at least halve the equal-width hot shard on zipf keys (rebalance arm, HotRows)"
  },
  "shard_default_scale": $SHARD_DEFAULT,
  "shard_quick_scale": $SHARD_QUICK
}
EOF

echo "wrote $OUT9 (host_cores=$CORES)"

# ---- PR10: feedback-driven adaptive parallelism ---------------------------

# BENCH_PR10.json captures the adaptive-execution claim, in virtual time
# (deterministic; host-independent). Across the device x skew x selectivity
# grid, a query run under the feedback controller — degree seeded from the
# calibration-fit DOP model, then retuned at batch boundaries from live
# queue-depth, pool-pressure, and throughput signals, with speculative
# prefetch gated on device slack — must land within 5% of whichever static
# degree wins each cell (WithinPct field), without ever seeing the static
# grid. The worst static arm is recorded alongside: the gap between best
# and worst is the cliff a wrong static choice falls off, and the margin
# the controller's self-tuning buys.

OUT10=BENCH_PR10.json

ADAPTIVE_DEFAULT=$("$BIN" -scale default -json adaptive)
ADAPTIVE_QUICK=$("$BIN" -scale quick -json adaptive)

cat >"$OUT10" <<EOF
{
  $HOST_META,
  "workload": "cold range-aggregate per cell: (ssd, hdd) x (uniform, zipf 1.3) x geometric selectivity grid, adaptive vs static degrees 1-32",
  "claims": {
    "tracking": "adaptive runtime within 5% of the best static degree per cell (WithinPct field)",
    "cliff": "WorstStaticMs / BestStaticMs is the penalty for a wrong static choice; adaptive never approaches it"
  },
  "adaptive_default_scale": $ADAPTIVE_DEFAULT,
  "adaptive_quick_scale": $ADAPTIVE_QUICK
}
EOF

echo "wrote $OUT10 (host_cores=$CORES)"
