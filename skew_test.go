package pioqo

import "testing"

// Zipf-skewed data exercises histogram-based cardinality estimation: a
// fixed-width key range matches wildly different row counts depending on
// where in the domain it sits, and the optimizer must see that.

func newZipfSystem(t *testing.T) (*System, *Table) {
	t.Helper()
	sys := New(Config{Device: SSD, PoolPages: 1024})
	tab, err := sys.CreateTable("z", 100000, 33, WithZipfData(1.3))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Calibrate(CalibrationOptions{MaxReads: 640}); err != nil {
		t.Fatal(err)
	}
	return sys, tab
}

func TestZipfValidation(t *testing.T) {
	sys := New(Config{Device: SSD})
	if _, err := sys.CreateTable("bad", 100, 10, WithZipfData(0.9)); err == nil {
		t.Error("zipf exponent <= 1 accepted")
	}
	if _, err := sys.CreateTable("bad2", 100, 10, WithZipfData(1.5), WithSyntheticData()); err == nil {
		t.Error("zipf + synthetic accepted")
	}
}

func TestHistogramDrivenCardinalityEstimates(t *testing.T) {
	sys, tab := newZipfSystem(t)
	// Head range [0, 99]: dense under Zipf. Tail range of the same width:
	// nearly empty. The estimated row counts must differ by orders of
	// magnitude, which a uniform assumption cannot produce.
	headPlan, err := sys.Plan(Query{Table: tab, Low: 0, High: 99}, PlanOptions{})
	if err != nil {
		t.Fatal(err)
	}
	tailPlan, err := sys.Plan(Query{Table: tab, Low: 90000, High: 90099}, PlanOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if headPlan.EstimatedRows < 20*tailPlan.EstimatedRows {
		t.Errorf("head estimate %.0f vs tail estimate %.0f: histogram not consulted",
			headPlan.EstimatedRows, tailPlan.EstimatedRows)
	}
}

func TestHistogramSteersAccessPathOnSkew(t *testing.T) {
	sys, tab := newZipfSystem(t)
	// The head of the Zipf distribution holds a large fraction of all rows
	// in a tiny key range: a full scan is right there. The sparse tail of
	// the same key width wants the index.
	headPlan, err := sys.Plan(Query{Table: tab, Low: 0, High: 999}, PlanOptions{})
	if err != nil {
		t.Fatal(err)
	}
	tailPlan, err := sys.Plan(Query{Table: tab, Low: 50000, High: 50999}, PlanOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if headPlan.Method != FullTableScan {
		t.Errorf("head-range plan %v, want full scan (range holds most rows)", headPlan)
	}
	if tailPlan.Method != IndexScan {
		t.Errorf("tail-range plan %v, want index scan (range nearly empty)", tailPlan)
	}

	// And the executed answers stay exact, matching brute-force-free
	// cross-checks between the two access paths.
	q := Query{Table: tab, Low: 0, High: 999}
	viaFTS, err := sys.ExecutePlan(q, Plan{Method: FullTableScan, Degree: 4}, Cold())
	if err != nil {
		t.Fatal(err)
	}
	viaIS, err := sys.ExecutePlan(q, Plan{Method: IndexScan, Degree: 4}, Cold())
	if err != nil {
		t.Fatal(err)
	}
	if viaFTS.Value != viaIS.Value || viaFTS.Rows != viaIS.Rows {
		t.Errorf("access paths disagree on skewed data: FTS (%d, %d) vs IS (%d, %d)",
			viaFTS.Value, viaFTS.Rows, viaIS.Value, viaIS.Rows)
	}
	if viaFTS.Rows < 10000 {
		t.Errorf("head range matched %d rows; expected a heavy Zipf head", viaFTS.Rows)
	}
}
