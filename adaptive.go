package pioqo

import (
	"fmt"

	"pioqo/internal/adapt"
	"pioqo/internal/broker"
	"pioqo/internal/exec"
	"pioqo/internal/opt"
)

// Adaptive execution: the consolidated tuning surface over internal/adapt.
//
// A query runs adaptively when WithAdaptive() is passed or Config.Adaptive
// makes it the system default; a static degree (WithStaticDegree, or its
// original spelling WithDegree) opts the query back out. Adaptive
// executions seed their initial degree from the offline DOP model fit on
// the most recent calibration sweep (falling back to the optimizer's
// static choice when no model is installed — e.g. after LoadModel, which
// restores a cost model but not the sweep it came from), then retune at
// batch boundaries through adapt.Controller: growth is secured credit by
// credit through the broker lease, shrink sheds workers through the
// executor's governed teardown, and speculative prefetch pre-issues runs
// derived from plan structure.

// WithAdaptive runs this query under the feedback controller even when
// Config.Adaptive is off. Mutually exclusive with WithStaticDegree and
// WithDegree: pinning the degree and asking the controller to retune it
// contradict, and the combination fails with ErrInvalidQuery.
func WithAdaptive() QueryOption { return func(o *queryOptions) { o.adaptive = true } }

// WithStaticDegree pins the query's parallel degree to n, overriding the
// optimizer's choice and opting the query out of adaptive retuning (the
// way to hold a control arm still on a Config.Adaptive system). It is the
// consolidated spelling of WithDegree; the two are identical.
func WithStaticDegree(n int) QueryOption { return func(o *queryOptions) { o.degree = n } }

// checkAdaptive rejects contradictory tuning options.
func (eo *queryOptions) checkAdaptive() error {
	if eo.adaptive && eo.degree > 0 {
		return fmt.Errorf("%w: WithAdaptive is mutually exclusive with WithStaticDegree/WithDegree", ErrInvalidQuery)
	}
	return nil
}

// adaptiveOn reports whether this execution should run under the feedback
// controller: opted in per query or system-wide, and not pinned static.
func (s *System) adaptiveOn(eo queryOptions) bool {
	return (eo.adaptive || s.adaptive) && eo.degree == 0
}

// adaptiveEligible limits adaptivity to the plans the executor can flex:
// demand full scans and index scans. Shared scans ride the circulating
// producer (the rider issues no device work to retune), sorted scans are
// a fixed two-phase pipeline, and scatter-gather plans split per shard.
func adaptiveEligible(plan Plan) bool {
	if plan.Shared || plan.Fanout > 0 {
		return false
	}
	return plan.Method == FullTableScan || plan.Method == IndexScan
}

// attachAdaptive installs the feedback controller on spec for an eligible
// adaptive execution: it seeds the initial degree from the DOP model
// (snapped onto the optimizer's degree grid so the executed degree is
// always one the planner could have chosen), rewrites spec.Degree and
// plan.Degree to the seed, and wires the controller to the query's pool,
// device depth probe, and — on the session path — its broker lease.
// beneficial is the band's beneficial queue depth (the broker's credit
// supply); growth never targets beyond it.
func (s *System) attachAdaptive(spec *exec.Spec, q Query, plan *Plan, eo queryOptions, lease *broker.Lease, beneficial int) {
	if !s.adaptiveOn(eo) || !adaptiveEligible(*plan) {
		return
	}
	planned := plan.Degree
	max := eo.plan.MaxDegree
	if max <= 0 {
		max = 32
	}
	if max < planned {
		max = planned
	}
	seed := planned
	if s.dop != nil {
		seed = opt.SnapDegree(nil, s.dop.InitialDegree(estimatePages(q, *plan), planned, max))
	}
	part := q.Table.one()
	cfg := adapt.Config{
		Env:        s.env,
		Pool:       part.node.Pool,
		PoolShare:  spec.PoolShare,
		DepthProbe: part.node.Dev.Metrics().DepthIntegral,
		QueueProbe: part.node.Dev.Metrics().Outstanding,
		Initial:    seed,
		Planned:    planned,
		Max:        max,
		Beneficial: beneficial,
		Log:        s.events,
		Obs:        s.reg,
		QID:        spec.QID,
	}
	if lease != nil {
		cfg.Lease = lease
	}
	spec.Tune = adapt.NewController(cfg)
	spec.Degree = seed
	plan.Degree = seed
}
