package pioqo

import (
	"context"
	"time"

	"pioqo/internal/fault"
	"pioqo/internal/sim"
)

// Query is the system's single execution entrypoint: it optimizes and runs
// q under ctx, with every other entrypoint (Execute, ExecutePlan,
// ExecuteConcurrent, Session.Submit) a thin shim over the same machinery.
//
// The context is first-class: cancellation and deadlines propagate into
// virtual time and abort the query cleanly through every layer — workers
// exit at the next batch boundary, pinned pages are released, broker
// credits and pool reservations come home. A context deadline is mapped
// onto the virtual clock one-to-one (host time remaining becomes virtual
// time remaining); use WithTimeout for a purely virtual-time deadline that
// keeps runs byte-identical across hosts. An aborted query returns a
// *QueryError wrapping the taxonomy sentinel (ErrCanceled,
// ErrDeadlineExceeded, ErrDeviceFault).
//
// With Cold(), the buffer pool is flushed *before* planning: the optimizer
// consults pool residency statistics, and planning for a cache that is
// about to be dropped would mis-cost every candidate.
func (s *System) Query(ctx context.Context, q Query, opts ...QueryOption) (Result, error) {
	var eo queryOptions
	for _, o := range opts {
		o(&eo)
	}
	if err := q.validate(); err != nil {
		return Result{}, err
	}
	ctl, err := s.newControl(ctx, eo)
	if err != nil {
		return Result{}, &QueryError{Op: "query", Table: q.Table.Name(), Err: err}
	}
	if eo.cold {
		s.FlushBufferPool()
	}
	ts := s.startTelemetry(q, eo)
	ospan := ts.trc().Start(ts.span(), "optimize")
	plan, err := s.Plan(q, eo.plan)
	if err != nil {
		return Result{}, err
	}
	ospan.SetAttr("plan", plan.String())
	ospan.End()
	return s.executePlan(q, plan, eo, ts, ctl)
}

// newControl builds the per-query abort control from the caller's context
// and options. A context already canceled or past its deadline fails fast
// with the mapped taxonomy error. The control is inert when no abort
// source is installed — checking it adds no events and no randomness, so a
// deadline-free query runs byte-identically with or without it.
func (s *System) newControl(ctx context.Context, eo queryOptions) (*fault.Control, error) {
	if err := ctx.Err(); err != nil {
		return nil, fault.MapContextErr(err)
	}
	ctl := fault.NewControl(s.env)
	if eo.timeout > 0 {
		ctl.SetDeadline(s.env.Now().Add(sim.Duration(eo.timeout)))
	}
	if dl, ok := ctx.Deadline(); ok {
		rem := time.Until(dl)
		if rem <= 0 {
			return nil, fault.ErrDeadlineExceeded
		}
		// Host time remaining maps one-to-one onto the virtual clock: a
		// query that would outlive its context's deadline aborts at the
		// equivalent virtual instant.
		vdl := s.env.Now().Add(sim.Duration(rem))
		ctl.SetDeadline(vdl)
	}
	if ctx.Done() != nil {
		// Live cancellation: the executor polls ctx.Err at every batch
		// boundary, so a host-side cancel lands within one batch.
		ctl.SetPoll(ctx.Err)
	}
	return ctl, nil
}

// QueryOption tunes a query execution. One option set serves every
// entrypoint — Query, Execute, ExecutePlan, ExecuteConcurrent, and
// Session.Submit. (The pre-Query ExecOption alias and the CaptureTelemetry
// and DetailedTrace spellings, deprecated since the consolidation, are
// gone; spell them QueryOption, WithTrace, and WithDetailedTrace.)
type QueryOption func(*queryOptions)

// RetryPolicy bounds how the executor responds to device read faults: a
// failed page read is retried up to MaxAttempts total attempts with
// exponential backoff in virtual time (Backoff doubling per retry, capped
// at MaxBackoff). Zero fields take the defaults: 4 attempts, 200µs initial
// backoff, 10ms cap. Backoffs carry no jitter, so fault-injected runs
// replay byte-identically.
type RetryPolicy struct {
	MaxAttempts int
	Backoff     time.Duration
	MaxBackoff  time.Duration
}

func (p RetryPolicy) internal() fault.RetryPolicy {
	return fault.RetryPolicy{
		MaxAttempts: p.MaxAttempts,
		Backoff:     sim.Duration(p.Backoff),
		MaxBackoff:  sim.Duration(p.MaxBackoff),
	}
}

// WithDegree pins the query's parallel degree to n — the original spelling
// of WithStaticDegree, and identical to it: the optimizer's choice is
// overridden (cost estimates are reported unchanged) and the query opts
// out of adaptive retuning. Mutually exclusive with WithAdaptive.
func WithDegree(n int) QueryOption { return WithStaticDegree(n) }

// WithTimeout arms a virtual-time deadline: the query aborts with
// ErrDeadlineExceeded once d of virtual time has elapsed, at its next
// batch boundary. Unlike a context deadline, a virtual-time timeout is
// deterministic — the same run aborts at the same virtual instant on any
// host.
func WithTimeout(d time.Duration) QueryOption { return func(o *queryOptions) { o.timeout = d } }

// WithRetry sets the query's device-fault retry policy.
func WithRetry(p RetryPolicy) QueryOption { return func(o *queryOptions) { o.retry = p } }

// WithTrace records the query's telemetry into dst — span tree and
// attributed metrics — without installing a system-wide observer.
func WithTrace(dst *QueryTelemetry) QueryOption {
	return func(o *queryOptions) { o.telemetry = dst }
}

// WithDetailedTrace additionally records per-leaf I/O-batch spans inside
// index scan workers (§3.3's unit of prefetching). Traces grow with leaf
// count; use on small ranges.
func WithDetailedTrace() QueryOption {
	return func(o *queryOptions) { o.detail = true }
}
