package pioqo

import (
	"strings"
	"testing"
)

// operatorNode returns the operator span under a query telemetry root: the
// child that is not the optimize phase.
func operatorNode(t *testing.T, tel QueryTelemetry) *SpanNode {
	t.Helper()
	if tel.Root == nil {
		t.Fatal("telemetry has no root span")
	}
	if tel.Root.Name != "query" {
		t.Fatalf("root span = %q, want \"query\"", tel.Root.Name)
	}
	for _, c := range tel.Root.Children {
		if c.Name != "optimize" {
			return c
		}
	}
	t.Fatalf("no operator span under query root (children: %v)", tel.Root.Children)
	return nil
}

func TestTelemetrySpanTreeSumsToRuntime(t *testing.T) {
	sys, tab := newCalibrated(t, SSD, 50000, 33)
	var tel QueryTelemetry
	res, err := sys.Execute(Query{Table: tab, Low: 0, High: 4999}, Cold(), WithTrace(&tel))
	if err != nil {
		t.Fatal(err)
	}
	if tel.Runtime != res.Runtime {
		t.Errorf("telemetry runtime %v != result runtime %v", tel.Runtime, res.Runtime)
	}
	op := operatorNode(t, tel)
	// The operator's virtual time accounts for the query's runtime within
	// startup overhead.
	if op.Duration < res.Runtime*95/100 || op.Duration > res.Runtime*105/100 {
		t.Errorf("operator span %v vs runtime %v: not within 5%%", op.Duration, res.Runtime)
	}
	if tel.Root.Duration < op.Duration {
		t.Errorf("query span %v shorter than its operator %v", tel.Root.Duration, op.Duration)
	}
	// Worker children carry the io_wait/cpu breakdown, and each worker's
	// parts stay within its span.
	workers := 0
	for _, w := range op.Children {
		if !strings.HasPrefix(w.Name, "fts-w") && !strings.HasPrefix(w.Name, "pis-w") {
			continue
		}
		workers++
		if _, ok := w.Attr("io_wait"); !ok {
			t.Errorf("worker %s has no io_wait attribute", w.Name)
		}
		if _, ok := w.Attr("pages"); !ok {
			t.Errorf("worker %s has no pages attribute", w.Name)
		}
		if w.Duration > op.Duration {
			t.Errorf("worker %s (%v) outlives the operator (%v)", w.Name, w.Duration, op.Duration)
		}
	}
	if workers != res.Plan.Degree {
		t.Errorf("got %d worker spans, want one per worker (degree %d)", workers, res.Plan.Degree)
	}
}

func TestMetricsAttributionAcrossQueries(t *testing.T) {
	// Two queries back-to-back on one system: the cold run owns the misses
	// and device reads, the warm re-run of the same range owns only hits.
	// Counters are cumulative, so attribution is strictly by snapshot diff.
	sys, tab := newCalibrated(t, SSD, 50000, 33)
	// ~500 matching rows: the touched heap pages plus index path fit the
	// 1024-frame pool, so the warm re-run is fully cached.
	q := Query{Table: tab, Low: 1000, High: 1499}

	total0 := sys.MetricsSnapshot()
	var cold, warm QueryTelemetry
	if _, err := sys.Execute(q, Cold(), WithTrace(&cold)); err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Execute(q, WithTrace(&warm)); err != nil {
		t.Fatal(err)
	}
	totals := sys.MetricsSince(total0)

	if cold.Metrics.Counter("buffer.misses") == 0 {
		t.Error("cold query attributed no buffer misses")
	}
	if cold.Metrics.Counter("device.requests") == 0 {
		t.Error("cold query attributed no device reads")
	}
	if warm.Metrics.Counter("buffer.hits") == 0 {
		t.Error("warm query attributed no buffer hits")
	}
	if n := warm.Metrics.Counter("buffer.misses"); n != 0 {
		t.Errorf("warm re-run of a cached range attributed %d misses, want 0", n)
	}
	if n := warm.Metrics.Counter("device.requests"); n != 0 {
		t.Errorf("warm re-run attributed %d device reads, want 0", n)
	}
	// Per-query diffs partition the whole interval: nothing leaks between
	// queries, nothing is counted twice.
	for _, name := range []string{"device.requests", "buffer.hits", "buffer.misses", "exec.scans"} {
		sum := cold.Metrics.Counter(name) + warm.Metrics.Counter(name)
		if got := totals.Counter(name); got != sum {
			t.Errorf("%s: whole-interval delta %d != cold %d + warm %d",
				name, got, cold.Metrics.Counter(name), warm.Metrics.Counter(name))
		}
	}
}

func TestPISQueueDepthMetricMatchesDegree(t *testing.T) {
	// The paper's §2 observable through the metrics registry: a PIS run
	// with 8 workers sustains a mean device queue depth of ~8, reported by
	// the snapshot diff's time-weighted gauge mean.
	sys := New(Config{Device: SSD, PoolPages: 512})
	tab, err := sys.CreateTable("t", 60000, 1, WithSyntheticData())
	if err != nil {
		t.Fatal(err)
	}
	before := sys.MetricsSnapshot()
	res, err := sys.ExecutePlan(
		Query{Table: tab, Low: 0, High: 17999},
		Plan{Method: IndexScan, Degree: 8})
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows == 0 {
		t.Fatal("query matched nothing")
	}
	d := sys.MetricsSince(before)
	g, ok := d.Gauges["device.queue_depth"]
	if !ok {
		t.Fatal("diff has no device.queue_depth gauge")
	}
	if g.Mean < 6.5 || g.Mean > 8.5 {
		t.Errorf("mean device queue depth = %.2f, want ~8 for PIS degree 8", g.Mean)
	}
	if g.Last != 0 {
		t.Errorf("queue depth after the query = %.0f, want drained to 0", g.Last)
	}
	if d.Elapsed != res.Runtime {
		t.Errorf("diff interval %v != query runtime %v", d.Elapsed, res.Runtime)
	}
}

func TestObserverReceivesEveryQuery(t *testing.T) {
	sys, tab := newCalibrated(t, SSD, 20000, 33)
	var seen []QueryTelemetry
	sys.SetObserver(ObserverFunc(func(tel QueryTelemetry) { seen = append(seen, tel) }))
	if _, err := sys.Execute(Query{Table: tab, Low: 0, High: 199}); err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Execute(Query{Table: tab, Low: 0, High: 19999}); err != nil {
		t.Fatal(err)
	}
	if len(seen) != 2 {
		t.Fatalf("observer saw %d queries, want 2", len(seen))
	}
	for i, tel := range seen {
		if tel.Root == nil || tel.Runtime <= 0 {
			t.Errorf("query %d: incomplete telemetry %+v", i, tel)
		}
	}
	if seen[1].Plan.Method != FullTableScan {
		t.Errorf("broad query planned as %v, want a full scan", seen[1].Plan.Method)
	}
	sys.SetObserver(nil)
	if _, err := sys.Execute(Query{Table: tab, Low: 0, High: 199}); err != nil {
		t.Fatal(err)
	}
	if len(seen) != 2 {
		t.Error("observer still called after being removed")
	}
}

func TestTelemetryOffCostsNothing(t *testing.T) {
	sys, tab := newCalibrated(t, SSD, 20000, 33)
	res, err := sys.Execute(Query{Table: tab, Low: 0, High: 199})
	if err != nil {
		t.Fatal(err)
	}
	if res.Runtime <= 0 {
		t.Error("non-positive runtime")
	}
	// No observer and no capture: the same query again must not have grown
	// any trace state — exercised here simply by both paths agreeing.
	var tel QueryTelemetry
	res2, err := sys.Execute(Query{Table: tab, Low: 0, High: 199}, WithTrace(&tel))
	if err != nil {
		t.Fatal(err)
	}
	if tel.Root == nil {
		t.Fatal("capture produced no span tree")
	}
	if res2.Rows != res.Rows {
		t.Errorf("telemetry changed the answer: %d vs %d rows", res2.Rows, res.Rows)
	}
	if tel.Metrics.Elapsed != res2.Runtime {
		t.Errorf("metrics interval %v != runtime %v", tel.Metrics.Elapsed, res2.Runtime)
	}
}
