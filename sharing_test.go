package pioqo

import (
	"errors"
	"testing"
	"time"
)

// submitScans submits n full-range scans and returns their submissions.
func submitScans(t *testing.T, sys *System, tab *Table, n int, opts ...QueryOption) []*Submission {
	t.Helper()
	subs := make([]*Submission, n)
	for i := range subs {
		sub, err := sys.Submit(Query{Table: tab, Low: 0, High: tab.Rows() - 1}, opts...)
		if err != nil {
			t.Fatal(err)
		}
		subs[i] = sub
	}
	return subs
}

func TestSessionSharesConcurrentScans(t *testing.T) {
	sys, tab := newCalibrated(t, SSD, 40000, 4)
	want, err := sys.Execute(Query{Table: tab, Low: 0, High: tab.Rows() - 1})
	if err != nil {
		t.Fatal(err)
	}

	// The attach path wins once contention squeezes each query's fair
	// share to a single queue-depth credit — below that, a parallel
	// private scan is still cheaper for the individual query. Submit
	// enough scans to get well past the credit supply.
	m, err := sys.Model()
	if err != nil {
		t.Fatal(err)
	}
	total := m.MaxBeneficialDepth(sys.DevicePages(), 0.05)
	n := 2 * total
	if n < 16 {
		n = 16
	}
	subs := submitScans(t, sys, tab, n)
	if err := sys.Drain(); err != nil {
		t.Fatal(err)
	}
	sharedSeen := 0
	for i, sub := range subs {
		res, err := sub.Result()
		if err != nil {
			t.Fatalf("scan %d: %v", i, err)
		}
		if res.Value != want.Value || res.Rows != want.Rows {
			t.Errorf("scan %d: got (%d, %d rows), want (%d, %d rows)",
				i, res.Value, res.Rows, want.Value, want.Rows)
		}
		if sub.Admission().Shared {
			sharedSeen++
			if !res.Plan.Shared {
				t.Errorf("scan %d admitted shared but its plan is %v", i, res.Plan)
			}
			if sub.Admission().Budget != 0 || sub.Admission().Wait != 0 {
				t.Errorf("scan %d: shared admission holds budget=%d wait=%v, want 0/0",
					i, sub.Admission().Budget, sub.Admission().Wait)
			}
			// The Progress contract for attached scans: pages delivered to
			// this consumer, one full lap exactly.
			if got := sub.Progress().PagesProcessed; got != tab.Pages() {
				t.Errorf("scan %d: progress %d pages, want exactly %d", i, got, tab.Pages())
			}
		}
	}
	// Scans submitted once the admission queue already held `total`
	// queries planned under a one-credit fair share — the regime where the
	// shared lap is never worse than the serial private scan it ties.
	if want := len(subs) - total - 1; sharedSeen < want {
		t.Errorf("%d of %d concurrent scans shared the circulation, want ≥ %d",
			sharedSeen, len(subs), want)
	}
}

// TestSharedScanProgressExactOnMidLapAttach aborts a shared scan partway
// through its lap, leaving the circulating producer parked mid-table; a
// fresh scan then attaches at that interior position and its Progress
// counter must still end at exactly the table's page count.
func TestSharedScanProgressExactOnMidLapAttach(t *testing.T) {
	sys, tab := newCalibrated(t, SSD, 40000, 4)
	// Force the attach path for a sole query: price it as one of 8 riders
	// under a serial queue budget, where the shared lap always wins.
	force := WithPlanOptions(PlanOptions{ShareParties: 8, QueueBudget: 1})

	aborted, err := sys.Submit(Query{Table: tab, Low: 0, High: tab.Rows() - 1},
		force, WithTimeout(2*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.Drain(); err == nil {
		t.Fatal("2ms deadline on a full scan did not abort")
	} else if !errors.Is(err, ErrDeadlineExceeded) {
		t.Fatalf("abort error = %v, want deadline exceeded", err)
	}
	if !aborted.Admission().Shared {
		t.Fatal("forced plan was not admitted shared")
	}
	got := aborted.Progress().PagesProcessed
	if got <= 0 || got >= tab.Pages() {
		t.Fatalf("aborted scan processed %d of %d pages; need a mid-lap abort for this test to bite",
			got, tab.Pages())
	}

	// The second scan finds the producer mid-table and joins there.
	sub, err := sys.Submit(Query{Table: tab, Low: 0, High: tab.Rows() - 1}, force)
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.Drain(); err != nil {
		t.Fatal(err)
	}
	if !sub.Admission().Shared {
		t.Fatal("resumed scan was not admitted shared")
	}
	if got := sub.Progress().PagesProcessed; got != tab.Pages() {
		t.Errorf("mid-lap attached scan progressed %d pages, want exactly %d", got, tab.Pages())
	}
	if p := sub.Progress(); !p.Done || p.Remaining != 0 {
		t.Errorf("final progress = %+v, want done with nothing remaining", p)
	}
}

func TestNoScanSharingKnobs(t *testing.T) {
	// System-wide off: no submission is ever admitted shared.
	sys := New(Config{Device: SSD, PoolPages: 1024, NoScanSharing: true})
	tab, err := sys.CreateTable("t", 40000, 4)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Calibrate(CalibrationOptions{MaxReads: 640}); err != nil {
		t.Fatal(err)
	}
	subs := submitScans(t, sys, tab, 4)
	if err := sys.Drain(); err != nil {
		t.Fatal(err)
	}
	for i, sub := range subs {
		if sub.Admission().Shared {
			t.Errorf("scan %d shared under Config.NoScanSharing", i)
		}
		if res, err := sub.Result(); err != nil || res.Plan.Shared {
			t.Errorf("scan %d: err=%v plan=%v", i, err, res.Plan)
		}
	}

	// Per-query opt-out on a sharing-enabled system.
	sys2, tab2 := newCalibrated(t, SSD, 40000, 4)
	opted := submitScans(t, sys2, tab2, 4, WithNoScanSharing())
	if err := sys2.Drain(); err != nil {
		t.Fatal(err)
	}
	for i, sub := range opted {
		if sub.Admission().Shared {
			t.Errorf("scan %d shared despite WithNoScanSharing", i)
		}
	}
}
