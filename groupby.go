package pioqo

import (
	"errors"
	"fmt"
	"time"

	"pioqo/internal/exec"
)

// GroupByQuery is a grouped aggregation over one table:
//
//	SELECT C2/GroupWidth, <Agg>(C1) FROM t
//	WHERE C2 BETWEEN Low AND High GROUP BY C2/GroupWidth
type GroupByQuery struct {
	Table *Table
	Low,
	High int64
	// GroupWidth buckets C2 into groups of this key width.
	GroupWidth int64
	Agg        Aggregate
}

// GroupRow is one output group.
type GroupRow struct {
	Key   int64 // C2 / GroupWidth
	Value int64
	Rows  int64
}

// GroupByResult reports a grouped aggregation.
type GroupByResult struct {
	Groups  []GroupRow // sorted by Key
	Rows    int64
	Plan    Plan // the scan plan feeding the aggregation
	Runtime time.Duration
}

// ExecuteGroupBy optimizes the underlying scan and runs the grouped
// aggregation.
func (s *System) ExecuteGroupBy(q GroupByQuery, opts ...QueryOption) (GroupByResult, error) {
	if q.GroupWidth <= 0 {
		return GroupByResult{}, fmt.Errorf("pioqo: group width %d must be positive", q.GroupWidth)
	}
	if q.Table == nil {
		return GroupByResult{}, errors.New("pioqo: group-by without a table")
	}
	var eo queryOptions
	for _, o := range opts {
		o(&eo)
	}
	if eo.cold {
		s.FlushBufferPool()
	}
	plan, err := s.Plan(Query{Table: q.Table, Low: q.Low, High: q.High}, eo.plan)
	if err != nil {
		return GroupByResult{}, err
	}
	if q.Table.sharded() {
		// Per-shard grouped aggregation, group partials folded on the
		// coordinator — GROUP BY decomposes like the scalar aggregates.
		return s.executeGatherGroupBy(q, plan, eo)
	}
	spec := exec.GroupBySpec{
		Scan: exec.Spec{
			Table:             q.Table.one().tab,
			Index:             q.Table.one().idx,
			Lo:                q.Low,
			Hi:                q.High,
			Method:            plan.Method.internal(),
			Degree:            plan.Degree,
			PrefetchPerWorker: plan.Prefetch,
		},
		GroupWidth: q.GroupWidth,
		Agg:        q.Agg.internal(),
	}
	res := exec.ExecuteGroupBy(s.execContext(), spec)
	out := GroupByResult{
		Rows:    res.Rows,
		Plan:    plan,
		Runtime: time.Duration(res.Runtime),
	}
	for _, g := range res.Groups {
		out.Groups = append(out.Groups, GroupRow{Key: g.Key, Value: g.Value, Rows: g.Rows})
	}
	return out, nil
}
