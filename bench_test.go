// Benchmarks that regenerate every table and figure of the paper's
// evaluation, one testing.B entry each, at a reduced scale (each iteration
// runs the complete experiment in virtual time). Useful custom metrics are
// attached where the paper reports a headline number: speedups, break-even
// shifts, throughput ratios. Run cmd/pioqo-bench for full-scale TSV output.
package pioqo_test

import (
	"math"
	"testing"

	"pioqo"
	"pioqo/internal/experiments"
	"pioqo/internal/workload"
)

// benchScale keeps each experiment iteration small enough to benchmark.
func benchScale() experiments.Scale {
	sc := experiments.QuickScale()
	sc.SelPoints = 3
	sc.Reps = 2
	return sc
}

func cfg(rpp int, dev workload.DeviceKind) workload.Config {
	for _, c := range workload.Table1() {
		if c.RowsPerPage == rpp && c.Device == dev {
			return c
		}
	}
	panic("no such config")
}

func BenchmarkFig1(b *testing.B) {
	sc := benchScale()
	var ssdRatio float64
	for i := 0; i < b.N; i++ {
		for _, r := range sc.Fig1() {
			if r.Device == "SSD" && r.QueueDepth == 32 {
				ssdRatio = r.RatioPercent
			}
		}
	}
	b.ReportMetric(ssdRatio, "ssd-qd32-%of-seq")
}

func BenchmarkFig4E1SSD(b *testing.B) {
	sc := benchScale()
	var maxGain float64
	for i := 0; i < b.N; i++ {
		rows := sc.Fig4(cfg(1, workload.SSD), []int{32})
		is := map[float64]float64{}
		for _, r := range rows {
			if r.Method == "IS" {
				is[r.Selectivity] = float64(r.Runtime)
			}
		}
		for _, r := range rows {
			if r.Method == "PIS32" {
				if g := is[r.Selectivity] / float64(r.Runtime); g > maxGain {
					maxGain = g
				}
			}
		}
	}
	b.ReportMetric(maxGain, "max-PIS32-gain-x")
}

func BenchmarkFig4E33HDD(b *testing.B) {
	sc := benchScale()
	for i := 0; i < b.N; i++ {
		sc.Fig4(cfg(33, workload.HDD), []int{32})
	}
}

// BenchmarkFig4E33HDDSerial is the same experiment with the host-parallel
// sweep disabled; comparing it against BenchmarkFig4E33HDD shows the
// wall-clock gain from fanning independent grid points across cores.
func BenchmarkFig4E33HDDSerial(b *testing.B) {
	sc := benchScale()
	sc.Parallel = 1
	for i := 0; i < b.N; i++ {
		sc.Fig4(cfg(33, workload.HDD), []int{32})
	}
}

func BenchmarkTable2(b *testing.B) {
	sc := benchScale()
	var shift float64
	for i := 0; i < b.N; i++ {
		for _, r := range sc.Table2() {
			if r.RowsPerPage == 1 {
				shift = r.PSSD / r.NPSSD
			}
		}
	}
	b.ReportMetric(shift, "ssd-rpp1-breakeven-shift-x")
}

func BenchmarkTable3(b *testing.B) {
	sc := benchScale()
	var ratio float64
	for i := 0; i < b.N; i++ {
		rows := sc.Table3()
		ratio = rows[0].PFTS32Ratio // E1, paper: 8.45X
	}
	b.ReportMetric(ratio, "pfts32-ssd/hdd-rpp1-x")
}

func BenchmarkFig5(b *testing.B) {
	sc := benchScale()
	var gain float64
	for i := 0; i < b.N; i++ {
		rt := map[[2]int]float64{}
		for _, r := range sc.Fig5() {
			rt[[2]int{r.Degree, r.Prefetch}] = float64(r.Runtime)
		}
		gain = rt[[2]int{1, 0}] / rt[[2]int{1, 32}]
	}
	b.ReportMetric(gain, "1worker-prefetch32-gain-x")
}

func BenchmarkFig6(b *testing.B) {
	sc := benchScale()
	for i := 0; i < b.N; i++ {
		sc.Fig6()
	}
}

func BenchmarkFig7(b *testing.B) {
	sc := benchScale()
	for i := 0; i < b.N; i++ {
		sc.Fig7()
	}
}

func BenchmarkFig8E33SSD(b *testing.B) {
	sc := benchScale()
	var maxSpeedup float64
	for i := 0; i < b.N; i++ {
		for _, r := range sc.Fig8(cfg(33, workload.SSD)) {
			maxSpeedup = math.Max(maxSpeedup, r.Speedup)
		}
	}
	b.ReportMetric(maxSpeedup, "max-qdtt-speedup-x")
}

func BenchmarkFig9(b *testing.B) {
	sc := benchScale()
	for i := 0; i < b.N; i++ {
		sc.Fig9()
	}
}

func BenchmarkFig10(b *testing.B) {
	sc := benchScale()
	var maxDiff float64
	for i := 0; i < b.N; i++ {
		for _, r := range sc.Fig10() {
			maxDiff = math.Max(maxDiff, math.Abs(r.GWMinusAW))
		}
	}
	b.ReportMetric(maxDiff, "ssd-max-|GW-AW|-us")
}

func BenchmarkFig11(b *testing.B) {
	sc := benchScale()
	var maxDiff float64
	for i := 0; i < b.N; i++ {
		for _, r := range sc.Fig11() {
			maxDiff = math.Max(maxDiff, r.GWMinusAW)
		}
	}
	b.ReportMetric(maxDiff, "raid-max-GW-AW-us")
}

func BenchmarkFig12(b *testing.B) {
	sc := benchScale()
	var worst float64
	for i := 0; i < b.N; i++ {
		for _, r := range sc.Fig12() {
			worst = math.Max(worst, math.Abs(r.ErrPercent))
		}
	}
	b.ReportMetric(worst, "worst-interp-err-%")
}

func BenchmarkQDProfile(b *testing.B) {
	sc := benchScale()
	var mean32 float64
	for i := 0; i < b.N; i++ {
		for _, r := range sc.QDProfile() {
			if r.Degree == 32 {
				mean32 = r.MeanDepth
			}
		}
	}
	b.ReportMetric(mean32, "pis32-mean-queue-depth")
}

func BenchmarkAccuracy(b *testing.B) {
	sc := benchScale()
	var worst float64
	for i := 0; i < b.N; i++ {
		worst = 1
		for _, r := range sc.Accuracy(cfg(33, workload.SSD)) {
			ratio := r.Ratio
			if ratio < 1 {
				ratio = 1 / ratio
			}
			worst = math.Max(worst, ratio)
		}
	}
	b.ReportMetric(worst, "worst-est/measured-x")
}

func BenchmarkOptimality(b *testing.B) {
	sc := benchScale()
	var oldMean, newMean float64
	for i := 0; i < b.N; i++ {
		rows := sc.Optimality(cfg(33, workload.SSD))
		oldMean, newMean = 0, 0
		for _, r := range rows {
			oldMean += r.OldRegret
			newMean += r.NewRegret
		}
		oldMean /= float64(len(rows))
		newMean /= float64(len(rows))
	}
	b.ReportMetric(oldMean, "dtt-mean-regret-x")
	b.ReportMetric(newMean, "qdtt-mean-regret-x")
}

func BenchmarkConcurrency(b *testing.B) {
	sc := benchScale()
	var budgetedVsOver float64
	for i := 0; i < b.N; i++ {
		rows := sc.Concurrency()
		var budgeted, over float64
		for _, r := range rows {
			switch r.Strategy {
			case "concurrent, PIS8 (budgeted)":
				budgeted = r.MakespanMs
			case "concurrent, PIS32 (oversubscribed)":
				over = r.MakespanMs
			}
		}
		budgetedVsOver = budgeted / over
	}
	b.ReportMetric(budgetedVsOver, "budgeted/oversubscribed-makespan")
}

func BenchmarkJoins(b *testing.B) {
	sc := benchScale()
	var worstRegret float64
	for i := 0; i < b.N; i++ {
		worstRegret = 0
		for _, r := range sc.Joins() {
			worstRegret = math.Max(worstRegret, r.Regret)
		}
	}
	b.ReportMetric(worstRegret, "worst-join-planner-regret-x")
}

// benchPlanner builds one calibrated system for the planner throughput
// microbenchmarks.
func benchPlanner(b *testing.B, greedy bool) (*pioqo.System, *pioqo.Table) {
	b.Helper()
	sys := pioqo.New(pioqo.Config{Device: pioqo.SSD, PoolPages: 1024, GreedyPlanning: greedy})
	tab, err := sys.CreateTable("t", 100_000, 33, pioqo.WithSyntheticData())
	if err != nil {
		b.Fatal(err)
	}
	if _, err := sys.Calibrate(pioqo.CalibrationOptions{MaxReads: 640}); err != nil {
		b.Fatal(err)
	}
	return sys, tab
}

// BenchmarkChoose is the PR 7 serving baseline: the exact-key memo sees a
// fresh constant every query, so every plan pays a full enumeration.
func BenchmarkChoose(b *testing.B) {
	sys, tab := benchPlanner(b, false)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		lo := int64(i*997) % 90_000
		if _, err := sys.Plan(pioqo.Query{Table: tab, Low: lo, High: lo + 150}, pioqo.PlanOptions{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkGreedyChoose is the same constant stream through the serving
// path: the parameterized band cache binds constants into cached entries.
func BenchmarkGreedyChoose(b *testing.B) {
	sys, tab := benchPlanner(b, true)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		lo := int64(i*997) % 90_000
		if _, err := sys.Plan(pioqo.Query{Table: tab, Low: lo, High: lo + 150}, pioqo.PlanOptions{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEarlyStop(b *testing.B) {
	sc := benchScale()
	var saving float64
	for i := 0; i < b.N; i++ {
		rows := sc.EarlyStop()
		var full, stopped float64
		for _, r := range rows {
			if r.Device == "HDD" {
				if r.Threshold == 0 {
					full = float64(r.SimTime)
				} else {
					stopped = float64(r.SimTime)
				}
			}
		}
		saving = full / stopped
	}
	b.ReportMetric(saving, "hdd-calibration-saving-x")
}
