package pioqo

import "testing"

func TestExecuteGroupByCorrectness(t *testing.T) {
	sys, tab := newCalibrated(t, SSD, 20000, 33)
	res, err := sys.ExecuteGroupBy(GroupByQuery{
		Table: tab, Low: 0, High: 1999, GroupWidth: 500, Agg: Count,
	}, Cold())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Groups) != 4 {
		t.Fatalf("%d groups, want 4", len(res.Groups))
	}
	// Group counts must sum to the unconditional COUNT over the range.
	var sum int64
	for _, g := range res.Groups {
		sum += g.Value
		if g.Value != g.Rows {
			t.Errorf("group %d: COUNT %d != rows %d", g.Key, g.Value, g.Rows)
		}
	}
	whole, err := sys.Execute(Query{Table: tab, Low: 0, High: 1999, Agg: Count}, Cold())
	if err != nil {
		t.Fatal(err)
	}
	if sum != whole.Value {
		t.Errorf("group counts sum to %d, whole-range COUNT is %d", sum, whole.Value)
	}
	if res.Plan.Degree == 0 || res.Runtime <= 0 {
		t.Errorf("missing plan/runtime: %+v", res)
	}
}

func TestExecuteGroupByValidation(t *testing.T) {
	sys, tab := newCalibrated(t, SSD, 1000, 33)
	if _, err := sys.ExecuteGroupBy(GroupByQuery{Table: tab, GroupWidth: 0}); err == nil {
		t.Error("zero group width accepted")
	}
	if _, err := sys.ExecuteGroupBy(GroupByQuery{GroupWidth: 10}); err == nil {
		t.Error("missing table accepted")
	}
}
