package pioqo

import (
	"fmt"
	"sort"
	"strings"
	"text/tabwriter"
	"time"
)

// WorkloadReport aggregates a concurrent batch's service levels by query
// shape: virtual-time latency percentiles per shape, the queue-wait versus
// execution breakdown, and the batch makespan. All times are virtual, so
// the same seeded workload reports identical numbers on any host.
type WorkloadReport struct {
	// Queries is the batch size; Makespan the submission-to-last-completion
	// window, admission waits included.
	Queries  int
	Makespan time.Duration

	// Shapes holds one entry per distinct query shape, in first-appearance
	// order. A shape is table × aggregate × predicate selectivity — the
	// granularity at which a workload's SLOs are usually stated.
	Shapes []ShapeSLO
}

// ShapeSLO is one query shape's service levels over the batch.
type ShapeSLO struct {
	// Shape labels the group: table, aggregate, selectivity percent.
	Shape string
	// Queries is how many of the batch's queries had this shape.
	Queries int

	// P50, P95, and P99 are nearest-rank percentiles of end-to-end latency
	// (admission wait + execution) across the shape's queries.
	P50, P95, P99 time.Duration

	// MeanWait and MeanExec split the shape's mean end-to-end latency into
	// its admission-queue and execution components.
	MeanWait, MeanExec time.Duration
}

// SLOReport derives the workload report from the batch's results. queries
// must be the slice passed to ExecuteConcurrent, in the same order — it
// supplies the shape of each result.
func (r ConcurrentResult) SLOReport(queries []Query) WorkloadReport {
	n := len(r.Results)
	if len(queries) < n {
		n = len(queries)
	}
	rep := WorkloadReport{Queries: n, Makespan: r.Elapsed}
	idx := make(map[string]int)
	type group struct {
		lat        []time.Duration
		wait, exec time.Duration
	}
	var groups []*group
	for i := 0; i < n; i++ {
		label := shapeLabel(queries[i])
		g, ok := idx[label]
		if !ok {
			g = len(groups)
			idx[label] = g
			groups = append(groups, &group{})
			rep.Shapes = append(rep.Shapes, ShapeSLO{Shape: label})
		}
		wait := r.Admissions[i].Wait
		exec := r.Results[i].Runtime
		groups[g].lat = append(groups[g].lat, wait+exec)
		groups[g].wait += wait
		groups[g].exec += exec
	}
	for i, g := range groups {
		sort.Slice(g.lat, func(a, b int) bool { return g.lat[a] < g.lat[b] })
		k := time.Duration(len(g.lat))
		rep.Shapes[i].Queries = len(g.lat)
		rep.Shapes[i].P50 = quantileDuration(g.lat, 0.50)
		rep.Shapes[i].P95 = quantileDuration(g.lat, 0.95)
		rep.Shapes[i].P99 = quantileDuration(g.lat, 0.99)
		rep.Shapes[i].MeanWait = g.wait / k
		rep.Shapes[i].MeanExec = g.exec / k
	}
	return rep
}

// shapeLabel names a query's shape: table, aggregate, and predicate
// selectivity as a percentage of the key domain.
func shapeLabel(q Query) string {
	span := q.High - q.Low + 1
	sel := 0.0
	if rows := q.Table.Rows(); rows > 0 && span > 0 {
		sel = float64(span) / float64(rows) * 100
	}
	return fmt.Sprintf("%s %s %.3g%%", q.Table.Name(), strings.ToLower(q.Agg.String()), sel)
}

// quantileDuration returns the nearest-rank p-quantile (0..1) of an
// ascending-sorted sample: the smallest element with at least p of the
// sample at or below it. Nearest-rank keeps reported percentiles actual
// observed latencies rather than interpolated ones.
func quantileDuration(sorted []time.Duration, p float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	rank := int(p*float64(len(sorted))+0.9999999) - 1
	if rank < 0 {
		rank = 0
	}
	if rank >= len(sorted) {
		rank = len(sorted) - 1
	}
	return sorted[rank]
}

// String renders the report as an aligned table.
func (r WorkloadReport) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "workload: %d queries, makespan %v\n", r.Queries, r.Makespan)
	w := tabwriter.NewWriter(&sb, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "shape\tn\tp50\tp95\tp99\tmean wait\tmean exec")
	for _, s := range r.Shapes {
		fmt.Fprintf(w, "%s\t%d\t%v\t%v\t%v\t%v\t%v\n",
			s.Shape, s.Queries, s.P50, s.P95, s.P99, s.MeanWait, s.MeanExec)
	}
	w.Flush()
	return sb.String()
}
