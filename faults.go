package pioqo

import (
	"time"

	"pioqo/internal/fault"
	"pioqo/internal/sim"
)

// FaultWindow is one interval of a fault schedule, with offsets relative
// to the moment the schedule is installed (InjectFaults). To == 0 means
// the window never closes. Within an active window each device read
// independently draws an injected error (probability ErrorRate, failing
// after ErrorLatency without touching the device), added latency
// (ExtraLatency always; StragglerLatency with probability StragglerRate),
// and degraded-channel throttling: ChannelLoss shrinks the device's
// effective parallel slots, and each read issued above the shrunken limit
// pays (excess+1)×OverloadPenalty — running deep on a degraded device
// actively costs, which is what makes reduced-depth re-planning win.
type FaultWindow struct {
	From time.Duration
	To   time.Duration

	ErrorRate    float64
	ErrorLatency time.Duration // 0 → 200µs

	ExtraLatency time.Duration

	StragglerRate    float64
	StragglerLatency time.Duration // 0 → 5ms

	ChannelLoss     float64       // fraction of parallel slots lost, 0..1
	OverloadPenalty time.Duration // 0 → 100µs
}

func (w FaultWindow) internal() fault.Window {
	return fault.Window{
		From:             sim.Duration(w.From),
		To:               sim.Duration(w.To),
		ErrorRate:        w.ErrorRate,
		ErrorLatency:     sim.Duration(w.ErrorLatency),
		ExtraLatency:     sim.Duration(w.ExtraLatency),
		StragglerRate:    w.StragglerRate,
		StragglerLatency: sim.Duration(w.StragglerLatency),
		ChannelLoss:      w.ChannelLoss,
		OverloadPenalty:  sim.Duration(w.OverloadPenalty),
	}
}

// FaultSchedule is a seeded, virtual-time-driven fault plan for the
// system's device. Identical (seed, windows) pairs replay byte-identically;
// an empty schedule (no windows) injects nothing.
type FaultSchedule struct {
	// Seed drives the error/straggler draws. 0 means 1.
	Seed int64

	// Slots is the healthy parallel slot count ChannelLoss scales — the
	// device's internal parallelism. 0 means 48, matching the SSD model.
	Slots int

	Windows []FaultWindow
}

func (sch FaultSchedule) internal() fault.Schedule {
	out := fault.Schedule{Seed: sch.Seed, Slots: sch.Slots}
	for _, w := range sch.Windows {
		out.Windows = append(out.Windows, w.internal())
	}
	return out
}

// FaultStats counts what the fault injector has done since the last
// InjectFaults.
type FaultStats struct {
	Errors     int64 // reads failed with ErrDeviceFault
	Stragglers int64 // reads that drew straggler latency
	Delayed    int64 // reads delayed for any reason
	Throttled  int64 // reads that paid a degraded-channel overload penalty
}

// InjectFaults installs sch on the system's device, effective immediately:
// window offsets count from now, so a schedule installed after Calibrate
// degrades queries without having degraded the calibration. Installing a
// schedule replaces any previous one.
//
// While a window with ChannelLoss is active, the resource broker (used by
// ExecuteConcurrent and sessions) observes the degradation and shrinks its
// credit supply proportionally, so newly admitted queries re-plan at a
// queue depth the degraded device can still turn into throughput —
// graceful degradation instead of queue-depth thrash. Config's
// NoDegradationReplan disables that response for A/B comparison.
//
// On a sharded system every node is its own fault-injection domain: the
// schedule is armed on each node with a per-node derived seed, so the
// windows align in virtual time but each device draws its errors and
// stragglers independently.
func (s *System) InjectFaults(sch FaultSchedule) {
	for i, n := range s.nodes {
		nsch := sch.internal()
		if i > 0 {
			seed := nsch.Seed
			if seed == 0 {
				seed = 1
			}
			nsch.Seed = seed + int64(i)
		}
		n.Inj.Arm(nsch)
	}
}

// ClearFaults removes the fault schedule from every node; the cluster is
// healthy again.
func (s *System) ClearFaults() {
	for _, n := range s.nodes {
		n.Inj.Disarm()
	}
}

// FaultStats reports the injectors' activity since the last InjectFaults,
// summed across nodes.
func (s *System) FaultStats() FaultStats {
	var out FaultStats
	for _, n := range s.nodes {
		st := n.Inj.Stats()
		out.Errors += st.Errors
		out.Stragglers += st.Stragglers
		out.Delayed += st.Delayed
		out.Throttled += st.Throttled
	}
	return out
}
