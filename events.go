package pioqo

import (
	"fmt"
	"io"
	"time"

	"pioqo/internal/obs/event"
)

// The engine event log is a bounded, virtual-time-stamped record of every
// resource-governance and fault-handling decision the engine makes:
// admission grants and waits, re-brokered budgets, degraded-supply
// shrinkage, lease releases and credit reclamation, worker starts and
// exits, read retries and backoffs, injected faults, buffer-frame
// uninstalls, and plan-cache hits. Events live in a fixed-capacity ring —
// old entries are overwritten, never allocated around — and every record is
// typed: the event name and both operand names come from the catalog in
// internal/obs/event, so there are no free-form strings at emit sites.
//
// Emission is pure ring mutation in host memory: it schedules no simulator
// events, draws no randomness, and allocates nothing, so an instrumented
// run is byte-identical to an uninstrumented one, and two runs of the same
// seeded workload produce byte-identical JSONL exports. With the log
// disabled (the default) every emit site is a single nil comparison.

// EventLogStats reports the engine event log's occupancy.
type EventLogStats struct {
	// Total is the number of events emitted since the log was enabled (or
	// last reset), including overwritten ones.
	Total uint64
	// Dropped is how many of those were overwritten by ring wrap-around.
	Dropped uint64
	// Len is the number of events currently retained.
	Len int
}

// EngineEvent is one retained event-log record, decoded against the
// catalog: Name identifies the event type, AName/BName label the two
// integer operands (empty when the type carries fewer than two).
type EngineEvent struct {
	// Seq is the emission sequence number, dense from 0.
	Seq uint64
	// At is the virtual time of the decision.
	At time.Duration
	// Name is the catalog event name, e.g. "admission.grant".
	Name string
	// Query is the engine-assigned query id the event is attributed to, or
	// -1 for device- and system-level events.
	Query int64
	// A and B are the typed operands; AName and BName label them.
	A, B         int64
	AName, BName string
}

// EnableEventLog turns on the engine event log with the given ring
// capacity (0 or negative takes the default, 4096 events). All engine
// layers — broker, executor, fault injector, buffer pool, plan cache —
// emit into the one log. Enabling, disabling, or exporting the log never
// perturbs execution: runs stay byte-identical either way.
func (s *System) EnableEventLog(capacity int) {
	if capacity <= 0 {
		capacity = event.DefaultCapacity
	}
	s.setEventLog(event.NewLog(s.env, capacity))
}

// DisableEventLog turns the event log off and drops its buffer. Emit sites
// revert to the zero-overhead nil path.
func (s *System) DisableEventLog() { s.setEventLog(nil) }

// EventLogEnabled reports whether the engine event log is on.
func (s *System) EventLogEnabled() bool { return s.events != nil }

// setEventLog installs l on every layer of every node that emits. The
// broker may not exist yet — sharedBroker passes s.events at build time.
func (s *System) setEventLog(l *event.Log) {
	s.events = l
	for _, n := range s.nodes {
		n.SetEventLog(l)
	}
	if s.broker != nil {
		s.broker.SetLog(l)
	}
}

// EventLogStats reports the log's occupancy; zero values when disabled.
func (s *System) EventLogStats() EventLogStats {
	if s.events == nil {
		return EventLogStats{}
	}
	return EventLogStats{
		Total:   s.events.Total(),
		Dropped: s.events.Dropped(),
		Len:     s.events.Len(),
	}
}

// ResetEventLog clears the retained events and counters, keeping the log
// enabled at its current capacity.
func (s *System) ResetEventLog() {
	if s.events != nil {
		s.events.Reset()
	}
}

// EngineEvents returns the retained events, oldest first, decoded against
// the catalog. Nil when the log is disabled.
func (s *System) EngineEvents() []EngineEvent {
	if s.events == nil {
		return nil
	}
	evs := s.events.Events()
	out := make([]EngineEvent, len(evs))
	for i, e := range evs {
		d := event.Describe(e.Type)
		out[i] = EngineEvent{
			Seq:   e.Seq,
			At:    time.Duration(e.At),
			Name:  d.Name,
			Query: e.Query,
			A:     e.A,
			B:     e.B,
			AName: d.A,
			BName: d.B,
		}
	}
	return out
}

// WriteEventLog exports the retained events as JSONL, one event per line
// with a fixed field order, oldest first. Two runs of the same seeded
// workload export byte-identical logs.
func (s *System) WriteEventLog(w io.Writer) error {
	if s.events == nil {
		return fmt.Errorf("pioqo: event log disabled; call EnableEventLog first")
	}
	return s.events.WriteJSONL(w)
}
