package pioqo

import (
	"testing"
)

func TestExecuteConcurrentAnswersMatchSerial(t *testing.T) {
	sys, tab := newCalibrated(t, SSD, 50000, 33)
	queries := []Query{
		{Table: tab, Low: 0, High: 499},
		{Table: tab, Low: 1000, High: 1999},
		{Table: tab, Low: 40000, High: 49999},
	}
	var want []Result
	for _, q := range queries {
		res, err := sys.Execute(q, Cold())
		if err != nil {
			t.Fatal(err)
		}
		want = append(want, res)
	}
	sys.FlushBufferPool()
	got, err := sys.ExecuteConcurrent(queries, Cold())
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Results) != len(queries) {
		t.Fatalf("%d results, want %d", len(got.Results), len(queries))
	}
	for i := range queries {
		if got.Results[i].Value != want[i].Value || got.Results[i].Rows != want[i].Rows {
			t.Errorf("query %d: concurrent (%d, %d rows) vs serial (%d, %d rows)",
				i, got.Results[i].Value, got.Results[i].Rows, want[i].Value, want[i].Rows)
		}
	}
	if got.Elapsed <= 0 {
		t.Error("non-positive batch elapsed time")
	}
}

func TestExecuteConcurrentSplitsQueueBudget(t *testing.T) {
	sys, tab := newCalibrated(t, SSD, 100000, 33)
	queries := []Query{
		{Table: tab, Low: 0, High: 99},
		{Table: tab, Low: 200, High: 299},
	}
	res, err := sys.ExecuteConcurrent(queries, Cold())
	if err != nil {
		t.Fatal(err)
	}
	if res.QueueBudget <= 0 || res.QueueBudget > 16 {
		t.Errorf("queue budget = %d for 2 queries, want within (0, 16]", res.QueueBudget)
	}
	for i, r := range res.Results {
		if r.Plan.Degree > res.QueueBudget {
			t.Errorf("query %d ran at degree %d above budget %d",
				i, r.Plan.Degree, res.QueueBudget)
		}
	}
}

func TestConcurrentBatchBeatsSequentialExecution(t *testing.T) {
	// Two index scans that each leave device parallelism unused at their
	// budgeted degree should overlap: the batch completes well before the
	// sum of the two serial runtimes.
	sys, tab := newCalibrated(t, SSD, 100000, 33)
	q1 := Query{Table: tab, Low: 0, High: 199}
	q2 := Query{Table: tab, Low: 50000, High: 50199}

	serial := func(q Query) float64 {
		res, err := sys.Execute(q, Cold(),
			WithPlanOptions(PlanOptions{QueueBudget: 16}))
		if err != nil {
			t.Fatal(err)
		}
		return float64(res.Runtime)
	}
	total := serial(q1) + serial(q2)

	sys.FlushBufferPool()
	batch, err := sys.ExecuteConcurrent([]Query{q1, q2}, Cold())
	if err != nil {
		t.Fatal(err)
	}
	if float64(batch.Elapsed) > 0.8*total {
		t.Errorf("concurrent batch %v vs serial sum %.0fns: want meaningful overlap",
			batch.Elapsed, total)
	}
}

func TestExecuteConcurrentValidation(t *testing.T) {
	sys, tab := newCalibrated(t, SSD, 1000, 33)
	if _, err := sys.ExecuteConcurrent(nil); err == nil {
		t.Error("empty batch accepted")
	}
	uncal := New(Config{Device: SSD})
	tab2, err := uncal.CreateTable("t", 100, 10)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := uncal.ExecuteConcurrent([]Query{{Table: tab2}}); err == nil {
		t.Error("uncalibrated system accepted")
	}
	_ = tab
}
