package pioqo

import (
	"reflect"
	"testing"
)

func TestExecuteConcurrentAnswersMatchSerial(t *testing.T) {
	sys, tab := newCalibrated(t, SSD, 50000, 33)
	queries := []Query{
		{Table: tab, Low: 0, High: 499},
		{Table: tab, Low: 1000, High: 1999},
		{Table: tab, Low: 40000, High: 49999},
	}
	var want []Result
	for _, q := range queries {
		res, err := sys.Execute(q, Cold())
		if err != nil {
			t.Fatal(err)
		}
		want = append(want, res)
	}
	sys.FlushBufferPool()
	got, err := sys.ExecuteConcurrent(queries, Cold())
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Results) != len(queries) {
		t.Fatalf("%d results, want %d", len(got.Results), len(queries))
	}
	for i := range queries {
		if got.Results[i].Value != want[i].Value || got.Results[i].Rows != want[i].Rows {
			t.Errorf("query %d: concurrent (%d, %d rows) vs serial (%d, %d rows)",
				i, got.Results[i].Value, got.Results[i].Rows, want[i].Value, want[i].Rows)
		}
	}
	if got.Elapsed <= 0 {
		t.Error("non-positive batch elapsed time")
	}
}

func TestExecuteConcurrentSplitsQueueBudget(t *testing.T) {
	sys, tab := newCalibrated(t, SSD, 100000, 33)
	queries := []Query{
		{Table: tab, Low: 0, High: 99},
		{Table: tab, Low: 200, High: 299},
	}
	res, err := sys.ExecuteConcurrent(queries, Cold())
	if err != nil {
		t.Fatal(err)
	}
	if res.QueueBudget <= 0 || res.QueueBudget > 16 {
		t.Errorf("queue budget = %d for 2 queries, want within (0, 16]", res.QueueBudget)
	}
	if len(res.Admissions) != len(queries) {
		t.Fatalf("%d admission records, want %d", len(res.Admissions), len(queries))
	}
	for i, r := range res.Results {
		adm := res.Admissions[i]
		if adm.Budget > 0 && r.Plan.Degree > adm.Budget {
			t.Errorf("query %d ran at degree %d above its leased budget %d",
				i, r.Plan.Degree, adm.Budget)
		}
		if adm.Wait < 0 {
			t.Errorf("query %d: negative admission wait %v", i, adm.Wait)
		}
	}
}

func TestSingleQueryBatchMatchesExecute(t *testing.T) {
	// A batch of one is a sole query on an idle broker: it receives an
	// unbounded lease, plans exactly as Execute would, and its result must
	// be byte-for-byte identical.
	sysA, tabA := newCalibrated(t, SSD, 50000, 33)
	want, err := sysA.Execute(Query{Table: tabA, Low: 0, High: 4999}, Cold())
	if err != nil {
		t.Fatal(err)
	}
	sysB, tabB := newCalibrated(t, SSD, 50000, 33)
	batch, err := sysB.ExecuteConcurrent(
		[]Query{{Table: tabB, Low: 0, High: 4999}}, Cold())
	if err != nil {
		t.Fatal(err)
	}
	if got := batch.Results[0]; !reflect.DeepEqual(got, want) {
		t.Errorf("single-query batch diverged from Execute:\n got %+v\nwant %+v", got, want)
	}
	if adm := batch.Admissions[0]; adm.Budget != 0 || adm.Wait != 0 {
		t.Errorf("sole query admission = %+v, want unbounded lease with zero wait", adm)
	}
	if batch.Elapsed != want.Runtime {
		t.Errorf("batch makespan %v != query runtime %v", batch.Elapsed, want.Runtime)
	}
}

func TestBudgetFloorWhenQueriesOutnumberDepth(t *testing.T) {
	// 40 queries exceed any calibrated beneficial depth (the grid tops out
	// at 32): with the static even split every lease still gets at least
	// one credit — the pre-broker total/n floor, now remainder-aware.
	sys, tab := newCalibrated(t, SSD, 50000, 33)
	queries := make([]Query, 40)
	for i := range queries {
		lo := int64(i * 100)
		queries[i] = Query{Table: tab, Low: lo, High: lo + 49}
	}
	res, err := sys.ExecuteConcurrent(queries, Cold(), StaticSplit())
	if err != nil {
		t.Fatal(err)
	}
	if res.QueueBudget != 1 {
		t.Errorf("floor share = %d for %d queries, want 1", res.QueueBudget, len(queries))
	}
	for i, adm := range res.Admissions {
		if adm.Budget < 1 {
			t.Errorf("query %d leased budget %d, want >= 1", i, adm.Budget)
		}
		if res.Results[i].Plan.Degree > adm.Budget {
			t.Errorf("query %d degree %d above budget %d",
				i, res.Results[i].Plan.Degree, adm.Budget)
		}
	}

	// The dynamic broker must also drain the same over-subscribed batch:
	// every bounded lease keeps the floor, late survivors may be
	// re-brokered up to an unbounded lease.
	sys.FlushBufferPool()
	dyn, err := sys.ExecuteConcurrent(queries)
	if err != nil {
		t.Fatal(err)
	}
	for i, adm := range dyn.Admissions {
		if adm.Budget < 0 {
			t.Errorf("dynamic query %d leased budget %d", i, adm.Budget)
		}
		if dyn.Results[i].Rows != res.Results[i].Rows {
			t.Errorf("dynamic query %d matched %d rows, static matched %d",
				i, dyn.Results[i].Rows, res.Results[i].Rows)
		}
	}
}

func TestColdFlushesBeforePlanning(t *testing.T) {
	// Two identical systems, identical warm-up. A warms the pool and runs
	// the batch with Cold(); B warms, flushes by hand, and runs without.
	// If Cold() flushed after planning, A would have planned against warm
	// residency statistics and the runs would diverge.
	run := func(explicitFlush bool) ConcurrentResult {
		sys, tab := newCalibrated(t, SSD, 50000, 33)
		if _, err := sys.Execute(Query{Table: tab, Low: 0, High: 49999}); err != nil {
			t.Fatal(err)
		}
		if sys.BufferPoolResident(tab) == 0 {
			t.Fatal("warm-up left the pool cold")
		}
		queries := []Query{
			{Table: tab, Low: 0, High: 999},
			{Table: tab, Low: 20000, High: 20999},
		}
		var (
			res ConcurrentResult
			err error
		)
		if explicitFlush {
			sys.FlushBufferPool()
			res, err = sys.ExecuteConcurrent(queries)
		} else {
			res, err = sys.ExecuteConcurrent(queries, Cold())
		}
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	cold, manual := run(false), run(true)
	if cold.Elapsed != manual.Elapsed {
		t.Errorf("Cold() batch %v vs manually flushed batch %v: Cold must flush before planning",
			cold.Elapsed, manual.Elapsed)
	}
	for i := range cold.Results {
		if cold.Results[i].Plan != manual.Results[i].Plan {
			t.Errorf("query %d: Cold() plan %v vs flushed plan %v",
				i, cold.Results[i].Plan, manual.Results[i].Plan)
		}
	}
}

func TestConcurrentBatchBeatsSequentialExecution(t *testing.T) {
	// Two index scans that each leave device parallelism unused at their
	// budgeted degree should overlap: the batch completes well before the
	// sum of the two serial runtimes.
	sys, tab := newCalibrated(t, SSD, 100000, 33)
	q1 := Query{Table: tab, Low: 0, High: 199}
	q2 := Query{Table: tab, Low: 50000, High: 50199}

	serial := func(q Query) float64 {
		res, err := sys.Execute(q, Cold(),
			WithPlanOptions(PlanOptions{QueueBudget: 16}))
		if err != nil {
			t.Fatal(err)
		}
		return float64(res.Runtime)
	}
	total := serial(q1) + serial(q2)

	sys.FlushBufferPool()
	batch, err := sys.ExecuteConcurrent([]Query{q1, q2}, Cold())
	if err != nil {
		t.Fatal(err)
	}
	if float64(batch.Elapsed) > 0.8*total {
		t.Errorf("concurrent batch %v vs serial sum %.0fns: want meaningful overlap",
			batch.Elapsed, total)
	}
}

func TestExecuteConcurrentValidation(t *testing.T) {
	sys, tab := newCalibrated(t, SSD, 1000, 33)
	if _, err := sys.ExecuteConcurrent(nil); err == nil {
		t.Error("empty batch accepted")
	}
	uncal := New(Config{Device: SSD})
	tab2, err := uncal.CreateTable("t", 100, 10)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := uncal.ExecuteConcurrent([]Query{{Table: tab2}}); err == nil {
		t.Error("uncalibrated system accepted")
	}
	_ = tab
}
