// Command pioqo-calibrate runs a standalone DTT/QDTT calibration against a
// simulated device and prints the resulting model as tab-separated values.
//
// Usage:
//
//	pioqo-calibrate [-device ssd|hdd|raid8] [-method aw|gw|mt]
//	                [-reads N] [-reps N] [-threshold T] [-model dtt|qdtt]
//
// With -model dtt, only the queue-depth-1 row is calibrated (the paper's
// Fig. 6); with the default qdtt, the full exponential depth grid is
// calibrated (Fig. 7), honouring the §4.6 early-stop threshold.
package main

import (
	"flag"
	"fmt"
	"os"
	"text/tabwriter"

	"pioqo/internal/calibrate"
	"pioqo/internal/sim"
	"pioqo/internal/workload"
)

func main() {
	deviceFlag := flag.String("device", "ssd", "device model: ssd, hdd, or raid8")
	methodFlag := flag.String("method", "aw", "queue-depth driver: aw, gw, or mt")
	reads := flag.Int("reads", 3200, "page-read budget per calibration point (M)")
	reps := flag.Int("reps", 1, "repetitions per point")
	threshold := flag.Float64("threshold", 0, "early-stop threshold T (0 disables)")
	modelFlag := flag.String("model", "qdtt", "model to calibrate: dtt or qdtt")
	seed := flag.Int64("seed", 1, "random seed")
	flag.Parse()

	var kind workload.DeviceKind
	switch *deviceFlag {
	case "ssd":
		kind = workload.SSD
	case "hdd":
		kind = workload.HDD
	case "raid8":
		kind = workload.RAID8
	default:
		fmt.Fprintf(os.Stderr, "pioqo-calibrate: unknown device %q\n", *deviceFlag)
		os.Exit(2)
	}

	env := sim.NewEnv(*seed)
	dev := workload.NewDevice(env, kind)
	cfg := calibrate.DefaultConfig(dev)
	cfg.MaxReads = *reads
	cfg.Repetitions = *reps
	cfg.StopThreshold = *threshold
	cfg.Seed = *seed
	switch *methodFlag {
	case "aw":
		cfg.Method = calibrate.ActiveWait
	case "gw":
		cfg.Method = calibrate.GroupWait
	case "mt":
		cfg.Method = calibrate.MultiThread
	default:
		fmt.Fprintf(os.Stderr, "pioqo-calibrate: unknown method %q\n", *methodFlag)
		os.Exit(2)
	}
	if *modelFlag == "dtt" {
		cfg.Depths = []int{1}
	} else if *modelFlag != "qdtt" {
		fmt.Fprintf(os.Stderr, "pioqo-calibrate: unknown model %q\n", *modelFlag)
		os.Exit(2)
	}

	out := calibrate.Run(env, dev, cfg)

	w := tabwriter.NewWriter(os.Stdout, 2, 0, 2, ' ', 0)
	fmt.Fprintf(w, "# device=%s method=%v reads/point=%d reps=%d\n",
		dev.Name(), cfg.Method, cfg.MaxReads, cfg.Repetitions)
	fmt.Fprintf(w, "# calibration: %d reads, %v of device time, stopped_early=%v\n",
		out.TotalReads, out.SimTime, out.StoppedEarly)
	fmt.Fprintln(w, "band_pages\tqueue_depth\tmicros_per_page\tstddev")
	for _, p := range out.Points {
		fmt.Fprintf(w, "%d\t%d\t%.2f\t%.2f\n", p.Band, p.Depth, p.MicrosPerPage, p.StdDev)
	}
	w.Flush()
}
