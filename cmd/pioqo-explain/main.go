// Command pioqo-explain shows what the DTT-based ("old") and QDTT-based
// ("new") optimizers choose for the paper's probe query across a
// selectivity sweep, with estimated and measured runtimes.
//
// Usage:
//
//	pioqo-explain [-device ssd|hdd] [-rows N] [-rpp N] [-pool N]
//	              [-from SEL] [-to SEL] [-points N] [-verbose]
//
// With -verbose, every candidate plan is listed per selectivity.
package main

import (
	"flag"
	"fmt"
	"math"
	"os"
	"text/tabwriter"

	"pioqo"
)

func main() {
	deviceFlag := flag.String("device", "ssd", "device model: ssd or hdd")
	rows := flag.Int64("rows", 400000, "table cardinality")
	rpp := flag.Int("rpp", 33, "rows per page")
	pool := flag.Int("pool", 2048, "buffer pool pages")
	from := flag.Float64("from", 0.0005, "sweep start selectivity (fraction)")
	to := flag.Float64("to", 0.2, "sweep end selectivity (fraction)")
	points := flag.Int("points", 8, "sweep points (geometric)")
	verbose := flag.Bool("verbose", false, "list every candidate plan")
	flag.Parse()

	var kind pioqo.DeviceKind
	switch *deviceFlag {
	case "ssd":
		kind = pioqo.SSD
	case "hdd":
		kind = pioqo.HDD
	default:
		fmt.Fprintf(os.Stderr, "pioqo-explain: unknown device %q\n", *deviceFlag)
		os.Exit(2)
	}

	sys := pioqo.New(pioqo.Config{Device: kind, PoolPages: *pool})
	tab, err := sys.CreateTable("T", *rows, *rpp, pioqo.WithSyntheticData())
	if err != nil {
		fmt.Fprintln(os.Stderr, "pioqo-explain:", err)
		os.Exit(1)
	}
	if _, err := sys.Calibrate(pioqo.CalibrationOptions{}); err != nil {
		fmt.Fprintln(os.Stderr, "pioqo-explain:", err)
		os.Exit(1)
	}

	w := tabwriter.NewWriter(os.Stdout, 2, 0, 2, ' ', 0)
	fmt.Fprintf(w, "# %s, %d rows, %d rows/page, pool %d pages\n",
		sys.DeviceName(), *rows, *rpp, *pool)
	fmt.Fprintln(w, "selectivity\told_plan\tnew_plan\told_runtime\tnew_runtime\tspeedup")

	ratio := *to / *from
	for i := 0; i < *points; i++ {
		sel := *from
		if *points > 1 {
			sel = *from * math.Pow(ratio, float64(i)/float64(*points-1))
		}
		hi := int64(sel*float64(*rows)) - 1
		if hi < 0 {
			hi = 0
		}
		q := pioqo.Query{Table: tab, Low: 0, High: hi}

		oldPlan, err := sys.Plan(q, pioqo.PlanOptions{DepthOblivious: true})
		exitOn(err)
		newPlan, err := sys.Plan(q, pioqo.PlanOptions{})
		exitOn(err)
		oldRes, err := sys.ExecutePlan(q, oldPlan, pioqo.Cold())
		exitOn(err)
		newRes, err := sys.ExecutePlan(q, newPlan, pioqo.Cold())
		exitOn(err)

		fmt.Fprintf(w, "%.5g\t%v\t%v\t%v\t%v\t%.2fx\n",
			sel, oldPlan, newPlan, oldRes.Runtime, newRes.Runtime,
			float64(oldRes.Runtime)/float64(newRes.Runtime))

		if *verbose {
			plans, err := sys.Explain(q, pioqo.PlanOptions{})
			exitOn(err)
			for _, p := range plans {
				fmt.Fprintf(w, "\tcandidate\t%v\tio=%v\tcpu=%v\n",
					p, p.EstimatedIO, p.EstimatedCPU)
			}
		}
	}
	w.Flush()
}

func exitOn(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "pioqo-explain:", err)
		os.Exit(1)
	}
}

