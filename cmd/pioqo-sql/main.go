// Command pioqo-sql is an interactive shell over the pioqo engine, speaking
// the small SQL dialect of internal/sql. It is the quickest way to poke at
// the paper's behaviours by hand:
//
//	$ pioqo-sql -device ssd
//	pioqo> CREATE TABLE t ROWS 400000 ROWSPERPAGE 33 SYNTHETIC;
//	pioqo> CALIBRATE;
//	pioqo> SET OPTIMIZER OLD;
//	pioqo> SELECT MAX(C1) FROM t WHERE C2 BETWEEN 0 AND 999;
//	pioqo> SET OPTIMIZER NEW;
//	pioqo> SELECT MAX(C1) FROM t WHERE C2 BETWEEN 0 AND 999;
//	pioqo> EXPLAIN ANALYZE SELECT MAX(C1) FROM t WHERE C2 BETWEEN 0 AND 999;
//
// EXPLAIN shows the optimizer's candidate plans; EXPLAIN ANALYZE executes
// the query and prints its virtual-time span tree (per-worker CPU/I/O-wait
// split) plus the engine metrics attributed to it.
//
// Statements end with ';'. Non-interactive use: pipe a script on stdin.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strings"

	"pioqo"
	"pioqo/internal/sql"
)

func main() {
	deviceFlag := flag.String("device", "ssd", "device model: ssd, hdd, or raid8")
	pool := flag.Int("pool", 16384, "buffer pool pages")
	seed := flag.Int64("seed", 1, "random seed")
	flag.Parse()

	var kind pioqo.DeviceKind
	switch *deviceFlag {
	case "ssd":
		kind = pioqo.SSD
	case "hdd":
		kind = pioqo.HDD
	case "raid8":
		kind = pioqo.RAID8
	default:
		fmt.Fprintf(os.Stderr, "pioqo-sql: unknown device %q\n", *deviceFlag)
		os.Exit(2)
	}

	sys := pioqo.New(pioqo.Config{Device: kind, PoolPages: *pool, Seed: *seed})
	session := sql.NewSession(sys)

	interactive := isTerminal()
	if interactive {
		fmt.Printf("pioqo shell — %s device, %d-page pool. Statements end with ';'.\n",
			sys.DeviceName(), *pool)
		fmt.Print("pioqo> ")
	}

	scanner := bufio.NewScanner(os.Stdin)
	scanner.Buffer(make([]byte, 1<<20), 1<<20)
	var pending strings.Builder
	for scanner.Scan() {
		pending.WriteString(scanner.Text())
		pending.WriteString("\n")
		text := pending.String()
		for {
			idx := strings.IndexByte(text, ';')
			if idx < 0 {
				break
			}
			stmt := text[:idx+1]
			text = text[idx+1:]
			out, err := session.Exec(stmt)
			switch {
			case err != nil:
				fmt.Fprintln(os.Stderr, "error:", err)
			case out != "":
				fmt.Println(out)
			}
		}
		pending.Reset()
		pending.WriteString(text)
		if interactive {
			fmt.Print("pioqo> ")
		}
	}
	if rest := strings.TrimSpace(pending.String()); rest != "" {
		out, err := session.Exec(rest)
		switch {
		case err != nil:
			fmt.Fprintln(os.Stderr, "error:", err)
		case out != "":
			fmt.Println(out)
		}
	}
	if interactive {
		fmt.Println()
	}
}

// isTerminal reports whether stdin looks interactive (best effort, stdlib
// only: character devices are terminals, pipes and files are not).
func isTerminal() bool {
	info, err := os.Stdin.Stat()
	if err != nil {
		return false
	}
	return info.Mode()&os.ModeCharDevice != 0
}
