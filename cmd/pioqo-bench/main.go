// Command pioqo-bench regenerates any table or figure from the paper's
// evaluation as tab-separated values, or — for the curve figures — as
// ASCII charts.
//
// Usage:
//
//	pioqo-bench [-scale quick|default] [-panel a..f] [-ascii] [-trace out.json] [-json] [-parallel n] <experiment>
//
// Flags may also follow the experiment name. -trace writes every
// virtual-time span the run produced (one process lane per system, one
// thread lane per worker) as Chrome trace_event JSON for chrome://tracing.
// -json makes qdprofile emit its sampled queue-depth series as JSON.
// -parallel sets how many host workers run independent sweep points
// concurrently (0, the default, uses one per core; 1 runs serially) —
// output is byte-identical at any setting, only wall-clock time changes.
//
// Paper experiments: fig1, table1, fig4, table2, table3, fig5, fig6, fig7,
// fig8, fig9, fig10, fig11, fig12, earlystop. Extensions: qdprofile,
// concurrency, admission, degrade, slo, shared, joins, mixed, accuracy,
// optimality, planbench, shard, adaptive. "all" runs everything.
//
// fig4 and fig8 accept -panel to select one configuration (fig4: a..f for
// E1-HDD, E1-SSD, E33-HDD, E33-SSD, E500-HDD, E500-SSD; fig8: a..c for
// E1/E33/E500-SSD); without -panel every panel is printed.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"text/tabwriter"

	"pioqo/internal/experiments"
	"pioqo/internal/obs"
	"pioqo/internal/plot"
	"pioqo/internal/workload"
)

var (
	ascii      = flag.Bool("ascii", false, "render curve figures (fig1, fig4, fig5, fig8) as ASCII charts")
	traceOut   = flag.String("trace", "", "write the run's virtual-time spans as Chrome trace_event JSON to this file (open in chrome://tracing)")
	jsonOut    = flag.Bool("json", false, "qdprofile/admission: emit the result rows as JSON instead of the TSV summary")
	parallel   = flag.Int("parallel", 0, "host workers for sweep points: 0 = one per core, 1 = serial (output is identical either way)")
	concurrent = flag.Int("concurrent", 8, "admission: number of queries in the skewed concurrent batch")
	queries    = flag.Int("queries", 100000, "planbench: plan lookups per throughput arm")
	shards     = flag.Int("shards", 8, "shard: maximum shard count for the scaling grid")
)

func main() {
	scaleFlag := flag.String("scale", "default", "experiment scale: quick or default")
	panel := flag.String("panel", "", "panel letter for fig4 (a-f) / fig8 (a-c)")
	flag.Usage = usage
	flag.Parse()
	if flag.NArg() < 1 {
		usage()
		os.Exit(2)
	}
	exp := flag.Arg(0)
	// Accept flags after the experiment name too, so
	// "pioqo-bench fig4 -panel=a -trace out.json" works.
	if err := flag.CommandLine.Parse(flag.Args()[1:]); err != nil {
		os.Exit(2)
	}
	if flag.NArg() != 0 {
		usage()
		os.Exit(2)
	}

	var sc experiments.Scale
	switch *scaleFlag {
	case "quick":
		sc = experiments.QuickScale()
	case "default":
		sc = experiments.DefaultScale()
	default:
		fmt.Fprintf(os.Stderr, "pioqo-bench: unknown scale %q\n", *scaleFlag)
		os.Exit(2)
	}

	sc.Parallel = *parallel

	var tr *obs.Trace
	if *traceOut != "" {
		tr = obs.NewTrace()
		sc.Trace = tr
	}

	if exp == "all" {
		for _, e := range []string{"fig1", "table1", "fig4", "table2", "table3",
			"fig5", "fig6", "fig7", "fig8", "fig9", "fig10", "fig11", "fig12",
			"earlystop", "qdprofile", "concurrency", "admission", "degrade",
			"slo", "shared", "joins", "mixed", "accuracy", "optimality",
			"planbench", "shard", "adaptive"} {
			fmt.Printf("== %s ==\n", e)
			if err := run(sc, e, *panel); err != nil {
				fmt.Fprintf(os.Stderr, "pioqo-bench: %v\n", err)
				os.Exit(1)
			}
			fmt.Println()
		}
		writeTrace(tr)
		return
	}
	if err := run(sc, exp, *panel); err != nil {
		fmt.Fprintf(os.Stderr, "pioqo-bench: %v\n", err)
		os.Exit(1)
	}
	writeTrace(tr)
}

// writeTrace exports the collected spans as Chrome trace_event JSON to the
// -trace file, if tracing was requested.
func writeTrace(tr *obs.Trace) {
	if tr == nil {
		return
	}
	f, err := os.Create(*traceOut)
	if err != nil {
		fmt.Fprintf(os.Stderr, "pioqo-bench: %v\n", err)
		os.Exit(1)
	}
	if err := tr.WriteChrome(f); err == nil {
		err = f.Close()
	} else {
		f.Close()
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "pioqo-bench: writing trace: %v\n", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "pioqo-bench: wrote Chrome trace to %s (open in chrome://tracing)\n", *traceOut)
}

func usage() {
	fmt.Fprintf(os.Stderr, `usage: pioqo-bench [-scale quick|default] [-panel a..f] [-trace out.json] [-json] [-parallel n] <experiment>

experiments:
  fig1       sequential vs parallel-random throughput, HDD & SSD
  table1     the six experimental configurations
  fig4       runtime of Q vs selectivity per access method (6 panels)
  table2     break-even selectivity shifts
  table3     PFTS32 vs FTS I/O throughput
  fig5       index-scan prefetching sweep
  fig6       calibrated DTT models (HDD & SSD)
  fig7       calibrated QDTT models (HDD & SSD)
  fig8       DTT- vs QDTT-based optimizer runtimes (3 panels)
  fig9       GW vs AW calibration on SSD
  fig10      GW-AW difference surface on SSD
  fig11      GW-AW difference surface on 8-spindle RAID
  fig12      interpolation accuracy of exponential depth calibration
  earlystop  calibration-time savings from the stop threshold
  qdprofile  measured PIS queue-depth profiles per parallel degree (§2)
  concurrency inter- vs intra-query parallelism strategies (§4.3)
  admission  static even queue-budget split vs brokered admission control
             on a skewed concurrent batch (-concurrent N, -json)
  degrade    graceful degradation under injected 50%% channel loss: healthy
             vs no-replan vs degraded re-planning (-concurrent N, -json)
  slo        per-query-shape workload SLO report — latency p50/p95/p99,
             queue-wait vs execution split, makespan (-concurrent N, -json)
  shared     heavy-traffic scan sharing A/B: a thousand-query point/scan
             mix with circulating shared scans on vs off (-concurrent N, -json)
  joins      hash vs index nested-loop join ablation across build skew
  mixed      whole-workload comparison of DTT vs QDTT planning
  accuracy   QDTT estimated cost vs measured runtime per candidate plan
  optimality measured regret of DTT vs QDTT plan choices
  planbench  serving-scale planner: plans/sec per plan path (exact-key memo
             vs parameterized band cache, drifting and concurrent) plus the
             greedy-vs-full quality grid (-queries N, -json)
  shard      sharded scatter-gather: makespan vs shard count across the
             skew grid, straggler hedging A/B, and the range-partition
             rebalance sweep (-shards N, -json)
  adaptive   feedback-controller benchmark: adaptive vs every static degree
             across the device x skew x selectivity grid (-json)
  all        everything above
`)
}

// tw returns a tab writer for aligned TSV output.
func tw() *tabwriter.Writer {
	return tabwriter.NewWriter(os.Stdout, 2, 0, 2, ' ', 0)
}

func fig4Panels(panel string) ([]workload.Config, error) {
	all := workload.Table1()
	if panel == "" {
		return all, nil
	}
	if len(panel) != 1 || panel[0] < 'a' || panel[0] > 'f' {
		return nil, fmt.Errorf("fig4 panel must be a..f, got %q", panel)
	}
	return all[panel[0]-'a' : panel[0]-'a'+1], nil
}

func fig8Panels(panel string) ([]workload.Config, error) {
	ssd := []workload.Config{
		{Name: "E1-SSD", RowsPerPage: 1, Device: workload.SSD},
		{Name: "E33-SSD", RowsPerPage: 33, Device: workload.SSD},
		{Name: "E500-SSD", RowsPerPage: 500, Device: workload.SSD},
	}
	if panel == "" {
		return ssd, nil
	}
	if len(panel) != 1 || panel[0] < 'a' || panel[0] > 'c' {
		return nil, fmt.Errorf("fig8 panel must be a..c, got %q", panel)
	}
	return ssd[panel[0]-'a' : panel[0]-'a'+1], nil
}

func run(sc experiments.Scale, exp, panel string) error {
	w := tw()
	defer w.Flush()
	switch exp {
	case "fig1":
		rows := sc.Fig1()
		if *ascii {
			byDev := map[string]*plot.Series{}
			var order []string
			for _, r := range rows {
				s, ok := byDev[r.Device]
				if !ok {
					s = &plot.Series{Name: r.Device + " random %of seq"}
					byDev[r.Device] = s
					order = append(order, r.Device)
				}
				s.X = append(s.X, float64(r.QueueDepth))
				s.Y = append(s.Y, r.RatioPercent)
			}
			var series []plot.Series
			for _, d := range order {
				series = append(series, *byDev[d])
			}
			fmt.Fprintln(w, plot.Render(series, plot.Options{
				Title:  "Fig 1 — parallel random reads as % of sequential",
				LogX:   true,
				XLabel: "queue depth", YLabel: "% of sequential",
			}))
			return nil
		}
		fmt.Fprintln(w, "device\tqueue_depth\trandom_MBps\tseq_MBps\tratio_%")
		for _, r := range rows {
			fmt.Fprintf(w, "%s\t%d\t%.1f\t%.1f\t%.2f\n",
				r.Device, r.QueueDepth, r.RandomMBps, r.SeqMBps, r.RatioPercent)
		}
	case "table1":
		fmt.Fprintln(w, "experiment\ttable\trows_per_page\tdevice")
		for _, c := range workload.Table1() {
			fmt.Fprintf(w, "%s\tT%d\t%d\t%s\n", c.Name, c.RowsPerPage, c.RowsPerPage, c.Device)
		}
	case "fig4":
		cfgs, err := fig4Panels(panel)
		if err != nil {
			return err
		}
		for _, cfg := range cfgs {
			rows := sc.Fig4(cfg, []int{32})
			if *ascii {
				byMethod := map[string]*plot.Series{}
				var order []string
				for _, r := range rows {
					s, ok := byMethod[r.Method]
					if !ok {
						s = &plot.Series{Name: r.Method}
						byMethod[r.Method] = s
						order = append(order, r.Method)
					}
					s.X = append(s.X, r.Selectivity*100)
					s.Y = append(s.Y, r.Runtime.Millis())
				}
				var series []plot.Series
				for _, m := range order {
					series = append(series, *byMethod[m])
				}
				fmt.Fprintln(w, plot.Render(series, plot.Options{
					Title: "Fig 4 " + cfg.Name + " — runtime of Q per access method",
					LogX:  true, LogY: true,
					XLabel: "selectivity %", YLabel: "runtime ms",
				}))
				continue
			}
			if cfg == cfgs[0] {
				fmt.Fprintln(w, "config\tselectivity\tmethod\truntime")
			}
			for _, r := range rows {
				fmt.Fprintf(w, "%s\t%.6g\t%s\t%v\n", r.Config, r.Selectivity, r.Method, r.Runtime)
			}
		}
	case "table2":
		fmt.Fprintln(w, "rows_per_page\tNP-HDD_%\tP-HDD_%\tNP-SSD_%\tP-SSD_%")
		for _, r := range sc.Table2() {
			fmt.Fprintf(w, "%d\t%.4g\t%.4g\t%.4g\t%.4g\n",
				r.RowsPerPage, r.NPHDD*100, r.PHDD*100, r.NPSSD*100, r.PSSD*100)
		}
	case "table3":
		fmt.Fprintln(w, "rows_per_page\tPFTS32_HDD_MBps\tPFTS32_SSD_MBps\tPFTS32_ratio\tFTS_HDD_MBps\tFTS_SSD_MBps\tFTS_ratio")
		for _, r := range sc.Table3() {
			fmt.Fprintf(w, "%d\t%.2f\t%.2f\t%.2fX\t%.2f\t%.2f\t%.2fX\n",
				r.RowsPerPage, r.PFTS32HDD, r.PFTS32SSD, r.PFTS32Ratio,
				r.FTSHDD, r.FTSSSD, r.FTSRatio)
		}
	case "fig5":
		rows := sc.Fig5()
		if *ascii {
			byDeg := map[int]*plot.Series{}
			var order []int
			for _, r := range rows {
				s, ok := byDeg[r.Degree]
				if !ok {
					s = &plot.Series{Name: fmt.Sprintf("%d workers", r.Degree)}
					byDeg[r.Degree] = s
					order = append(order, r.Degree)
				}
				s.X = append(s.X, float64(r.Prefetch))
				s.Y = append(s.Y, r.Runtime.Millis())
			}
			var series []plot.Series
			for _, d := range order {
				series = append(series, *byDeg[d])
			}
			fmt.Fprintln(w, plot.Render(series, plot.Options{
				Title:  "Fig 5 — PIS runtime vs per-worker prefetch depth",
				LogY:   true,
				XLabel: "prefetch depth n", YLabel: "runtime ms",
			}))
			return nil
		}
		fmt.Fprintln(w, "degree\tprefetch\truntime")
		for _, r := range rows {
			fmt.Fprintf(w, "%d\t%d\t%v\n", r.Degree, r.Prefetch, r.Runtime)
		}
	case "fig6":
		fmt.Fprintln(w, "device\tband_pages\tmicros_per_page")
		for _, r := range sc.Fig6() {
			fmt.Fprintf(w, "%s\t%d\t%.2f\n", r.Device, r.Band, r.Micros)
		}
	case "fig7":
		fmt.Fprintln(w, "device\tband_pages\tqueue_depth\tmicros_per_page")
		for _, r := range sc.Fig7() {
			fmt.Fprintf(w, "%s\t%d\t%d\t%.2f\n", r.Device, r.Band, r.Depth, r.Micros)
		}
	case "fig8":
		cfgs, err := fig8Panels(panel)
		if err != nil {
			return err
		}
		for _, cfg := range cfgs {
			rows := sc.Fig8(cfg)
			if *ascii {
				oldS := plot.Series{Name: "old optimizer (DTT)"}
				newS := plot.Series{Name: "new optimizer (QDTT)"}
				for _, r := range rows {
					oldS.X = append(oldS.X, r.Selectivity*100)
					oldS.Y = append(oldS.Y, r.OldRuntime.Millis())
					newS.X = append(newS.X, r.Selectivity*100)
					newS.Y = append(newS.Y, r.NewRuntime.Millis())
				}
				fmt.Fprintln(w, plot.Render([]plot.Series{oldS, newS}, plot.Options{
					Title: "Fig 8 " + cfg.Name + " — DTT vs QDTT optimizer",
					LogX:  true, LogY: true,
					XLabel: "selectivity %", YLabel: "runtime ms",
				}))
				continue
			}
			if cfg == cfgs[0] {
				fmt.Fprintln(w, "config\tselectivity\told_plan\tnew_plan\told_runtime\tnew_runtime\tspeedup")
			}
			for _, r := range rows {
				fmt.Fprintf(w, "%s\t%.6g\t%s\t%s\t%v\t%v\t%.2f\n",
					r.Config, r.Selectivity, r.OldPlan, r.NewPlan,
					r.OldRuntime, r.NewRuntime, r.Speedup)
			}
		}
	case "fig9":
		fmt.Fprintln(w, "method\tband_pages\tqueue_depth\tmicros_per_page\tstddev")
		for _, r := range sc.Fig9() {
			fmt.Fprintf(w, "%s\t%d\t%d\t%.2f\t%.2f\n", r.Device, r.Band, r.Depth, r.Micros, r.StdDev)
		}
	case "fig10", "fig11":
		rows := sc.Fig10()
		if exp == "fig11" {
			rows = sc.Fig11()
		}
		fmt.Fprintln(w, "band_pages\tqueue_depth\tGW_micros\tAW_micros\tGW_minus_AW")
		for _, r := range rows {
			fmt.Fprintf(w, "%d\t%d\t%.2f\t%.2f\t%.2f\n",
				r.Band, r.Depth, r.GWMicros, r.AWMicros, r.GWMinusAW)
		}
	case "fig12":
		fmt.Fprintln(w, "band_pages\tqueue_depth\tmeasured_micros\tinterpolated_micros\terr_%")
		for _, r := range sc.Fig12() {
			fmt.Fprintf(w, "%d\t%d\t%.2f\t%.2f\t%.2f\n",
				r.Band, r.Depth, r.Measured, r.Interpolated, r.ErrPercent)
		}
	case "earlystop":
		fmt.Fprintln(w, "device\tthreshold\tsim_time\treads\tdepths_calibrated\tstopped_early")
		for _, r := range sc.EarlyStop() {
			fmt.Fprintf(w, "%s\t%.2f\t%v\t%d\t%d\t%v\n",
				r.Device, r.Threshold, r.SimTime, r.Reads, r.DepthsCalibrated, r.StoppedEarly)
		}
	case "mixed":
		fmt.Fprintln(w, "optimizer\tqueries\ttotal_ms\tmean_ms\tp95_ms\tworst_ms\tparallel_queries")
		for _, r := range sc.Mixed(20) {
			fmt.Fprintf(w, "%s\t%d\t%.1f\t%.2f\t%.2f\t%.2f\t%d\n",
				r.Optimizer, r.Queries, r.TotalMs, r.MeanMs, r.P95Ms, r.WorstMs, r.ParallelQs)
		}
	case "joins":
		fmt.Fprintln(w, "build_skew\tdistinct_%\thash_ms\tnl_ms\tchosen\tregret")
		for _, r := range sc.Joins() {
			fmt.Fprintf(w, "%.1f\t%.1f\t%.2f\t%.2f\t%s\t%.2fx\n",
				r.BuildSkew, r.DistinctPct, r.HashMs, r.NLMs, r.Chosen, r.Regret)
		}
	case "concurrency":
		fmt.Fprintln(w, "strategy\tqueries\tdegree\tmakespan_ms\tmean_latency_ms\tMBps")
		for _, r := range sc.Concurrency() {
			fmt.Fprintf(w, "%s\t%d\t%d\t%.2f\t%.2f\t%.0f\n",
				r.Strategy, r.Queries, r.Degree, r.MakespanMs, r.MeanLatMs, r.Throughput)
		}
	case "admission":
		rows := sc.Admission(*concurrent)
		if *jsonOut {
			enc := json.NewEncoder(os.Stdout)
			enc.SetIndent("", "  ")
			return enc.Encode(rows)
		}
		fmt.Fprintln(w, "strategy\tqueries\tmakespan_ms\tmean_latency_ms\tmean_wait_ms\treplans\tMBps")
		for _, r := range rows {
			fmt.Fprintf(w, "%s\t%d\t%.2f\t%.2f\t%.2f\t%d\t%.0f\n",
				r.Strategy, r.Queries, r.MakespanMs, r.MeanLatMs, r.MeanWaitMs, r.Replans, r.Throughput)
		}
	case "degrade":
		rows := sc.Degradation(*concurrent)
		if *jsonOut {
			enc := json.NewEncoder(os.Stdout)
			enc.SetIndent("", "  ")
			return enc.Encode(rows)
		}
		fmt.Fprintln(w, "strategy\tqueries\tchannel_loss_%\tmakespan_ms\tmean_latency_ms\treplans\tthrottled\tMBps")
		for _, r := range rows {
			fmt.Fprintf(w, "%s\t%d\t%.0f\t%.2f\t%.2f\t%d\t%d\t%.0f\n",
				r.Strategy, r.Queries, r.ChannelLossPct, r.MakespanMs, r.MeanLatMs, r.Replans, r.Throttled, r.Throughput)
		}
	case "slo":
		rows := sc.SLO(*concurrent)
		if *jsonOut {
			enc := json.NewEncoder(os.Stdout)
			enc.SetIndent("", "  ")
			return enc.Encode(rows)
		}
		fmt.Fprintln(w, "shape\tqueries\tp50_ms\tp95_ms\tp99_ms\tmean_wait_ms\tmean_exec_ms\tmakespan_ms")
		for _, r := range rows {
			fmt.Fprintf(w, "%s\t%d\t%.2f\t%.2f\t%.2f\t%.2f\t%.2f\t%.2f\n",
				r.Shape, r.Queries, r.P50Ms, r.P95Ms, r.P99Ms, r.WaitMs, r.ExecMs, r.MakespanMs)
		}
	case "shared":
		n := *concurrent
		if n == 8 { // the admission default is far too small for this one
			n = 1000
		}
		rows := sc.SharedScan(n)
		if *jsonOut {
			enc := json.NewEncoder(os.Stdout)
			enc.SetIndent("", "  ")
			return enc.Encode(rows)
		}
		fmt.Fprintln(w, "arm\tqueries\tscans\tmakespan_ms\tscan_p50_ms\tscan_p95_ms\tpoint_p95_ms\tdevice_reads\tshared_adm\tlaps\tspeedup")
		for _, r := range rows {
			fmt.Fprintf(w, "%s\t%d\t%d\t%.1f\t%.1f\t%.1f\t%.1f\t%d\t%d\t%d\t%.2fx\n",
				r.Arm, r.Queries, r.Scans, r.MakespanMs, r.ScanP50Ms, r.ScanP95Ms,
				r.PointP95Ms, r.DeviceReads, r.SharedAdmissions, r.Laps, r.Speedup)
		}
	case "shard":
		rows := sc.Shard(*shards)
		if *jsonOut {
			enc := json.NewEncoder(os.Stdout)
			enc.SetIndent("", "  ")
			return enc.Encode(rows)
		}
		fmt.Fprintln(w, "arm\tshards\tpartition\tzipf\tplan\tfanout\tmakespan_ms\tspeedup\thedges\twins\thot_rows\tmean_rows")
		for _, r := range rows {
			fmt.Fprintf(w, "%s\t%d\t%s\t%.1f\t%s\t%d\t%.2f\t%.2fx\t%d\t%d\t%d\t%d\n",
				r.Arm, r.Shards, r.Partition, r.Zipf, r.Plan, r.Fanout,
				r.MakespanMs, r.Speedup, r.HedgesIssued, r.HedgeWins, r.HotRows, r.MeanRows)
		}
	case "adaptive":
		rows := sc.Adaptive()
		if *jsonOut {
			enc := json.NewEncoder(os.Stdout)
			enc.SetIndent("", "  ")
			return enc.Encode(rows)
		}
		fmt.Fprintln(w, "device\tskew\tsel_%\tadaptive_ms\tbest_static_ms\tbest_d\tworst_static_ms\tworst_d\twithin_%\tretunes\tspec_issued\tspec_hits")
		for _, r := range rows {
			fmt.Fprintf(w, "%s\t%s\t%.2f\t%.2f\t%.2f\t%d\t%.2f\t%d\t%+.1f\t%d\t%d\t%d\n",
				r.Device, r.Skew, r.SelPct, r.AdaptiveMs, r.BestStaticMs, r.BestDegree,
				r.WorstStaticMs, r.WorstDegree, r.WithinPct, r.Retunes, r.SpecIssued, r.SpecHits)
		}
	case "qdprofile":
		if *jsonOut {
			enc := json.NewEncoder(os.Stdout)
			enc.SetIndent("", "  ")
			return enc.Encode(sc.QDProfileSeries())
		}
		fmt.Fprintln(w, "degree\tmean_depth\tp50_depth\tmax_depth")
		for _, r := range sc.QDProfile() {
			fmt.Fprintf(w, "%d\t%.2f\t%d\t%d\n", r.Degree, r.MeanDepth, r.P50Depth, r.MaxDepth)
		}
	case "accuracy":
		fmt.Fprintln(w, "config\tselectivity\tplan\testimated_ms\tmeasured_ms\tratio")
		for _, r := range sc.Accuracy(workload.Config{Name: "E33-SSD", RowsPerPage: 33, Device: workload.SSD}) {
			fmt.Fprintf(w, "%s\t%.6g\t%s\t%.2f\t%.2f\t%.2f\n",
				r.Config, r.Selectivity, r.Plan, r.EstimatedMs, r.MeasuredMs, r.Ratio)
		}
	case "planbench":
		rep := sc.PlanBench(*queries)
		if *jsonOut {
			enc := json.NewEncoder(os.Stdout)
			enc.SetIndent("", "  ")
			return enc.Encode(rep)
		}
		fmt.Fprintln(w, "device\tmode\tworkers\tplans\twall_s\tplans_per_sec\tspeedup_vs_memo_miss\thits\tmisses\trevalidations\tfallbacks")
		for _, r := range rep.Throughput {
			fmt.Fprintf(w, "%s\t%s\t%d\t%d\t%.3f\t%.0f\t%.1fx\t%d\t%d\t%d\t%d\n",
				r.Device, r.Mode, r.Workers, r.Plans, r.WallSeconds, r.PlansPerSec,
				r.SpeedupVsMemoMiss, r.Hits, r.Misses, r.Revalidations, r.Fallbacks)
		}
		fmt.Fprintf(w, "\nquality: %d grid points, greedy agrees %.1f%%, mean regret %.3f%%, max regret %.3f%%, %d fallbacks\n",
			rep.QualityPoints, rep.AgreePct, rep.MeanRegretPct, rep.MaxRegretPct, rep.Fallbacks)
		fmt.Fprintln(w, "device\tselectivity\tfull\tgreedy\tagree\tregret_%\tfell_back")
		for _, q := range rep.Quality {
			fmt.Fprintf(w, "%s\t%.6g\t%s\t%s\t%v\t%.3f\t%v\n",
				q.Device, q.Selectivity, q.Full, q.Greedy, q.Agree, q.RegretPct, q.FellBack)
		}
	case "optimality":
		fmt.Fprintln(w, "config\tselectivity\tbest_plan\tbest_ms\told_plan\told_regret\tnew_plan\tnew_regret")
		for _, r := range sc.Optimality(workload.Config{Name: "E33-SSD", RowsPerPage: 33, Device: workload.SSD}) {
			fmt.Fprintf(w, "%s\t%.6g\t%s\t%.2f\t%s\t%.2fx\t%s\t%.2fx\n",
				r.Config, r.Selectivity, r.BestPlan, r.BestMs,
				r.OldPlan, r.OldRegret, r.NewPlan, r.NewRegret)
		}
	default:
		return fmt.Errorf("unknown experiment %q", exp)
	}
	return nil
}
