module pioqo

go 1.22
