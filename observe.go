package pioqo

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"pioqo/internal/obs"
)

// SpanAttr is one key/value annotation on a span, with the value rendered
// as text.
type SpanAttr struct {
	Key   string
	Value string
}

// SpanNode is one node of a query's virtual-time span tree: the query span
// at the root, the operator beneath it, and one child per worker (plus the
// prefetcher, when the plan uses one). Track distinguishes concurrent
// lanes — spans on different tracks overlapped in virtual time.
type SpanNode struct {
	Name     string
	Start    time.Duration // virtual time since the system started
	Duration time.Duration
	Track    int
	Attrs    []SpanAttr
	Children []*SpanNode
}

// Attr returns the named attribute's rendered value.
func (n *SpanNode) Attr(key string) (string, bool) {
	for _, a := range n.Attrs {
		if a.Key == key {
			return a.Value, true
		}
	}
	return "", false
}

// Walk visits the node and every descendant, depth first.
func (n *SpanNode) Walk(fn func(*SpanNode)) {
	if n == nil {
		return
	}
	fn(n)
	for _, c := range n.Children {
		c.Walk(fn)
	}
}

// GaugeStat summarises one gauge over a query: its time-weighted mean
// across the query's runtime and its value when the query finished.
type GaugeStat struct {
	Mean float64
	Last float64
}

// MetricsDiff attributes engine metrics to one interval — for query
// telemetry, the interval is exactly the query's execution. Counters holds
// deltas of cumulative counters (device.requests, buffer.hits, ...); zero
// deltas are omitted. Gauges holds time-weighted means (device.queue_depth,
// buffer.cached_pages, ...).
type MetricsDiff struct {
	Elapsed  time.Duration
	Counters map[string]int64
	Gauges   map[string]GaugeStat
}

// Counter returns the named counter's delta (zero if absent).
func (d MetricsDiff) Counter(name string) int64 { return d.Counters[name] }

// String renders the diff as sorted "name value" lines.
func (d MetricsDiff) String() string {
	var lines []string
	for name, v := range d.Counters {
		lines = append(lines, fmt.Sprintf("%s +%d", name, v))
	}
	for name, g := range d.Gauges {
		lines = append(lines, fmt.Sprintf("%s mean=%.2f last=%.2f", name, g.Mean, g.Last))
	}
	sort.Strings(lines)
	return strings.Join(lines, "\n")
}

// QueryTelemetry is everything observed about one executed query: the plan
// it ran, its span tree, and the engine metrics attributed to it.
type QueryTelemetry struct {
	Plan    Plan
	Runtime time.Duration
	// Root is the query span; its subtree covers optimization, the
	// operator, and the workers.
	Root *SpanNode
	// Metrics is the registry diff across exactly this query's execution.
	Metrics MetricsDiff

	root *obs.Span // retained for Tree rendering
}

// Tree renders the span tree as an indented text outline — the body of
// EXPLAIN ANALYZE.
func (t QueryTelemetry) Tree() string { return t.root.Tree() }

// Observer receives telemetry for every query a System executes. Callbacks
// run synchronously on the calling goroutine, after the query completes.
type Observer interface {
	ObserveQuery(QueryTelemetry)
}

// ObserverFunc adapts a function to the Observer interface.
type ObserverFunc func(QueryTelemetry)

// ObserveQuery calls f.
func (f ObserverFunc) ObserveQuery(t QueryTelemetry) { f(t) }

// SetObserver installs an observer called after every Execute/ExecutePlan.
// A nil observer turns per-query tracing back off.
func (s *System) SetObserver(o Observer) { s.observer = o }

// MetricsSince diffs the engine registry against an earlier snapshot taken
// with MetricsSnapshot, attributing all engine activity in between.
func (s *System) MetricsSince(earlier MetricsSnapshot) MetricsDiff {
	return fromInternalDiff(s.reg.Snapshot().Sub(earlier.snap))
}

// MetricsSnapshot is an opaque point-in-time reading of the engine's
// metrics registry.
type MetricsSnapshot struct {
	snap obs.Snapshot
}

// MetricsSnapshot captures the engine registry now.
func (s *System) MetricsSnapshot() MetricsSnapshot {
	return MetricsSnapshot{snap: s.reg.Snapshot()}
}

// telemetrySession carries the per-query trace plumbing between Execute's
// phases. A nil session (tracing off) is inert: its fields read as nil and
// every obs call on them is a no-op.
type telemetrySession struct {
	tracer *obs.Tracer
	query  *obs.Span
	before obs.Snapshot
}

func (ts *telemetrySession) span() *obs.Span {
	if ts == nil {
		return nil
	}
	return ts.query
}

func (ts *telemetrySession) trc() *obs.Tracer {
	if ts == nil {
		return nil
	}
	return ts.tracer
}

// startTelemetry opens a per-query trace when anyone is listening — the
// system observer or a WithTrace option — and snapshots the registry
// so the finished query's metrics can be attributed by diff.
func (s *System) startTelemetry(q Query, eo queryOptions) *telemetrySession {
	if s.observer == nil && eo.telemetry == nil {
		return nil
	}
	tracer := obs.NewTracer(s.env, "query")
	tracer.Detail = eo.detail
	ts := &telemetrySession{
		tracer: tracer,
		before: s.reg.Snapshot(),
	}
	ts.query = tracer.Start(nil, "query",
		obs.KV("table", q.Table.Name()),
		obs.KV("lo", q.Low), obs.KV("hi", q.High),
		obs.KV("agg", q.Agg.String()))
	return ts
}

// finish closes the query span and delivers telemetry to the listeners.
func (ts *telemetrySession) finish(s *System, plan Plan, runtime time.Duration, eo queryOptions) {
	if ts == nil {
		return
	}
	ts.query.End()
	tel := QueryTelemetry{
		Plan:    plan,
		Runtime: runtime,
		Root:    fromInternalSpan(ts.query),
		Metrics: fromInternalDiff(s.reg.Snapshot().Sub(ts.before)),
		root:    ts.query,
	}
	if eo.telemetry != nil {
		*eo.telemetry = tel
	}
	if s.observer != nil {
		s.observer.ObserveQuery(tel)
	}
}

func fromInternalSpan(sp *obs.Span) *SpanNode {
	if sp == nil {
		return nil
	}
	n := &SpanNode{
		Name:     sp.Name,
		Start:    time.Duration(sp.Start),
		Duration: time.Duration(sp.Duration()),
		Track:    sp.Track(),
	}
	for _, a := range sp.Attrs {
		n.Attrs = append(n.Attrs, SpanAttr{Key: a.Key, Value: fmt.Sprint(a.Value)})
	}
	for _, c := range sp.Children {
		n.Children = append(n.Children, fromInternalSpan(c))
	}
	return n
}

func fromInternalDiff(d obs.Diff) MetricsDiff {
	out := MetricsDiff{
		Elapsed:  time.Duration(d.Elapsed),
		Counters: make(map[string]int64, len(d.Counters)),
		Gauges:   make(map[string]GaugeStat, len(d.Gauges)),
	}
	for name, v := range d.Counters {
		out.Counters[name] = v
	}
	for name, g := range d.Gauges {
		out.Gauges[name] = GaugeStat{Mean: g.Mean, Last: g.Last}
	}
	return out
}
