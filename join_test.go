package pioqo

import "testing"

func newJoinSystem(t *testing.T) (*System, *Table, *Table) {
	t.Helper()
	sys := New(Config{Device: SSD, PoolPages: 2048})
	dim, err := sys.CreateTable("dim", 5000, 33)
	if err != nil {
		t.Fatal(err)
	}
	fact, err := sys.CreateTable("fact", 50000, 33)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Calibrate(CalibrationOptions{MaxReads: 640}); err != nil {
		t.Fatal(err)
	}
	return sys, dim, fact
}

func TestExecuteJoinBasics(t *testing.T) {
	sys, dim, fact := newJoinSystem(t)
	res, err := sys.ExecuteJoin(JoinQuery{
		Build: dim, Probe: fact, Low: 0, High: 499,
	}, Cold())
	if err != nil {
		t.Fatal(err)
	}
	if res.Pairs == 0 || !res.Found {
		t.Fatalf("join produced nothing: %+v", res)
	}
	if res.BuildRows == 0 || res.ProbeRows == 0 {
		t.Errorf("phase row counts missing: %+v", res)
	}
	if res.Runtime <= 0 {
		t.Error("non-positive runtime")
	}
	// Exactness: COUNT over the same join equals Pairs.
	cnt, err := sys.ExecuteJoin(JoinQuery{
		Build: dim, Probe: fact, Low: 0, High: 499, Agg: Count,
	}, Cold())
	if err != nil {
		t.Fatal(err)
	}
	if cnt.Value != res.Pairs {
		t.Errorf("COUNT = %d, pairs = %d", cnt.Value, res.Pairs)
	}
}

func TestJoinPlansBothSides(t *testing.T) {
	sys, dim, fact := newJoinSystem(t)
	res, err := sys.ExecuteJoin(JoinQuery{
		Build: dim, Probe: fact, Low: 0, High: 49, // 1% of the dim domain
	}, Cold())
	if err != nil {
		t.Fatal(err)
	}
	// Narrow range: the large probe side should go through its index in
	// parallel under the QDTT model. (The tiny build side legitimately
	// full-scans — 152 pages of sequential I/O beat 50 random fetches.)
	if res.ProbePlan.Method != IndexScan {
		t.Errorf("probe plan %v, want an index scan", res.ProbePlan)
	}
	if res.ProbePlan.Degree < 8 {
		t.Errorf("probe degree %d, want parallel", res.ProbePlan.Degree)
	}
	if res.BuildPlan.Method == FullTableScan && res.BuildPlan.Degree > 8 {
		t.Errorf("build plan %v over-parallelized for a 152-page table", res.BuildPlan)
	}
}

func TestJoinQDTTFasterThanDTT(t *testing.T) {
	sys, dim, fact := newJoinSystem(t)
	q := JoinQuery{Build: dim, Probe: fact, Low: 0, High: 49}
	oldRes, err := sys.ExecuteJoin(q, Cold(),
		WithPlanOptions(PlanOptions{DepthOblivious: true}))
	if err != nil {
		t.Fatal(err)
	}
	newRes, err := sys.ExecuteJoin(q, Cold())
	if err != nil {
		t.Fatal(err)
	}
	if newRes.Pairs != oldRes.Pairs || newRes.Value != oldRes.Value {
		t.Fatalf("answers differ between optimizers")
	}
	if gain := float64(oldRes.Runtime) / float64(newRes.Runtime); gain < 2 {
		t.Errorf("QDTT join speedup = %.1fx, want >= 2x", gain)
	}
}

func TestJoinMethodSelection(t *testing.T) {
	// With uniform dense keys, the range predicate pushes down to the probe
	// side and the hash join is already minimal — it should stay chosen.
	// A heavily skewed build side repeats few distinct keys across a wide
	// range; the distinct-count statistics should flip the planner to the
	// index nested-loop join (few lookups beat scanning the probe range).
	sys := New(Config{Device: SSD, PoolPages: 2048})
	skewed, err := sys.CreateTable("skewed", 30000, 33, WithZipfData(1.5))
	if err != nil {
		t.Fatal(err)
	}
	// Synthetic keys are a permutation: every build row carries a distinct
	// key, so the NL join saves nothing over the pushed-down hash probe.
	uniform, err := sys.CreateTable("uniform", 30000, 33, WithSyntheticData())
	if err != nil {
		t.Fatal(err)
	}
	big, err := sys.CreateTable("big", 80000, 33)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Calibrate(CalibrationOptions{MaxReads: 640}); err != nil {
		t.Fatal(err)
	}

	nl, err := sys.ExecuteJoin(JoinQuery{Build: skewed, Probe: big, Low: 0, High: 29999}, Cold())
	if err != nil {
		t.Fatal(err)
	}
	if nl.Method != "IndexNLJoin" {
		t.Errorf("skewed-build join chose %s, want IndexNLJoin", nl.Method)
	}

	hash, err := sys.ExecuteJoin(JoinQuery{Build: uniform, Probe: big, Low: 0, High: 29999}, Cold())
	if err != nil {
		t.Fatal(err)
	}
	if hash.Method != "HashJoin" {
		t.Errorf("uniform-build join chose %s, want HashJoin", hash.Method)
	}

	// Answers agree across methods: COUNT the skewed join both ways.
	nlCnt, err := sys.ExecuteJoin(JoinQuery{
		Build: skewed, Probe: big, Low: 0, High: 29999, Agg: Count,
	}, Cold())
	if err != nil {
		t.Fatal(err)
	}
	if nlCnt.Value != nl.Pairs {
		t.Errorf("COUNT %d != pairs %d", nlCnt.Value, nl.Pairs)
	}
}

func TestJoinValidation(t *testing.T) {
	sys, dim, _ := newJoinSystem(t)
	if _, err := sys.ExecuteJoin(JoinQuery{Build: dim}); err == nil {
		t.Error("join without probe accepted")
	}
	uncal := New(Config{Device: SSD})
	a, _ := uncal.CreateTable("a", 100, 10)
	b, _ := uncal.CreateTable("b", 100, 10)
	if _, err := uncal.ExecuteJoin(JoinQuery{Build: a, Probe: b}); err == nil {
		t.Error("join before calibration accepted")
	}
}
