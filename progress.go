package pioqo

import "pioqo/internal/btree"

// QueryProgress reports a running query's page progress: how many page
// pins the plan was expected to perform against how many its workers have
// completed so far. The estimate comes from plan cardinalities at
// admission time; the processed count is incremented by the executor at
// every successful page fetch, so reading it mid-Drain (from an Observer
// callback or another submission's vantage point) sees live state.
type QueryProgress struct {
	// EstimatedPages is the optimizer-derived page-pin estimate for the
	// admitted plan; 0 until the query has been admitted and planned.
	EstimatedPages int64
	// PagesProcessed is how many page fetches the query's workers have
	// completed.
	PagesProcessed int64
	// Remaining is max(0, EstimatedPages − PagesProcessed); estimates can
	// undershoot, so PagesProcessed may exceed EstimatedPages near the end.
	Remaining int64
	// Started reports that admission was granted and execution has begun.
	Started bool
	// Done reports that the query has finished.
	Done bool
}

// Progress reports the submission's live page progress. Valid at any
// point: before admission it reports zeros, mid-execution a moving count,
// after Drain the final tally with Done set.
func (sub *Submission) Progress() QueryProgress {
	p := QueryProgress{
		EstimatedPages: sub.est,
		PagesProcessed: sub.pages,
		Started:        sub.started,
		Done:           sub.done,
	}
	if rem := p.EstimatedPages - p.PagesProcessed; rem > 0 && !p.Done {
		p.Remaining = rem
	}
	return p
}

// Progress reports the live progress of every submission not yet drained,
// in submission order.
func (ses *Session) Progress() []QueryProgress {
	out := make([]QueryProgress, len(ses.subs))
	for i, sub := range ses.subs {
		out[i] = sub.Progress()
	}
	return out
}

// estimatePages predicts how many page pins a plan's execution performs —
// the denominator for live progress. A full scan pins every heap page; an
// index scan descends the tree once, walks the qualifying leaves, and pins
// one heap page per fetched row; the sorted variant pins each distinct
// heap page at most once, so its heap component is capped at the table
// size. Prefetches are excluded on both sides of the ratio: the executor's
// progress counter also counts only demand fetches. Sharded tables sum
// the per-partition estimates, apportioning the row estimate by partition
// size.
func estimatePages(q Query, plan Plan) int64 {
	t := q.Table
	rows := int64(plan.EstimatedRows + 0.5)
	total := t.Rows()
	var sum int64
	for i := range t.parts {
		part := &t.parts[i]
		if part.tab == nil {
			continue
		}
		prows := rows
		if t.sharded() && total > 0 {
			prows = rows * part.tab.Rows() / total
		}
		sum += estimatePartPages(part, plan.Method, prows)
	}
	return sum
}

// estimatePartPages is estimatePages for one partition's heap and index.
func estimatePartPages(part *tablePart, method AccessMethod, rows int64) int64 {
	heap := part.tab.Pages()
	if method == FullTableScan {
		return heap
	}
	leaves := (rows + btree.DefaultLeafCap - 1) / btree.DefaultLeafCap
	if leaves < 1 {
		leaves = 1
	}
	descent := int64(1)
	if part.idx != nil {
		descent = int64(len(part.idx.DescentPath()))
	}
	touched := rows
	if method == SortedIndexScan && touched > heap {
		touched = heap
	}
	return descent + leaves + touched
}
