package pioqo

import "testing"

// TestGreedyPlanningServesSameAnswers is the engine-level A/B for the
// serving plan path: a system with Config.GreedyPlanning answers every
// query — standalone and concurrent — identically to the default system,
// and its planner traffic flows through the parameterized band cache.
func TestGreedyPlanningServesSameAnswers(t *testing.T) {
	def, dtab := newCalibrated(t, SSD, 50000, 33)

	gr := New(Config{Device: SSD, PoolPages: 1024, GreedyPlanning: true})
	gtab, err := gr.CreateTable("t", 50000, 33)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := gr.Calibrate(CalibrationOptions{MaxReads: 640}); err != nil {
		t.Fatal(err)
	}

	windows := [][2]int64{{0, 49}, {100, 599}, {7000, 7499}, {0, 24999}, {0, 49999}}
	for _, w := range windows {
		rd, err := def.Execute(Query{Table: dtab, Low: w[0], High: w[1]}, Cold())
		if err != nil {
			t.Fatal(err)
		}
		rg, err := gr.Execute(Query{Table: gtab, Low: w[0], High: w[1]}, Cold())
		if err != nil {
			t.Fatal(err)
		}
		if rg.Rows != rd.Rows || rg.Value != rd.Value || rg.Found != rd.Found {
			t.Errorf("[%d,%d]: greedy answered rows=%d max=%d, default rows=%d max=%d",
				w[0], w[1], rg.Rows, rg.Value, rd.Rows, rd.Value)
		}
	}

	// Concurrent sessions share the same parameterized cache.
	var dq, gq []Query
	for _, w := range [][2]int64{{0, 499}, {500, 999}, {10000, 10499}, {0, 49999}} {
		dq = append(dq, Query{Table: dtab, Low: w[0], High: w[1]})
		gq = append(gq, Query{Table: gtab, Low: w[0], High: w[1]})
	}
	dres, err := def.ExecuteConcurrent(dq, Cold())
	if err != nil {
		t.Fatal(err)
	}
	gres, err := gr.ExecuteConcurrent(gq, Cold())
	if err != nil {
		t.Fatal(err)
	}
	for i := range dres.Results {
		if gres.Results[i].Rows != dres.Results[i].Rows ||
			gres.Results[i].Value != dres.Results[i].Value {
			t.Errorf("concurrent query %d: greedy rows=%d max=%d, default rows=%d max=%d",
				i, gres.Results[i].Rows, gres.Results[i].Value,
				dres.Results[i].Rows, dres.Results[i].Value)
		}
	}

	gs, ds := gr.PlannerStats(), def.PlannerStats()
	if gs.BandHits+gs.BandMisses+gs.GreedyFallbacks == 0 {
		t.Errorf("greedy system saw no band-cache traffic: %+v", gs)
	}
	if gs.MemoMisses != 0 {
		t.Errorf("greedy system leaked %d optimizations into the memo", gs.MemoMisses)
	}
	if ds.BandHits+ds.BandMisses != 0 {
		t.Errorf("default system leaked into the band cache: %+v", ds)
	}
	if ds.MemoMisses == 0 {
		t.Errorf("default system planned nothing through the memo: %+v", ds)
	}
}

// TestWithGreedyPlanningOption covers the per-query opt-in: on a default
// system one query routes through the band cache, and repeated shifted
// windows in one selectivity band bind as hits.
func TestWithGreedyPlanningOption(t *testing.T) {
	sys, tab := newCalibrated(t, SSD, 50000, 33)
	q := Query{Table: tab, Low: 100, High: 174} // 0.15%: deep IS territory

	def, err := sys.Plan(q, PlanOptions{})
	if err != nil {
		t.Fatal(err)
	}
	greedy, err := sys.Plan(q, PlanOptions{GreedyPlanning: true})
	if err != nil {
		t.Fatal(err)
	}
	if greedy.Method != def.Method || greedy.Degree != def.Degree {
		t.Errorf("greedy planned %v, default planned %v", greedy, def)
	}

	for i := int64(0); i < 8; i++ {
		shifted := Query{Table: tab, Low: 200 + i, High: 274 + i}
		if _, err := sys.Plan(shifted, PlanOptions{GreedyPlanning: true}); err != nil {
			t.Fatal(err)
		}
	}
	if st := sys.PlannerStats(); st.BandHits == 0 {
		t.Errorf("shifted same-band windows never hit the band cache: %+v", st)
	}

	rd, err := sys.Execute(q, Cold())
	if err != nil {
		t.Fatal(err)
	}
	rg, err := sys.Execute(q, Cold(), WithGreedyPlanning())
	if err != nil {
		t.Fatal(err)
	}
	if rg.Rows != rd.Rows || rg.Value != rd.Value {
		t.Errorf("greedy execution answered rows=%d max=%d, default rows=%d max=%d",
			rg.Rows, rg.Value, rd.Rows, rd.Value)
	}
}
