package pioqo

import (
	"errors"
	"fmt"

	"pioqo/internal/fault"
)

// The engine's error taxonomy. Every error a query can fail with wraps one
// of these sentinels, so callers branch with errors.Is instead of matching
// message strings:
//
//	res, err := sys.Query(ctx, q)
//	switch {
//	case errors.Is(err, pioqo.ErrDeadlineExceeded): // timed out
//	case errors.Is(err, pioqo.ErrDeviceFault):      // device gave up
//	}
//
// ErrCanceled and ErrDeadlineExceeded additionally satisfy errors.Is
// against context.Canceled and context.DeadlineExceeded, so code written
// against the standard library's context taxonomy keeps working.
//
// The sentinels are shared with the internal layers (they are defined in
// internal/fault and re-exported here), so an abort cause keeps its
// identity from the device model all the way to the caller.
var (
	// ErrCanceled reports a query aborted by caller cancellation — a
	// canceled context, or an engine-side cancel during batch cleanup.
	ErrCanceled = fault.ErrCanceled

	// ErrDeadlineExceeded reports a query aborted by a WithTimeout
	// virtual-time deadline or the caller context's deadline.
	ErrDeadlineExceeded = fault.ErrDeadlineExceeded

	// ErrDeviceFault reports an injected device I/O failure that survived
	// the retry policy.
	ErrDeviceFault = fault.ErrDeviceFault

	// ErrAdmissionClosed reports a Submit against a closed Session.
	ErrAdmissionClosed = fault.ErrAdmissionClosed

	// ErrNotCalibrated reports an operation that needs the calibrated cost
	// model before the system has one; call Calibrate (or LoadModel) first.
	ErrNotCalibrated = errors.New("pioqo: system not calibrated")

	// ErrInvalidQuery reports a structurally invalid query: no table, or a
	// plan that needs an index the table does not have.
	ErrInvalidQuery = errors.New("pioqo: invalid query")
)

// QueryError is the error type query execution returns: the failing
// operation and table plus the underlying cause. It unwraps to the
// taxonomy sentinel, so errors.Is/errors.As work through it:
//
//	var qe *pioqo.QueryError
//	if errors.As(err, &qe) { log.Printf("%s on %s: %v", qe.Op, qe.Table, qe.Err) }
type QueryError struct {
	Op    string // "query", "submit"
	Table string // the queried table's name, when known
	Err   error  // the cause; wraps a taxonomy sentinel
}

func (e *QueryError) Error() string {
	if e.Table != "" {
		return fmt.Sprintf("pioqo: %s %q: %v", e.Op, e.Table, e.Err)
	}
	return fmt.Sprintf("pioqo: %s: %v", e.Op, e.Err)
}

// Unwrap exposes the cause to errors.Is/errors.As.
func (e *QueryError) Unwrap() error { return e.Err }
