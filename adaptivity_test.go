package pioqo

import "testing"

// The paper's core argument for a *calibrated* model: "a query optimizer
// that operates on a range of storage technologies (HDD, RAID HDD, SSD,
// and even future technologies) must have a principled way to determine
// what the likely benefit is when using I/O parallelism." These tests run
// the identical optimizer over four device generations and check that the
// chosen parallel degree tracks each device's measured capability, with no
// device-specific code anywhere in the planning path.

// bestIndexScan calibrates a fresh system of the given kind and returns
// the best index-scan candidate (degree and estimated I/O benefit over
// serial) for a 1% index-range query.
func bestIndexScan(t *testing.T, kind DeviceKind) (degree int, gainOverSerial float64) {
	t.Helper()
	sys := New(Config{Device: kind, PoolPages: 1024})
	tab, err := sys.CreateTable("t", 200000, 33, WithSyntheticData())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Calibrate(CalibrationOptions{MaxReads: 800, StopThreshold: -1}); err != nil {
		t.Fatal(err)
	}
	plans, err := sys.Explain(Query{Table: tab, Low: 0, High: 1999}, PlanOptions{})
	if err != nil {
		t.Fatal(err)
	}
	var best, serial *Plan
	for i := range plans {
		p := &plans[i]
		if p.Method != IndexScan {
			continue
		}
		if best == nil {
			best = p // plans are sorted by cost
		}
		if p.Degree == 1 {
			serial = p
		}
	}
	if best == nil || serial == nil {
		t.Fatalf("%v: missing index-scan candidates", kind)
	}
	return best.Degree, float64(serial.EstimatedIO) / float64(best.EstimatedIO)
}

func TestOptimizerDegreeTracksDeviceGeneration(t *testing.T) {
	// The chosen degree reflects where each device's controller caps the
	// benefit, and the estimated parallel I/O gain tracks the device
	// generation — without any device-specific branches in the optimizer.
	hddDeg, hddGain := bestIndexScan(t, HDD)
	sataDeg, sataGain := bestIndexScan(t, SATA)
	ssdDeg, ssdGain := bestIndexScan(t, SSD)
	nvmeDeg, nvmeGain := bestIndexScan(t, NVME)

	// SATA's controller caps its benefit near depth 16: deeper queues must
	// buy almost nothing (whether the tie breaks at 16 or 32 is noise).
	if sataGain > 20 {
		t.Errorf("SATA estimated parallel gain %.1fx, want capped (< 20x)", sataGain)
	}
	_ = sataDeg
	if ssdDeg < 32 {
		t.Errorf("PCIe SSD degree = %d, want 32", ssdDeg)
	}
	if nvmeDeg < 32 {
		t.Errorf("NVMe degree = %d, want 32", nvmeDeg)
	}
	if !(hddGain < sataGain && sataGain < ssdGain && ssdGain < nvmeGain) {
		t.Errorf("estimated parallel gains not ordered by generation: HDD %.1fx, SATA %.1fx, SSD %.1fx, NVMe %.1fx",
			hddGain, sataGain, ssdGain, nvmeGain)
	}
	if hddGain > 5 {
		t.Errorf("HDD estimated parallel gain %.1fx, want modest (paper: ~2.4x)", hddGain)
	}
	if nvmeGain < 15 {
		t.Errorf("NVMe estimated parallel gain %.1fx, want near-linear", nvmeGain)
	}
	_ = hddDeg // the HDD may rationally pick any degree: 2x of 5ms pages is a real saving
}

func TestCalibratedDepthGainsOrderAcrossGenerations(t *testing.T) {
	gain := func(kind DeviceKind) float64 {
		sys := New(Config{Device: kind})
		cal, err := sys.Calibrate(CalibrationOptions{MaxReads: 800, StopThreshold: -1})
		if err != nil {
			t.Fatal(err)
		}
		band := sys.DevicePages()
		return cal.Model.PageCost(band, 1) / cal.Model.PageCost(band, 32)
	}
	hdd, sata, nvme := gain(HDD), gain(SATA), gain(NVME)
	if !(hdd < sata && sata < nvme) {
		t.Errorf("depth-32 gains not ordered: HDD %.1fx, SATA %.1fx, NVMe %.1fx",
			hdd, sata, nvme)
	}
	if nvme < 20 {
		t.Errorf("NVMe depth-32 gain %.1fx, want near-linear (>= 20x)", nvme)
	}
	if sata > 20 {
		t.Errorf("SATA depth-32 gain %.1fx, want capped by its controller (< 20x)", sata)
	}
}
