package pioqo

import (
	"encoding/json"
	"fmt"
	"io"
	"time"

	"pioqo/internal/adapt"
	"pioqo/internal/calibrate"
	"pioqo/internal/cost"
)

// CalibrationMethod selects how the calibrator generates device queue
// depth (§4.4 of the paper).
type CalibrationMethod int

const (
	// ActiveWait keeps a circular window of asynchronous reads in flight —
	// the paper's recommended general method.
	ActiveWait CalibrationMethod = iota
	// GroupWait issues groups of reads with a barrier between groups; it
	// matches ActiveWait on SSDs but under-measures spinning media.
	GroupWait
	// MultiThread uses one synchronous reader per unit of queue depth.
	MultiThread
)

func (m CalibrationMethod) internal() calibrate.Method {
	switch m {
	case GroupWait:
		return calibrate.GroupWait
	case MultiThread:
		return calibrate.MultiThread
	default:
		return calibrate.ActiveWait
	}
}

// CalibrationOptions tune the calibration pass. Zero values take the
// paper's defaults.
type CalibrationOptions struct {
	// Method is the queue-depth driver. Default ActiveWait.
	Method CalibrationMethod

	// MaxReads is M, the page-read budget per calibration point.
	// Default 3200 (§4.4).
	MaxReads int

	// Repetitions averages each point. Default 1.
	Repetitions int

	// StopThreshold is T of §4.6: stop raising the queue depth when the
	// largest band improves by less than this fraction, defaulting the
	// remaining points. Negative disables; zero means the paper's 0.20.
	StopThreshold float64
}

// Calibration is the result of a calibration pass.
type Calibration struct {
	// Model is the calibrated queue-depth-aware cost model.
	Model *cost.QDTT

	// Bands and Depths are the calibrated grid axes (bands in pages).
	Bands  []int64
	Depths []int

	// Reads is the number of page reads the calibration issued; Elapsed is
	// the virtual time it took — the cost §4.6's early stop reduces.
	Reads   int64
	Elapsed time.Duration

	// StoppedEarly reports whether the §4.6 control cut the pass short.
	StoppedEarly bool
}

// Calibrate measures the system's device and installs the resulting QDTT
// model as the optimizer's cost model. Call it once per device (the paper
// recalibrates when hardware changes, or during idle cycles).
func (s *System) Calibrate(o CalibrationOptions) (*Calibration, error) {
	cfg := calibrate.DefaultConfig(s.coord().Dev)
	cfg.Method = o.Method.internal()
	if o.MaxReads > 0 {
		cfg.MaxReads = o.MaxReads
	}
	if o.Repetitions > 0 {
		cfg.Repetitions = o.Repetitions
	}
	switch {
	case o.StopThreshold > 0:
		cfg.StopThreshold = o.StopThreshold
	case o.StopThreshold == 0:
		cfg.StopThreshold = 0.20
	}
	if o.MaxReads < 0 || o.Repetitions < 0 {
		return nil, fmt.Errorf("pioqo: negative calibration budget (reads=%d reps=%d)",
			o.MaxReads, o.Repetitions)
	}

	// Calibration measures node 0's device; every node runs the same
	// device kind, so the one model prices I/O for all shards.
	out := calibrate.Run(s.env, s.coord().Dev, cfg)
	s.installModel(out.Model)
	// The same sweep points also fit the offline DOP model adaptive
	// executions seed their initial degree from — installModel dropped the
	// previous one along with everything else model-derived.
	s.dop = adapt.Fit(out.Points)
	return &Calibration{
		Model:        out.Model,
		Bands:        out.Model.Bands(),
		Depths:       out.Model.Depths(),
		Reads:        out.TotalReads,
		Elapsed:      time.Duration(out.SimTime),
		StoppedEarly: out.StoppedEarly,
	}, nil
}

// Model returns the installed QDTT cost model, or an error if the system
// has not been calibrated.
func (s *System) Model() (*cost.QDTT, error) {
	if s.model == nil {
		return nil, fmt.Errorf("%w: call Calibrate first", ErrNotCalibrated)
	}
	return s.model, nil
}

// DevicePages reports the per-node device capacity in pages — the largest
// band the cost models can be asked about.
func (s *System) DevicePages() int64 { return s.coord().DevicePages() }

// SaveModel writes the calibrated QDTT model as JSON, so a deployment can
// persist a calibration and reload it at startup instead of re-measuring
// the device.
func (s *System) SaveModel(w io.Writer) error {
	if s.model == nil {
		return fmt.Errorf("%w: no model to save", ErrNotCalibrated)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s.model)
}

// LoadModel installs a previously saved model as the optimizer's cost
// model, validating the grid. Loading a model calibrated on different
// hardware than the attached device yields well-formed but wrong costs —
// like restoring a stale calibration file onto new hardware would.
func (s *System) LoadModel(r io.Reader) error {
	var m cost.QDTT
	if err := json.NewDecoder(r).Decode(&m); err != nil {
		return fmt.Errorf("pioqo: loading model: %w", err)
	}
	s.installModel(&m)
	return nil
}

// installModel swaps the optimizer's cost model and drops everything
// derived from the old one: the plan memo and the parameterized plan cache
// (whose cached costs priced I/O with the previous model), the
// depth-oblivious projection, and the resource broker (whose credit supply
// was the old model's beneficial depth) along with the default session
// riding on it.
func (s *System) installModel(m *cost.QDTT) {
	s.model = m
	s.depthOne = nil
	s.dop = nil
	s.memo.Reset()
	s.pcache.Reset()
	s.broker = nil
	s.session = nil
	for _, n := range s.nodes {
		n.Broker = nil
	}
}

// depthOneModel returns the model's depth-one projection, built once per
// installed model. DepthOblivious planning goes through it so repeated
// old-optimizer queries share one DTT — and, crucially, one memo key.
func (s *System) depthOneModel() *cost.DTT {
	if s.depthOne == nil {
		s.depthOne = s.model.DepthOne()
	}
	return s.depthOne
}
