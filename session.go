package pioqo

import (
	"errors"
	"fmt"
	"time"

	"pioqo/internal/broker"
	"pioqo/internal/disk"
	"pioqo/internal/exec"
	"pioqo/internal/fault"
	"pioqo/internal/obs/event"
	"pioqo/internal/sim"
)

// Admission reports how the resource broker treated one submitted query.
type Admission struct {
	// Budget is the queue-depth budget the query was planned and executed
	// under — its lease from the broker. Zero means unbounded: the query
	// was alone on an idle device and planned exactly as Execute would.
	Budget int

	// PoolPages is the buffer-pool page reservation attached to the lease
	// (0 = ungoverned, the whole pool).
	PoolPages int

	// Wait is the virtual time the query spent in the admission queue
	// before the broker granted its lease.
	Wait time.Duration

	// Replanned reports that the granted budget differed from the
	// provisional fair share the query was planned under at submit time,
	// so the optimizer re-planned it under the authoritative lease.
	Replanned bool

	// Shared reports that the query rode a circulating scan: it was
	// admitted immediately with zero queue-depth credits, since the shared
	// producer — not this query — issues the device work.
	Shared bool
}

// Submission is one query's handle in a Session: submit-time state before
// Drain, the result and its admission record after.
type Submission struct {
	q   Query
	eo  queryOptions
	ctl *fault.Control

	// qid is the engine-assigned query id for event attribution; est and
	// pages feed Progress — est is the plan's page-pin estimate fixed at
	// admission, pages the executor's live fetch counter.
	qid     int64
	est     int64
	pages   int64
	started bool

	adm  Admission
	res  Result
	err  error
	done bool
}

// Done reports whether the query has finished executing (after the Drain
// that covers it).
func (sub *Submission) Done() bool { return sub.done }

// Result returns the query's result. Calling it before the session has
// been drained past this submission is an error.
func (sub *Submission) Result() (Result, error) {
	if sub.err != nil {
		return Result{}, sub.err
	}
	if !sub.done {
		return Result{}, errors.New("pioqo: submission not executed; call Session.Drain first")
	}
	return sub.res, nil
}

// Admission returns the broker's admission record for the query. Valid
// once the submission is Done.
func (sub *Submission) Admission() Admission { return sub.adm }

// Session is an admission-controlled stream of queries sharing the
// system's resource broker. Each Submit enqueues a query for admission and
// registers its executor; Drain runs the simulation until every submitted
// query has finished. Unlike ExecuteConcurrent's closed batches, a session
// is open-ended: submit, drain, inspect, submit more.
//
// Queries in a session are planned twice when contention shifts: a
// provisional plan at submit time under the broker's fair-share
// expectation, and — only if the admission grant differs — a re-plan under
// the authoritative lease. A query submitted to an idle session receives
// an unbounded lease and plans exactly as a standalone Execute would.
type Session struct {
	sys    *System
	b      *broker.Broker
	subs   []*Submission // submissions not yet drained
	n      int           // session-lifetime submission counter (proc names)
	closed bool
}

// Close stops admission: subsequent Submits fail with ErrAdmissionClosed.
// Already-submitted queries are unaffected — Drain still runs them.
func (ses *Session) Close() { ses.closed = true }

// OpenSession starts a session on the system's shared resource broker.
// Requires calibration: the broker's credit supply is the calibrated
// device's maximum beneficial queue depth.
func (s *System) OpenSession() (*Session, error) {
	b, err := s.sharedBroker()
	if err != nil {
		return nil, err
	}
	return &Session{sys: s, b: b}, nil
}

// Submit enqueues q for admission-controlled execution on the default
// session, opening it on first use. Drain runs the submitted queries.
func (s *System) Submit(q Query, opts ...QueryOption) (*Submission, error) {
	if s.session == nil {
		ses, err := s.OpenSession()
		if err != nil {
			return nil, err
		}
		s.session = ses
	}
	return s.session.Submit(q, opts...)
}

// Drain runs the default session's pending queries to completion (no-op
// when nothing was submitted).
func (s *System) Drain() error {
	if s.session == nil {
		return nil
	}
	return s.session.Drain()
}

// sharedBroker returns the system's resource broker, building it from the
// calibrated model on first use. Installing a new model drops it, so the
// credit supply always reflects the current calibration.
func (s *System) sharedBroker() (*broker.Broker, error) {
	if s.model == nil {
		return nil, fmt.Errorf("%w: resource brokering needs the calibrated queue-depth supply; call Calibrate first", ErrNotCalibrated)
	}
	if s.broker == nil {
		n0 := s.coord()
		cfg := broker.Config{
			Env:        s.env,
			Model:      s.model,
			Band:       s.DevicePages(),
			PoolPages:  n0.Pool.Capacity(),
			Workers:    s.cores,
			DepthProbe: n0.Dev.Metrics().DepthIntegral,
			Obs:        s.reg,
		}
		if !s.noDegrade {
			// Under an active ChannelLoss fault window the broker shrinks
			// its credit supply, so admissions re-plan at a queue depth the
			// degraded device can still absorb. Probe reads injector state
			// only — no events, no randomness.
			cfg.DegradeProbe = n0.Inj.Degradation
		}
		cfg.Log = s.events
		s.broker = broker.New(cfg)
		n0.Broker = s.broker
		if n0.Shares != nil {
			// The circulating producers read ahead at the device's
			// beneficial queue depth — the same calibrated supply the
			// broker's credits are denominated in.
			n0.Shares.SetDepth(s.broker.Total())
		}
	}
	return s.broker, nil
}

// Submit validates q, enqueues it for admission, plans it provisionally
// under the broker's current fair share, and registers its executor
// process. The query runs during the next Drain. With Cold(), the buffer
// pool is flushed now — before planning, as in Execute.
func (ses *Session) Submit(q Query, opts ...QueryOption) (*Submission, error) {
	if ses.closed {
		return nil, fmt.Errorf("%w: session closed", ErrAdmissionClosed)
	}
	var eo queryOptions
	for _, o := range opts {
		o(&eo)
	}
	if err := q.validate(); err != nil {
		return nil, err
	}
	if err := eo.checkAdaptive(); err != nil {
		return nil, err
	}
	if eo.cold {
		ses.sys.FlushBufferPool()
	}
	return ses.submit(q, eo)
}

// submit is the option-parsed core of Submit (ExecuteConcurrent enters
// here so its one batch-level cold flush is not repeated per query).
func (ses *Session) submit(q Query, eo queryOptions) (*Submission, error) {
	s := ses.sys
	if q.Table != nil && q.Table.sharded() {
		return nil, fmt.Errorf("%w: table %q is partitioned across %d nodes; sessions are single-node — run scatter-gather through Query",
			ErrInvalidQuery, q.Table.Name(), len(q.Table.parts))
	}
	ctl := fault.NewControl(s.env)
	if eo.timeout > 0 {
		ctl.SetDeadline(s.env.Now().Add(sim.Duration(eo.timeout)))
	}
	qid := s.nextQID
	s.nextQID++
	sub := &Submission{q: q, eo: eo, ctl: ctl, qid: qid}

	// A user-set QueueBudget wins over brokered budgets; it also caps the
	// grant (demand) so credits beyond it stay free for other queries.
	userBudget := eo.plan.QueueBudget
	po := eo.plan
	if userBudget == 0 {
		po.QueueBudget = ses.b.FairShare()
	}
	lease := ses.b.EnqueueQuery(userBudget, qid)

	// Scan-sharing interest: every sharing-eligible query on the table
	// counts as a potential rider, so a full scan submitted now prices the
	// attach path against everyone already in flight. Interest is dropped
	// when the query's process finishes; the parties count is quantized so
	// the plan memo caches a handful of contention levels, not one
	// enumeration per exact rider count.
	// Invalid queries (nil table) fall through to Plan, which reports them.
	shares := s.coord().Shares
	sharing := shares != nil && !eo.noShare && q.Table != nil
	var file disk.FileID
	if sharing {
		file = q.Table.one().tab.File().ID()
		shares.AddInterest(file)
		if po.ShareParties == 0 {
			po.ShareParties = quantizeParties(shares.Interest(file))
		}
	}

	plan, err := s.Plan(q, po)
	if err != nil {
		if sharing {
			shares.DropInterest(file)
		}
		lease.Release() // withdraw from the admission queue
		return nil, err
	}
	if plan.Shared {
		// The rider issues no demand reads — the circulating producer owns
		// the device work — so waiting for queue-depth credits would gate
		// it on capacity it will not consume. Admit it out of turn with a
		// zero-credit lease.
		ses.b.AdmitShared(lease)
		sub.adm.Shared = true
	}

	id := ses.n
	ses.n++
	ses.subs = append(ses.subs, sub)
	s.env.Go(fmt.Sprintf("session-q%d", id), func(p *sim.Proc) {
		// The deferred Release reclaims the lease on every exit path —
		// errors between admission and first worker start included — so
		// credits and pool reservations never leak from aborted queries.
		defer lease.Release()
		if sharing {
			defer shares.DropInterest(file)
		}
		ts := s.startTelemetry(q, eo)
		aspan := ts.trc().Start(ts.span(), "admit")
		lease.Await(p)
		if err := ctl.Err(); err != nil {
			sub.err = &QueryError{Op: "submit", Table: q.Table.Name(), Err: err}
			aspan.SetAttr("err", err.Error())
			aspan.End()
			return
		}
		granted := lease.Budget()
		if userBudget == 0 && !plan.Shared && granted != po.QueueBudget {
			// The grant differs from the provisional fair share: re-plan
			// under the lease. The memo keys on the budget, so both plans
			// stay cached for queries admitted later at either size.
			po.QueueBudget = granted
			if plan, err = s.Plan(q, po); err != nil {
				sub.err = err
				aspan.End()
				return
			}
			lease.Replanned()
			sub.adm.Replanned = true
		}
		sub.adm.Budget = granted
		sub.adm.PoolPages = lease.PoolPages()
		sub.adm.Wait = time.Duration(lease.Wait())
		aspan.SetAttr("budget", granted)
		aspan.SetAttr("wait", sub.adm.Wait)
		aspan.SetAttr("replanned", sub.adm.Replanned)
		aspan.End()
		sub.est = estimatePages(q, plan)
		sub.started = true
		s.events.Emit(event.EvQueryStart, qid, sub.est, int64(granted))

		if eo.degree > 0 {
			plan.Degree = eo.degree
		}
		prefetch := eo.prefetch
		if prefetch == 0 {
			prefetch = plan.Prefetch
		}
		spec := exec.Spec{
			Table:             q.Table.one().tab,
			Index:             q.Table.one().idx,
			Lo:                q.Low,
			Hi:                q.High,
			Method:            plan.Method.internal(),
			Degree:            plan.Degree,
			Shared:            plan.Shared,
			Agg:               q.Agg.internal(),
			PrefetchPerWorker: prefetch,
			Span:              ts.span(),
			Gov:               lease,
			PoolShare:         lease.PoolPages(),
			Ctl:               ctl,
			Retry:             eo.retry.internal(),
			QID:               qid,
			Progress:          &sub.pages,
		}
		// With other queries interested in the same file, a private scan's
		// readahead trims the pages a neighbour (or the circulating
		// producer) already covered instead of re-requesting them.
		if sharing && !plan.Shared && shares.Interest(file) > 1 {
			spec.CoordPrefetch = true
		}
		// Adaptive submissions retune through their own lease: every degree
		// the controller grows to is secured by re-leasing free credits
		// mid-flight, and shed workers return credits through the governed
		// teardown the broker already runs for static queries.
		s.attachAdaptive(&spec, q, &plan, eo, lease, ses.b.Total())
		ctx := s.execContext()
		ctx.Tracer = ts.trc()
		t0 := p.Now()
		res := exec.RunScan(p, ctx, spec)
		rt := time.Duration(sim.Duration(p.Now() - t0))
		s.events.Emit(event.EvQueryDone, qid, sub.pages, int64(rt))
		if res.Err != nil {
			sub.err = &QueryError{Op: "submit", Table: q.Table.Name(), Err: res.Err}
			sub.done = true
			ts.finish(s, plan, rt, eo)
			return
		}
		sub.res = Result{
			Value:   res.Value,
			Found:   res.Found,
			Rows:    res.RowsMatched,
			Plan:    plan,
			Runtime: rt,
		}
		sub.done = true
		ts.finish(s, plan, rt, eo)
	})
	return sub, nil
}

// quantizeParties buckets a live interest count into the share-party sizes
// the optimizer plans for: 0 (no sharing), 2, 4, or 8+. The exact rider
// count moves with every submit; pricing against a handful of contention
// levels keeps the plan memo warm across a thousand-query burst.
func quantizeParties(n int) int {
	switch {
	case n < 2:
		return 0
	case n < 4:
		return 2
	case n < 8:
		return 4
	default:
		return 8
	}
}

// Cancel aborts the submission's query with ErrCanceled (or keeps an
// earlier abort cause). Safe before or during Drain; the query's workers
// exit at their next batch boundary and its lease is reclaimed.
func (sub *Submission) Cancel() { sub.ctl.Cancel(ErrCanceled) }

// Drain runs the simulation until every pending submission has finished,
// returning the first submission error (results remain retrievable per
// submission either way).
func (ses *Session) Drain() error {
	ses.sys.env.Run()
	var first error
	for _, sub := range ses.subs {
		if sub.err != nil && first == nil {
			first = sub.err
		}
	}
	ses.subs = ses.subs[:0]
	// Reclamation invariant: with no query still admitted, every credit and
	// every pool reservation must have come home — aborted queries included.
	if ses.b.Active() == 0 {
		if n := ses.b.InUse(); n != 0 {
			panic(fmt.Sprintf("pioqo: session drain leaked %d broker credits", n))
		}
		if n := ses.b.PoolInUse(); n != 0 {
			panic(fmt.Sprintf("pioqo: session drain leaked %d reserved pool pages", n))
		}
		if sh := ses.sys.coord().Shares; sh != nil {
			if n := sh.Live(); n != 0 {
				panic(fmt.Sprintf("pioqo: session drain left %d consumers attached to circulating scans", n))
			}
		}
	}
	return first
}
