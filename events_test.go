package pioqo

import (
	"bytes"
	"strconv"
	"strings"
	"testing"
	"time"
)

// faultedEventRun executes a retry-heavy faulted query mix with the event
// log on and returns the JSONL export.
func faultedEventRun(t *testing.T) []byte {
	t.Helper()
	sys, tab := newCalibrated(t, SSD, 50000, 33)
	sys.EnableEventLog(1 << 14)
	sys.InjectFaults(FaultSchedule{
		Seed: 11,
		Windows: []FaultWindow{{
			ErrorRate:        0.02,
			StragglerRate:    0.1,
			StragglerLatency: 2 * time.Millisecond,
		}},
	})
	if _, err := sys.Execute(Query{Table: tab, Low: 0, High: 9999}, Cold()); err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Submit(Query{Table: tab, Low: 0, High: 499}); err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Submit(Query{Table: tab, Low: 20000, High: 29999}); err != nil {
		t.Fatal(err)
	}
	if err := sys.Drain(); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := sys.WriteEventLog(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestEventLogByteIdenticalReplay(t *testing.T) {
	a := faultedEventRun(t)
	b := faultedEventRun(t)
	if len(a) == 0 {
		t.Fatal("faulted run exported an empty event log")
	}
	if !bytes.Equal(a, b) {
		t.Fatalf("same-seed fault runs exported different JSONL:\nrun1 %d bytes\nrun2 %d bytes", len(a), len(b))
	}
	// The export must carry the fault-handling story, not just lifecycle.
	for _, want := range []string{
		`"event":"query.start"`, `"event":"query.done"`,
		`"event":"admission.grant"`, `"event":"fault.straggler"`,
	} {
		if !bytes.Contains(a, []byte(want)) {
			t.Errorf("export missing %s", want)
		}
	}
}

func TestEventLogNeverPerturbsExecution(t *testing.T) {
	run := func(logged bool) (Result, time.Duration) {
		sys, tab := newCalibrated(t, SSD, 50000, 33)
		if logged {
			sys.EnableEventLog(0)
		}
		res, err := sys.Execute(Query{Table: tab, Low: 0, High: 4999}, Cold())
		if err != nil {
			t.Fatal(err)
		}
		return res, sys.Now()
	}
	r1, t1 := run(false)
	r2, t2 := run(true)
	if r1 != r2 || t1 != t2 {
		t.Errorf("enabling the event log changed execution:\n  off %+v at %v\n  on  %+v at %v", r1, t1, r2, t2)
	}
}

func TestEventLogLifecycleAttribution(t *testing.T) {
	sys, tab := newCalibrated(t, SSD, 50000, 33)
	sys.EnableEventLog(0)
	sub1, err := sys.Submit(Query{Table: tab, Low: 0, High: 24999})
	if err != nil {
		t.Fatal(err)
	}
	sub2, err := sys.Submit(Query{Table: tab, Low: 30000, High: 30499})
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.Drain(); err != nil {
		t.Fatal(err)
	}
	starts := map[int64]bool{}
	dones := map[int64]int64{}
	grants := map[int64]bool{}
	for _, e := range sys.EngineEvents() {
		switch e.Name {
		case "query.start":
			starts[e.Query] = true
		case "query.done":
			dones[e.Query] = e.A // pages processed
		case "admission.grant":
			grants[e.Query] = true
		case "worker.start", "worker.exit":
			if e.Query < 0 {
				t.Errorf("%s event lost its query attribution", e.Name)
			}
		}
	}
	for _, sub := range []*Submission{sub1, sub2} {
		qid := sub.qid
		if !starts[qid] || !grants[qid] {
			t.Errorf("query %d missing start/grant events (start=%v grant=%v)", qid, starts[qid], grants[qid])
		}
		if pages, ok := dones[qid]; !ok || pages <= 0 {
			t.Errorf("query %d done event reports %d pages", qid, pages)
		}
		if pages := sub.Progress().PagesProcessed; pages != dones[qid] {
			t.Errorf("query %d: done event says %d pages, Progress says %d", qid, dones[qid], pages)
		}
	}
	st := sys.EventLogStats()
	if st.Total == 0 || st.Len == 0 {
		t.Errorf("EventLogStats = %+v, want non-empty", st)
	}
}

func TestLiveProgressDuringDrain(t *testing.T) {
	sys, tab := newCalibrated(t, SSD, 100000, 33)
	ses, err := sys.OpenSession()
	if err != nil {
		t.Fatal(err)
	}
	big, err := ses.Submit(Query{Table: tab, Low: 0, High: 99999}, Cold())
	if err != nil {
		t.Fatal(err)
	}
	small, err := ses.Submit(Query{Table: tab, Low: 0, High: 99})
	if err != nil {
		t.Fatal(err)
	}
	// The observer fires as each query completes — mid-Drain from the other
	// query's vantage point. Record the big scan's progress at each firing.
	var mid []QueryProgress
	sys.SetObserver(ObserverFunc(func(QueryTelemetry) {
		mid = append(mid, big.Progress())
	}))
	defer sys.SetObserver(nil)
	if err := ses.Drain(); err != nil {
		t.Fatal(err)
	}
	final := big.Progress()
	if !final.Done || final.PagesProcessed <= 0 || final.EstimatedPages <= 0 {
		t.Fatalf("final progress %+v, want done with pages counted", final)
	}
	if got := small.Progress(); !got.Done {
		t.Errorf("small query progress %+v, want done", got)
	}
	// The small query finishes first, so its observer callback saw the big
	// scan live: started, partially through its estimate, not done.
	saw := false
	for _, p := range mid {
		if p.Started && !p.Done && p.PagesProcessed > 0 && p.PagesProcessed < final.PagesProcessed {
			saw = true
			if p.Remaining <= 0 {
				t.Errorf("mid-run progress %+v reports nothing remaining", p)
			}
		}
	}
	if !saw {
		t.Errorf("no observer callback saw the big scan mid-run: %+v", mid)
	}
	// The full scan's estimate is exact: every heap page is processed once.
	if final.PagesProcessed != tab.Pages() {
		t.Errorf("full scan processed %d pages, table has %d", final.PagesProcessed, tab.Pages())
	}
}

func TestSLOReportShapes(t *testing.T) {
	sys, tab := newCalibrated(t, SSD, 100000, 33)
	queries := []Query{
		{Table: tab, Low: 0, High: 9999}, // one mid-selectivity shape
		{Table: tab, Low: 20000, High: 20099},
		{Table: tab, Low: 30000, High: 30099},
		{Table: tab, Low: 40000, High: 40099},
	}
	res, err := sys.ExecuteConcurrent(queries, Cold())
	if err != nil {
		t.Fatal(err)
	}
	rep := res.SLOReport(queries)
	if rep.Queries != len(queries) || rep.Makespan != res.Elapsed {
		t.Fatalf("report header %+v, want %d queries makespan %v", rep, len(queries), res.Elapsed)
	}
	if len(rep.Shapes) != 2 {
		t.Fatalf("got %d shapes, want 2 (mid + small): %+v", len(rep.Shapes), rep.Shapes)
	}
	mid, small := rep.Shapes[0], rep.Shapes[1]
	if mid.Queries != 1 || small.Queries != 3 {
		t.Errorf("shape sizes %d/%d, want 1/3", mid.Queries, small.Queries)
	}
	for _, s := range rep.Shapes {
		if s.P50 > s.P95 || s.P95 > s.P99 {
			t.Errorf("shape %q percentiles not monotone: %v %v %v", s.Shape, s.P50, s.P95, s.P99)
		}
		if s.P99 <= 0 || s.MeanExec <= 0 {
			t.Errorf("shape %q has empty latencies: %+v", s.Shape, s)
		}
		if s.MeanWait+s.MeanExec > rep.Makespan {
			t.Errorf("shape %q mean latency %v exceeds makespan %v", s.Shape, s.MeanWait+s.MeanExec, rep.Makespan)
		}
	}
	out := rep.String()
	for _, want := range []string{"makespan", "p50", "p95", "p99", mid.Shape, small.Shape} {
		if !strings.Contains(out, want) {
			t.Errorf("report table missing %q:\n%s", want, out)
		}
	}
}

// TestConcurrentAttributionNoBleed exercises the per-query telemetry paths
// the race detector must see clean: a system observer plus one WithTrace
// capture per submission, drained together. Each query's telemetry must
// carry its own rows — attribution may not bleed across queries sharing
// the broker and registry.
func TestConcurrentAttributionNoBleed(t *testing.T) {
	sys, tab := newCalibrated(t, SSD, 50000, 33)
	calls := 0
	sys.SetObserver(ObserverFunc(func(QueryTelemetry) { calls++ }))
	defer sys.SetObserver(nil)

	ses, err := sys.OpenSession()
	if err != nil {
		t.Fatal(err)
	}
	ranges := []struct{ lo, hi int64 }{
		{0, 9999}, {10000, 10499}, {20000, 20099}, {30000, 34999},
	}
	tels := make([]QueryTelemetry, len(ranges))
	subs := make([]*Submission, len(ranges))
	for i, r := range ranges {
		subs[i], err = ses.Submit(Query{Table: tab, Low: r.lo, High: r.hi}, WithTrace(&tels[i]))
		if err != nil {
			t.Fatal(err)
		}
	}
	if err := ses.Drain(); err != nil {
		t.Fatal(err)
	}
	if calls != len(ranges) {
		t.Errorf("observer fired %d times for %d queries", calls, len(ranges))
	}
	for i, sub := range subs {
		res, err := sub.Result()
		if err != nil {
			t.Fatal(err)
		}
		if tels[i].Root == nil {
			t.Fatalf("query %d: WithTrace captured no span tree", i)
		}
		rows, found := "", false
		tels[i].Root.Walk(func(n *SpanNode) {
			if found {
				return
			}
			if v, ok := n.Attr("rows"); ok {
				rows, found = v, true
			}
		})
		if !found {
			t.Fatalf("query %d: no operator span with a rows attribute", i)
		}
		if want := strconv.FormatInt(res.Rows, 10); rows != want {
			t.Errorf("query %d: span rows=%s, result rows=%s — attribution bled", i, rows, want)
		}
	}
}
