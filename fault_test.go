package pioqo

import (
	"context"
	"errors"
	"testing"
	"time"
)

// pollCtx is a deterministic cancellation source: Err starts returning
// context.Canceled after the first `after` calls. The executor polls at
// batch boundaries, so the cancel lands mid-scan at a reproducible point —
// no host timing involved.
type pollCtx struct {
	context.Context
	calls, after int
	done         chan struct{}
}

func newPollCtx(after int) *pollCtx {
	return &pollCtx{Context: context.Background(), after: after, done: make(chan struct{})}
}

func (c *pollCtx) Done() <-chan struct{} { return c.done }

func (c *pollCtx) Err() error {
	c.calls++
	if c.calls > c.after {
		return context.Canceled
	}
	return nil
}

func TestQueryPreCanceledContext(t *testing.T) {
	sys, tab := newCalibrated(t, SSD, 50000, 33)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := sys.Query(ctx, Query{Table: tab, Low: 0, High: 999})
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("err = %v, want ErrCanceled", err)
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatal("taxonomy error does not satisfy errors.Is(err, context.Canceled)")
	}
	var qe *QueryError
	if !errors.As(err, &qe) {
		t.Fatalf("err %T does not unwrap to *QueryError", err)
	}
	if qe.Op != "query" || qe.Table != "t" {
		t.Errorf("QueryError = {%q %q}, want {query t}", qe.Op, qe.Table)
	}
}

func TestQueryExpiredContextDeadline(t *testing.T) {
	sys, tab := newCalibrated(t, SSD, 50000, 33)
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	_, err := sys.Query(ctx, Query{Table: tab, Low: 0, High: 999})
	if !errors.Is(err, ErrDeadlineExceeded) {
		t.Fatalf("err = %v, want ErrDeadlineExceeded", err)
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatal("taxonomy error does not satisfy errors.Is(err, context.DeadlineExceeded)")
	}
}

// assertNoLeaks checks the post-query invariants every abort path must
// leave behind: no live simulation processes, no pinned buffer frames, and
// (when the broker exists) no outstanding credits or pool reservations.
func assertNoLeaks(t *testing.T, sys *System) {
	t.Helper()
	if n := sys.env.LiveProcs(); n != 0 {
		t.Errorf("%d simulation processes leaked", n)
	}
	for _, n := range sys.nodes {
		if pins := n.Pool.Pinned(); pins != 0 {
			t.Errorf("node %d: %d buffer pins leaked", n.ID, pins)
		}
	}
	if sys.broker != nil {
		if n := sys.broker.InUse(); n != 0 {
			t.Errorf("%d broker credits leaked", n)
		}
		if n := sys.broker.PoolInUse(); n != 0 {
			t.Errorf("%d reserved pool pages leaked", n)
		}
	}
}

func TestWithTimeoutAbortsMidScan(t *testing.T) {
	sys, tab := newCalibrated(t, SSD, 200000, 33)
	q := Query{Table: tab, Low: 0, High: 150000}
	_, err := sys.Execute(q, Cold(), WithTimeout(500*time.Microsecond))
	if !errors.Is(err, ErrDeadlineExceeded) {
		t.Fatalf("err = %v, want ErrDeadlineExceeded", err)
	}
	assertNoLeaks(t, sys)

	// The system survives the abort: the same query without a timeout runs
	// to completion and matches a fresh system's answer.
	res, err := sys.Execute(q, Cold())
	if err != nil {
		t.Fatalf("rerun after timeout failed: %v", err)
	}
	sys2, tab2 := newCalibrated(t, SSD, 200000, 33)
	want, err := sys2.Execute(Query{Table: tab2, Low: 0, High: 150000}, Cold())
	if err != nil {
		t.Fatal(err)
	}
	if res.Value != want.Value || res.Rows != want.Rows {
		t.Errorf("post-abort answer (%d,%d) != fresh system answer (%d,%d)",
			res.Value, res.Rows, want.Value, want.Rows)
	}
}

func TestPollCancellationMidScan(t *testing.T) {
	sys, tab := newCalibrated(t, SSD, 200000, 33)
	ctx := newPollCtx(40)
	_, err := sys.Query(ctx, Query{Table: tab, Low: 0, High: 150000}, Cold())
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("err = %v, want ErrCanceled", err)
	}
	if ctx.calls <= 40 {
		t.Fatalf("query finished after %d polls; the cancel never landed mid-scan", ctx.calls)
	}
	assertNoLeaks(t, sys)
}

func TestExecuteIsQueryWithBackgroundContext(t *testing.T) {
	sys, tab := newCalibrated(t, SSD, 50000, 33)
	q := Query{Table: tab, Low: 1000, High: 4999}
	a, err := sys.Execute(q, Cold())
	if err != nil {
		t.Fatal(err)
	}
	sys2, tab2 := newCalibrated(t, SSD, 50000, 33)
	b, err := sys2.Query(context.Background(), Query{Table: tab2, Low: 1000, High: 4999}, Cold())
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Errorf("Execute result %+v != Query result %+v", a, b)
	}
}

func TestInertControlPreservesByteIdentity(t *testing.T) {
	// A query with an abort control that never trips (generous timeout,
	// polled context that stays live) must run byte-identically to one with
	// no control at all: same answer, same virtual runtime, same I/O count.
	run := func(opts ...QueryOption) Result {
		sys, tab := newCalibrated(t, SSD, 50000, 33)
		res, err := sys.Execute(Query{Table: tab, Low: 0, High: 9999}, append(opts, Cold())...)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	plain := run()
	timed := run(WithTimeout(time.Hour))
	if plain != timed {
		t.Errorf("WithTimeout(inert) changed the run:\n  plain %+v\n  timed %+v", plain, timed)
	}
}

func TestZeroFaultScheduleIsByteIdentical(t *testing.T) {
	run := func(cfg Config) Result {
		sys := New(cfg)
		tab, err := sys.CreateTable("t", 50000, 33)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := sys.Calibrate(CalibrationOptions{MaxReads: 640}); err != nil {
			t.Fatal(err)
		}
		res, err := sys.Execute(Query{Table: tab, Low: 0, High: 9999}, Cold())
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	plain := run(Config{Device: SSD, PoolPages: 1024})
	armedEmpty := run(Config{Device: SSD, PoolPages: 1024, Faults: &FaultSchedule{}})
	if plain != armedEmpty {
		t.Errorf("empty fault schedule changed the run:\n  plain %+v\n  armed %+v", plain, armedEmpty)
	}
}

func TestDeterministicFaultReplay(t *testing.T) {
	run := func() (Result, error, FaultStats) {
		sys, tab := newCalibrated(t, SSD, 50000, 33)
		sys.InjectFaults(FaultSchedule{
			Seed: 11,
			Windows: []FaultWindow{{
				ErrorRate:        0.02,
				StragglerRate:    0.1,
				StragglerLatency: 2 * time.Millisecond,
			}},
		})
		res, err := sys.Execute(Query{Table: tab, Low: 0, High: 9999}, Cold())
		return res, err, sys.FaultStats()
	}
	r1, e1, s1 := run()
	r2, e2, s2 := run()
	if r1 != r2 || s1 != s2 || (e1 == nil) != (e2 == nil) {
		t.Errorf("identical fault schedules diverged:\n  run1 %+v %v %+v\n  run2 %+v %v %+v",
			r1, e1, s1, r2, e2, s2)
	}
}

func TestDeviceFaultSurvivingRetriesFailsQuery(t *testing.T) {
	sys, tab := newCalibrated(t, SSD, 50000, 33)
	sys.InjectFaults(FaultSchedule{Windows: []FaultWindow{{ErrorRate: 1}}})
	_, err := sys.Execute(Query{Table: tab, Low: 0, High: 999}, Cold())
	if !errors.Is(err, ErrDeviceFault) {
		t.Fatalf("err = %v, want ErrDeviceFault", err)
	}
	assertNoLeaks(t, sys)

	// Recovery: clear the faults and the same query succeeds.
	sys.ClearFaults()
	if _, err := sys.Execute(Query{Table: tab, Low: 0, High: 999}, Cold()); err != nil {
		t.Fatalf("query after ClearFaults failed: %v", err)
	}
}

func TestConcurrentTimeoutReclaimsEverything(t *testing.T) {
	sys, tab := newCalibrated(t, SSD, 100000, 33)
	queries := []Query{
		{Table: tab, Low: 0, High: 79999},
		{Table: tab, Low: 80000, High: 80999},
	}
	_, err := sys.ExecuteConcurrent(queries, Cold(), WithTimeout(300*time.Microsecond))
	if !errors.Is(err, ErrDeadlineExceeded) {
		t.Fatalf("err = %v, want ErrDeadlineExceeded", err)
	}
	assertNoLeaks(t, sys)

	// The broker is intact: a healthy batch on the same system still runs.
	res, err := sys.ExecuteConcurrent([]Query{
		{Table: tab, Low: 0, High: 999},
		{Table: tab, Low: 5000, High: 5999},
	}, Cold())
	if err != nil {
		t.Fatalf("batch after timeout failed: %v", err)
	}
	if len(res.Results) != 2 {
		t.Fatalf("got %d results, want 2", len(res.Results))
	}
	assertNoLeaks(t, sys)
}

func TestConcurrentSubmitErrorReclaimsPartialBatch(t *testing.T) {
	sys, tab := newCalibrated(t, SSD, 50000, 33)
	// The second query is invalid, so the first — already enqueued with the
	// broker — must be canceled and reclaimed before the error returns.
	_, err := sys.ExecuteConcurrent([]Query{
		{Table: tab, Low: 0, High: 9999},
		{Table: nil, Low: 0, High: 1},
	}, Cold())
	if !errors.Is(err, ErrInvalidQuery) {
		t.Fatalf("err = %v, want ErrInvalidQuery", err)
	}
	assertNoLeaks(t, sys)

	// A sole follow-up query sees an idle broker again: unbounded lease.
	sub, err := sys.Submit(Query{Table: tab, Low: 0, High: 999})
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.Drain(); err != nil {
		t.Fatal(err)
	}
	if got := sub.Admission().Budget; got != 0 {
		t.Errorf("sole query after failed batch: budget = %d, want 0 (unbounded)", got)
	}
}

func TestSessionCloseRejectsSubmit(t *testing.T) {
	sys, tab := newCalibrated(t, SSD, 50000, 33)
	ses, err := sys.OpenSession()
	if err != nil {
		t.Fatal(err)
	}
	sub, err := ses.Submit(Query{Table: tab, Low: 0, High: 999})
	if err != nil {
		t.Fatal(err)
	}
	ses.Close()
	if _, err := ses.Submit(Query{Table: tab, Low: 1000, High: 1999}); !errors.Is(err, ErrAdmissionClosed) {
		t.Fatalf("Submit after Close: err = %v, want ErrAdmissionClosed", err)
	}
	// The pre-close submission still runs.
	if err := ses.Drain(); err != nil {
		t.Fatal(err)
	}
	if _, err := sub.Result(); err != nil {
		t.Fatalf("pre-close submission failed: %v", err)
	}
}

func TestSubmissionCancelBeforeDrain(t *testing.T) {
	sys, tab := newCalibrated(t, SSD, 50000, 33)
	ses, err := sys.OpenSession()
	if err != nil {
		t.Fatal(err)
	}
	sub, err := ses.Submit(Query{Table: tab, Low: 0, High: 9999})
	if err != nil {
		t.Fatal(err)
	}
	sub.Cancel()
	err = ses.Drain()
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("Drain err = %v, want ErrCanceled", err)
	}
	assertNoLeaks(t, sys)
}

func TestNotCalibratedTaxonomy(t *testing.T) {
	sys := New(Config{Device: SSD, PoolPages: 256})
	tab, err := sys.CreateTable("t", 1000, 33)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Execute(Query{Table: tab, Low: 0, High: 9}); !errors.Is(err, ErrNotCalibrated) {
		t.Errorf("Execute uncalibrated: err = %v, want ErrNotCalibrated", err)
	}
	if _, err := sys.ExecuteConcurrent([]Query{{Table: tab, Low: 0, High: 9}}); !errors.Is(err, ErrNotCalibrated) {
		t.Errorf("ExecuteConcurrent uncalibrated: err = %v, want ErrNotCalibrated", err)
	}
	if _, err := sys.OpenSession(); !errors.Is(err, ErrNotCalibrated) {
		t.Errorf("OpenSession uncalibrated: err = %v, want ErrNotCalibrated", err)
	}
	if _, err := sys.Model(); !errors.Is(err, ErrNotCalibrated) {
		t.Errorf("Model uncalibrated: err = %v, want ErrNotCalibrated", err)
	}
	if _, err := sys.Execute(Query{}); !errors.Is(err, ErrInvalidQuery) {
		t.Errorf("Execute without table: err = %v, want ErrInvalidQuery", err)
	}
}
