package pioqo

import (
	"errors"
	"fmt"
	"time"

	"pioqo/internal/exec"
	"pioqo/internal/opt"
)

// JoinQuery is an equi-join over two tables' C2 columns with a range
// predicate on the join key:
//
//	SELECT <Agg>(probe.C1) FROM probe JOIN build ON probe.C2 = build.C2
//	WHERE build.C2 BETWEEN Low AND High
//
// Joins are an extension beyond the paper's evaluation (its conclusion
// defers "more complex database operators" to future research); both sides
// are planned with the same QDTT-aware access-path selection as single
// scans.
type JoinQuery struct {
	Build,
	Probe *Table
	Low,
	High int64
	Agg Aggregate
}

// JoinResult reports an executed join.
type JoinResult struct {
	// Value is the aggregate over probe-side C1 across joined pairs.
	Value int64
	Found bool
	// Pairs is the number of joined pairs; BuildRows and ProbeRows count
	// the rows each side's scan produced.
	Pairs     int64
	BuildRows int64
	ProbeRows int64
	// Method is the chosen join algorithm: "HashJoin" or "IndexNLJoin".
	Method string
	// BuildPlan and ProbePlan are the chosen access paths (for an index
	// nested-loop join, ProbePlan describes the per-key lookup degree).
	BuildPlan Plan
	ProbePlan Plan
	Runtime   time.Duration
}

// JoinPlan describes the optimizer's choice for a join without running it.
type JoinPlan struct {
	// Method is "HashJoin" or "IndexNLJoin".
	Method string
	Build  Plan
	Probe  Plan
	// EstimatedCost is the total join estimate.
	EstimatedCost time.Duration
}

func (p JoinPlan) String() string {
	return fmt.Sprintf("%s (build %v, probe %v, cost %v)",
		p.Method, p.Build, p.Probe, p.EstimatedCost)
}

// PlanJoin returns the optimizer's join plan without executing it.
func (s *System) PlanJoin(q JoinQuery, o PlanOptions) (JoinPlan, error) {
	jp, _, _, err := s.planJoin(q, o)
	if err != nil {
		return JoinPlan{}, err
	}
	return JoinPlan{
		Method:        jp.Method.String(),
		Build:         fromInternalPlan(jp.Build),
		Probe:         fromInternalPlan(jp.Probe),
		EstimatedCost: time.Duration(jp.TotalMicros * 1e3),
	}, nil
}

func (s *System) planJoin(q JoinQuery, po PlanOptions) (opt.JoinPlan, opt.Input, opt.Input, error) {
	if q.Build == nil || q.Probe == nil {
		return opt.JoinPlan{}, opt.Input{}, opt.Input{}, errors.New("pioqo: join requires both tables")
	}
	cfg, buildIn, err := s.optConfig(Query{Table: q.Build, Low: q.Low, High: q.High, Agg: q.Agg}, po)
	if err != nil {
		return opt.JoinPlan{}, opt.Input{}, opt.Input{}, err
	}
	_, probeIn, err := s.optConfig(Query{Table: q.Probe, Low: q.Low, High: q.High, Agg: q.Agg}, po)
	if err != nil {
		return opt.JoinPlan{}, opt.Input{}, opt.Input{}, err
	}
	return opt.ChooseJoin(cfg, buildIn, probeIn), buildIn, probeIn, nil
}

// ExecuteJoin optimizes and runs a join. Both sides require an index only
// if their chosen plan needs one; unindexed tables simply restrict the
// planner (to full scans, and to the hash join on the probe side).
func (s *System) ExecuteJoin(q JoinQuery, opts ...QueryOption) (JoinResult, error) {
	var eo queryOptions
	for _, o := range opts {
		o(&eo)
	}
	if eo.cold {
		// Flush before planning: residency statistics feed the optimizer.
		s.FlushBufferPool()
	}
	jp, buildIn, probeIn, err := s.planJoin(q, eo.plan)
	if err != nil {
		return JoinResult{}, err
	}
	spec := jp.Specs(buildIn, probeIn, q.Agg.internal())
	start := s.env.Now()
	res := exec.ExecuteJoin(s.execContext(), spec)
	buildPlan, _ := s.planFromSpec(spec.Build)
	probePlan, _ := s.planFromSpec(spec.Probe)
	return JoinResult{
		Value:     res.Value,
		Found:     res.Found,
		Pairs:     res.Pairs,
		BuildRows: res.BuildRows,
		ProbeRows: res.ProbeRows,
		Method:    spec.Method.String(),
		BuildPlan: buildPlan,
		ProbePlan: probePlan,
		Runtime:   time.Duration(s.env.Now() - start),
	}, nil
}

// planFromSpec reconstructs the public plan shape from an internal spec
// (estimates omitted — they were already consumed during planning).
func (s *System) planFromSpec(spec exec.Spec) (Plan, error) {
	method := FullTableScan
	switch spec.Method {
	case exec.IndexScan:
		method = IndexScan
	case exec.SortedIndexScan:
		method = SortedIndexScan
	}
	return Plan{Method: method, Degree: spec.Degree, Prefetch: spec.PrefetchPerWorker}, nil
}
