package pioqo

import (
	"errors"
	"testing"
	"time"

	"pioqo/internal/adapt"
	"pioqo/internal/calibrate"
	"pioqo/internal/sim"
)

// newAdaptiveWorld builds a calibrated system with the event log on.
func newAdaptiveWorld(t *testing.T, cfg Config) (*System, *Table) {
	t.Helper()
	if cfg.PoolPages == 0 {
		cfg.PoolPages = 4096
	}
	cfg.EventLog = 4096
	sys := New(cfg)
	tab, err := sys.CreateTable("t", 200000, 33)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Calibrate(CalibrationOptions{MaxReads: 800, StopThreshold: -1}); err != nil {
		t.Fatal(err)
	}
	return sys, tab
}

// misseedDOP installs a hand-fit DOP model so adaptive runs start at a
// known-wrong degree and the feedback controller has distance to cover.
func misseedDOP(sys *System, degree int) {
	pts := []calibrate.Point{{Band: 1 << 30, Depth: 1, MicrosPerPage: 100}}
	cost := 100.0
	for d := 2; d <= 32; d *= 2 {
		if d <= degree {
			cost /= 2 // strong gains up to the target degree
		} else {
			cost *= 0.99 // below the marginal-gain threshold: stop here
		}
		pts = append(pts, calibrate.Point{Band: 1 << 30, Depth: d, MicrosPerPage: cost})
	}
	sys.dop = adapt.Fit(pts)
}

func eventCount(sys *System, name string) int {
	n := 0
	for _, ev := range sys.EngineEvents() {
		if ev.Name == name {
			n++
		}
	}
	return n
}

func TestWithAdaptiveMutuallyExclusiveWithStaticDegree(t *testing.T) {
	sys, tab := newAdaptiveWorld(t, Config{Device: SSD})
	q := Query{Table: tab, Low: 0, High: 999}
	for _, opts := range [][]QueryOption{
		{WithAdaptive(), WithStaticDegree(4)},
		{WithAdaptive(), WithDegree(4)},
	} {
		if _, err := sys.Execute(q, opts...); !errors.Is(err, ErrInvalidQuery) {
			t.Fatalf("Execute with contradictory tuning options: err = %v, want ErrInvalidQuery", err)
		}
		if _, err := sys.Submit(q, opts...); !errors.Is(err, ErrInvalidQuery) {
			t.Fatalf("Submit with contradictory tuning options: err = %v, want ErrInvalidQuery", err)
		}
	}
	// The pair is fine separately.
	if _, err := sys.Execute(q, WithStaticDegree(4)); err != nil {
		t.Fatalf("WithStaticDegree alone: %v", err)
	}
	if _, err := sys.Execute(q, WithAdaptive()); err != nil {
		t.Fatalf("WithAdaptive alone: %v", err)
	}
}

// An adaptive execution must return the same answer as the static plan and
// record its seeding decision.
func TestAdaptiveMatchesStaticAnswer(t *testing.T) {
	static, tabS := newAdaptiveWorld(t, Config{Device: SSD})
	adaptive, tabA := newAdaptiveWorld(t, Config{Device: SSD, Adaptive: true})
	for _, r := range []struct{ lo, hi int64 }{
		{0, 999},    // selective: index scan
		{0, 150000}, // wide: full scan
	} {
		qs := Query{Table: tabS, Low: r.lo, High: r.hi}
		qa := Query{Table: tabA, Low: r.lo, High: r.hi}
		want, err := static.Execute(qs, Cold())
		if err != nil {
			t.Fatal(err)
		}
		got, err := adaptive.Execute(qa, Cold())
		if err != nil {
			t.Fatal(err)
		}
		if got.Value != want.Value || got.Rows != want.Rows || got.Found != want.Found {
			t.Fatalf("range [%d,%d]: adaptive (%d,%d,%v) != static (%d,%d,%v)",
				r.lo, r.hi, got.Value, got.Rows, got.Found, want.Value, want.Rows, want.Found)
		}
	}
	if n := eventCount(adaptive, "adapt.seed"); n != 2 {
		t.Fatalf("adapt.seed events = %d, want one per adaptive query (2)", n)
	}
	if n := eventCount(static, "adapt.seed"); n != 0 {
		t.Fatalf("static system emitted %d adapt.seed events, want 0", n)
	}
}

// A query misseeded far below the useful degree must grow mid-flight —
// through the broker lease on the session path — while its live Progress
// stays monotone and correctly attributed.
func TestAdaptiveGrowRetuneProgress(t *testing.T) {
	sys, tab := newAdaptiveWorld(t, Config{Device: SSD})
	misseedDOP(sys, 1)
	sub, err := sys.Submit(Query{Table: tab, Low: 0, High: 3999}, WithAdaptive(), Cold())
	if err != nil {
		t.Fatal(err)
	}
	var samples []QueryProgress
	sys.env.Go("progress-poll", func(p *sim.Proc) {
		for !sub.Done() {
			p.Sleep(100 * sim.Microsecond)
			samples = append(samples, sub.Progress())
		}
	})
	if err := sys.Drain(); err != nil {
		t.Fatal(err)
	}
	if n := eventCount(sys, "adapt.grow"); n == 0 {
		t.Fatal("misseeded-low adaptive query never grew")
	}
	res, err := sub.Result()
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows == 0 {
		t.Fatal("query matched no rows")
	}
	// Progress must be monotone across the retunes, live mid-flight, and
	// complete at the end.
	var last int64
	sawLive := false
	for _, s := range samples {
		if s.PagesProcessed < last {
			t.Fatalf("progress went backwards: %d after %d", s.PagesProcessed, last)
		}
		last = s.PagesProcessed
		if s.Started && !s.Done && s.PagesProcessed > 0 {
			sawLive = true
		}
	}
	if !sawLive {
		t.Fatal("no live mid-flight progress sample despite retunes")
	}
	fin := sub.Progress()
	if !fin.Done || fin.PagesProcessed == 0 || fin.EstimatedPages == 0 {
		t.Fatalf("final progress %+v, want done with pages and an estimate", fin)
	}
}

// A query misseeded far above the band's beneficial depth must shed
// workers: the controller shrinks toward the broker's calibrated supply.
func TestAdaptiveShrinkRetune(t *testing.T) {
	sys, tab := newAdaptiveWorld(t, Config{Device: HDD, Adaptive: true})
	misseedDOP(sys, 32)
	b, err := sys.sharedBroker()
	if err != nil {
		t.Fatal(err)
	}
	if b.Total() >= 32 {
		t.Skipf("HDD beneficial depth %d leaves no room above it", b.Total())
	}
	res, err := sys.Execute(Query{Table: tab, Low: 0, High: 3999}, Cold())
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows == 0 {
		t.Fatal("query matched no rows")
	}
	if n := eventCount(sys, "adapt.shrink"); n == 0 {
		t.Fatal("misseeded-high adaptive query never shrank")
	}
}

// Adaptive queries under a concurrent batch keep SLO attribution whole:
// every query lands in its shape's group with wait and execution split.
func TestAdaptiveSLOAttribution(t *testing.T) {
	sys, tab := newAdaptiveWorld(t, Config{Device: SSD, Adaptive: true})
	queries := []Query{
		{Table: tab, Low: 0, High: 999},
		{Table: tab, Low: 0, High: 999},
		{Table: tab, Low: 50000, High: 59999},
	}
	res, err := sys.ExecuteConcurrent(queries, Cold())
	if err != nil {
		t.Fatal(err)
	}
	rep := res.SLOReport(queries)
	if rep.Queries != 3 {
		t.Fatalf("report covers %d queries, want 3", rep.Queries)
	}
	n := 0
	for _, sh := range rep.Shapes {
		n += sh.Queries
		if sh.P50 <= 0 {
			t.Fatalf("shape %q has non-positive P50", sh.Shape)
		}
		if sh.MeanExec <= 0 {
			t.Fatalf("shape %q lost its execution time", sh.Shape)
		}
	}
	if n != 3 {
		t.Fatalf("shape groups cover %d queries, want 3", n)
	}
	if len(rep.Shapes) != 2 {
		t.Fatalf("distinct shapes = %d, want 2", len(rep.Shapes))
	}
}

// Speculative prefetch must cancel cleanly when the scan dies mid-flight:
// injected faults abort the query, FinishScan drops the outstanding
// speculation, and the pin ledger ends at zero.
func TestAdaptiveSpecCancelZeroPinsUnderFaults(t *testing.T) {
	sys, tab := newAdaptiveWorld(t, Config{Device: SSD, Adaptive: true})
	misseedDOP(sys, 1)
	sys.InjectFaults(FaultSchedule{Windows: []FaultWindow{{
		From:      2 * time.Millisecond, // let some leaves (and speculation) through first
		ErrorRate: 1.0,
	}}})
	sub, err := sys.Submit(Query{Table: tab, Low: 0, High: 3999},
		WithRetry(RetryPolicy{MaxAttempts: 2}))
	if err != nil {
		t.Fatal(err)
	}
	err = sys.Drain() // Drain panics itself on credit or pool-reservation leaks
	if !errors.Is(err, ErrDeviceFault) {
		t.Fatalf("drain err = %v, want ErrDeviceFault", err)
	}
	if _, err := sub.Result(); !errors.Is(err, ErrDeviceFault) {
		t.Fatalf("result err = %v, want ErrDeviceFault", err)
	}
	if n := sys.coord().Pool.Pinned(); n != 0 {
		t.Fatalf("pool pins = %d after aborted adaptive query, want 0", n)
	}
	if n := eventCount(sys, "adapt.spec.issue"); n == 0 {
		t.Fatal("no speculation issued before the fault window")
	}
	if n := eventCount(sys, "adapt.spec.cancel"); n == 0 {
		t.Fatal("aborted scan did not cancel its outstanding speculation")
	}
}
