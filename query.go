package pioqo

import (
	"context"
	"fmt"
	"time"

	"pioqo/internal/cost"
	"pioqo/internal/exec"
	"pioqo/internal/fault"
	"pioqo/internal/node"
	"pioqo/internal/obs/event"
	"pioqo/internal/opt"
)

// Aggregate selects the aggregate function a query computes over C1.
type Aggregate int

// Supported aggregates. Max is the paper's probe; the others exercise the
// same access paths with identical I/O behaviour.
const (
	Max Aggregate = iota
	Min
	Count // COUNT(*), never NULL
	Sum
)

func (a Aggregate) String() string { return a.internal().String() }

func (a Aggregate) internal() exec.AggKind {
	switch a {
	case Min:
		return exec.AggMin
	case Count:
		return exec.AggCount
	case Sum:
		return exec.AggSum
	default:
		return exec.AggMax
	}
}

// Query is the paper's probe query over a table:
//
//	SELECT <Agg>(C1) FROM t WHERE C2 BETWEEN Low AND High
//
// Agg defaults to Max, the aggregate the paper evaluates.
type Query struct {
	Table *Table
	Low,
	High int64
	Agg Aggregate
}

func (q Query) validate() error {
	if q.Table == nil {
		return fmt.Errorf("%w: no table", ErrInvalidQuery)
	}
	return nil
}

// AccessMethod names a plan's access path family.
type AccessMethod int

const (
	// FullTableScan reads every heap page (FTS; PFTS when parallel).
	FullTableScan AccessMethod = iota
	// IndexScan walks the C2 index and fetches qualifying rows (IS/PIS).
	IndexScan
	// SortedIndexScan collects qualifying row ids from the index, sorts
	// them by heap page, and fetches each needed page exactly once. An
	// extension beyond the paper's engine (see DESIGN.md §6); enabled in
	// the optimizer via PlanOptions.EnableSortedScan.
	SortedIndexScan
)

func (m AccessMethod) String() string {
	switch m {
	case IndexScan:
		return "IndexScan"
	case SortedIndexScan:
		return "SortedIndexScan"
	default:
		return "FullTableScan"
	}
}

func (m AccessMethod) internal() exec.Method {
	switch m {
	case IndexScan:
		return exec.IndexScan
	case SortedIndexScan:
		return exec.SortedIndexScan
	default:
		return exec.FullScan
	}
}

// Plan is a costed access path chosen or enumerated by the optimizer.
type Plan struct {
	Method AccessMethod
	// Degree is the intra-query parallel degree (1 = serial).
	Degree int
	// Prefetch is the per-worker prefetch depth for index scans, chosen by
	// the optimizer when PlanOptions.EnablePrefetchPlanning is set.
	Prefetch int
	// Shared marks the circulating-scan attach path: instead of scanning
	// the heap privately, the query attaches to the table's shared
	// producer, rides one full lap, and splits the sequential device work
	// with every other attached query. Enumerated when
	// PlanOptions.ShareParties ≥ 2 (sessions set it from live interest).
	Shared bool
	// EstimatedCost is the optimizer's total cost estimate; EstimatedIO
	// and EstimatedCPU are its components. All are virtual durations.
	EstimatedCost time.Duration
	EstimatedIO   time.Duration
	EstimatedCPU  time.Duration
	// EstimatedRows is the expected number of matching rows.
	EstimatedRows float64

	// Fanout is the number of shards a scatter-gather plan touches after
	// partition pruning; 0 for single-node plans. When > 0, Method,
	// Degree, and Prefetch describe the slowest shard's choice (the one
	// the makespan estimate is pinned to) and the cost fields price the
	// whole scatter plus the coordinator's merge.
	Fanout int

	// scatter carries the per-shard internal plans of a scatter-gather
	// plan (nil for single-node plans, keeping Plan comparable); pruned
	// counts the shards partition pruning skipped.
	scatter *scatterPlan
	pruned  int
}

// scatterPlan is the private payload of a sharded Plan: the per-shard
// plans, parallel to active (the shard ids that survived pruning).
type scatterPlan struct {
	plans  []opt.Plan
	active []int
}

func (p Plan) String() string {
	var name string
	switch p.Method {
	case IndexScan:
		name = "IS"
	case SortedIndexScan:
		name = "SortedIS"
	default:
		name = "FTS"
	}
	if p.Degree > 1 {
		name = fmt.Sprintf("P%s%d", name, p.Degree)
	}
	if p.Shared {
		name += "+shared"
	}
	if p.Fanout > 0 {
		name = fmt.Sprintf("scatter%d·%s", p.Fanout, name)
	}
	return fmt.Sprintf("%s (cost %v, ~%.0f rows)", name, p.EstimatedCost, p.EstimatedRows)
}

// PlanOptions tune optimization.
type PlanOptions struct {
	// DepthOblivious prices I/O with the DTT model (the queue-depth-1
	// slice of the calibrated QDTT) — the paper's "old optimizer". The
	// default uses the full QDTT model.
	DepthOblivious bool

	// MaxDegree caps the enumerated parallel degrees. Default 32.
	MaxDegree int

	// EnableSortedScan adds the sorted index scan extension to the
	// enumeration.
	EnableSortedScan bool

	// EnablePrefetchPlanning lets the optimizer also choose a per-worker
	// prefetch depth for index scans, pricing the combined queue depth
	// degree × prefetch with the QDTT model (§3.3). It will then often
	// prefer a few workers with deep prefetch over a large worker fleet.
	EnablePrefetchPlanning bool

	// QueueBudget caps the device queue depth a plan may generate, for
	// running multiple queries concurrently (§4.3: "when multiple queries
	// are running ... the optimizer needs to pass a lower queue depth").
	// Zero means uncapped.
	QueueBudget int

	// ShareParties, when ≥ 2, tells the optimizer that that many
	// concurrent queries (this one included) are interested in the same
	// table, enabling the shared circulating-scan candidate — one lap of
	// sequential I/O split over the parties. Sessions set it automatically
	// from live per-table interest; standalone planning may set it to
	// price the attach path by hand.
	ShareParties int

	// GreedyPlanning routes this optimization through the serving-scale
	// plan path — the parameterized selectivity-band cache backed by the
	// greedy O(n) fast path — instead of the exhaustive memoized
	// enumeration. See Config.GreedyPlanning for the system-wide default
	// and WithGreedyPlanning for the query-option form.
	GreedyPlanning bool
}

// gridSpec identifies one distinct enumeration grid a PlanOptions value can
// produce, for caching the flattened grid-key string plan caches key on.
type gridSpec struct {
	maxDegree int
	prefetch  bool
}

func (s *System) gridKeyFor(spec gridSpec, degrees, prefetchDepths []int) string {
	if k, ok := s.gridKeys[spec]; ok {
		return k
	}
	k := opt.GridKey(degrees, prefetchDepths)
	s.gridKeys[spec] = k
	return k
}

// planConfig builds the optimizer configuration for one node's stack
// under o — the per-shard unit scatter-gather planning fans out over.
func (s *System) planConfig(n *node.Node, o PlanOptions) (opt.Config, error) {
	if s.model == nil {
		return opt.Config{}, fmt.Errorf("%w: optimization needs the calibrated cost model; call Calibrate first", ErrNotCalibrated)
	}
	var model cost.Model = s.model
	if o.DepthOblivious {
		model = s.depthOneModel()
	}
	degrees := []int{1, 2, 4, 8, 16, 32}
	if o.MaxDegree > 0 {
		trimmed := degrees[:0]
		for _, d := range degrees {
			if d <= o.MaxDegree {
				trimmed = append(trimmed, d)
			}
		}
		degrees = trimmed
	}
	cfg := opt.Config{
		Model:            model,
		Costs:            s.costs,
		Cores:            s.cores,
		Degrees:          degrees,
		PoolPages:        int64(n.Pool.Capacity()),
		EnableSortedScan: o.EnableSortedScan,
		QueueBudget:      o.QueueBudget,
		ShareParties:     o.ShareParties,
		Obs:              s.reg,
		Log:              s.events,
	}
	if o.EnablePrefetchPlanning {
		cfg.PrefetchDepths = []int{2, 4, 8, 16, 32}
	}
	cfg.GridKey = s.gridKeyFor(gridSpec{maxDegree: o.MaxDegree, prefetch: o.EnablePrefetchPlanning},
		degrees, cfg.PrefetchDepths)
	return cfg, nil
}

func (s *System) optConfig(q Query, o PlanOptions) (opt.Config, opt.Input, error) {
	if err := q.validate(); err != nil {
		return opt.Config{}, opt.Input{}, err
	}
	if q.Table.sharded() {
		return opt.Config{}, opt.Input{}, fmt.Errorf("%w: table %q is partitioned across %d nodes; this operation is single-node only",
			ErrInvalidQuery, q.Table.Name(), len(q.Table.parts))
	}
	cfg, err := s.planConfig(s.coord(), o)
	if err != nil {
		return opt.Config{}, opt.Input{}, err
	}
	part := q.Table.one()
	in := opt.Input{
		Table: part.tab,
		Index: part.idx,
		Pool:  part.node.Pool,
		Stats: part.hist,
		Lo:    q.Low,
		Hi:    q.High,
	}
	return cfg, in, nil
}

func fromInternalPlan(p opt.Plan) Plan {
	method := FullTableScan
	switch p.Method {
	case exec.IndexScan:
		method = IndexScan
	case exec.SortedIndexScan:
		method = SortedIndexScan
	}
	return Plan{
		Method:        method,
		Degree:        p.Degree,
		Prefetch:      p.Prefetch,
		Shared:        p.Shared,
		EstimatedCost: time.Duration(p.TotalMicros * 1e3),
		EstimatedIO:   time.Duration(p.IOMicros * 1e3),
		EstimatedCPU:  time.Duration(p.CPUMicros * 1e3),
		EstimatedRows: p.EstRows,
	}
}

// Plan returns the optimizer's chosen plan for q without executing it.
// Queries over sharded tables are planned per shard with a merge stage on
// top (see DESIGN.md §13).
func (s *System) Plan(q Query, o PlanOptions) (Plan, error) {
	if q.Table != nil && q.Table.sharded() {
		return s.planSharded(q, o)
	}
	cfg, in, err := s.optConfig(q, o)
	if err != nil {
		return Plan{}, err
	}
	if o.GreedyPlanning || s.greedy {
		return fromInternalPlan(s.pcache.Choose(cfg, in)), nil
	}
	return fromInternalPlan(s.memo.Choose(cfg, in)), nil
}

// Explain returns every candidate plan the optimizer considered for q,
// cheapest first.
func (s *System) Explain(q Query, o PlanOptions) ([]Plan, error) {
	cfg, in, err := s.optConfig(q, o)
	if err != nil {
		return nil, err
	}
	var plans []Plan
	for _, p := range s.memo.Enumerate(cfg, in) {
		plans = append(plans, fromInternalPlan(p))
	}
	return plans, nil
}

// Result reports an executed query.
type Result struct {
	// Value is the aggregate over the matching rows' C1 (MAX by default);
	// Found is false when the aggregate is NULL (no row matched — except
	// COUNT, which reports 0 and is always Found).
	Value int64
	Found bool
	// Rows is the number of matching rows.
	Rows int64
	// Plan is the plan that was executed.
	Plan Plan
	// Runtime is the query's virtual wall-clock time.
	Runtime time.Duration
	// PageReads is the number of device read requests the query issued;
	// IOThroughputMBps is the device throughput it sustained.
	PageReads        int64
	IOThroughputMBps float64
}

// Execute optimizes and runs q, returning the answer and its runtime. It
// is Query with a background context — kept as the convenience entrypoint
// for non-cancellable callers.
func (s *System) Execute(q Query, opts ...QueryOption) (Result, error) {
	return s.Query(context.Background(), q, opts...)
}

// ExecutePlan runs q with a caller-supplied plan, bypassing the optimizer.
// Options that need an abort control (WithTimeout, WithRetry) work here
// too; for live cancellation use Query, which takes a context.
func (s *System) ExecutePlan(q Query, plan Plan, opts ...QueryOption) (Result, error) {
	if err := q.validate(); err != nil {
		return Result{}, err
	}
	var eo queryOptions
	for _, o := range opts {
		o(&eo)
	}
	ctl, err := s.newControl(context.Background(), eo)
	if err != nil {
		return Result{}, &QueryError{Op: "query", Table: q.Table.Name(), Err: err}
	}
	if eo.cold {
		s.FlushBufferPool()
	}
	return s.executePlan(q, plan, eo, s.startTelemetry(q, eo), ctl)
}

// executePlan is the shared execution tail of Query and ExecutePlan: it
// runs the scan under the telemetry session's query span (if any), wires
// the abort control and retry policy through the executor, and delivers
// telemetry to the observer/capture listeners.
func (s *System) executePlan(q Query, plan Plan, eo queryOptions, ts *telemetrySession, ctl *fault.Control) (Result, error) {
	if q.Table.sharded() {
		return s.executeGather(q, plan, eo, ts, ctl)
	}
	part := q.Table.one()
	if plan.Method != FullTableScan && part.idx == nil {
		return Result{}, fmt.Errorf("%w: table %q has no index", ErrInvalidQuery, q.Table.Name())
	}
	if err := eo.checkAdaptive(); err != nil {
		return Result{}, &QueryError{Op: "query", Table: q.Table.Name(), Err: err}
	}
	if eo.degree > 0 {
		plan.Degree = eo.degree
	}
	if plan.Degree <= 0 {
		plan.Degree = 1
	}
	prefetch := eo.prefetch
	if prefetch == 0 {
		prefetch = plan.Prefetch
	}
	qid := s.nextQID
	s.nextQID++
	var pages int64
	spec := exec.Spec{
		Table:             part.tab,
		Index:             part.idx,
		Lo:                q.Low,
		Hi:                q.High,
		Method:            plan.Method.internal(),
		Degree:            plan.Degree,
		Shared:            plan.Shared,
		Agg:               q.Agg.internal(),
		PrefetchPerWorker: prefetch,
		Span:              ts.span(),
		Ctl:               ctl,
		Retry:             eo.retry.internal(),
		QID:               qid,
		Progress:          &pages,
	}
	if s.adaptiveOn(eo) {
		// Standalone executions are ungoverned (no lease — the whole supply
		// is theirs), but growth still respects the band's beneficial depth,
		// read from the shared broker's calibrated credit supply.
		beneficial := 0
		if b, err := s.sharedBroker(); err == nil {
			beneficial = b.Total()
		}
		s.attachAdaptive(&spec, q, &plan, eo, nil, beneficial)
	}
	ctx := s.execContext()
	ctx.Tracer = ts.trc()
	s.events.Emit(event.EvQueryStart, qid, estimatePages(q, plan), int64(eo.plan.QueueBudget))
	res := exec.Execute(ctx, spec)
	s.events.Emit(event.EvQueryDone, qid, pages, int64(res.Runtime))
	result := Result{
		Value:            res.Value,
		Found:            res.Found,
		Rows:             res.RowsMatched,
		Plan:             plan,
		Runtime:          time.Duration(res.Runtime),
		PageReads:        res.IO.Requests,
		IOThroughputMBps: res.IO.ThroughputMBps,
	}
	ts.finish(s, plan, result.Runtime, eo)
	if res.Err != nil {
		return Result{}, &QueryError{Op: "query", Table: q.Table.Name(), Err: res.Err}
	}
	return result, nil
}

type queryOptions struct {
	cold        bool
	prefetch    int
	plan        PlanOptions
	telemetry   *QueryTelemetry
	detail      bool
	staticSplit bool
	noShare     bool
	adaptive    bool
	degree      int
	timeout     time.Duration
	retry       RetryPolicy
}

// Cold flushes the buffer pool before running, modelling a cold cache.
func Cold() QueryOption { return func(o *queryOptions) { o.cold = true } }

// WithPrefetch sets the per-worker table-page prefetch depth for index
// scans (§3.3 of the paper).
func WithPrefetch(n int) QueryOption { return func(o *queryOptions) { o.prefetch = n } }

// WithPlanOptions forwards optimizer options through Query/Execute.
func WithPlanOptions(po PlanOptions) QueryOption { return func(o *queryOptions) { o.plan = po } }

// WithNoScanSharing keeps this query off the shared circulating scan: it
// registers no table interest, never plans the attach path, and scans the
// heap privately. The A/B control for benchmarking scan sharing per query;
// Config.NoScanSharing disables the subsystem system-wide.
func WithNoScanSharing() QueryOption { return func(o *queryOptions) { o.noShare = true } }

// StaticSplit makes ExecuteConcurrent budget the batch with a one-shot
// even split of the beneficial queue depth, never re-brokering freed
// credits — the pre-broker behaviour, kept for A/B benchmarking against
// dynamic admission control.
func StaticSplit() QueryOption { return func(o *queryOptions) { o.staticSplit = true } }

// WithGreedyPlanning plans this query through the serving-scale plan path:
// the parameterized selectivity-band cache backed by the greedy O(n)
// access-path fast path, falling back to full enumeration only near cost
// crossovers. The A/B control for benchmarking planner throughput;
// Config.GreedyPlanning turns it on system-wide.
func WithGreedyPlanning() QueryOption { return func(o *queryOptions) { o.plan.GreedyPlanning = true } }

// PlannerStats snapshots the plan caches' traffic counters: the exact-match
// memo on the default path, and the parameterized band cache serving greedy
// planning.
type PlannerStats struct {
	// MemoHits and MemoMisses count the exact-key memo's traffic.
	MemoHits, MemoMisses int64
	// BandHits and BandMisses count parameterized-cache lookups that bound
	// constants into a cached band entry vs. planned a shape × band fresh.
	BandHits, BandMisses int64
	// BandRevalidations counts pool-epoch drifts survived by re-pricing
	// only the cached winner and runner-up.
	BandRevalidations int64
	// GreedyPlans counts decisions the O(n) fast path made alone;
	// GreedyFallbacks counts crossover-forced full enumerations.
	GreedyPlans, GreedyFallbacks int64
}

// PlannerStats reports the plan caches' cumulative hit/miss counters.
func (s *System) PlannerStats() PlannerStats {
	mh, mm := s.memo.Stats()
	cs := s.pcache.Stats()
	return PlannerStats{
		MemoHits:          mh,
		MemoMisses:        mm,
		BandHits:          cs.Hits,
		BandMisses:        cs.Misses,
		BandRevalidations: cs.Revalidations,
		GreedyPlans:       cs.GreedyPlans,
		GreedyFallbacks:   cs.Fallbacks,
	}
}
