package pioqo_test

import (
	"fmt"
	"log"

	"pioqo"
)

// The engine is deterministic end to end — same seed, same virtual-time
// results — so these examples assert their output exactly.

func Example() {
	sys := pioqo.New(pioqo.Config{Device: pioqo.SSD, PoolPages: 2048})
	tab, err := sys.CreateTable("orders", 100_000, 33, pioqo.WithSyntheticData())
	if err != nil {
		log.Fatal(err)
	}
	if _, err := sys.Calibrate(pioqo.CalibrationOptions{}); err != nil {
		log.Fatal(err)
	}
	res, err := sys.Execute(pioqo.Query{Table: tab, Low: 0, High: 999}, pioqo.Cold())
	if err != nil {
		log.Fatal(err)
	}
	// Synthetic keys are a permutation: the 1000-key range matches exactly
	// 1000 rows, through whatever plan the optimizer picked.
	fmt.Println(res.Rows, res.Plan.Method)
	// Output: 1000 IndexScan
}

func ExampleSystem_Plan() {
	sys := pioqo.New(pioqo.Config{Device: pioqo.SSD, PoolPages: 2048})
	tab, err := sys.CreateTable("t", 100_000, 33, pioqo.WithSyntheticData())
	if err != nil {
		log.Fatal(err)
	}
	if _, err := sys.Calibrate(pioqo.CalibrationOptions{}); err != nil {
		log.Fatal(err)
	}
	q := pioqo.Query{Table: tab, Low: 0, High: 99}

	oldPlan, _ := sys.Plan(q, pioqo.PlanOptions{DepthOblivious: true})
	newPlan, _ := sys.Plan(q, pioqo.PlanOptions{})
	fmt.Printf("DTT:  %v degree %d\n", oldPlan.Method, oldPlan.Degree)
	fmt.Printf("QDTT: %v degree %d\n", newPlan.Method, newPlan.Degree)
	// Output:
	// DTT:  IndexScan degree 1
	// QDTT: IndexScan degree 16
}

func ExampleSystem_ExecuteGroupBy() {
	sys := pioqo.New(pioqo.Config{Device: pioqo.SSD, PoolPages: 2048})
	tab, err := sys.CreateTable("t", 50_000, 33, pioqo.WithSyntheticData())
	if err != nil {
		log.Fatal(err)
	}
	if _, err := sys.Calibrate(pioqo.CalibrationOptions{}); err != nil {
		log.Fatal(err)
	}
	res, err := sys.ExecuteGroupBy(pioqo.GroupByQuery{
		Table: tab, Low: 0, High: 2999, GroupWidth: 1000, Agg: pioqo.Count,
	}, pioqo.Cold())
	if err != nil {
		log.Fatal(err)
	}
	for _, g := range res.Groups {
		fmt.Printf("group %d: %d rows\n", g.Key, g.Value)
	}
	// Output:
	// group 0: 1000 rows
	// group 1: 1000 rows
	// group 2: 1000 rows
}
