package cost

import (
	"encoding/json"
	"strings"
	"testing"
)

func TestQDTTJSONRoundTrip(t *testing.T) {
	orig := sampleQDTT()
	data, err := json.Marshal(orig)
	if err != nil {
		t.Fatal(err)
	}
	var loaded QDTT
	if err := json.Unmarshal(data, &loaded); err != nil {
		t.Fatal(err)
	}
	for _, band := range []int64{1, 50, 100, 5050, 10000, 99999} {
		for _, depth := range []int{1, 3, 8, 32} {
			if got, want := loaded.PageCost(band, depth), orig.PageCost(band, depth); got != want {
				t.Errorf("PageCost(%d,%d) = %f after round trip, want %f", band, depth, got, want)
			}
		}
	}
}

func TestQDTTUnmarshalRejectsBadData(t *testing.T) {
	cases := []string{
		`not json`,
		`{"version": 2, "bands": [1], "depths": [1], "cost_us_per_page": [[1]]}`,
		`{"version": 1, "bands": [], "depths": [1], "cost_us_per_page": [[]]}`,
		`{"version": 1, "bands": [2, 1], "depths": [1], "cost_us_per_page": [[1, 1]]}`,
		`{"version": 1, "bands": [1], "depths": [1, 1], "cost_us_per_page": [[1], [1]]}`,
		`{"version": 1, "bands": [1], "depths": [1], "cost_us_per_page": [[-5]]}`,
		`{"version": 1, "bands": [1, 2], "depths": [1], "cost_us_per_page": [[1]]}`,
	}
	for _, raw := range cases {
		var m QDTT
		if err := json.Unmarshal([]byte(raw), &m); err == nil {
			t.Errorf("unmarshal of %q succeeded", raw)
		}
	}
}

func TestQDTTJSONIncludesVersion(t *testing.T) {
	data, err := json.Marshal(sampleQDTT())
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), `"version":1`) {
		t.Errorf("serialized form lacks version: %s", data)
	}
}
