// Package cost implements the paper's I/O cost models: the classic
// disk-transfer-time model (DTT, §4.1), which maps a band size to the
// amortized cost of one random page read, and the paper's contribution, the
// queue-depth-aware model (QDTT, §4.2), which additionally takes the device
// I/O queue depth. Both are piecewise-linear tables produced by calibration
// (see internal/calibrate) and evaluated with (bi)linear interpolation
// (§4.5). The package also provides the expected-page-fetch estimators
// (Yao's formula with a buffer-pool correction) that turn row counts into
// page I/O counts.
package cost

import (
	"fmt"
	"math"
	"sort"
)

// Model prices one page read. Band is the size, in pages, of the area the
// random I/Os are issued over (band 1 ≡ sequential); depth is the device
// I/O queue depth the operator will generate. The returned cost is the
// amortized microseconds per page.
type Model interface {
	PageCost(band int64, depth int) float64
}

// DTT is the band-size-only model: cost curves calibrated at queue depth 1.
// It is SQL Anywhere's original model and the paper's baseline ("old
// optimizer").
type DTT struct {
	bands []int64
	cost  []float64 // µs per page, parallel to bands
}

// NewDTT builds a model from calibrated (band, µs) points. Bands must be
// positive and strictly ascending.
func NewDTT(bands []int64, cost []float64) *DTT {
	if len(bands) == 0 || len(bands) != len(cost) {
		panic(fmt.Sprintf("cost: %d bands, %d costs", len(bands), len(cost)))
	}
	for i := range bands {
		if bands[i] <= 0 || (i > 0 && bands[i] <= bands[i-1]) {
			panic(fmt.Sprintf("cost: bands not ascending at %d: %v", i, bands))
		}
		if cost[i] < 0 || math.IsNaN(cost[i]) {
			panic(fmt.Sprintf("cost: invalid cost %f at band %d", cost[i], bands[i]))
		}
	}
	return &DTT{bands: append([]int64(nil), bands...), cost: append([]float64(nil), cost...)}
}

// Bands returns the calibrated band grid.
func (d *DTT) Bands() []int64 { return d.bands }

// PageCost implements Model. DTT ignores the queue depth — that is exactly
// the deficiency the QDTT model repairs.
func (d *DTT) PageCost(band int64, depth int) float64 {
	return interpBand(d.bands, d.cost, band)
}

// interpBand linearly interpolates cost over the band grid, clamping
// outside the calibrated range.
func interpBand(bands []int64, cost []float64, band int64) float64 {
	if band <= bands[0] {
		return cost[0]
	}
	n := len(bands)
	if band >= bands[n-1] {
		return cost[n-1]
	}
	i := sort.Search(n, func(j int) bool { return bands[j] >= band })
	lo, hi := bands[i-1], bands[i]
	frac := float64(band-lo) / float64(hi-lo)
	return cost[i-1] + frac*(cost[i]-cost[i-1])
}

// QDTT is the queue-depth-aware disk-transfer-time model: a grid of
// calibrated costs over (band, depth). Depths are calibrated exponentially
// (1, 2, 4, ..., per §4.5) and interpolated linearly in between — first
// along band, then along depth (bilinear interpolation).
type QDTT struct {
	bands  []int64
	depths []int
	cost   [][]float64 // [depthIdx][bandIdx], µs per page
}

// NewQDTT builds a model from a calibrated grid. Bands and depths must be
// strictly ascending; cost rows are indexed by depth then band.
func NewQDTT(bands []int64, depths []int, cost [][]float64) *QDTT {
	if len(depths) == 0 || len(depths) != len(cost) {
		panic(fmt.Sprintf("cost: %d depths, %d cost rows", len(depths), len(cost)))
	}
	for i, d := range depths {
		if d <= 0 || (i > 0 && d <= depths[i-1]) {
			panic(fmt.Sprintf("cost: depths not ascending: %v", depths))
		}
	}
	q := &QDTT{
		bands:  append([]int64(nil), bands...),
		depths: append([]int(nil), depths...),
	}
	for i, row := range cost {
		// Validate every row through the DTT constructor's checks.
		NewDTT(bands, row)
		q.cost = append(q.cost, append([]float64(nil), cost[i]...))
	}
	return q
}

// Bands returns the calibrated band grid.
func (q *QDTT) Bands() []int64 { return q.bands }

// Depths returns the calibrated queue-depth grid.
func (q *QDTT) Depths() []int { return q.depths }

// PageCost implements Model: bilinear interpolation, band first, then queue
// depth, clamped outside the grid.
func (q *QDTT) PageCost(band int64, depth int) float64 {
	if depth <= q.depths[0] {
		return interpBand(q.bands, q.cost[0], band)
	}
	n := len(q.depths)
	if depth >= q.depths[n-1] {
		return interpBand(q.bands, q.cost[n-1], band)
	}
	i := sort.Search(n, func(j int) bool { return q.depths[j] >= depth })
	lo, hi := q.depths[i-1], q.depths[i]
	cLo := interpBand(q.bands, q.cost[i-1], band)
	cHi := interpBand(q.bands, q.cost[i], band)
	frac := float64(depth-lo) / float64(hi-lo)
	return cLo + frac*(cHi-cLo)
}

// DepthOne returns the queue-depth-1 slice of the model — the DTT model a
// depth-oblivious optimizer would use. This is how the experiments hold
// everything equal between the "old" and "new" optimizers except queue-depth
// awareness.
func (q *QDTT) DepthOne() *DTT {
	return NewDTT(q.bands, q.cost[0])
}

// MaxBeneficialDepth reports the largest calibrated depth that still
// improved the given band's cost by at least minGain (e.g. 0.05 = 5%) over
// the previous calibrated depth. Optimizers use it to avoid requesting
// useless parallelism on devices that cannot exploit it.
func (q *QDTT) MaxBeneficialDepth(band int64, minGain float64) int {
	best := q.depths[0]
	for i := 1; i < len(q.depths); i++ {
		prev := interpBand(q.bands, q.cost[i-1], band)
		cur := interpBand(q.bands, q.cost[i], band)
		if prev <= 0 || (prev-cur)/prev < minGain {
			break
		}
		best = q.depths[i]
	}
	return best
}
