package cost

import "math"

// YaoDistinctPages returns the expected number of distinct pages touched
// when k rows are drawn uniformly without replacement from a table of
// `pages` pages holding rowsPerPage rows each (Yao's formula; the paper
// cites Yue & Wong's analysis of the same quantity).
//
//	E = m · (1 − C(N−n, k) / C(N, k))
//
// with m pages, n rows/page, N = m·n rows, evaluated in log-gamma space so
// it is stable for multi-million-row tables.
func YaoDistinctPages(k, pages int64, rowsPerPage int) float64 {
	if k <= 0 || pages <= 0 {
		return 0
	}
	m := float64(pages)
	n := int64(rowsPerPage)
	N := pages * n
	if k >= N-n+1 {
		return m // every page must be touched
	}
	// ln C(N−n, k) − ln C(N, k)
	logRatio := lnChoose(N-n, k) - lnChoose(N, k)
	return m * (1 - math.Exp(logRatio))
}

// lnChoose returns ln C(n, k) for 0 <= k <= n.
func lnChoose(n, k int64) float64 {
	lg := func(x int64) float64 {
		v, _ := math.Lgamma(float64(x) + 1)
		return v
	}
	return lg(n) - lg(k) - lg(n-k)
}

// ExpectedFetches estimates the number of page *reads* an index scan
// performs when it visits k rows in index-key order on a table of `pages`
// pages (rowsPerPage rows each) through a buffer pool of poolPages frames.
//
// While the pool still has room, re-visits to an already-touched page are
// hits, so reads follow Yao's distinct-page curve. Once the distinct pages
// touched exceed the pool, evicted pages miss again on re-reference: for a
// uniformly scattered access pattern each subsequent row faults with
// probability ≈ (pages − poolPages)/pages. This two-phase approximation is
// in the spirit of the buffer-aware corrections commercial optimizers apply
// to Yao's formula, and reproduces the paper's observation that with a
// small pool an index scan can read *more* pages than the table holds.
func ExpectedFetches(k, pages int64, rowsPerPage int, poolPages int64) float64 {
	if k <= 0 || pages <= 0 {
		return 0
	}
	distinct := YaoDistinctPages(k, pages, rowsPerPage)
	if poolPages >= pages || distinct <= float64(poolPages) {
		return distinct
	}
	// kWarm: rows visited by the time the pool fills (Yao curve crosses the
	// pool size). Yao is monotone in k, so binary search.
	lo, hi := int64(1), k
	for lo < hi {
		mid := (lo + hi) / 2
		if YaoDistinctPages(mid, pages, rowsPerPage) < float64(poolPages) {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	kWarm := lo
	missRate := float64(pages-poolPages) / float64(pages)
	return float64(poolPages) + float64(k-kWarm)*missRate
}
