package cost

import (
	"encoding/json"
	"fmt"
)

// qdttJSON is the serialized form of a QDTT model. Versioning the format
// lets deployments persist a calibration (which can take minutes of device
// time on spinning media) and reload it at startup, recalibrating only
// when hardware changes.
type qdttJSON struct {
	Version int         `json:"version"`
	Bands   []int64     `json:"bands"`
	Depths  []int       `json:"depths"`
	Cost    [][]float64 `json:"cost_us_per_page"`
}

const qdttFormatVersion = 1

// MarshalJSON implements json.Marshaler.
func (q *QDTT) MarshalJSON() ([]byte, error) {
	return json.Marshal(qdttJSON{
		Version: qdttFormatVersion,
		Bands:   q.bands,
		Depths:  q.depths,
		Cost:    q.cost,
	})
}

// UnmarshalJSON implements json.Unmarshaler, validating the grid with the
// same checks the constructor applies.
func (q *QDTT) UnmarshalJSON(data []byte) error {
	var raw qdttJSON
	if err := json.Unmarshal(data, &raw); err != nil {
		return fmt.Errorf("cost: decoding QDTT: %w", err)
	}
	if raw.Version != qdttFormatVersion {
		return fmt.Errorf("cost: QDTT format version %d, want %d", raw.Version, qdttFormatVersion)
	}
	loaded, err := safeNewQDTT(raw.Bands, raw.Depths, raw.Cost)
	if err != nil {
		return err
	}
	*q = *loaded
	return nil
}

// safeNewQDTT converts the constructor's panics on malformed grids into
// errors, for data arriving from outside the process.
func safeNewQDTT(bands []int64, depths []int, cost [][]float64) (q *QDTT, err error) {
	defer func() {
		if r := recover(); r != nil {
			q, err = nil, fmt.Errorf("cost: invalid QDTT grid: %v", r)
		}
	}()
	return NewQDTT(bands, depths, cost), nil
}
