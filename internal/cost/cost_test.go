package cost

import (
	"math"
	"testing"
	"testing/quick"
)

func sampleQDTT() *QDTT {
	bands := []int64{1, 100, 10000}
	depths := []int{1, 2, 4, 8}
	cost := [][]float64{
		{10, 100, 200}, // qd 1
		{10, 60, 110},  // qd 2
		{10, 35, 60},   // qd 4
		{10, 25, 40},   // qd 8
	}
	return NewQDTT(bands, depths, cost)
}

func TestDTTExactPoints(t *testing.T) {
	d := NewDTT([]int64{1, 100, 10000}, []float64{10, 100, 200})
	for i, band := range d.Bands() {
		want := []float64{10, 100, 200}[i]
		if got := d.PageCost(band, 1); got != want {
			t.Errorf("PageCost(%d) = %f, want %f", band, got, want)
		}
	}
}

func TestDTTInterpolatesBetweenBands(t *testing.T) {
	d := NewDTT([]int64{100, 200}, []float64{10, 30})
	if got := d.PageCost(150, 1); got != 20 {
		t.Errorf("midpoint cost = %f, want 20", got)
	}
	if got := d.PageCost(125, 1); got != 15 {
		t.Errorf("quarter cost = %f, want 15", got)
	}
}

func TestDTTClampsOutsideRange(t *testing.T) {
	d := NewDTT([]int64{100, 200}, []float64{10, 30})
	if got := d.PageCost(1, 1); got != 10 {
		t.Errorf("below range = %f, want clamp to 10", got)
	}
	if got := d.PageCost(99999, 1); got != 30 {
		t.Errorf("above range = %f, want clamp to 30", got)
	}
}

func TestDTTIgnoresDepth(t *testing.T) {
	d := NewDTT([]int64{1, 1000}, []float64{10, 100})
	if d.PageCost(500, 1) != d.PageCost(500, 32) {
		t.Error("DTT cost varies with depth; it must not")
	}
}

func TestQDTTExactGridPoints(t *testing.T) {
	q := sampleQDTT()
	if got := q.PageCost(100, 2); got != 60 {
		t.Errorf("grid point (100, 2) = %f, want 60", got)
	}
	if got := q.PageCost(10000, 8); got != 40 {
		t.Errorf("grid point (10000, 8) = %f, want 40", got)
	}
}

func TestQDTTBilinearInterpolation(t *testing.T) {
	q := sampleQDTT()
	// depth 3 halfway between 2 and 4 at band 100: (60+35)/2.
	if got, want := q.PageCost(100, 3), 47.5; math.Abs(got-want) > 1e-9 {
		t.Errorf("PageCost(100, 3) = %f, want %f", got, want)
	}
	// band 5050 midway between 100 and 10000 at depth 2: (60+110)/2.
	if got, want := q.PageCost(5050, 2), 85.0; math.Abs(got-want) > 1e-9 {
		t.Errorf("PageCost(5050, 2) = %f, want %f", got, want)
	}
}

func TestQDTTClampsDepth(t *testing.T) {
	q := sampleQDTT()
	if got := q.PageCost(100, 32); got != 25 {
		t.Errorf("depth above grid = %f, want clamp to 25", got)
	}
	if got := q.PageCost(100, 0); got != 100 {
		t.Errorf("depth below grid = %f, want clamp to 100", got)
	}
}

func TestDepthOneMatchesDTTRow(t *testing.T) {
	q := sampleQDTT()
	d := q.DepthOne()
	for _, band := range []int64{1, 50, 100, 5000, 10000} {
		if d.PageCost(band, 1) != q.PageCost(band, 1) {
			t.Errorf("DepthOne differs from QDTT at band %d", band)
		}
	}
}

func TestMaxBeneficialDepth(t *testing.T) {
	q := sampleQDTT()
	// At band 100 every doubling helps by >5%: best = 8.
	if got := q.MaxBeneficialDepth(100, 0.05); got != 8 {
		t.Errorf("MaxBeneficialDepth(100) = %d, want 8", got)
	}
	// At band 1 cost is flat: no benefit beyond depth 1.
	if got := q.MaxBeneficialDepth(1, 0.05); got != 1 {
		t.Errorf("MaxBeneficialDepth(1) = %d, want 1", got)
	}
}

func TestNewDTTRejectsBadInput(t *testing.T) {
	cases := []struct {
		bands []int64
		cost  []float64
	}{
		{[]int64{}, []float64{}},
		{[]int64{1, 2}, []float64{1}},
		{[]int64{2, 1}, []float64{1, 1}},
		{[]int64{0, 1}, []float64{1, 1}},
		{[]int64{1, 2}, []float64{1, -5}},
		{[]int64{1, 2}, []float64{1, math.NaN()}},
	}
	for i, c := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: no panic", i)
				}
			}()
			NewDTT(c.bands, c.cost)
		}()
	}
}

func TestNewQDTTRejectsBadDepths(t *testing.T) {
	for _, depths := range [][]int{{}, {0}, {2, 1}, {1, 1}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("depths %v: no panic", depths)
				}
			}()
			rows := make([][]float64, len(depths))
			for i := range rows {
				rows[i] = []float64{1}
			}
			NewQDTT([]int64{1}, depths, rows)
		}()
	}
}

func TestYaoSmallCases(t *testing.T) {
	// 1 row per page: k rows touch exactly k pages.
	if got := YaoDistinctPages(5, 100, 1); math.Abs(got-5) > 1e-9 {
		t.Errorf("Yao(k=5, 1 rpp) = %f, want 5", got)
	}
	// Selecting every row touches every page.
	if got := YaoDistinctPages(3300, 100, 33); math.Abs(got-100) > 1e-6 {
		t.Errorf("Yao(all rows) = %f, want 100", got)
	}
	if got := YaoDistinctPages(0, 100, 33); got != 0 {
		t.Errorf("Yao(k=0) = %f, want 0", got)
	}
}

func TestYaoApproachesAllPagesQuicklyForWidePages(t *testing.T) {
	// §2: with many rows per page, "even at small selectivity, the number
	// of pages that must be fetched quickly approaches 100% of the table".
	pages := int64(1000)
	kOnePercent := int64(5000) // 1% of 500k rows
	got := YaoDistinctPages(kOnePercent, pages, 500)
	if got < 0.98*float64(pages) {
		t.Errorf("Yao(1%% of rows, 500 rpp) = %f pages, want ~all %d", got, pages)
	}
}

func TestYaoMonotoneInK(t *testing.T) {
	prev := 0.0
	for k := int64(1); k < 10000; k *= 2 {
		got := YaoDistinctPages(k, 500, 33)
		if got < prev {
			t.Fatalf("Yao not monotone at k=%d: %f < %f", k, got, prev)
		}
		prev = got
	}
}

func TestExpectedFetchesNoEvictionEqualsYao(t *testing.T) {
	got := ExpectedFetches(1000, 500, 33, 500)
	want := YaoDistinctPages(1000, 500, 33)
	if math.Abs(got-want) > 1e-9 {
		t.Errorf("fetches with ample pool = %f, want Yao %f", got, want)
	}
}

func TestExpectedFetchesExceedsTableUnderSmallPool(t *testing.T) {
	// §2: with a small pool and high selectivity, "the total number of
	// pages fetched using IS can be potentially even more than the number
	// of pages fetched using FTS".
	pages := int64(2000)
	k := int64(60000) // ~90% of rows at 33 rpp
	got := ExpectedFetches(k, pages, 33, 100)
	if got <= float64(pages) {
		t.Errorf("fetches = %f, want > table size %d", got, pages)
	}
}

func TestExpectedFetchesMonotoneInPool(t *testing.T) {
	prev := math.Inf(1)
	for _, pool := range []int64{10, 100, 500, 1000, 2000} {
		got := ExpectedFetches(30000, 2000, 33, pool)
		if got > prev {
			t.Fatalf("fetches increased with pool %d: %f > %f", pool, got, prev)
		}
		prev = got
	}
}

// Property: QDTT interpolation always lies within the envelope of the grid
// costs, for any query point.
func TestPropertyInterpolationWithinEnvelope(t *testing.T) {
	q := sampleQDTT()
	lo, hi := 10.0, 200.0 // min and max of the sample grid
	f := func(bandRaw uint32, depthRaw uint8) bool {
		band := int64(bandRaw%20000) + 1
		depth := int(depthRaw%40) + 1
		c := q.PageCost(band, depth)
		return c >= lo-1e-9 && c <= hi+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: Yao never exceeds min(k, pages) and is never negative.
func TestPropertyYaoBounds(t *testing.T) {
	f := func(kRaw, pagesRaw uint16, rppRaw uint16) bool {
		k := int64(kRaw) + 1
		pages := int64(pagesRaw) + 1
		rpp := int(rppRaw%500) + 1
		if k > pages*int64(rpp) {
			k = pages * int64(rpp)
		}
		got := YaoDistinctPages(k, pages, rpp)
		return got >= 0 && got <= float64(pages)+1e-9 && got <= float64(k)+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
