// Package node bundles one simulated cluster node's storage stack: the
// device (always behind a fault injector, optionally behind a straggler
// hedger), its disk-extent manager, buffer pool, scan-share registry, and
// CPU resource, plus the lazily attached resource broker.
//
// The engine's ownership structure is "a System owns N nodes": every layer
// that used to reach for *the* device or *the* pool now addresses a node.
// Assembly of the storage stack happens here and only here —
// scripts/verify.sh rejects direct workload.NewDevice / buffer.NewPool /
// disk.NewManager / fault.Wrap calls in the public package — so the
// single-node engine is exactly the one-node special case of the cluster.
//
// All nodes of a System share one sim.Env: the cluster runs on one virtual
// clock, and cross-node concurrency (scatter-gather fan-out) is ordinary
// process concurrency in that clock. A one-node System constructs its node
// with the same call sequence the pre-cluster engine used, so Shards=1
// zero-fault runs are byte-identical to the single-device builds.
package node

import (
	"fmt"

	"pioqo/internal/broker"
	"pioqo/internal/buffer"
	"pioqo/internal/device"
	"pioqo/internal/disk"
	"pioqo/internal/fault"
	"pioqo/internal/obs/event"
	"pioqo/internal/sim"
	"pioqo/internal/workload"
)

// Config sizes one node.
type Config struct {
	// Kind is the storage model to attach. Every node of a cluster runs
	// the same device kind, so one calibration pass (on node 0) prices
	// I/O for all of them.
	Kind workload.DeviceKind

	// PoolPages is this node's buffer pool size in 4 KiB frames.
	PoolPages int

	// Cores is the node's logical core count.
	Cores int

	// Shares enables the node's circulating-scan registry.
	Shares bool

	// HedgeDelay, when positive, wraps the node's device in a straggler
	// hedger with that re-issue threshold. The hedger is built disarmed —
	// a pure passthrough — and armed by the gather executor for the
	// duration of a scatter-gather query (see fault.Hedger).
	HedgeDelay sim.Duration
}

// Node is one simulated cluster node. Fields are exported for the engine
// layers that address node-local resources; construction goes through New.
type Node struct {
	ID int

	// Dev is the device queries read: the hedger when hedging is
	// configured, the bare injector otherwise.
	Dev device.Device

	// Inj is the fault injector wrapping the raw device — the node's
	// fault-injection domain. Unarmed it is pure passthrough.
	Inj *fault.Injector

	// Hedge is the straggler hedger between Dev and Inj, nil when the
	// node was built without one.
	Hedge *fault.Hedger

	Manager *disk.Manager
	Pool    *buffer.Pool

	// Shares is the node's circulating-scan registry, nil when disabled.
	Shares *buffer.Shares

	// CPU is the node's core pool; each node executes its shard's workers
	// on its own cores.
	CPU *sim.Resource

	// Broker is the node's resource-governance layer, attached lazily by
	// the engine once a calibrated model exists (the credit supply is the
	// model's beneficial queue depth over this node's band).
	Broker *broker.Broker
}

// New assembles a node on env. For id 0 the construction sequence —
// device, injector, manager, pool, CPU resource, then (optionally) the
// share registry — replicates the pre-cluster engine's assembly order
// exactly, which is what keeps one-node systems byte-identical to it.
func New(env *sim.Env, id int, cfg Config) *Node {
	inj := fault.Wrap(env, workload.NewDevice(env, cfg.Kind))
	n := &Node{ID: id, Dev: inj, Inj: inj}
	if cfg.HedgeDelay > 0 {
		n.Hedge = fault.NewHedger(env, inj, cfg.HedgeDelay)
		n.Dev = n.Hedge
	}
	// The manager sits above the hedger so every page read a scan issues is
	// hedgeable; a disarmed hedger forwards completions untouched.
	n.Manager = disk.NewManager(n.Dev)
	n.Pool = buffer.NewPool(env, cfg.PoolPages)
	n.CPU = sim.NewResource(env, cpuName(id), cfg.Cores)
	if cfg.Shares {
		n.Shares = buffer.NewShares(env, n.Pool, buffer.ShareConfig{})
	}
	return n
}

// cpuName keeps node 0's resource name identical to the pre-cluster
// engine's ("cpu"); other nodes get a suffixed name for trace readability.
func cpuName(id int) string {
	if id == 0 {
		return "cpu"
	}
	return fmt.Sprintf("cpu@%d", id)
}

// SetEventLog installs (or removes) the engine event log on every emitting
// layer this node owns. The broker, when attached, is handled by the
// engine, which also hands the log to brokers at build time.
func (n *Node) SetEventLog(l *event.Log) {
	n.Inj.SetLog(l)
	n.Pool.SetEventLog(l)
	if n.Hedge != nil {
		n.Hedge.SetLog(l)
	}
	if n.Shares != nil {
		n.Shares.SetEventLog(l)
	}
}

// DevicePages reports the node's device capacity in pages — the band its
// broker and per-shard plans are priced over.
func (n *Node) DevicePages() int64 { return n.Dev.Size() / disk.PageSize }
