package node

import (
	"testing"

	"pioqo/internal/sim"
	"pioqo/internal/workload"
)

// TestNodeAssembly: the node owns a complete storage stack, with the
// hedger (when configured) in the manager's read path so scans are
// hedgeable, and the injector always at the bottom as the fault domain.
func TestNodeAssembly(t *testing.T) {
	env := sim.NewEnv(1)
	plain := New(env, 0, Config{Kind: workload.SSD, PoolPages: 256, Cores: 8})
	if plain.Hedge != nil {
		t.Error("node without HedgeDelay grew a hedger")
	}
	if plain.Dev != plain.Inj {
		t.Error("unhedged node's Dev is not the injector")
	}
	if plain.Manager.Device() != plain.Dev {
		t.Error("manager reads bypass the node's Dev")
	}
	if plain.Shares != nil {
		t.Error("Shares built without being requested")
	}
	if cpuName(0) != "cpu" {
		t.Errorf("node 0 CPU resource named %q, want \"cpu\" (pre-cluster byte-identity)", cpuName(0))
	}
	if plain.Pool.Capacity() != 256 {
		t.Errorf("pool capacity %d, want 256", plain.Pool.Capacity())
	}
	if plain.DevicePages() <= 0 {
		t.Error("DevicePages not positive")
	}

	hedged := New(env, 3, Config{Kind: workload.SSD, PoolPages: 256, Cores: 8,
		Shares: true, HedgeDelay: sim.Duration(sim.Millisecond)})
	if hedged.Hedge == nil || hedged.Dev != hedged.Hedge {
		t.Fatal("HedgeDelay did not put the hedger on Dev")
	}
	if hedged.Manager.Device() != hedged.Hedge {
		t.Error("manager reads bypass the hedger: scans would be unhedgeable")
	}
	if hedged.Hedge.Armed() {
		t.Error("hedger built armed; must start as passthrough")
	}
	if hedged.Shares == nil {
		t.Error("Shares requested but not built")
	}
	if cpuName(3) != "cpu@3" {
		t.Errorf("node 3 CPU resource named %q, want \"cpu@3\"", cpuName(3))
	}
}

// TestNodeConstructionIsInert: assembling extra nodes must neither advance
// the clock nor schedule events — that is what keeps a one-node system
// byte-identical to the pre-cluster engine and lets a cluster share one
// env safely.
func TestNodeConstructionIsInert(t *testing.T) {
	env := sim.NewEnv(1)
	for i := 0; i < 4; i++ {
		New(env, i, Config{Kind: workload.SSD, PoolPages: 128, Cores: 4,
			HedgeDelay: sim.Duration(sim.Millisecond)})
	}
	if env.Now() != 0 {
		t.Errorf("node construction advanced the clock to %d", env.Now())
	}
	if end := env.Run(); end != 0 {
		t.Errorf("node construction left scheduled events; Run advanced to %d", end)
	}
}
