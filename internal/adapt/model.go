package adapt

import (
	"sort"

	"pioqo/internal/calibrate"
)

// Model is the small offline DOP model: a per-band table of measured
// per-page costs by queue depth, fit from calibrate.Sweep points for one
// device kind. It predicts the initial parallel degree an adaptive
// execution should start from — the deepest depth on the query's
// selectivity band whose marginal speedup still clears a threshold — so
// the feedback controller begins its climb next to the optimum instead of
// at the static plan's guess.
type Model struct {
	// Bands is the ascending band grid (run length in pages) the sweep
	// measured; Depths the ascending depth grid. Cost[i][j] is the measured
	// mean µs/page for Bands[i] at Depths[j]; 0 marks an unmeasured cell.
	Bands  []int64
	Depths []int
	Cost   [][]float64
}

// minMarginalGain is the fit threshold: a depth step must still speed the
// band up by this fraction to advance the predicted degree. It mirrors the
// QDTT's beneficial-depth cutoff.
const minMarginalGain = 0.05

// Fit builds the model from sweep points. Points from repeated runs of the
// same (band, depth) cell average; an empty or nil point set returns nil,
// which InitialDegree treats as "no model — fall back to the static plan".
func Fit(points []calibrate.Point) *Model {
	if len(points) == 0 {
		return nil
	}
	bandSet := map[int64]bool{}
	depthSet := map[int]bool{}
	for _, pt := range points {
		bandSet[pt.Band] = true
		depthSet[pt.Depth] = true
	}
	m := &Model{}
	for b := range bandSet {
		m.Bands = append(m.Bands, b)
	}
	for d := range depthSet {
		m.Depths = append(m.Depths, d)
	}
	sort.Slice(m.Bands, func(i, j int) bool { return m.Bands[i] < m.Bands[j] })
	sort.Ints(m.Depths)
	bi := map[int64]int{}
	di := map[int]int{}
	for i, b := range m.Bands {
		bi[b] = i
	}
	for j, d := range m.Depths {
		di[d] = j
	}
	sum := make([][]float64, len(m.Bands))
	n := make([][]int, len(m.Bands))
	m.Cost = make([][]float64, len(m.Bands))
	for i := range sum {
		sum[i] = make([]float64, len(m.Depths))
		n[i] = make([]int, len(m.Depths))
		m.Cost[i] = make([]float64, len(m.Depths))
	}
	for _, pt := range points {
		i, j := bi[pt.Band], di[pt.Depth]
		sum[i][j] += pt.MicrosPerPage
		n[i][j]++
	}
	for i := range m.Cost {
		for j := range m.Cost[i] {
			if n[i][j] > 0 {
				m.Cost[i][j] = sum[i][j] / float64(n[i][j])
			}
		}
	}
	return m
}

// InitialDegree predicts the starting degree for a query expected to touch
// touchPages pages: walk the nearest measured band's depth curve while each
// step's marginal gain clears minMarginalGain. A nil or empty model returns
// fallback (the static plan's degree); the result is clamped to [1, max].
func (m *Model) InitialDegree(touchPages int64, fallback, max int) int {
	clamp := func(d int) int {
		if d < 1 {
			d = 1
		}
		if max > 0 && d > max {
			d = max
		}
		return d
	}
	if m == nil || len(m.Bands) == 0 || len(m.Depths) == 0 {
		return clamp(fallback)
	}
	// The query's touch set behaves like the smallest measured band that
	// covers it (larger runs amortize seeks at least as well); the largest
	// band stands in when the touch set exceeds the grid.
	bi := len(m.Bands) - 1
	for i, b := range m.Bands {
		if b >= touchPages {
			bi = i
			break
		}
	}
	row := m.Cost[bi]
	deg := 0
	var prev float64
	for j, c := range row {
		if c <= 0 {
			continue
		}
		if deg == 0 {
			deg = m.Depths[j]
			prev = c
			continue
		}
		if prev/c >= 1+minMarginalGain {
			deg = m.Depths[j]
			prev = c
			continue
		}
		break
	}
	if deg == 0 {
		return clamp(fallback)
	}
	return clamp(deg)
}
