package adapt

import (
	"testing"

	"pioqo/internal/buffer"
	"pioqo/internal/calibrate"
	"pioqo/internal/device"
	"pioqo/internal/disk"
	"pioqo/internal/sim"
)

// fakeGrower grants up to its remaining credits.
type fakeGrower struct {
	avail   int
	granted int
}

func (g *fakeGrower) Grow(n int) int {
	if n > g.avail {
		n = g.avail
	}
	g.avail -= n
	g.granted += n
	return n
}

// drive runs fn inside a proc so Tick sees advancing virtual time.
func drive(t *testing.T, fn func(env *sim.Env, p *sim.Proc)) {
	t.Helper()
	env := sim.NewEnv(1)
	env.Go("drive", func(p *sim.Proc) { fn(env, p) })
	env.Run()
}

// tickUntil advances virtual time in interval-sized steps, feeding pages
// between ticks, until the controller's target changes or maxSteps pass.
func tickUntil(p *sim.Proc, c *Controller, live int, pagesPerStep int64, maxSteps int) int {
	start := c.Target()
	for i := 0; i < maxSteps; i++ {
		for j := int64(0); j < pagesPerStep; j++ {
			c.pages++
		}
		p.Sleep(c.interval)
		if got := c.Tick(live); got != start {
			return got
		}
	}
	return c.Target()
}

func TestControllerGrowsTowardCap(t *testing.T) {
	drive(t, func(env *sim.Env, p *sim.Proc) {
		g := &fakeGrower{avail: 64}
		c := NewController(Config{
			Env: env, Initial: 1, Planned: 1, Max: 8, Lease: g,
		})
		// Constant per-worker throughput: every grow pays, so the climb
		// should reach the cap.
		for step := 0; step < 40 && c.Target() < 8; step++ {
			live := c.Target()
			for j := int64(0); j < int64(32*live); j++ {
				c.pages++
			}
			p.Sleep(c.interval)
			c.Tick(live)
		}
		if c.Target() != 8 {
			t.Fatalf("target = %d, want cap 8", c.Target())
		}
		if g.granted < 7 {
			t.Fatalf("granted %d credits, want every step above 1 leased", g.granted)
		}
	})
}

func TestControllerGrowthBoundedByLease(t *testing.T) {
	drive(t, func(env *sim.Env, p *sim.Proc) {
		g := &fakeGrower{avail: 2} // broker can only re-lease 2 credits
		c := NewController(Config{
			Env: env, Initial: 2, Planned: 2, Max: 16, Lease: g,
		})
		for step := 0; step < 40; step++ {
			live := c.Target()
			for j := int64(0); j < int64(32*live); j++ {
				c.pages++
			}
			p.Sleep(c.interval)
			c.Tick(live)
		}
		if c.Target() > 4 {
			t.Fatalf("target = %d grew beyond initial+leased (2+2)", c.Target())
		}
	})
}

func TestControllerShrinksPastBeneficialDepth(t *testing.T) {
	drive(t, func(env *sim.Env, p *sim.Proc) {
		c := NewController(Config{
			Env: env, Initial: 16, Planned: 16, Max: 32, Beneficial: 4,
		})
		got := tickUntil(p, c, 16, 32*16, 10)
		if got != 4 {
			t.Fatalf("target = %d, want shed to beneficial depth 4", got)
		}
	})
}

func TestControllerRevertsUnpaidGrow(t *testing.T) {
	drive(t, func(env *sim.Env, p *sim.Proc) {
		c := NewController(Config{Env: env, Initial: 4, Planned: 4, Max: 32})
		// Saturated device: throughput stays flat no matter the degree.
		const flat = 256
		var target int
		for step := 0; step < 60; step++ {
			target = c.Target()
			for j := int64(0); j < int64(flat); j++ {
				c.pages++
			}
			p.Sleep(c.interval)
			c.Tick(target)
		}
		// Flat throughput means every grow is reverted and every shrink
		// keeps its savings: the controller must settle at 1.
		if c.Target() != 1 {
			t.Fatalf("target = %d after flat throughput, want 1", c.Target())
		}
		if !c.settled {
			t.Fatalf("controller still exploring after %d flat intervals", 60)
		}
	})
}

func TestControllerShrinksUnderPoolPressure(t *testing.T) {
	env := sim.NewEnv(1)
	m := disk.NewManager(device.NewSSD(env, device.DefaultSSDConfig()))
	f := m.MustAllocate("t", 100)
	pool := buffer.NewPool(env, 16)
	env.Go("drive", func(p *sim.Proc) {
		// Pin most of a 16-frame pool against a share of 16.
		var hs []buffer.Handle
		for pg := int64(0); pg < 12; pg++ {
			hs = append(hs, pool.FetchPage(p, f, pg))
		}
		c := NewController(Config{
			Env: env, Pool: pool, PoolShare: 16, Initial: 8, Planned: 8, Max: 8,
		})
		got := tickUntil(p, c, 8, 32*8, 10)
		if got >= 8 {
			t.Fatalf("target = %d under pool pressure, want a shrink", got)
		}
		for _, h := range hs {
			h.Release()
		}
	})
	env.Run()
}

func TestSpeculationHitAndCancel(t *testing.T) {
	env := sim.NewEnv(1)
	m := disk.NewManager(device.NewSSD(env, device.DefaultSSDConfig()))
	f := m.MustAllocate("t", 1000)
	pool := buffer.NewPool(env, 64)
	env.Go("drive", func(p *sim.Proc) {
		c := NewController(Config{
			Env: env, Pool: pool, PoolShare: 64, Initial: 1, Planned: 1, Max: 1,
		})
		c.SpeculateRun(f, 10, 4) // pages 10..13 speculated
		if c.SpecOutstanding() != 4 {
			t.Fatalf("outstanding = %d after issue, want 4", c.SpecOutstanding())
		}
		p.Sleep(10 * sim.Millisecond) // let the reads land
		// Demand-fetch two of them: hits.
		for _, pg := range []int64{10, 11} {
			h := pool.FetchPage(p, f, pg)
			c.NoteFetch(f, pg)
			h.Release()
		}
		if c.SpecHits() != 2 {
			t.Fatalf("hits = %d, want 2", c.SpecHits())
		}
		if c.SpecOutstanding() != 2 {
			t.Fatalf("outstanding = %d after hits, want 2", c.SpecOutstanding())
		}
		c.FinishScan()
		if c.SpecOutstanding() != 0 {
			t.Fatalf("outstanding = %d after FinishScan, want 0", c.SpecOutstanding())
		}
		if pool.Pinned() != 0 {
			t.Fatalf("pool pins = %d after cancellation, want 0", pool.Pinned())
		}
		// The mispredicted pages must be gone from the pool.
		for _, pg := range []int64{12, 13} {
			if pool.Contains(f, pg) {
				t.Fatalf("canceled page %d still resident", pg)
			}
		}
	})
	env.Run()
}

func TestSpeculationBudgetGate(t *testing.T) {
	env := sim.NewEnv(1)
	m := disk.NewManager(device.NewSSD(env, device.DefaultSSDConfig()))
	f := m.MustAllocate("t", 1000)
	pool := buffer.NewPool(env, 256)
	env.Go("drive", func(p *sim.Proc) {
		c := NewController(Config{
			Env: env, Pool: pool, Initial: 1, Planned: 1, Max: 1, SpecBudget: 6,
		})
		c.SpeculateRun(f, 0, 100)
		if c.SpecOutstanding() != 6 {
			t.Fatalf("outstanding = %d, want budget cap 6", c.SpecOutstanding())
		}
		c.SpeculateRun(f, 200, 10) // budget exhausted: no-op
		if c.SpecOutstanding() != 6 {
			t.Fatalf("outstanding = %d after over-budget offer, want 6", c.SpecOutstanding())
		}
		c.FinishScan()
	})
	env.Run()
}

func TestSpeculationConfidenceGate(t *testing.T) {
	env := sim.NewEnv(1)
	m := disk.NewManager(device.NewSSD(env, device.DefaultSSDConfig()))
	f := m.MustAllocate("t", 1000)
	pool := buffer.NewPool(env, 256)
	env.Go("drive", func(p *sim.Proc) {
		c := NewController(Config{
			Env: env, Pool: pool, Initial: 1, Planned: 1, Max: 1, SpecBudget: 64,
		})
		// Three straight all-miss scans crater the hit rate.
		for s := 0; s < 3; s++ {
			c.SpeculateRun(f, int64(100*s), 8)
			c.FinishScan()
		}
		c.SpeculateRun(f, 500, 8)
		if c.SpecOutstanding() != 0 {
			t.Fatalf("speculation issued at confidence %.2f, want gate closed", c.confidence())
		}
	})
	env.Run()
}

func TestModelFitAndInitialDegree(t *testing.T) {
	// Band 64: speedup saturates at depth 4. Band 4096: keeps paying to 16.
	pts := []calibrate.Point{
		{Band: 64, Depth: 1, MicrosPerPage: 100},
		{Band: 64, Depth: 2, MicrosPerPage: 60},
		{Band: 64, Depth: 4, MicrosPerPage: 40},
		{Band: 64, Depth: 8, MicrosPerPage: 39.5},
		{Band: 64, Depth: 16, MicrosPerPage: 39},
		{Band: 4096, Depth: 1, MicrosPerPage: 100},
		{Band: 4096, Depth: 2, MicrosPerPage: 55},
		{Band: 4096, Depth: 4, MicrosPerPage: 30},
		{Band: 4096, Depth: 8, MicrosPerPage: 18},
		{Band: 4096, Depth: 16, MicrosPerPage: 12},
	}
	m := Fit(pts)
	if m == nil {
		t.Fatal("Fit returned nil for non-empty points")
	}
	if got := m.InitialDegree(50, 3, 32); got != 4 {
		t.Fatalf("small band degree = %d, want 4 (gain saturates)", got)
	}
	if got := m.InitialDegree(100000, 3, 32); got != 16 {
		t.Fatalf("large band degree = %d, want 16", got)
	}
	if got := m.InitialDegree(100000, 3, 6); got != 6 {
		t.Fatalf("degree = %d, want clamp to max 6", got)
	}
	if got := (*Model)(nil).InitialDegree(100, 5, 32); got != 5 {
		t.Fatalf("nil model degree = %d, want fallback 5", got)
	}
	if Fit(nil) != nil {
		t.Fatal("Fit(nil) should return nil")
	}
}
