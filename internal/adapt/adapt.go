// Package adapt is the engine's feedback layer: a per-query controller
// that retunes a running scan's worker count at batch boundaries from live
// signals — sustained device queue depth versus the band's beneficial
// depth, broker slack (implicitly, through what Lease.Grow will grant),
// buffer-pool pressure, and observed pages per virtual millisecond — plus
// a speculative prefetcher that pre-issues I/O runs derived from plan
// structure, gated by a confidence/pool-budget check and canceled on
// misprediction.
//
// The paper fixes degree and prefetch distance at plan time from the
// calibrated QDTT band; this package generalizes the broker's
// degradation-replan machinery to *upgrades*: the controller hill-climbs
// the degree, securing every step above its admission grant through the
// broker lease (credits re-leased mid-flight) and shedding workers through
// the executor's normal governed teardown. An offline DOP model fit on
// calibrate sweep points (model.go) seeds the initial degree so the climb
// usually starts next to the optimum.
//
// The controller implements exec.Tuner. It is strictly per-query state
// driven from simulation context; nothing here runs its own processes or
// schedules events, so a system with adaptivity disabled has no adapt
// machinery anywhere near its event stream.
package adapt

import (
	"sort"

	"pioqo/internal/buffer"
	"pioqo/internal/disk"
	"pioqo/internal/obs"
	"pioqo/internal/obs/event"
	"pioqo/internal/sim"
)

// Grower is the slice of a broker lease the controller grows through:
// Lease.Grow re-leases free credits mid-flight. A nil Grower means the
// query is ungoverned (standalone execution) and growth is bounded only by
// the degree cap.
type Grower interface {
	Grow(n int) int
}

// Config wires one controller to its query's signals.
type Config struct {
	Env *sim.Env

	// Pool supplies the pressure signal (pinned frames versus the share)
	// and carries speculative prefetch issue and cancellation.
	Pool *buffer.Pool

	// PoolShare is the lease's page reservation; 0 budgets against the
	// whole pool. Pressure and the speculation budget derive from it.
	PoolShare int

	// DepthProbe returns the device's cumulative queue-depth time-integral
	// (device.Metrics.DepthIntegral); the controller differentiates it into
	// the sustained depth over each decision window. Nil disables the
	// depth signal.
	DepthProbe func() float64

	// QueueProbe returns the device's instantaneous read queue depth
	// (device.Metrics.Outstanding). Speculation consults it at offer time:
	// a device already working past half the beneficial depth has no idle
	// capacity for out-of-band runs. Nil disables the gate.
	QueueProbe func() int

	// Lease, when set, sources credits for every grow step. The controller
	// never raises its target beyond what the lease granted.
	Lease Grower

	// Initial is the seeded starting degree; Planned the statically planned
	// one (recorded in the adapt.seed event for attribution). Max caps
	// growth — the executor sizes per-worker state against it.
	Initial, Planned, Max int

	// Beneficial is the band's beneficial queue depth (the broker's
	// calibrated credit supply). Growth never targets beyond it: depth past
	// the beneficial point buys no throughput by the paper's own model.
	// 0 means unknown (no cap from this signal).
	Beneficial int

	// Interval is the minimum virtual time between controller decisions;
	// default 250µs. Decisions additionally wait for enough page progress
	// to make the throughput verdict meaningful.
	Interval sim.Duration

	// SpecBudget caps outstanding speculative pages; default one eighth of
	// the pool share, at least 16.
	SpecBudget int

	Log *event.Log
	Obs *obs.Registry
	QID int64
}

// Controller is the per-query feedback controller. It implements
// exec.Tuner; all calls come from simulation context, which is
// host-serialized, so plain fields suffice.
type Controller struct {
	cfg      Config
	interval sim.Duration
	target   int

	// Decision window.
	started   bool
	lastEval  sim.Time
	lastPages int64
	lastDepth float64

	// Hill-climb state. A move's verdict is judged against preTput at the
	// next decision; a failed grow sets ceiling, a failed shrink sets
	// floor, and once both brackets (or the caps) pin the target the
	// controller settles until throughput shifts.
	lastTput      float64
	lastMove      int // +n grew, -n shrank, 0 held
	ceiling       int // lowest degree known not to improve; 0 = none
	floor         int // highest degree known to cost throughput; 0 = none
	settled       bool
	settledTput   float64
	driftStrikes  int     // consecutive settled windows with drifting tput
	everDecided   bool    // a decision window has completed at least once
	decisions     int     // decision windows completed
	lastSustained float64 // mean device queue depth over the last window

	pages int64 // demand pages fetched (NoteFetch), the throughput signal

	// Speculation ledger.
	specOut     map[specKey]*disk.File
	specHits    int64
	specDropped int64

	retunes, grows, shrinks         *obs.Counter
	specIssuedC, specHitC, specCanC *obs.Counter
}

type specKey struct {
	file disk.FileID
	page int64
}

// verdict thresholds: a grow must improve throughput by growPay to stick; a
// shrink is reverted when it costs more than shrinkCost; a settled
// controller re-explores when throughput drifts by resettle.
const (
	growPay    = 1.02
	shrinkCost = 0.92
	resettle   = 0.25
)

// NewController seeds a controller at cfg.Initial and emits the adapt.seed
// event recording the seeded versus statically planned degree.
func NewController(cfg Config) *Controller {
	c := &Controller{cfg: cfg, interval: cfg.Interval}
	if c.interval <= 0 {
		c.interval = 250 * sim.Microsecond
	}
	c.target = cfg.Initial
	if c.target < 1 {
		c.target = 1
	}
	if cfg.Max > 0 && c.target > cfg.Max {
		c.target = cfg.Max
	}
	c.specOut = make(map[specKey]*disk.File)
	if cfg.Obs != nil {
		c.retunes = cfg.Obs.Counter(obs.MetricAdaptRetunes)
		c.grows = cfg.Obs.Counter(obs.MetricAdaptGrows)
		c.shrinks = cfg.Obs.Counter(obs.MetricAdaptShrinks)
		c.specIssuedC = cfg.Obs.Counter(obs.MetricAdaptSpecIssued)
		c.specHitC = cfg.Obs.Counter(obs.MetricAdaptSpecHits)
		c.specCanC = cfg.Obs.Counter(obs.MetricAdaptSpecCanceled)
	}
	cfg.Log.Emit(event.EvAdaptSeed, cfg.QID, int64(c.target), int64(cfg.Planned))
	return c
}

// Target reports the current target degree.
func (c *Controller) Target() int { return c.target }

// MaxDegree implements exec.Tuner.
func (c *Controller) MaxDegree() int {
	if c.cfg.Max < 1 {
		return 1
	}
	return c.cfg.Max
}

// cap is the highest degree the controller may currently target: the hard
// cap, the band's beneficial depth, and one below any discovered ceiling.
func (c *Controller) capDegree() int {
	cap := c.MaxDegree()
	if c.cfg.Beneficial > 0 && c.cfg.Beneficial < cap {
		cap = c.cfg.Beneficial
	}
	if c.ceiling > 0 && c.ceiling-1 < cap {
		cap = c.ceiling - 1
	}
	if cap < 1 {
		cap = 1
	}
	return cap
}

// share is the pool budget signals are computed against.
func (c *Controller) share() int {
	if c.cfg.PoolShare > 0 {
		return c.cfg.PoolShare
	}
	if c.cfg.Pool != nil {
		return c.cfg.Pool.Capacity()
	}
	return 0
}

// depth reads the device's cumulative queue-depth integral (0 if unprobed).
func (c *Controller) depth() float64 {
	if c.cfg.DepthProbe == nil {
		return 0
	}
	return c.cfg.DepthProbe()
}

// Tick implements exec.Tuner: called by scan workers at batch boundaries.
// At most one decision per interval (and per enough-pages window); between
// decisions it returns the standing target.
func (c *Controller) Tick(live int) int {
	now := c.cfg.Env.Now()
	if !c.started {
		c.started = true
		c.lastEval = now
		c.lastPages = c.pages
		c.lastDepth = c.depth()
		return c.target
	}
	dt := sim.Duration(now - c.lastEval)
	if dt < c.interval {
		return c.target
	}
	// The throughput verdict needs signal: extend the window until enough
	// pages moved (worker startup and cache phases would otherwise dominate
	// short windows).
	minPages := int64(16)
	if lp := int64(4 * live); lp > minPages {
		minPages = lp
	}
	// A virgin controller demands twice the signal before its first
	// exploration: the seed is the model's best guess, and a query short
	// enough never to earn a double window just runs it unchanged.
	if !c.everDecided {
		minPages *= 2
	}
	progressed := c.pages - c.lastPages
	if progressed < minPages {
		return c.target
	}
	tput := float64(progressed) / float64(dt)
	sustained := 0.0
	if d := c.depth(); c.cfg.DepthProbe != nil {
		sustained = (d - c.lastDepth) / float64(dt)
		c.lastDepth = d
	}
	c.lastSustained = sustained
	c.lastEval = now
	c.lastPages = c.pages
	c.everDecided = true
	c.decide(live, tput, sustained)
	c.lastTput = tput
	return c.target
}

// decide is one controller decision. Order matters: judge the previous
// move, answer pressure, honor the beneficial-depth cap, then explore.
func (c *Controller) decide(live int, tput, sustained float64) {
	c.decisions++
	prevTput := c.lastTput

	// 1. Verdict on the previous move.
	if c.lastMove > 0 && prevTput > 0 && tput < prevTput*growPay {
		// The grow didn't pay: remember the ceiling and step back. The
		// ceiling lowers the cap, so exploration continues — downward: on
		// a saturated device every shrink is a free win and the controller
		// walks the staircase to the cheapest degree that still saturates.
		c.ceiling = c.target
		c.move(c.target-c.lastMove, tput)
		c.lastMove = 0
		return
	}
	if c.lastMove < 0 && prevTput > 0 && tput < prevTput*shrinkCost {
		// The shrink cost real throughput: this degree is the floor.
		// Revert and settle there — the revert is not itself judged
		// (lastMove cleared) and exploration stays closed until throughput
		// drifts, so a failed shrink can never ping-pong the fleet.
		c.floor = c.target
		c.move(c.target-c.lastMove, tput)
		c.lastMove = 0
		c.settled = true
		c.settledTput = prevTput
		return
	}
	c.lastMove = 0

	// 2. Pool pressure: pinned frames crowding the scan's share force a
	// shrink regardless of throughput.
	if share := c.share(); share > 0 && c.cfg.Pool != nil &&
		c.cfg.Pool.Pinned()*2 > share && c.target > 1 {
		c.move(c.target/2, tput)
		return
	}

	// 3. The beneficial-depth cap: a target beyond what the band's
	// calibrated depth-throughput curve can absorb sheds down to the cap.
	// This is the sustained-depth signal's complement — when the device
	// already queues at or beyond the beneficial depth, extra workers only
	// deepen the queue the model says buys nothing.
	cap := c.capDegree()
	if c.target > cap {
		c.move(cap, tput)
		return
	}

	// 4. A settled controller re-explores only when throughput drifts for
	// two consecutive windows — one window of drift is cache-phase noise,
	// not a workload shift. The learned brackets survive the unsettle:
	// they are still approximately right, and the next verdicts will
	// revise them if the world really changed.
	if c.settled {
		if c.settledTput > 0 &&
			(tput < c.settledTput*(1-resettle) || tput > c.settledTput*(1+resettle)) {
			c.driftStrikes++
			if c.driftStrikes >= 2 {
				c.settled = false
				c.driftStrikes = 0
			}
		} else {
			c.driftStrikes = 0
		}
		if c.settled {
			return
		}
	}

	// 5. Explore up while there is headroom. The sustained-depth gate skips
	// growth when the device queue already runs well beyond the live fleet
	// — queueing the executor's own readahead, not worker starvation.
	if c.target < cap {
		if c.cfg.Beneficial > 0 && sustained > float64(c.cfg.Beneficial)*1.5 {
			// Device saturated past the beneficial point already.
		} else {
			step := c.target / 2
			if step < 1 {
				step = 1
			}
			if c.target+step > cap {
				step = cap - c.target
			}
			if c.cfg.Lease != nil {
				step = c.cfg.Lease.Grow(step)
			}
			if step > 0 {
				c.move(c.target+step, tput)
				return
			}
			// The broker had nothing to re-lease: hold and retry later.
			return
		}
	}

	// 6. Explore down: shedding workers that throughput does not miss is a
	// straight win (fewer pins, credits reclaimed for the queue). With a
	// known floor the probe bisects the remaining gap, so repeated failed
	// shrinks converge on the floor in log steps instead of re-testing it.
	// A down-probe is speculative in a way the other moves are not, so it
	// waits for evidence: either a few windows of history or a discovered
	// ceiling (proof the device is saturated) — a short query settles at
	// its seed instead of spending its tail on a depressed experiment.
	if c.target > 1 && (c.decisions > 4 || c.ceiling > 0) &&
		(c.floor == 0 || c.target-1 > c.floor) {
		step := c.target / 4
		if c.floor > 0 {
			step = (c.target - c.floor) / 2
		}
		if step < 1 {
			step = 1
		}
		if c.floor > 0 && c.target-step <= c.floor {
			step = c.target - c.floor - 1
		}
		if step > 0 {
			c.move(c.target-step, tput)
			return
		}
	}

	// Nowhere to go: settled.
	c.settled = true
	c.settledTput = tput
}

// move retargets the fleet and records the move for the next verdict.
func (c *Controller) move(to int, tput float64) {
	if to < 1 {
		to = 1
	}
	if to == c.target {
		c.lastMove = 0
		return
	}
	prev := c.target
	c.lastMove = to - prev
	c.target = to
	c.lastTput = tput
	if c.retunes != nil {
		c.retunes.Inc()
	}
	if to > prev {
		c.cfg.Log.Emit(event.EvAdaptGrow, c.cfg.QID, int64(to), int64(prev))
		if c.grows != nil {
			c.grows.Inc()
		}
	} else {
		c.cfg.Log.Emit(event.EvAdaptShrink, c.cfg.QID, int64(to), int64(prev))
		if c.shrinks != nil {
			c.shrinks.Inc()
		}
	}
}

// specBudget is the outstanding-speculative-pages cap.
func (c *Controller) specBudget() int {
	if c.cfg.SpecBudget > 0 {
		return c.cfg.SpecBudget
	}
	b := c.share() / 8
	if b < 16 {
		b = 16
	}
	return b
}

// confidence is the speculation hit rate, optimistic before evidence.
func (c *Controller) confidence() float64 {
	return float64(c.specHits+1) / float64(c.specHits+c.specDropped+1)
}

// SpeculateRun implements exec.Tuner: pre-issue the offered run if the
// confidence and pool-budget gates pass. Pages already resident extend the
// run for free; absent pages charge the budget and join the outstanding
// ledger for hit accounting and cancellation.
//
// A device already sustaining half its beneficial queue depth declines the
// offer: speculation only buys latency when the device has idle capacity to
// absorb it, and on a saturated sequential stream (an HDD full scan behind
// its readahead) out-of-band runs just fragment the reads the scan was
// going to issue anyway.
func (c *Controller) SpeculateRun(f *disk.File, start int64, count int) {
	if c.cfg.Pool == nil || count <= 0 || c.confidence() < 0.5 {
		return
	}
	if b := c.cfg.Beneficial; b > 0 {
		if c.lastSustained >= float64(b)/2 {
			return
		}
		if c.cfg.QueueProbe != nil && c.cfg.QueueProbe() >= (b+1)/2 {
			return
		}
	}
	room := c.specBudget() - len(c.specOut)
	if room <= 0 {
		return
	}
	// Walk the run, collecting absent pages until the budget is spent; the
	// issue below covers exactly the walked prefix.
	issue := 0
	tracked := 0
	for i := int64(0); i < int64(count); i++ {
		if c.cfg.Pool.Contains(f, start+i) {
			issue = int(i + 1)
			continue
		}
		if tracked >= room {
			break
		}
		tracked++
		issue = int(i + 1)
	}
	if tracked == 0 {
		return
	}
	// Record the absent pages *before* issuing — afterwards they are all
	// resident and indistinguishable from demand readahead.
	added := make([]int64, 0, tracked)
	for i := int64(0); i < int64(issue); i++ {
		pg := start + i
		if c.cfg.Pool.Contains(f, pg) {
			continue
		}
		k := specKey{f.ID(), pg}
		if _, dup := c.specOut[k]; dup {
			continue
		}
		if len(added) >= tracked {
			break
		}
		c.specOut[k] = f
		added = append(added, pg)
	}
	if len(added) == 0 {
		return
	}
	c.cfg.Pool.PrefetchRunTrimmed(f, start, issue)
	c.cfg.Log.Emit(event.EvAdaptSpecIssue, c.cfg.QID, start, int64(len(added)))
	if c.specIssuedC != nil {
		c.specIssuedC.Add(int64(len(added)))
	}
}

// NoteFetch implements exec.Tuner: a demand fetch of a speculated page is a
// hit — the guess was right and the page was already moving (or resident)
// when the worker asked.
func (c *Controller) NoteFetch(f *disk.File, page int64) {
	c.pages++
	if len(c.specOut) == 0 {
		return
	}
	k := specKey{f.ID(), page}
	if _, ok := c.specOut[k]; ok {
		delete(c.specOut, k)
		c.specHits++
		if c.specHitC != nil {
			c.specHitC.Inc()
		}
	}
}

// FinishScan implements exec.Tuner: cancellation on misprediction. Every
// still-outstanding speculative page is dropped from the pool (unpinned,
// loaded frames evict immediately; in-flight reads complete into frames the
// LRU will age out) and charged against the confidence gate. Iteration is
// sorted so cancellation order — and therefore pool state — is
// deterministic for identical runs.
func (c *Controller) FinishScan() {
	if len(c.specOut) == 0 {
		return
	}
	keys := make([]specKey, 0, len(c.specOut))
	for k := range c.specOut {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].file != keys[j].file {
			return keys[i].file < keys[j].file
		}
		return keys[i].page < keys[j].page
	})
	for _, k := range keys {
		c.cfg.Pool.Discard(c.specOut[k], k.page)
	}
	dropped := int64(len(keys))
	c.specDropped += dropped
	c.cfg.Log.Emit(event.EvAdaptSpecCancel, c.cfg.QID, dropped, c.specHits)
	if c.specCanC != nil {
		c.specCanC.Add(dropped)
	}
	c.specOut = make(map[specKey]*disk.File)
}

// SpecOutstanding reports the speculation ledger's outstanding page count —
// zero after FinishScan, which tests assert alongside the pool's pin
// ledger.
func (c *Controller) SpecOutstanding() int { return len(c.specOut) }

// SpecHits reports how many speculated pages were demand-fetched.
func (c *Controller) SpecHits() int64 { return c.specHits }
