// Package disk provides a page-granular view of a simulated storage device:
// a bump allocator carves the device into files, and files expose
// asynchronous page and multi-page ("block") reads. All database I/O goes
// through this layer, so the band a scan touches is simply the page extent
// of its file — the quantity the DTT/QDTT cost models take as input.
package disk

import (
	"fmt"

	"pioqo/internal/device"
	"pioqo/internal/sim"
)

// PageSize is the database page size in bytes. The paper's experiments use
// 4 KB pages (its Fig. 1 measures parallel 4 KB random reads).
const PageSize = 4096

// Manager allocates page extents on a device.
type Manager struct {
	dev       device.Device
	nextPage  int64
	pageCount int64
	files     []*File
}

// NewManager returns a manager over the whole of dev.
func NewManager(dev device.Device) *Manager {
	return &Manager{dev: dev, pageCount: dev.Size() / PageSize}
}

// Device returns the underlying device.
func (m *Manager) Device() device.Device { return m.dev }

// Capacity returns the total number of pages on the device.
func (m *Manager) Capacity() int64 { return m.pageCount }

// Free returns the number of unallocated pages.
func (m *Manager) Free() int64 { return m.pageCount - m.nextPage }

// Allocate reserves a contiguous extent of pages and returns it as a File.
// It fails when the device has too little space left.
func (m *Manager) Allocate(name string, pages int64) (*File, error) {
	if pages <= 0 {
		return nil, fmt.Errorf("disk: allocating %d pages for %q", pages, name)
	}
	if m.nextPage+pages > m.pageCount {
		return nil, fmt.Errorf("disk: %q needs %d pages, only %d free",
			name, pages, m.Free())
	}
	f := &File{
		m:        m,
		id:       FileID(len(m.files)),
		name:     name,
		basePage: m.nextPage,
		pages:    pages,
	}
	m.nextPage += pages
	m.files = append(m.files, f)
	return f, nil
}

// MustAllocate is Allocate for callers whose sizes are known to fit, such
// as test and experiment setup.
func (m *Manager) MustAllocate(name string, pages int64) *File {
	f, err := m.Allocate(name, pages)
	if err != nil {
		panic(err)
	}
	return f
}

// FileID identifies a file within its manager; buffer-pool frame keys use
// it to distinguish pages of different files.
type FileID int32

// File is a contiguous page extent on a device.
type File struct {
	m        *Manager
	id       FileID
	name     string
	basePage int64
	pages    int64
}

// ID returns the file's identity within its manager.
func (f *File) ID() FileID { return f.id }

// Name returns the allocation name.
func (f *File) Name() string { return f.name }

// Pages returns the extent length in pages. For a scan that touches the
// whole file this is also its band size in the DTT/QDTT sense.
func (f *File) Pages() int64 { return f.pages }

// Offset returns the device byte offset of the given page.
func (f *File) Offset(page int64) int64 {
	f.check(page, 1)
	return (f.basePage + page) * PageSize
}

// check panics on out-of-extent access: page indexing bugs must not be
// silently converted into reads of a neighbouring file.
func (f *File) check(page int64, count int) {
	if page < 0 || count <= 0 || page+int64(count) > f.pages {
		panic(fmt.Sprintf("disk: %q read [%d,+%d) outside extent of %d pages",
			f.name, page, count, f.pages))
	}
}

// ReadPage submits an asynchronous read of one page.
func (f *File) ReadPage(page int64) *sim.Completion {
	return f.ReadRun(page, 1)
}

// ReadRun submits an asynchronous read of count consecutive pages as a
// single device request. Scans use multi-page runs to get the large-transfer
// sequential advantage the paper's prefetching relies on.
func (f *File) ReadRun(page int64, count int) *sim.Completion {
	f.check(page, count)
	return f.m.dev.ReadAt((f.basePage+page)*PageSize, count*PageSize)
}

// WritePage submits an asynchronous write of one page (buffer pool
// write-back of dirty frames).
func (f *File) WritePage(page int64) *sim.Completion {
	f.check(page, 1)
	return f.m.dev.WriteAt((f.basePage+page)*PageSize, PageSize)
}
