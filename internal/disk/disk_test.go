package disk

import (
	"testing"

	"pioqo/internal/device"
	"pioqo/internal/sim"
)

func newManager(e *sim.Env) *Manager {
	return NewManager(device.NewSSD(e, device.DefaultSSDConfig()))
}

func TestAllocateAdjacentExtents(t *testing.T) {
	e := sim.NewEnv(1)
	m := newManager(e)
	a := m.MustAllocate("a", 100)
	b := m.MustAllocate("b", 50)
	if a.Offset(0) != 0 {
		t.Errorf("first extent starts at %d, want 0", a.Offset(0))
	}
	if got, want := b.Offset(0), int64(100*PageSize); got != want {
		t.Errorf("second extent starts at %d, want %d", got, want)
	}
	if a.ID() == b.ID() {
		t.Error("extents share an ID")
	}
	if m.Free() != m.Capacity()-150 {
		t.Errorf("free = %d, want %d", m.Free(), m.Capacity()-150)
	}
}

func TestAllocateBeyondCapacityFails(t *testing.T) {
	e := sim.NewEnv(1)
	m := newManager(e)
	if _, err := m.Allocate("big", m.Capacity()+1); err == nil {
		t.Error("no error allocating beyond capacity")
	}
	if _, err := m.Allocate("zero", 0); err == nil {
		t.Error("no error allocating zero pages")
	}
}

func TestReadPageCompletes(t *testing.T) {
	e := sim.NewEnv(1)
	m := newManager(e)
	f := m.MustAllocate("t", 10)
	var done bool
	e.Go("p", func(p *sim.Proc) {
		p.Wait(f.ReadPage(3))
		done = true
	})
	e.Run()
	if !done {
		t.Fatal("read never completed")
	}
	if got := m.Device().Metrics().Bytes; got != PageSize {
		t.Errorf("device moved %d bytes, want %d", got, PageSize)
	}
}

func TestReadRunIsOneDeviceRequest(t *testing.T) {
	e := sim.NewEnv(1)
	m := newManager(e)
	f := m.MustAllocate("t", 64)
	e.Go("p", func(p *sim.Proc) { p.Wait(f.ReadRun(0, 64)) })
	e.Run()
	if got := m.Device().Metrics().Requests; got != 1 {
		t.Errorf("device served %d requests, want 1", got)
	}
	if got := m.Device().Metrics().Bytes; got != 64*PageSize {
		t.Errorf("device moved %d bytes, want %d", got, 64*PageSize)
	}
}

func TestOutOfExtentPanics(t *testing.T) {
	e := sim.NewEnv(1)
	f := newManager(e).MustAllocate("t", 10)
	for _, bad := range []struct {
		page  int64
		count int
	}{{-1, 1}, {10, 1}, {9, 2}, {0, 0}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("no panic for ReadRun(%d, %d)", bad.page, bad.count)
				}
			}()
			f.ReadRun(bad.page, bad.count)
		}()
	}
}
