package exec

import (
	"math/rand"
	"testing"
)

// TestPropertyAllExecutionStrategiesAgree drives randomly shaped workloads
// — table size, page occupancy, pool size, predicate range, access method,
// degree, prefetch — and requires every strategy to produce exactly the
// brute-force answer. This is the repository's broadest correctness net:
// any bug in work distribution, prefetch windows, pool eviction, or leaf
// slicing that loses or duplicates a row trips it.
func TestPropertyAllExecutionStrategiesAgree(t *testing.T) {
	rng := rand.New(rand.NewSource(2024))
	const trials = 30
	for trial := 0; trial < trials; trial++ {
		rows := int64(rng.Intn(8000) + 100)
		rpp := []int{1, 7, 33, 120}[rng.Intn(4)]
		poolPages := []int{64, 256, 2048}[rng.Intn(3)]
		lo := rng.Int63n(rows)
		hi := lo + rng.Int63n(rows-lo)
		devKind := []string{"ssd", "hdd"}[rng.Intn(2)]

		w := newWorld(t, worldOpts{dev: devKind, rows: rows, rpp: rpp, poolPages: poolPages})
		wantMax, wantFound, wantRows := w.bruteForce(lo, hi)

		for _, m := range []Method{FullScan, IndexScan, SortedIndexScan} {
			degree := []int{1, 3, 8, 32}[rng.Intn(4)]
			prefetch := []int{0, 1, 5, 17}[rng.Intn(4)]
			spec := w.spec(m, degree, lo, hi)
			spec.PrefetchPerWorker = prefetch
			res := Execute(w.ctx, spec)
			if res.Found != wantFound || (wantFound && res.Value != wantMax) ||
				res.RowsMatched != wantRows {
				t.Fatalf("trial %d: %v deg=%d pf=%d rows=%d rpp=%d pool=%d dev=%s range=[%d,%d]:\n"+
					"got (max=%d found=%v rows=%d), want (max=%d found=%v rows=%d)",
					trial, m, degree, prefetch, rows, rpp, poolPages, devKind, lo, hi,
					res.Value, res.Found, res.RowsMatched, wantMax, wantFound, wantRows)
			}
			w.ctx.Pool.Flush()
		}
	}
}

// TestPropertyJoinMatchesBruteForce does the same for random hash joins.
func TestPropertyJoinMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	const trials = 10
	for trial := 0; trial < trials; trial++ {
		buildRows := int64(rng.Intn(2000) + 100)
		probeRows := int64(rng.Intn(4000) + 100)
		w := newJoinWorld(t, buildRows, probeRows)
		lo := rng.Int63n(buildRows)
		hi := lo + rng.Int63n(buildRows-lo)
		wantPairs, wantMax, wantFound := w.bruteForceJoin(lo, hi)

		methods := []Method{FullScan, IndexScan, SortedIndexScan}
		spec := w.spec(lo, hi,
			methods[rng.Intn(3)], methods[rng.Intn(3)], []int{1, 4, 16}[rng.Intn(3)])
		res := ExecuteJoin(w.ctx, spec)
		if res.Pairs != wantPairs || res.Found != wantFound ||
			(wantFound && res.Value != wantMax) {
			t.Fatalf("trial %d: build=%d probe=%d range=[%d,%d]: got (pairs=%d max=%d,%v), want (pairs=%d max=%d,%v)",
				trial, buildRows, probeRows, lo, hi,
				res.Pairs, res.Value, res.Found, wantPairs, wantMax, wantFound)
		}
	}
}
