package exec

import (
	"testing"

	"pioqo/internal/btree"
	"pioqo/internal/buffer"
	"pioqo/internal/device"
	"pioqo/internal/disk"
	"pioqo/internal/sim"
	"pioqo/internal/table"
)

// joinWorld holds two materialized tables sharing one device and pool.
type joinWorld struct {
	env      *sim.Env
	ctx      *Context
	build    *table.Materialized
	probe    *table.Materialized
	buildIdx *btree.Index
	probeIdx *btree.Index
}

func newJoinWorld(t *testing.T, buildRows, probeRows int64) *joinWorld {
	t.Helper()
	env := sim.NewEnv(505)
	dev := device.NewSSD(env, device.DefaultSSDConfig())
	m := disk.NewManager(dev)
	build := table.NewMaterialized(m, "build", buildRows, 33, 21)
	probe := table.NewMaterialized(m, "probe", probeRows, 33, 22)
	return &joinWorld{
		env:      env,
		build:    build,
		probe:    probe,
		buildIdx: btree.NewMaterialized(m, build, 0, 0),
		probeIdx: btree.NewMaterialized(m, probe, 0, 0),
		ctx: &Context{
			Env:   env,
			CPU:   sim.NewResource(env, "cpu", 8),
			Pool:  buffer.NewPool(env, 4096),
			Dev:   dev,
			Costs: DefaultCPUCosts(),
		},
	}
}

// bruteForceJoin computes the reference joined-pair count and MAX(probe.C1)
// for build.C2 in [lo, hi].
func (w *joinWorld) bruteForceJoin(lo, hi int64) (pairs int64, max int64, found bool) {
	mult := map[int64]int64{}
	for r := int64(0); r < w.build.Rows(); r++ {
		row := w.build.RowAt(r)
		if row.C2 >= lo && row.C2 <= hi {
			mult[row.C2]++
		}
	}
	for r := int64(0); r < w.probe.Rows(); r++ {
		row := w.probe.RowAt(r)
		m := mult[row.C2]
		if m == 0 {
			continue
		}
		pairs += m
		if !found || row.C1 > max {
			max, found = row.C1, true
		}
	}
	return
}

func (w *joinWorld) spec(lo, hi int64, buildMethod, probeMethod Method, degree int) JoinSpec {
	return JoinSpec{
		Build: Spec{Table: w.build, Index: w.buildIdx, Lo: lo, Hi: hi,
			Method: buildMethod, Degree: degree},
		Probe: Spec{Table: w.probe, Index: w.probeIdx, Lo: lo, Hi: hi,
			Method: probeMethod, Degree: degree},
	}
}

func TestHashJoinMatchesBruteForce(t *testing.T) {
	w := newJoinWorld(t, 3000, 5000)
	for _, rg := range []struct{ lo, hi int64 }{{0, 99}, {500, 1500}, {0, 2999}} {
		wantPairs, wantMax, wantFound := w.bruteForceJoin(rg.lo, rg.hi)
		for _, methods := range [][2]Method{
			{IndexScan, IndexScan},
			{FullScan, FullScan},
			{IndexScan, FullScan},
			{SortedIndexScan, IndexScan},
		} {
			res := ExecuteJoin(w.ctx, w.spec(rg.lo, rg.hi, methods[0], methods[1], 4))
			if res.Pairs != wantPairs {
				t.Errorf("%v/%v [%d,%d]: pairs=%d, want %d",
					methods[0], methods[1], rg.lo, rg.hi, res.Pairs, wantPairs)
			}
			if res.Found != wantFound || (wantFound && res.Value != wantMax) {
				t.Errorf("%v/%v [%d,%d]: max=(%d,%v), want (%d,%v)",
					methods[0], methods[1], rg.lo, rg.hi, res.Value, res.Found, wantMax, wantFound)
			}
		}
	}
}

func TestHashJoinCountAndSum(t *testing.T) {
	w := newJoinWorld(t, 1000, 2000)
	wantPairs, _, _ := w.bruteForceJoin(0, 499)
	spec := w.spec(0, 499, IndexScan, IndexScan, 2)
	spec.Agg = AggCount
	res := ExecuteJoin(w.ctx, spec)
	if !res.Found || res.Value != wantPairs {
		t.Errorf("COUNT join = (%d,%v), want %d", res.Value, res.Found, wantPairs)
	}
}

func TestHashJoinEmptyRange(t *testing.T) {
	w := newJoinWorld(t, 500, 500)
	res := ExecuteJoin(w.ctx, w.spec(100, 99, IndexScan, IndexScan, 2))
	if res.Found || res.Pairs != 0 {
		t.Errorf("empty-range join: found=%v pairs=%d", res.Found, res.Pairs)
	}
}

func TestHashJoinParallelScansSpeedItUp(t *testing.T) {
	run := func(degree int) sim.Duration {
		w := newJoinWorld(t, 20000, 30000)
		return ExecuteJoin(w.ctx, w.spec(0, 1999, IndexScan, IndexScan, degree)).Runtime
	}
	serial := run(1)
	parallel := run(32)
	if gain := float64(serial) / float64(parallel); gain < 5 {
		t.Errorf("32-way join gain = %.1fx over serial, want >= 5x on SSD", gain)
	}
}

func TestHashJoinProbeNarrowedToBuildRange(t *testing.T) {
	w := newJoinWorld(t, 2000, 2000)
	spec := w.spec(100, 199, IndexScan, IndexScan, 2)
	spec.Probe.Lo, spec.Probe.Hi = 0, w.probe.Rows() // deliberately wide
	res := ExecuteJoin(w.ctx, spec)
	wantPairs, _, _ := w.bruteForceJoin(100, 199)
	if res.Pairs != wantPairs {
		t.Errorf("pairs=%d, want %d (probe must be narrowed)", res.Pairs, wantPairs)
	}
	// The probe scan must not have visited the whole table's rows.
	if res.ProbeRows >= w.probe.Rows()/2 {
		t.Errorf("probe inspected %d rows; range propagation failed", res.ProbeRows)
	}
}
