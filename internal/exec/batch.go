package exec

import (
	"pioqo/internal/buffer"
	"pioqo/internal/disk"
	"pioqo/internal/sim"
)

// cpuBudget batches a worker's CPU accounting: per-row and per-page costs
// accrue as debt and are charged to the simulated CPU in one merged
// Proc.Use at batch boundaries, instead of one kernel round-trip per row.
//
// The discipline that keeps batching honest is *settle before any device
// interaction*: debt is flushed immediately before an operation that could
// touch the device or block — fetching a page that is not fully loaded
// (miss or join of an in-flight read), issuing a prefetch, waking the
// full-scan block prefetcher — and when the worker finishes. Because
// charges are deferred but never reordered across those points, every
// device request is issued at exactly the virtual time the row-at-a-time
// schedule would have issued it. With an uncontended CPU (degree ≤ cores)
// that makes batched execution *exactly* equivalent: same results, same
// virtual completion times. Under CPU contention the merged grants coarsen
// the FIFO interleaving between workers by at most one batch quantum (one
// page's worth of row costs), bounding virtual-time drift to well under a
// percent at experiment scales.
//
// All CPU charging in this package goes through this type (or useCPU for
// serialized driver work); scripts/verify.sh lints for stray Proc.Use
// calls against the CPU resource elsewhere in the package.
type cpuBudget struct {
	ctx  *Context
	m    *meter // optional span metering; nil for unmetered workers
	debt sim.Duration
}

// newBudget returns a budget charging through m's meter when non-nil.
func newBudget(ctx *Context, m *meter) *cpuBudget {
	return &cpuBudget{ctx: ctx, m: m}
}

// charge accrues CPU debt without touching the simulator.
func (b *cpuBudget) charge(d sim.Duration) { b.debt += d }

// settle flushes all accrued debt in one merged Use.
func (b *cpuBudget) settle(wp *sim.Proc) {
	if b.debt <= 0 {
		return
	}
	d := b.debt
	b.debt = 0
	if b.m != nil {
		b.m.use(wp, d)
		return
	}
	wp.Use(b.ctx.CPU, d)
}

// fetch pins a page, settling outstanding debt first whenever the request
// could touch the device or block (the page is absent, or present but its
// read is still in flight). Loaded pages pin without settling — that is
// where merging wins.
func (b *cpuBudget) fetch(wp *sim.Proc, f *disk.File, page int64) buffer.Handle {
	if !b.ctx.Pool.Loaded(f, page) {
		b.settle(wp)
	}
	if b.m != nil {
		return b.m.fetch(wp, f, page)
	}
	return b.ctx.Pool.FetchPage(wp, f, page)
}

// prefetch issues an asynchronous read for page unless it is already
// present or in flight, charging the issue cost as new debt. The settle
// happens before the issue so the read enters the device queue at the
// row-at-a-time schedule's instant.
func (b *cpuBudget) prefetch(wp *sim.Proc, f *disk.File, page int64) {
	if b.ctx.Pool.Contains(f, page) {
		return
	}
	b.settle(wp)
	b.ctx.Pool.Prefetch(f, page)
	b.charge(b.ctx.Costs.PerPrefetch)
}

// useCPU charges serialized driver-side work (index descents, sort stages,
// bulk hash costs) immediately — there is no batching opportunity on the
// driver, and charging through one helper keeps the package's CPU
// accounting greppable.
func useCPU(p *sim.Proc, ctx *Context, d sim.Duration) {
	p.Use(ctx.CPU, d)
}

// use charges d against the CPU through the meter, attributing queueing
// and hold time to the worker's span.
func (m *meter) use(wp *sim.Proc, d sim.Duration) {
	t0 := m.ctx.Env.Now()
	wp.Use(m.ctx.CPU, d)
	m.cpu += sim.Duration(m.ctx.Env.Now() - t0)
}
