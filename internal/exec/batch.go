package exec

import (
	"fmt"

	"pioqo/internal/buffer"
	"pioqo/internal/disk"
	"pioqo/internal/obs"
	"pioqo/internal/obs/event"
	"pioqo/internal/sim"
)

// cpuBudget batches a worker's CPU accounting: per-row and per-page costs
// accrue as debt and are charged to the simulated CPU in one merged
// Proc.Use at batch boundaries, instead of one kernel round-trip per row.
//
// The discipline that keeps batching honest is *settle before any device
// interaction*: debt is flushed immediately before an operation that could
// touch the device or block — fetching a page that is not fully loaded
// (miss or join of an in-flight read), issuing a prefetch, waking the
// full-scan block prefetcher — and when the worker finishes. Because
// charges are deferred but never reordered across those points, every
// device request is issued at exactly the virtual time the row-at-a-time
// schedule would have issued it. With an uncontended CPU (degree ≤ cores)
// that makes batched execution *exactly* equivalent: same results, same
// virtual completion times. Under CPU contention the merged grants coarsen
// the FIFO interleaving between workers by at most one batch quantum (one
// page's worth of row costs), bounding virtual-time drift to well under a
// percent at experiment scales.
//
// All CPU charging in this package goes through this type (or useCPU for
// serialized driver work); scripts/verify.sh lints for stray Proc.Use
// calls against the CPU resource elsewhere in the package.
type cpuBudget struct {
	ctx  *Context
	m    *meter // optional span metering; nil for unmetered workers
	debt sim.Duration
}

// newBudget returns a budget charging through m's meter when non-nil.
func newBudget(ctx *Context, m *meter) *cpuBudget {
	return &cpuBudget{ctx: ctx, m: m}
}

// charge accrues CPU debt without touching the simulator.
func (b *cpuBudget) charge(d sim.Duration) { b.debt += d }

// settle flushes all accrued debt in one merged Use.
func (b *cpuBudget) settle(wp *sim.Proc) {
	if b.debt <= 0 {
		return
	}
	d := b.debt
	b.debt = 0
	if b.m != nil {
		b.m.use(wp, d)
		return
	}
	wp.Use(b.ctx.CPU, d)
}

// fetch pins a page, settling outstanding debt first whenever the request
// could touch the device or block (the page is absent, or present but its
// read is still in flight). Loaded pages pin without settling — that is
// where merging wins.
func (b *cpuBudget) fetch(wp *sim.Proc, f *disk.File, page int64) buffer.Handle {
	if !b.ctx.Pool.Loaded(f, page) {
		b.settle(wp)
	}
	if b.m != nil {
		return b.m.fetch(wp, f, page)
	}
	return b.ctx.Pool.FetchPage(wp, f, page)
}

// fetchE is fetch with the device's verdict surfaced instead of panicking:
// a failed read returns the error for fetchRetry's policy to handle.
func (b *cpuBudget) fetchE(wp *sim.Proc, f *disk.File, page int64) (buffer.Handle, error) {
	if !b.ctx.Pool.Loaded(f, page) {
		b.settle(wp)
	}
	if b.m != nil {
		return b.m.fetchE(wp, f, page)
	}
	return b.ctx.Pool.FetchPageE(wp, f, page)
}

// fetchRetry pins a page under the spec's fault policy: a failed read is
// retried up to Retry.MaxAttempts times with exponential backoff in virtual
// time. When the fault survives the policy — or the query aborts while
// backing off — the spec's control is canceled with the device error and
// fetchRetry reports false; the caller winds its worker down. A spec
// without a control keeps the pre-fault contract: the fault panics.
func (b *cpuBudget) fetchRetry(wp *sim.Proc, spec *Spec, f *disk.File, page int64) (buffer.Handle, bool) {
	pol := spec.Retry.Normalized()
	for attempt := 0; ; attempt++ {
		h, err := b.fetchE(wp, f, page)
		if err == nil {
			if spec.Progress != nil {
				*spec.Progress++
			}
			if spec.Tune != nil {
				spec.Tune.NoteFetch(f, page)
			}
			return h, true
		}
		b.ctx.Log.Emit(event.EvReadRetry, spec.QID, page, int64(attempt))
		if b.ctx.Reg != nil {
			b.ctx.Reg.Counter(obs.MetricExecReadFaults).Inc()
		}
		if spec.Ctl == nil {
			panic(fmt.Sprintf("exec: read of %v page %d failed without fault control: %v",
				f.ID(), page, err))
		}
		if attempt+1 >= pol.MaxAttempts || spec.aborted() {
			spec.Ctl.Cancel(err)
			return buffer.Handle{}, false
		}
		backoff := pol.BackoffFor(attempt)
		b.ctx.Log.Emit(event.EvRetryBackoff, spec.QID, page, int64(backoff))
		wp.Sleep(backoff)
	}
}

// prefetch issues an asynchronous read for page unless it is already
// present or in flight, charging the issue cost as new debt. The settle
// happens before the issue so the read enters the device queue at the
// row-at-a-time schedule's instant.
func (b *cpuBudget) prefetch(wp *sim.Proc, f *disk.File, page int64) {
	if b.ctx.Pool.Contains(f, page) {
		return
	}
	b.settle(wp)
	b.ctx.Pool.Prefetch(f, page)
	b.charge(b.ctx.Costs.PerPrefetch)
}

// useCPU charges serialized driver-side work (index descents, sort stages,
// bulk hash costs) immediately — there is no batching opportunity on the
// driver, and charging through one helper keeps the package's CPU
// accounting greppable.
func useCPU(p *sim.Proc, ctx *Context, d sim.Duration) {
	p.Use(ctx.CPU, d)
}

// fetchE mirrors meter.fetch for the failable path; a failed fetch still
// counts its blocked time but not a fetched page.
func (m *meter) fetchE(wp *sim.Proc, f *disk.File, page int64) (buffer.Handle, error) {
	t0 := m.ctx.Env.Now()
	h, err := m.ctx.Pool.FetchPageE(wp, f, page)
	m.io += sim.Duration(m.ctx.Env.Now() - t0)
	if err == nil {
		m.pages++
	}
	return h, err
}

// use charges d against the CPU through the meter, attributing queueing
// and hold time to the worker's span.
func (m *meter) use(wp *sim.Proc, d sim.Duration) {
	t0 := m.ctx.Env.Now()
	wp.Use(m.ctx.CPU, d)
	m.cpu += sim.Duration(m.ctx.Env.Now() - t0)
}
