package exec

import (
	"testing"
)

func TestSortedScanAgreesWithBruteForce(t *testing.T) {
	w := newWorld(t, worldOpts{rows: 5000, rpp: 33})
	for _, rg := range []struct{ lo, hi int64 }{{0, 49}, {100, 1100}, {0, 4999}} {
		wantMax, wantFound, wantRows := w.bruteForce(rg.lo, rg.hi)
		for _, degree := range []int{1, 8} {
			res := Execute(w.ctx, w.spec(SortedIndexScan, degree, rg.lo, rg.hi))
			if res.Found != wantFound || (wantFound && res.Value != wantMax) || res.RowsMatched != wantRows {
				t.Errorf("sorted deg=%d [%d,%d]: (%d,%v,%d), want (%d,%v,%d)",
					degree, rg.lo, rg.hi, res.Value, res.Found, res.RowsMatched,
					wantMax, wantFound, wantRows)
			}
		}
	}
}

func TestSortedScanNeverRereadsHeapPages(t *testing.T) {
	// Plain IS under a tiny pool re-reads heap pages; the sorted scan
	// touches each heap page at most once regardless of pool size.
	w := newWorld(t, worldOpts{rows: 20000, rpp: 33, poolPages: 128})
	plain := Execute(w.ctx, w.spec(IndexScan, 1, 0, 15000))
	w.ctx.Pool.Flush()
	sorted := Execute(w.ctx, w.spec(SortedIndexScan, 1, 0, 15000))

	heapPages := w.tab.Pages()
	leafBudget := w.idx.Leaves() + int64(w.idx.Height())
	if plain.IO.Requests <= heapPages {
		t.Errorf("plain IS read %d pages, expected re-reads beyond %d", plain.IO.Requests, heapPages)
	}
	if sorted.IO.Requests > heapPages+leafBudget {
		t.Errorf("sorted IS read %d pages, want <= heap %d + index %d",
			sorted.IO.Requests, heapPages, leafBudget)
	}
	if sorted.Runtime >= plain.Runtime {
		t.Errorf("sorted scan (%v) not faster than thrashing plain scan (%v)",
			sorted.Runtime, plain.Runtime)
	}
	if sorted.Value != plain.Value || sorted.RowsMatched != plain.RowsMatched {
		t.Error("sorted and plain scans disagree on the answer")
	}
}

func TestSortedScanWithPrefetchAndParallelism(t *testing.T) {
	run := func(degree, prefetch int) Result {
		w := newWorld(t, worldOpts{rows: 30000, rpp: 1, poolPages: 2048})
		s := w.spec(SortedIndexScan, degree, 0, 10000)
		s.PrefetchPerWorker = prefetch
		return Execute(w.ctx, s)
	}
	serial := run(1, 0)
	parallel := run(8, 0)
	prefetched := run(1, 16)
	if float64(serial.Runtime)/float64(parallel.Runtime) < 3 {
		t.Errorf("8-way sorted scan gain = %.1fx, want >= 3x",
			float64(serial.Runtime)/float64(parallel.Runtime))
	}
	if float64(serial.Runtime)/float64(prefetched.Runtime) < 3 {
		t.Errorf("prefetch-16 sorted scan gain = %.1fx, want >= 3x",
			float64(serial.Runtime)/float64(prefetched.Runtime))
	}
	if parallel.Value != serial.Value || prefetched.Value != serial.Value {
		t.Error("answers diverge across execution strategies")
	}
}

func TestAggregatesAgreeWithBruteForce(t *testing.T) {
	w := newWorld(t, worldOpts{rows: 3000, rpp: 33})
	lo, hi := int64(100), int64(900)
	var wantMax, wantMin, wantSum, wantCount int64
	first := true
	for r := int64(0); r < w.tab.Rows(); r++ {
		row := w.tab.RowAt(r)
		if row.C2 < lo || row.C2 > hi {
			continue
		}
		if first || row.C1 > wantMax {
			wantMax = row.C1
		}
		if first || row.C1 < wantMin {
			wantMin = row.C1
		}
		wantSum += row.C1
		wantCount++
		first = false
	}
	for _, m := range []Method{FullScan, IndexScan, SortedIndexScan} {
		cases := []struct {
			agg  AggKind
			want int64
		}{
			{AggMax, wantMax}, {AggMin, wantMin}, {AggSum, wantSum}, {AggCount, wantCount},
		}
		for _, c := range cases {
			s := w.spec(m, 4, lo, hi)
			s.Agg = c.agg
			res := Execute(w.ctx, s)
			if !res.Found || res.Value != c.want {
				t.Errorf("%v %v = (%d, %v), want %d", m, c.agg, res.Value, res.Found, c.want)
			}
		}
	}
}

func TestCountOfEmptyRangeIsZeroNotNull(t *testing.T) {
	w := newWorld(t, worldOpts{rows: 1000, rpp: 33})
	for _, m := range []Method{FullScan, IndexScan, SortedIndexScan} {
		s := w.spec(m, 2, 600, 599) // empty range
		s.Agg = AggCount
		res := Execute(w.ctx, s)
		if !res.Found || res.Value != 0 {
			t.Errorf("%v COUNT(empty) = (%d, %v), want (0, true)", m, res.Value, res.Found)
		}
		s.Agg = AggMax
		res = Execute(w.ctx, s)
		if res.Found {
			t.Errorf("%v MAX(empty) found, want NULL", m)
		}
	}
}

func TestSortedScanPrefetchClampedToTinyPool(t *testing.T) {
	// Deep prefetch times many workers must not exhaust a small pool: the
	// scan clamps its window rather than panicking on frame exhaustion.
	w := newWorld(t, worldOpts{rows: 20000, rpp: 1, poolPages: 96})
	_, _, wantRows := w.bruteForce(0, 8000)
	s := w.spec(SortedIndexScan, 16, 0, 8000)
	s.PrefetchPerWorker = 32
	res := Execute(w.ctx, s)
	if res.RowsMatched != wantRows {
		t.Errorf("matched %d rows, want %d", res.RowsMatched, wantRows)
	}
}

func TestSortedScanQueueDepthTracksDegree(t *testing.T) {
	w := newWorld(t, worldOpts{rows: 60000, rpp: 1, poolPages: 512})
	res := Execute(w.ctx, w.spec(SortedIndexScan, 8, 0, 20000))
	if qd := res.IO.AvgQueueDepth; qd < 4 || qd > 12 {
		t.Errorf("sorted scan degree 8: avg queue depth %.1f, want ~8", qd)
	}
}
