package exec

import (
	"errors"
	"testing"

	"pioqo/internal/btree"
	"pioqo/internal/buffer"
	"pioqo/internal/device"
	"pioqo/internal/disk"
	"pioqo/internal/fault"
	"pioqo/internal/sim"
	"pioqo/internal/table"
)

// newFaultWorld is newWorld with a fault injector between the executor and
// the device.
func newFaultWorld(t *testing.T, o worldOpts) (*world, *fault.Injector) {
	t.Helper()
	if o.cores == 0 {
		o.cores = 8
	}
	if o.poolPages == 0 {
		o.poolPages = 4096
	}
	env := sim.NewEnv(404)
	inj := fault.Wrap(env, device.NewSSD(env, device.DefaultSSDConfig()))
	m := disk.NewManager(inj)
	tab := table.NewMaterialized(m, "t", o.rows, o.rpp, 7)
	idx := btree.NewMaterialized(m, tab, 0, 0)
	return &world{
		env: env,
		tab: tab,
		idx: idx,
		ctx: &Context{
			Env:   env,
			CPU:   sim.NewResource(env, "cpu", o.cores),
			Pool:  buffer.NewPool(env, o.poolPages),
			Dev:   inj,
			Costs: DefaultCPUCosts(),
		},
	}, inj
}

// assertClean checks the post-abort invariants: no leaked sim processes, no
// pinned pages.
func assertClean(t *testing.T, w *world) {
	t.Helper()
	if n := w.env.LiveProcs(); n != 0 {
		t.Errorf("%d sim processes still live after the query", n)
	}
	if n := w.ctx.Pool.Pinned(); n != 0 {
		t.Errorf("%d pages still pinned after the query", n)
	}
}

func TestRetryRecoversTransientFaults(t *testing.T) {
	// FTS reads the heap in multi-page runs, so it issues far fewer device
	// reads than the index scans over the same range; it needs a higher
	// per-read rate for the seeded draws to produce any faults at all.
	rates := map[Method]float64{FullScan: 0.2, IndexScan: 0.05, SortedIndexScan: 0.05}
	for _, m := range []Method{FullScan, IndexScan, SortedIndexScan} {
		t.Run(m.String(), func(t *testing.T) {
			o := worldOpts{rows: 20000, rpp: 33}
			w, _ := newFaultWorld(t, o)
			healthy := Execute(w.ctx, w.specWithCtl(m, 4, 100, 2000, nil))
			if healthy.Err != nil {
				t.Fatalf("healthy run failed: %v", healthy.Err)
			}

			w2, inj := newFaultWorld(t, o)
			inj.Arm(fault.Schedule{Windows: []fault.Window{{ErrorRate: rates[m]}}})
			ctl := fault.NewControl(w2.env)
			res := Execute(w2.ctx, w2.specWithCtl(m, 4, 100, 2000, ctl))
			if res.Err != nil {
				t.Fatalf("faulted run failed despite retries: %v", res.Err)
			}
			if st := inj.Stats(); st.Errors == 0 {
				t.Fatal("injector produced no faults; the test exercised nothing")
			}
			if res.Value != healthy.Value || res.Found != healthy.Found || res.RowsMatched != healthy.RowsMatched {
				t.Errorf("faulted answer (%d,%v,%d) != healthy answer (%d,%v,%d)",
					res.Value, res.Found, res.RowsMatched,
					healthy.Value, healthy.Found, healthy.RowsMatched)
			}
			assertClean(t, w2)
		})
	}
}

func TestExhaustedRetriesAbortCleanly(t *testing.T) {
	for _, m := range []Method{FullScan, IndexScan, SortedIndexScan} {
		t.Run(m.String(), func(t *testing.T) {
			w, inj := newFaultWorld(t, worldOpts{rows: 20000, rpp: 33})
			inj.Arm(fault.Schedule{Windows: []fault.Window{{ErrorRate: 1}}})
			ctl := fault.NewControl(w.env)
			res := Execute(w.ctx, w.specWithCtl(m, 4, 100, 2000, ctl))
			if !errors.Is(res.Err, fault.ErrDeviceFault) {
				t.Fatalf("Result.Err = %v, want ErrDeviceFault", res.Err)
			}
			assertClean(t, w)
		})
	}
}

func TestDeadlineAbortsMidScan(t *testing.T) {
	for _, m := range []Method{FullScan, IndexScan, SortedIndexScan} {
		t.Run(m.String(), func(t *testing.T) {
			w, _ := newFaultWorld(t, worldOpts{rows: 200000, rpp: 33, poolPages: 512})
			ctl := fault.NewControl(w.env)
			// Far too short for a 6000-page scan, long enough to start it.
			ctl.SetDeadline(w.env.Now().Add(500 * sim.Microsecond))
			res := Execute(w.ctx, w.specWithCtl(m, 8, 0, 150000, ctl))
			if !errors.Is(res.Err, fault.ErrDeadlineExceeded) {
				t.Fatalf("Result.Err = %v, want ErrDeadlineExceeded", res.Err)
			}
			assertClean(t, w)
		})
	}
}

func TestCancelMidScanReleasesEverything(t *testing.T) {
	w, _ := newFaultWorld(t, worldOpts{rows: 200000, rpp: 33, poolPages: 512})
	ctl := fault.NewControl(w.env)
	// Cancel lands mid-scan via a scheduled event, like a host-side abort
	// arriving while workers are running.
	w.env.Schedule(sim.Millisecond, func() { ctl.Cancel(fault.ErrCanceled) })
	epoch0 := w.ctx.Pool.Epoch()
	_ = epoch0
	res := Execute(w.ctx, w.specWithCtl(IndexScan, 8, 0, 150000, ctl))
	if !errors.Is(res.Err, fault.ErrCanceled) {
		t.Fatalf("Result.Err = %v, want ErrCanceled", res.Err)
	}
	assertClean(t, w)

	// The pool must still be coherent: a fresh query over the same range
	// succeeds and matches the brute-force answer.
	wantMax, wantFound, wantRows := w.bruteForce(0, 150000)
	res2 := Execute(w.ctx, w.specWithCtl(IndexScan, 8, 0, 150000, fault.NewControl(w.env)))
	if res2.Err != nil {
		t.Fatalf("rerun after cancel failed: %v", res2.Err)
	}
	if res2.Value != wantMax || res2.Found != wantFound || res2.RowsMatched != wantRows {
		t.Errorf("rerun answer (%d,%v,%d) != brute force (%d,%v,%d)",
			res2.Value, res2.Found, res2.RowsMatched, wantMax, wantFound, wantRows)
	}
	assertClean(t, w)
}

func (w *world) specWithCtl(m Method, degree int, lo, hi int64, ctl *fault.Control) Spec {
	s := w.spec(m, degree, lo, hi)
	s.Ctl = ctl
	return s
}
