package exec

import (
	"fmt"
	"sort"

	"pioqo/internal/btree"
	"pioqo/internal/sim"
	"pioqo/internal/table"
)

// runSortedIndexScan implements the sorted index scan extension: phase one
// walks the qualifying index leaves (split over the workers like a PIS) and
// collects the matching entries; the driver then sorts them by heap page;
// phase two has the workers fetch each distinct heap page exactly once, in
// ascending page order, evaluating all of that page's matches together.
//
// Compared to a plain index scan this trades a sort (and loss of key
// order) for never re-reading a heap page — the paper's §3.1 notes it "can
// be the optimal choice in a particular selectivity range". The ascending
// fetch order also shortens seeks on spinning media.
func runSortedIndexScan(p *sim.Proc, ctx *Context, spec Spec) Result {
	t := spec.Table
	x := spec.Index
	rpp := t.RowsPerPage()

	// Clamp per-worker prefetch so in-flight prefetched frames plus worker
	// pins can never exhaust the pool (same budget as the plain index scan).
	if spec.PrefetchPerWorker > 0 {
		if budget := spec.poolCapacity(ctx)/2/spec.Degree - 1; spec.PrefetchPerWorker > budget {
			spec.PrefetchPerWorker = budget
			if spec.PrefetchPerWorker < 0 {
				spec.PrefetchPerWorker = 0
			}
		}
	}

	dbud := newBudget(ctx, nil)
	for _, pg := range x.DescentPath() {
		if spec.aborted() {
			return Result{}
		}
		h, ok := dbud.fetchRetry(p, &spec, x.File(), pg)
		if !ok {
			return Result{}
		}
		useCPU(p, ctx, ctx.Costs.PerPage)
		h.Release()
	}

	startPos, endPos := x.SearchGE(spec.Lo), x.SearchGT(spec.Hi)
	if startPos >= endPos {
		return agg{kind: spec.Agg}.result()
	}
	total := endPos - startPos
	chunk := (total + int64(spec.Degree) - 1) / int64(spec.Degree)

	// Phase one: collect matching entries, one contiguous entry sub-range
	// per worker.
	collected := make([][]btree.Entry, spec.Degree)
	wg := sim.NewWaitGroup(ctx.Env)
	for w := 0; w < spec.Degree; w++ {
		w := w
		posLo := startPos + int64(w)*chunk
		posHi := posLo + chunk
		if posHi > endPos {
			posHi = endPos
		}
		if posLo >= posHi {
			continue
		}
		wg.Add(1)
		ctx.Env.Go(fmt.Sprintf("sis-collect%d", w), func(wp *sim.Proc) {
			defer wg.Done()
			spec.startWorker(ctx, w)
			defer spec.endWorker(ctx, w)
			m := newMeter(ctx, spec.Span, fmt.Sprintf("sis-collect%d", w))
			bud := newBudget(ctx, m)
			if spec.Degree > 1 {
				bud.charge(ctx.Costs.WorkerStartup)
			}
			var buf []btree.Entry
			pos := posLo
			for pos < posHi {
				// The leaf is the abort quantum for collect workers.
				if spec.aborted() {
					break
				}
				leaf, slot := x.LeafOf(pos)
				lh, ok := bud.fetchRetry(wp, &spec, x.File(), x.LeafPage(leaf))
				if !ok {
					break
				}
				buf = x.LeafEntries(leaf, buf)
				take := len(buf) - slot
				if rem := posHi - pos; int64(take) > rem {
					take = int(rem)
				}
				bud.charge(ctx.Costs.PerPage +
					sim.Duration(take)*ctx.Costs.PerEntry)
				collected[w] = append(collected[w], buf[slot:slot+take]...)
				// One leaf is the batch quantum; settling before the release
				// keeps the pin window of the row-at-a-time schedule.
				bud.settle(wp)
				lh.Release()
				pos += int64(take)
			}
			bud.settle(wp)
			m.finish(&agg{rows: int64(len(collected[w]))})
		})
	}
	p.WaitFor(wg)
	// The phase boundary is a natural abort point: an aborted collect phase
	// never starts the fetch phase.
	if spec.aborted() {
		return Result{}
	}

	// Sort the row-id list by heap page (the "additional sorting stage").
	var entries []btree.Entry
	for _, c := range collected {
		entries = append(entries, c...)
	}
	sort.Slice(entries, func(i, j int) bool {
		pi, pj := table.PageOf(entries[i].Row, rpp), table.PageOf(entries[j].Row, rpp)
		if pi != pj {
			return pi < pj
		}
		return entries[i].Row < entries[j].Row
	})
	useCPU(p, ctx, 2*sim.Duration(len(entries))*ctx.Costs.PerEntry)

	// Phase two: consume page groups in ascending order; each worker grabs
	// the next distinct page's group, prefetching upcoming groups' pages.
	nextIdx := 0
	results := newAggs(spec.Agg, spec.Degree)
	wg2 := sim.NewWaitGroup(ctx.Env)
	for w := 0; w < spec.Degree; w++ {
		w := w
		wg2.Add(1)
		ctx.Env.Go(fmt.Sprintf("sis-fetch%d", w), func(wp *sim.Proc) {
			defer wg2.Done()
			spec.startWorker(ctx, w)
			defer spec.endWorker(ctx, w)
			m := newMeter(ctx, spec.Span, fmt.Sprintf("sis-fetch%d", w))
			defer m.finish(&results[w])
			bud := newBudget(ctx, m)
			defer bud.settle(wp)
			for {
				// The page group is the abort quantum for fetch workers.
				if spec.aborted() {
					return
				}
				i := nextIdx
				if i >= len(entries) {
					return
				}
				page := table.PageOf(entries[i].Row, rpp)
				j := i + 1
				for j < len(entries) && table.PageOf(entries[j].Row, rpp) == page {
					j++
				}
				nextIdx = j

				// Prefetch the pages of the next PrefetchPerWorker groups —
				// a sliding window over *positions*, so outstanding
				// prefetched pages stay bounded and are consumed before the
				// pool would evict them.
				if spec.PrefetchPerWorker > 0 {
					covered, k := 0, j
					for covered < spec.PrefetchPerWorker && k < len(entries) {
						pg := table.PageOf(entries[k].Row, rpp)
						bud.prefetch(wp, t.File(), pg)
						covered++
						for k < len(entries) && table.PageOf(entries[k].Row, rpp) == pg {
							k++
						}
					}
				}

				// One page group is one CPU batch: every entry here lives on
				// the pinned page, so the per-entry fetch costs merge into a
				// single settle at the next device interaction.
				th, ok := bud.fetchRetry(wp, &spec, t.File(), page)
				if !ok {
					return
				}
				bud.charge(sim.Duration(j-i) * ctx.Costs.PerRowFetch)
				for _, e := range entries[i:j] {
					row := t.RowAt(e.Row)
					if row.C2 >= spec.Lo && row.C2 <= spec.Hi {
						spec.deliver(&results[w], th, e.Row, row)
					}
				}
				bud.settle(wp)
				th.Release()
			}
		})
	}
	p.WaitFor(wg2)
	return mergeAggs(spec.Agg, results)
}
