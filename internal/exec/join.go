package exec

import (
	"fmt"
	"sort"

	"pioqo/internal/btree"
	"pioqo/internal/sim"
	"pioqo/internal/table"
)

// JoinSpec describes a parallel hash join over the C2 columns of two
// tables — the "more complex database operators" the paper's conclusion
// defers to future work, built on the same QDTT-priced scans:
//
//	SELECT agg(probe.C1) FROM probe JOIN build ON probe.C2 = build.C2
//	WHERE build.C2 BETWEEN lo AND hi
//
// The equality predicate propagates the range to the probe side, so *both*
// scans carry the predicate and both can be optimized independently —
// including their access method and parallel degree, exactly the
// "distribute parallelism opportunities among query operators" problem the
// paper motivates. The two phases run back to back, each with the device's
// full beneficial queue depth.
type JoinSpec struct {
	// Method selects the join algorithm (hash by default).
	Method JoinMethod
	// Build is the scan feeding the join. Its Lo/Hi carry the WHERE range.
	Build Spec
	// Probe describes the probed table. For a hash join it is the scan
	// whose rows look up the hash table (its Lo/Hi are narrowed to Build's
	// range); for an index nested-loop join only its Table, Index, and
	// Degree are used — each build key becomes one index lookup.
	Probe Spec
	// Agg aggregates probe-side C1 over the joined pairs.
	Agg AggKind
}

// JoinMethod selects a join algorithm.
type JoinMethod int

const (
	// HashJoin scans the probe range and hashes (§2's "parallel hash join").
	HashJoin JoinMethod = iota
	// IndexNLJoin performs one probe-index lookup per distinct build key
	// (§2's "parallel nested loop join", index-driven). Its I/O is random
	// probe-page fetches at the workers' queue depth — the access pattern
	// the QDTT model prices — so it wins when the build side yields few
	// keys against a wide probe range.
	IndexNLJoin
)

func (m JoinMethod) String() string {
	if m == IndexNLJoin {
		return "IndexNLJoin"
	}
	return "HashJoin"
}

// JoinCPUCosts extends CPUCosts with the hash-table operations. They are
// deliberately part of the same struct literal style as the scan costs.
const (
	hashInsertCost = 200 * sim.Nanosecond
	hashProbeCost  = 150 * sim.Nanosecond
)

// JoinResult extends Result with per-phase detail.
type JoinResult struct {
	Result
	BuildRows int64 // rows inserted into the hash table
	ProbeRows int64 // probe-side rows inspected
	Pairs     int64 // joined pairs produced
}

// RunJoin dispatches on the join method.
func RunJoin(p *sim.Proc, ctx *Context, spec JoinSpec) JoinResult {
	if spec.Method == IndexNLJoin {
		return RunIndexNLJoin(p, ctx, spec)
	}
	return RunHashJoin(p, ctx, spec)
}

// buildMultiplicities runs the build scan, returning key → row count.
func buildMultiplicities(p *sim.Proc, ctx *Context, build Spec) (map[int64]int64, int64) {
	ht := make(map[int64]int64)
	build.Emit = func(_ int64, row table.Row) { ht[row.C2]++ }
	res := RunScan(p, ctx, build)
	useCPU(p, ctx, sim.Duration(res.RowsMatched)*hashInsertCost)
	return ht, res.RowsMatched
}

// RunHashJoin executes the join from process context. The build scan
// populates a multiplicity map keyed by C2; the probe scan looks each of
// its matching rows up and aggregates once per joined pair.
func RunHashJoin(p *sim.Proc, ctx *Context, spec JoinSpec) JoinResult {
	var out JoinResult

	// Phase 1: build. The scan's Emit collects key multiplicities; the
	// hash-insert CPU is charged in bulk afterwards (the fine-grained
	// per-row CPU is already charged by the scan itself).
	ht, buildRows := buildMultiplicities(p, ctx, spec.Build)
	out.BuildRows = buildRows

	// Phase 2: probe, narrowed to the build range (keys outside it cannot
	// join).
	probe := spec.Probe
	if probe.Lo < spec.Build.Lo {
		probe.Lo = spec.Build.Lo
	}
	if probe.Hi > spec.Build.Hi {
		probe.Hi = spec.Build.Hi
	}
	result := agg{kind: spec.Agg}
	probe.Emit = func(_ int64, row table.Row) {
		if m := ht[row.C2]; m > 0 {
			for i := int64(0); i < m; i++ {
				result.add(row.C1)
			}
			out.Pairs += m
		}
	}
	probeRes := RunScan(p, ctx, probe)
	out.ProbeRows = probeRes.RowsMatched
	useCPU(p, ctx, sim.Duration(out.ProbeRows)*hashProbeCost)

	out.Result = result.result()
	out.RowsMatched = out.Pairs
	return out
}

// RunIndexNLJoin executes the index nested-loop variant: after the build
// phase, the distinct build keys are sorted and distributed to Probe.Degree
// workers; each key becomes one lookup in the probe table's index followed
// by heap fetches for its matching rows. The workers' outstanding lookups
// are what give the device its queue depth.
func RunIndexNLJoin(p *sim.Proc, ctx *Context, spec JoinSpec) JoinResult {
	if spec.Probe.Index == nil {
		panic("exec: IndexNLJoin without a probe-side index")
	}
	var out JoinResult
	ht, buildRows := buildMultiplicities(p, ctx, spec.Build)
	out.BuildRows = buildRows

	keys := make([]int64, 0, len(ht))
	for k := range ht {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	useCPU(p, ctx, 2*sim.Duration(len(keys))*ctx.Costs.PerEntry) // sort

	probeTab := spec.Probe.Table
	x := spec.Probe.Index
	rpp := probeTab.RowsPerPage()
	degree := spec.Probe.Degree
	if degree <= 0 {
		degree = 1
	}

	for _, pg := range x.DescentPath() {
		h := ctx.Pool.FetchPage(p, x.File(), pg)
		useCPU(p, ctx, ctx.Costs.PerPage)
		h.Release()
	}

	results := newAggs(spec.Agg, degree)
	var pairs, probeRows int64
	nextKey := 0
	wg := sim.NewWaitGroup(ctx.Env)
	for w := 0; w < degree; w++ {
		w := w
		wg.Add(1)
		ctx.Env.Go(fmt.Sprintf("nlj-w%d", w), func(wp *sim.Proc) {
			defer wg.Done()
			bud := newBudget(ctx, nil)
			defer bud.settle(wp)
			if degree > 1 {
				bud.charge(ctx.Costs.WorkerStartup)
			}
			var buf []btree.Entry
			for {
				i := nextKey
				if i >= len(keys) {
					return
				}
				nextKey = i + 1
				key := keys[i]
				mult := ht[key]

				pos, end := x.SearchGE(key), x.SearchGT(key)
				for pos < end {
					leaf, slot := x.LeafOf(pos)
					lh := bud.fetch(wp, x.File(), x.LeafPage(leaf))
					buf = x.LeafEntries(leaf, buf)
					take := len(buf) - slot
					if rem := end - pos; int64(take) > rem {
						take = int(rem)
					}
					bud.charge(ctx.Costs.PerPage +
						sim.Duration(take)*ctx.Costs.PerEntry)
					lh.Release()
					// buf is only rewritten by the next LeafEntries call, so
					// the heap-fetch loop can consume the slice in place.
					for _, e := range buf[slot : slot+take] {
						th := bud.fetch(wp, probeTab.File(), table.PageOf(e.Row, rpp))
						bud.charge(ctx.Costs.PerRowFetch)
						row := probeTab.RowAt(e.Row)
						if row.C2 == key {
							probeRows++
							for m := int64(0); m < mult; m++ {
								results[w].add(row.C1)
							}
							pairs += mult
						}
						th.Release()
					}
					// The leaf's probe batch is the settle quantum.
					bud.settle(wp)
					pos += int64(take)
				}
			}
		})
	}
	p.WaitFor(wg)

	out.Result = mergeAggs(spec.Agg, results)
	out.ProbeRows = probeRows
	out.Pairs = pairs
	out.RowsMatched = pairs
	return out
}

// ExecuteJoin runs the join to completion on ctx's environment with
// per-query metering, like Execute does for scans.
func ExecuteJoin(ctx *Context, spec JoinSpec) JoinResult {
	var res JoinResult
	ctx.Dev.Metrics().Reset()
	ctx.Pool.ResetStats()
	start := ctx.Env.Now()
	ctx.Env.Go("join", func(p *sim.Proc) {
		res = RunJoin(p, ctx, spec)
	})
	ctx.Env.Run()
	res.Runtime = sim.Duration(ctx.Env.Now() - start)
	res.IO = ctx.Dev.Metrics().Snapshot()
	res.Pool = ctx.Pool.Stats
	return res
}
