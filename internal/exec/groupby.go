package exec

import (
	"sort"

	"pioqo/internal/sim"
	"pioqo/internal/table"
)

// GroupBySpec describes a grouped aggregation over a scan — the "parallel
// hash groupby" the paper lists among SQL Anywhere's intra-query parallel
// operators (§2):
//
//	SELECT C2/GroupWidth, agg(C1) FROM t
//	WHERE C2 BETWEEN lo AND hi GROUP BY C2/GroupWidth
//
// The scan (any access method, any degree) feeds a hash of per-group
// accumulators; the grouping column is the scan's own predicate column, so
// group boundaries align with key ranges.
type GroupBySpec struct {
	Scan Spec
	// GroupWidth buckets C2 into groups of this key width (> 0).
	GroupWidth int64
	// Agg aggregates C1 within each group.
	Agg AggKind
}

// Group is one output group.
type Group struct {
	Key   int64 // C2 / GroupWidth
	Value int64 // the aggregate over the group's C1 values
	Rows  int64
}

// GroupByResult reports a grouped aggregation.
type GroupByResult struct {
	Groups  []Group // sorted by Key
	Rows    int64   // input rows consumed
	Runtime sim.Duration
}

const hashGroupCost = 250 * sim.Nanosecond // per-row group lookup + fold

// RunGroupBy executes the grouped aggregation from process context.
func RunGroupBy(p *sim.Proc, ctx *Context, spec GroupBySpec) GroupByResult {
	if spec.GroupWidth <= 0 {
		panic("exec: GroupBySpec.GroupWidth must be positive")
	}
	groups := make(map[int64]*agg)
	scan := spec.Scan
	scan.Emit = func(_ int64, row table.Row) {
		g := row.C2 / spec.GroupWidth
		a, ok := groups[g]
		if !ok {
			a = &agg{kind: spec.Agg}
			groups[g] = a
		}
		a.add(row.C1)
	}
	scanRes := RunScan(p, ctx, scan)
	useCPU(p, ctx, sim.Duration(scanRes.RowsMatched)*hashGroupCost)

	out := GroupByResult{Rows: scanRes.RowsMatched}
	for key, a := range groups {
		out.Groups = append(out.Groups, Group{Key: key, Value: a.val, Rows: a.rows})
	}
	sort.Slice(out.Groups, func(i, j int) bool { return out.Groups[i].Key < out.Groups[j].Key })
	return out
}

// ExecuteGroupBy runs the grouped aggregation to completion with per-query
// metering.
func ExecuteGroupBy(ctx *Context, spec GroupBySpec) GroupByResult {
	var res GroupByResult
	ctx.Dev.Metrics().Reset()
	ctx.Pool.ResetStats()
	start := ctx.Env.Now()
	ctx.Env.Go("groupby", func(p *sim.Proc) {
		res = RunGroupBy(p, ctx, spec)
	})
	ctx.Env.Run()
	res.Runtime = sim.Duration(ctx.Env.Now() - start)
	return res
}
