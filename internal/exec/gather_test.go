package exec

import (
	"math/rand"
	"testing"

	"pioqo/internal/btree"
	"pioqo/internal/buffer"
	"pioqo/internal/device"
	"pioqo/internal/disk"
	"pioqo/internal/sim"
	"pioqo/internal/table"
)

// shardNode is one gather shard's storage stack: its own device, pool, and
// CPU on the shared env, holding one partition of the rowset.
type shardNode struct {
	ctx *Context
	tab *table.Materialized
	idx *btree.Index
}

// buildShard materializes cols as one shard's table on a fresh device.
func buildShard(env *sim.Env, name string, cols table.Columns) *shardNode {
	dev := device.NewSSD(env, device.DefaultSSDConfig())
	m := disk.NewManager(dev)
	tab := table.NewMaterializedFrom(m, name, 33, cols.C1, cols.C2, cols.Domain)
	return &shardNode{
		ctx: &Context{
			Env:   env,
			CPU:   sim.NewResource(env, "cpu-"+name, 8),
			Pool:  buffer.NewPool(env, 4096),
			Dev:   dev,
			Costs: DefaultCPUCosts(),
		},
		tab: tab,
		idx: btree.NewMaterialized(m, tab, 0, 0),
	}
}

// scatter partitions cols across shards and builds one node per non-empty
// partition.
func scatter(env *sim.Env, cols table.Columns, shards int, assign func(int64) int) []*shardNode {
	parts, _ := cols.Partition(shards, assign)
	var nodes []*shardNode
	for i, part := range parts {
		if len(part.C1) == 0 {
			continue
		}
		nodes = append(nodes, buildShard(env, "t#"+string(rune('0'+i)), part))
	}
	return nodes
}

type emitted struct{ c1, c2 int64 }

// TestGatherOrderedMergeMatchesUnshardedScan: per-shard degree-1 index
// scans feed the k-way merge, and the merged emit stream must be
// byte-identical to the unsharded degree-1 index scan's — the keys are a
// permutation (unique), so the sequence is fully determined.
func TestGatherOrderedMergeMatchesUnshardedScan(t *testing.T) {
	const rows = 4000
	rng := rand.New(rand.NewSource(11))
	cols := table.Columns{C1: make([]int64, rows), C2: make([]int64, rows), Domain: rows}
	for i, k := range rng.Perm(rows) {
		cols.C2[i] = int64(k)
		cols.C1[i] = rng.Int63n(rows)
	}
	lo, hi := int64(250), int64(3750)

	env := sim.NewEnv(1)
	ref := buildShard(env, "t", cols)
	var want []emitted
	refSpec := Spec{Table: ref.tab, Index: ref.idx, Lo: lo, Hi: hi,
		Method: IndexScan, Degree: 1,
		Emit: func(_ int64, r table.Row) { want = append(want, emitted{r.C1, r.C2}) }}
	refRes := Execute(ref.ctx, refSpec)
	if refRes.Err != nil {
		t.Fatal(refRes.Err)
	}

	for _, shards := range []int{2, 5} {
		shards := shards
		nodes := scatter(env, cols, shards, func(k int64) int { return table.HashShard(k, shards) })
		var got []emitted
		gs := GatherSpec{Emit: func(_ int64, r table.Row) { got = append(got, emitted{r.C1, r.C2}) }}
		for _, n := range nodes {
			gs.Shards = append(gs.Shards, ShardScan{Ctx: n.ctx, Spec: Spec{
				Table: n.tab, Index: n.idx, Lo: lo, Hi: hi, Method: IndexScan, Degree: 1}})
		}
		res := ExecuteGather(gs)
		if res.Err != nil {
			t.Fatal(res.Err)
		}
		if res.RowsMatched != refRes.RowsMatched {
			t.Fatalf("shards=%d: merged %d rows, unsharded scan %d", shards, res.RowsMatched, refRes.RowsMatched)
		}
		if len(got) != len(want) {
			t.Fatalf("shards=%d: emitted %d rows, want %d", shards, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("shards=%d: row %d = %+v, unsharded emits %+v", shards, i, got[i], want[i])
			}
		}
	}
}

// TestGatherScalarAggregatesMatchUnsharded: decomposable MAX/MIN/COUNT/SUM
// partials folded by the gather merge equal the unsharded scan's answer on
// both uniform and Zipf-skewed data.
func TestGatherScalarAggregatesMatchUnsharded(t *testing.T) {
	for _, zipf := range []bool{false, true} {
		var cols table.Columns
		if zipf {
			cols = table.DrawColumnsZipf(5000, 7, 1.3)
		} else {
			cols = table.DrawColumns(5000, 7)
		}
		env := sim.NewEnv(1)
		ref := buildShard(env, "t", cols)
		nodes := scatter(env, cols, 4, func(k int64) int { return table.HashShard(k, 4) })
		for _, agg := range []AggKind{AggMax, AggMin, AggCount, AggSum} {
			for _, rg := range [][2]int64{{0, 99}, {500, 4000}, {0, 4999}, {90, 10}} {
				want := Execute(ref.ctx, Spec{Table: ref.tab, Index: ref.idx,
					Lo: rg[0], Hi: rg[1], Method: FullScan, Degree: 4, Agg: agg})
				gs := GatherSpec{Agg: agg}
				for _, n := range nodes {
					gs.Shards = append(gs.Shards, ShardScan{Ctx: n.ctx, Spec: Spec{
						Table: n.tab, Index: n.idx, Lo: rg[0], Hi: rg[1],
						Method: FullScan, Degree: 4, Agg: agg}})
				}
				got := ExecuteGather(gs)
				if got.Err != nil || want.Err != nil {
					t.Fatal(got.Err, want.Err)
				}
				if got.Value != want.Value || got.Found != want.Found || got.RowsMatched != want.RowsMatched {
					t.Errorf("zipf=%v agg=%v range=%v: gather (%d,%v,%d), unsharded (%d,%v,%d)",
						zipf, agg, rg, got.Value, got.Found, got.RowsMatched,
						want.Value, want.Found, want.RowsMatched)
				}
			}
		}
	}
}

// TestGatherSumsDeviceTraffic: ExecuteGather's IO rollup is the sum of the
// shard devices' request counts — every shard actually read its partition.
func TestGatherSumsDeviceTraffic(t *testing.T) {
	cols := table.DrawColumns(5000, 7)
	env := sim.NewEnv(1)
	nodes := scatter(env, cols, 4, func(k int64) int { return table.HashShard(k, 4) })
	gs := GatherSpec{Agg: AggCount}
	for _, n := range nodes {
		gs.Shards = append(gs.Shards, ShardScan{Ctx: n.ctx, Spec: Spec{
			Table: n.tab, Index: n.idx, Lo: 0, Hi: 4999, Method: FullScan, Degree: 2}})
	}
	res := ExecuteGather(gs)
	var sum int64
	for _, n := range nodes {
		sum += n.ctx.Dev.Metrics().Snapshot().Requests
	}
	if res.IO.Requests != sum || sum == 0 {
		t.Errorf("gather IO.Requests = %d, shard devices total %d", res.IO.Requests, sum)
	}
	if res.RowsMatched != 5000 {
		t.Errorf("counted %d rows, want 5000", res.RowsMatched)
	}
}
