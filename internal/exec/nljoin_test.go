package exec

import (
	"testing"

	"pioqo/internal/sim"
)

func TestIndexNLJoinMatchesHashJoin(t *testing.T) {
	w := newJoinWorld(t, 2000, 8000)
	for _, rg := range []struct{ lo, hi int64 }{{0, 99}, {500, 1500}, {0, 1999}} {
		hashSpec := w.spec(rg.lo, rg.hi, IndexScan, IndexScan, 4)
		hash := ExecuteJoin(w.ctx, hashSpec)
		w.ctx.Pool.Flush()

		nlSpec := w.spec(rg.lo, rg.hi, IndexScan, IndexScan, 4)
		nlSpec.Method = IndexNLJoin
		nl := ExecuteJoin(w.ctx, nlSpec)
		w.ctx.Pool.Flush()

		if nl.Pairs != hash.Pairs || nl.Value != hash.Value || nl.Found != hash.Found {
			t.Errorf("[%d,%d]: NL (pairs=%d val=%d,%v) vs hash (pairs=%d val=%d,%v)",
				rg.lo, rg.hi, nl.Pairs, nl.Value, nl.Found, hash.Pairs, hash.Value, hash.Found)
		}
	}
}

func TestIndexNLJoinWinsWithTinyBuildSide(t *testing.T) {
	// 50 build rows against an 80k-row probe over the whole key domain:
	// the hash join must scan every probe row in range, the NL join does
	// ~50 index lookups.
	w := newJoinWorld(t, 50, 80000)
	lo, hi := int64(0), int64(49) // whole build domain

	hash := ExecuteJoin(w.ctx, w.spec(lo, hi, FullScan, IndexScan, 8))
	w.ctx.Pool.Flush()
	nlSpec := w.spec(lo, hi, FullScan, IndexScan, 8)
	nlSpec.Method = IndexNLJoin
	nl := ExecuteJoin(w.ctx, nlSpec)

	if nl.Pairs != hash.Pairs {
		t.Fatalf("answers differ: NL %d vs hash %d pairs", nl.Pairs, hash.Pairs)
	}
	if nl.Runtime >= hash.Runtime {
		t.Errorf("NL join (%v) not faster than hash join (%v) with a tiny build side",
			nl.Runtime, hash.Runtime)
	}
}

func TestIndexNLJoinParallelLookupsScale(t *testing.T) {
	run := func(degree int) sim.Duration {
		w := newJoinWorld(t, 500, 50000)
		spec := w.spec(0, 499, FullScan, IndexScan, degree)
		spec.Method = IndexNLJoin
		spec.Probe.Degree = degree
		return ExecuteJoin(w.ctx, spec).Runtime
	}
	if gain := float64(run(1)) / float64(run(16)); gain < 4 {
		t.Errorf("16-way NL join gain = %.1fx, want >= 4x on SSD", gain)
	}
}

func TestIndexNLJoinWithoutProbeIndexPanics(t *testing.T) {
	w := newJoinWorld(t, 100, 100)
	spec := w.spec(0, 99, FullScan, IndexScan, 1)
	spec.Method = IndexNLJoin
	spec.Probe.Index = nil
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for NL join without probe index")
		}
	}()
	ExecuteJoin(w.ctx, spec)
}
