// Package exec implements the paper's four access methods — full table scan
// (FTS), index scan (IS), and their intra-query parallel versions (PFTS,
// PIS) — plus the per-worker table-page prefetching of §3.3, all evaluating
// the paper's probe query:
//
//	SELECT MAX(C1) FROM T WHERE C2 BETWEEN lo AND hi
//
// Operators run as simulation processes: they charge CPU time on a shared
// multi-core resource and perform page I/O through the buffer pool, so the
// device queue depth each method generates (the quantity the QDTT cost model
// prices) emerges from the execution structure rather than being asserted.
package exec

import (
	"fmt"

	"pioqo/internal/btree"
	"pioqo/internal/buffer"
	"pioqo/internal/device"
	"pioqo/internal/disk"
	"pioqo/internal/fault"
	"pioqo/internal/obs"
	"pioqo/internal/obs/event"
	"pioqo/internal/sim"
	"pioqo/internal/table"
)

// CPUCosts models per-operation CPU work in virtual time. The defaults are
// chosen so the CPU/I-O balance matches the paper's machine: one core
// saturates the HDD on 33-row pages, two cores saturate it on 500-row pages,
// and eight cores saturate well below the SSD bus on 500-row pages.
type CPUCosts struct {
	PerPage       sim.Duration // page latch + header work when a scan visits a page
	PerRow        sim.Duration // predicate evaluation + aggregation of one row (table scan)
	PerEntry      sim.Duration // processing one (key, row) entry in an index leaf
	PerRowFetch   sim.Duration // locating + evaluating one row reached through the index
	PerPrefetch   sim.Duration // issuing one asynchronous prefetch request
	WorkerStartup sim.Duration // spawning and coordinating one worker thread
}

// DefaultCPUCosts returns the calibrated defaults described above.
func DefaultCPUCosts() CPUCosts {
	return CPUCosts{
		PerPage:       10 * sim.Microsecond,
		PerRow:        150 * sim.Nanosecond,
		PerEntry:      100 * sim.Nanosecond,
		PerRowFetch:   1 * sim.Microsecond,
		PerPrefetch:   3 * sim.Microsecond,
		WorkerStartup: 100 * sim.Microsecond,
	}
}

// Context bundles the runtime an operator executes against.
type Context struct {
	Env   *sim.Env
	CPU   *sim.Resource // logical cores
	Pool  *buffer.Pool
	Dev   device.Device // for per-query I/O metering
	Costs CPUCosts

	// Tracer, when set, records a virtual-time span per operator (under
	// Spec.Span) and one track span per worker, each annotated with pages
	// fetched, rows matched, CPU time, and I/O wait. Nil disables tracing.
	Tracer *obs.Tracer

	// Reg, when set, receives engine-wide execution counters (exec.scans,
	// exec.rows_matched). Nil disables them.
	Reg *obs.Registry

	// Shares, when set, is the pool's scan-share registry: full scans
	// planned as shared (Spec.Shared) attach to their table's circulating
	// producer instead of demand-fetching. Nil disables scan sharing and
	// every scan takes the demand path.
	Shares *buffer.Shares

	// Log, when set, receives structured events for worker lifecycle and
	// fault retries, attributed to Spec.QID. Nil (the default) disables
	// emission at the cost of one pointer comparison per event site.
	Log *event.Log
}

// Method selects the access path family.
type Method int

const (
	// FullScan reads every heap page in order (FTS; PFTS when Degree > 1).
	FullScan Method = iota
	// IndexScan walks the C2 index and fetches qualifying rows' pages
	// (IS; PIS when Degree > 1).
	IndexScan
	// SortedIndexScan walks the index, sorts the qualifying row ids by
	// heap page, and fetches every needed page exactly once, in ascending
	// page order. This is the access method §3.1 of the paper describes
	// (DB2's hybrid join / sorted RID-list fetch) but could not evaluate
	// because SQL Anywhere lacks it; it is provided here as an extension.
	// It gives up index-key output order, which MAX/MIN/COUNT/SUM do not
	// need.
	SortedIndexScan
)

func (m Method) String() string {
	switch m {
	case FullScan:
		return "FTS"
	case IndexScan:
		return "IS"
	case SortedIndexScan:
		return "SortedIS"
	default:
		return fmt.Sprintf("Method(%d)", int(m))
	}
}

// AggKind selects the aggregate computed over matching rows' C1 values.
type AggKind int

const (
	// AggMax is MAX(C1), the paper's probe aggregate (default).
	AggMax AggKind = iota
	// AggMin is MIN(C1).
	AggMin
	// AggCount is COUNT(*).
	AggCount
	// AggSum is SUM(C1).
	AggSum
)

func (k AggKind) String() string {
	switch k {
	case AggMax:
		return "MAX"
	case AggMin:
		return "MIN"
	case AggCount:
		return "COUNT"
	case AggSum:
		return "SUM"
	default:
		return fmt.Sprintf("AggKind(%d)", int(k))
	}
}

// Governor is the resource-governance hook a broker lease exposes to the
// executor: the scan reports each worker starting and exiting, so a
// winding-down query's queue-depth credits can be re-brokered to queued
// queries while its stragglers finish. Implemented by broker.Lease.
type Governor interface {
	StartWorker()
	EndWorker()
}

// Spec describes one execution of the probe query.
type Spec struct {
	Table table.Table
	Index *btree.Index // required for IndexScan
	Lo,
	Hi int64 // predicate: Lo <= C2 <= Hi
	Method Method
	Degree int     // worker count; 1 = non-parallel
	Agg    AggKind // aggregate over C1; default AggMax

	// FullScan knobs: the scan reads BlockPages-page runs and keeps up to
	// PrefetchBlocks of them in flight ahead of the workers ("prefetching up
	// to n blocks ahead ... a large block consisting of several consecutive
	// pages is read at a time", §2). BlockPages <= 1 disables block reads.
	BlockPages     int
	PrefetchBlocks int

	// IndexScan knob: each worker prefetches up to PrefetchPerWorker table
	// pages referenced by its current leaf (§3.3). 0 disables prefetching,
	// giving the paper's baseline PIS whose queue depth equals Degree.
	PrefetchPerWorker int

	// Emit, when set, receives every matching row's id and values instead
	// of the built-in aggregation (Result.Value is then unset; RowsMatched
	// still counts). It is called from worker context with the simulation
	// serialized, so it needs no locking. Composite operators (joins,
	// group-by) use it to consume scan output.
	Emit func(rowID int64, row table.Row)

	// Update, when set, is applied to each matching row's id and the
	// holding page is marked dirty in the buffer pool — the write-back
	// happens on eviction or checkpoint. This is the UPDATE operator's
	// hook; it composes with Emit and the aggregates.
	Update func(rowID int64)

	// Span, when Context.Tracer is set, is the parent the operator span is
	// opened under — typically the query span opened by the caller. Nil
	// makes the operator span a root.
	Span *obs.Span

	// Gov, when set, is notified as this scan's workers start and exit.
	// Nil means ungoverned (single-query execution).
	Gov Governor

	// PoolShare, when positive, is the buffer-pool page reservation leased
	// to this scan: the readahead and prefetch clamps budget against it
	// instead of the whole pool, so concurrent queries' prefetch windows
	// cannot collectively exhaust the shared pool. Zero means ungoverned.
	PoolShare int

	// Ctl, when set, is the query's abort switch: workers and drivers check
	// it at batch boundaries (page, leaf, phase) and wind down cleanly —
	// releasing pins, exiting, reporting to the governor — when it trips.
	// It is also how injected device faults surface: an unrecoverable fetch
	// cancels the control and Result.Err carries the cause. Nil means
	// non-abortable execution where a device fault panics (the pre-fault
	// layer behavior, still used by calibration and composite operators).
	Ctl *fault.Control

	// Retry bounds the response to injected device read faults when Ctl is
	// set; the zero value means fault.DefaultRetry.
	Retry fault.RetryPolicy

	// QID attributes this scan's events in the engine event log to its
	// query (event.NoQuery / 0 for unattributed standalone executions).
	QID int64

	// Progress, when set, is incremented once per page the scan's workers
	// fetch (prefetches excluded) — the live-progress counter a Submission
	// exposes as pages processed. Increments are pure Go-side mutation:
	// no events, no randomness, no allocation. For a shared scan it counts
	// pages delivered to this consumer, not the producer's position.
	Progress *int64

	// Shared routes a FullScan through the circulating-scan consumer path:
	// the scan attaches to Context.Shares' producer for its table and
	// consumes pushed page batches over one lap. Set by the optimizer when
	// the attach path priced cheapest; ignored (demand path) when
	// Context.Shares is nil or the spec has row hooks.
	Shared bool

	// CoordPrefetch switches the demand full scan's readahead to the
	// pool's trimmed runs, which skip pages other scans' readahead already
	// covers — the multi-query prefetch coordination for concurrent
	// *unshared* scans of one file. Off (the default) preserves the exact
	// single-query device schedule.
	CoordPrefetch bool

	// Tune, when set, makes the scan elastic: workers consult the tuner at
	// batch boundaries and the fleet grows or shrinks to its target (demand
	// full scans and index scans; sorted index scans and shared riders stay
	// static). Degree then names the *initial* fleet; growth is bounded by
	// Tune.MaxDegree and the readahead clamps budget against that cap. Nil
	// (the default) is the static executor, byte-identical to pre-adaptive
	// runs.
	Tune Tuner
}

// aborted reports whether the query's control has tripped. Nil-safe.
func (s *Spec) aborted() bool { return s.Ctl.Aborted() }

// poolCapacity is the pool capacity this scan's clamps budget against: the
// lease's page reservation when governed, the whole pool otherwise.
func (s *Spec) poolCapacity(ctx *Context) int {
	c := ctx.Pool.Capacity()
	if s.PoolShare > 0 && s.PoolShare < c {
		c = s.PoolShare
	}
	return c
}

// startWorker/endWorker report one worker's lifetime to the governor and
// the event log.
func (s *Spec) startWorker(ctx *Context, w int) {
	ctx.Log.Emit(event.EvWorkerStart, s.QID, int64(w), 0)
	if s.Gov != nil {
		s.Gov.StartWorker()
	}
}

func (s *Spec) endWorker(ctx *Context, w int) {
	ctx.Log.Emit(event.EvWorkerExit, s.QID, int64(w), 0)
	if s.Gov != nil {
		s.Gov.EndWorker()
	}
}

// deliver routes one matching row to the emit hook or the aggregate.
func (s *Spec) deliver(a *agg, h buffer.Handle, rowID int64, row table.Row) {
	if s.Update != nil {
		s.Update(rowID)
		h.MarkDirty()
	}
	if s.Emit != nil {
		s.Emit(rowID, row)
		a.rows++
		return
	}
	a.add(row.C1)
}

// deliverPage routes one page's worth of rows in a single pass: rows[i]
// is row number firstRow+i, all resident on the pinned page h. Without
// hooks the predicate and aggregate fold into one tight loop (agg.addBatch);
// with hooks each match goes through deliver as before.
func (s *Spec) deliverPage(a *agg, h buffer.Handle, firstRow int64, rows []table.Row) {
	if s.Update == nil && s.Emit == nil {
		a.addBatch(rows, s.Lo, s.Hi)
		return
	}
	for i, row := range rows {
		if row.C2 >= s.Lo && row.C2 <= s.Hi {
			s.deliver(a, h, firstRow+int64(i), row)
		}
	}
}

// withDefaults normalizes zero values.
func (s Spec) withDefaults() Spec {
	if s.Degree <= 0 {
		s.Degree = 1
	}
	if s.Method == FullScan {
		if s.BlockPages == 0 {
			s.BlockPages = 64
		}
		if s.PrefetchBlocks == 0 {
			s.PrefetchBlocks = 4
		}
	}
	return s
}

// Result reports one execution.
type Result struct {
	// Value is the aggregate over matching rows' C1 (MAX by default),
	// valid when Found. COUNT(*) is always Found, reporting 0 on an empty
	// match, per SQL semantics.
	Value       int64
	Found       bool
	RowsMatched int64
	Runtime     sim.Duration

	// Err is why the query aborted (cancellation, deadline, unrecoverable
	// device fault), or nil on a complete scan. An aborted Result's Value
	// and RowsMatched reflect only the work done before the abort.
	Err error

	IO   device.Summary // device traffic during the query
	Pool buffer.Stats   // buffer pool traffic during the query
}

// Execute runs the query described by spec to completion on ctx's
// environment and returns the result. Device and pool statistics are scoped
// to this execution; buffer pool *contents* are left as the query leaves
// them (flush explicitly between runs to model a cold cache).
func Execute(ctx *Context, spec Spec) Result {
	var res Result
	ctx.Dev.Metrics().Reset()
	ctx.Pool.ResetStats()
	start := ctx.Env.Now()
	ctx.Env.Go("query", func(p *sim.Proc) {
		res = RunScan(p, ctx, spec)
	})
	ctx.Env.Run()
	res.Runtime = sim.Duration(ctx.Env.Now() - start)
	res.IO = ctx.Dev.Metrics().Snapshot()
	res.Pool = ctx.Pool.Stats
	return res
}

// RunScan executes the query from within an existing process and returns
// when the scan has finished. Runtime and I/O metering are left to the
// caller (see Execute). With a Context.Tracer, the scan records an operator
// span (under spec.Span) with per-worker child spans on their own tracks.
func RunScan(p *sim.Proc, ctx *Context, spec Spec) Result {
	spec = spec.withDefaults()
	op := ctx.Tracer.Start(spec.Span, spec.Method.String(),
		obs.KV("degree", spec.Degree),
		obs.KV("agg", spec.Agg.String()))
	spec.Span = op

	var res Result
	if spec.aborted() {
		res.Err = spec.Ctl.Err()
		op.SetAttr("err", res.Err.Error())
		op.End()
		return res
	}
	if spec.Tune != nil {
		// Completion and abort alike cancel outstanding speculation and
		// detach the controller.
		defer spec.Tune.FinishScan()
	}
	switch spec.Method {
	case FullScan:
		if spec.sharable(ctx) {
			res = runSharedFullScan(p, ctx, spec)
		} else {
			res = runFullScan(p, ctx, spec)
		}
	case IndexScan:
		if spec.Index == nil {
			panic("exec: IndexScan without an index")
		}
		res = runIndexScan(p, ctx, spec)
	case SortedIndexScan:
		if spec.Index == nil {
			panic("exec: SortedIndexScan without an index")
		}
		res = runSortedIndexScan(p, ctx, spec)
	default:
		panic("exec: unknown method " + spec.Method.String())
	}

	if res.Err = spec.Ctl.Err(); res.Err != nil {
		op.SetAttr("err", res.Err.Error())
	}
	op.SetAttr("rows", res.RowsMatched)
	op.End()
	if ctx.Reg != nil {
		ctx.Reg.Counter(obs.MetricExecScans).Inc()
		ctx.Reg.Counter(obs.MetricExecRowsMatched).Add(res.RowsMatched)
	}
	return res
}

// meter measures one worker's activity for its span: pages fetched through
// the pool, virtual time blocked on those fetches, and virtual time spent
// acquiring and holding CPU. It wraps the pool and CPU calls the workers
// make, so the split is measured where the blocking happens.
type meter struct {
	ctx   *Context
	span  *obs.Span
	pages int64
	io    sim.Duration // time blocked in FetchPage (device + join waits)
	cpu   sim.Duration // time queueing for and holding the CPU resource
}

// newMeter opens a track span for one worker under parent. With a nil
// tracer the meter still works; it just has no span to annotate.
func newMeter(ctx *Context, parent *obs.Span, name string) *meter {
	return &meter{ctx: ctx, span: ctx.Tracer.StartTrack(parent, name)}
}

func (m *meter) fetch(wp *sim.Proc, f *disk.File, page int64) buffer.Handle {
	t0 := m.ctx.Env.Now()
	h := m.ctx.Pool.FetchPage(wp, f, page)
	m.io += sim.Duration(m.ctx.Env.Now() - t0)
	m.pages++
	return h
}

// finish annotates and closes the worker span.
func (m *meter) finish(a *agg) {
	if m.span == nil {
		return
	}
	m.span.SetAttr("pages", m.pages)
	m.span.SetAttr("rows", a.rows)
	m.span.SetAttr("cpu", m.cpu)
	m.span.SetAttr("io_wait", m.io)
	m.span.End()
}

// agg accumulates one aggregate over C1 plus the matched-row count.
type agg struct {
	kind  AggKind
	val   int64
	found bool
	rows  int64
}

func (a *agg) add(c1 int64) {
	switch a.kind {
	case AggMax:
		if !a.found || c1 > a.val {
			a.val = c1
		}
	case AggMin:
		if !a.found || c1 < a.val {
			a.val = c1
		}
	case AggSum:
		a.val += c1
	case AggCount:
		a.val++
	}
	a.found = true
	a.rows++
}

// addBatch folds every row matching lo <= C2 <= hi into the accumulator,
// equivalent to calling add per match but with the aggregate switch hoisted
// out of the row loop.
func (a *agg) addBatch(rows []table.Row, lo, hi int64) {
	var n int64
	switch a.kind {
	case AggMax:
		v, found := a.val, a.found
		for _, r := range rows {
			if r.C2 < lo || r.C2 > hi {
				continue
			}
			if !found || r.C1 > v {
				v, found = r.C1, true
			}
			n++
		}
		a.val = v
	case AggMin:
		v, found := a.val, a.found
		for _, r := range rows {
			if r.C2 < lo || r.C2 > hi {
				continue
			}
			if !found || r.C1 < v {
				v, found = r.C1, true
			}
			n++
		}
		a.val = v
	case AggSum:
		var sum int64
		for _, r := range rows {
			if r.C2 >= lo && r.C2 <= hi {
				sum += r.C1
				n++
			}
		}
		a.val += sum
	case AggCount:
		for _, r := range rows {
			if r.C2 >= lo && r.C2 <= hi {
				n++
			}
		}
		a.val += n
	}
	if n > 0 {
		a.found = true
	}
	a.rows += n
}

func (a *agg) merge(b agg) {
	if b.found {
		switch a.kind {
		case AggMax:
			if !a.found || b.val > a.val {
				a.val = b.val
			}
		case AggMin:
			if !a.found || b.val < a.val {
				a.val = b.val
			}
		case AggSum, AggCount:
			a.val += b.val
		}
		a.found = true
	}
	a.rows += b.rows
}

// result converts an accumulator into a Result, applying SQL semantics:
// COUNT(*) of an empty match is 0, not NULL.
func (a agg) result() Result {
	if a.kind == AggCount && !a.found {
		return Result{Value: 0, Found: true}
	}
	return Result{Value: a.val, Found: a.found, RowsMatched: a.rows}
}

// clampReadahead bounds the full-scan readahead window so that
// prefetched-but-unconsumed frames plus the workers' pins can never exhaust
// the pool: at most half the pool, less one pinned page per worker, may be
// tied up in the block window. Both the block size and the number of
// in-flight blocks are clamped against that single window, so
// BlockPages·PrefetchBlocks + Degree ≤ Capacity/2 holds whenever the window
// can accommodate a block at all; a pool too small for any readahead
// (window < 2) degenerates to BlockPages = 1, which disables block reads.
func clampReadahead(capacity, degree, blockPages, prefetchBlocks int) (int, int) {
	if blockPages <= 1 {
		return blockPages, prefetchBlocks
	}
	window := capacity/2 - degree
	if window < 1 {
		window = 1
	}
	if blockPages > window {
		blockPages = window
	}
	if blockPages > 1 && prefetchBlocks > window/blockPages {
		prefetchBlocks = window / blockPages
		if prefetchBlocks < 1 {
			prefetchBlocks = 1
		}
	}
	return blockPages, prefetchBlocks
}

// runFullScan implements FTS/PFTS: an asynchronous block prefetcher stays
// up to PrefetchBlocks block-reads ahead while Degree workers consume heap
// pages in order, each evaluating every row on the page.
func runFullScan(p *sim.Proc, ctx *Context, spec Spec) Result {
	t := spec.Table
	pages := t.Pages()
	file := t.File()
	rpp := t.RowsPerPage()

	nextPage := int64(0) // shared work queue: next unclaimed heap page

	// An elastic scan clamps its readahead geometry against the growth cap,
	// not the initial degree: the block layout is fixed for the scan's
	// lifetime, so it must already leave room for a fully grown fleet's pins.
	fl := newFleet(&spec)
	clampDegree := spec.Degree
	if fl != nil && fl.max > clampDegree {
		clampDegree = fl.max
	}
	spec.BlockPages, spec.PrefetchBlocks = clampReadahead(
		spec.poolCapacity(ctx), clampDegree, spec.BlockPages, spec.PrefetchBlocks)

	if spec.BlockPages > 1 {
		// Flow-control window: the prefetcher stays at most PrefetchBlocks
		// block-reads ahead of the hindmost block the workers have begun
		// consuming. A plain credit counter (issued − reached) avoids any
		// ordering assumptions between prefetcher and workers. An elastic
		// scan re-evaluates the window at every issue against the live
		// degree (liveWindow) — the clampReadahead fix for adaptively grown
		// fleets on tiny pools; a static scan's window is the plan-time
		// constant, unchanged.
		window := func() int64 { return int64(spec.PrefetchBlocks) }
		if fl != nil {
			capacity := spec.poolCapacity(ctx)
			window = func() int64 {
				return int64(liveWindow(capacity, fl.live, spec.BlockPages, spec.PrefetchBlocks))
			}
		}
		blocks := (pages + int64(spec.BlockPages) - 1) / int64(spec.BlockPages)
		reached := make([]bool, blocks)
		var issued, reachedCount int64
		var wakeup *sim.Completion
		ctx.Env.Go("fts-prefetcher", func(pf *sim.Proc) {
			ps := ctx.Tracer.StartTrack(spec.Span, "fts-prefetcher",
				obs.KV("blocks", blocks), obs.KV("block_pages", spec.BlockPages))
			for b := int64(0); b < blocks; b++ {
				for issued-reachedCount >= window() && !spec.aborted() {
					w := window()
					if nb := b + w; spec.Tune != nil && nb < blocks &&
						w < int64(spec.PrefetchBlocks) {
						// A live window squeezed below the planned one (a
						// grown fleet's pins ate into it) is the next-stripe
						// guess: the stripe just past the window is a block
						// flow control dropped, offered to the speculator,
						// which pre-issues it only within its confidence and
						// pool budget. The prefetcher itself reads block b
						// the moment the window opens, so the guess must
						// reach past the window. A wrong guess (abort) is
						// canceled; a right one overlaps the stall this park
						// represents, and the trimmed run issue below skips
						// whatever the speculator already landed. A healthy
						// full-width window gets no speculation — the runs
						// it issues already saturate the device, and
						// out-of-band reads would only fragment them.
						start := nb * int64(spec.BlockPages)
						count := spec.BlockPages
						if start+int64(count) > pages {
							count = int(pages - start)
						}
						spec.Tune.SpeculateRun(file, start, count)
					}
					wakeup = sim.NewCompletion(ctx.Env)
					pf.Wait(wakeup)
				}
				// An aborted scan's workers stop claiming blocks, so the
				// prefetcher would otherwise park forever on its flow-control
				// window; it stands down instead.
				if spec.aborted() {
					break
				}
				start := b * int64(spec.BlockPages)
				count := spec.BlockPages
				if start+int64(count) > pages {
					count = int(pages - start)
				}
				// Tuned scans trim like coordinated ones: the speculator may
				// have landed part of this run already, and re-reading it
				// would double the device traffic speculation saved.
				if spec.CoordPrefetch || spec.Tune != nil {
					ctx.Pool.PrefetchRunTrimmed(file, start, count)
				} else {
					ctx.Pool.PrefetchRun(file, start, count)
				}
				issued++
			}
			ps.End()
		})
		// Claiming the first page of a block wakes the prefetcher — a
		// device-coupled action, so the claimer settles its CPU debt first,
		// pinning the wakeup to the row-at-a-time schedule's instant.
		// Claims within an already-reached block stay debt-deferred. The
		// settle blocks, so another worker can reach the same block while
		// this one sleeps — the re-check keeps each block counted once,
		// which the prefetcher's credit flow control depends on.
		onClaim := func(wp *sim.Proc, bud *cpuBudget, page int64) {
			b := page / int64(spec.BlockPages)
			if !reached[b] {
				bud.settle(wp)
				if !reached[b] {
					reached[b] = true
					reachedCount++
					if wakeup != nil && !wakeup.Fired() {
						wakeup.Fire()
					}
				}
			}
		}
		res := runFullScanWorkers(p, ctx, spec, fl, &nextPage, onClaim, rpp)
		// On abort the prefetcher may be parked on its flow-control window
		// with no worker left to wake it; one final fire lets it observe the
		// abort and exit. A completed scan's wakeups have all fired already,
		// so this never adds events to a healthy run.
		if wakeup != nil && !wakeup.Fired() {
			wakeup.Fire()
		}
		return res
	}
	return runFullScanWorkers(p, ctx, spec, fl, &nextPage, nil, rpp)
}

func runFullScanWorkers(p *sim.Proc, ctx *Context, spec Spec, fl *fleet, nextPage *int64, onClaim func(*sim.Proc, *cpuBudget, int64), rpp int) Result {
	t := spec.Table
	pages := t.Pages()
	file := t.File()

	results := newAggs(spec.Agg, fl.slots(spec.Degree))
	wg := sim.NewWaitGroup(ctx.Env)
	worker := func(w int) func(*sim.Proc) {
		return func(wp *sim.Proc) {
			defer wg.Done()
			retired := false
			if fl != nil {
				defer func() { fl.exit(retired) }()
			}
			spec.startWorker(ctx, w)
			defer spec.endWorker(ctx, w)
			m := newMeter(ctx, spec.Span, fmt.Sprintf("fts-w%d", w))
			defer m.finish(&results[w])
			bud := newBudget(ctx, m)
			defer bud.settle(wp)
			if spec.Degree > 1 || w >= spec.Degree {
				bud.charge(ctx.Costs.WorkerStartup)
			}
			var rowBuf []table.Row
			for {
				// The page is the abort — and retune — quantum: a tripped
				// control stops the worker here, before it claims more work,
				// and an elastic fleet grows or retires here.
				if spec.aborted() {
					return
				}
				if fl.tick() {
					retired = true
					return
				}
				page := *nextPage
				if page >= pages {
					if fl != nil {
						fl.done = true
					}
					return
				}
				*nextPage = page + 1
				if onClaim != nil {
					onClaim(wp, bud, page)
				}
				h, ok := bud.fetchRetry(wp, &spec, file, page)
				if !ok {
					return
				}
				firstRow := page * int64(rpp)
				lastRow := firstRow + int64(rpp)
				if lastRow > t.Rows() {
					lastRow = t.Rows()
				}
				bud.charge(ctx.Costs.PerPage +
					sim.Duration(lastRow-firstRow)*ctx.Costs.PerRow)
				rowBuf = t.RowsAt(firstRow, lastRow, rowBuf)
				spec.deliverPage(&results[w], h, firstRow, rowBuf)
				// One page is the batch quantum: settling here keeps workers
				// interleaving on the CPU at page granularity (deferring
				// across a whole prefetched block would serialize work the
				// row-at-a-time schedule ran Degree-wide), and releasing
				// after the settle preserves the old pin window.
				bud.settle(wp)
				h.Release()
			}
		}
	}
	if fl != nil {
		fl.spawn = func(w int) {
			wg.Add(1)
			ctx.Env.Go(fmt.Sprintf("fts-w%d", w), worker(w))
		}
		fl.start(spec.Degree)
	} else {
		for w := 0; w < spec.Degree; w++ {
			wg.Add(1)
			ctx.Env.Go(fmt.Sprintf("fts-w%d", w), worker(w))
		}
	}
	p.WaitFor(wg)
	return mergeAggs(spec.Agg, results)
}

// newAggs returns one accumulator per worker, all of the given kind.
func newAggs(kind AggKind, n int) []agg {
	out := make([]agg, n)
	for i := range out {
		out[i].kind = kind
	}
	return out
}

// mergeAggs folds per-worker accumulators into a Result.
func mergeAggs(kind AggKind, results []agg) Result {
	total := agg{kind: kind}
	for _, a := range results {
		total.merge(a)
	}
	return total.result()
}

// runIndexScan implements IS/PIS: one descent from the root locates the
// qualifying entry range, which is split into Degree contiguous sub-ranges,
// one per worker. Each worker walks its sub-range leaf by leaf: it reads
// the leaf page, optionally prefetches up to PrefetchPerWorker of the
// referenced table pages ahead (never across its current leaf boundary, per
// §3.3), and fetches each row's page to evaluate it.
//
// At the paper's scale (qualifying leaves ≫ workers) entry-range splitting
// behaves exactly like the paper's leaf-at-a-time distribution; at reduced
// scale it additionally parallelizes ranges narrower than a worker-count of
// leaves, with the effective parallelism still capped by the matching-row
// count — the paper's noted exception for very selective queries.
func runIndexScan(p *sim.Proc, ctx *Context, spec Spec) Result {
	t := spec.Table
	x := spec.Index
	rpp := t.RowsPerPage()

	// Clamp per-worker prefetch so in-flight prefetched frames plus worker
	// pins can never exhaust the pool (or the lease's share of it). An
	// elastic scan clamps against its growth cap — the degree the fleet may
	// reach, not the one it starts at.
	fl := newFleet(&spec)
	if spec.PrefetchPerWorker > 0 {
		clampDegree := spec.Degree
		if fl != nil && fl.max > clampDegree {
			clampDegree = fl.max
		}
		if budget := spec.poolCapacity(ctx)/2/clampDegree - 1; spec.PrefetchPerWorker > budget {
			spec.PrefetchPerWorker = budget
			if spec.PrefetchPerWorker < 0 {
				spec.PrefetchPerWorker = 0
			}
		}
	}

	// Root-to-leaf descent: internal pages are read through the pool and
	// are typically resident after the first query. The descent runs on the
	// driver, so its retries go through a throwaway budget.
	dbud := newBudget(ctx, nil)
	for _, pg := range x.DescentPath() {
		if spec.aborted() {
			return Result{}
		}
		h, ok := dbud.fetchRetry(p, &spec, x.File(), pg)
		if !ok {
			return Result{}
		}
		useCPU(p, ctx, ctx.Costs.PerPage)
		h.Release()
	}

	startPos, endPos := x.SearchGE(spec.Lo), x.SearchGT(spec.Hi)
	if startPos >= endPos {
		return agg{kind: spec.Agg}.result()
	}
	if fl != nil {
		return runIndexScanElastic(p, ctx, spec, fl, startPos, endPos, rpp)
	}
	total := endPos - startPos
	chunk := (total + int64(spec.Degree) - 1) / int64(spec.Degree)

	results := newAggs(spec.Agg, spec.Degree)
	wg := sim.NewWaitGroup(ctx.Env)
	for w := 0; w < spec.Degree; w++ {
		w := w
		posLo := startPos + int64(w)*chunk
		posHi := posLo + chunk
		if posHi > endPos {
			posHi = endPos
		}
		if posLo >= posHi {
			continue
		}
		wg.Add(1)
		ctx.Env.Go(fmt.Sprintf("pis-w%d", w), func(wp *sim.Proc) {
			defer wg.Done()
			spec.startWorker(ctx, w)
			defer spec.endWorker(ctx, w)
			m := newMeter(ctx, spec.Span, fmt.Sprintf("pis-w%d", w))
			defer m.finish(&results[w])
			bud := newBudget(ctx, m)
			defer bud.settle(wp)
			if spec.Degree > 1 {
				bud.charge(ctx.Costs.WorkerStartup)
			}
			var buf, matches []btree.Entry
			pos := posLo
			for pos < posHi {
				// The leaf batch is the abort quantum for PIS workers.
				if spec.aborted() {
					return
				}
				// One iteration is the §3.3 I/O batch: a leaf read plus the
				// bounded prefetch-and-fetch of its table pages. Span it only
				// in detailed traces — at realistic scales a query touches
				// thousands of leaves.
				var ls *obs.Span
				if ctx.Tracer.Detailed() {
					ls = ctx.Tracer.Start(m.span, "leaf-batch")
				}
				leaf, slot := x.LeafOf(pos)
				lh, ok := bud.fetchRetry(wp, &spec, x.File(), x.LeafPage(leaf))
				if !ok {
					ls.End()
					return
				}
				buf = x.LeafEntries(leaf, buf)
				take := len(buf) - slot
				if rem := posHi - pos; int64(take) > rem {
					take = int(rem)
				}
				matches = append(matches[:0], buf[slot:slot+take]...)
				bud.charge(ctx.Costs.PerPage +
					sim.Duration(len(matches))*ctx.Costs.PerEntry)
				lh.Release()

				prefetched := 0
				for i, e := range matches {
					// Keep up to PrefetchPerWorker table pages in flight,
					// clamped at this leaf's last reference. Issuing an
					// asynchronous read costs CPU — the reason the paper
					// finds one worker prefetching n does not quite match n
					// workers.
					for prefetched < i+spec.PrefetchPerWorker && prefetched < len(matches) {
						bud.prefetch(wp, t.File(),
							table.PageOf(matches[prefetched].Row, rpp))
						prefetched++
					}
					th, ok := bud.fetchRetry(wp, &spec, t.File(), table.PageOf(e.Row, rpp))
					if !ok {
						ls.End()
						return
					}
					bud.charge(ctx.Costs.PerRowFetch)
					row := t.RowAt(e.Row)
					if row.C2 >= spec.Lo && row.C2 <= spec.Hi {
						spec.deliver(&results[w], th, e.Row, row)
					}
					th.Release()
				}
				// The leaf batch is the settle quantum — without it a fully
				// warm scan would defer the whole range into one giant Use.
				bud.settle(wp)
				ls.SetAttr("entries", take)
				ls.End()
				pos += int64(take)
			}
		})
	}
	p.WaitFor(wg)
	return mergeAggs(spec.Agg, results)
}
