package exec

import (
	"fmt"
	"math"
	"sort"

	"pioqo/internal/obs"
	"pioqo/internal/obs/event"
	"pioqo/internal/sim"
	"pioqo/internal/table"
)

// The gather operator: a sharded query scatters one scan spec per shard,
// each running on its own node's storage stack (context), and merges the
// per-shard partial results in virtual time. The aggregates are
// decomposable — MAX/MIN/COUNT/SUM partials fold with the same agg.merge
// the per-worker accumulators use — and Emit-based consumers get the
// per-shard row streams interleaved back into global index order by a
// k-way ordered merge. Per-shard Progress rolls up into the query's
// counter by sharing one pointer across the shard specs (increments are
// serialized by the simulation).

// ShardScan is one shard's slice of a gather: the node-local execution
// context and the spec planned for that shard.
type ShardScan struct {
	Ctx  *Context
	Spec Spec

	// Admit, when set, runs in the shard's process before the scan starts
	// — typically awaiting a lease from the shard node's broker, binding
	// it to the spec's governor — and returns the release to run when the
	// shard finishes. It may mutate the spec (Gov, PoolShare).
	Admit func(p *sim.Proc, spec *Spec) func()
}

// GatherSpec describes a scatter-gather execution.
type GatherSpec struct {
	// Shards holds the active (unpruned) shard scans, in shard order.
	Shards []ShardScan

	// Agg is the decomposable aggregate the merge stage folds. Ignored
	// when Emit is set.
	Agg AggKind

	// Emit, when set, receives every matching row in global C2 order: the
	// per-shard streams are collected and k-way merged by key — the
	// "ordered index merge" path. Shard specs should be planned at degree
	// 1 index scans for a meaningful global order.
	Emit func(rowID int64, row table.Row)

	// Pruned is the number of shards partition pruning skipped, for the
	// scatter event and metrics.
	Pruned int

	// QID attributes gather events to the owning query.
	QID int64
}

// GatherResult reports a scatter-gather execution: the merged result plus
// the per-shard partials.
type GatherResult struct {
	Result

	// Partials holds each active shard's own result, in Shards order.
	Partials []Result
}

// emitRow is one buffered row of an ordered gather.
type emitRow struct {
	rowID int64
	row   table.Row
}

// RunGather scatters the shard scans onto their own processes, waits for
// every partial, and merges. It runs from an existing process (the
// query's coordinator); Execute-style metering is ExecuteGather's job.
func RunGather(p *sim.Proc, gs GatherSpec) GatherResult {
	if len(gs.Shards) == 0 {
		panic("exec: RunGather without shards")
	}
	ctx0 := gs.Shards[0].Ctx
	env := ctx0.Env
	ctx0.Log.Emit(event.EvShardScatter, gs.QID, int64(len(gs.Shards)), int64(gs.Pruned))
	if ctx0.Reg != nil {
		ctx0.Reg.Counter(obs.MetricShardScatters).Inc()
		ctx0.Reg.Counter(obs.MetricShardPartials).Add(int64(len(gs.Shards)))
		ctx0.Reg.Counter(obs.MetricShardPruned).Add(int64(gs.Pruned))
	}

	out := GatherResult{Partials: make([]Result, len(gs.Shards))}
	ordered := make([][]emitRow, len(gs.Shards))
	wg := sim.NewWaitGroup(env)
	wg.Add(len(gs.Shards))
	for i := range gs.Shards {
		i := i
		sh := gs.Shards[i]
		env.Go(fmt.Sprintf("%s-shard%d", p.Name(), i), func(sp *sim.Proc) {
			defer wg.Done()
			spec := sh.Spec
			if gs.Emit != nil {
				spec.Emit = func(rowID int64, row table.Row) {
					ordered[i] = append(ordered[i], emitRow{rowID, row})
				}
			}
			if sh.Admit != nil {
				release := sh.Admit(sp, &spec)
				if release != nil {
					defer release()
				}
			}
			out.Partials[i] = RunScan(sp, sh.Ctx, spec)
			sh.Ctx.Log.Emit(event.EvShardPartial, gs.QID, int64(i), out.Partials[i].RowsMatched)
		})
	}
	p.WaitFor(wg)

	// Merge stage, on the coordinator. Decomposable partials fold through
	// the same accumulator merge per-worker results use; the CPU charge
	// mirrors the optimizer's merge pricing.
	if gs.Emit != nil {
		out.Result = mergeOrdered(p, ctx0, ordered, gs.Emit)
	} else {
		parts := make([]agg, len(out.Partials))
		for i, r := range out.Partials {
			parts[i] = agg{kind: gs.Agg, val: r.Value, found: r.Found, rows: r.RowsMatched}
		}
		useCPU(p, ctx0, sim.Duration(len(parts))*ctx0.Costs.PerRow)
		out.Result = mergeAggs(gs.Agg, parts)
	}
	for _, r := range out.Partials {
		if r.Err != nil && out.Err == nil {
			out.Err = r.Err
		}
	}
	ctx0.Log.Emit(event.EvShardGatherDone, gs.QID, int64(len(gs.Shards)), out.RowsMatched)
	return out
}

// mergeOrdered k-way merges the per-shard row streams by C2 (ties broken
// by row id for determinism) and feeds them to emit in that global order.
func mergeOrdered(p *sim.Proc, ctx *Context, streams [][]emitRow, emit func(int64, table.Row)) Result {
	heads := make([]int, len(streams))
	var rows int64
	for {
		best := -1
		for i, s := range streams {
			if heads[i] >= len(s) {
				continue
			}
			if best < 0 {
				best = i
				continue
			}
			a, b := s[heads[i]], streams[best][heads[best]]
			if a.row.C2 < b.row.C2 || (a.row.C2 == b.row.C2 && a.rowID < b.rowID) {
				best = i
			}
		}
		if best < 0 {
			break
		}
		r := streams[best][heads[best]]
		heads[best]++
		rows++
		emit(r.rowID, r.row)
	}
	useCPU(p, ctx, sim.Duration(float64(rows)*
		math.Log2(math.Max(2, float64(len(streams))))*float64(ctx.Costs.PerEntry)))
	return Result{RowsMatched: rows}
}

// ExecuteGather runs a scatter-gather query to completion with per-query
// metering: every shard's device and pool counters are reset, the
// coordinator process scatters and merges, and the result carries the
// summed device traffic across shards.
func ExecuteGather(gs GatherSpec) GatherResult {
	if len(gs.Shards) == 0 {
		panic("exec: ExecuteGather without shards")
	}
	env := gs.Shards[0].Ctx.Env
	for _, sh := range gs.Shards {
		sh.Ctx.Dev.Metrics().Reset()
		sh.Ctx.Pool.ResetStats()
	}
	start := env.Now()
	var res GatherResult
	env.Go("gather", func(p *sim.Proc) {
		res = RunGather(p, gs)
	})
	env.Run()
	res.Runtime = sim.Duration(env.Now() - start)
	for _, sh := range gs.Shards {
		io := sh.Ctx.Dev.Metrics().Snapshot()
		res.IO.Requests += io.Requests
		res.IO.Bytes += io.Bytes
		res.IO.Elapsed = maxDuration(res.IO.Elapsed, io.Elapsed)
	}
	if res.IO.Elapsed > 0 {
		res.IO.ThroughputMBps = float64(res.IO.Bytes) / 1e6 /
			(float64(res.IO.Elapsed) / float64(sim.Second))
	}
	return res
}

// RunGatherGroupBy scatters per-shard grouped aggregations and merges the
// group partials: each shard builds its own group hash over its partition,
// and the coordinator folds the per-group accumulators — the decomposable
// GROUP BY merge.
func RunGatherGroupBy(p *sim.Proc, shards []ShardScan, width int64, kind AggKind, qid int64) GroupByResult {
	if len(shards) == 0 {
		panic("exec: RunGatherGroupBy without shards")
	}
	ctx0 := shards[0].Ctx
	env := ctx0.Env
	ctx0.Log.Emit(event.EvShardScatter, qid, int64(len(shards)), 0)
	if ctx0.Reg != nil {
		ctx0.Reg.Counter(obs.MetricShardScatters).Inc()
		ctx0.Reg.Counter(obs.MetricShardPartials).Add(int64(len(shards)))
	}
	partials := make([]GroupByResult, len(shards))
	wg := sim.NewWaitGroup(env)
	wg.Add(len(shards))
	for i := range shards {
		i := i
		sh := shards[i]
		env.Go(fmt.Sprintf("%s-shard%d", p.Name(), i), func(sp *sim.Proc) {
			defer wg.Done()
			spec := sh.Spec
			if sh.Admit != nil {
				if release := sh.Admit(sp, &spec); release != nil {
					defer release()
				}
			}
			partials[i] = RunGroupBy(sp, sh.Ctx, GroupBySpec{Scan: spec, GroupWidth: width, Agg: kind})
			sh.Ctx.Log.Emit(event.EvShardPartial, qid, int64(i), partials[i].Rows)
		})
	}
	p.WaitFor(wg)

	groups := make(map[int64]*agg)
	var out GroupByResult
	for _, part := range partials {
		out.Rows += part.Rows
		for _, g := range part.Groups {
			a, ok := groups[g.Key]
			if !ok {
				a = &agg{kind: kind}
				groups[g.Key] = a
			}
			a.merge(agg{kind: kind, val: g.Value, found: true, rows: g.Rows})
		}
	}
	useCPU(p, ctx0, sim.Duration(len(groups)*len(shards))*ctx0.Costs.PerRow)
	for key, a := range groups {
		out.Groups = append(out.Groups, Group{Key: key, Value: a.val, Rows: a.rows})
	}
	sort.Slice(out.Groups, func(i, j int) bool { return out.Groups[i].Key < out.Groups[j].Key })
	ctx0.Log.Emit(event.EvShardGatherDone, qid, int64(len(shards)), out.Rows)
	return out
}

func maxDuration(a, b sim.Duration) sim.Duration {
	if a > b {
		return a
	}
	return b
}
