package exec

import (
	"testing"

	"pioqo/internal/disk"
)

// rampTuner is a minimal Tuner for executor-side tests: it returns a fixed
// target immediately, so the fleet jumps to max on the first tick.
type rampTuner struct {
	target   int
	max      int
	fetches  int64
	finished bool
	offers   int
}

func (r *rampTuner) Tick(live int) int                             { return r.target }
func (r *rampTuner) MaxDegree() int                                { return r.max }
func (r *rampTuner) NoteFetch(f *disk.File, page int64)            { r.fetches++ }
func (r *rampTuner) SpeculateRun(f *disk.File, start int64, n int) { r.offers++ }
func (r *rampTuner) FinishScan()                                   { r.finished = true }

// The regression this guards: clampReadahead used to size the full scan's
// flow-control window once at plan time from the planned degree. An
// adaptively grown fleet pins one page per extra worker, so a window
// computed for degree 1 could, with a tiny pool, leave a 16-worker fleet
// and a full readahead window needing more frames than exist. The window
// is now re-evaluated against the live degree at every block issue
// (liveWindow), and the block geometry is clamped against MaxDegree up
// front — this run must complete, not panic with every frame pinned.
func TestFullScanAdaptiveGrowthTinyPool(t *testing.T) {
	w := newWorld(t, worldOpts{rows: 20000, rpp: 20, poolPages: 48})
	tu := &rampTuner{target: 16, max: 16}
	spec := w.spec(FullScan, 1, 0, 19999)
	spec.Tune = tu
	res := Execute(w.ctx, spec)
	wantMax, wantFound, wantRows := w.bruteForce(0, 19999)
	if res.Value != wantMax || res.Found != wantFound || res.RowsMatched != wantRows {
		t.Fatalf("adaptive tiny-pool scan: got (%d,%v,%d), want (%d,%v,%d)",
			res.Value, res.Found, res.RowsMatched, wantMax, wantFound, wantRows)
	}
	if !tu.finished {
		t.Fatal("Tuner.FinishScan not called")
	}
	if w.ctx.Pool.Pinned() != 0 {
		t.Fatalf("pool pins = %d after scan, want 0", w.ctx.Pool.Pinned())
	}
}

// The elastic index scan must deliver the same answer as the static one
// while growing, and retire workers cleanly when the target shrinks.
func TestIndexScanElasticMatchesStatic(t *testing.T) {
	for _, target := range []int{1, 4, 16} {
		w := newWorld(t, worldOpts{rows: 50000, rpp: 25})
		tu := &rampTuner{target: target, max: 16}
		spec := w.spec(IndexScan, 4, 100, 2099)
		spec.Tune = tu
		res := Execute(w.ctx, spec)
		wantMax, wantFound, wantRows := w.bruteForce(100, 2099)
		if res.Value != wantMax || res.Found != wantFound || res.RowsMatched != wantRows {
			t.Fatalf("target %d: got (%d,%v,%d), want (%d,%v,%d)",
				target, res.Value, res.Found, res.RowsMatched, wantMax, wantFound, wantRows)
		}
		// Only a small fleet is guaranteed unclaimed leaves ahead of it when
		// a batch finishes; a 16-worker fleet can claim the whole range
		// before the first leaf fetch returns.
		if target == 1 && tu.offers == 0 {
			t.Fatalf("target %d: no speculation offers from leaf batches", target)
		}
		if w.ctx.Pool.Pinned() != 0 {
			t.Fatalf("target %d: pool pins = %d after scan", target, w.ctx.Pool.Pinned())
		}
	}
}

// liveWindow boundary behaviour: it must shrink with the live degree, cap
// at the planned window, and never fall below one block.
func TestLiveWindowBoundary(t *testing.T) {
	cases := []struct {
		capacity, degree, blockPages, prefetchBlocks, want int
	}{
		{128, 1, 8, 4, 4},  // plenty of room: planned window
		{128, 32, 8, 4, 4}, // (64-32)/8 = 4: exactly the planned window
		{128, 40, 8, 4, 3}, // grown fleet eats into the window
		{128, 60, 8, 4, 1}, // (64-60)/8 = 0: floor of one block
		{128, 1, 1, 4, 4},  // single-page blocks: flow control untouched
	}
	for _, c := range cases {
		got := liveWindow(c.capacity, c.degree, c.blockPages, c.prefetchBlocks)
		if got != c.want {
			t.Errorf("liveWindow(%d,%d,%d,%d) = %d, want %d",
				c.capacity, c.degree, c.blockPages, c.prefetchBlocks, got, c.want)
		}
	}
}
