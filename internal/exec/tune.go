// Adaptive-parallelism hooks: the executor's side of the feedback loop that
// retunes a running scan's worker count and readahead window at batch
// boundaries. The executor owns the *mechanism* — elastic worker fleets, a
// degree-aware readahead window, speculation offers derived from plan
// structure — while the *policy* lives behind the Tuner interface
// (implemented by adapt.Controller), which in turn changes degree only
// through the broker lease path (scripts/verify.sh lints both directions).
//
// Every hook is nil-inert: a Spec without a Tuner takes exactly the static
// code path, emits no extra events, and stays byte-identical to the
// pre-adaptive executor.
package exec

import (
	"fmt"

	"pioqo/internal/btree"
	"pioqo/internal/disk"
	"pioqo/internal/obs"
	"pioqo/internal/sim"
	"pioqo/internal/table"
)

// Tuner is the feedback-controller hook a scan consults at its batch
// boundaries (page for full scans, leaf batch for index scans). Implemented
// by adapt.Controller; nil disables adaptivity.
type Tuner interface {
	// Tick is called at batch boundaries with the live worker count and
	// returns the target degree. The tuner rate-limits its own decisions in
	// virtual time; a call between decisions just returns the current
	// target. Growth above the lease's grant must be secured by the tuner
	// through the broker (Lease.Grow) *before* the larger target is
	// returned — the executor spawns workers, it never sources credits.
	Tick(live int) int

	// MaxDegree is the hard cap on elastic growth. The scan sizes its
	// per-worker state and clamps its readahead geometry against it, so a
	// fully grown fleet can never exhaust the pool.
	MaxDegree() int

	// NoteFetch reports one demand page fetch — the speculation hit
	// accounting: a speculated page that is then demand-fetched was a
	// correct guess.
	NoteFetch(f *disk.File, page int64)

	// SpeculateRun offers a predicted upcoming run [start, start+count) in
	// f, derived from plan structure (the stripe beyond a full scan's
	// flow-control window, the next index leaf and its heap-page fan). The
	// tuner pre-issues it only within its confidence and pool budget.
	SpeculateRun(f *disk.File, start int64, count int)

	// FinishScan ends the scan: outstanding speculation is canceled
	// (mispredicted pages dropped from the pool) and the controller
	// detaches. Called on completion and abort alike.
	FinishScan()
}

// fleet tracks one elastic scan's live workers. All mutation happens from
// simulation context, which is host-serialized, so plain fields suffice.
type fleet struct {
	spec    *Spec
	live    int  // workers running (including those about to leave)
	leaving int  // workers instructed to retire but not yet exited
	next    int  // next worker index to spawn
	max     int  // hard growth cap (sizes per-worker state)
	done    bool // work queue exhausted: growth is pointless now
	spawn   func(w int)
}

// newFleet returns the elastic fleet for a tuned spec, nil for a static one.
func newFleet(spec *Spec) *fleet {
	if spec.Tune == nil {
		return nil
	}
	max := spec.Tune.MaxDegree()
	if max < spec.Degree {
		max = spec.Degree
	}
	return &fleet{spec: spec, max: max}
}

// slots is the per-worker state size: the static degree, or the tuner's cap.
func (fl *fleet) slots(degree int) int {
	if fl == nil {
		return degree
	}
	return fl.max
}

// start launches the initial fleet through the spawn hook.
func (fl *fleet) start(n int) {
	for i := 0; i < n; i++ {
		fl.live++
		fl.spawn(fl.next)
		fl.next++
	}
}

// tick consults the tuner at a batch boundary. It reports true when the
// calling worker should retire (the target fell below the effective fleet);
// otherwise it spawns workers up to the target. Workers that retire wind
// down through the normal teardown path — endWorker reports to the
// governor, which reclaims the lease's credits proportionally.
func (fl *fleet) tick() bool {
	if fl == nil {
		return false
	}
	eff := fl.live - fl.leaving
	t := fl.spec.Tune.Tick(eff)
	if t < 1 {
		t = 1
	}
	if t > fl.max {
		t = fl.max
	}
	if t < eff && eff > 1 {
		fl.leaving++
		return true
	}
	if fl.done {
		return false
	}
	for fl.live-fl.leaving < t && fl.next < fl.max {
		fl.live++
		fl.spawn(fl.next)
		fl.next++
	}
	return false
}

// exit records one worker leaving, however it left.
func (fl *fleet) exit(viaTick bool) {
	fl.live--
	if viaTick {
		fl.leaving--
	}
}

// liveWindow is clampReadahead's flow-control window re-evaluated at block
// issue time against the *live* degree: an adaptively grown fleet pins more
// pages, so the number of in-flight readahead blocks shrinks as workers
// join. The floor of one block keeps the scan moving — safe because the
// block geometry was clamped against MaxDegree up front, so one block plus
// a full fleet's pins always fits in half the pool.
func liveWindow(capacity, degree, blockPages, prefetchBlocks int) int {
	if blockPages <= 1 {
		return prefetchBlocks
	}
	n := (capacity/2 - degree) / blockPages
	if n > prefetchBlocks {
		n = prefetchBlocks
	}
	if n < 1 {
		n = 1
	}
	return n
}

// runIndexScanElastic is the index scan's adaptive twin: instead of the
// static per-worker entry-range split, workers claim leaf batches from a
// shared cursor, so a fleet that grows or shrinks mid-flight stays
// load-balanced without rechunking. Batch boundaries double as tuner ticks,
// and each processed leaf offers the *next* leaf and its heap-page fan to
// the speculator (§3.3 stops per-worker prefetch at the leaf boundary —
// speculation is how the adaptive scan reaches across it).
func runIndexScanElastic(p *sim.Proc, ctx *Context, spec Spec, fl *fleet, startPos, endPos int64, rpp int) Result {
	t := spec.Table
	x := spec.Index

	cursor := startPos // shared work queue: next unclaimed entry position

	// Claims are sized by guided self-scheduling: each claim takes a 1/max
	// share of the *remaining* range (never more than the rest of its
	// leaf). Early claims match the static scan's per-worker chunk, so a
	// full fleet's first round mirrors the static split; later claims
	// shrink geometrically, so the tail never hands one worker a full
	// share while the rest sit idle — the makespan cliff a fixed quantum
	// falls off. Re-claiming within a leaf is cheap (the leaf page is
	// pool-resident after its first fetch) but not free: every claim pays
	// the leaf inspection again, which is why claims start coarse.
	//
	// Workers beyond the entry count could never find a claim: cap the
	// fleet so they are never spawned — the static path likewise skips
	// workers whose chunk is empty, and on a narrow range the useless
	// startups would otherwise contend for cores with the scan itself.
	if total := endPos - startPos; int64(fl.max) > total {
		fl.max = int(total)
	}
	initial := spec.Degree
	if initial > fl.max {
		initial = fl.max
	}

	results := newAggs(spec.Agg, fl.slots(spec.Degree))
	wg := sim.NewWaitGroup(ctx.Env)
	worker := func(w int) func(*sim.Proc) {
		return func(wp *sim.Proc) {
			defer wg.Done()
			retired := false
			defer func() { fl.exit(retired) }()
			spec.startWorker(ctx, w)
			defer spec.endWorker(ctx, w)
			m := newMeter(ctx, spec.Span, fmt.Sprintf("pis-w%d", w))
			defer m.finish(&results[w])
			bud := newBudget(ctx, m)
			defer bud.settle(wp)
			if spec.Degree > 1 || w >= spec.Degree {
				bud.charge(ctx.Costs.WorkerStartup)
			}
			var buf, matches, nextBuf []btree.Entry
			for {
				// The leaf batch is the abort and retune quantum.
				if spec.aborted() {
					return
				}
				if fl.tick() {
					retired = true
					return
				}
				pos := cursor
				if pos >= endPos {
					fl.done = true
					return
				}
				leaf, slot := x.LeafOf(pos)
				// Claim the rest of this leaf (entry counts are index
				// structure, host-visible without I/O) before blocking on the
				// leaf read, so concurrent workers never double-claim.
				buf = x.LeafEntries(leaf, buf)
				take := len(buf) - slot
				rem := endPos - pos
				if int64(take) > rem {
					take = int(rem)
				}
				if quantum := (rem + int64(fl.max) - 1) / int64(fl.max); int64(take) > quantum {
					take = int(quantum)
				}
				cursor = pos + int64(take)
				var ls *obs.Span
				if ctx.Tracer.Detailed() {
					ls = ctx.Tracer.Start(m.span, "leaf-batch")
				}
				lh, ok := bud.fetchRetry(wp, &spec, x.File(), x.LeafPage(leaf))
				if !ok {
					ls.End()
					return
				}
				matches = append(matches[:0], buf[slot:slot+take]...)
				bud.charge(ctx.Costs.PerPage +
					sim.Duration(len(matches))*ctx.Costs.PerEntry)
				lh.Release()

				// Offer the next leaf's fan to the speculator: its leaf page
				// plus the first few heap pages its entries reference — but
				// only when the qualifying range actually reaches into that
				// leaf, or every entry would be a guaranteed misprediction.
				if nl := leaf + 1; nl < x.Leaves() && cursor < endPos &&
					pos-int64(slot)+int64(len(buf)) < endPos {
					spec.Tune.SpeculateRun(x.File(), x.LeafPage(nl), 1)
					nextBuf = x.LeafEntries(nl, nextBuf)
					fan := len(nextBuf)
					if fan > speculativeFan {
						fan = speculativeFan
					}
					for i := 0; i < fan; i++ {
						spec.Tune.SpeculateRun(t.File(),
							table.PageOf(nextBuf[i].Row, rpp), 1)
					}
				}

				prefetched := 0
				for i, e := range matches {
					for prefetched < i+spec.PrefetchPerWorker && prefetched < len(matches) {
						bud.prefetch(wp, t.File(),
							table.PageOf(matches[prefetched].Row, rpp))
						prefetched++
					}
					th, ok := bud.fetchRetry(wp, &spec, t.File(), table.PageOf(e.Row, rpp))
					if !ok {
						ls.End()
						return
					}
					bud.charge(ctx.Costs.PerRowFetch)
					row := t.RowAt(e.Row)
					if row.C2 >= spec.Lo && row.C2 <= spec.Hi {
						spec.deliver(&results[w], th, e.Row, row)
					}
					th.Release()
				}
				bud.settle(wp)
				ls.SetAttr("entries", take)
				ls.End()
			}
		}
	}
	fl.spawn = func(w int) {
		wg.Add(1)
		ctx.Env.Go(fmt.Sprintf("pis-w%d", w), worker(w))
	}
	fl.start(initial)
	p.WaitFor(wg)
	return mergeAggs(spec.Agg, results)
}

// speculativeFan bounds how many of the next leaf's heap pages one leaf
// batch offers to the speculator.
const speculativeFan = 4
