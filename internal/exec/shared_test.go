package exec

import (
	"fmt"
	"testing"

	"pioqo/internal/buffer"
	"pioqo/internal/fault"
	"pioqo/internal/sim"
)

// withShares installs a scan-share registry on the world's context.
func (w *world) withShares() *buffer.Shares {
	sh := buffer.NewShares(w.env, w.ctx.Pool, buffer.ShareConfig{})
	w.ctx.Shares = sh
	return sh
}

func TestSharedScanMatchesDemandScan(t *testing.T) {
	w := newWorld(t, worldOpts{rows: 8000, rpp: 33, poolPages: 512})
	w.withShares()
	ranges := []struct{ lo, hi int64 }{{0, 7999}, {100, 5100}, {0, 49}}
	for _, rg := range ranges {
		demand := w.spec(FullScan, 1, rg.lo, rg.hi)
		want := Execute(w.ctx, demand)

		w.ctx.Pool.Flush()
		shared := w.spec(FullScan, 1, rg.lo, rg.hi)
		shared.Shared = true
		got := Execute(w.ctx, shared)

		if got.Value != want.Value || got.Found != want.Found || got.RowsMatched != want.RowsMatched {
			t.Errorf("range [%d,%d]: shared=(%d,%v,%d rows), demand=(%d,%v,%d rows)",
				rg.lo, rg.hi, got.Value, got.Found, got.RowsMatched,
				want.Value, want.Found, want.RowsMatched)
		}
		if n := w.ctx.Pool.Pinned(); n != 0 {
			t.Errorf("range [%d,%d]: %d pages pinned after shared scan", rg.lo, rg.hi, n)
		}
		if n := w.ctx.Shares.Live(); n != 0 {
			t.Errorf("range [%d,%d]: %d consumers still attached", rg.lo, rg.hi, n)
		}
	}
}

// TestSharedScanAmortizesDeviceWork is the subsystem's reason to exist: k
// concurrent full scans of one table must cost the device about one
// circulation, not k independent reads of every heap page.
func TestSharedScanAmortizesDeviceWork(t *testing.T) {
	const k = 8
	w := newWorld(t, worldOpts{rows: 33 * 2048, rpp: 33, poolPages: 512})
	w.withShares()

	wantMax, wantFound, wantRows := w.bruteForce(0, w.tab.Rows()-1)
	w.ctx.Dev.Metrics().Reset()
	results := make([]Result, k)
	for i := 0; i < k; i++ {
		i := i
		w.env.Go(fmt.Sprintf("q%d", i), func(p *sim.Proc) {
			s := w.spec(FullScan, 1, 0, w.tab.Rows()-1)
			s.Shared = true
			s.QID = int64(i)
			results[i] = RunScan(p, w.ctx, s)
		})
	}
	w.env.Run()

	for i, res := range results {
		if !wantFound || res.Value != wantMax || res.RowsMatched != wantRows || res.Err != nil {
			t.Errorf("scan %d: got (max=%d rows=%d err=%v), want (max=%d rows=%d)",
				i, res.Value, res.RowsMatched, res.Err, wantMax, wantRows)
		}
	}
	pages := w.tab.Pages()
	moved := w.ctx.Dev.Metrics().Snapshot().Bytes / 4096 // device pages transferred
	if moved < pages {
		t.Errorf("device moved %d pages, table has %d — scans read less than one circulation?", moved, pages)
	}
	// All k riders overlap from the first instant, so they share one lap
	// plus bounded slack (readahead re-issue after evictions). Demand
	// scans would move ~k×pages.
	if limit := pages * 2; moved > limit {
		t.Errorf("device moved %d pages for %d shared scans of a %d-page table; want ≤ %d (≈one circulation)",
			moved, k, pages, limit)
	}
	if n := w.ctx.Pool.Pinned(); n != 0 {
		t.Errorf("%d pages pinned after all scans", n)
	}
}

func TestSharedScanAbortWindsDownCleanly(t *testing.T) {
	w := newWorld(t, worldOpts{rows: 33 * 2048, rpp: 33, poolPages: 512})
	w.withShares()
	ctl := fault.NewControl(w.env)
	ctl.SetDeadline(w.env.Now().Add(2 * sim.Millisecond))
	s := w.spec(FullScan, 1, 0, w.tab.Rows()-1)
	s.Shared = true
	s.Ctl = ctl
	res := Execute(w.ctx, s)
	if res.Err == nil {
		t.Fatal("deadline-armed shared scan completed without error")
	}
	if n := w.ctx.Pool.Pinned(); n != 0 {
		t.Errorf("%d pages pinned after aborted shared scan", n)
	}
	if n := w.ctx.Shares.Live(); n != 0 {
		t.Errorf("%d consumers still attached after abort", n)
	}
	if n := w.env.LiveProcs(); n != 0 {
		t.Errorf("%d sim processes still live after abort", n)
	}
}

// TestSharedScanProgressCountsOwnDelivery pins the Submission.Progress
// contract: the counter tracks pages delivered to this consumer, ending at
// exactly the table's page count even for a mid-lap join.
func TestSharedScanProgressCountsOwnDelivery(t *testing.T) {
	w := newWorld(t, worldOpts{rows: 8000, rpp: 33, poolPages: 512})
	w.withShares()
	var early, late int64
	w.env.Go("early", func(p *sim.Proc) {
		s := w.spec(FullScan, 1, 0, 7999)
		s.Shared = true
		s.Progress = &early
		RunScan(p, w.ctx, s)
	})
	w.env.Go("late", func(p *sim.Proc) {
		p.Sleep(1 * sim.Millisecond) // join the circulation mid-lap
		s := w.spec(FullScan, 1, 0, 7999)
		s.Shared = true
		s.QID = 2
		s.Progress = &late
		RunScan(p, w.ctx, s)
	})
	w.env.Run()
	if pages := w.tab.Pages(); early != pages || late != pages {
		t.Errorf("progress early=%d late=%d, want both exactly %d (pages delivered to each consumer)",
			early, late, pages)
	}
}
