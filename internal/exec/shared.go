// The shared full-scan consumer path: instead of demand-fetching heap
// pages, the scan attaches to its table's circulating producer
// (buffer.Shares) and consumes pushed page batches — one full lap, every
// page exactly once, starting wherever the producer happens to be. The
// producer owns all device interaction and pinning; this file must not
// demand-fetch (scripts/verify.sh rejects FetchPage calls here), so the
// consumer is pure CPU: evaluate rows, account batch CPU exactly like the
// demand path, report progress per delivered page.
package exec

import (
	"fmt"

	"pioqo/internal/sim"
	"pioqo/internal/table"
)

// sharable reports whether this spec can ride a circulating scan: a plain
// aggregate full scan with no row hooks (Emit delivers rows in claim
// order and Update needs the pinned handle — both are demand-path only).
func (s *Spec) sharable(ctx *Context) bool {
	return s.Shared && ctx.Shares != nil && s.Method == FullScan &&
		s.Emit == nil && s.Update == nil
}

// runSharedFullScan consumes one lap of the table's circulating scan.
// CPU accounting is the demand path's, unchanged: PerPage plus PerRow per
// row charged into the budget, settled at page granularity — the consumer
// differs only in who moves the bytes.
func runSharedFullScan(p *sim.Proc, ctx *Context, spec Spec) Result {
	t := spec.Table
	rpp := int64(t.RowsPerPage())

	spec.startWorker(ctx, 0)
	defer spec.endWorker(ctx, 0)
	a := agg{kind: spec.Agg}
	m := newMeter(ctx, spec.Span, "fts-shared")
	defer m.finish(&a)
	bud := newBudget(ctx, m)
	defer bud.settle(p)

	cons := ctx.Shares.Attach(spec.QID, t.File(), t.Pages())
	defer cons.Detach()
	var rowBuf []table.Row
	for {
		if spec.aborted() {
			return a.result()
		}
		t0 := ctx.Env.Now()
		run, ok, err := cons.Next(p)
		m.io += sim.Duration(ctx.Env.Now() - t0)
		if err != nil {
			// A device fault that survived the producer's retries. The
			// consumer winds down like a demand worker whose fetchRetry
			// exhausted: cancel the control and let RunScan report it.
			if spec.Ctl == nil {
				panic(fmt.Sprintf("exec: shared scan of %v failed: %v", t.File().ID(), err))
			}
			spec.Ctl.Cancel(err)
			return a.result()
		}
		if !ok {
			return a.result()
		}
		for i := 0; i < run.Count; i++ {
			if spec.aborted() {
				return a.result()
			}
			page := run.Start + int64(i)
			firstRow := page * rpp
			lastRow := firstRow + rpp
			if lastRow > t.Rows() {
				lastRow = t.Rows()
			}
			bud.charge(ctx.Costs.PerPage +
				sim.Duration(lastRow-firstRow)*ctx.Costs.PerRow)
			rowBuf = t.RowsAt(firstRow, lastRow, rowBuf)
			a.addBatch(rowBuf, spec.Lo, spec.Hi)
			m.pages++
			if spec.Progress != nil {
				// Pages delivered to *this* consumer — not the producer's
				// position, which serves every attached query at once.
				*spec.Progress++
			}
			// One page is the batch quantum, as on the demand path.
			bud.settle(p)
		}
		cons.Consumed()
	}
}
