package exec

import (
	"testing"

	"pioqo/internal/btree"
	"pioqo/internal/buffer"
	"pioqo/internal/device"
	"pioqo/internal/disk"
	"pioqo/internal/sim"
	"pioqo/internal/table"
)

// benchWorld builds a synthetic-backed world sized for benchmarks.
func benchWorld(rows int64, rpp, poolPages int) (*Context, *table.Synthetic, *btree.Index) {
	env := sim.NewEnv(77)
	dev := device.NewSSD(env, device.DefaultSSDConfig())
	m := disk.NewManager(dev)
	tab := table.NewSynthetic(m, "t", rows, rpp, 7)
	idx := btree.NewSynthetic(m, tab, 0, 0)
	ctx := &Context{
		Env:   env,
		CPU:   sim.NewResource(env, "cpu", 8),
		Pool:  buffer.NewPool(env, poolPages),
		Dev:   dev,
		Costs: DefaultCPUCosts(),
	}
	return ctx, tab, idx
}

// BenchmarkFullScan measures host cost per simulated full-table-scan page.
func BenchmarkFullScan(b *testing.B) {
	ctx, tab, idx := benchWorld(33_000, 33, 512)
	spec := Spec{Table: tab, Index: idx, Lo: 0, Hi: 10, Method: FullScan, Degree: 8}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ctx.Pool.Flush()
		Execute(ctx, spec)
	}
	b.ReportMetric(float64(tab.Pages()), "pages/op")
}

// BenchmarkParallelIndexScan measures a 32-way PIS over ~3000 rows.
func BenchmarkParallelIndexScan(b *testing.B) {
	ctx, tab, idx := benchWorld(100_000, 33, 2048)
	spec := Spec{Table: tab, Index: idx, Lo: 0, Hi: 2999, Method: IndexScan, Degree: 32}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ctx.Pool.Flush()
		Execute(ctx, spec)
	}
	b.ReportMetric(3000, "rows/op")
}

// BenchmarkSortedIndexScan measures the sorted-scan extension on the same
// workload as BenchmarkParallelIndexScan.
func BenchmarkSortedIndexScan(b *testing.B) {
	ctx, tab, idx := benchWorld(100_000, 33, 2048)
	spec := Spec{Table: tab, Index: idx, Lo: 0, Hi: 2999, Method: SortedIndexScan, Degree: 32}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ctx.Pool.Flush()
		Execute(ctx, spec)
	}
}

// BenchmarkPrefetchingIndexScan measures the §3.3 prefetching path.
func BenchmarkPrefetchingIndexScan(b *testing.B) {
	ctx, tab, idx := benchWorld(100_000, 33, 2048)
	spec := Spec{Table: tab, Index: idx, Lo: 0, Hi: 2999, Method: IndexScan,
		Degree: 4, PrefetchPerWorker: 16}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ctx.Pool.Flush()
		Execute(ctx, spec)
	}
}

// benchmarkFullScanHostTime measures host nanoseconds per simulated row on
// a large full scan — the PR-3 batch-kernel headline number. The predicate
// matches ~half the rows so the deliver path is exercised, and every run is
// cold so the page fetches stay on the device path.
func benchmarkFullScanHostTime(b *testing.B, degree int) {
	const rows = 2_000_000
	ctx, tab, idx := benchWorld(rows, 500, 2048)
	spec := Spec{Table: tab, Index: idx, Lo: 0, Hi: rows / 2, Method: FullScan, Degree: degree}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ctx.Pool.Flush()
		Execute(ctx, spec)
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/float64(rows), "ns/simrow")
}

// BenchmarkFullScanHostTime is the before/after gate for BENCH_PR3.json:
// host ns per simulated row, serial and with eight contending workers.
func BenchmarkFullScanHostTime(b *testing.B) {
	b.Run("degree1", func(b *testing.B) { benchmarkFullScanHostTime(b, 1) })
	b.Run("degree8", func(b *testing.B) { benchmarkFullScanHostTime(b, 8) })
}

// BenchmarkHashJoinBuild measures the hash-join build phase: a full-scan
// feed whose Emit hook populates the multiplicity table, dominated by the
// per-row delivery path.
func BenchmarkHashJoinBuild(b *testing.B) {
	const rows = 500_000
	ctx, tab, idx := benchWorld(rows, 500, 2048)
	spec := JoinSpec{
		Build: Spec{Table: tab, Index: idx, Lo: 0, Hi: rows - 1, Method: FullScan, Degree: 8},
		Probe: Spec{Table: tab, Index: idx, Lo: 0, Hi: 0, Method: IndexScan, Degree: 1},
		Agg:   AggMax,
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ctx.Pool.Flush()
		ExecuteJoin(ctx, spec)
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/float64(rows), "ns/buildrow")
}
