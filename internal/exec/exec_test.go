package exec

import (
	"testing"

	"pioqo/internal/btree"
	"pioqo/internal/buffer"
	"pioqo/internal/device"
	"pioqo/internal/disk"
	"pioqo/internal/sim"
	"pioqo/internal/table"
)

// world is a complete single-table database over one simulated device.
type world struct {
	env *sim.Env
	ctx *Context
	tab *table.Materialized
	idx *btree.Index
}

type worldOpts struct {
	dev       string // "ssd" or "hdd"
	rows      int64
	rpp       int
	poolPages int
	cores     int
}

func newWorld(t *testing.T, o worldOpts) *world {
	t.Helper()
	if o.dev == "" {
		o.dev = "ssd"
	}
	if o.cores == 0 {
		o.cores = 8
	}
	if o.poolPages == 0 {
		o.poolPages = 4096
	}
	env := sim.NewEnv(404)
	var dev device.Device
	if o.dev == "hdd" {
		dev = device.NewHDD(env, device.DefaultHDDConfig())
	} else {
		dev = device.NewSSD(env, device.DefaultSSDConfig())
	}
	m := disk.NewManager(dev)
	tab := table.NewMaterialized(m, "t", o.rows, o.rpp, 7)
	idx := btree.NewMaterialized(m, tab, 0, 0)
	return &world{
		env: env,
		tab: tab,
		idx: idx,
		ctx: &Context{
			Env:   env,
			CPU:   sim.NewResource(env, "cpu", o.cores),
			Pool:  buffer.NewPool(env, o.poolPages),
			Dev:   dev,
			Costs: DefaultCPUCosts(),
		},
	}
}

// bruteForce computes the reference answer on the raw table.
func (w *world) bruteForce(lo, hi int64) (max int64, found bool, rows int64) {
	for r := int64(0); r < w.tab.Rows(); r++ {
		row := w.tab.RowAt(r)
		if row.C2 >= lo && row.C2 <= hi {
			if !found || row.C1 > max {
				max, found = row.C1, true
			}
			rows++
		}
	}
	return
}

func (w *world) spec(m Method, degree int, lo, hi int64) Spec {
	return Spec{Table: w.tab, Index: w.idx, Lo: lo, Hi: hi, Method: m, Degree: degree}
}

func TestAllMethodsAgreeWithBruteForce(t *testing.T) {
	w := newWorld(t, worldOpts{rows: 5000, rpp: 33})
	ranges := []struct{ lo, hi int64 }{{0, 49}, {100, 1100}, {0, 4999}, {4990, 4999}}
	for _, rg := range ranges {
		wantMax, wantFound, wantRows := w.bruteForce(rg.lo, rg.hi)
		for _, m := range []Method{FullScan, IndexScan} {
			for _, degree := range []int{1, 4, 32} {
				res := Execute(w.ctx, w.spec(m, degree, rg.lo, rg.hi))
				if res.Found != wantFound || (wantFound && res.Value != wantMax) {
					t.Errorf("%v deg=%d range [%d,%d]: max=(%d,%v), want (%d,%v)",
						m, degree, rg.lo, rg.hi, res.Value, res.Found, wantMax, wantFound)
				}
				if res.RowsMatched != wantRows {
					t.Errorf("%v deg=%d range [%d,%d]: rows=%d, want %d",
						m, degree, rg.lo, rg.hi, res.RowsMatched, wantRows)
				}
			}
		}
	}
}

func TestIndexScanWithPrefetchStaysCorrect(t *testing.T) {
	w := newWorld(t, worldOpts{rows: 4000, rpp: 33})
	wantMax, wantFound, wantRows := w.bruteForce(200, 900)
	for _, pf := range []int{1, 8, 32} {
		s := w.spec(IndexScan, 2, 200, 900)
		s.PrefetchPerWorker = pf
		res := Execute(w.ctx, s)
		if !wantFound || res.Value != wantMax || res.RowsMatched != wantRows {
			t.Errorf("prefetch=%d: got (max=%d rows=%d), want (max=%d rows=%d)",
				pf, res.Value, res.RowsMatched, wantMax, wantRows)
		}
	}
}

func TestEmptyRange(t *testing.T) {
	w := newWorld(t, worldOpts{rows: 1000, rpp: 33})
	for _, m := range []Method{FullScan, IndexScan} {
		res := Execute(w.ctx, w.spec(m, 4, 600, 599))
		if res.Found || res.RowsMatched != 0 {
			t.Errorf("%v on empty range: found=%v rows=%d", m, res.Found, res.RowsMatched)
		}
	}
}

func TestPISQueueDepthTracksDegree(t *testing.T) {
	// The paper (§2): "the I/O pattern of PIS with parallel degree n is
	// parallel random I/O with constant queue depth of n."
	w := newWorld(t, worldOpts{rows: 60000, rpp: 1, poolPages: 512})
	for _, degree := range []int{1, 8} {
		w.ctx.Pool.Flush()
		res := Execute(w.ctx, w.spec(IndexScan, degree, 0, 20000))
		got := res.IO.AvgQueueDepth
		if got < 0.6*float64(degree) || got > 1.5*float64(degree) {
			t.Errorf("PIS degree %d: avg queue depth %.2f, want ~%d", degree, got, degree)
		}
	}
}

func TestPISScalesOnSSDButBarelyOnHDD(t *testing.T) {
	// The range must span many index leaves; with fewer leaves than
	// workers, parallelism is capped by the leaf count (the paper's noted
	// exception for very selective queries).
	run := func(dev string, degree int) sim.Duration {
		w := newWorld(t, worldOpts{dev: dev, rows: 30000, rpp: 1, poolPages: 512})
		return Execute(w.ctx, w.spec(IndexScan, degree, 0, 12000)).Runtime
	}
	ssdGain := float64(run("ssd", 1)) / float64(run("ssd", 32))
	hddGain := float64(run("hdd", 1)) / float64(run("hdd", 32))
	if ssdGain < 8 {
		t.Errorf("PIS32/IS speedup on SSD = %.1fx, want >= 8x", ssdGain)
	}
	if hddGain > 6 {
		t.Errorf("PIS32/IS speedup on HDD = %.1fx, want modest (paper: ~2.4x)", hddGain)
	}
	if ssdGain < 2*hddGain {
		t.Errorf("SSD gain %.1fx not clearly above HDD gain %.1fx", ssdGain, hddGain)
	}
}

func TestPFTSBeatsFTSOnSSD(t *testing.T) {
	run := func(degree int) sim.Duration {
		w := newWorld(t, worldOpts{rows: 30000, rpp: 1, poolPages: 1024})
		return Execute(w.ctx, w.spec(FullScan, degree, 0, 100)).Runtime
	}
	gain := float64(run(1)) / float64(run(8))
	if gain < 1.5 {
		t.Errorf("PFTS8/FTS speedup on SSD = %.2fx, want > 1.5x", gain)
	}
}

func TestPrefetchingAcceleratesIndexScan(t *testing.T) {
	// §3.3: per-worker prefetching raises the queue depth without extra
	// workers; more prefetch => shorter runtime on SSD.
	run := func(prefetch int) sim.Duration {
		w := newWorld(t, worldOpts{rows: 60000, rpp: 1, poolPages: 2048})
		s := w.spec(IndexScan, 1, 0, 6000)
		s.PrefetchPerWorker = prefetch
		return Execute(w.ctx, s).Runtime
	}
	base := run(0)
	pf8 := run(8)
	pf32 := run(32)
	if float64(base)/float64(pf8) < 4 {
		t.Errorf("prefetch 8 speedup = %.1fx, want >= 4x", float64(base)/float64(pf8))
	}
	if pf32 >= pf8 {
		t.Errorf("prefetch 32 (%v) not faster than prefetch 8 (%v)", pf32, pf8)
	}
}

func TestFewWorkersWithPrefetchRivalManyWorkers(t *testing.T) {
	// Paper §3.3: "with only 4 workers and a prefetching degree of 32, we
	// can achieve a performance even 35% better than using 32 workers and
	// no prefetching at all."
	run := func(degree, prefetch int) sim.Duration {
		w := newWorld(t, worldOpts{rows: 60000, rpp: 1, poolPages: 4096})
		s := w.spec(IndexScan, degree, 0, 6000)
		s.PrefetchPerWorker = prefetch
		return Execute(w.ctx, s).Runtime
	}
	workers32 := run(32, 0)
	pf4x32 := run(4, 32)
	if float64(pf4x32) > 1.3*float64(workers32) {
		t.Errorf("4 workers x 32 prefetch (%v) much slower than 32 workers (%v)",
			pf4x32, workers32)
	}
}

func TestWarmPoolMakesRerunFaster(t *testing.T) {
	w := newWorld(t, worldOpts{rows: 3000, rpp: 33, poolPages: 4096})
	cold := Execute(w.ctx, w.spec(FullScan, 1, 0, 100))
	warm := Execute(w.ctx, w.spec(FullScan, 1, 0, 100))
	if warm.Runtime >= cold.Runtime {
		t.Errorf("warm run %v not faster than cold %v", warm.Runtime, cold.Runtime)
	}
	if warm.IO.Requests != 0 {
		t.Errorf("warm run issued %d device reads, want 0 (table fits in pool)",
			warm.IO.Requests)
	}
}

func TestIndexScanRereadsPagesWhenPoolIsSmall(t *testing.T) {
	// At high selectivity with a tiny pool, IS fetches more table pages
	// than the table has — the re-retrieval effect of §2.
	w := newWorld(t, worldOpts{rows: 20000, rpp: 33, poolPages: 128})
	res := Execute(w.ctx, w.spec(IndexScan, 1, 0, 15000))
	tablePages := w.tab.Pages()
	if res.IO.Requests <= tablePages {
		t.Errorf("IS read %d pages, want > table size %d (re-reads under small pool)",
			res.IO.Requests, tablePages)
	}
}

func TestExecuteMetersOnlyItsOwnTraffic(t *testing.T) {
	w := newWorld(t, worldOpts{rows: 2000, rpp: 33})
	first := Execute(w.ctx, w.spec(FullScan, 1, 0, 10))
	second := Execute(w.ctx, w.spec(FullScan, 1, 0, 10))
	if second.IO.Requests >= first.IO.Requests && first.IO.Requests > 0 {
		t.Errorf("second run metered %d requests, first %d; expected warm rerun to meter fewer",
			second.IO.Requests, first.IO.Requests)
	}
}

func TestIndexScanWithoutIndexPanics(t *testing.T) {
	w := newWorld(t, worldOpts{rows: 100, rpp: 10})
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for IndexScan without index")
		}
	}()
	s := w.spec(IndexScan, 1, 0, 10)
	s.Index = nil
	Execute(w.ctx, s)
}

func TestDegreeDefaultsToOne(t *testing.T) {
	w := newWorld(t, worldOpts{rows: 500, rpp: 33})
	res := Execute(w.ctx, w.spec(FullScan, 0, 0, 499))
	if res.RowsMatched == 0 {
		t.Error("scan with degree 0 (defaulted) matched nothing")
	}
}

func TestClampReadaheadBounds(t *testing.T) {
	cases := []struct {
		name                       string
		capacity, degree           int
		blockPages, prefetchBlocks int
		wantBP, wantPF             int
	}{
		// Production shapes: the window (cap/2 − degree) accommodates the
		// default 64-page block and clamps only the block count.
		{"pool256-serial", 256, 1, 64, 4, 64, 1},
		{"pool256-d8", 256, 8, 64, 4, 64, 1},
		{"pool512-d8", 512, 8, 64, 4, 64, 3},
		{"pool2048-d1", 2048, 1, 64, 4, 64, 4},
		// Tiny pools: the block itself shrinks to the window, and the
		// block count floors at one in-flight block.
		{"pool64-d8", 64, 8, 64, 4, 24, 1},
		{"pool16-d8", 16, 8, 64, 4, 1, 4},
		{"pool16-d1", 16, 1, 64, 4, 7, 1},
		// Degree at or beyond half the pool: window floors at one page,
		// which degenerates to single-page (non-block) reads.
		{"degree-swallows-pool", 32, 16, 64, 4, 1, 4},
		// Block reads disabled pass through untouched.
		{"disabled", 16, 8, 1, 4, 1, 4},
	}
	for _, c := range cases {
		bp, pf := clampReadahead(c.capacity, c.degree, c.blockPages, c.prefetchBlocks)
		if bp != c.wantBP || pf != c.wantPF {
			t.Errorf("%s: clampReadahead(%d, %d, %d, %d) = (%d, %d), want (%d, %d)",
				c.name, c.capacity, c.degree, c.blockPages, c.prefetchBlocks,
				bp, pf, c.wantBP, c.wantPF)
		}
		if bp > 1 {
			if used := bp*pf + c.degree; used > c.capacity/2 {
				t.Errorf("%s: window invariant violated: %d·%d + %d = %d > %d",
					c.name, bp, pf, c.degree, used, c.capacity/2)
			}
		}
	}
}

func TestFullScanSurvivesTinyPool(t *testing.T) {
	// A pool far smaller than one default readahead block, swept at high
	// degree: pinned pages plus in-flight block frames exceed the raw
	// capacity unless the readahead window is clamped against the degree.
	// (Clamping against capacity alone admitted a 4-page window into a
	// 16-frame pool with 8 additional pins — fine — but a 64-frame pool at
	// degree 8 kept a 32-page block plus 8 pins plus the LRU's loading
	// frames, which could exhaust it.)
	for _, o := range []worldOpts{
		{rows: 20000, rpp: 33, poolPages: 16},
		{rows: 20000, rpp: 33, poolPages: 64},
	} {
		w := newWorld(t, o)
		wantMax, wantFound, wantRows := w.bruteForce(0, 19999)
		s := w.spec(FullScan, 8, 0, 19999)
		res := Execute(w.ctx, s)
		if res.Found != wantFound || res.Value != wantMax || res.RowsMatched != wantRows {
			t.Errorf("pool=%d: got (%d,%v,%d), want (%d,%v,%d)", o.poolPages,
				res.Value, res.Found, res.RowsMatched, wantMax, wantFound, wantRows)
		}
	}
}
