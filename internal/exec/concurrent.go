package exec

import (
	"fmt"

	"pioqo/internal/device"
	"pioqo/internal/sim"
)

// ExecuteAll runs several scans concurrently on ctx's environment — the
// inter-query parallelism setting the paper defers to future work (§4.3):
// concurrent operators share the CPU, the buffer pool, and, crucially, the
// device queue. Per-query results carry each query's own start-to-finish
// runtime; the returned summary meters the device over the whole window.
func ExecuteAll(ctx *Context, specs []Spec) ([]Result, device.Summary) {
	results := make([]Result, len(specs))
	ctx.Dev.Metrics().Reset()
	ctx.Pool.ResetStats()
	start := ctx.Env.Now()
	wg := sim.NewWaitGroup(ctx.Env)
	for i, spec := range specs {
		i, spec := i, spec
		wg.Add(1)
		ctx.Env.Go(fmt.Sprintf("query%d", i), func(p *sim.Proc) {
			defer wg.Done()
			t0 := p.Now()
			results[i] = RunScan(p, ctx, spec)
			results[i].Runtime = sim.Duration(p.Now() - t0)
		})
	}
	ctx.Env.Go("queries-join", func(p *sim.Proc) { p.WaitFor(wg) })
	ctx.Env.Run()
	_ = start
	return results, ctx.Dev.Metrics().Snapshot()
}
