package exec

import (
	"testing"
)

func TestGroupByMatchesBruteForce(t *testing.T) {
	w := newWorld(t, worldOpts{rows: 4000, rpp: 33})
	const width = 500
	lo, hi := int64(200), int64(3500)

	want := map[int64]*agg{}
	for r := int64(0); r < w.tab.Rows(); r++ {
		row := w.tab.RowAt(r)
		if row.C2 < lo || row.C2 > hi {
			continue
		}
		g := row.C2 / width
		a, ok := want[g]
		if !ok {
			a = &agg{kind: AggMax}
			want[g] = a
		}
		a.add(row.C1)
	}

	for _, m := range []Method{FullScan, IndexScan, SortedIndexScan} {
		for _, degree := range []int{1, 8} {
			res := ExecuteGroupBy(w.ctx, GroupBySpec{
				Scan:       w.spec(m, degree, lo, hi),
				GroupWidth: width,
				Agg:        AggMax,
			})
			if len(res.Groups) != len(want) {
				t.Fatalf("%v deg=%d: %d groups, want %d", m, degree, len(res.Groups), len(want))
			}
			prev := int64(-1 << 62)
			for _, g := range res.Groups {
				if g.Key <= prev {
					t.Fatalf("groups not sorted: %v", res.Groups)
				}
				prev = g.Key
				ref := want[g.Key]
				if ref == nil || g.Value != ref.val || g.Rows != ref.rows {
					t.Errorf("%v deg=%d group %d: (val=%d rows=%d), want (val=%d rows=%d)",
						m, degree, g.Key, g.Value, g.Rows, ref.val, ref.rows)
				}
			}
			w.ctx.Pool.Flush()
		}
	}
}

func TestGroupByEmptyRange(t *testing.T) {
	w := newWorld(t, worldOpts{rows: 500, rpp: 33})
	res := ExecuteGroupBy(w.ctx, GroupBySpec{
		Scan:       w.spec(IndexScan, 2, 300, 299),
		GroupWidth: 100,
		Agg:        AggCount,
	})
	if len(res.Groups) != 0 || res.Rows != 0 {
		t.Errorf("empty range produced %d groups, %d rows", len(res.Groups), res.Rows)
	}
}

func TestGroupByZeroWidthPanics(t *testing.T) {
	w := newWorld(t, worldOpts{rows: 100, rpp: 10})
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for zero group width")
		}
	}()
	ExecuteGroupBy(w.ctx, GroupBySpec{Scan: w.spec(FullScan, 1, 0, 99)})
}

func TestGroupByParallelScanSpeedsItUp(t *testing.T) {
	run := func(degree int) float64 {
		w := newWorld(t, worldOpts{rows: 30000, rpp: 1, poolPages: 1024})
		res := ExecuteGroupBy(w.ctx, GroupBySpec{
			Scan:       w.spec(IndexScan, degree, 0, 6000),
			GroupWidth: 1000,
			Agg:        AggCount,
		})
		return float64(res.Runtime)
	}
	if gain := run(1) / run(32); gain < 5 {
		t.Errorf("32-way group-by gain = %.1fx, want >= 5x on SSD", gain)
	}
}
