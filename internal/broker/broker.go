// Package broker is the engine's shared resource-governance layer: a
// virtual-time broker that owns the device queue-depth credits, buffer-pool
// page reservations, and CPU-worker shares that concurrent queries divide
// between them, with an admission queue in front.
//
// The paper's §4.3 closes with the observation that a QDTT-aware optimizer
// must plan each concurrent query under a *lower* queue depth. Before this
// package that arithmetic was scattered: ExecuteConcurrent computed a
// one-shot `beneficial / n` split, the optimizer consumed it as an opaque
// QueueBudget, and the executor clamped its pool pinning independently.
// The broker centralises it:
//
//   - The total credit supply is the device's maximum beneficial queue
//     depth (cost.QDTT.MaxBeneficialDepth over the whole-device band) —
//     depth beyond it buys no throughput, so handing it out buys nothing.
//   - Queries enqueue for admission and block until the broker grants a
//     Lease: a queue-depth credit grant plus a proportional buffer-pool
//     page reservation. The optimizer then plans under the leased budget
//     (opt's memo keys on it, so cached plans stay valid per lease size).
//   - The executor reports workers starting and exiting through the lease;
//     a winding-down query progressively returns credits it can no longer
//     use, and a completed query returns the rest — either way the broker
//     re-dispatches, so queued queries are admitted (and planned) under
//     the credits actually available, not a stale batch-start split.
//   - The device reports sustained queue depth back through a probe; when
//     the sustained depth runs well below the credits out on loan the
//     broker extends a bounded slack, re-brokering budgets that in-flight
//     queries are provably not using.
//
// Everything runs in virtual time on the sim kernel: admission order is
// FIFO, dispatch is synchronous state manipulation, and reruns are
// bit-identical.
package broker

import (
	"fmt"

	"pioqo/internal/obs"
	"pioqo/internal/obs/event"
	"pioqo/internal/sim"
)

// DepthModel is the slice of the calibrated cost model the broker needs:
// the largest queue depth that still improves throughput on a band. It is
// satisfied by *cost.QDTT.
type DepthModel interface {
	MaxBeneficialDepth(band int64, minGain float64) int
}

// Config sizes a Broker. Model and Band are required; everything else has
// a sensible zero value.
type Config struct {
	Env *sim.Env

	// Model prices queue depth; Band is the band (in pages) the credit
	// supply is computed over — normally the whole device.
	Model DepthModel
	Band  int64

	// MinGain is the marginal-throughput threshold defining the beneficial
	// depth. Default 0.05 (5%), matching the pre-broker split.
	MinGain float64

	// PoolPages is the buffer-pool capacity the broker reserves shares of.
	// Zero disables pool reservations (leases carry no page budget).
	PoolPages int

	// Workers is the CPU-worker share supply, normally the core count. It
	// is tracked (workers_in_use) rather than enforced — the sim CPU
	// resource arbitrates actual cores — so schedulers and dashboards see
	// worker pressure next to credit pressure.
	Workers int

	// MinLease floors the credit grant per admission in dynamic mode, so
	// admission control admits a few well-budgeted queries instead of
	// starving everyone equally. Default total/4 (at least 1).
	MinLease int

	// Static freezes the broker into the pre-broker behaviour for A/B
	// benchmarking: every query is admitted immediately with an even
	// one-shot split of the total over Parties, and nothing is ever
	// re-brokered.
	Static  bool
	Parties int // static mode: the batch size the split is computed over

	// DepthProbe, when set, returns the cumulative time-integral of the
	// device's queue depth (device.Metrics.DepthIntegral). The broker
	// derives the sustained depth over its observation window from it.
	DepthProbe func() float64

	// DegradeProbe, when set, reports the device's current degradation as a
	// channel-loss fraction in [0, 1] (fault.Injector.Degradation). While
	// the device reports sustained degradation the broker shrinks its credit
	// supply proportionally at dispatch time, so newly admitted — and
	// re-planned — queries run at a queue depth the degraded device can
	// still turn into throughput. 0 (or nil) means healthy.
	DegradeProbe func() float64

	// Obs, when set, receives the broker's instruments: broker.credits_total,
	// broker.credits_in_use, broker.workers_in_use, broker.admissions,
	// broker.replans, broker.reclaims, and broker.admission_wait_us.
	Obs *obs.Registry

	// Log, when set, receives one structured event per admission decision:
	// enqueue, grant, re-plan, credit reclamation, lease release, and
	// degraded-supply dispatch. Nil (the default) is the zero-cost disabled
	// log; SetLog installs one later.
	Log *event.Log

	// Tracer, when set, records one span per admission (enqueue → grant),
	// annotated with the granted budget and wait, under Span.
	Tracer *obs.Tracer
	Span   *obs.Span
}

// Broker owns the credit supply and the admission queue. It is not safe
// for host-level concurrent use; all calls must come from simulation
// context (process or event) or between Env.Run calls, like every other
// engine structure.
type Broker struct {
	env *sim.Env
	cfg Config

	total int // credit supply: the device's max beneficial depth
	free  int // credits not currently out on loan (can dip below 0 under slack)
	slack int // credits extended beyond total on device-feedback evidence

	poolInUse int // buffer-pool pages reserved by admitted leases

	minLease int
	nextID   int

	queue  []*Lease // admission FIFO
	active []*Lease // admitted, not yet released

	// dispatchScheduled coalesces dispatch work into one zero-delay event
	// per instant, so every query enqueued at the same virtual time is
	// brokered together — the first of a batch must not be mistaken for a
	// sole query just because it arrived a few host instructions earlier.
	dispatchScheduled bool

	// Device-feedback observation window.
	probeBase float64
	probeAt   sim.Time

	// log receives admission-decision events; nil = disabled (Emit no-ops).
	log *event.Log

	// Instruments (nil-safe: left nil without a registry).
	creditsInUse *obs.Gauge
	workersGauge *obs.Gauge
	admissions   *obs.Counter
	sharedAdm    *obs.Counter
	replans      *obs.Counter
	reclaims     *obs.Counter
	grows        *obs.Counter
	waitHist     *obs.Histogram
}

// admissionWaitBucketsUs are histogram edges for admission waits, in
// microseconds: immediate grants through multi-query queueing delays.
var admissionWaitBucketsUs = []float64{0, 100, 1000, 10000, 100000, 1e6, 1e7}

// New builds a broker over cfg. The credit supply is computed once, from
// the calibrated model — the single place in the engine allowed to do
// queue-budget arithmetic (scripts/verify.sh lints every other call site).
func New(cfg Config) *Broker {
	if cfg.Env == nil {
		panic("broker: Config.Env is nil")
	}
	if cfg.Model == nil {
		panic("broker: Config.Model is nil")
	}
	if cfg.MinGain == 0 {
		cfg.MinGain = 0.05
	}
	b := &Broker{env: cfg.Env, cfg: cfg}
	b.total = cfg.Model.MaxBeneficialDepth(cfg.Band, cfg.MinGain)
	if b.total < 1 {
		b.total = 1
	}
	b.free = b.total
	b.minLease = cfg.MinLease
	if b.minLease <= 0 {
		b.minLease = b.total / 4
		if b.minLease < 1 {
			b.minLease = 1
		}
	}
	if cfg.Obs != nil {
		cfg.Obs.Gauge(obs.MetricBrokerCreditsTotal).Set(float64(b.total))
		b.creditsInUse = cfg.Obs.Gauge(obs.MetricBrokerCreditsInUse)
		b.workersGauge = cfg.Obs.Gauge(obs.MetricBrokerWorkersInUse)
		b.admissions = cfg.Obs.Counter(obs.MetricBrokerAdmissions)
		b.sharedAdm = cfg.Obs.Counter(obs.MetricBrokerSharedAdmissions)
		b.replans = cfg.Obs.Counter(obs.MetricBrokerReplans)
		b.reclaims = cfg.Obs.Counter(obs.MetricBrokerReclaims)
		b.grows = cfg.Obs.Counter(obs.MetricBrokerGrows)
		b.waitHist = cfg.Obs.Histogram(obs.MetricBrokerAdmissionWaitUs, admissionWaitBucketsUs)
	}
	b.log = cfg.Log
	return b
}

// SetLog installs (or, with nil, removes) the broker's event log. The
// engine enables observability after the broker may already exist, so the
// log is settable post-construction; emission is pure ring mutation either
// way and never perturbs admission decisions.
func (b *Broker) SetLog(l *event.Log) { b.log = l }

// Total reports the credit supply — the device's maximum beneficial queue
// depth over the configured band.
func (b *Broker) Total() int { return b.total }

// InUse reports the credits currently out on loan.
func (b *Broker) InUse() int { return b.total + b.slack - b.free }

// PoolInUse reports the buffer-pool pages currently reserved by admitted
// leases. After every lease is released it is zero; Drain-style teardown
// asserts that to catch reservation leaks.
func (b *Broker) PoolInUse() int { return b.poolInUse }

// Waiting reports how many queries sit in the admission queue.
func (b *Broker) Waiting() int { return len(b.queue) }

// Active reports how many admitted leases have not been released.
func (b *Broker) Active() int { return len(b.active) }

// SplitCredits divides total evenly over n parties, distributing the
// remainder one credit at a time from the front — no credit is dropped,
// fixing the integer-division loss of the pre-broker `total / n` split.
// Every share is at least 1 even when parties outnumber credits.
func SplitCredits(total, n int) []int {
	if n <= 0 {
		return nil
	}
	shares := make([]int, n)
	base, rem := total/n, total%n
	for i := range shares {
		shares[i] = base
		if i < rem {
			shares[i]++
		}
		if shares[i] < 1 {
			shares[i] = 1
		}
	}
	return shares
}

// FairShare reports the even-split budget a query joining now could expect:
// the total divided over every known party (active + waiting + the caller).
// A sole query on an idle broker expects an unbounded lease (0). Sessions
// use it to plan provisionally at submit time; the admission grant is
// authoritative and a differing grant triggers a re-plan. A static broker's
// split is fully determined at enqueue time, so there FairShare returns the
// exact share the next enqueued query will be granted — static batches
// plan once and never re-plan, like the pre-broker behaviour they model.
func (b *Broker) FairShare() int {
	if b.cfg.Static {
		if b.cfg.Parties < 2 {
			return 0
		}
		return SplitCredits(b.total, b.cfg.Parties)[b.nextID%b.cfg.Parties]
	}
	supply := b.degradedSupply()
	parties := len(b.active) + len(b.queue) + 1
	if parties == 1 {
		if supply < b.total {
			return supply // degraded: even a sole query plans bounded
		}
		return 0
	}
	return SplitCredits(supply, parties)[0]
}

// degradedSupply reports the credit supply dispatch may hand out right now:
// the calibrated total, shrunk by the device's reported channel loss while
// degradation is sustained. Never below 1.
func (b *Broker) degradedSupply() int {
	if b.cfg.DegradeProbe == nil {
		return b.total
	}
	loss := b.cfg.DegradeProbe()
	if loss <= 0 {
		return b.total
	}
	if loss > 1 {
		loss = 1
	}
	t := int(float64(b.total)*(1-loss) + 0.5)
	if t < 1 {
		t = 1
	}
	return t
}

// Lease is one query's resource grant: admission ticket, queue-depth
// credit budget, and buffer-pool page reservation. It also implements the
// executor's worker-governance hook (exec.Governor), returning credits as
// the query's worker fleet winds down.
type Lease struct {
	b  *Broker
	id int

	// qid attributes this lease's events to its query in the engine event
	// log; event.NoQuery for leases enqueued without an id.
	qid int64

	demand int // max useful credits; 0 = no cap

	admitted bool
	released bool
	shared   bool // admitted via AdmitShared: rides a circulating scan
	granted  int  // credit grant at admission; 0 = unbounded (sole query)
	held     int  // credits still debited from the broker
	pool     int  // buffer-pool page reservation

	workers int // live workers right now
	peak    int // high-water worker count, for proportional reclamation

	enqueuedAt sim.Time
	admittedAt sim.Time

	grant *sim.Completion // fires at admission
	span  *obs.Span
}

// Enqueue registers a query for admission and returns its lease. The
// demand caps the useful credit grant (0 = uncapped). Admission is FIFO;
// call Await from process context to block until granted.
func (b *Broker) Enqueue(demand int) *Lease {
	return b.EnqueueQuery(demand, event.NoQuery)
}

// EnqueueQuery is Enqueue with a query id attached: every event this lease
// emits into the broker's log is attributed to qid.
func (b *Broker) EnqueueQuery(demand int, qid int64) *Lease {
	l := &Lease{b: b, id: b.nextID, qid: qid, demand: demand,
		enqueuedAt: b.env.Now(), grant: sim.NewCompletion(b.env)}
	b.nextID++
	if b.cfg.Tracer != nil {
		l.span = b.cfg.Tracer.Start(b.cfg.Span, fmt.Sprintf("admission%d", l.id))
	}
	b.log.Emit(event.EvAdmissionEnqueue, l.qid, int64(demand), 0)
	b.queue = append(b.queue, l)
	b.scheduleDispatch()
	return l
}

// Shared reports whether the lease was admitted through AdmitShared —
// riding a live circulating scan rather than holding queue-depth credits.
func (l *Lease) Shared() bool { return l.shared }

// AdmitShared converts a still-queued lease into an immediate zero-credit
// admission: the query's table scan will attach to a circulating scan whose
// producer already holds the device's readahead depth, so granting it
// queue-depth credits — or making it wait for them — would price device
// work it will never issue. The lease leaves the FIFO out of turn, is
// granted no credits and no pool reservation (the producer pins under its
// own budget), and its grant fires at once. Calling it on an
// already-admitted lease only marks it shared; on a released lease it is a
// bug, as with any resource.
func (b *Broker) AdmitShared(l *Lease) {
	if l.released {
		panic("broker: AdmitShared on a released lease")
	}
	l.shared = true
	if b.sharedAdm != nil {
		b.sharedAdm.Inc()
	}
	if l.admitted {
		return
	}
	for i, q := range b.queue {
		if q == l {
			b.queue = append(b.queue[:i], b.queue[i+1:]...)
			break
		}
	}
	b.admit(l, 0)
}

// Await blocks p until the lease has been granted. A lease already granted
// (the common uncontended case) returns without yielding, so a sole query
// admits in zero virtual time and zero events.
func (l *Lease) Await(p *sim.Proc) {
	p.Wait(l.grant)
}

// Budget reports the leased queue-depth budget: the credit grant, or 0 for
// an unbounded lease (a sole query on an idle device plans exactly as a
// standalone Execute would).
func (l *Lease) Budget() int { return l.granted }

// PoolPages reports the lease's buffer-pool page reservation (0 means
// ungoverned — the executor's own whole-pool clamps apply).
func (l *Lease) PoolPages() int { return l.pool }

// Wait reports how long the query sat in the admission queue.
func (l *Lease) Wait() sim.Duration {
	if !l.admitted {
		return sim.Duration(l.b.env.Now() - l.enqueuedAt)
	}
	return sim.Duration(l.admittedAt - l.enqueuedAt)
}

// StartWorker implements exec.Governor: one scan worker began running.
func (l *Lease) StartWorker() {
	l.workers++
	if l.workers > l.peak {
		l.peak = l.workers
	}
	if l.b.workersGauge != nil {
		l.b.workersGauge.Add(1)
	}
}

// EndWorker implements exec.Governor: one scan worker exited. A worker
// that exits never rejoins its phase, so the lease shrinks its held
// credits proportionally to the workers still running and the broker
// re-dispatches queued queries under the recovered budget. Static brokers
// and unbounded leases skip reclamation.
func (l *Lease) EndWorker() {
	l.workers--
	if l.b.workersGauge != nil {
		l.b.workersGauge.Add(-1)
	}
	if l.released || l.b.cfg.Static || l.granted == 0 || l.peak <= 0 {
		return
	}
	target := (l.granted*l.workers + l.peak - 1) / l.peak // ceil share
	if l.workers > 0 && target < 1 {
		target = 1
	}
	if target < l.held {
		n := l.held - target
		l.held = target
		l.b.log.Emit(event.EvCreditsReclaim, l.qid, int64(n), int64(l.held))
		l.b.reclaim(n)
		if l.b.reclaims != nil {
			l.b.reclaims.Add(int64(n))
		}
	}
}

// Grow asks the broker for up to n more queue-depth credits mid-flight and
// returns how many were granted — the upgrade direction of the degradation
// re-plan path. Growth comes only from credits sitting free *after* the
// degradation reserve, and only while no query waits in the admission FIFO:
// queued queries have first claim on free supply, so an in-flight upgrade
// can never starve admission. The grant raises the lease's held credits
// (EndWorker's proportional reclamation then winds the larger grant down as
// the grown fleet retires) and extends the buffer-pool reservation to the
// share the new grant would have been admitted with. An unbounded lease
// (sole query, grant 0) already owns the whole supply, so Grow reports the
// full ask without touching the books. Static brokers and shared riders
// never grow.
func (l *Lease) Grow(n int) int {
	if n <= 0 || l.released || !l.admitted || l.shared || l.b.cfg.Static {
		return 0
	}
	if l.granted == 0 {
		return n // unbounded: the whole supply is already this query's
	}
	b := l.b
	if len(b.queue) > 0 {
		return 0
	}
	supply := b.degradedSupply()
	reserve := b.total - supply
	avail := b.free - reserve
	if avail < 1 {
		return 0
	}
	if n > avail {
		n = avail
	}
	if l.demand > 0 && l.granted+n > l.demand {
		n = l.demand - l.granted
	}
	if n <= 0 {
		return 0
	}
	b.free -= n
	l.granted += n
	l.held += n
	if b.cfg.PoolPages > 0 {
		if pool := b.cfg.PoolPages * l.granted / b.total; pool > l.pool {
			b.poolInUse += pool - l.pool
			l.pool = pool
		}
	}
	b.log.Emit(event.EvLeaseGrow, l.qid, int64(n), int64(l.granted))
	if b.grows != nil {
		b.grows.Add(int64(n))
	}
	if b.creditsInUse != nil {
		b.creditsInUse.Set(float64(b.InUse()))
	}
	return n
}

// Replanned records that the query was re-planned because its admission
// grant differed from the provisional budget it planned under.
func (l *Lease) Replanned() {
	l.b.log.Emit(event.EvAdmissionReplan, l.qid, int64(l.granted), 0)
	if l.b.replans != nil {
		l.b.replans.Inc()
	}
	if l.span != nil {
		l.span.SetAttr("replanned", true)
	}
}

// Release returns every credit the lease still holds and re-dispatches.
// Releasing twice is a bug, as with any resource.
func (l *Lease) Release() {
	if l.released {
		panic("broker: lease released twice")
	}
	l.released = true
	l.b.log.Emit(event.EvLeaseRelease, l.qid, int64(l.held), int64(l.pool))
	if !l.admitted {
		// Withdrawn before admission: just drop out of the queue.
		for i, q := range l.b.queue {
			if q == l {
				l.b.queue = append(l.b.queue[:i], l.b.queue[i+1:]...)
				break
			}
		}
		if l.span != nil {
			l.span.SetAttr("withdrawn", true)
			l.span.End()
		}
		return
	}
	for i, a := range l.b.active {
		if a == l {
			l.b.active = append(l.b.active[:i], l.b.active[i+1:]...)
			break
		}
	}
	// The pool reservation comes home with the lease — including when the
	// query errored between admission and its first worker start, the leak
	// this deferred-release path exists to close.
	if l.pool > 0 {
		l.b.poolInUse -= l.pool
		l.pool = 0
	}
	if l.held > 0 {
		l.b.reclaim(l.held)
		l.held = 0
	} else {
		l.b.scheduleDispatch()
	}
}

// reclaim returns n credits to the pool and re-dispatches the queue.
func (b *Broker) reclaim(n int) {
	b.free += n
	// Returned slack retires before it re-enters circulation: the supply
	// reverts toward the calibrated total as over-extended credit comes home.
	if b.slack > 0 && b.free > b.total {
		retire := b.free - b.total
		if retire > b.slack {
			retire = b.slack
		}
		b.slack -= retire
		b.free -= retire
	}
	if b.creditsInUse != nil {
		b.creditsInUse.Set(float64(b.InUse()))
	}
	b.scheduleDispatch()
}

// scheduleDispatch queues one dispatch pass at the current instant.
func (b *Broker) scheduleDispatch() {
	if b.dispatchScheduled {
		return
	}
	b.dispatchScheduled = true
	b.env.Schedule(0, b.dispatch)
}

// feedbackSlack consults the device probe: when the sustained queue depth
// over the observation window runs below the credits out on loan, the
// difference is capacity the in-flight queries are provably not using, and
// the broker may extend up to a quarter of the supply as slack to waiting
// queries. The window resets at every reading, so the evidence is recent.
func (b *Broker) feedbackSlack() int {
	if b.cfg.Static || b.cfg.DepthProbe == nil {
		return 0
	}
	now := b.env.Now()
	integral := b.cfg.DepthProbe()
	window := now - b.probeAt
	if window <= 0 {
		return 0
	}
	sustained := (integral - b.probeBase) / float64(window)
	b.probeBase = integral
	b.probeAt = now
	idle := float64(b.InUse()) - sustained
	if idle < 1 {
		return 0
	}
	ext := int(idle)
	if lim := b.total / 4; ext > lim {
		ext = lim
	}
	if ext <= b.slack {
		return 0
	}
	return ext - b.slack
}

// dispatch admits as many queued queries as the free credits allow. In
// dynamic mode each admission gets at least minLease credits, so freed
// capacity concentrates into meaningful budgets instead of dribbling out
// one credit at a time; a sole query on an idle broker gets an unbounded
// lease. Static mode admits everyone immediately with the precomputed
// even split.
func (b *Broker) dispatch() {
	b.dispatchScheduled = false
	degradeLogged := false
	for len(b.queue) > 0 {
		if b.cfg.Static {
			parties := b.cfg.Parties
			if parties < 1 {
				parties = 1
			}
			l := b.queue[0]
			b.queue = b.queue[1:]
			share := 0
			if parties > 1 {
				share = SplitCredits(b.total, parties)[l.id%parties]
			}
			b.admit(l, share)
			continue
		}
		// A degraded device shrinks the supply: the difference between the
		// calibrated total and the degraded supply stays in reserve —
		// dispatch admits against what the device can actually absorb.
		supply := b.degradedSupply()
		reserve := b.total - supply
		if reserve > 0 && !degradeLogged {
			// One degraded-supply event per dispatch pass: dispatch may admit
			// several queries under the same shrunken supply.
			b.log.Emit(event.EvSupplyDegrade, event.NoQuery, int64(supply), int64(b.total))
			degradeLogged = true
		}
		if len(b.active) == 0 && len(b.queue) == 1 {
			l := b.queue[0]
			b.queue = b.queue[1:]
			if reserve > 0 {
				b.admit(l, supply) // degraded: bounded even when sole
			} else {
				b.admit(l, 0) // sole query, idle device: unbounded
			}
			continue
		}
		if reserve == 0 {
			// Slack extension needs a healthy device: degradation evidence
			// and idle-depth evidence point opposite ways.
			if grow := b.feedbackSlack(); grow > 0 {
				b.slack += grow
				b.free += grow
			}
		}
		avail := b.free - reserve
		if avail < 1 {
			return
		}
		ml := b.minLease
		if reserve > 0 {
			// The floor scales with the shrunken supply so admission keeps
			// moving under heavy loss instead of waiting for credits that
			// will not come back while the window lasts.
			if scaled := supply / 4; scaled < ml {
				ml = scaled
				if ml < 1 {
					ml = 1
				}
			}
		}
		if avail < ml && len(b.active) > 0 {
			return // wait for a meaningful grant to accumulate
		}
		k := avail / ml
		if k < 1 {
			k = 1
		}
		if k > len(b.queue) {
			k = len(b.queue)
		}
		shares := SplitCredits(avail, k)
		batch := b.queue[:k]
		b.queue = b.queue[k:]
		for i, l := range batch {
			b.admit(l, shares[i])
		}
	}
}

// admit grants a lease. A grant of 0 is the unbounded lease; a positive
// grant is capped at the lease's demand, with the excess staying free for
// the next admission.
func (b *Broker) admit(l *Lease, grant int) {
	if grant > 0 {
		if l.demand > 0 && grant > l.demand {
			grant = l.demand
		}
		b.free -= grant
	}
	l.granted = grant
	l.held = grant
	l.admitted = true
	l.admittedAt = b.env.Now()
	if b.cfg.PoolPages > 0 && grant > 0 {
		l.pool = b.cfg.PoolPages * grant / b.total
		b.poolInUse += l.pool
	}
	b.active = append(b.active, l)
	b.log.Emit(event.EvAdmissionGrant, l.qid, int64(grant), int64(l.Wait()))
	if b.admissions != nil {
		b.admissions.Inc()
	}
	if b.creditsInUse != nil {
		b.creditsInUse.Set(float64(b.InUse()))
	}
	if b.waitHist != nil {
		b.waitHist.Observe(l.Wait().Micros())
	}
	if l.span != nil {
		l.span.SetAttr("granted", grant)
		l.span.SetAttr("wait", l.Wait())
		l.span.End()
	}
	l.grant.Fire()
}
