package broker

import (
	"testing"
)

func TestPoolInUseTracksReservations(t *testing.T) {
	env, b := newBroker(t, 16, func(c *Config) { c.PoolPages = 1024 })
	a := b.Enqueue(0)
	c := b.Enqueue(0)
	env.Run()
	if got, want := b.PoolInUse(), a.PoolPages()+c.PoolPages(); got != want {
		t.Fatalf("PoolInUse = %d, want %d (sum of live reservations)", got, want)
	}
	a.Release()
	env.Run()
	if got := b.PoolInUse(); got != c.PoolPages() {
		t.Fatalf("PoolInUse after one release = %d, want %d", got, c.PoolPages())
	}
	c.Release()
	env.Run()
	if got := b.PoolInUse(); got != 0 {
		t.Fatalf("PoolInUse after all releases = %d, want 0", got)
	}
}

func TestReleaseBeforeAdmissionLeaksNothing(t *testing.T) {
	// A query that errors between Enqueue and admission (plan failure,
	// validation) withdraws via Release; neither credits nor pool pages may
	// stay debited.
	env, b := newBroker(t, 16, func(c *Config) { c.PoolPages = 1024 })
	a := b.Enqueue(0)
	c := b.Enqueue(0)
	c.Release() // withdrawn while still queued
	env.Run()
	a.Release()
	env.Run()
	if b.InUse() != 0 || b.PoolInUse() != 0 {
		t.Fatalf("leaked: credits=%d pool=%d", b.InUse(), b.PoolInUse())
	}
	if b.Active() != 0 || b.Waiting() != 0 {
		t.Fatalf("broker still tracks %d active, %d waiting", b.Active(), b.Waiting())
	}
}

func TestDegradedSupplyShrinksGrants(t *testing.T) {
	loss := 0.0
	env, b := newBroker(t, 32, func(c *Config) {
		c.DegradeProbe = func() float64 { return loss }
	})
	// Healthy: two queries split the full supply.
	a := b.Enqueue(0)
	c := b.Enqueue(0)
	env.Run()
	healthy := a.Budget() + c.Budget()
	a.Release()
	c.Release()
	env.Run()

	// Degraded 50%: grants must come out of a 16-credit supply.
	loss = 0.5
	d := b.Enqueue(0)
	e := b.Enqueue(0)
	env.Run()
	degraded := d.Budget() + e.Budget()
	if degraded > 16 {
		t.Errorf("degraded grants total %d, want <= 16 (half supply)", degraded)
	}
	if degraded >= healthy {
		t.Errorf("degraded grants total %d, healthy %d; degradation did not shrink supply", degraded, healthy)
	}
	d.Release()
	e.Release()
	env.Run()
	if b.InUse() != 0 {
		t.Fatalf("credits leaked across degradation: %d", b.InUse())
	}
}

func TestDegradedSoleQueryGetsBoundedLease(t *testing.T) {
	env, b := newBroker(t, 32, func(c *Config) {
		c.DegradeProbe = func() float64 { return 0.5 }
	})
	l := b.Enqueue(0)
	env.Run()
	// Healthy sole queries are unbounded (budget 0); on a degraded device
	// even a sole query must be capped at the shrunken supply, or it would
	// plan at a depth the device can no longer absorb.
	if l.Budget() != 16 {
		t.Errorf("degraded sole-query budget = %d, want 16", l.Budget())
	}
	l.Release()
	env.Run()
	if b.InUse() != 0 {
		t.Fatalf("credits leaked: %d", b.InUse())
	}
}

func TestFairShareReflectsDegradation(t *testing.T) {
	loss := 0.0
	_, b := newBroker(t, 32, func(c *Config) {
		c.DegradeProbe = func() float64 { return loss }
	})
	healthy := b.FairShare()
	loss = 0.5
	degraded := b.FairShare()
	if degraded >= healthy && healthy != 0 {
		t.Errorf("FairShare healthy=%d degraded=%d; want degraded smaller", healthy, degraded)
	}
}

func TestNilProbeIsHealthy(t *testing.T) {
	env, b := newBroker(t, 16, nil)
	l := b.Enqueue(0)
	env.Run()
	if l.Budget() != 0 {
		t.Errorf("sole query with nil probe: budget = %d, want 0 (unbounded)", l.Budget())
	}
	l.Release()
	env.Run()
}
