package broker

import (
	"testing"

	"pioqo/internal/obs"
	"pioqo/internal/sim"
)

// fixedModel is a DepthModel with a constant beneficial depth.
type fixedModel int

func (m fixedModel) MaxBeneficialDepth(band int64, minGain float64) int { return int(m) }

func newBroker(t *testing.T, total int, mut func(*Config)) (*sim.Env, *Broker) {
	t.Helper()
	env := sim.NewEnv(1)
	cfg := Config{Env: env, Model: fixedModel(total), Band: 1 << 20}
	if mut != nil {
		mut(&cfg)
	}
	return env, New(cfg)
}

func TestSplitCreditsDistributesRemainder(t *testing.T) {
	cases := []struct {
		total, n int
		want     []int
	}{
		{16, 3, []int{6, 5, 5}},
		{16, 4, []int{4, 4, 4, 4}},
		{7, 3, []int{3, 2, 2}},
		{2, 5, []int{1, 1, 1, 1, 1}}, // floor at 1 when parties outnumber credits
		{0, 2, []int{1, 1}},
	}
	for _, c := range cases {
		got := SplitCredits(c.total, c.n)
		if len(got) != len(c.want) {
			t.Fatalf("SplitCredits(%d, %d) = %v, want %v", c.total, c.n, got, c.want)
		}
		for i := range got {
			if got[i] != c.want[i] {
				t.Errorf("SplitCredits(%d, %d) = %v, want %v", c.total, c.n, got, c.want)
				break
			}
		}
	}
	if SplitCredits(10, 0) != nil {
		t.Error("SplitCredits with 0 parties should be nil")
	}
}

func TestSoleQueryGetsUnboundedLease(t *testing.T) {
	env, b := newBroker(t, 16, nil)
	l := b.Enqueue(0)
	env.Run()
	if !l.admitted {
		t.Fatal("sole query not admitted")
	}
	if l.Budget() != 0 {
		t.Errorf("sole query budget = %d, want 0 (unbounded)", l.Budget())
	}
	if l.Wait() != 0 {
		t.Errorf("sole query waited %v", l.Wait())
	}
	if b.InUse() != 0 {
		t.Errorf("unbounded lease debited %d credits", b.InUse())
	}
	l.Release()
	env.Run()
	if b.Active() != 0 {
		t.Errorf("%d active leases after release", b.Active())
	}
}

func TestDispatchAdmitsUpToMinLease(t *testing.T) {
	env, b := newBroker(t, 16, nil) // minLease defaults to total/4 = 4
	var leases []*Lease
	for i := 0; i < 8; i++ {
		leases = append(leases, b.Enqueue(0))
	}
	env.Run()
	// 16 credits at minLease 4 admit the first four queries with 4 each —
	// admission control queues the rest instead of starving all eight at 2.
	for i, l := range leases[:4] {
		if !l.admitted || l.Budget() != 4 {
			t.Fatalf("lease %d: admitted=%v budget=%d, want 4", i, l.admitted, l.Budget())
		}
	}
	for i, l := range leases[4:] {
		if l.admitted {
			t.Fatalf("lease %d admitted with no free credits", 4+i)
		}
	}
	if b.InUse() != 16 || b.Waiting() != 4 {
		t.Fatalf("in-use=%d waiting=%d, want 16 and 4", b.InUse(), b.Waiting())
	}
	// Releasing one query frees 4 credits — exactly one more admission.
	leases[0].Release()
	env.Run()
	if !leases[4].admitted || leases[4].Budget() != 4 {
		t.Errorf("lease 4 after release: admitted=%v budget=%d", leases[4].admitted, leases[4].Budget())
	}
	if leases[5].admitted {
		t.Error("lease 5 admitted beyond the freed credits")
	}
}

func TestLastSurvivorRebrokeredUnbounded(t *testing.T) {
	env, b := newBroker(t, 16, nil)
	var leases []*Lease
	for i := 0; i < 5; i++ {
		leases = append(leases, b.Enqueue(0))
	}
	env.Run()
	// Four admitted at 4 each, the fifth queued. All four release before
	// the next dispatch: the survivor is now a sole query on an idle broker
	// and gets an unbounded lease — not the batch-start 16/5 split.
	for _, l := range leases[:4] {
		l.Release()
	}
	env.Run()
	last := leases[4]
	if !last.admitted {
		t.Fatal("survivor never admitted")
	}
	if last.Budget() != 0 {
		t.Errorf("survivor budget = %d, want 0 (unbounded)", last.Budget())
	}
}

func TestDemandCapsGrant(t *testing.T) {
	env, b := newBroker(t, 32, nil)
	b.Enqueue(0)
	l := b.Enqueue(2) // second query wants at most 2 credits
	env.Run()
	if !l.admitted {
		t.Fatal("not admitted")
	}
	if l.Budget() != 2 {
		t.Errorf("budget = %d, want demand cap 2", l.Budget())
	}
}

func TestWorkerExitReclaimsProportionally(t *testing.T) {
	env, b := newBroker(t, 16, nil)
	a := b.Enqueue(0)
	c := b.Enqueue(0)
	env.Run()
	if a.Budget() != 8 || c.Budget() != 8 {
		t.Fatalf("budgets %d/%d, want 8/8", a.Budget(), c.Budget())
	}
	for i := 0; i < 4; i++ {
		a.StartWorker()
	}
	waiter := b.Enqueue(0)
	env.Run()
	if waiter.admitted {
		t.Fatal("third query admitted with no free credits")
	}
	// Half of a's workers exit: half its 8 credits come home, enough for a
	// minLease(4) admission of the waiter.
	a.EndWorker()
	a.EndWorker()
	env.Run()
	if !waiter.admitted {
		t.Fatal("worker exits did not re-dispatch the queue")
	}
	if waiter.Budget() != 4 {
		t.Errorf("re-brokered budget = %d, want 4", waiter.Budget())
	}
	a.EndWorker()
	a.EndWorker()
	a.Release()
	c.Release()
	waiter.Release()
	env.Run()
	if b.InUse() != 0 {
		t.Errorf("credits leaked: in-use = %d after all releases", b.InUse())
	}
}

func TestStaticModeSplitsOnceAndNeverRebrokers(t *testing.T) {
	env, b := newBroker(t, 16, func(c *Config) { c.Static = true; c.Parties = 3 })
	var leases []*Lease
	for i := 0; i < 3; i++ {
		// Static splits are fixed at enqueue time: FairShare must predict
		// the grant exactly, so static batches never re-plan.
		if predicted, want := b.FairShare(), []int{6, 5, 5}[i]; predicted != want {
			t.Errorf("FairShare before enqueue %d = %d, want %d", i, predicted, want)
		}
		leases = append(leases, b.Enqueue(0))
	}
	env.Run()
	want := []int{6, 5, 5}
	for i, l := range leases {
		if !l.admitted {
			t.Fatalf("static lease %d not admitted immediately", i)
		}
		if l.Budget() != want[i] {
			t.Errorf("static lease %d budget = %d, want %d", i, l.Budget(), want[i])
		}
	}
	// Worker exits reclaim nothing in static mode.
	leases[0].StartWorker()
	leases[0].StartWorker()
	leases[0].EndWorker()
	if leases[0].held != leases[0].granted {
		t.Error("static lease reclaimed credits on worker exit")
	}
}

func TestAwaitBlocksUntilGranted(t *testing.T) {
	env, b := newBroker(t, 2, nil) // minLease 1: two admitted, one queued
	leases := []*Lease{b.Enqueue(0), b.Enqueue(0), b.Enqueue(0)}
	done := 0
	for _, l := range leases {
		l := l
		env.Go("q", func(p *sim.Proc) {
			l.Await(p)
			p.Sleep(10 * sim.Microsecond)
			done++
			l.Release()
		})
	}
	env.Run()
	if done != 3 {
		t.Fatalf("%d queries completed, want 3", done)
	}
	third := leases[2]
	if third.Wait() != 10*sim.Microsecond {
		t.Errorf("queued query waited %v, want 10us (a release)", third.Wait())
	}
	if b.InUse() != 0 || b.Waiting() != 0 {
		t.Errorf("in-use=%d waiting=%d after drain", b.InUse(), b.Waiting())
	}
}

func TestFeedbackSlackExtendsSupply(t *testing.T) {
	var env *sim.Env
	var b *Broker
	env, b = newBroker(t, 16, func(c *Config) {
		c.DepthProbe = func() float64 { return 0 } // device never sees depth
	})
	a := b.Enqueue(0)
	c := b.Enqueue(0)
	var waiter *Lease
	env.Go("late", func(p *sim.Proc) {
		p.Sleep(100 * sim.Microsecond)
		waiter = b.Enqueue(0)
		waiter.Await(p)
	})
	env.Run()
	// The probe reports zero sustained depth over a 100us window against 16
	// credits on loan: the broker extends slack (capped at total/4 = 4) and
	// admits the waiter instead of stalling it behind idle credit.
	if waiter == nil || !waiter.admitted {
		t.Fatal("device feedback did not unblock the waiter")
	}
	if waiter.Budget() != 4 {
		t.Errorf("slack-funded budget = %d, want 4", waiter.Budget())
	}
	if b.slack != 4 {
		t.Errorf("slack = %d, want 4", b.slack)
	}
	// Releases retire the slack before credits recirculate.
	a.Release()
	c.Release()
	waiter.Release()
	env.Run()
	if b.slack != 0 || b.free != b.total {
		t.Errorf("slack=%d free=%d after drain, want 0 and %d", b.slack, b.free, b.total)
	}
}

func TestInstrumentsPublish(t *testing.T) {
	env := sim.NewEnv(1)
	reg := obs.NewRegistry(env)
	b := New(Config{Env: env, Model: fixedModel(8), Band: 1, Obs: reg})
	l1 := b.Enqueue(0)
	l2 := b.Enqueue(0)
	env.Run()
	if got := reg.Counter("broker.admissions").Value(); got != 2 {
		t.Errorf("admissions = %d, want 2", got)
	}
	if got := reg.Gauge("broker.credits_total").Value(); got != 8 {
		t.Errorf("credits_total = %v, want 8", got)
	}
	if got := reg.Gauge("broker.credits_in_use").Value(); got != 8 {
		t.Errorf("credits_in_use = %v, want 8", got)
	}
	l1.Replanned()
	if got := reg.Counter("broker.replans").Value(); got != 1 {
		t.Errorf("replans = %d, want 1", got)
	}
	l1.Release()
	l2.Release()
	if got := reg.Gauge("broker.credits_in_use").Value(); got != 0 {
		t.Errorf("credits_in_use = %v after drain, want 0", got)
	}
}

func TestPoolReservationProportionalToGrant(t *testing.T) {
	env, b := newBroker(t, 16, func(c *Config) { c.PoolPages = 1024 })
	a := b.Enqueue(0)
	c := b.Enqueue(0)
	env.Run()
	if a.PoolPages() != 512 || c.PoolPages() != 512 {
		t.Errorf("pool reservations %d/%d, want 512/512", a.PoolPages(), c.PoolPages())
	}
	a.Release()
	c.Release()
	sole := b.Enqueue(0)
	env.Run()
	if sole.PoolPages() != 0 {
		t.Errorf("unbounded lease reserved %d pages, want 0 (whole pool)", sole.PoolPages())
	}
}

// TestAdmitSharedBypassesQueue exercises the shared-work admission path: a
// query joining a live circulating scan issues no device reads of its own,
// so it is admitted out of turn with zero credits — ahead of queries still
// waiting for queue-depth budget — and its release disturbs nothing.
func TestAdmitSharedBypassesQueue(t *testing.T) {
	env := sim.NewEnv(1)
	reg := obs.NewRegistry(env)
	b := New(Config{Env: env, Model: fixedModel(8), Band: 1 << 20,
		PoolPages: 4096, Obs: reg})

	// Saturate the credit supply so the queue backs up.
	holders := []*Lease{b.Enqueue(0), b.Enqueue(0), b.Enqueue(0)}
	env.Run()
	waiter := b.Enqueue(0) // blocked: all credits out on loan
	shared := b.EnqueueQuery(0, 42)
	env.Run()
	if waiter.admitted {
		t.Fatal("setup broken: waiter admitted with supply exhausted")
	}
	if shared.admitted {
		t.Fatal("setup broken: shared lease admitted before AdmitShared")
	}

	inUse, poolInUse := b.InUse(), b.PoolInUse()
	b.AdmitShared(shared)
	if !shared.admitted || !shared.Shared() {
		t.Fatalf("AdmitShared: admitted=%v shared=%v", shared.admitted, shared.Shared())
	}
	if !shared.grant.Fired() {
		t.Error("shared grant did not fire immediately")
	}
	if shared.Budget() != 0 || shared.PoolPages() != 0 {
		t.Errorf("shared lease holds budget=%d pool=%d, want 0/0",
			shared.Budget(), shared.PoolPages())
	}
	if b.InUse() != inUse || b.PoolInUse() != poolInUse {
		t.Errorf("shared admission moved credits: in_use %d→%d pool %d→%d",
			inUse, b.InUse(), poolInUse, b.PoolInUse())
	}
	if waiter.admitted {
		t.Error("credit-bound waiter admitted by the shared admission")
	}
	if got := reg.Counter(obs.MetricBrokerSharedAdmissions).Value(); got != 1 {
		t.Errorf("%s = %d, want 1", obs.MetricBrokerSharedAdmissions, got)
	}

	// Worker lifecycle and release on a zero-credit lease reclaim nothing:
	// the shared query's departure frees no credits, so the waiter stays
	// queued until a real credit holder releases.
	shared.StartWorker()
	shared.EndWorker()
	shared.Release()
	env.Run()
	if waiter.admitted {
		t.Error("waiter admitted by a zero-credit release")
	}
	for _, h := range holders {
		h.Release()
	}
	env.Run()
	if !waiter.admitted {
		t.Error("waiter still queued after the credit holders released")
	}
	waiter.Release()
	env.Run()
	if b.InUse() != 0 || b.PoolInUse() != 0 || b.Active() != 0 {
		t.Errorf("after all releases: in_use=%d pool=%d active=%d",
			b.InUse(), b.PoolInUse(), b.Active())
	}
}

func TestLeaseGrowFromFreeCredits(t *testing.T) {
	env, b := newBroker(t, 16, func(c *Config) { c.PoolPages = 1600 })
	// Two contending demand-free queries split the supply 8/8; one leaving
	// frees its half for the survivor to re-lease mid-flight.
	l1 := b.Enqueue(0)
	l2 := b.Enqueue(0)
	env.Run()
	if l1.Budget() != 8 {
		t.Fatalf("budget = %d, want 8 (even split)", l1.Budget())
	}
	pool0 := l1.PoolPages()
	l2.Release()
	env.Run()
	got := l1.Grow(4)
	if got != 4 {
		t.Fatalf("Grow(4) granted %d, want 4 (freed credits available)", got)
	}
	if b.InUse() != l1.Budget() {
		t.Fatalf("credits in use %d != sole lease's grant %d", b.InUse(), l1.Budget())
	}
	if l1.PoolPages() <= pool0 {
		t.Fatalf("pool reservation %d did not grow with the grant (was %d)",
			l1.PoolPages(), pool0)
	}
	l1.Release()
	env.Run()
	if b.InUse() != 0 || b.PoolInUse() != 0 {
		t.Fatalf("leak after release: credits=%d pool=%d", b.InUse(), b.PoolInUse())
	}
}

func TestLeaseGrowCappedByDemand(t *testing.T) {
	env, b := newBroker(t, 16, nil)
	// A lease that asked for 2 and got 2 has no demand headroom; a lease
	// that asked for nothing (unbounded demand) grows freely.
	l1 := b.Enqueue(2)
	l2 := b.Enqueue(0)
	env.Run()
	if l1.Budget() != 2 {
		t.Fatalf("budget = %d, want demand 2", l1.Budget())
	}
	if got := l1.Grow(4); got != 0 {
		t.Fatalf("Grow beyond demand granted %d, want 0", got)
	}
	l1.Release()
	l2.Release()
	env.Run()
}

func TestLeaseGrowDeniedWhileQueueWaits(t *testing.T) {
	env, b := newBroker(t, 8, nil)
	// Two unbounded-demand queries admitted together split the supply 4/4;
	// a third then saturates admission and queues.
	l1 := b.Enqueue(0)
	l2 := b.Enqueue(0)
	env.Run()
	l3 := b.Enqueue(4)
	env.Run()
	if l1.Budget() == 0 || len(b.queue) == 0 {
		t.Fatalf("setup: budget=%d queue=%d, want bounded lease and a waiter",
			l1.Budget(), len(b.queue))
	}
	if got := l1.Grow(2); got != 0 {
		t.Fatalf("Grow granted %d with a query waiting in the queue, want 0", got)
	}
	l1.Release()
	l2.Release()
	l3.Release()
	env.Run()
}
