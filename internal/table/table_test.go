package table

import (
	"testing"
	"testing/quick"

	"pioqo/internal/device"
	"pioqo/internal/disk"
	"pioqo/internal/sim"
)

func newManager() *disk.Manager {
	return disk.NewManager(device.NewSSD(sim.NewEnv(1), device.DefaultSSDConfig()))
}

func TestPageOf(t *testing.T) {
	cases := []struct {
		row  int64
		rpp  int
		want int64
	}{
		{0, 33, 0}, {32, 33, 0}, {33, 33, 1}, {99, 1, 99}, {499, 500, 0}, {500, 500, 1},
	}
	for _, c := range cases {
		if got := PageOf(c.row, c.rpp); got != c.want {
			t.Errorf("PageOf(%d, %d) = %d, want %d", c.row, c.rpp, got, c.want)
		}
	}
}

func TestMaterializedShape(t *testing.T) {
	m := newManager()
	tb := NewMaterialized(m, "t33", 1000, 33, 1)
	if tb.Pages() != 31 { // ceil(1000/33)
		t.Errorf("Pages = %d, want 31", tb.Pages())
	}
	if tb.File().Pages() != tb.Pages() {
		t.Errorf("file extent %d pages, table reports %d", tb.File().Pages(), tb.Pages())
	}
	if tb.KeyDomain() != 1000 {
		t.Errorf("KeyDomain = %d, want 1000", tb.KeyDomain())
	}
}

func TestMaterializedValuesInDomain(t *testing.T) {
	m := newManager()
	tb := NewMaterialized(m, "t", 500, 33, 7)
	for r := int64(0); r < tb.Rows(); r++ {
		row := tb.RowAt(r)
		if row.C1 < 0 || row.C1 >= 500 || row.C2 < 0 || row.C2 >= 500 {
			t.Fatalf("row %d = %+v outside domain [0,500)", r, row)
		}
	}
}

func TestMaterializedDeterministicBySeed(t *testing.T) {
	a := NewMaterialized(newManager(), "t", 200, 10, 42)
	b := NewMaterialized(newManager(), "t", 200, 10, 42)
	for r := int64(0); r < 200; r++ {
		if a.RowAt(r) != b.RowAt(r) {
			t.Fatalf("row %d differs across same-seed builds", r)
		}
	}
}

func TestSyntheticKeysAreAPermutation(t *testing.T) {
	tb := NewSynthetic(newManager(), "t", 1000, 33, 3)
	seen := make(map[int64]bool, 1000)
	for r := int64(0); r < 1000; r++ {
		k := tb.RowAt(r).C2
		if k < 0 || k >= 1000 {
			t.Fatalf("key %d outside domain", k)
		}
		if seen[k] {
			t.Fatalf("key %d occurs twice", k)
		}
		seen[k] = true
	}
}

func TestSyntheticInverseRoundTrip(t *testing.T) {
	tb := NewSynthetic(newManager(), "t", 997, 7, 11) // prime cardinality
	for r := int64(0); r < tb.Rows(); r++ {
		if got := tb.RowForKey(tb.RowAt(r).C2); got != r {
			t.Fatalf("RowForKey(key(%d)) = %d", r, got)
		}
	}
}

func TestSyntheticKeyRangeScattersAcrossPages(t *testing.T) {
	// The rows matching a small key range should spread over many pages,
	// like a uniform random column, not cluster in a few.
	tb := NewSynthetic(newManager(), "t", 100000, 100, 5)
	pages := make(map[int64]bool)
	for k := int64(0); k < 500; k++ {
		pages[PageOf(tb.RowForKey(k), 100)] = true
	}
	if len(pages) < 300 {
		t.Errorf("500 consecutive keys hit only %d distinct pages, want scatter >= 300", len(pages))
	}
}

func TestSyntheticOutOfDomainKeyPanics(t *testing.T) {
	tb := NewSynthetic(newManager(), "t", 100, 10, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for out-of-domain key")
		}
	}()
	tb.RowForKey(100)
}

func TestZeroRowsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for zero-row table")
		}
	}()
	NewSynthetic(newManager(), "t", 0, 10, 1)
}

func TestModInverse(t *testing.T) {
	cases := []struct{ a, n int64 }{{3, 10}, {7, 26}, {617, 1000}, {999999937, 1 << 40}}
	for _, c := range cases {
		inv := modInverse(c.a, c.n)
		if mulMod(c.a, inv, c.n) != 1 {
			t.Errorf("modInverse(%d, %d) = %d, product != 1", c.a, c.n, inv)
		}
	}
}

func TestMulModMatchesBigIntuition(t *testing.T) {
	// Values small enough to check directly.
	for a := int64(0); a < 50; a++ {
		for b := int64(0); b < 50; b++ {
			if got, want := mulMod(a, b, 37), (a*b)%37; got != want {
				t.Fatalf("mulMod(%d,%d,37) = %d, want %d", a, b, got, want)
			}
		}
	}
}

// Property: for any table size, the affine map is a bijection — inverting
// any key yields a row that maps back to that key.
func TestPropertySyntheticBijection(t *testing.T) {
	f := func(rowsRaw uint16, keyRaw uint16, seed int64) bool {
		rows := int64(rowsRaw%5000) + 2
		tb := NewSynthetic(newManager(), "t", rows, 10, seed)
		key := int64(keyRaw) % rows
		r := tb.RowForKey(key)
		return r >= 0 && r < rows && tb.RowAt(r).C2 == key
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: pages × rows-per-page covers all rows with less than one spare
// page of slack.
func TestPropertyPageCount(t *testing.T) {
	f := func(rowsRaw uint16, rppRaw uint8) bool {
		rows := int64(rowsRaw) + 1
		rpp := int(rppRaw%200) + 1
		tb := NewSynthetic(newManager(), "t", rows, rpp, 1)
		p := tb.Pages()
		return p*int64(rpp) >= rows && (p-1)*int64(rpp) < rows
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
