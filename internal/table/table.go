// Package table implements heap tables laid out as fixed-occupancy slotted
// pages on a simulated disk file.
//
// The paper's experiments use tables T1, T33, and T500 that differ only in
// rows per page (1, 33, 500), with two integer columns that matter: C1 (the
// aggregated column) and C2 (the predicate column, uniformly distributed,
// carrying a non-clustered index). Padding columns that only set the row
// size are represented by the rows-per-page parameter rather than by bytes.
//
// Two backings implement the same interface:
//
//   - Materialized stores real column values, for correctness tests and
//     examples that verify query answers against brute force.
//   - Synthetic derives C2 from an invertible affine permutation of the row
//     number and C1 from a hash, so that multi-million-row experiment sweeps
//     need O(1) memory while still supporting exact index-order enumeration
//     (the inverse permutation maps any key back to its row).
package table

import (
	"fmt"
	"math/rand"

	"pioqo/internal/disk"
)

// Row is the projection of a heap row onto the two columns queries touch.
type Row struct {
	C1 int64 // aggregated column (no index)
	C2 int64 // predicate column (non-clustered index)
}

// Table is a heap table: rows packed RowsPerPage to a page in row-number
// order, stored in a contiguous disk file.
type Table interface {
	Name() string

	// Rows returns the table cardinality.
	Rows() int64

	// RowsPerPage returns the fixed page occupancy (the paper's RPP knob).
	RowsPerPage() int

	// Pages returns the heap size in pages: ceil(Rows/RowsPerPage).
	Pages() int64

	// File returns the disk extent holding the heap pages.
	File() *disk.File

	// RowAt returns row values by row number in [0, Rows). The caller is
	// responsible for having paid the I/O to read PageOf(row) first.
	RowAt(row int64) Row

	// RowsAt returns rows [lo, hi) reusing buf's backing array — the batch
	// accessor scan inner loops use to avoid a virtual call per row. Both
	// backings enumerate incrementally, which is markedly cheaper than
	// hi−lo RowAt calls. The same I/O contract as RowAt applies.
	RowsAt(lo, hi int64, buf []Row) []Row

	// KeyDomain returns D such that C2 values lie in [0, D).
	KeyDomain() int64
}

// PageOf returns the heap page holding row number row in a table with the
// given page occupancy.
func PageOf(row int64, rowsPerPage int) int64 { return row / int64(rowsPerPage) }

// pagesFor returns ceil(rows / rpp).
func pagesFor(rows int64, rpp int) int64 {
	return (rows + int64(rpp) - 1) / int64(rpp)
}

func validateShape(name string, rows int64, rpp int) {
	if rows <= 0 || rpp <= 0 {
		panic(fmt.Sprintf("table %q: %d rows, %d rows/page", name, rows, rpp))
	}
}

// Materialized is a heap table with stored column values. C1 and C2 are
// independent uniform draws from [0, rows), matching the paper's data
// generation ("inserted values in each column follow a uniform random
// distribution").
type Materialized struct {
	name string
	rows int64
	rpp  int
	file *disk.File
	c1   []int64
	c2   []int64

	// domain, when positive, overrides the C2 key domain — a partition of
	// a larger table keys over the parent's domain, not its own row count.
	domain int64
}

// NewMaterialized builds a table of rows rows with rpp rows per page,
// allocating its heap file on m and drawing values with the given seed.
func NewMaterialized(m *disk.Manager, name string, rows int64, rpp int, seed int64) *Materialized {
	return newMaterialized(m, name, rows, rpp, seed, nil)
}

// NewMaterializedZipf builds a table whose C2 values follow a Zipf
// distribution with exponent s > 1 over [0, rows) — heavily skewed toward
// small keys. The paper's data is uniform; the skewed backing exercises
// histogram-based cardinality estimation, where a uniform assumption would
// misplace the scan break-even badly.
func NewMaterializedZipf(m *disk.Manager, name string, rows int64, rpp int, seed int64, s float64) *Materialized {
	if s <= 1 {
		panic(fmt.Sprintf("table %q: zipf exponent %f must exceed 1", name, s))
	}
	return newMaterialized(m, name, rows, rpp, seed, func(rng *rand.Rand) func() int64 {
		z := rand.NewZipf(rng, s, 1, uint64(rows-1))
		return func() int64 { return int64(z.Uint64()) }
	})
}

func newMaterialized(m *disk.Manager, name string, rows int64, rpp int, seed int64,
	c2Source func(*rand.Rand) func() int64) *Materialized {
	validateShape(name, rows, rpp)
	cols := drawColumns(rows, seed, c2Source)
	return &Materialized{
		name: name,
		rows: rows,
		rpp:  rpp,
		file: m.MustAllocate(name, pagesFor(rows, rpp)),
		c1:   cols.C1,
		c2:   cols.C2,
	}
}

// Name implements Table.
func (t *Materialized) Name() string { return t.name }

// Rows implements Table.
func (t *Materialized) Rows() int64 { return t.rows }

// RowsPerPage implements Table.
func (t *Materialized) RowsPerPage() int { return t.rpp }

// Pages implements Table.
func (t *Materialized) Pages() int64 { return pagesFor(t.rows, t.rpp) }

// File implements Table.
func (t *Materialized) File() *disk.File { return t.file }

// KeyDomain implements Table.
func (t *Materialized) KeyDomain() int64 {
	if t.domain > 0 {
		return t.domain
	}
	return t.rows
}

// RowAt implements Table.
func (t *Materialized) RowAt(row int64) Row {
	return Row{C1: t.c1[row], C2: t.c2[row]}
}

// RowsAt implements Table by zipping the column slices directly.
func (t *Materialized) RowsAt(lo, hi int64, buf []Row) []Row {
	buf = buf[:0]
	c1, c2 := t.c1[lo:hi], t.c2[lo:hi]
	for i := range c1 {
		buf = append(buf, Row{C1: c1[i], C2: c2[i]})
	}
	return buf
}

// SetC1 updates a row's C1 value in place. Only the materialized backing
// is updatable; the caller is responsible for marking the holding page
// dirty in the buffer pool.
func (t *Materialized) SetC1(row, v int64) { t.c1[row] = v }

// Synthetic is a heap table whose values are computed, not stored. C2 is an
// affine permutation of the row number over [0, rows) — every key occurs
// exactly once, keys scatter (pseudo)uniformly over pages, and the inverse
// permutation recovers the row for any key. C1 is a hash of the row number
// reduced to [0, rows).
type Synthetic struct {
	name string
	rows int64
	rpp  int
	file *disk.File

	a, aInv, b int64 // C2(row) = (a·row + b) mod rows
}

// NewSynthetic builds a computed-value table of rows rows with rpp rows per
// page, allocating its heap file on m. The permutation is derived from seed.
func NewSynthetic(m *disk.Manager, name string, rows int64, rpp int, seed int64) *Synthetic {
	validateShape(name, rows, rpp)
	rng := rand.New(rand.NewSource(seed))
	t := &Synthetic{
		name: name,
		rows: rows,
		rpp:  rpp,
		file: m.MustAllocate(name, pagesFor(rows, rpp)),
	}
	// Pick a multiplier coprime with rows so the map is a bijection. Large
	// odd candidates near phi*rows scatter ranges of keys well across pages.
	for a := int64(float64(rows)*0.6180339887) | 1; ; a += 2 {
		if a >= rows {
			a %= rows
			a |= 1
		}
		if a > 1 && gcd(a, rows) == 1 {
			t.a = a
			break
		}
	}
	t.aInv = modInverse(t.a, rows)
	t.b = rng.Int63n(rows)
	return t
}

// Name implements Table.
func (t *Synthetic) Name() string { return t.name }

// Rows implements Table.
func (t *Synthetic) Rows() int64 { return t.rows }

// RowsPerPage implements Table.
func (t *Synthetic) RowsPerPage() int { return t.rpp }

// Pages implements Table.
func (t *Synthetic) Pages() int64 { return pagesFor(t.rows, t.rpp) }

// File implements Table.
func (t *Synthetic) File() *disk.File { return t.file }

// KeyDomain implements Table.
func (t *Synthetic) KeyDomain() int64 { return t.rows }

// RowAt implements Table.
func (t *Synthetic) RowAt(row int64) Row {
	return Row{C1: int64(mix64(uint64(row)) % uint64(t.rows)), C2: t.key(row)}
}

// RowsAt implements Table. Consecutive rows' keys differ by the fixed
// stride a (mod rows), so the whole range is enumerated with one modular
// multiplication and an add-and-wrap per row — no per-row division for C2.
func (t *Synthetic) RowsAt(lo, hi int64, buf []Row) []Row {
	buf = buf[:0]
	key := t.key(lo)
	n := uint64(t.rows)
	for row := lo; row < hi; row++ {
		buf = append(buf, Row{C1: int64(mix64(uint64(row)) % n), C2: key})
		key += t.a
		if key >= t.rows {
			key -= t.rows
		}
	}
	return buf
}

// key returns C2 for a row: (a·row + b) mod rows, computed with
// overflow-safe modular multiplication.
func (t *Synthetic) key(row int64) int64 {
	return (mulMod(t.a, row, t.rows) + t.b) % t.rows
}

// RowStride returns the increment linking consecutive keys' rows:
// RowForKey(k+1) = (RowForKey(k) + RowStride()) mod Rows(). The synthetic
// B+-tree uses it to enumerate a leaf's entries incrementally instead of
// inverting the permutation per entry.
func (t *Synthetic) RowStride() int64 { return t.aInv }

// RowForKey returns the unique row whose C2 equals key. It is the inverse
// of the permutation and what lets the synthetic B+-tree enumerate entries
// in key order without storing them.
func (t *Synthetic) RowForKey(key int64) int64 {
	if key < 0 || key >= t.rows {
		panic(fmt.Sprintf("table %q: key %d outside domain [0,%d)", t.name, key, t.rows))
	}
	d := key - t.b
	if d < 0 {
		d += t.rows
	}
	return mulMod(t.aInv, d, t.rows)
}

func gcd(a, b int64) int64 {
	for b != 0 {
		a, b = b, a%b
	}
	return a
}

// modInverse returns a^-1 mod n via the extended Euclidean algorithm.
// It panics if gcd(a, n) != 1.
func modInverse(a, n int64) int64 {
	t, newT := int64(0), int64(1)
	r, newR := n, a
	for newR != 0 {
		q := r / newR
		t, newT = newT, t-q*newT
		r, newR = newR, r-q*newR
	}
	if r != 1 {
		panic(fmt.Sprintf("table: %d has no inverse mod %d", a, n))
	}
	if t < 0 {
		t += n
	}
	return t
}

// mulMod returns (a*b) mod n without overflow. Operands below 2³¹ (every
// realistic table cardinality) take the single-multiply fast path; larger
// ones fall back to shift-and-add. All operands must be non-negative with
// n > 0.
func mulMod(a, b, n int64) int64 {
	a %= n
	if a < 1<<31 && b < 1<<31 {
		return (a * b) % n
	}
	var result int64
	for b > 0 {
		if b&1 == 1 {
			result = (result + a) % n
		}
		a = (a << 1) % n
		b >>= 1
	}
	return result
}

// mix64 is the splitmix64 finalizer, a fast high-quality bijective hash.
func mix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}
