package table

import (
	"fmt"
	"math/rand"

	"pioqo/internal/disk"
)

// Partitioning a materialized table splits one logical rowset across N
// shards, each shard holding a contiguous heap of its own rows on its own
// node's device. The generator below draws the FULL rowset first, in
// exactly the order the unsharded constructor draws it, and only then
// deals rows out to shards — so the union of the partitions is the same
// multiset of rows whatever the shard count, and merged decomposable
// aggregates (MAX/COUNT/SUM/GROUP BY) are byte-identical to the unsharded
// answer.

// Columns is a generated rowset: parallel C1/C2 value slices in row order.
type Columns struct {
	C1, C2 []int64
	// Domain is the C2 key domain the values were drawn from: C2 values
	// lie in [0, Domain).
	Domain int64
}

// DrawColumns generates the uniform rowset NewMaterialized would store,
// using the identical draw order (C1 then C2 per row).
func DrawColumns(rows int64, seed int64) Columns {
	return drawColumns(rows, seed, nil)
}

// DrawColumnsZipf generates the Zipf-skewed rowset NewMaterializedZipf
// would store.
func DrawColumnsZipf(rows int64, seed int64, s float64) Columns {
	if s <= 1 {
		panic(fmt.Sprintf("table: zipf exponent %f must exceed 1", s))
	}
	return drawColumns(rows, seed, func(rng *rand.Rand) func() int64 {
		z := rand.NewZipf(rng, s, 1, uint64(rows-1))
		return func() int64 { return int64(z.Uint64()) }
	})
}

func drawColumns(rows int64, seed int64, c2Source func(*rand.Rand) func() int64) Columns {
	if rows <= 0 {
		panic(fmt.Sprintf("table: drawing %d rows", rows))
	}
	rng := rand.New(rand.NewSource(seed))
	c := Columns{C1: make([]int64, rows), C2: make([]int64, rows), Domain: rows}
	drawC2 := func() int64 { return rng.Int63n(rows) }
	if c2Source != nil {
		drawC2 = c2Source(rng)
	}
	for i := range c.C1 {
		c.C1[i] = rng.Int63n(rows)
		c.C2[i] = drawC2()
	}
	return c
}

// NewMaterializedFrom builds a materialized heap over pre-generated
// columns, allocating its file on m. domain is the C2 key domain — for a
// partition it is the parent table's domain, not the partition's row
// count, so selectivity estimation and index search stay anchored to the
// global key space.
func NewMaterializedFrom(m *disk.Manager, name string, rpp int, c1, c2 []int64, domain int64) *Materialized {
	if len(c1) != len(c2) || len(c1) == 0 {
		panic(fmt.Sprintf("table %q: %d C1 values vs %d C2 values", name, len(c1), len(c2)))
	}
	rows := int64(len(c1))
	validateShape(name, rows, rpp)
	return &Materialized{
		name:   name,
		rows:   rows,
		rpp:    rpp,
		file:   m.MustAllocate(name, pagesFor(rows, rpp)),
		c1:     c1,
		c2:     c2,
		domain: domain,
	}
}

// HashShard returns the shard a key belongs to under hash partitioning.
// The splitmix64 finalizer decorrelates the shard from the key's magnitude
// so skewed key distributions still spread evenly.
func HashShard(key int64, shards int) int {
	return int(mix64(uint64(key)) % uint64(shards))
}

// RangeShard returns the shard a key belongs to under range partitioning
// with the given upper-exclusive cut points (len = shards-1, ascending):
// shard i holds keys in [cuts[i-1], cuts[i]).
func RangeShard(key int64, cuts []int64) int {
	for i, c := range cuts {
		if key < c {
			return i
		}
	}
	return len(cuts)
}

// EqualWidthCuts returns the naive range-partition cut points splitting
// [0, domain) into shards equal-width slices — the bounds a rebalance pass
// improves on when the key distribution is skewed.
func EqualWidthCuts(domain int64, shards int) []int64 {
	cuts := make([]int64, shards-1)
	for i := range cuts {
		cuts[i] = domain * int64(i+1) / int64(shards)
	}
	return cuts
}

// Partition deals the rowset out to shards: assign(C2) names each row's
// shard, and rows keep their relative order within a shard. The returned
// rowIDs give each partition row's original row number, letting tests map
// partition rows back to the unsharded table.
func (c Columns) Partition(shards int, assign func(key int64) int) (parts []Columns, rowIDs [][]int64) {
	parts = make([]Columns, shards)
	rowIDs = make([][]int64, shards)
	for i := range parts {
		parts[i].Domain = c.Domain
	}
	for row, key := range c.C2 {
		s := assign(key)
		parts[s].C1 = append(parts[s].C1, c.C1[row])
		parts[s].C2 = append(parts[s].C2, key)
		rowIDs[s] = append(rowIDs[s], int64(row))
	}
	return parts, rowIDs
}
