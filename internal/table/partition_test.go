package table

import (
	"sort"
	"testing"

	"pioqo/internal/device"
	"pioqo/internal/disk"
	"pioqo/internal/sim"
)

// TestDrawColumnsMatchesConstructor: DrawColumns must replay the exact draw
// sequence NewMaterialized stores, so a partitioned build starts from the
// same rowset an unsharded build would hold.
func TestDrawColumnsMatchesConstructor(t *testing.T) {
	env := sim.NewEnv(1)
	m := disk.NewManager(device.NewSSD(env, device.DefaultSSDConfig()))
	for _, zipf := range []float64{0, 1.3} {
		var tab *Materialized
		var cols Columns
		if zipf > 0 {
			tab = NewMaterializedZipf(m, "z", 3000, 33, 7, zipf)
			cols = DrawColumnsZipf(3000, 7, zipf)
		} else {
			tab = NewMaterialized(m, "u", 3000, 33, 7)
			cols = DrawColumns(3000, 7)
		}
		for r := int64(0); r < 3000; r++ {
			row := tab.RowAt(r)
			if row.C1 != cols.C1[r] || row.C2 != cols.C2[r] {
				t.Fatalf("zipf=%v row %d: table (%d,%d), drawn (%d,%d)",
					zipf, r, row.C1, row.C2, cols.C1[r], cols.C2[r])
			}
		}
		if cols.Domain != tab.KeyDomain() {
			t.Errorf("zipf=%v: drawn domain %d, table domain %d", zipf, cols.Domain, tab.KeyDomain())
		}
	}
}

// TestPartitionPreservesMultiset: whatever the shard count and assignment,
// the partitions' union is the original rowset, rowIDs map each partition
// row back to its source row exactly, and within-shard order is stable.
func TestPartitionPreservesMultiset(t *testing.T) {
	cols := DrawColumnsZipf(5000, 7, 1.2)
	cuts := EqualWidthCuts(cols.Domain, 4)
	assigns := map[string]func(int64) int{
		"hash":  func(k int64) int { return HashShard(k, 4) },
		"range": func(k int64) int { return RangeShard(k, cuts) },
	}
	for name, assign := range assigns {
		parts, rowIDs := cols.Partition(4, assign)
		var total int
		for s, part := range parts {
			if len(part.C1) != len(part.C2) || len(part.C1) != len(rowIDs[s]) {
				t.Fatalf("%s shard %d: ragged partition", name, s)
			}
			total += len(part.C1)
			if part.Domain != cols.Domain {
				t.Errorf("%s shard %d: domain %d, want parent %d", name, s, part.Domain, cols.Domain)
			}
			for i, id := range rowIDs[s] {
				if part.C1[i] != cols.C1[id] || part.C2[i] != cols.C2[id] {
					t.Fatalf("%s shard %d row %d: (%d,%d) but source row %d is (%d,%d)",
						name, s, i, part.C1[i], part.C2[i], id, cols.C1[id], cols.C2[id])
				}
				if i > 0 && rowIDs[s][i-1] >= id {
					t.Fatalf("%s shard %d: rowIDs not ascending at %d", name, s, i)
				}
				if assign(part.C2[i]) != s {
					t.Fatalf("%s: key %d landed on shard %d, assign says %d",
						name, part.C2[i], s, assign(part.C2[i]))
				}
			}
		}
		if total != 5000 {
			t.Errorf("%s: partitions hold %d rows, want 5000", name, total)
		}
	}
}

// TestRangeShardBounds: cuts are upper-exclusive and exhaustive.
func TestRangeShardBounds(t *testing.T) {
	cuts := []int64{10, 20, 30}
	for _, tc := range []struct {
		key  int64
		want int
	}{{-5, 0}, {0, 0}, {9, 0}, {10, 1}, {19, 1}, {20, 2}, {29, 2}, {30, 3}, {1 << 40, 3}} {
		if got := RangeShard(tc.key, cuts); got != tc.want {
			t.Errorf("RangeShard(%d) = %d, want %d", tc.key, got, tc.want)
		}
	}
	if got := EqualWidthCuts(100, 4); len(got) != 3 || got[0] != 25 || got[1] != 50 || got[2] != 75 {
		t.Errorf("EqualWidthCuts(100, 4) = %v", got)
	}
}

// TestHashShardSpreadsSkewedKeys: the splitmix64 finalizer must spread even
// consecutive/clustered keys near-evenly.
func TestHashShardSpreadsSkewedKeys(t *testing.T) {
	counts := make([]int, 8)
	for k := int64(0); k < 8000; k++ {
		counts[HashShard(k, 8)]++
	}
	sort.Ints(counts)
	if counts[0] < 800 || counts[7] > 1200 {
		t.Errorf("hash spread over consecutive keys too uneven: %v", counts)
	}
}
