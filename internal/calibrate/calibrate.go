// Package calibrate measures a storage device and produces the QDTT cost
// model, implementing §4.4–§4.6 of the paper.
//
// A calibration point (band b, queue depth qd) measures the amortized cost
// of one random page read issued within a band of b pages while the device
// queue holds qd outstanding requests. Three drivers generate the queue
// depth:
//
//   - MultiThread: qd worker processes each issuing synchronous reads;
//   - GroupWait (GW): one process issues qd asynchronous reads, waits for
//     the whole group, then issues the next group;
//   - ActiveWait (AW): one process keeps a circular window of qd reads in
//     flight, reissuing as each oldest completes.
//
// On devices whose latency stays flat up to the parallelism limit (SSDs) GW
// and AW agree; on spinning media, queueing raises latency, GW's barrier
// drains the queue, and AW measures lower costs — the paper's Figs. 9–11.
// Nothing here special-cases device types; the divergence emerges from the
// device models.
package calibrate

import (
	"fmt"
	"math"
	"math/rand"

	"pioqo/internal/cost"
	"pioqo/internal/device"
	"pioqo/internal/disk"
	"pioqo/internal/sim"
)

// Method selects the queue-depth generation driver.
type Method int

const (
	// ActiveWait is the paper's method of choice for a general calibrator.
	ActiveWait Method = iota
	// GroupWait issues groups of qd reads with a barrier between groups.
	GroupWait
	// MultiThread uses qd synchronous reader processes.
	MultiThread
)

func (m Method) String() string {
	switch m {
	case ActiveWait:
		return "AW"
	case GroupWait:
		return "GW"
	case MultiThread:
		return "MT"
	default:
		return fmt.Sprintf("Method(%d)", int(m))
	}
}

// Config controls a calibration run.
type Config struct {
	// Bands is the ascending band-size grid, in pages.
	Bands []int64

	// Depths is the ascending queue-depth grid, conventionally the
	// exponential 1, 2, 4, 8, 16, 32 of §4.5.
	Depths []int

	// MaxReads is M, the page-read budget per calibration point (§4.4).
	MaxReads int

	// Repetitions averages each point over this many repetitions.
	Repetitions int

	// Method is the queue-depth driver.
	Method Method

	// StopThreshold is T of §4.6: if raising the queue depth improves the
	// largest band's cost by less than this fraction, calibration stops and
	// the remaining points default to slightly above the depth-1 costs.
	// Zero disables early stopping.
	StopThreshold float64

	// Seed drives the random page sequences.
	Seed int64
}

// DefaultConfig returns the paper's grid for a device: exponential depths 1
// to 32, M = 3200, and band sizes from 1 page up to the full device.
func DefaultConfig(dev device.Device) Config {
	devPages := dev.Size() / disk.PageSize
	var bands []int64
	for _, b := range []int64{1, 16, 256, 4 << 10, 64 << 10, 1 << 20, 16 << 20} {
		if b < devPages {
			bands = append(bands, b)
		}
	}
	bands = append(bands, devPages)
	return Config{
		Bands:       bands,
		Depths:      []int{1, 2, 4, 8, 16, 32},
		MaxReads:    3200,
		Repetitions: 1,
		Method:      ActiveWait,
		Seed:        1,
	}
}

// Point is one measured calibration point.
type Point struct {
	Band          int64
	Depth         int
	MicrosPerPage float64
	StdDev        float64 // across repetitions; 0 when Repetitions == 1
}

// Output is the result of a calibration run.
type Output struct {
	// Model is the full QDTT grid, including any defaulted rows.
	Model *cost.QDTT

	// Points holds the actually measured points, in calibration order.
	Points []Point

	// TotalReads is the number of page reads issued.
	TotalReads int64

	// SimTime is the virtual time the calibration took — the quantity the
	// §4.6 early stop exists to reduce.
	SimTime sim.Duration

	// StoppedEarly reports whether the §4.6 control tripped.
	StoppedEarly bool

	// CalibratedDepths is the number of depth rows actually measured; rows
	// beyond it were filled with the depth-1 default.
	CalibratedDepths int
}

// Run calibrates dev on a fresh pass over cfg's grid and returns the model.
// It drives env to completion; use a dedicated environment (or one whose
// other processes have finished).
func Run(env *sim.Env, dev device.Device, cfg Config) Output {
	validate(dev, cfg)
	rng := rand.New(rand.NewSource(cfg.Seed))

	nBands, nDepths := len(cfg.Bands), len(cfg.Depths)
	grid := make([][]float64, nDepths)
	for i := range grid {
		grid[i] = make([]float64, nBands)
	}

	out := Output{CalibratedDepths: nDepths}
	start := env.Now()

	// §4.6: depths ascending; within each depth, bands largest to smallest;
	// after the largest band of each depth (beyond the first), check the
	// improvement against the previous depth and stop if below threshold.
	stopped := false
	for di := 0; di < nDepths && !stopped; di++ {
		for bi := nBands - 1; bi >= 0; bi-- {
			band := cfg.Bands[bi]
			mean, std, reads := measure(env, dev, band, cfg.Depths[di], cfg, rng)
			grid[di][bi] = mean
			out.TotalReads += reads
			out.Points = append(out.Points, Point{
				Band: band, Depth: cfg.Depths[di], MicrosPerPage: mean, StdDev: std,
			})
			if bi == nBands-1 && di > 0 && cfg.StopThreshold > 0 {
				prev := grid[di-1][bi]
				if prev <= 0 || (prev-mean)/prev < cfg.StopThreshold {
					stopped = true
					out.StoppedEarly = true
					out.CalibratedDepths = di // rows di.. are defaulted
					break
				}
			}
		}
	}

	if out.StoppedEarly {
		// "A default value slightly larger than the measured costs for
		// queue depth one is assigned to the remaining calibration points."
		for di := out.CalibratedDepths; di < nDepths; di++ {
			for bi := range cfg.Bands {
				grid[di][bi] = grid[0][bi] * 1.05
			}
		}
	}

	out.SimTime = sim.Duration(env.Now() - start)
	out.Model = cost.NewQDTT(cfg.Bands, cfg.Depths, grid)
	return out
}

func validate(dev device.Device, cfg Config) {
	devPages := dev.Size() / disk.PageSize
	if len(cfg.Bands) == 0 || len(cfg.Depths) == 0 {
		panic("calibrate: empty grid")
	}
	if cfg.MaxReads <= 0 {
		panic("calibrate: MaxReads must be positive")
	}
	if cfg.Repetitions <= 0 {
		panic("calibrate: Repetitions must be positive")
	}
	for _, b := range cfg.Bands {
		if b <= 0 || b > devPages {
			panic(fmt.Sprintf("calibrate: band %d pages outside device of %d pages", b, devPages))
		}
	}
}

// measure runs cfg.Repetitions repetitions of one calibration point and
// returns the mean and standard deviation of the amortized per-page cost in
// microseconds, plus the reads issued.
func measure(env *sim.Env, dev device.Device, band int64, depth int, cfg Config, rng *rand.Rand) (mean, std float64, reads int64) {
	samples := make([]float64, cfg.Repetitions)
	for rep := 0; rep < cfg.Repetitions; rep++ {
		seq := buildSequence(dev, band, cfg.MaxReads, rng)
		reads += int64(len(seq))
		elapsed := drive(env, dev, seq, depth, cfg.Method)
		samples[rep] = elapsed.Micros() / float64(len(seq))
	}
	for _, s := range samples {
		mean += s
	}
	mean /= float64(len(samples))
	if len(samples) > 1 {
		var ss float64
		for _, s := range samples {
			ss += (s - mean) * (s - mean)
		}
		std = math.Sqrt(ss / float64(len(samples)))
	}
	return mean, std, reads
}

// buildSequence lays out one point's page reads per §4.4: the device is
// divided into band-sized blocks; within each block a non-repeating random
// page order is generated; blocks are visited one at a time. The total
// number of reads is capped at maxReads.
func buildSequence(dev device.Device, band int64, maxReads int, rng *rand.Rand) []int64 {
	devPages := dev.Size() / disk.PageSize
	var seq []int64

	if band >= int64(maxReads) {
		// One block of size band at a random aligned position, maxReads
		// distinct random pages within it.
		maxStart := devPages - band
		start := int64(0)
		if maxStart > 0 {
			start = rng.Int63n(maxStart + 1)
		}
		for _, p := range sampleDistinct(band, maxReads, rng) {
			seq = append(seq, start+p)
		}
		return seq
	}

	// Multiple blocks of size band, visited consecutively from a random
	// starting block; each contributes all its pages in random order. With
	// band 1 this degenerates to a pure sequential scan — which is exactly
	// the DTT convention that band size 1 means sequential I/O.
	numBlocks := int64(maxReads) / band
	if avail := devPages / band; numBlocks > avail {
		numBlocks = avail
	}
	if numBlocks < 1 {
		numBlocks = 1
	}
	firstBlock := int64(0)
	if slack := devPages/band - numBlocks; slack > 0 {
		firstBlock = rng.Int63n(slack + 1)
	}
	for blk := firstBlock; blk < firstBlock+numBlocks; blk++ {
		base := blk * band
		for _, p := range rng.Perm(int(band)) {
			seq = append(seq, base+int64(p))
		}
	}
	return seq
}

// sampleDistinct returns k distinct values from [0, n) in random order
// (Floyd's sampling; order shuffled).
func sampleDistinct(n int64, k int, rng *rand.Rand) []int64 {
	if int64(k) > n {
		k = int(n)
	}
	chosen := make(map[int64]struct{}, k)
	out := make([]int64, 0, k)
	for j := n - int64(k); j < n; j++ {
		v := rng.Int63n(j + 1)
		if _, dup := chosen[v]; dup {
			v = j
		}
		chosen[v] = struct{}{}
		out = append(out, v)
	}
	rng.Shuffle(len(out), func(i, j int) { out[i], out[j] = out[j], out[i] })
	return out
}

// drive issues the page sequence against dev with the requested queue depth
// and driver, returning the elapsed virtual time.
func drive(env *sim.Env, dev device.Device, seq []int64, depth int, method Method) sim.Duration {
	start := env.Now()
	read := func(page int64) *sim.Completion {
		return dev.ReadAt(page*disk.PageSize, disk.PageSize)
	}
	switch method {
	case MultiThread:
		next := 0
		for w := 0; w < depth; w++ {
			env.Go(fmt.Sprintf("calib-mt%d", w), func(p *sim.Proc) {
				for {
					i := next
					if i >= len(seq) {
						return
					}
					next = i + 1
					p.Wait(read(seq[i]))
				}
			})
		}
	case GroupWait:
		env.Go("calib-gw", func(p *sim.Proc) {
			for i := 0; i < len(seq); i += depth {
				end := i + depth
				if end > len(seq) {
					end = len(seq)
				}
				group := make([]*sim.Completion, 0, depth)
				for _, page := range seq[i:end] {
					group = append(group, read(page))
				}
				p.WaitAll(group)
			}
		})
	case ActiveWait:
		env.Go("calib-aw", func(p *sim.Proc) {
			window := make([]*sim.Completion, 0, depth)
			for i, page := range seq {
				if i >= depth {
					p.Wait(window[i-depth])
					window[i-depth] = nil
				}
				window = append(window, read(page))
			}
			for _, c := range window {
				if c != nil {
					p.Wait(c)
				}
			}
		})
	default:
		panic("calibrate: unknown method " + method.String())
	}
	env.Run()
	return sim.Duration(env.Now() - start)
}
