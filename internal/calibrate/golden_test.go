package calibrate

import (
	"encoding/json"
	"flag"
	"math"
	"os"
	"path/filepath"
	"testing"

	"pioqo/internal/device"
	"pioqo/internal/disk"
	"pioqo/internal/sim"
)

var updateGolden = flag.Bool("update", false, "rewrite golden calibration files")

// goldenGrid is the serialized shape of a calibrated model for the golden
// files under testdata/.
type goldenGrid struct {
	Bands  []int64     `json:"bands"`
	Depths []int       `json:"depths"`
	Cost   [][]float64 `json:"cost_us_per_page"`
}

// TestGoldenCalibratedModels pins the default device models' calibrated
// QDTT grids against checked-in golden files. Any change to the device
// mechanics, the calibration layout, or the simulation kernel that shifts
// a calibrated cost by more than 1% trips this test — deliberate model
// changes regenerate the files with `go test -run Golden -update`.
func TestGoldenCalibratedModels(t *testing.T) {
	for _, tc := range []struct {
		name   string
		newDev func(*sim.Env) device.Device
	}{
		{"ssd", newSSD},
		{"hdd", newHDD},
		{"raid8", newRAID},
	} {
		t.Run(tc.name, func(t *testing.T) {
			env := sim.NewEnv(7)
			dev := tc.newDev(env)
			cfg := DefaultConfig(dev)
			cfg.MaxReads = 800
			cfg.Bands = []int64{1, 256, 64 << 10, dev.Size() / disk.PageSize}
			out := Run(env, dev, cfg)

			got := goldenGrid{Bands: cfg.Bands, Depths: cfg.Depths}
			for _, d := range cfg.Depths {
				row := make([]float64, len(cfg.Bands))
				for i, b := range cfg.Bands {
					row[i] = out.Model.PageCost(b, d)
				}
				got.Cost = append(got.Cost, row)
			}

			path := filepath.Join("testdata", "golden_"+tc.name+".json")
			if *updateGolden {
				data, err := json.MarshalIndent(got, "", "  ")
				if err != nil {
					t.Fatal(err)
				}
				if err := os.MkdirAll("testdata", 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}

			data, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden file (run with -update): %v", err)
			}
			var want goldenGrid
			if err := json.Unmarshal(data, &want); err != nil {
				t.Fatal(err)
			}
			if len(want.Cost) != len(got.Cost) {
				t.Fatalf("grid shape changed: %d depth rows, golden %d",
					len(got.Cost), len(want.Cost))
			}
			for di := range want.Cost {
				for bi := range want.Cost[di] {
					w, g := want.Cost[di][bi], got.Cost[di][bi]
					if math.Abs(g-w) > 0.01*w+0.01 {
						t.Errorf("band %d depth %d: %.3fus, golden %.3fus",
							got.Bands[bi], got.Depths[di], g, w)
					}
				}
			}
		})
	}
}
