package calibrate

import (
	"math/rand"
	"testing"

	"pioqo/internal/device"
	"pioqo/internal/disk"
	"pioqo/internal/sim"
)

func newSSD(e *sim.Env) device.Device { return device.NewSSD(e, device.DefaultSSDConfig()) }
func newHDD(e *sim.Env) device.Device { return device.NewHDD(e, device.DefaultHDDConfig()) }
func newRAID(e *sim.Env) device.Device {
	return device.NewRAID0(e, 8, 64<<10, device.HDD15KConfig())
}

// smallConfig keeps test calibrations fast: fewer bands and reads.
func smallConfig(dev device.Device, method Method) Config {
	cfg := DefaultConfig(dev)
	cfg.MaxReads = 800
	cfg.Method = method
	devPages := dev.Size() / disk.PageSize
	cfg.Bands = []int64{1, 256, 64 << 10, devPages}
	return cfg
}

func runOn(newDev func(*sim.Env) device.Device, mutate func(*Config)) Output {
	env := sim.NewEnv(7)
	dev := newDev(env)
	cfg := smallConfig(dev, ActiveWait)
	if mutate != nil {
		mutate(&cfg)
	}
	return Run(env, dev, cfg)
}

func TestSSDCostDropsWithDepth(t *testing.T) {
	out := runOn(newSSD, nil)
	band := int64(64 << 10)
	prev := out.Model.PageCost(band, 1)
	for _, qd := range []int{2, 4, 8, 16, 32} {
		cur := out.Model.PageCost(band, qd)
		if cur >= prev {
			t.Errorf("SSD cost at depth %d = %.1f, not below %.1f", qd, cur, prev)
		}
		prev = cur
	}
	gain := out.Model.PageCost(band, 1) / out.Model.PageCost(band, 32)
	if gain < 10 {
		t.Errorf("SSD depth-32 gain = %.1fx, want >= 10x", gain)
	}
}

func TestHDDBandDominatesDepth(t *testing.T) {
	out := runOn(newHDD, func(c *Config) { c.Depths = []int{1, 2, 4, 8} })
	devPages := out.Model.Bands()[len(out.Model.Bands())-1]
	// Band effect at depth 1: sequential (band 1) is orders of magnitude
	// cheaper than full-band random.
	seq := out.Model.PageCost(1, 1)
	rnd := out.Model.PageCost(devPages, 1)
	if rnd < 50*seq {
		t.Errorf("HDD full-band/sequential = %.1fx, want >= 50x", rnd/seq)
	}
	// Depth effect is modest compared to SSD.
	gain := out.Model.PageCost(devPages, 1) / out.Model.PageCost(devPages, 8)
	if gain > 6 {
		t.Errorf("HDD depth-8 gain = %.1fx, want modest (< 6x)", gain)
	}
}

func TestSSDBandEffectMilderThanHDD(t *testing.T) {
	// §4.2: "in many modern solid state drives the band size is still an
	// important parameter ... Nevertheless, this impact is not as serious
	// as what we can see on calibrated models for single-spindle HDDs."
	// Compare the growth of random-read cost from a small band (256 pages)
	// to the whole device.
	ssd := runOn(newSSD, nil)
	hdd := runOn(newHDD, nil)
	rel := func(o Output) float64 {
		bands := o.Model.Bands()
		return o.Model.PageCost(bands[len(bands)-1], 1) / o.Model.PageCost(256, 1)
	}
	ssdRel, hddRel := rel(ssd), rel(hdd)
	if ssdRel < 1.05 {
		t.Errorf("SSD band effect %.2fx, want visible (> 1.05x)", ssdRel)
	}
	if ssdRel > 2 {
		t.Errorf("SSD band effect %.2fx, want mild (< 2x)", ssdRel)
	}
	if hddRel < 1.5*ssdRel {
		t.Errorf("HDD band effect %.2fx not clearly above SSD's %.2fx", hddRel, ssdRel)
	}
}

func TestGWMatchesAWOnSSD(t *testing.T) {
	// Paper Fig. 10: the GW−AW difference on SSD stays within a few
	// microseconds (their maximum is ~7 µs) because SSD latency is flat up
	// to the parallelism limit — the group barrier costs almost nothing.
	gw := runOn(newSSD, func(c *Config) { c.Method = GroupWait })
	aw := runOn(newSSD, func(c *Config) { c.Method = ActiveWait })
	for _, band := range []int64{256, 64 << 10} {
		for _, qd := range []int{4, 16, 32} {
			g, a := gw.Model.PageCost(band, qd), aw.Model.PageCost(band, qd)
			if diff := g - a; diff > 10 || diff < -10 {
				t.Errorf("band %d qd %d: GW %.1f vs AW %.1f (%.1fus apart), want within 10us",
					band, qd, g, a, diff)
			}
		}
	}
}

func TestAWBeatsGWOnRAID(t *testing.T) {
	// Paper Fig. 11: on an 8-spindle RAID, AW measures significantly lower
	// costs than GW because the barrier drains the queue that keeps the
	// spindles busy.
	gw := runOn(newRAID, func(c *Config) { c.Method = GroupWait })
	aw := runOn(newRAID, func(c *Config) { c.Method = ActiveWait })
	band := gw.Model.Bands()[len(gw.Model.Bands())-1]
	g, a := gw.Model.PageCost(band, 16), aw.Model.PageCost(band, 16)
	if a > 0.9*g {
		t.Errorf("RAID qd16: AW %.1f vs GW %.1f; want AW clearly lower", a, g)
	}
}

func TestMultiThreadAgreesWithAW(t *testing.T) {
	mt := runOn(newSSD, func(c *Config) { c.Method = MultiThread })
	aw := runOn(newSSD, func(c *Config) { c.Method = ActiveWait })
	g, a := mt.Model.PageCost(256, 8), aw.Model.PageCost(256, 8)
	if diff := (g - a) / a; diff > 0.25 || diff < -0.25 {
		t.Errorf("MT %.1f vs AW %.1f at qd 8: want close", g, a)
	}
}

func TestRAIDDepthScalesTowardSpindleCount(t *testing.T) {
	out := runOn(newRAID, nil)
	band := out.Model.Bands()[len(out.Model.Bands())-1]
	gain := out.Model.PageCost(band, 1) / out.Model.PageCost(band, 8)
	if gain < 3 {
		t.Errorf("RAID depth-8 gain = %.1fx, want >= 3x on 8 spindles", gain)
	}
}

func TestEarlyStopOnHDDSavesTime(t *testing.T) {
	full := runOn(newHDD, func(c *Config) { c.StopThreshold = 0 })
	stopped := runOn(newHDD, func(c *Config) { c.StopThreshold = 0.20 })
	if !stopped.StoppedEarly {
		t.Fatal("early stop did not trip on HDD with T=20%")
	}
	if stopped.CalibratedDepths >= len(stopped.Model.Depths()) {
		t.Errorf("calibrated %d depth rows, want fewer than %d",
			stopped.CalibratedDepths, len(stopped.Model.Depths()))
	}
	if stopped.SimTime >= full.SimTime {
		t.Errorf("stopped calibration took %v, full took %v; want savings",
			stopped.SimTime, full.SimTime)
	}
	if stopped.TotalReads >= full.TotalReads {
		t.Errorf("stopped calibration issued %d reads, full %d", stopped.TotalReads, full.TotalReads)
	}
}

func TestEarlyStopDoesNotTripOnSSD(t *testing.T) {
	out := runOn(newSSD, func(c *Config) { c.StopThreshold = 0.20 })
	if out.StoppedEarly {
		t.Error("early stop tripped on SSD, which gains >20% per doubling")
	}
}

func TestDefaultedRowsSlightlyAboveDepthOne(t *testing.T) {
	out := runOn(newHDD, func(c *Config) { c.StopThreshold = 0.20 })
	if !out.StoppedEarly {
		t.Skip("early stop did not trip")
	}
	depths := out.Model.Depths()
	band := out.Model.Bands()[0]
	d1 := out.Model.PageCost(band, 1)
	dLast := out.Model.PageCost(band, depths[len(depths)-1])
	if dLast < d1 || dLast > 1.10*d1 {
		t.Errorf("defaulted cost %.1f, want within [%.1f, %.1f]", dLast, d1, 1.10*d1)
	}
}

func TestDeterministicAcrossRuns(t *testing.T) {
	a := runOn(newSSD, nil)
	b := runOn(newSSD, nil)
	for i := range a.Points {
		if a.Points[i] != b.Points[i] {
			t.Fatalf("point %d differs: %+v vs %+v", i, a.Points[i], b.Points[i])
		}
	}
}

func TestRepetitionsProduceStdDev(t *testing.T) {
	out := runOn(newSSD, func(c *Config) {
		c.Repetitions = 5
		c.Bands = []int64{256}
		c.Depths = []int{1, 4}
	})
	for _, pt := range out.Points {
		if pt.StdDev < 0 {
			t.Errorf("negative stddev at %+v", pt)
		}
	}
	if len(out.Points) != 2 {
		t.Fatalf("measured %d points, want 2", len(out.Points))
	}
}

func TestSequenceRespectsReadBudget(t *testing.T) {
	env := sim.NewEnv(1)
	dev := newSSD(env)
	rng := rand.New(rand.NewSource(9))
	for _, band := range []int64{1, 7, 100, 3200, 100000, dev.Size() / disk.PageSize} {
		seq := buildSequence(dev, band, 3200, rng)
		if len(seq) > 3200 {
			t.Errorf("band %d: %d reads, budget 3200", band, len(seq))
		}
		if len(seq) == 0 {
			t.Errorf("band %d: empty sequence", band)
		}
		devPages := dev.Size() / disk.PageSize
		for _, p := range seq {
			if p < 0 || p >= devPages {
				t.Fatalf("band %d: page %d outside device", band, p)
			}
		}
	}
}

func TestSequenceWithinBlockIsNonRepeating(t *testing.T) {
	env := sim.NewEnv(1)
	dev := newSSD(env)
	rng := rand.New(rand.NewSource(3))
	seq := buildSequence(dev, 100000, 3200, rng) // single-block case
	seen := make(map[int64]bool, len(seq))
	for _, p := range seq {
		if seen[p] {
			t.Fatalf("page %d repeated within block", p)
		}
		seen[p] = true
	}
}

func TestBandOneIsSequential(t *testing.T) {
	// Band 1 blocks contain a single page each, so the sequence visits
	// block starts; costs must come out near the device's streaming rate,
	// far below random.
	out := runOn(newHDD, func(c *Config) { c.Depths = []int{1} })
	seq := out.Model.PageCost(1, 1)
	if seq > 200 { // 4 KiB at ~110 MB/s is ~36 µs; allow generous slack
		t.Errorf("band-1 cost %.1fus, want near sequential media rate", seq)
	}
}

func TestSampleDistinct(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	got := sampleDistinct(10, 10, rng)
	if len(got) != 10 {
		t.Fatalf("got %d values, want 10", len(got))
	}
	seen := make(map[int64]bool)
	for _, v := range got {
		if v < 0 || v >= 10 || seen[v] {
			t.Fatalf("bad sample %v", got)
		}
		seen[v] = true
	}
	if got := sampleDistinct(5, 100, rng); len(got) != 5 {
		t.Errorf("oversized k: got %d values, want clamp to 5", len(got))
	}
}

func TestValidationPanics(t *testing.T) {
	env := sim.NewEnv(1)
	dev := newSSD(env)
	bad := []func(*Config){
		func(c *Config) { c.Bands = nil },
		func(c *Config) { c.Depths = nil },
		func(c *Config) { c.MaxReads = 0 },
		func(c *Config) { c.Repetitions = 0 },
		func(c *Config) { c.Bands = []int64{dev.Size()} }, // pages, not bytes
	}
	for i, mutate := range bad {
		cfg := smallConfig(dev, ActiveWait)
		mutate(&cfg)
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: no panic", i)
				}
			}()
			Run(env, dev, cfg)
		}()
	}
}
