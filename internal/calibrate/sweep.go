package calibrate

import (
	"math/rand"

	"pioqo/internal/cost"
	"pioqo/internal/device"
	"pioqo/internal/host"
	"pioqo/internal/sim"
)

// EnvFactory builds a fresh simulation environment plus a device in it for
// one calibration point. Sweep calls it once per grid point, so every point
// runs in total isolation.
type EnvFactory func() (*sim.Env, device.Device)

// Sweep calibrates the same grid as Run, but builds a fresh environment and
// device for every (band, depth) point. That makes the points independent:
// they can fan out over a pool of host workers and still produce results
// that are byte-identical to the serial sweep (workers <= 1), because each
// point derives its own random seed from (cfg.Seed, band, depth)
// instead of drawing from one shared stream whose state depends on
// execution order. Use Sweep to characterise a device *model*; use Run to
// calibrate a live device whose state (and clock) must advance through the
// calibration.
//
// SimTime is the summed virtual time of all points — the same quantity the
// §4.6 early stop reduces, just accounted per point.
//
// The §4.6 early stop couples consecutive depths: each depth's largest-band
// cost decides whether the next depth is measured at all. With a
// StopThreshold set, Sweep therefore walks depth rows in order, measuring
// the largest band first and fanning out only the remaining bands of the
// row; without a threshold the whole grid fans out at once.
func Sweep(newPoint EnvFactory, cfg Config, workers int) Output {
	{
		_, probe := newPoint()
		validate(probe, cfg)
	}

	nBands, nDepths := len(cfg.Bands), len(cfg.Depths)
	grid := make([][]float64, nDepths)
	for i := range grid {
		grid[i] = make([]float64, nBands)
	}

	out := Output{CalibratedDepths: nDepths}

	type cell struct {
		point   Point
		reads   int64
		elapsed sim.Duration
	}
	measureCell := func(di, bi int) cell {
		env, dev := newPoint()
		band, depth := cfg.Bands[bi], cfg.Depths[di]
		rng := rand.New(rand.NewSource(pointSeed(cfg.Seed, band, depth)))
		mean, std, reads := measure(env, dev, band, depth, cfg, rng)
		return cell{
			point:   Point{Band: band, Depth: depth, MicrosPerPage: mean, StdDev: std},
			reads:   reads,
			elapsed: sim.Duration(env.Now()),
		}
	}
	record := func(di, bi int, c cell) {
		grid[di][bi] = c.point.MicrosPerPage
		out.TotalReads += c.reads
		out.SimTime += c.elapsed
		out.Points = append(out.Points, c.point)
	}

	if cfg.StopThreshold <= 0 {
		// No depth coupling: the whole grid is one flat fan-out, collected
		// in calibration order (depths ascending, bands largest to smallest).
		cells := make([]cell, nDepths*nBands)
		host.Sweep(workers, len(cells), func(k int) {
			cells[k] = measureCell(k/nBands, nBands-1-k%nBands)
		})
		for k, c := range cells {
			record(k/nBands, nBands-1-k%nBands, c)
		}
		out.Model = cost.NewQDTT(cfg.Bands, cfg.Depths, grid)
		return out
	}

	for di := 0; di < nDepths; di++ {
		// The largest band decides the early stop, so it is measured first —
		// the same order Run uses.
		top := measureCell(di, nBands-1)
		record(di, nBands-1, top)
		if di > 0 {
			prev := grid[di-1][nBands-1]
			if prev <= 0 || (prev-top.point.MicrosPerPage)/prev < cfg.StopThreshold {
				out.StoppedEarly = true
				out.CalibratedDepths = di // rows di.. are defaulted
				break
			}
		}
		rest := make([]cell, nBands-1)
		host.Sweep(workers, len(rest), func(k int) {
			rest[k] = measureCell(di, nBands-2-k)
		})
		for k, c := range rest {
			record(di, nBands-2-k, c)
		}
	}

	if out.StoppedEarly {
		// "A default value slightly larger than the measured costs for
		// queue depth one is assigned to the remaining calibration points."
		for di := out.CalibratedDepths; di < nDepths; di++ {
			for bi := range cfg.Bands {
				grid[di][bi] = grid[0][bi] * 1.05
			}
		}
	}

	out.Model = cost.NewQDTT(cfg.Bands, cfg.Depths, grid)
	return out
}

// pointSeed derives the RNG seed for one calibration point. SplitMix64-style
// mixing keeps the page sequences of neighbouring points decorrelated while
// staying a pure function of (seed, band, depth) — the property that makes
// the sweep order-independent.
func pointSeed(seed, band int64, depth int) int64 {
	h := uint64(seed)*0x9E3779B97F4A7C15 + uint64(band)*0xBF58476D1CE4E5B9 + uint64(depth)*0x94D049BB133111EB
	h ^= h >> 30
	h *= 0xBF58476D1CE4E5B9
	h ^= h >> 27
	h *= 0x94D049BB133111EB
	h ^= h >> 31
	return int64(h &^ (1 << 63))
}
