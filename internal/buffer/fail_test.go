package buffer

import (
	"errors"
	"testing"

	"pioqo/internal/device"
	"pioqo/internal/disk"
	"pioqo/internal/fault"
	"pioqo/internal/sim"
)

// faultWorld is the standard fixture with a fault injector between the pool
// and the device.
type faultWorld struct {
	*world
	inj *fault.Injector
}

func newFaultWorld(t *testing.T, poolPages int) *faultWorld {
	t.Helper()
	env := sim.NewEnv(1)
	inj := fault.Wrap(env, device.NewSSD(env, device.DefaultSSDConfig()))
	m := disk.NewManager(inj)
	return &faultWorld{
		world: &world{
			env:  env,
			file: m.MustAllocate("t", 4096),
			pool: NewPool(env, poolPages),
		},
		inj: inj,
	}
}

func TestFetchPageEFailedReadUninstallsFrame(t *testing.T) {
	w := newFaultWorld(t, 8)
	w.inj.Arm(fault.Schedule{Windows: []fault.Window{{ErrorRate: 1}}})
	epoch0 := w.pool.Epoch()
	var fetchErr error
	w.run(func(p *sim.Proc) {
		_, fetchErr = w.pool.FetchPageE(p, w.file, 3)
	})
	if !errors.Is(fetchErr, fault.ErrDeviceFault) {
		t.Fatalf("FetchPageE err = %v, want ErrDeviceFault", fetchErr)
	}
	if n := w.pool.Resident(w.file); n != 0 {
		t.Errorf("failed read left %d resident pages", n)
	}
	if n := w.pool.Pinned(); n != 0 {
		t.Errorf("failed read left %d pins", n)
	}
	if w.pool.Stats.ReadErrors != 1 {
		t.Errorf("Stats.ReadErrors = %d, want 1", w.pool.Stats.ReadErrors)
	}
	if w.pool.Epoch() == epoch0 {
		t.Error("failed read did not bump the residency epoch")
	}

	// Device healthy again: the same page must fetch cleanly — the failed
	// install left no poisoned frame behind.
	w.inj.Disarm()
	w.run(func(p *sim.Proc) {
		h, err := w.pool.FetchPageE(p, w.file, 3)
		if err != nil {
			t.Errorf("refetch after recovery failed: %v", err)
			return
		}
		h.Release()
	})
	if n := w.pool.Resident(w.file); n != 1 {
		t.Errorf("recovered fetch left %d resident pages, want 1", n)
	}
}

func TestFailedReadPropagatesToJoiners(t *testing.T) {
	w := newFaultWorld(t, 8)
	w.inj.Arm(fault.Schedule{Windows: []fault.Window{{ErrorRate: 1}}})
	errs := make([]error, 2)
	for i := 0; i < 2; i++ {
		i := i
		w.env.Go("fetcher", func(p *sim.Proc) {
			_, errs[i] = w.pool.FetchPageE(p, w.file, 7)
		})
	}
	w.env.Run()
	for i, err := range errs {
		if !errors.Is(err, fault.ErrDeviceFault) {
			t.Errorf("fetcher %d: err = %v, want ErrDeviceFault", i, err)
		}
	}
	if n := w.pool.Pinned(); n != 0 {
		t.Errorf("joiners left %d pins after failure", n)
	}
	// Exactly one device-level failure: the second fetch joined the first's
	// in-flight load instead of issuing its own.
	if got := w.inj.Stats().Errors; got != 1 {
		t.Errorf("injector failed %d reads, want 1 (joiner must share the load)", got)
	}
}

func TestFetchPagePanicsOnFault(t *testing.T) {
	// Legacy FetchPage has no error path; a device fault reaching it is a
	// bug in the caller's wiring and must be loud.
	w := newFaultWorld(t, 8)
	w.inj.Arm(fault.Schedule{Windows: []fault.Window{{ErrorRate: 1}}})
	panicked := false
	w.run(func(p *sim.Proc) {
		defer func() {
			if recover() != nil {
				panicked = true
			}
		}()
		w.pool.FetchPage(p, w.file, 0)
	})
	if !panicked {
		t.Fatal("FetchPage did not panic on an unhandled device fault")
	}
}
