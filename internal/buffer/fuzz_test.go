package buffer

import (
	"container/list"
	"math/rand"
	"testing"

	"pioqo/internal/sim"
)

// refLRU is an independent reference implementation of LRU residency, kept
// deliberately naive: a list of page numbers, most recent at the front.
type refLRU struct {
	capacity int
	ll       *list.List
	pos      map[int64]*list.Element
}

func newRefLRU(capacity int) *refLRU {
	return &refLRU{capacity: capacity, ll: list.New(), pos: map[int64]*list.Element{}}
}

func (r *refLRU) touch(page int64) {
	if el, ok := r.pos[page]; ok {
		r.ll.MoveToFront(el)
		return
	}
	if r.ll.Len() >= r.capacity {
		back := r.ll.Back()
		r.ll.Remove(back)
		delete(r.pos, back.Value.(int64))
	}
	r.pos[page] = r.ll.PushFront(page)
}

func (r *refLRU) contains(page int64) bool { _, ok := r.pos[page]; return ok }

func (r *refLRU) flush() {
	r.ll.Init()
	r.pos = map[int64]*list.Element{}
}

// TestFuzzPoolMatchesReferenceLRU drives the pool with a long random
// sequence of fetches, prefetches, and flushes — each allowed to settle
// before the next — and cross-checks residency against the reference after
// every step.
func TestFuzzPoolMatchesReferenceLRU(t *testing.T) {
	const (
		capacity = 32
		fileSize = 256
		steps    = 4000
	)
	w := newWorld(t, capacity)
	ref := newRefLRU(capacity)
	rng := rand.New(rand.NewSource(99))

	w.run(func(p *sim.Proc) {
		for step := 0; step < steps; step++ {
			switch op := rng.Intn(10); {
			case op < 6: // synchronous fetch
				page := rng.Int63n(fileSize)
				w.pool.FetchPage(p, w.file, page).Release()
				ref.touch(page)
			case op < 9: // prefetch, settled before the next op
				page := rng.Int63n(fileSize)
				issued := w.pool.Prefetch(w.file, page)
				p.Sleep(5 * sim.Millisecond)
				if issued {
					ref.touch(page)
				}
				// An already-resident page is NOT promoted by Prefetch
				// (only by access), matching the pool's semantics.
			case op == 9: // occasional flush
				w.pool.Flush()
				ref.flush()
			}

			if got, want := w.pool.Cached(), ref.ll.Len(); got != want {
				t.Fatalf("step %d: pool holds %d pages, reference %d", step, got, want)
			}
			// Spot-check membership agreement on a few random pages.
			for i := 0; i < 4; i++ {
				page := rng.Int63n(fileSize)
				if got, want := w.pool.Contains(w.file, page), ref.contains(page); got != want {
					t.Fatalf("step %d: Contains(%d) = %v, reference %v", step, page, got, want)
				}
			}
		}
	})

	// Full final sweep.
	for page := int64(0); page < fileSize; page++ {
		if got, want := w.pool.Contains(w.file, page), ref.contains(page); got != want {
			t.Fatalf("final: Contains(%d) = %v, reference %v", page, got, want)
		}
	}
}
