// Package buffer implements the database buffer pool: a fixed set of page
// frames with LRU replacement, pinning, asynchronous prefetch, and the
// residency statistics the optimizer consults.
//
// The pool tracks page *residency and timing*, not page bytes — table and
// index contents live in their own storage structures (see internal/table
// and internal/btree), while the pool decides which accesses cost an I/O.
// This mirrors what the paper's cost model needs from SQL Anywhere's pool:
// "statistics on how many table and index pages are currently cached".
package buffer

import (
	"container/list"
	"fmt"

	"pioqo/internal/disk"
	"pioqo/internal/obs"
	"pioqo/internal/obs/event"
	"pioqo/internal/sim"
)

// PageKey names a page globally: a file and a page number within it.
type PageKey struct {
	File disk.FileID
	Page int64
}

// Pool is a buffer pool over one disk manager's files. All methods must be
// called from simulation context; FetchPage additionally needs a process.
type Pool struct {
	env      *sim.Env
	capacity int

	frames map[PageKey]*frame
	lru    *list.List // unpinned, loaded frames; front = most recent

	resident map[disk.FileID]int64 // loaded pages per file
	files    map[disk.FileID]*disk.File

	// inFlightWrites tracks outstanding write-backs so FlushDirty can wait
	// for durability.
	inFlightWrites *sim.WaitGroup

	// epoch counts residency changes (installs and evictions). Consumers
	// that cache residency-derived state — the optimizer's plan memo — use
	// it as a cheap invalidation token.
	epoch uint64

	Stats Stats

	// Cumulative registry mirrors, nil until Publish. Unlike Stats, these
	// never reset — per-query numbers come from registry snapshot diffs.
	obsHits, obsMisses, obsJoined, obsPrefetch, obsPrefetchPages, obsEvict, obsDirty, obsReadErr *obs.Counter
	obsCached                                                                                    *obs.Gauge

	// log receives frame-uninstall events (failed reads evicting their
	// frame and bumping the epoch); nil = disabled.
	log *event.Log
}

// Stats counts pool traffic since the last ResetStats.
type Stats struct {
	Hits        int64 // requests served without device I/O
	Misses      int64 // requests that had to issue or join a device read
	JoinedLoads int64 // misses that piggybacked on an in-flight read

	// PrefetchReads counts device operations issued by readahead (one per
	// Prefetch, one per PrefetchRun block read); PrefetchedPages counts the
	// pages those operations covered. Their ratio is the readahead
	// efficiency: pages moved per device op.
	PrefetchReads   int64
	PrefetchedPages int64

	Evictions   int64
	DirtyWrites int64 // write-backs issued for dirty frames
	ReadErrors  int64 // device reads that completed with an error
}

type frame struct {
	key     PageKey
	pins    int
	dirty   bool
	loading *sim.Completion // non-nil while the device read is in flight
	lruEl   *list.Element   // non-nil iff unpinned and loaded
}

// NewPool returns a pool with room for capacity pages.
func NewPool(e *sim.Env, capacity int) *Pool {
	if capacity <= 0 {
		panic(fmt.Sprintf("buffer: pool capacity %d", capacity))
	}
	return &Pool{
		env:            e,
		capacity:       capacity,
		frames:         make(map[PageKey]*frame, capacity),
		lru:            list.New(),
		resident:       make(map[disk.FileID]int64),
		files:          make(map[disk.FileID]*disk.File),
		inFlightWrites: sim.NewWaitGroup(e),
	}
}

// Capacity returns the pool size in pages.
func (p *Pool) Capacity() int { return p.capacity }

// Cached reports how many pages are currently loaded or loading.
func (p *Pool) Cached() int { return len(p.frames) }

// Resident reports how many pages of file f are currently in the pool —
// the statistic the optimizer uses to correct I/O estimates for warm data.
func (p *Pool) Resident(f *disk.File) int64 { return p.resident[f.ID()] }

// ResetStats zeroes the traffic counters. Published registry mirrors keep
// accumulating.
func (p *Pool) ResetStats() { p.Stats = Stats{} }

// Publish registers the pool's instruments in reg under the catalog's
// buffer.* names: cumulative counters mirroring Stats, plus a cached_pages
// gauge tracking residency over virtual time.
func (p *Pool) Publish(reg *obs.Registry) {
	p.obsHits = reg.Counter(obs.MetricBufferHits)
	p.obsMisses = reg.Counter(obs.MetricBufferMisses)
	p.obsJoined = reg.Counter(obs.MetricBufferJoinedLoads)
	p.obsPrefetch = reg.Counter(obs.MetricBufferPrefetchReads)
	p.obsPrefetchPages = reg.Counter(obs.MetricBufferPrefetchedPages)
	p.obsEvict = reg.Counter(obs.MetricBufferEvictions)
	p.obsDirty = reg.Counter(obs.MetricBufferDirtyWrites)
	p.obsReadErr = reg.Counter(obs.MetricBufferReadErrors)
	p.obsCached = reg.Gauge(obs.MetricBufferCachedPages)
	p.obsCached.Set(float64(len(p.frames)))
}

// SetEventLog installs (or, with nil, removes) the pool's event log.
func (p *Pool) SetEventLog(l *event.Log) { p.log = l }

// bump increments a registry mirror if the pool has been Published.
func bump(c *obs.Counter) {
	if c != nil {
		c.Inc()
	}
}

// trackCached refreshes the cached_pages gauge after residency changes.
func (p *Pool) trackCached() {
	if p.obsCached != nil {
		p.obsCached.Set(float64(len(p.frames)))
	}
}

// evictOne removes the least recently used unpinned frame, writing it back
// asynchronously first if dirty. It reports whether a frame was freed. The
// frame is reusable immediately — the page image is handed to the device
// queue, which is how real pools avoid stalling page allocation on
// write-back.
func (p *Pool) evictOne() bool {
	back := p.lru.Back()
	if back == nil {
		return false
	}
	f := back.Value.(*frame)
	if f.dirty {
		p.writeBack(f)
	}
	p.lru.Remove(back)
	delete(p.frames, f.key)
	p.resident[f.key.File]--
	p.epoch++
	p.Stats.Evictions++
	bump(p.obsEvict)
	p.trackCached()
	return true
}

// writeBack issues the asynchronous device write for a dirty frame and
// clears the dirty bit.
func (p *Pool) writeBack(f *frame) {
	file := p.files[f.key.File]
	if file == nil {
		panic(fmt.Sprintf("buffer: dirty frame %v for unknown file", f.key))
	}
	f.dirty = false
	p.Stats.DirtyWrites++
	bump(p.obsDirty)
	p.inFlightWrites.Add(1)
	file.WritePage(f.key.Page).OnFire(p.inFlightWrites.Done)
}

// ensureRoom makes space for one more frame, evicting if needed. Running
// out of evictable frames is a sizing bug in the caller (too many pins or
// prefetches for the pool), and panics rather than deadlocking silently.
func (p *Pool) ensureRoom() {
	if len(p.frames) < p.capacity {
		return
	}
	if !p.evictOne() {
		panic(fmt.Sprintf("buffer: all %d frames pinned or loading", p.capacity))
	}
}

// install creates a loading frame for key backed by the read completion c.
func (p *Pool) install(key PageKey, c *sim.Completion) *frame {
	p.ensureRoom()
	f := &frame{key: key, loading: c}
	p.frames[key] = f
	p.resident[key.File]++
	p.epoch++
	p.trackCached()
	c.OnFire(func() {
		if c.Err() != nil {
			// The read failed: uninstall the frame so the page reads as
			// non-resident and a retry re-issues the device read. Fire runs
			// this callback before any waiter resumes, so waiters observe
			// the pool already consistent; they unpin their orphaned frame
			// themselves (FetchPageE's error path). f.loading stays set so
			// late joiners still see the frame as unusable.
			delete(p.frames, key)
			p.resident[key.File]--
			p.epoch++
			p.Stats.ReadErrors++
			bump(p.obsReadErr)
			p.log.Emit(event.EvFrameUninstall, event.NoQuery, key.Page, int64(p.epoch))
			p.trackCached()
			return
		}
		f.loading = nil
		if f.pins == 0 && f.lruEl == nil {
			f.lruEl = p.lru.PushFront(f)
		}
	})
	return f
}

// pin marks the frame in use and removes it from the eviction list.
func (p *Pool) pin(f *frame) {
	f.pins++
	if f.lruEl != nil {
		p.lru.Remove(f.lruEl)
		f.lruEl = nil
	}
}

// Handle is a pinned page. Callers must Release exactly once.
type Handle struct {
	pool *Pool
	f    *frame
}

// Key returns the pinned page's identity.
func (h Handle) Key() PageKey { return h.f.key }

// MarkDirty flags the page as modified; eviction (or FlushDirty) will
// write it back to the device.
func (h Handle) MarkDirty() { h.f.dirty = true }

// Release unpins the page, making it evictable again.
func (h Handle) Release() {
	f := h.f
	if f.pins <= 0 {
		panic("buffer: release of unpinned page " + fmt.Sprint(f.key))
	}
	f.pins--
	if f.pins == 0 && f.loading == nil {
		f.lruEl = h.pool.lru.PushFront(f)
	}
}

// FetchPage returns the page pinned, blocking the process for the device
// read if the page is neither cached nor already being loaded. A read that
// fails (injected device fault) panics; fault-aware callers use FetchPageE.
func (p *Pool) FetchPage(proc *sim.Proc, file *disk.File, page int64) Handle {
	h, err := p.FetchPageE(proc, file, page)
	if err != nil {
		panic(fmt.Sprintf("buffer: read of %v page %d failed: %v", file.ID(), page, err))
	}
	return h
}

// FetchPageE is FetchPage with the device's verdict surfaced: if the read
// completes with an error the page is not pinned, the frame is gone from
// the pool (the failure's OnFire hook uninstalls it before any waiter
// resumes), and the error is returned for the executor's retry policy to
// handle. Processes that joined an in-flight load observe the same error.
func (p *Pool) FetchPageE(proc *sim.Proc, file *disk.File, page int64) (Handle, error) {
	p.files[file.ID()] = file
	key := PageKey{file.ID(), page}
	if f, ok := p.frames[key]; ok {
		if f.loading != nil {
			p.Stats.Misses++
			p.Stats.JoinedLoads++
			bump(p.obsMisses)
			bump(p.obsJoined)
			p.pin(f)
			c := f.loading
			proc.Wait(c)
			if err := c.Err(); err != nil {
				// The frame was uninstalled when the load failed; drop our
				// pin on the orphan without re-adding it to the LRU.
				f.pins--
				return Handle{}, err
			}
			return Handle{p, f}, nil
		}
		p.Stats.Hits++
		bump(p.obsHits)
		p.pin(f)
		return Handle{p, f}, nil
	}
	p.Stats.Misses++
	bump(p.obsMisses)
	c := file.ReadPage(page)
	f := p.install(key, c)
	p.pin(f)
	proc.Wait(c)
	if err := c.Err(); err != nil {
		f.pins--
		return Handle{}, err
	}
	return Handle{p, f}, nil
}

// Prefetch asynchronously loads a single page if it is not already present
// or in flight. It never blocks and reports whether a read was issued.
func (p *Pool) Prefetch(file *disk.File, page int64) bool {
	p.files[file.ID()] = file
	key := PageKey{file.ID(), page}
	if _, ok := p.frames[key]; ok {
		return false
	}
	p.Stats.PrefetchReads++
	p.Stats.PrefetchedPages++
	bump(p.obsPrefetch)
	bump(p.obsPrefetchPages)
	p.install(key, file.ReadPage(page))
	return true
}

// PrefetchRun asynchronously loads count consecutive pages with one large
// device read, skipping the whole run if every page is already present.
// Pages already resident within a partially-present run are re-covered by
// the block read (the transfer is contiguous either way), matching how
// block-based readahead behaves in practice.
func (p *Pool) PrefetchRun(file *disk.File, page int64, count int) bool {
	p.files[file.ID()] = file
	allPresent := true
	for i := int64(0); i < int64(count); i++ {
		if _, ok := p.frames[PageKey{file.ID(), page + i}]; !ok {
			allPresent = false
			break
		}
	}
	if allPresent {
		return false
	}
	c := file.ReadRun(page, count)
	p.Stats.PrefetchReads++
	p.Stats.PrefetchedPages += int64(count)
	bump(p.obsPrefetch)
	if p.obsPrefetchPages != nil {
		p.obsPrefetchPages.Add(int64(count))
	}
	for i := int64(0); i < int64(count); i++ {
		key := PageKey{file.ID(), page + i}
		if _, ok := p.frames[key]; ok {
			continue
		}
		p.install(key, c)
	}
	return true
}

// PrefetchRunTrimmed is PrefetchRun with overlap trimming: instead of
// re-covering pages another scan's readahead already brought (or is
// bringing) in, it issues one block read per *uncovered* gap in
// [page, page+count). With several unshared scans circulating the same
// file, this is what keeps their readahead windows from multiplying
// device work for bytes the pool already holds — the multi-query prefetch
// coordination path. It reports how many device reads were issued.
func (p *Pool) PrefetchRunTrimmed(file *disk.File, page int64, count int) int {
	p.files[file.ID()] = file
	issued := 0
	gap := int64(-1) // start of the current uncovered gap, -1 = none open
	flush := func(end int64) {
		if gap < 0 {
			return
		}
		n := int(end - gap)
		c := file.ReadRun(gap, n)
		p.Stats.PrefetchReads++
		p.Stats.PrefetchedPages += int64(n)
		bump(p.obsPrefetch)
		if p.obsPrefetchPages != nil {
			p.obsPrefetchPages.Add(int64(n))
		}
		for i := int64(0); i < int64(n); i++ {
			p.install(PageKey{file.ID(), gap + i}, c)
		}
		issued++
		gap = -1
	}
	for i := int64(0); i < int64(count); i++ {
		pg := page + i
		if _, ok := p.frames[PageKey{file.ID(), pg}]; ok {
			flush(pg)
			continue
		}
		if gap < 0 {
			gap = pg
		}
	}
	flush(page + int64(count))
	return issued
}

// Contains reports whether the page is loaded or loading.
func (p *Pool) Contains(file *disk.File, page int64) bool {
	_, ok := p.frames[PageKey{file.ID(), page}]
	return ok
}

// Loaded reports whether the page is present with its read complete — a
// fetch would neither touch the device nor block. Batched executors use it
// to decide whether deferred CPU debt must settle before the fetch.
func (p *Pool) Loaded(file *disk.File, page int64) bool {
	f, ok := p.frames[PageKey{file.ID(), page}]
	return ok && f.loading == nil
}

// Pinned reports the total pin count across all frames. After a query has
// fully released its handles — including on abort paths — it is zero; tests
// assert that to catch leaked pins.
func (p *Pool) Pinned() int {
	n := 0
	for _, f := range p.frames {
		n += f.pins
	}
	return n
}

// Discard drops one unpinned, loaded, clean frame — the cancellation path
// for speculative prefetch: a mispredicted readahead page is evicted
// immediately instead of aging out of the LRU, so a canceled speculation
// stops squatting on frames demand fetches could use. Pinned, loading, or
// dirty frames are left alone (an in-flight read completes into the frame
// either way; a pin or a dirty bit means the page stopped being
// speculative). Reports whether the frame was dropped.
func (p *Pool) Discard(file *disk.File, page int64) bool {
	key := PageKey{file.ID(), page}
	f, ok := p.frames[key]
	if !ok || f.pins > 0 || f.loading != nil || f.dirty {
		return false
	}
	if f.lruEl != nil {
		p.lru.Remove(f.lruEl)
		f.lruEl = nil
	}
	delete(p.frames, key)
	p.resident[key.File]--
	p.epoch++
	p.Stats.Evictions++
	bump(p.obsEvict)
	p.trackCached()
	return true
}

// Epoch returns a token that changes whenever pool residency changes.
// Equal epochs guarantee Resident and residency-derived cost estimates are
// unchanged; cached plans keyed on it invalidate automatically.
func (p *Pool) Epoch() uint64 { return p.epoch }

// Flush drops every unpinned, loaded frame — the "flush the memory buffer
// pool" step the paper performs before each experiment. Dirty frames are
// written back asynchronously on the way out. It reports how many frames
// were dropped.
func (p *Pool) Flush() int {
	n := 0
	for p.evictOne() {
		n++
	}
	return n
}

// FlushDirty writes back every dirty frame without evicting anything and
// blocks the process until all write-backs — including those issued
// earlier by evictions — are durable on the device (a checkpoint).
func (p *Pool) FlushDirty(proc *sim.Proc) {
	for _, f := range p.frames {
		if f.dirty && f.loading == nil {
			p.writeBack(f)
		}
	}
	proc.WaitFor(p.inFlightWrites)
}

// DirtyPages reports how many loaded frames are currently dirty.
func (p *Pool) DirtyPages() int {
	n := 0
	for _, f := range p.frames {
		if f.dirty {
			n++
		}
	}
	return n
}
