// Circulating shared scans: the buffer layer's answer to N queries
// demand-fetching the same hot table N times over. Each hot file gets at
// most one producer process that walks the file's blocks in a loop,
// driving PrefetchRun readahead at the device's beneficial depth and
// pinning each block until the slowest attached consumer has taken it.
// Consumers attach mid-flight at the producer's current position, receive
// every block exactly once over one full lap, and detach once they have
// wrapped around their join point — so k concurrent scans cost the device
// roughly one circulation, not k full reads.
//
// The producer exits when its last consumer detaches (the simulator's
// deadlock detector treats a permanently parked process as a bug) and
// restarts lazily on the next attach, resuming from its remembered
// position — the scan keeps circulating across idle gaps.
package buffer

import (
	"fmt"

	"pioqo/internal/disk"
	"pioqo/internal/obs"
	"pioqo/internal/obs/event"
	"pioqo/internal/sim"
)

// ShareConfig tunes the scan-share registry. The zero value takes the
// defaults noted per field.
type ShareConfig struct {
	// BlockPages is the delivery granularity: pages per pushed batch and
	// per readahead device read. Default 64, clamped to an eighth of the
	// pool so one share can never monopolize it.
	BlockPages int

	// Depth caps how many block reads the producer keeps in flight — set
	// from the calibrated device's beneficial queue depth. Default 4.
	Depth int

	// Retry bounds the producer's response to injected device faults,
	// mirroring the executor's policy: MaxAttempts total attempts (default
	// 4), Backoff doubling per retry (default 200µs) up to MaxBackoff
	// (default 10ms). Deterministic: no jitter.
	MaxAttempts int
	Backoff     sim.Duration
	MaxBackoff  sim.Duration
}

func (c ShareConfig) normalized() ShareConfig {
	if c.BlockPages <= 0 {
		c.BlockPages = 64
	}
	if c.Depth <= 0 {
		c.Depth = 4
	}
	if c.MaxAttempts <= 0 {
		c.MaxAttempts = 4
	}
	if c.Backoff <= 0 {
		c.Backoff = 200 * sim.Microsecond
	}
	if c.MaxBackoff <= 0 {
		c.MaxBackoff = 10 * sim.Millisecond
	}
	return c
}

func (c ShareConfig) backoffFor(retry int) sim.Duration {
	d := c.Backoff
	for i := 0; i < retry && d < c.MaxBackoff; i++ {
		d *= 2
	}
	if d > c.MaxBackoff {
		d = c.MaxBackoff
	}
	return d
}

// Shares is the per-pool scan-share registry: one ScanShare per hot file,
// plus the interest counts sessions use to decide whether a table has
// enough co-running queries to make attaching worthwhile.
type Shares struct {
	env  *sim.Env
	pool *Pool
	cfg  ShareConfig

	scans    map[disk.FileID]*ScanShare
	interest map[disk.FileID]int
	live     int // running producer processes

	log                           *event.Log
	obsAttach, obsDetach, obsLaps *obs.Counter
}

// NewShares returns a registry over pool. One registry serves the whole
// system; shares are created lazily on first attach.
func NewShares(env *sim.Env, pool *Pool, cfg ShareConfig) *Shares {
	return &Shares{
		env:      env,
		pool:     pool,
		cfg:      cfg.normalized(),
		scans:    make(map[disk.FileID]*ScanShare),
		interest: make(map[disk.FileID]int),
	}
}

// SetEventLog installs (or, with nil, removes) the registry's event log.
func (s *Shares) SetEventLog(l *event.Log) { s.log = l }

// SetDepth updates the producer readahead cap to the device's calibrated
// beneficial queue depth.
func (s *Shares) SetDepth(d int) {
	if d > 0 {
		s.cfg.Depth = d
	}
}

// Publish registers the scanshare.* instruments in reg.
func (s *Shares) Publish(reg *obs.Registry) {
	s.obsAttach = reg.Counter(obs.MetricScanShareAttaches)
	s.obsDetach = reg.Counter(obs.MetricScanShareDetaches)
	s.obsLaps = reg.Counter(obs.MetricScanShareLaps)
}

// AddInterest records one more in-flight query against file f; sessions
// call it at submit so co-batched queries see each other before any of
// them plans.
func (s *Shares) AddInterest(f disk.FileID) { s.interest[f]++ }

// DropInterest undoes AddInterest when the query completes or fails.
func (s *Shares) DropInterest(f disk.FileID) {
	if s.interest[f] <= 0 {
		panic(fmt.Sprintf("buffer: interest underflow for file %v", f))
	}
	s.interest[f]--
}

// Interest reports how many in-flight queries have registered against f —
// the optimizer's share-party count.
func (s *Shares) Interest(f disk.FileID) int { return s.interest[f] }

// Live reports the total attached consumers across all shares; after a
// drained batch it is zero, and leak checks assert that.
func (s *Shares) Live() int {
	n := 0
	for _, sh := range s.scans {
		n += len(sh.consumers)
	}
	return n
}

// Attach joins (or starts) file's circulating scan and returns a consumer
// that will be pushed one full lap — every block exactly once, starting at
// the producer's current position. pages is the file's heap page count; it
// fixes the share's geometry on first attach.
func (s *Shares) Attach(qid int64, file *disk.File, pages int64) *ScanConsumer {
	sh := s.scans[file.ID()]
	if sh == nil {
		bp := int64(s.cfg.BlockPages)
		if max := int64(s.pool.Capacity() / 8); bp > max && max > 0 {
			bp = max
		}
		if bp > pages {
			bp = pages
		}
		sh = &ScanShare{
			reg:        s,
			file:       file,
			pages:      pages,
			blockPages: bp,
			blocks:     (pages + bp - 1) / bp,
		}
		s.scans[file.ID()] = sh
	}
	c := &ScanConsumer{sh: sh, qid: qid, join: sh.seq, next: sh.seq, remaining: sh.blocks}
	sh.consumers = append(sh.consumers, c)
	s.log.Emit(event.EvScanShareAttach, qid, sh.pos, int64(len(sh.consumers)))
	bump(s.obsAttach)
	if !sh.running {
		sh.running = true
		s.live++
		s.env.Go(fmt.Sprintf("scanshare-%v", file.ID()), sh.producer)
	}
	return c
}

// ScanShare is one file's circulating scan: a producer walking the file's
// blocks in a loop and the consumers currently riding it.
type ScanShare struct {
	reg  *Shares
	file *disk.File

	pages      int64
	blockPages int64
	blocks     int64 // blocks per lap

	pos  int64 // next block index the producer will deliver
	seq  int64 // delivery sequence number of that block
	laps int64

	running   bool
	consumers []*ScanConsumer
	window    []*batch        // delivered, not yet taken by every waiter
	flow      *sim.Completion // producer parked for window space
}

// batch is one delivered block: its pages pinned until every consumer that
// was attached at delivery time has taken it (or detached).
type batch struct {
	seq     int64
	start   int64
	count   int
	err     error // device fault that survived the retry policy
	handles []Handle
	waiters int
}

func (sh *ScanShare) blockCount(blk int64) int {
	start := blk * sh.blockPages
	n := sh.pages - start
	if n > sh.blockPages {
		n = sh.blockPages
	}
	return int(n)
}

// budget splits the share's frame allowance — half the pool divided among
// live producers — into a delivery window (pinned blocks awaiting the
// slowest consumer) and a readahead depth, so concurrent shares can never
// pin or load the pool to exhaustion.
func (sh *ScanShare) budget() (window, readahead int) {
	live := sh.reg.live
	if live < 1 {
		live = 1
	}
	bb := int64(sh.reg.pool.Capacity()) / 2 / int64(live) / sh.blockPages
	if bb < 3 {
		bb = 3
	}
	window = int(bb / 2)
	readahead = int(bb) - window - 1
	if readahead > sh.reg.cfg.Depth {
		readahead = sh.reg.cfg.Depth
	}
	if max := int(sh.blocks) - 1; readahead > max {
		readahead = max
	}
	if readahead < 0 {
		readahead = 0
	}
	return window, readahead
}

// producer is the circulating scan body: readahead at depth, fetch-pin the
// current block, deliver, wrap. It exits when the last consumer detaches
// and Attach restarts it from the remembered position.
func (sh *ScanShare) producer(p *sim.Proc) {
	for {
		if len(sh.consumers) == 0 {
			sh.running = false
			sh.reg.live--
			return
		}
		window, readahead := sh.budget()
		if len(sh.window) >= window {
			sh.flow = sim.NewCompletion(sh.reg.env)
			p.Wait(sh.flow)
			sh.flow = nil
			continue
		}
		for i := int64(1); i <= int64(readahead); i++ {
			blk := (sh.pos + i) % sh.blocks
			sh.reg.pool.PrefetchRun(sh.file, blk*sh.blockPages, sh.blockCount(blk))
		}
		sh.deliver(p)
	}
}

// deliver fetch-pins the current block (joining its own readahead's
// in-flight reads) and pushes it to every attached consumer. A device
// fault that survives the retry policy is delivered as a failed batch:
// consumers see the error on their next take and wind down.
func (sh *ScanShare) deliver(p *sim.Proc) {
	start := sh.pos * sh.blockPages
	count := sh.blockCount(sh.pos)
	handles := make([]Handle, 0, count)
	var berr error
	for i := int64(0); i < int64(count); i++ {
		h, err := sh.fetchRetry(p, start+i)
		if err != nil {
			berr = err
			break
		}
		handles = append(handles, h)
	}
	if berr != nil {
		for _, h := range handles {
			h.Release()
		}
		handles = nil
	}
	b := &batch{seq: sh.seq, start: start, count: count, err: berr, handles: handles, waiters: len(sh.consumers)}
	sh.seq++
	sh.pos++
	if sh.pos == sh.blocks {
		sh.pos = 0
		sh.laps++
		sh.reg.log.Emit(event.EvScanShareLap, event.NoQuery, sh.laps, int64(len(sh.consumers)))
		bump(sh.reg.obsLaps)
	}
	if b.waiters == 0 {
		// Every consumer detached during the block's device wait: nobody
		// will take the batch, so release it on the spot (the loop exits
		// next iteration).
		for _, h := range b.handles {
			h.Release()
		}
		return
	}
	sh.window = append(sh.window, b)
	for _, c := range sh.consumers {
		if c.wake != nil && c.next == b.seq {
			w := c.wake
			c.wake = nil
			w.Fire()
		}
	}
}

func (sh *ScanShare) fetchRetry(p *sim.Proc, page int64) (Handle, error) {
	cfg := sh.reg.cfg
	var lastErr error
	for attempt := 0; attempt < cfg.MaxAttempts; attempt++ {
		if attempt > 0 {
			p.Sleep(cfg.backoffFor(attempt - 1))
		}
		h, err := sh.reg.pool.FetchPageE(p, sh.file, page)
		if err == nil {
			return h, nil
		}
		lastErr = err
	}
	return Handle{}, lastErr
}

func (sh *ScanShare) find(seq int64) *batch {
	for _, b := range sh.window {
		if b.seq == seq {
			return b
		}
	}
	return nil
}

// take releases one consumer's claim on b; the last claim releases the
// block's pins and unparks the producer.
func (sh *ScanShare) take(b *batch) {
	b.waiters--
	if b.waiters > 0 {
		return
	}
	for _, h := range b.handles {
		h.Release()
	}
	b.handles = nil
	for i, wb := range sh.window {
		if wb == b {
			sh.window = append(sh.window[:i], sh.window[i+1:]...)
			break
		}
	}
	if sh.flow != nil && !sh.flow.Fired() {
		sh.flow.Fire()
	}
}

// PageRun is one pushed block: Count consecutive pages starting at Start,
// resident and pinned until the receiving consumer calls Consumed.
type PageRun struct {
	Start int64
	Count int
}

// ScanConsumer is one query's ride on a circulating scan: a delivery
// cursor over one lap's worth of sequence numbers.
type ScanConsumer struct {
	sh        *ScanShare
	qid       int64
	join      int64 // delivery seq at attach
	next      int64 // next seq to take
	remaining int64 // seqs left in the lap
	detached  bool
	wake      *sim.Completion
}

// Next blocks until the consumer's next block has been delivered and
// returns it. ok=false means the lap is complete (the consumer has
// wrapped around its join point and detached). A non-nil error is a
// device fault that survived the producer's retries; the consumer is
// detached and must not call Consumed.
func (c *ScanConsumer) Next(p *sim.Proc) (run PageRun, ok bool, err error) {
	if c.detached || c.remaining == 0 {
		return PageRun{}, false, nil
	}
	for {
		if b := c.sh.find(c.next); b != nil {
			if b.err != nil {
				err := b.err
				c.advance(b)
				c.Detach()
				return PageRun{}, false, err
			}
			return PageRun{Start: b.start, Count: b.count}, true, nil
		}
		c.wake = sim.NewCompletion(c.sh.reg.env)
		p.Wait(c.wake)
	}
}

// Consumed releases the block Next returned: the consumer is done reading
// its rows, so its claim on the pins is dropped. The pages' handles stay
// pinned until the slowest attached consumer has done the same.
func (c *ScanConsumer) Consumed() {
	b := c.sh.find(c.next)
	if b == nil {
		panic("buffer: Consumed without a delivered batch")
	}
	c.advance(b)
	if c.remaining == 0 {
		c.Detach()
	}
}

func (c *ScanConsumer) advance(b *batch) {
	c.next++
	c.remaining--
	c.sh.take(b)
}

// Detach removes the consumer from the share, dropping its claims on any
// delivered-but-untaken blocks so the slowest-consumer pinning never waits
// on a departed query. Idempotent; called automatically when the lap
// completes and explicitly on abort paths.
func (c *ScanConsumer) Detach() {
	if c.detached {
		return
	}
	c.detached = true
	sh := c.sh
	for i, cc := range sh.consumers {
		if cc == c {
			sh.consumers = append(sh.consumers[:i], sh.consumers[i+1:]...)
			break
		}
	}
	// Claims we still hold: every window batch delivered at or past our
	// cursor counted us as a waiter (batches before our join predate the
	// attach and never did). Copy first — take mutates the window.
	var owed []*batch
	for _, b := range sh.window {
		if b.seq >= c.next {
			owed = append(owed, b)
		}
	}
	for _, b := range owed {
		sh.take(b)
	}
	sh.reg.log.Emit(event.EvScanShareDetach, c.qid, sh.blocks-c.remaining, int64(len(sh.consumers)))
	bump(sh.reg.obsDetach)
	// The producer may be parked on window space that only frees when the
	// departing consumer's claims drop; take already unparked it if so.
}

// Delivered reports how many blocks of the lap the consumer has taken.
func (c *ScanConsumer) Delivered() int64 { return c.sh.blocks - c.remaining }

// Blocks reports the lap length in blocks.
func (c *ScanConsumer) Blocks() int64 { return c.sh.blocks }
