package buffer

import (
	"testing"

	"pioqo/internal/obs"
	"pioqo/internal/sim"
)

// collectLap attaches a consumer and rides one full lap, returning the
// pages in delivery order. Errors surface via t.Error (procs are not the
// test goroutine).
func collectLap(t *testing.T, p *sim.Proc, c *ScanConsumer) []int64 {
	t.Helper()
	var got []int64
	for {
		run, ok, err := c.Next(p)
		if err != nil {
			t.Errorf("consumer %d: unexpected device fault: %v", c.qid, err)
			return got
		}
		if !ok {
			return got
		}
		for i := 0; i < run.Count; i++ {
			got = append(got, run.Start+int64(i))
		}
		c.Consumed()
	}
}

// exactlyOnce asserts pages holds every page in [0, n) exactly once.
func exactlyOnce(t *testing.T, who string, pages []int64, n int64) {
	t.Helper()
	seen := make(map[int64]int, n)
	for _, pg := range pages {
		seen[pg]++
	}
	if int64(len(seen)) != n || int64(len(pages)) != n {
		t.Errorf("%s: saw %d pages (%d distinct), want %d", who, len(pages), len(seen), n)
	}
	for pg, k := range seen {
		if k != 1 {
			t.Errorf("%s: page %d delivered %d times", who, pg, k)
		}
	}
}

func TestShareSingleConsumerLap(t *testing.T) {
	const pages = 100
	w := newWorld(t, 64)
	sh := NewShares(w.env, w.pool, ShareConfig{BlockPages: 8})
	var got []int64
	w.run(func(p *sim.Proc) {
		got = collectLap(t, p, sh.Attach(1, w.file, pages))
	})
	exactlyOnce(t, "sole consumer", got, pages)
	if got[0] != 0 {
		t.Errorf("fresh share started at page %d, want 0", got[0])
	}
	if w.pool.Pinned() != 0 {
		t.Errorf("pin ledger holds %d after the lap, want 0", w.pool.Pinned())
	}
	if sh.Live() != 0 {
		t.Errorf("%d consumers still attached after the lap", sh.Live())
	}
}

func TestShareMidLapAttachSeesEveryPageOnce(t *testing.T) {
	const pages = 400
	w := newWorld(t, 64)
	sh := NewShares(w.env, w.pool, ShareConfig{BlockPages: 8})
	var first, second []int64
	w.env.Go("first", func(p *sim.Proc) {
		first = collectLap(t, p, sh.Attach(1, w.file, pages))
	})
	w.env.Go("second", func(p *sim.Proc) {
		// Join after the producer has circulated for a while: the second
		// consumer attaches mid-lap and must still see one full lap.
		p.Sleep(2 * sim.Millisecond)
		second = collectLap(t, p, sh.Attach(2, w.file, pages))
	})
	w.env.Run()
	exactlyOnce(t, "first", first, pages)
	exactlyOnce(t, "second", second, pages)
	if len(second) == 0 || second[0] == 0 {
		t.Errorf("second consumer joined at page %v, want a mid-lap join point", second[:1])
	}
	if w.pool.Pinned() != 0 {
		t.Errorf("pin ledger holds %d after both laps, want 0", w.pool.Pinned())
	}
}

func TestShareProducerExitsIdleAndResumesPosition(t *testing.T) {
	const pages = 96 // 12 blocks of 8
	w := newWorld(t, 64)
	sh := NewShares(w.env, w.pool, ShareConfig{BlockPages: 8})
	// First rider takes three blocks and bails; env.Run returning at all
	// proves the producer exited rather than parking forever (the kernel
	// panics on a deadlocked process).
	w.run(func(p *sim.Proc) {
		c := sh.Attach(1, w.file, pages)
		for i := 0; i < 3; i++ {
			if _, ok, err := c.Next(p); !ok || err != nil {
				t.Errorf("block %d: ok=%v err=%v", i, ok, err)
				return
			}
			c.Consumed()
		}
		c.Detach()
	})
	share := sh.scans[w.file.ID()]
	if share == nil || share.running {
		t.Fatalf("share missing or producer still marked running after idle")
	}
	if share.pos == 0 {
		t.Fatalf("producer position reset to 0; want it parked mid-lap")
	}
	resumed := share.pos
	// Second rider restarts the producer lazily and must join where the
	// last circulation stopped, then still see every page exactly once.
	var got []int64
	w.run(func(p *sim.Proc) {
		got = collectLap(t, p, sh.Attach(2, w.file, pages))
	})
	exactlyOnce(t, "resumed consumer", got, pages)
	if want := resumed * 8; got[0] != want {
		t.Errorf("resumed lap started at page %d, want %d (block %d)", got[0], want, resumed)
	}
	if w.pool.Pinned() != 0 {
		t.Errorf("pin ledger holds %d, want 0", w.pool.Pinned())
	}
}

func TestShareSlowestConsumerHoldsPins(t *testing.T) {
	const pages = 200
	w := newWorld(t, 64)
	sh := NewShares(w.env, w.pool, ShareConfig{BlockPages: 8})
	// The slow rider sits on its first block while the fast one laps. The
	// producer's window must fill and park rather than outrun the slow
	// consumer's unconsumed pins — so the fast consumer can never get more
	// than a window ahead.
	var fastTaken, fastAtRelease, windowAtRelease int
	w.env.Go("fast", func(p *sim.Proc) {
		c := sh.Attach(1, w.file, pages)
		for {
			_, ok, err := c.Next(p)
			if err != nil || !ok {
				return
			}
			fastTaken++
			c.Consumed()
		}
	})
	w.env.Go("slow", func(p *sim.Proc) {
		c := sh.Attach(2, w.file, pages)
		if _, ok, err := c.Next(p); !ok || err != nil {
			t.Errorf("slow consumer first block: ok=%v err=%v", ok, err)
			return
		}
		p.Sleep(50 * sim.Millisecond) // hold the first block
		fastAtRelease = fastTaken
		windowAtRelease, _ = sh.scans[w.file.ID()].budget()
		c.Consumed()
		for {
			_, ok, err := c.Next(p)
			if err != nil || !ok {
				return
			}
			c.Consumed()
		}
	})
	w.env.Run()
	share := sh.scans[w.file.ID()]
	// While the slow consumer held block 0, the producer could deliver at
	// most the pinned window, so the fast consumer is bounded by it — it
	// cannot lap a held block.
	if fastAtRelease <= 0 || fastAtRelease > windowAtRelease {
		t.Errorf("fast consumer took %d blocks while block 0 was held; window is %d", fastAtRelease, windowAtRelease)
	}
	if fastTaken != int(share.blocks) {
		t.Errorf("fast consumer finished %d blocks of %d", fastTaken, share.blocks)
	}
	if w.pool.Pinned() != 0 {
		t.Errorf("pin ledger holds %d after both consumers, want 0", w.pool.Pinned())
	}
	if sh.Live() != 0 {
		t.Errorf("%d consumers still attached", sh.Live())
	}
}

func TestPrefetchStatsSplit(t *testing.T) {
	w := newWorld(t, 64)
	reg := obs.NewRegistry(w.env)
	w.pool.Publish(reg)
	w.run(func(p *sim.Proc) {
		w.pool.Prefetch(w.file, 0)       // one device op, one page
		w.pool.PrefetchRun(w.file, 10, 8) // one device op, eight pages
		p.Sleep(5 * sim.Millisecond)
	})
	st := w.pool.Stats
	if st.PrefetchReads != 2 {
		t.Errorf("PrefetchReads = %d, want 2 (one per device op)", st.PrefetchReads)
	}
	if st.PrefetchedPages != 9 {
		t.Errorf("PrefetchedPages = %d, want 9 (pages covered)", st.PrefetchedPages)
	}
	if got := reg.Counter(obs.MetricBufferPrefetchReads).Value(); got != 2 {
		t.Errorf("registry %s = %d, want 2", obs.MetricBufferPrefetchReads, got)
	}
	if got := reg.Counter(obs.MetricBufferPrefetchedPages).Value(); got != 9 {
		t.Errorf("registry %s = %d, want 9", obs.MetricBufferPrefetchedPages, got)
	}
}

func TestPrefetchRunTrimmedCoversOnlyGaps(t *testing.T) {
	w := newWorld(t, 64)
	w.run(func(p *sim.Proc) {
		w.pool.Prefetch(w.file, 12) // pre-cover the middle of [10, 18)
		p.Sleep(5 * sim.Millisecond)
		before := w.pool.Stats
		if issued := w.pool.PrefetchRunTrimmed(w.file, 10, 8); issued != 2 {
			t.Errorf("trimmed run issued %d reads, want 2 (one per gap)", issued)
		}
		if d := w.pool.Stats.PrefetchReads - before.PrefetchReads; d != 2 {
			t.Errorf("PrefetchReads grew by %d, want 2", d)
		}
		if d := w.pool.Stats.PrefetchedPages - before.PrefetchedPages; d != 7 {
			t.Errorf("PrefetchedPages grew by %d, want 7 (page 12 already covered)", d)
		}
		p.Sleep(5 * sim.Millisecond)
		for pg := int64(10); pg < 18; pg++ {
			if !w.pool.Loaded(w.file, pg) {
				t.Errorf("page %d not loaded after trimmed run", pg)
			}
		}
		// A fully covered window issues nothing.
		if issued := w.pool.PrefetchRunTrimmed(w.file, 10, 8); issued != 0 {
			t.Errorf("fully covered trimmed run issued %d reads, want 0", issued)
		}
	})
}
