package buffer

import (
	"testing"

	"pioqo/internal/device"
	"pioqo/internal/disk"
	"pioqo/internal/sim"
)

// world bundles the fixtures most tests need.
type world struct {
	env  *sim.Env
	file *disk.File
	pool *Pool
}

func newWorld(t *testing.T, poolPages int) *world {
	t.Helper()
	env := sim.NewEnv(1)
	m := disk.NewManager(device.NewSSD(env, device.DefaultSSDConfig()))
	return &world{
		env:  env,
		file: m.MustAllocate("t", 4096),
		pool: NewPool(env, poolPages),
	}
}

// run executes fn as a process and drives the simulation to completion.
func (w *world) run(fn func(p *sim.Proc)) {
	w.env.Go("test", fn)
	w.env.Run()
}

func TestFetchMissThenHit(t *testing.T) {
	w := newWorld(t, 8)
	w.run(func(p *sim.Proc) {
		h := w.pool.FetchPage(p, w.file, 5)
		h.Release()
		h = w.pool.FetchPage(p, w.file, 5)
		h.Release()
	})
	if w.pool.Stats.Misses != 1 || w.pool.Stats.Hits != 1 {
		t.Errorf("misses=%d hits=%d, want 1 and 1", w.pool.Stats.Misses, w.pool.Stats.Hits)
	}
}

func TestHitCostsNoTime(t *testing.T) {
	w := newWorld(t, 8)
	var missTime, hitTime sim.Duration
	w.run(func(p *sim.Proc) {
		t0 := p.Now()
		w.pool.FetchPage(p, w.file, 0).Release()
		missTime = sim.Duration(p.Now() - t0)
		t0 = p.Now()
		w.pool.FetchPage(p, w.file, 0).Release()
		hitTime = sim.Duration(p.Now() - t0)
	})
	if missTime == 0 {
		t.Error("miss completed in zero virtual time")
	}
	if hitTime != 0 {
		t.Errorf("hit took %v, want 0", hitTime)
	}
}

func TestLRUEvictsColdestPage(t *testing.T) {
	w := newWorld(t, 3)
	w.run(func(p *sim.Proc) {
		for page := int64(0); page < 3; page++ {
			w.pool.FetchPage(p, w.file, page).Release()
		}
		// Touch page 0 so page 1 is coldest, then overflow.
		w.pool.FetchPage(p, w.file, 0).Release()
		w.pool.FetchPage(p, w.file, 3).Release()
	})
	if w.pool.Contains(w.file, 1) {
		t.Error("page 1 survived eviction despite being coldest")
	}
	for _, page := range []int64{0, 2, 3} {
		if !w.pool.Contains(w.file, page) {
			t.Errorf("page %d missing, want resident", page)
		}
	}
	if w.pool.Stats.Evictions != 1 {
		t.Errorf("evictions = %d, want 1", w.pool.Stats.Evictions)
	}
}

func TestPinnedPagesAreNotEvicted(t *testing.T) {
	w := newWorld(t, 2)
	w.run(func(p *sim.Proc) {
		h := w.pool.FetchPage(p, w.file, 0)
		w.pool.FetchPage(p, w.file, 1).Release()
		w.pool.FetchPage(p, w.file, 2).Release() // must evict page 1, not pinned 0
		if !w.pool.Contains(w.file, 0) {
			t.Error("pinned page evicted")
		}
		h.Release()
	})
}

func TestAllPinnedPanics(t *testing.T) {
	w := newWorld(t, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic when every frame is pinned")
		}
	}()
	w.run(func(p *sim.Proc) {
		_ = w.pool.FetchPage(p, w.file, 0) // keep pinned
		_ = w.pool.FetchPage(p, w.file, 1)
	})
}

func TestDoubleReleasePanics(t *testing.T) {
	w := newWorld(t, 4)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on double release")
		}
	}()
	w.run(func(p *sim.Proc) {
		h := w.pool.FetchPage(p, w.file, 0)
		h.Release()
		h.Release()
	})
}

func TestConcurrentFetchesShareOneRead(t *testing.T) {
	w := newWorld(t, 8)
	for i := 0; i < 4; i++ {
		w.env.Go("reader", func(p *sim.Proc) {
			w.pool.FetchPage(p, w.file, 7).Release()
		})
	}
	w.env.Run()
	if w.pool.Stats.JoinedLoads != 3 {
		t.Errorf("joined loads = %d, want 3", w.pool.Stats.JoinedLoads)
	}
	if w.pool.Stats.Misses != 4 {
		t.Errorf("misses = %d, want 4 (one leader, three joiners)", w.pool.Stats.Misses)
	}
}

func TestPrefetchMakesLaterFetchFree(t *testing.T) {
	w := newWorld(t, 8)
	var fetchTime sim.Duration
	w.run(func(p *sim.Proc) {
		w.pool.Prefetch(w.file, 9)
		p.Sleep(10 * sim.Millisecond) // plenty for the read to land
		t0 := p.Now()
		w.pool.FetchPage(p, w.file, 9).Release()
		fetchTime = sim.Duration(p.Now() - t0)
	})
	if fetchTime != 0 {
		t.Errorf("fetch after settled prefetch took %v, want 0", fetchTime)
	}
	if w.pool.Stats.Hits != 1 {
		t.Errorf("hits = %d, want 1", w.pool.Stats.Hits)
	}
}

func TestFetchJoinsInFlightPrefetch(t *testing.T) {
	w := newWorld(t, 8)
	w.run(func(p *sim.Proc) {
		w.pool.Prefetch(w.file, 9)
		w.pool.FetchPage(p, w.file, 9).Release() // joins, does not re-issue
	})
	if got := w.pool.Stats.PrefetchReads; got != 1 {
		t.Errorf("prefetch reads = %d, want 1", got)
	}
	if got := w.pool.Stats.JoinedLoads; got != 1 {
		t.Errorf("joined loads = %d, want 1", got)
	}
}

func TestPrefetchDedupes(t *testing.T) {
	w := newWorld(t, 8)
	w.run(func(p *sim.Proc) {
		if !w.pool.Prefetch(w.file, 3) {
			t.Error("first prefetch reported no-op")
		}
		if w.pool.Prefetch(w.file, 3) {
			t.Error("duplicate prefetch issued a read")
		}
	})
}

func TestPrefetchRunLoadsAllPages(t *testing.T) {
	w := newWorld(t, 64)
	w.run(func(p *sim.Proc) {
		w.pool.PrefetchRun(w.file, 0, 16)
		p.Sleep(50 * sim.Millisecond)
		for page := int64(0); page < 16; page++ {
			if !w.pool.Contains(w.file, page) {
				t.Errorf("page %d not resident after run prefetch", page)
			}
		}
	})
	if got := w.pool.Stats.PrefetchReads; got != 1 {
		t.Errorf("prefetch reads = %d, want 1 block read", got)
	}
}

func TestPrefetchRunSkipsWhenAllPresent(t *testing.T) {
	w := newWorld(t, 64)
	w.run(func(p *sim.Proc) {
		w.pool.PrefetchRun(w.file, 0, 8)
		p.Sleep(50 * sim.Millisecond)
		if w.pool.PrefetchRun(w.file, 0, 8) {
			t.Error("second identical run prefetch issued a read")
		}
	})
}

func TestResidentTracksPerFile(t *testing.T) {
	env := sim.NewEnv(1)
	m := disk.NewManager(device.NewSSD(env, device.DefaultSSDConfig()))
	fa, fb := m.MustAllocate("a", 100), m.MustAllocate("b", 100)
	pool := NewPool(env, 8)
	env.Go("p", func(p *sim.Proc) {
		pool.FetchPage(p, fa, 0).Release()
		pool.FetchPage(p, fa, 1).Release()
		pool.FetchPage(p, fb, 0).Release()
	})
	env.Run()
	if got := pool.Resident(fa); got != 2 {
		t.Errorf("Resident(a) = %d, want 2", got)
	}
	if got := pool.Resident(fb); got != 1 {
		t.Errorf("Resident(b) = %d, want 1", got)
	}
}

func TestFlushEmptiesPool(t *testing.T) {
	w := newWorld(t, 8)
	w.run(func(p *sim.Proc) {
		for page := int64(0); page < 5; page++ {
			w.pool.FetchPage(p, w.file, page).Release()
		}
	})
	if n := w.pool.Flush(); n != 5 {
		t.Errorf("Flush dropped %d, want 5", n)
	}
	if w.pool.Cached() != 0 {
		t.Errorf("cached = %d after flush, want 0", w.pool.Cached())
	}
	if w.pool.Resident(w.file) != 0 {
		t.Errorf("resident = %d after flush, want 0", w.pool.Resident(w.file))
	}
}

func TestPoolNeverExceedsCapacity(t *testing.T) {
	w := newWorld(t, 16)
	w.run(func(p *sim.Proc) {
		for page := int64(0); page < 200; page++ {
			w.pool.FetchPage(p, w.file, page).Release()
			if w.pool.Cached() > 16 {
				t.Fatalf("pool holds %d frames, capacity 16", w.pool.Cached())
			}
		}
	})
}
