package buffer

import (
	"fmt"
	"math/rand"
	"testing"

	"pioqo/internal/fault"
	"pioqo/internal/sim"
)

// TestFuzzShareExactlyOnceUnderFaults randomly attaches and detaches
// consumers mid-flight while the device injects transient error windows,
// and asserts the share's two core invariants: a consumer that rides its
// whole lap sees every page exactly once (no page twice, none skipped,
// faults retried underneath), and however a consumer leaves — lap done,
// early detach, or a fault that survived the retries — the pool's pin
// ledger drains to zero.
//
// All randomness is pre-drawn per consumer from its own seeded source, so
// the schedule is deterministic no matter how the kernel interleaves the
// riders.
func TestFuzzShareExactlyOnceUnderFaults(t *testing.T) {
	const (
		capacity  = 96
		pages     = 320 // 40 blocks of 8
		consumers = 24
	)
	w := newFaultWorld(t, capacity)
	sh := NewShares(w.env, w.pool, ShareConfig{BlockPages: 8, MaxAttempts: 6})
	w.inj.Arm(fault.Schedule{
		Seed: 7,
		Windows: []fault.Window{
			{From: 1 * sim.Millisecond, To: 3 * sim.Millisecond, ErrorRate: 0.3, ErrorLatency: 100 * sim.Microsecond},
			{From: 6 * sim.Millisecond, To: 7 * sim.Millisecond, ErrorRate: 0.5},
		},
	})

	type outcome struct {
		seen    map[int64]int
		done    bool
		early   bool
		faulted error
	}
	results := make([]outcome, consumers)
	seeds := rand.New(rand.NewSource(42))
	for i := 0; i < consumers; i++ {
		i := i
		rng := rand.New(rand.NewSource(seeds.Int63()))
		delay := sim.Duration(rng.Int63n(int64(8 * sim.Millisecond)))
		detachAfter := int64(-1) // full lap
		if rng.Intn(4) == 0 {    // a quarter bail mid-lap
			detachAfter = 1 + rng.Int63n(20)
		}
		results[i].seen = make(map[int64]int, pages)
		w.env.Go(fmt.Sprintf("rider-%d", i), func(p *sim.Proc) {
			p.Sleep(delay)
			c := sh.Attach(int64(i), w.file, pages)
			var taken int64
			for {
				run, ok, err := c.Next(p)
				if err != nil {
					results[i].faulted = err
					return
				}
				if !ok {
					results[i].done = true
					return
				}
				for j := 0; j < run.Count; j++ {
					pg := run.Start + int64(j)
					if !w.pool.Loaded(w.file, pg) {
						t.Errorf("rider %d: pushed page %d is not resident", i, pg)
					}
					results[i].seen[pg]++
				}
				// Simulate per-block consumption work so riders spread out.
				p.Sleep(sim.Duration(10+rng.Int63n(300)) * sim.Microsecond)
				c.Consumed()
				taken++
				if detachAfter > 0 && taken >= detachAfter {
					c.Detach()
					results[i].early = true
					return
				}
			}
		})
	}
	w.env.Run()

	full, early, faulted := 0, 0, 0
	for i, r := range results {
		for pg, k := range r.seen {
			if k != 1 {
				t.Errorf("rider %d saw page %d %d times", i, pg, k)
			}
		}
		switch {
		case r.done:
			full++
			if len(r.seen) != pages {
				t.Errorf("rider %d completed its lap with %d of %d pages", i, len(r.seen), pages)
			}
		case r.early:
			early++
		case r.faulted != nil:
			faulted++
		default:
			t.Errorf("rider %d neither finished, detached, nor faulted", i)
		}
	}
	if full == 0 {
		t.Fatalf("no rider completed a lap (early=%d faulted=%d) — fault windows too hot for the test to mean anything", early, faulted)
	}
	t.Logf("riders: %d full laps, %d early detaches, %d fault aborts; injected errors=%d", full, early, faulted, w.inj.Stats().Errors)

	if got := w.pool.Pinned(); got != 0 {
		t.Errorf("pin ledger holds %d after all riders left, want 0", got)
	}
	if got := sh.Live(); got != 0 {
		t.Errorf("%d consumers still attached, want 0", got)
	}
	if w.inj.Stats().Errors == 0 {
		t.Error("fault windows injected no errors — the test exercised nothing")
	}
}
