package buffer

import (
	"testing"

	"pioqo/internal/sim"
)

func TestDirtyPageWrittenBackOnEviction(t *testing.T) {
	w := newWorld(t, 2)
	w.run(func(p *sim.Proc) {
		h := w.pool.FetchPage(p, w.file, 0)
		h.MarkDirty()
		h.Release()
		if w.pool.DirtyPages() != 1 {
			t.Fatalf("dirty pages = %d, want 1", w.pool.DirtyPages())
		}
		// Overflow the 2-frame pool so page 0 is evicted.
		w.pool.FetchPage(p, w.file, 1).Release()
		w.pool.FetchPage(p, w.file, 2).Release()
	})
	if w.pool.Stats.DirtyWrites != 1 {
		t.Errorf("dirty writes = %d, want 1", w.pool.Stats.DirtyWrites)
	}
}

func TestCleanEvictionIssuesNoWrites(t *testing.T) {
	w := newWorld(t, 2)
	w.run(func(p *sim.Proc) {
		for page := int64(0); page < 10; page++ {
			w.pool.FetchPage(p, w.file, page).Release()
		}
	})
	if w.pool.Stats.DirtyWrites != 0 {
		t.Errorf("dirty writes = %d for a read-only workload", w.pool.Stats.DirtyWrites)
	}
}

func TestFlushDirtyIsACheckpoint(t *testing.T) {
	w := newWorld(t, 8)
	var elapsed sim.Duration
	w.run(func(p *sim.Proc) {
		for page := int64(0); page < 4; page++ {
			h := w.pool.FetchPage(p, w.file, page)
			h.MarkDirty()
			h.Release()
		}
		t0 := p.Now()
		w.pool.FlushDirty(p)
		elapsed = sim.Duration(p.Now() - t0)
	})
	if w.pool.Stats.DirtyWrites != 4 {
		t.Errorf("dirty writes = %d, want 4", w.pool.Stats.DirtyWrites)
	}
	if elapsed == 0 {
		t.Error("checkpoint completed in zero time; writes not awaited")
	}
	if w.pool.DirtyPages() != 0 {
		t.Errorf("dirty pages after checkpoint = %d", w.pool.DirtyPages())
	}
	// Pages stay resident (checkpoint, not eviction).
	if w.pool.Cached() != 4 {
		t.Errorf("cached = %d after checkpoint, want 4", w.pool.Cached())
	}
}

func TestFlushDirtyIdempotent(t *testing.T) {
	w := newWorld(t, 8)
	w.run(func(p *sim.Proc) {
		h := w.pool.FetchPage(p, w.file, 0)
		h.MarkDirty()
		h.Release()
		w.pool.FlushDirty(p)
		w.pool.FlushDirty(p) // nothing left to write
	})
	if w.pool.Stats.DirtyWrites != 1 {
		t.Errorf("dirty writes = %d, want 1", w.pool.Stats.DirtyWrites)
	}
}

func TestPoolFlushWritesDirtyFramesOut(t *testing.T) {
	w := newWorld(t, 8)
	w.run(func(p *sim.Proc) {
		h := w.pool.FetchPage(p, w.file, 3)
		h.MarkDirty()
		h.Release()
		w.pool.Flush()
		p.Sleep(10 * sim.Millisecond) // let the write-back land
	})
	if w.pool.Stats.DirtyWrites != 1 {
		t.Errorf("dirty writes = %d, want 1 from Flush", w.pool.Stats.DirtyWrites)
	}
}
