package workload

import (
	"strings"
	"testing"

	"pioqo/internal/disk"
)

func TestDeviceKindStrings(t *testing.T) {
	cases := map[DeviceKind]string{
		SSD: "SSD", HDD: "HDD", RAID8: "RAID8", SATA: "SATA", NVME: "NVME",
		DeviceKind(99): "DeviceKind(99)",
	}
	for k, want := range cases {
		if got := k.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", int(k), got, want)
		}
	}
}

func TestUnknownDeviceKindPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for unknown device kind")
		}
	}()
	New(Options{Device: DeviceKind(99)})
}

func TestDeviceScalingPreservesSeekGeometry(t *testing.T) {
	// A small system's device must shrink so the table spans a meaningful
	// fraction of it (HDD seek time scales with the platter fraction
	// crossed; see DESIGN.md).
	small := New(Options{Device: HDD, Rows: 66000, RowsPerPage: 33}) // 2000 pages
	tableBytes := small.Table.Pages() * disk.PageSize
	if frac := float64(tableBytes) / float64(small.Dev.Size()); frac < 0.05 {
		t.Errorf("table spans %.3f of the device; scaling failed", frac)
	}
	// A huge system must not exceed the default capacity.
	big := New(Options{Device: HDD, Rows: 100_000_000, RowsPerPage: 33, Synthetic: true})
	if big.Dev.Size() > 64<<30 {
		t.Errorf("device grew beyond the default capacity: %d", big.Dev.Size())
	}
}

func TestSATAAndNVMeSystemsWork(t *testing.T) {
	for _, k := range []DeviceKind{SATA, NVME} {
		s := New(Options{Device: k, Rows: 2000})
		lo, hi := s.RangeFor(0.05)
		res := s.Run(s.Spec(0 /* FullScan */, 2, lo, hi), true)
		if res.RowsMatched == 0 {
			t.Errorf("%v: scan matched nothing", k)
		}
		if !strings.Contains(s.Dev.Name(), "ssd") {
			t.Errorf("%v device name %q", k, s.Dev.Name())
		}
	}
}
