package workload

import (
	"testing"

	"pioqo/internal/exec"
)

func TestTable1HasSixConfigs(t *testing.T) {
	cfgs := Table1()
	if len(cfgs) != 6 {
		t.Fatalf("%d configs, want 6", len(cfgs))
	}
	wantRPP := map[string]int{
		"E1-HDD": 1, "E1-SSD": 1,
		"E33-HDD": 33, "E33-SSD": 33,
		"E500-HDD": 500, "E500-SSD": 500,
	}
	for _, c := range cfgs {
		if want, ok := wantRPP[c.Name]; !ok || c.RowsPerPage != want {
			t.Errorf("config %q rpp=%d unexpected", c.Name, c.RowsPerPage)
		}
	}
}

func TestNewSystemDefaults(t *testing.T) {
	s := New(Options{Device: SSD})
	if s.Table.Rows() != 200000 || s.Table.RowsPerPage() != 33 {
		t.Errorf("default table %dx%d, want 200000x33", s.Table.Rows(), s.Table.RowsPerPage())
	}
	if s.Pool.Capacity() != 2048 {
		t.Errorf("pool capacity %d, want 2048", s.Pool.Capacity())
	}
	if s.CPU.Capacity() != 8 {
		t.Errorf("cores %d, want 8", s.CPU.Capacity())
	}
}

func TestSyntheticAndMaterializedAgree(t *testing.T) {
	run := func(synthetic bool) exec.Result {
		s := New(Options{Device: SSD, Rows: 5000, Synthetic: synthetic})
		lo, hi := s.RangeFor(0.02)
		return s.Run(s.Spec(exec.IndexScan, 4, lo, hi), true)
	}
	mat, syn := run(false), run(true)
	// Different data distributions, but both must match ~2% of rows.
	for _, r := range []exec.Result{mat, syn} {
		if r.RowsMatched < 50 || r.RowsMatched > 150 {
			t.Errorf("2%% of 5000 rows matched %d, want ~100", r.RowsMatched)
		}
	}
}

func TestRangeForSelectivity(t *testing.T) {
	s := New(Options{Device: SSD, Rows: 10000, Synthetic: true})
	lo, hi := s.RangeFor(0.1)
	if lo != 0 || hi != 999 {
		t.Errorf("RangeFor(0.1) = [%d,%d], want [0,999]", lo, hi)
	}
	lo, hi = s.RangeFor(0)
	if hi != 0 {
		t.Errorf("RangeFor(0) hi = %d, want 0", hi)
	}
	lo, hi = s.RangeFor(5) // clamped
	if hi != 9999 {
		t.Errorf("RangeFor(5) hi = %d, want 9999", hi)
	}
}

func TestColdRunFlushesPool(t *testing.T) {
	s := New(Options{Device: SSD, Rows: 5000})
	lo, hi := s.RangeFor(0.5)
	first := s.Run(s.Spec(exec.FullScan, 1, lo, hi), true)
	second := s.Run(s.Spec(exec.FullScan, 1, lo, hi), true)
	if second.IO.Requests == 0 {
		t.Error("cold rerun issued no I/O; pool not flushed")
	}
	if diff := second.Runtime - first.Runtime; diff > first.Runtime/10 || -diff > first.Runtime/10 {
		t.Errorf("two cold runs differ: %v vs %v", first.Runtime, second.Runtime)
	}
	warm := s.Run(s.Spec(exec.FullScan, 1, lo, hi), false)
	if warm.Runtime >= first.Runtime {
		t.Errorf("warm run %v not faster than cold %v", warm.Runtime, first.Runtime)
	}
}

func TestAllDeviceKindsBuild(t *testing.T) {
	for _, k := range []DeviceKind{SSD, HDD, RAID8} {
		s := New(Options{Device: k, Rows: 1000})
		lo, hi := s.RangeFor(0.01)
		res := s.Run(s.Spec(exec.IndexScan, 2, lo, hi), true)
		if res.RowsMatched == 0 {
			t.Errorf("%v: no rows matched", k)
		}
	}
}
