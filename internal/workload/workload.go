// Package workload assembles complete experiment systems — device, disk
// manager, buffer pool, CPU, heap table, and C2 index — and encodes the
// paper's experimental configurations (Table 1): tables T1, T33, and T500
// (1, 33, and 500 rows per page) on HDD and SSD with a deliberately small
// buffer pool.
package workload

import (
	"fmt"

	"pioqo/internal/btree"
	"pioqo/internal/buffer"
	"pioqo/internal/device"
	"pioqo/internal/disk"
	"pioqo/internal/exec"
	"pioqo/internal/obs"
	"pioqo/internal/sim"
	"pioqo/internal/table"
)

// DeviceKind names a device model.
type DeviceKind int

const (
	SSD DeviceKind = iota
	HDD
	RAID8 // eight 15 kRPM spindles, stripe 64 KiB
	SATA  // SATA-generation SSD: 550 MB/s, beneficial depth ~16
	NVME  // datacenter NVMe: 3.5 GB/s, beneficial depth beyond 32
)

func (k DeviceKind) String() string {
	switch k {
	case SSD:
		return "SSD"
	case HDD:
		return "HDD"
	case RAID8:
		return "RAID8"
	case SATA:
		return "SATA"
	case NVME:
		return "NVME"
	default:
		return fmt.Sprintf("DeviceKind(%d)", int(k))
	}
}

// NewDevice builds a device of the given kind with its default config.
func NewDevice(env *sim.Env, kind DeviceKind) device.Device {
	return newDeviceSized(env, kind, 0)
}

// newDeviceSized builds a device whose capacity is reduced to dataBytes×4
// when that is smaller than the default capacity (never below 64 MiB). The
// paper's tables span most of their drive, and on spinning media seek time
// grows with the *fraction* of the platter crossed — so a scaled-down table
// must also get a scaled-down device, or seeks (the only thing the elevator
// optimizes) degenerate and the HDD's queue-depth behaviour is lost.
// dataBytes == 0 keeps the default capacity.
func newDeviceSized(env *sim.Env, kind DeviceKind, dataBytes int64) device.Device {
	scale := func(capacity int64) int64 {
		if dataBytes <= 0 {
			return capacity
		}
		want := dataBytes * 4
		if want < 64<<20 {
			want = 64 << 20
		}
		if want < capacity {
			return want
		}
		return capacity
	}
	switch kind {
	case SSD:
		cfg := device.DefaultSSDConfig()
		cfg.Capacity = scale(cfg.Capacity)
		return device.NewSSD(env, cfg)
	case SATA:
		cfg := device.SATASSDConfig()
		cfg.Capacity = scale(cfg.Capacity)
		return device.NewSSD(env, cfg)
	case NVME:
		cfg := device.NVMeSSDConfig()
		cfg.Capacity = scale(cfg.Capacity)
		return device.NewSSD(env, cfg)
	case HDD:
		cfg := device.DefaultHDDConfig()
		cfg.Capacity = scale(cfg.Capacity)
		return device.NewHDD(env, cfg)
	case RAID8:
		cfg := device.HDD15KConfig()
		cfg.Capacity = scale(cfg.Capacity*8) / 8
		return device.NewRAID0(env, 8, 64<<10, cfg)
	default:
		panic("workload: unknown device kind " + kind.String())
	}
}

// Config is one row of the paper's Table 1.
type Config struct {
	Name        string
	RowsPerPage int
	Device      DeviceKind
}

// Table1 returns the paper's six experimental configurations.
func Table1() []Config {
	return []Config{
		{Name: "E1-HDD", RowsPerPage: 1, Device: HDD},
		{Name: "E1-SSD", RowsPerPage: 1, Device: SSD},
		{Name: "E33-HDD", RowsPerPage: 33, Device: HDD},
		{Name: "E33-SSD", RowsPerPage: 33, Device: SSD},
		{Name: "E500-HDD", RowsPerPage: 500, Device: HDD},
		{Name: "E500-SSD", RowsPerPage: 500, Device: SSD},
	}
}

// Options sizes a system. Zero values take the defaults noted on each field.
type Options struct {
	Device      DeviceKind
	Rows        int64 // table cardinality; default 200,000
	RowsPerPage int   // default 33
	PoolPages   int   // buffer pool frames; default 2048 (8 MiB)
	Cores       int   // logical cores; default 8 (the paper's machine)
	Seed        int64 // default 1
	Synthetic   bool  // use the O(1)-memory synthetic backing

	// Trace, when set, attaches a tracer for this system (one process lane
	// in a Chrome export) and wires it into the exec context, so every scan
	// the system runs records operator and worker spans.
	Trace *obs.Trace
}

func (o Options) withDefaults() Options {
	if o.Rows == 0 {
		o.Rows = 200000
	}
	if o.RowsPerPage == 0 {
		o.RowsPerPage = 33
	}
	if o.PoolPages == 0 {
		o.PoolPages = 2048
	}
	if o.Cores == 0 {
		o.Cores = 8
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	return o
}

// System is a ready-to-query single-table database over a simulated device.
type System struct {
	Opts    Options
	Env     *sim.Env
	Dev     device.Device
	Manager *disk.Manager
	Pool    *buffer.Pool
	CPU     *sim.Resource
	Table   table.Table
	Index   *btree.Index
	Ctx     *exec.Context

	// Obs is the system's metrics registry; the device and pool publish
	// into it at assembly time.
	Obs *obs.Registry
	// Tracer is non-nil when Options.Trace was set.
	Tracer *obs.Tracer
}

// New assembles a system per opts.
func New(opts Options) *System {
	opts = opts.withDefaults()
	env := sim.NewEnv(opts.Seed)
	heapPages := (opts.Rows + int64(opts.RowsPerPage) - 1) / int64(opts.RowsPerPage)
	leafPages := opts.Rows/btree.DefaultLeafCap + 64
	dev := newDeviceSized(env, opts.Device, (heapPages+leafPages)*disk.PageSize)
	m := disk.NewManager(dev)

	var tab table.Table
	var idx *btree.Index
	if opts.Synthetic {
		st := table.NewSynthetic(m, "T", opts.Rows, opts.RowsPerPage, opts.Seed)
		tab, idx = st, btree.NewSynthetic(m, st, 0, 0)
	} else {
		mt := table.NewMaterialized(m, "T", opts.Rows, opts.RowsPerPage, opts.Seed)
		tab, idx = mt, btree.NewMaterialized(m, mt, 0, 0)
	}

	s := &System{
		Opts:    opts,
		Env:     env,
		Dev:     dev,
		Manager: m,
		Pool:    buffer.NewPool(env, opts.PoolPages),
		CPU:     sim.NewResource(env, "cpu", opts.Cores),
		Table:   tab,
		Index:   idx,
		Obs:     obs.NewRegistry(env),
	}
	dev.Metrics().Publish(s.Obs)
	s.Pool.Publish(s.Obs)
	if opts.Trace != nil {
		s.Tracer = opts.Trace.NewTracer(env,
			fmt.Sprintf("E%d-%s", opts.RowsPerPage, opts.Device))
	}
	s.Ctx = &exec.Context{
		Env:    env,
		CPU:    s.CPU,
		Pool:   s.Pool,
		Dev:    dev,
		Costs:  exec.DefaultCPUCosts(),
		Tracer: s.Tracer,
		Reg:    s.Obs,
	}
	return s
}

// RangeFor returns predicate bounds [lo, hi] selecting approximately the
// given fraction of the table (the paper's "low and high are used to
// control the selectivity").
func (s *System) RangeFor(selectivity float64) (lo, hi int64) {
	if selectivity < 0 {
		selectivity = 0
	}
	if selectivity > 1 {
		selectivity = 1
	}
	hi = int64(selectivity*float64(s.Table.KeyDomain())+0.5) - 1
	if hi < 0 {
		hi = 0
	}
	return 0, hi
}

// Spec builds a scan spec against this system's table.
func (s *System) Spec(method exec.Method, degree int, lo, hi int64) exec.Spec {
	return exec.Spec{
		Table:  s.Table,
		Index:  s.Index,
		Lo:     lo,
		Hi:     hi,
		Method: method,
		Degree: degree,
	}
}

// Run executes a spec cold or warm. When cold, the buffer pool is flushed
// first — the paper flushes the pool at the start of each experiment.
func (s *System) Run(spec exec.Spec, cold bool) exec.Result {
	if cold {
		s.Pool.Flush()
	}
	return exec.Execute(s.Ctx, spec)
}
