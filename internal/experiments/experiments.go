// Package experiments regenerates every table and figure in the paper's
// evaluation. Each experiment is a function returning typed rows; the
// cmd/pioqo-bench tool prints them as TSV, the root bench_test.go exposes
// one testing.B benchmark per experiment, and EXPERIMENTS.md records the
// outcomes against the paper's numbers.
//
// Absolute times are outputs of the simulated devices; the reproduction
// target is the paper's shape — which access method wins where, where the
// break-even selectivities fall, and the rough factors between curves.
package experiments

import (
	"math"

	"pioqo/internal/calibrate"
	"pioqo/internal/cost"
	"pioqo/internal/disk"
	"pioqo/internal/obs"
	"pioqo/internal/sim"
	"pioqo/internal/workload"
)

// Scale sizes the experiments. The paper's tables have ~2.4 M pages against
// a 16 K-frame pool; the defaults keep the same page-to-pool ratio at a
// size that sweeps quickly.
type Scale struct {
	// Pages is the heap size of each experiment table, in pages.
	Pages int64

	// PoolPages is the buffer pool size in frames ("a very small memory
	// buffer pool ... to factor out the impact of memory", §3.1).
	PoolPages int

	// CalibReads is M, the per-point calibration read budget.
	CalibReads int

	// Reps is the number of calibration repetitions for the GW/AW
	// comparison experiments (the paper uses 50).
	Reps int

	// SelPoints is the number of selectivity grid points per sweep.
	SelPoints int

	// Cores is the number of logical CPU cores (the paper's machine has 8).
	Cores int

	// Parallel is the number of host worker goroutines a sweep fans its
	// grid points out over. Every grid point builds its own sim.Env, so
	// points share no state and the collected output is byte-identical for
	// any worker count. 0 means GOMAXPROCS (the default: parallel on);
	// 1 restores the fully serial sweep.
	Parallel int

	// Trace, when non-nil, collects virtual-time spans from every system an
	// experiment builds (one tracer process lane per system), for Chrome
	// trace_event export via Trace.WriteChrome. Tracing forces the serial
	// sweep so span lanes are appended in deterministic order.
	Trace *obs.Trace
}

// DefaultScale is the full-size configuration used by cmd/pioqo-bench.
func DefaultScale() Scale {
	return Scale{
		Pages:      12288,
		PoolPages:  1024,
		CalibReads: 3200,
		Reps:       10,
		SelPoints:  9,
		Cores:      8,
	}
}

// QuickScale is a reduced configuration for unit tests and testing.B
// benchmarks.
func QuickScale() Scale {
	return Scale{
		Pages:      2048,
		PoolPages:  256,
		CalibReads: 640,
		Reps:       3,
		SelPoints:  5,
		Cores:      8,
	}
}

// system builds a synthetic-backed system sized by the scale for one
// Table 1 configuration.
func (sc Scale) system(cfg workload.Config) *workload.System {
	return workload.New(workload.Options{
		Device:      cfg.Device,
		Rows:        sc.Pages * int64(cfg.RowsPerPage),
		RowsPerPage: cfg.RowsPerPage,
		PoolPages:   sc.PoolPages,
		Cores:       sc.Cores,
		Synthetic:   true,
		Trace:       sc.Trace,
	})
}

// calibConfig returns the calibration grid for a system's device, sized by
// the scale, with the ActiveWait driver the paper recommends.
func (sc Scale) calibConfig(s *workload.System) calibrate.Config {
	cfg := calibrate.DefaultConfig(s.Dev)
	cfg.MaxReads = sc.CalibReads
	return cfg
}

// calibrated calibrates the system's device in place (device time advances;
// the paper likewise calibrates on the live machine) and returns the model.
func (sc Scale) calibrated(s *workload.System) *cost.QDTT {
	return calibrate.Run(s.Env, s.Dev, sc.calibConfig(s)).Model
}

// selGrid returns n geometrically spaced selectivities in [lo, hi].
func selGrid(lo, hi float64, n int) []float64 {
	if n < 2 {
		return []float64{lo}
	}
	out := make([]float64, n)
	ratio := hi / lo
	for i := range out {
		out[i] = lo * math.Pow(ratio, float64(i)/float64(n-1))
	}
	return out
}

// devicePages reports a device's capacity in pages.
func devicePages(s *workload.System) int64 {
	return s.Dev.Size() / disk.PageSize
}

// microsToDuration converts model microseconds to a sim duration.
func microsToDuration(us float64) sim.Duration {
	return sim.Duration(us * float64(sim.Microsecond))
}
