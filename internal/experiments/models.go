package experiments

import (
	"pioqo/internal/calibrate"
	"pioqo/internal/device"
	"pioqo/internal/disk"
	"pioqo/internal/sim"
	"pioqo/internal/workload"
)

// ModelRow is one calibrated point of a DTT or QDTT model.
type ModelRow struct {
	Device string
	Band   int64 // pages
	Depth  int
	Micros float64
	StdDev float64
}

// deviceFactory returns a calibrate.EnvFactory building fresh devices of
// the given kind, one isolated environment per calibration point.
func deviceFactory(kind workload.DeviceKind) calibrate.EnvFactory {
	return func() (*sim.Env, device.Device) {
		env := sim.NewEnv(31)
		return env, workload.NewDevice(env, kind)
	}
}

// calibrateDevice characterises a fresh device of the given kind. Each
// (band, queue-depth) point of the calibration grid runs on its own device
// in its own environment, so the grid fans out across host workers.
func (sc Scale) calibrateDevice(kind workload.DeviceKind, mutate func(*calibrate.Config)) calibrate.Output {
	factory := deviceFactory(kind)
	_, probe := factory()
	cfg := calibrate.DefaultConfig(probe)
	cfg.MaxReads = sc.CalibReads
	if mutate != nil {
		mutate(&cfg)
	}
	return calibrate.Sweep(factory, cfg, sc.workers())
}

// Fig6 produces the sample DTT models of the paper's Fig. 6: amortized
// random-read cost versus band size at queue depth 1, for HDD and SSD.
func (sc Scale) Fig6() []ModelRow {
	var rows []ModelRow
	for _, kind := range []workload.DeviceKind{workload.HDD, workload.SSD} {
		out := sc.calibrateDevice(kind, func(c *calibrate.Config) {
			c.Depths = []int{1}
		})
		for _, p := range out.Points {
			rows = append(rows, ModelRow{
				Device: kind.String(), Band: p.Band, Depth: p.Depth, Micros: p.MicrosPerPage,
			})
		}
	}
	return rows
}

// Fig7 produces the sample QDTT models of the paper's Fig. 7: one cost
// curve over band size per queue depth, for HDD and SSD.
func (sc Scale) Fig7() []ModelRow {
	var rows []ModelRow
	for _, kind := range []workload.DeviceKind{workload.HDD, workload.SSD} {
		out := sc.calibrateDevice(kind, nil)
		for _, p := range out.Points {
			rows = append(rows, ModelRow{
				Device: kind.String(), Band: p.Band, Depth: p.Depth, Micros: p.MicrosPerPage,
			})
		}
	}
	return rows
}

// Fig9 calibrates the SSD with the GW and AW methods (averaging Scale.Reps
// repetitions per point, as the paper averages 50) and returns both grids.
// The paper's finding: the two methods produce very similar models on SSD.
func (sc Scale) Fig9() []ModelRow {
	var rows []ModelRow
	for _, m := range []calibrate.Method{calibrate.GroupWait, calibrate.ActiveWait} {
		out := sc.calibrateDevice(workload.SSD, func(c *calibrate.Config) {
			c.Method = m
			c.Repetitions = sc.Reps
		})
		for _, p := range out.Points {
			rows = append(rows, ModelRow{
				Device: m.String(), Band: p.Band, Depth: p.Depth,
				Micros: p.MicrosPerPage, StdDev: p.StdDev,
			})
		}
	}
	return rows
}

// DiffRow is one point of the paper's Figs. 10 and 11: the difference
// between the GW- and AW-calibrated costs at a grid point.
type DiffRow struct {
	Band      int64
	Depth     int
	GWMicros  float64
	AWMicros  float64
	GWMinusAW float64
}

// gwVsAW calibrates a device kind with both methods and diffs the grids.
func (sc Scale) gwVsAW(kind workload.DeviceKind) []DiffRow {
	calib := func(m calibrate.Method) calibrate.Output {
		return sc.calibrateDevice(kind, func(c *calibrate.Config) {
			c.Method = m
			c.Repetitions = sc.Reps
		})
	}
	gw, aw := calib(calibrate.GroupWait), calib(calibrate.ActiveWait)
	var rows []DiffRow
	for i := range gw.Points {
		g, a := gw.Points[i], aw.Points[i]
		rows = append(rows, DiffRow{
			Band: g.Band, Depth: g.Depth,
			GWMicros: g.MicrosPerPage, AWMicros: a.MicrosPerPage,
			GWMinusAW: g.MicrosPerPage - a.MicrosPerPage,
		})
	}
	return rows
}

// Fig10 is the GW-vs-AW difference surface on SSD (paper: negligible,
// within a few microseconds).
func (sc Scale) Fig10() []DiffRow { return sc.gwVsAW(workload.SSD) }

// Fig11 is the GW-vs-AW difference surface on the 8-spindle RAID (paper:
// AW measures significantly smaller costs).
func (sc Scale) Fig11() []DiffRow { return sc.gwVsAW(workload.RAID8) }

// Fig12Row compares a directly measured cost against the value the
// exponentially calibrated model interpolates for that point.
type Fig12Row struct {
	Band         int64
	Depth        int
	Measured     float64
	Interpolated float64
	ErrPercent   float64
}

// Fig12 validates §4.5 on the RAID array: calibrate at depths 1, 2, 4, 8,
// 16, 32, then measure every depth 1..32 and compare against bilinear
// interpolation. The paper concludes the exponential grid is "fairly
// accurate".
func (sc Scale) Fig12() []Fig12Row {
	factory := func() (*sim.Env, device.Device) {
		env := sim.NewEnv(33)
		return env, workload.NewDevice(env, workload.RAID8)
	}
	_, probe := factory()
	bands := []int64{256, 64 << 10, probe.Size() / disk.PageSize}

	expCfg := calibrate.DefaultConfig(probe)
	expCfg.MaxReads = sc.CalibReads
	expCfg.Bands = bands
	model := calibrate.Sweep(factory, expCfg, sc.workers()).Model

	denseCfg := expCfg
	denseCfg.Depths = nil
	for d := 1; d <= 32; d++ {
		denseCfg.Depths = append(denseCfg.Depths, d)
	}
	dense := calibrate.Sweep(factory, denseCfg, sc.workers())

	var rows []Fig12Row
	for _, p := range dense.Points {
		interp := model.PageCost(p.Band, p.Depth)
		rows = append(rows, Fig12Row{
			Band: p.Band, Depth: p.Depth,
			Measured: p.MicrosPerPage, Interpolated: interp,
			ErrPercent: (interp - p.MicrosPerPage) / p.MicrosPerPage * 100,
		})
	}
	return rows
}

// EarlyStopRow summarises one calibration run for the §4.6 comparison.
type EarlyStopRow struct {
	Device           string
	Threshold        float64
	SimTime          sim.Duration
	Reads            int64
	DepthsCalibrated int
	StoppedEarly     bool
}

// EarlyStop compares full calibration against threshold-controlled
// calibration (T = 20%) on HDD and SSD. The paper's point: the control
// "results in a significant improvement in calibration time especially for
// devices with weak parallel I/O capability" while leaving devices that do
// benefit fully calibrated.
func (sc Scale) EarlyStop() []EarlyStopRow {
	var rows []EarlyStopRow
	for _, kind := range []workload.DeviceKind{workload.HDD, workload.SSD} {
		for _, threshold := range []float64{0, 0.20} {
			out := sc.calibrateDevice(kind, func(c *calibrate.Config) {
				c.StopThreshold = threshold
			})
			rows = append(rows, EarlyStopRow{
				Device:           kind.String(),
				Threshold:        threshold,
				SimTime:          out.SimTime,
				Reads:            out.TotalReads,
				DepthsCalibrated: out.CalibratedDepths,
				StoppedEarly:     out.StoppedEarly,
			})
		}
	}
	return rows
}
