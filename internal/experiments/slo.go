package experiments

import (
	"fmt"

	"pioqo"
)

// SLORow is one query shape's service levels from the brokered skewed mix:
// end-to-end latency percentiles, the queue-wait versus execution
// breakdown, and the shared batch makespan.
type SLORow struct {
	Shape      string
	Queries    int
	P50Ms      float64
	P95Ms      float64
	P99Ms      float64
	WaitMs     float64 // mean admission-queue wait
	ExecMs     float64 // mean execution time
	MakespanMs float64 // batch makespan, repeated on every row
}

// SLO runs the Admission experiment's skewed mix — one mid-selectivity
// scan plus n−1 small disjoint scans — under brokered admission control
// and reports per-shape service levels from the WorkloadReport. The two
// shapes make the broker's scheduling trade visible as SLO numbers: the
// small shape's p95 includes the queries queued behind the mid scan's
// admission grant, and the wait/exec split shows how much of each shape's
// latency the queue contributed.
func (sc Scale) SLO(queries int) []SLORow {
	if queries < 2 {
		queries = 8
	}
	sys := pioqo.New(pioqo.Config{
		Device:    pioqo.SSD,
		PoolPages: sc.PoolPages,
		Cores:     sc.Cores,
	})
	rows := sc.Pages * 33
	tab, err := sys.CreateTable("slo", rows, 33, pioqo.WithSyntheticData())
	if err != nil {
		panic(fmt.Sprintf("slo: %v", err))
	}
	if _, err := sys.Calibrate(pioqo.CalibrationOptions{MaxReads: sc.CalibReads}); err != nil {
		panic(fmt.Sprintf("slo: %v", err))
	}
	qs := skewedMix(tab, rows, queries)
	res, err := sys.ExecuteConcurrent(qs, pioqo.Cold())
	if err != nil {
		panic(fmt.Sprintf("slo: %v", err))
	}
	rep := res.SLOReport(qs)
	out := make([]SLORow, len(rep.Shapes))
	for i, s := range rep.Shapes {
		out[i] = SLORow{
			Shape:      s.Shape,
			Queries:    s.Queries,
			P50Ms:      float64(s.P50) / 1e6,
			P95Ms:      float64(s.P95) / 1e6,
			P99Ms:      float64(s.P99) / 1e6,
			WaitMs:     float64(s.MeanWait) / 1e6,
			ExecMs:     float64(s.MeanExec) / 1e6,
			MakespanMs: float64(rep.Makespan) / 1e6,
		}
	}
	return out
}
