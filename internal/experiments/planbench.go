package experiments

import (
	"fmt"
	"time"

	"pioqo/internal/cost"
	"pioqo/internal/exec"
	"pioqo/internal/host"
	"pioqo/internal/opt"
	"pioqo/internal/workload"
)

// PlanBench measures the serving-scale planner along the two axes the
// greedy fast path trades between:
//
// Throughput — plans per second on a parameterized workload (one query
// shape, fresh predicate constants every query) for each plan path: the
// exact-key memo (whose parameterized hit rate is zero — the PR 7 serving
// baseline), the memo replaying repeated constants (its best case), and the
// parameterized band cache alone, under pool-residency drift, and shared
// by concurrent host workers. Wall-clock numbers are host timings: the
// planner is host code, not simulation.
//
// Quality — across a selectivity × device grid, whether the greedy O(n)
// fast path picks the full enumeration's winner, and its cost regret when
// it does not. These numbers are deterministic; the tests gate on them.

// PlanThroughputRow is one throughput arm on one device.
type PlanThroughputRow struct {
	Device  string
	Mode    string
	Workers int
	Plans   int
	// WallSeconds is host time for the whole arm; PlansPerSec the rate.
	WallSeconds float64
	PlansPerSec float64
	// SpeedupVsMemoMiss is this arm's rate over the same device's memo-miss
	// arm — the serving-workload baseline.
	SpeedupVsMemoMiss float64
	// Hits/Misses/Revalidations/Fallbacks snapshot the param cache's
	// counters for cache arms (zero for memo arms).
	Hits, Misses, Revalidations, Fallbacks int64
}

// PlanQualityRow is one selectivity × device point of the greedy-vs-full
// comparison.
type PlanQualityRow struct {
	Device      string
	Selectivity float64
	Full        string
	Greedy      string
	Agree       bool
	// RegretPct is the greedy plan's estimated cost over the full winner's,
	// in percent (0 when they agree).
	RegretPct float64
	// FellBack marks points where the fast path detected a crossover and
	// re-enumerated.
	FellBack bool
}

// PlanBenchReport bundles both axes plus the quality aggregates the
// acceptance criteria gate on.
type PlanBenchReport struct {
	Queries    int
	Throughput []PlanThroughputRow
	Quality    []PlanQualityRow

	QualityPoints int
	AgreePct      float64
	MeanRegretPct float64
	MaxRegretPct  float64
	Fallbacks     int
}

// planDevices are the devices the planner benchmark sweeps: the paper's
// two poles of the storage spectrum.
var planDevices = []workload.DeviceKind{workload.SSD, workload.HDD}

// planConfig builds the serving-shape optimizer config: full degree grid,
// prefetch planning on, grid key precomputed.
func (sc Scale) planConfig(model cost.Model) opt.Config {
	cfg := opt.Config{
		Model:          model,
		Costs:          exec.DefaultCPUCosts(),
		Cores:          sc.Cores,
		Degrees:        []int{1, 2, 4, 8, 16, 32},
		PoolPages:      int64(sc.PoolPages),
		PrefetchDepths: []int{2, 4, 8, 16, 32},
	}
	cfg.GridKey = opt.GridKey(cfg.Degrees, cfg.PrefetchDepths)
	return cfg
}

// planName renders a plan's shape compactly for quality rows.
func planName(p opt.Plan) string {
	name := "FTS"
	switch p.Method {
	case exec.IndexScan:
		name = "IS"
	case exec.SortedIndexScan:
		name = "SortedIS"
	}
	if p.Degree > 1 {
		name = fmt.Sprintf("P%s%d", name, p.Degree)
	}
	if p.Prefetch > 0 {
		name = fmt.Sprintf("%s+pf%d", name, p.Prefetch)
	}
	if p.Shared {
		name += "+shared"
	}
	return name
}

// servingRange returns the i-th query's predicate: a window whose width
// cycles through four serving selectivities while its position strides the
// key domain, so constants never repeat but the shape does. The widths sit
// clearly inside one plan regime each — three index-scan points and one
// reporting scan — as a serving workload's hot shapes do; predicates near a
// cost crossover deliberately bypass the cache (the greedy margin falls
// back to full enumeration), which the quality grid measures instead.
func servingRange(domain int64, i int) (int64, int64) {
	sels := [4]float64{0.0005, 0.002, 0.008, 0.1}
	width := int64(sels[i%len(sels)] * float64(domain))
	if width < 1 {
		width = 1
	}
	lo := (int64(i) * 9973) % (domain - width)
	return lo, lo + width - 1
}

// PlanBench runs the planner benchmark with the given per-arm query count.
func (sc Scale) PlanBench(queries int) PlanBenchReport {
	report := PlanBenchReport{Queries: queries}

	for _, dev := range planDevices {
		cfg := workload.Config{Name: "plan", RowsPerPage: 33, Device: dev}
		sys := sc.system(cfg)
		ocfg := sc.planConfig(sc.calibrated(sys))
		in := opt.Input{Table: sys.Table, Index: sys.Index, Pool: sys.Pool}
		domain := sys.Table.KeyDomain()
		devName := sys.Dev.Name()

		timed := func(mode string, workers int, pc *opt.ParamCache, run func()) {
			start := time.Now()
			run()
			wall := time.Since(start).Seconds()
			row := PlanThroughputRow{
				Device: devName, Mode: mode, Workers: workers, Plans: queries,
				WallSeconds: wall, PlansPerSec: float64(queries) / wall,
			}
			if pc != nil {
				s := pc.Stats()
				row.Hits, row.Misses = s.Hits, s.Misses
				row.Revalidations, row.Fallbacks = s.Revalidations, s.Fallbacks
			}
			report.Throughput = append(report.Throughput, row)
		}

		// The serving baseline: exact-key memo, fresh constants every
		// query — every lookup misses and pays a full enumeration.
		memo := opt.NewMemo()
		timed("memo-miss", 1, nil, func() {
			for i := 0; i < queries; i++ {
				q := in
				q.Lo, q.Hi = servingRange(domain, i)
				memo.Choose(ocfg, q)
			}
		})

		// The memo's best case: the same 64 constants cycling forever.
		memo.Reset()
		timed("memo-replay", 1, nil, func() {
			for i := 0; i < queries; i++ {
				q := in
				q.Lo, q.Hi = servingRange(domain, i%64)
				memo.Choose(ocfg, q)
			}
		})

		// The parameterized band cache on the same fresh-constant stream.
		pc := opt.NewParamCache()
		timed("paramcache", 1, pc, func() {
			for i := 0; i < queries; i++ {
				q := in
				q.Lo, q.Hi = servingRange(domain, i)
				pc.Choose(ocfg, q)
			}
		})

		// One shared cache hammered by concurrent host workers. At least
		// four goroutines even on a small host: the arm measures contention
		// on the shared cache, not sweep-point parallelism.
		pc = opt.NewParamCache()
		workers := sc.workers()
		if workers < 4 {
			workers = 4
		}
		timed("paramcache-mt", workers, pc, func() {
			host.Sweep(workers, queries, func(i int) {
				q := in
				q.Lo, q.Hi = servingRange(domain, i)
				pc.Choose(ocfg, q)
			})
		})

		// Residency drift: periodic pool installs bump the epoch. The memo
		// would invalidate everything; the band cache revalidates winner vs.
		// runner-up and keeps serving. Installs are capped at half the pool —
		// frames stay "loading" without the sim running, so they can never be
		// evicted — and the arm runs last so the others share an undisturbed
		// pool.
		pc = opt.NewParamCache()
		interval := 64
		if min := 2 * queries / sc.PoolPages; min > interval {
			interval = min
		}
		var page int64
		timed("paramcache-drift", 1, pc, func() {
			for i := 0; i < queries; i++ {
				if i%interval == 0 {
					sys.Pool.Prefetch(sys.Table.File(), page%sys.Table.Pages())
					page++
				}
				q := in
				q.Lo, q.Hi = servingRange(domain, i)
				pc.Choose(ocfg, q)
			}
		})
	}

	// Speedups against each device's memo-miss arm.
	base := map[string]float64{}
	for _, r := range report.Throughput {
		if r.Mode == "memo-miss" {
			base[r.Device] = r.PlansPerSec
		}
	}
	for i := range report.Throughput {
		r := &report.Throughput[i]
		if b := base[r.Device]; b > 0 {
			r.SpeedupVsMemoMiss = r.PlansPerSec / b
		}
	}

	report.Quality, report.Fallbacks = sc.planQuality()
	for _, q := range report.Quality {
		report.QualityPoints++
		if q.Agree {
			report.AgreePct++
		}
		report.MeanRegretPct += q.RegretPct
		if q.RegretPct > report.MaxRegretPct {
			report.MaxRegretPct = q.RegretPct
		}
	}
	if report.QualityPoints > 0 {
		report.AgreePct *= 100 / float64(report.QualityPoints)
		report.MeanRegretPct /= float64(report.QualityPoints)
	}
	return report
}

// planQuality sweeps greedy vs. full enumeration over the selectivity ×
// device grid. Deterministic: pure cost-model evaluation, no execution.
func (sc Scale) planQuality() ([]PlanQualityRow, int) {
	var rows []PlanQualityRow
	fallbacks := 0
	points := sc.SelPoints * 5
	if points < 20 {
		points = 20
	}
	for _, dev := range planDevices {
		cfg := workload.Config{Name: "plan", RowsPerPage: 33, Device: dev}
		sys := sc.system(cfg)
		ocfg := sc.planConfig(sc.calibrated(sys))
		in := opt.Input{Table: sys.Table, Index: sys.Index, Pool: sys.Pool}
		domain := sys.Table.KeyDomain()

		for _, sel := range selGrid(1e-5, 1.0, points) {
			q := in
			width := int64(sel * float64(domain))
			if width < 1 {
				width = 1
			}
			q.Lo, q.Hi = 0, width-1
			full := opt.Choose(ocfg, q)
			greedy, fell := opt.GreedyChoose(ocfg, q)
			row := PlanQualityRow{
				Device:      sys.Dev.Name(),
				Selectivity: sel,
				Full:        planName(full),
				Greedy:      planName(greedy),
				Agree:       greedy == full,
				FellBack:    fell,
			}
			if !row.Agree {
				row.RegretPct = (greedy.TotalMicros/full.TotalMicros - 1) * 100
			}
			if fell {
				fallbacks++
			}
			rows = append(rows, row)
		}
	}
	return rows, fallbacks
}
