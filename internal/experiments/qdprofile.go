package experiments

import (
	"pioqo/internal/exec"
	"pioqo/internal/sim"
	"pioqo/internal/trace"
	"pioqo/internal/workload"
)

// QDProfileRow summarises the device queue-depth profile of one PIS run.
type QDProfileRow struct {
	Degree    int
	MeanDepth float64
	P50Depth  int
	MaxDepth  int
}

// QDProfile reproduces the paper's §2 profiling observation — "the I/O
// pattern of PIS with parallel degree n is the parallel random I/O with
// constant queue depth of n" — by sampling the SSD's outstanding request
// count while parallel index scans of each degree run.
func (sc Scale) QDProfile() []QDProfileRow {
	var rows []QDProfileRow
	for _, degree := range []int{1, 2, 4, 8, 16, 32} {
		s := sc.system(workload.Config{
			Name: "qdprofile", RowsPerPage: 1, Device: workload.SSD,
		})
		prof := trace.NewProfiler(s.Env, s.Dev, 250*sim.Microsecond)
		lo, hi := s.RangeFor(0.3)
		spec := s.Spec(exec.IndexScan, degree, lo, hi)
		s.Env.Go("query", func(p *sim.Proc) {
			prof.Start()
			exec.RunScan(p, s.Ctx, spec)
			prof.Stop()
		})
		s.Env.Run()
		st := prof.Profile().Stats()
		rows = append(rows, QDProfileRow{
			Degree:    degree,
			MeanDepth: st.Mean,
			P50Depth:  st.P50,
			MaxDepth:  st.Max,
		})
	}
	return rows
}
