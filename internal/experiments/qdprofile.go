package experiments

import (
	"pioqo/internal/exec"
	"pioqo/internal/sim"
	"pioqo/internal/trace"
	"pioqo/internal/workload"
)

// qdDegrees is the parallel-degree sweep profiled by the §2 reproduction.
var qdDegrees = []int{1, 2, 4, 8, 16, 32}

// QDProfileRow summarises the device queue-depth profile of one PIS run.
type QDProfileRow struct {
	Degree    int
	MeanDepth float64
	P50Depth  int
	MaxDepth  int
}

// QDSample is one queue-depth reading in a machine-readable profile.
type QDSample struct {
	TimeUs float64 `json:"t_us"`
	Depth  int     `json:"depth"`
}

// QDProfileSeriesRow is one degree's full sampled series plus its summary —
// the machine-readable form behind pioqo-bench qdprofile -json.
type QDProfileSeriesRow struct {
	Degree     int        `json:"degree"`
	IntervalUs float64    `json:"interval_us"`
	MeanDepth  float64    `json:"mean_depth"`
	P50Depth   int        `json:"p50_depth"`
	MaxDepth   int        `json:"max_depth"`
	Samples    []QDSample `json:"samples"`
}

// qdProfileRun executes one PIS run at the given degree on a fresh SSD
// system and returns the sampled queue-depth profile.
func (sc Scale) qdProfileRun(degree int) trace.Profile {
	s := sc.system(workload.Config{
		Name: "qdprofile", RowsPerPage: 1, Device: workload.SSD,
	})
	prof := trace.NewProfiler(s.Env, s.Dev, 250*sim.Microsecond)
	lo, hi := s.RangeFor(0.3)
	spec := s.Spec(exec.IndexScan, degree, lo, hi)
	s.Env.Go("query", func(p *sim.Proc) {
		prof.Start()
		exec.RunScan(p, s.Ctx, spec)
		prof.Stop()
	})
	s.Env.Run()
	return prof.Profile()
}

// QDProfile reproduces the paper's §2 profiling observation — "the I/O
// pattern of PIS with parallel degree n is the parallel random I/O with
// constant queue depth of n" — by sampling the SSD's outstanding request
// count while parallel index scans of each degree run.
func (sc Scale) QDProfile() []QDProfileRow {
	return sweep(sc.workers(), len(qdDegrees), func(i int) QDProfileRow {
		degree := qdDegrees[i]
		st := sc.qdProfileRun(degree).Stats()
		return QDProfileRow{
			Degree:    degree,
			MeanDepth: st.Mean,
			P50Depth:  st.P50,
			MaxDepth:  st.Max,
		}
	})
}

// QDProfileSeries runs the same sweep as QDProfile but keeps every sample,
// for machine-readable export.
func (sc Scale) QDProfileSeries() []QDProfileSeriesRow {
	return sweep(sc.workers(), len(qdDegrees), func(i int) QDProfileSeriesRow {
		degree := qdDegrees[i]
		prof := sc.qdProfileRun(degree)
		st := prof.Stats()
		row := QDProfileSeriesRow{
			Degree:     degree,
			IntervalUs: prof.Interval.Micros(),
			MeanDepth:  st.Mean,
			P50Depth:   st.P50,
			MaxDepth:   st.Max,
			Samples:    make([]QDSample, len(prof.Samples)),
		}
		for si, s := range prof.Samples {
			row.Samples[si] = QDSample{TimeUs: sim.Duration(s.At).Micros(), Depth: s.Depth}
		}
		return row
	})
}
