package experiments

import (
	"fmt"

	"pioqo/internal/sim"
	"pioqo/internal/workload"
)

// Fig1Row is one bar of the paper's Fig. 1: random 4 KB read throughput at
// a given queue depth against the device's non-parallel sequential-read
// throughput.
type Fig1Row struct {
	Device       string
	QueueDepth   int
	RandomMBps   float64
	SeqMBps      float64
	RatioPercent float64 // random as % of sequential
}

// Fig1 measures sequential vs parallel-random throughput on HDD and SSD at
// queue depths 1..32, raw on the devices (no database layers). The paper
// reports that at queue depth 32 random reads reach ~51.7% of sequential on
// its SSD and ~1.3% on its HDD. Every measurement builds its own device in
// its own environment, so the grid fans out as independent points.
func (sc Scale) Fig1() []Fig1Row {
	kinds := []workload.DeviceKind{workload.HDD, workload.SSD}
	qds := []int{1, 2, 4, 8, 16, 32}
	// Point layout per device kind: one sequential baseline, then one
	// random measurement per queue depth.
	perKind := 1 + len(qds)
	vals := sweep(sc.workers(), len(kinds)*perKind, func(i int) float64 {
		kind, slot := kinds[i/perKind], i%perKind
		if slot == 0 {
			return fig1Sequential(kind)
		}
		return fig1Random(kind, qds[slot-1])
	})
	var rows []Fig1Row
	for ki, kind := range kinds {
		seq := vals[ki*perKind]
		for qi, qd := range qds {
			rnd := vals[ki*perKind+1+qi]
			rows = append(rows, Fig1Row{
				Device:       kind.String(),
				QueueDepth:   qd,
				RandomMBps:   rnd,
				SeqMBps:      seq,
				RatioPercent: rnd / seq * 100,
			})
		}
	}
	return rows
}

// fig1Sequential measures a non-parallel sequential read stream of large
// requests, the paper's sequential baseline.
func fig1Sequential(kind workload.DeviceKind) float64 {
	env := sim.NewEnv(21)
	dev := workload.NewDevice(env, kind)
	const reqSize = 1 << 20
	const total = 512 << 20
	env.Go("seq", func(p *sim.Proc) {
		for off := int64(0); off+reqSize <= total; off += reqSize {
			p.Wait(dev.ReadAt(off, reqSize))
		}
	})
	env.Run()
	return dev.Metrics().Snapshot().ThroughputMBps
}

// fig1Random measures 4 KB random reads over the whole device with qd
// synchronous readers (queue depth = qd).
func fig1Random(kind workload.DeviceKind, qd int) float64 {
	env := sim.NewEnv(22)
	dev := workload.NewDevice(env, kind)
	pages := dev.Size() / 4096
	perWorker := 400
	if kind == workload.HDD {
		perWorker = 100 // spinning media: keep the sweep brisk
	}
	for w := 0; w < qd; w++ {
		env.Go(fmt.Sprintf("rnd%d", w), func(p *sim.Proc) {
			for i := 0; i < perWorker; i++ {
				off := env.Rand().Int63n(pages) * 4096
				p.Wait(dev.ReadAt(off, 4096))
			}
		})
	}
	env.Run()
	return dev.Metrics().Snapshot().ThroughputMBps
}
