package experiments

import (
	"pioqo/internal/btree"
	"pioqo/internal/buffer"
	"pioqo/internal/calibrate"
	"pioqo/internal/disk"
	"pioqo/internal/exec"
	"pioqo/internal/opt"
	"pioqo/internal/sim"
	"pioqo/internal/stats"
	"pioqo/internal/table"
	"pioqo/internal/workload"
)

// JoinRow is one point of the join-method ablation: the measured runtimes
// of both join algorithms plus what the planner picked.
type JoinRow struct {
	BuildSkew   float64 // Zipf exponent (0 = uniform)
	DistinctPct float64 // distinct keys as % of build rows
	HashMs      float64
	NLMs        float64
	Chosen      string
	Regret      float64 // chosen runtime / best runtime
}

// Joins is an ablation for the join extension: the same fact-table join is
// driven with build sides of increasing key skew. With uniform keys the
// range predicate pushes down and the hash join is unbeatable; as skew
// concentrates the build rows onto fewer distinct keys, the index
// nested-loop join's few lookups win. The planner — fed by distinct-count
// statistics and the QDTT model — must track the crossover.
func (sc Scale) Joins() []JoinRow {
	// One fresh environment per skew level: the points are independent
	// simulations that fan out across host workers.
	skews := []float64{0, 1.1, 1.3, 1.6, 2.0}
	return sweep(sc.workers(), len(skews), func(i int) JoinRow {
		skew := skews[i]
		env := sim.NewEnv(808)
		dev := workload.NewDevice(env, workload.SSD)
		m := disk.NewManager(dev)

		buildRows := sc.Pages * 4 // modest build side
		var build *table.Materialized
		if skew == 0 {
			build = table.NewMaterialized(m, "build", buildRows, 33, 3)
		} else {
			build = table.NewMaterializedZipf(m, "build", buildRows, 33, 3, skew)
		}
		buildIdx := btree.NewMaterialized(m, build, 0, 0)
		hist := stats.BuildHistogram(build, 0)

		probe := table.NewSynthetic(m, "probe", sc.Pages*33, 33, 5)
		probeIdx := btree.NewSynthetic(m, probe, 0, 0)

		ctx := &exec.Context{
			Env:   env,
			CPU:   sim.NewResource(env, "cpu", sc.Cores),
			Pool:  buffer.NewPool(env, sc.PoolPages),
			Dev:   dev,
			Costs: exec.DefaultCPUCosts(),
		}
		lo, hi := int64(0), buildRows-1 // whole build domain

		spec := func(method exec.JoinMethod) exec.JoinSpec {
			return exec.JoinSpec{
				Method: method,
				Build: exec.Spec{Table: build, Index: buildIdx, Lo: lo, Hi: hi,
					Method: exec.FullScan, Degree: 8},
				Probe: exec.Spec{Table: probe, Index: probeIdx, Lo: lo, Hi: hi,
					Method: exec.IndexScan, Degree: 32},
				Agg: exec.AggCount,
			}
		}
		ctx.Pool.Flush()
		hash := exec.ExecuteJoin(ctx, spec(exec.HashJoin))
		ctx.Pool.Flush()
		nl := exec.ExecuteJoin(ctx, spec(exec.IndexNLJoin))

		// What would the planner have picked?
		ccfg := calibrate.DefaultConfig(dev)
		ccfg.MaxReads = sc.CalibReads
		model := calibrate.Run(env, dev, ccfg).Model
		cfg := opt.Config{
			Model: model, Costs: ctx.Costs, Cores: sc.Cores,
			PoolPages: int64(sc.PoolPages),
		}
		buildIn := opt.Input{Table: build, Index: buildIdx, Pool: ctx.Pool, Stats: hist, Lo: lo, Hi: hi}
		probeIn := opt.Input{Table: probe, Index: probeIdx, Pool: ctx.Pool, Lo: lo, Hi: hi}
		jp := opt.ChooseJoin(cfg, buildIn, probeIn)
		ctx.Pool.Flush()
		chosen := exec.ExecuteJoin(ctx, jp.Specs(buildIn, probeIn, exec.AggCount))

		hashMs, nlMs, chosenMs := hash.Runtime.Millis(), nl.Runtime.Millis(), chosen.Runtime.Millis()
		best := chosenMs
		if hashMs < best {
			best = hashMs
		}
		if nlMs < best {
			best = nlMs
		}
		return JoinRow{
			BuildSkew:   skew,
			DistinctPct: hist.DistinctRatio() * 100,
			HashMs:      hashMs,
			NLMs:        nlMs,
			Chosen:      jp.Method.String(),
			Regret:      chosenMs / best,
		}
	})
}
