package experiments

import (
	"math"
	"math/rand"
	"sort"

	"pioqo/internal/exec"
	"pioqo/internal/opt"
	"pioqo/internal/workload"
)

// MixedRow summarises one optimizer's performance over the whole mixed
// workload.
type MixedRow struct {
	Optimizer  string
	Queries    int
	TotalMs    float64
	MeanMs     float64
	P95Ms      float64
	WorstMs    float64
	ParallelQs int // queries the optimizer ran at degree > 1
}

// Mixed is the capstone ablation: a stream of range queries with
// selectivities drawn log-uniformly across four decades runs end to end,
// each query planned and executed cold, once under the DTT-based optimizer
// and once under the QDTT-based one. It answers the deployment question
// the paper's abstract poses — how much does queue-depth awareness matter
// over a whole workload, not just a single cherry-picked query?
func (sc Scale) Mixed(queries int) []MixedRow {
	if queries <= 0 {
		queries = 20
	}
	// Fixed query set, shared by both optimizers.
	rng := rand.New(rand.NewSource(909))
	sels := make([]float64, queries)
	for i := range sels {
		sels[i] = 1e-4 * math.Pow(10, rng.Float64()*3) // 0.01% .. 10%
	}

	run := func(name string, depthOblivious bool) MixedRow {
		s := sc.system(workload.Config{Name: "mixed", RowsPerPage: 33, Device: workload.SSD})
		model := sc.calibrated(s)
		cfg := opt.Config{
			Model:     model,
			Costs:     s.Ctx.Costs,
			Cores:     s.CPU.Capacity(),
			PoolPages: int64(s.Pool.Capacity()),
		}
		if depthOblivious {
			cfg.Model = model.DepthOne()
		}
		row := MixedRow{Optimizer: name, Queries: queries}
		times := make([]float64, 0, queries)
		for _, sel := range sels {
			lo, hi := s.RangeFor(sel)
			in := opt.Input{Table: s.Table, Index: s.Index, Pool: s.Pool, Lo: lo, Hi: hi}
			s.Pool.Flush()
			plan := opt.Choose(cfg, in)
			if plan.Degree > 1 {
				row.ParallelQs++
			}
			res := exec.Execute(s.Ctx, plan.Spec(in))
			ms := res.Runtime.Millis()
			times = append(times, ms)
			row.TotalMs += ms
			if ms > row.WorstMs {
				row.WorstMs = ms
			}
		}
		row.MeanMs = row.TotalMs / float64(queries)
		row.P95Ms = percentile(times, 0.95)
		return row
	}

	// The two optimizer runs use separate systems and separate calibrations,
	// so they are independent simulations.
	type variant struct {
		name           string
		depthOblivious bool
	}
	variants := []variant{{"old (DTT)", true}, {"new (QDTT)", false}}
	return sweep(sc.workers(), len(variants), func(i int) MixedRow {
		return run(variants[i].name, variants[i].depthOblivious)
	})
}

// percentile returns the p-quantile (0..1) of xs by sorting a copy.
func percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	cp := append([]float64(nil), xs...)
	sort.Float64s(cp)
	idx := int(p * float64(len(cp)-1))
	return cp[idx]
}
