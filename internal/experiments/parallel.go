package experiments

import (
	"runtime"

	"pioqo/internal/host"
)

// workers resolves Scale.Parallel to a host worker count. Tracing forces the
// serial sweep: all systems publish spans into the one Scale.Trace, and the
// lane order of a Chrome export should not depend on host scheduling.
func (sc Scale) workers() int {
	if sc.Trace != nil {
		return 1
	}
	switch {
	case sc.Parallel == 0:
		return runtime.GOMAXPROCS(0)
	case sc.Parallel < 1:
		return 1
	default:
		return sc.Parallel
	}
}

// sweep evaluates fn(i) for every grid point i in [0, n) on a pool of
// workers goroutines and returns the results in index order. Each fn builds
// its own sim.Env (a fully isolated simulation), so the result slice is
// byte-identical whatever the worker count — the serial run (workers == 1)
// is simply the pool of one.
func sweep[T any](workers, n int, fn func(i int) T) []T {
	out := make([]T, n)
	host.Sweep(workers, n, func(i int) { out[i] = fn(i) })
	return out
}

// flatten concatenates per-point row slices in point order.
func flatten[T any](groups [][]T) []T {
	var out []T
	for _, g := range groups {
		out = append(out, g...)
	}
	return out
}
