package experiments

import "testing"

func TestAdmissionBrokeredBeatsStaticSplit(t *testing.T) {
	rows := quick().Admission(8)
	if len(rows) != 2 {
		t.Fatalf("%d strategies, want 2", len(rows))
	}
	var static, brokered AdmissionRow
	for _, r := range rows {
		switch r.Strategy {
		case "static even split":
			static = r
		case "brokered admission":
			brokered = r
		default:
			t.Fatalf("unknown strategy %q", r.Strategy)
		}
	}
	if static.MakespanMs <= 0 || brokered.MakespanMs <= 0 {
		t.Fatalf("non-positive makespans: static %.2f, brokered %.2f",
			static.MakespanMs, brokered.MakespanMs)
	}
	// The headline claim: re-brokering freed credits beats a one-shot even
	// split on batch makespan for the skewed mix.
	if brokered.MakespanMs >= static.MakespanMs {
		t.Errorf("brokered makespan %.2fms not below static %.2fms",
			brokered.MakespanMs, static.MakespanMs)
	}
	if static.Replans != 0 {
		t.Errorf("static split re-planned %d queries, want 0", static.Replans)
	}
}
