package experiments

import (
	"fmt"
	"strings"
	"testing"

	"pioqo/internal/workload"
)

// The host-parallel sweep must be invisible in the output: every grid point
// is an isolated simulation collected in index order, so any worker count
// must yield byte-identical results. These tests render figures to the same
// TSV the pioqo-bench command prints and compare serial against parallel
// runs byte for byte.

func renderFig4(rows []Fig4Row) string {
	var b strings.Builder
	for _, r := range rows {
		fmt.Fprintf(&b, "%s\t%.6g\t%s\t%v\n", r.Config, r.Selectivity, r.Method, r.Runtime)
	}
	return b.String()
}

func renderFig8(rows []Fig8Row) string {
	var b strings.Builder
	for _, r := range rows {
		fmt.Fprintf(&b, "%s\t%.6g\t%s\t%s\t%v\t%v\t%.2f\n",
			r.Config, r.Selectivity, r.OldPlan, r.NewPlan,
			r.OldRuntime, r.NewRuntime, r.Speedup)
	}
	return b.String()
}

func renderFig12(rows []Fig12Row) string {
	var b strings.Builder
	for _, r := range rows {
		fmt.Fprintf(&b, "%d\t%d\t%.2f\t%.2f\t%.2f\n",
			r.Band, r.Depth, r.Measured, r.Interpolated, r.ErrPercent)
	}
	return b.String()
}

// serialAndParallel runs render with Parallel=1 and Parallel=4 and asserts
// byte-identical output.
func serialAndParallel(t *testing.T, name string, render func(sc Scale) string) {
	t.Helper()
	serial, parallel := quick(), quick()
	serial.Parallel = 1
	parallel.Parallel = 4
	got1, got4 := render(serial), render(parallel)
	if got1 != got4 {
		t.Errorf("%s: parallel sweep output differs from serial\nserial:\n%s\nparallel:\n%s",
			name, got1, got4)
	}
	if got1 == "" {
		t.Errorf("%s: rendered empty output", name)
	}
}

func TestFig4ParallelDeterminism(t *testing.T) {
	t.Parallel()
	serialAndParallel(t, "fig4 E33-SSD", func(sc Scale) string {
		return renderFig4(sc.Fig4(cfgFor(33, workload.SSD), []int{32}))
	})
}

func TestFig8ParallelDeterminism(t *testing.T) {
	t.Parallel()
	serialAndParallel(t, "fig8 E33-SSD", func(sc Scale) string {
		return renderFig8(sc.Fig8(cfgFor(33, workload.SSD)))
	})
}

func TestFig12ParallelDeterminism(t *testing.T) {
	t.Parallel()
	serialAndParallel(t, "fig12", func(sc Scale) string {
		return renderFig12(sc.Fig12())
	})
}
