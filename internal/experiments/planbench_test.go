package experiments

import "testing"

// TestPlanBenchQualityGates runs the planner benchmark at quick scale and
// asserts the acceptance-criteria quality aggregates (the deterministic
// half; throughput rows are host timings, so only their shape is checked).
func TestPlanBenchQualityGates(t *testing.T) {
	rep := QuickScale().PlanBench(2000)

	if rep.QualityPoints == 0 {
		t.Fatal("quality grid is empty")
	}
	if rep.AgreePct < 95 {
		t.Errorf("greedy agreed with full enumeration on %.1f%% of the grid, want >= 95%%", rep.AgreePct)
	}
	if rep.MaxRegretPct > 5 {
		t.Errorf("max greedy cost regret %.2f%%, want <= 5%%", rep.MaxRegretPct)
	}
	for _, q := range rep.Quality {
		if q.Agree && q.RegretPct != 0 {
			t.Errorf("%s sel=%g: agreeing point carries regret %.2f%%", q.Device, q.Selectivity, q.RegretPct)
		}
		if q.FellBack && !q.Agree {
			t.Errorf("%s sel=%g: fallback point should match full enumeration exactly", q.Device, q.Selectivity)
		}
	}

	modes := map[string]int{}
	for _, r := range rep.Throughput {
		modes[r.Mode]++
		if r.Plans != rep.Queries || r.PlansPerSec <= 0 || r.WallSeconds <= 0 {
			t.Errorf("%s/%s: malformed throughput row %+v", r.Device, r.Mode, r)
		}
		switch r.Mode {
		case "paramcache", "paramcache-mt", "paramcache-drift":
			if r.Hits+r.Misses+r.Fallbacks < int64(rep.Queries) {
				t.Errorf("%s/%s: cache counters lost lookups: %+v", r.Device, r.Mode, r)
			}
			if r.Hits < int64(rep.Queries)/2 {
				t.Errorf("%s/%s: parameterized stream mostly missed: %+v", r.Device, r.Mode, r)
			}
		}
	}
	for _, m := range []string{"memo-miss", "memo-replay", "paramcache", "paramcache-mt", "paramcache-drift"} {
		if modes[m] != 2 {
			t.Errorf("mode %s appears %d times, want one row per device", m, modes[m])
		}
	}

	// The drift arm must have seen epoch churn and survived it: at least one
	// revalidation or margin fallback on each device.
	for _, r := range rep.Throughput {
		if r.Mode == "paramcache-drift" && r.Revalidations == 0 && r.Fallbacks == 0 {
			t.Errorf("%s/drift: no revalidations or fallbacks despite epoch churn: %+v", r.Device, r)
		}
	}
}
