package experiments

import "testing"

func TestAdaptiveTracksBestStatic(t *testing.T) {
	t.Parallel()
	rows := quick().Adaptive()
	if want := 4 * quick().SelPoints; len(rows) != want {
		t.Fatalf("got %d rows, want %d (4 cells x %d selectivity points)", len(rows), want, quick().SelPoints)
	}
	for _, r := range rows {
		if r.AdaptiveMs <= 0 || r.BestStaticMs <= 0 {
			t.Errorf("%s/%s sel=%.2f%%: non-positive runtime %+v", r.Device, r.Skew, r.SelPct, r)
			continue
		}
		// The headline claim: the feedback controller lands within a few
		// percent of whichever static degree wins the cell, without ever
		// seeing the static grid. Allow a modest band over the 5% paper
		// target so scale-reduced quick runs stay stable.
		if r.WithinPct > 10 {
			t.Errorf("%s/%s sel=%.2f%%: adaptive %.2fms is %.1f%% over best static %.2fms (d%d)",
				r.Device, r.Skew, r.SelPct, r.AdaptiveMs, r.WithinPct, r.BestStaticMs, r.BestDegree)
		}
		// And it must never approach the worst static arm: the whole point
		// is avoiding the cliff a wrong static choice falls off.
		if r.WorstStaticMs > 2*r.BestStaticMs && r.AdaptiveMs > (r.BestStaticMs+r.WorstStaticMs)/2 {
			t.Errorf("%s/%s sel=%.2f%%: adaptive %.2fms nearer worst static %.2fms (d%d) than best %.2fms (d%d)",
				r.Device, r.Skew, r.SelPct, r.AdaptiveMs, r.WorstStaticMs, r.WorstDegree, r.BestStaticMs, r.BestDegree)
		}
	}
}
