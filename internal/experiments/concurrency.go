package experiments

import (
	"pioqo/internal/exec"
	"pioqo/internal/sim"
	"pioqo/internal/workload"
)

// ConcurrencyRow is one strategy for running a fixed batch of index-scan
// queries, with its batch makespan and mean per-query latency.
type ConcurrencyRow struct {
	Strategy   string
	Queries    int
	Degree     int // per-query parallel degree
	MakespanMs float64
	MeanLatMs  float64
	Throughput float64 // device MB/s over the batch
}

// Concurrency contrasts the ways of generating device queue depth that the
// paper discusses in §1 and §4.3: inter-query parallelism (Lee et al.),
// intra-query parallelism, and their budgeted combination. A fixed batch
// of four index-range queries runs:
//
//   - serially, each at degree 1 (no parallelism anywhere);
//   - serially, each at degree 32 (pure intra-query parallelism);
//   - concurrently, each at degree 1 (pure inter-query parallelism —
//     queue depth 4 from four independent queries);
//   - concurrently, each at degree 8 (the §4.3 budget: beneficial depth
//     split across the batch);
//   - concurrently, each at degree 32 (oversubscription: 128 wanted on a
//     device that rewards ~32).
//
// The paper's position — queue depth is what matters, and the optimizer
// should split it deliberately across concurrent queries — shows up as the
// budgeted run matching the oversubscribed one's makespan with far fewer
// workers.
func (sc Scale) Concurrency() []ConcurrencyRow {
	const nQueries = 4
	makeSpecs := func(s *workload.System, degree int) []exec.Spec {
		var specs []exec.Spec
		rows := s.Table.Rows()
		for i := 0; i < nQueries; i++ {
			lo := int64(i) * rows / nQueries
			spec := s.Spec(exec.IndexScan, degree, lo, lo+rows/100-1) // 1% each
			specs = append(specs, spec)
		}
		return specs
	}
	cfg := workload.Config{Name: "conc", RowsPerPage: 33, Device: workload.SSD}

	serial := func(name string, degree int) ConcurrencyRow {
		s := sc.system(cfg)
		var totalLat sim.Duration
		var bytes float64
		var elapsed sim.Duration
		for _, spec := range makeSpecs(s, degree) {
			res := s.Run(spec, true)
			totalLat += res.Runtime
			bytes += float64(res.IO.Bytes)
			elapsed += res.Runtime
		}
		return ConcurrencyRow{
			Strategy:   name,
			Queries:    nQueries,
			Degree:     degree,
			MakespanMs: elapsed.Millis(),
			MeanLatMs:  totalLat.Millis() / nQueries,
			Throughput: bytes / 1e6 / elapsed.Seconds(),
		}
	}
	concurrent := func(name string, degree int) ConcurrencyRow {
		s := sc.system(cfg)
		s.Pool.Flush()
		results, io := exec.ExecuteAll(s.Ctx, makeSpecs(s, degree))
		var makespan, totalLat sim.Duration
		for _, r := range results {
			totalLat += r.Runtime
			if r.Runtime > makespan {
				makespan = r.Runtime
			}
		}
		return ConcurrencyRow{
			Strategy:   name,
			Queries:    nQueries,
			Degree:     degree,
			MakespanMs: makespan.Millis(),
			MeanLatMs:  totalLat.Millis() / nQueries,
			Throughput: io.ThroughputMBps,
		}
	}

	// Each strategy runs its batch on its own fresh system, so the five
	// strategies are independent simulations and fan out across host workers.
	strategies := []func() ConcurrencyRow{
		func() ConcurrencyRow { return serial("serial, IS", 1) },
		func() ConcurrencyRow { return serial("serial, PIS32", 32) },
		func() ConcurrencyRow { return concurrent("concurrent, IS (inter-query only)", 1) },
		func() ConcurrencyRow { return concurrent("concurrent, PIS8 (budgeted)", 8) },
		func() ConcurrencyRow { return concurrent("concurrent, PIS32 (oversubscribed)", 32) },
	}
	return sweep(sc.workers(), len(strategies), func(i int) ConcurrencyRow {
		return strategies[i]()
	})
}
