package experiments

import "testing"

// TestShardExperimentShape runs the scatter-gather experiment at quick
// scale and checks every claim the BENCH harness reports on: sharding
// shrinks the skewed mix's makespan, hedging beats not hedging under
// stragglers, and quantile cuts rebalance the Zipf partitions.
func TestShardExperimentShape(t *testing.T) {
	rows := QuickScale().Shard(4)
	byArm := map[string][]ShardRow{}
	for _, r := range rows {
		byArm[r.Arm] = append(byArm[r.Arm], r)
	}

	scale := byArm["scale"]
	if len(scale) != 6 { // shards {1,2,4} x zipf {0, 1.3}
		t.Fatalf("scale arm has %d rows, want 6: %+v", len(scale), scale)
	}
	for _, r := range scale {
		if r.Shards == 1 {
			if r.Speedup != 1 || r.Fanout != 0 {
				t.Errorf("1-shard baseline row off: %+v", r)
			}
			continue
		}
		if r.Fanout != r.Shards {
			t.Errorf("hash-partitioned full scan fanout %d on %d shards", r.Fanout, r.Shards)
		}
		if r.Speedup <= 1 {
			t.Errorf("zipf=%v shards=%d: speedup %.2f, sharding did not help", r.Zipf, r.Shards, r.Speedup)
		}
	}
	// The >2x acceptance bar is for 8 shards at default scale (bench.sh);
	// at quick scale with 4 shards the skewed mix's narrow index scans
	// leave less parallel work, so the bar is lower there.
	for _, tc := range []struct {
		zipf float64
		want float64
	}{{0, 2}, {1.3, 1.5}} {
		var best float64
		for _, r := range scale {
			if r.Zipf == tc.zipf && r.Shards == 4 {
				best = r.Speedup
			}
		}
		if best < tc.want {
			t.Errorf("zipf=%v: 4-shard speedup %.2f, want >= %.1fx", tc.zipf, best, tc.want)
		}
	}

	hedged, unhedged := byArm["hedge-hedged"], byArm["hedge-unhedged"]
	if len(hedged) != 1 || len(unhedged) != 1 {
		t.Fatalf("hedge arms: %d hedged, %d unhedged rows", len(hedged), len(unhedged))
	}
	if unhedged[0].HedgesIssued != 0 || unhedged[0].Speedup != 1 {
		t.Errorf("unhedged arm off: %+v", unhedged[0])
	}
	if hedged[0].HedgesIssued == 0 {
		t.Errorf("hedged arm issued no speculative reads under stragglers: %+v", hedged[0])
	}
	if hedged[0].MakespanMs >= unhedged[0].MakespanMs {
		t.Errorf("hedging lost: %.2fms hedged vs %.2fms unhedged",
			hedged[0].MakespanMs, unhedged[0].MakespanMs)
	}

	reb := byArm["rebalance"]
	if len(reb) != 3 {
		t.Fatalf("rebalance arm has %d rows, want 3", len(reb))
	}
	var naive, balanced ShardRow
	for _, r := range reb {
		switch r.Partition {
		case "range":
			naive = r
		case "range-balanced":
			balanced = r
		}
		if r.MeanRows <= 0 || r.HotRows < r.MeanRows {
			t.Errorf("rebalance row has bad balance stats: %+v", r)
		}
	}
	if balanced.HotRows*2 > naive.HotRows {
		t.Errorf("quantile cuts hot shard %d did not halve equal-width %d",
			balanced.HotRows, naive.HotRows)
	}
}
