package experiments

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"pioqo/internal/obs"
	"pioqo/internal/workload"
)

// TestFig4ChromeTraceExport drives the pioqo-bench -trace flow: a Fig 4
// sweep with Scale.Trace set must export valid Chrome trace_event JSON with
// one span per worker of every parallel run.
func TestFig4ChromeTraceExport(t *testing.T) {
	t.Parallel()
	sc := QuickScale()
	sc.SelPoints = 2
	sc.Trace = obs.NewTrace()
	degree := 8
	rows := sc.Fig4(cfgFor(33, workload.SSD), []int{degree})
	if len(rows) == 0 {
		t.Fatal("fig4 produced no rows")
	}

	var buf bytes.Buffer
	if err := sc.Trace.WriteChrome(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Ph   string  `json:"ph"`
			Name string  `json:"name"`
			Pid  int     `json:"pid"`
			Tid  int     `json:"tid"`
			Ts   float64 `json:"ts"`
			Dur  float64 `json:"dur"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	if doc.DisplayTimeUnit == "" {
		t.Error("trace has no displayTimeUnit")
	}

	// Each parallel scan must have produced one worker span per worker, on
	// its own thread lane.
	ftsWorkers := map[string]bool{}
	pisWorkers := map[string]bool{}
	spans := 0
	for _, e := range doc.TraceEvents {
		if e.Ph != "X" {
			continue
		}
		spans++
		if e.Dur < 0 || e.Ts < 0 {
			t.Fatalf("span %q has negative ts/dur (%v/%v)", e.Name, e.Ts, e.Dur)
		}
		switch {
		case strings.HasPrefix(e.Name, "fts-w"):
			ftsWorkers[e.Name] = true
		case strings.HasPrefix(e.Name, "pis-w"):
			pisWorkers[e.Name] = true
		}
	}
	if spans == 0 {
		t.Fatal("trace has no complete (ph=X) events")
	}
	if len(ftsWorkers) != degree {
		t.Errorf("distinct PFTS worker spans = %d, want %d", len(ftsWorkers), degree)
	}
	if len(pisWorkers) != degree {
		t.Errorf("distinct PIS worker spans = %d, want %d", len(pisWorkers), degree)
	}
}
