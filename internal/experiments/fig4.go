package experiments

import (
	"fmt"
	"math"

	"pioqo/internal/exec"
	"pioqo/internal/sim"
	"pioqo/internal/workload"
)

// Fig4Row is one point of one curve in the paper's Fig. 4: the runtime of
// query Q at a selectivity using a specific access method.
type Fig4Row struct {
	Config      string
	Selectivity float64
	Method      string // IS, FTS, PISn, PFTSn
	Runtime     sim.Duration
}

// fig4Grid returns the selectivity range swept for a configuration. As in
// the paper, "the selectivity range was chosen to contain all break-even
// points for that specific experiment" — the bounds differ per rows-per-page
// and device because the crossings move by orders of magnitude.
func fig4Grid(cfg workload.Config) (lo, hi float64) {
	type key struct {
		rpp int
		dev workload.DeviceKind
	}
	grids := map[key][2]float64{
		{1, workload.HDD}:   {0.0005, 0.03},
		{1, workload.SSD}:   {0.01, 0.7},
		{33, workload.HDD}:  {0.00005, 0.003},
		{33, workload.SSD}:  {0.0005, 0.1},
		{500, workload.HDD}: {0.000005, 0.0002},
		{500, workload.SSD}: {0.00003, 0.01},
	}
	g, ok := grids[key{cfg.RowsPerPage, cfg.Device}]
	if !ok {
		return 0.0001, 0.5
	}
	return g[0], g[1]
}

// Fig4 sweeps query Q's runtime across selectivities for the IS, FTS, PIS
// and PFTS access methods on one Table 1 configuration. degrees lists the
// parallel degrees beyond 1 to include (the paper plots degree 32 and notes
// that 2–16 were omitted from the diagrams for readability).
//
// Each selectivity is one grid point with its own freshly assembled system
// (its own sim.Env), so the points are independent and fan out over the
// Scale's host worker pool.
func (sc Scale) Fig4(cfg workload.Config, degrees []int) []Fig4Row {
	if len(degrees) == 0 {
		degrees = []int{32}
	}
	allDegrees := append([]int{1}, degrees...)
	lo, hi := fig4Grid(cfg)
	sels := selGrid(lo, hi, sc.SelPoints)
	return flatten(sweep(sc.workers(), len(sels), func(i int) []Fig4Row {
		s := sc.system(cfg)
		sel := sels[i]
		plo, phi := s.RangeFor(sel)
		var rows []Fig4Row
		for _, m := range []exec.Method{exec.IndexScan, exec.FullScan} {
			for _, d := range allDegrees {
				res := s.Run(s.Spec(m, d, plo, phi), true)
				rows = append(rows, Fig4Row{
					Config:      cfg.Name,
					Selectivity: sel,
					Method:      methodLabel(m, d),
					Runtime:     res.Runtime,
				})
			}
		}
		return rows
	}))
}

func methodLabel(m exec.Method, degree int) string {
	if degree <= 1 {
		return m.String()
	}
	return fmt.Sprintf("P%s%d", m.String(), degree)
}

// Table2Row is one row of the paper's Table 2: the measured break-even
// selectivities (as fractions) between index and full scans, non-parallel
// (IS vs FTS) and parallel (PIS32 vs PFTS32), on HDD and SSD.
type Table2Row struct {
	RowsPerPage int
	NPHDD, PHDD float64
	NPSSD, PSSD float64
}

// Table2 finds the four break-even selectivities for each rows-per-page
// setting by bisecting measured runtimes, exactly as the crossings are read
// off the paper's Fig. 4 curves. Each (rows-per-page, device, degree)
// bisection builds its own systems, so the twelve of them fan out as
// independent grid points.
func (sc Scale) Table2() []Table2Row {
	rpps := []int{1, 33, 500}
	devs := []workload.DeviceKind{workload.HDD, workload.SSD}
	degrees := []int{1, 32}
	type point struct {
		rpp    int
		dev    workload.DeviceKind
		degree int
	}
	var pts []point
	for _, rpp := range rpps {
		for _, dev := range devs {
			for _, degree := range degrees {
				pts = append(pts, point{rpp, dev, degree})
			}
		}
	}
	vals := sweep(sc.workers(), len(pts), func(i int) float64 {
		p := pts[i]
		return sc.breakEven(workload.Config{
			Name:        fmt.Sprintf("E%d-%s", p.rpp, p.dev),
			RowsPerPage: p.rpp,
			Device:      p.dev,
		}, p.degree)
	})
	var out []Table2Row
	for i, rpp := range rpps {
		base := i * len(devs) * len(degrees)
		out = append(out, Table2Row{
			RowsPerPage: rpp,
			NPHDD:       vals[base+0],
			PHDD:        vals[base+1],
			NPSSD:       vals[base+2],
			PSSD:        vals[base+3],
		})
	}
	return out
}

// breakEven bisects (geometrically) for the selectivity where the index
// scan's measured runtime crosses the full scan's, both at the given
// parallel degree. The full scan's runtime does not depend on selectivity,
// so it is measured once.
func (sc Scale) breakEven(cfg workload.Config, degree int) float64 {
	s := sc.system(cfg)
	plo, phi := s.RangeFor(0.5)
	fts := s.Run(s.Spec(exec.FullScan, degree, plo, phi), true).Runtime

	isFaster := func(sel float64) bool {
		plo, phi := s.RangeFor(sel)
		return s.Run(s.Spec(exec.IndexScan, degree, plo, phi), true).Runtime < fts
	}

	lo, hi := 1e-7, 0.9
	if !isFaster(lo) {
		return lo // IS never wins
	}
	if isFaster(hi) {
		return hi // IS always wins in range
	}
	for i := 0; i < 11; i++ {
		mid := geoMid(lo, hi)
		if isFaster(mid) {
			lo = mid
		} else {
			hi = mid
		}
	}
	return geoMid(lo, hi)
}

// geoMid returns the geometric midpoint, the right bisection step for
// quantities spanning orders of magnitude.
func geoMid(lo, hi float64) float64 {
	return math.Sqrt(lo * hi)
}

// Table3Row is one block of the paper's Table 3: the I/O throughput of
// PFTS32 and FTS on HDD and SSD for one rows-per-page setting, with the
// paper's "Ratio" rows (SSD over HDD, per method).
type Table3Row struct {
	RowsPerPage int
	PFTS32HDD   float64 // MB/s
	PFTS32SSD   float64
	FTSHDD      float64
	FTSSSD      float64
	PFTS32Ratio float64 // SSD / HDD
	FTSRatio    float64
}

// Table3 measures full-scan I/O throughput at degrees 32 and 1 on all six
// Table 1 configurations and forms the paper's SSD-over-HDD ratios. Every
// (configuration, degree) measurement is one isolated grid point.
func (sc Scale) Table3() []Table3Row {
	rpps := []int{1, 33, 500}
	type point struct {
		rpp    int
		dev    workload.DeviceKind
		degree int
	}
	var pts []point
	for _, rpp := range rpps {
		for _, dev := range []workload.DeviceKind{workload.HDD, workload.SSD} {
			for _, degree := range []int{32, 1} {
				pts = append(pts, point{rpp, dev, degree})
			}
		}
	}
	vals := sweep(sc.workers(), len(pts), func(i int) float64 {
		p := pts[i]
		s := sc.system(workload.Config{Name: "t3", RowsPerPage: p.rpp, Device: p.dev})
		plo, phi := s.RangeFor(0.1)
		return s.Run(s.Spec(exec.FullScan, p.degree, plo, phi), true).IO.ThroughputMBps
	})
	var out []Table3Row
	for i, rpp := range rpps {
		base := i * 4
		r := Table3Row{
			RowsPerPage: rpp,
			PFTS32HDD:   vals[base+0],
			FTSHDD:      vals[base+1],
			PFTS32SSD:   vals[base+2],
			FTSSSD:      vals[base+3],
		}
		r.PFTS32Ratio = r.PFTS32SSD / r.PFTS32HDD
		r.FTSRatio = r.FTSSSD / r.FTSHDD
		out = append(out, r)
	}
	return out
}
