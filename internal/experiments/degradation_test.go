package experiments

import "testing"

func TestDegradationReplanBeatsNoReplan(t *testing.T) {
	rows := quick().Degradation(8)
	if len(rows) != 3 {
		t.Fatalf("%d strategies, want 3", len(rows))
	}
	var healthy, noReplan, replan DegradationRow
	for _, r := range rows {
		switch r.Strategy {
		case "healthy":
			healthy = r
		case "50% channel loss, no replan":
			noReplan = r
		case "50% channel loss, degraded replan":
			replan = r
		default:
			t.Fatalf("unknown strategy %q", r.Strategy)
		}
	}
	if healthy.MakespanMs <= 0 || noReplan.MakespanMs <= 0 || replan.MakespanMs <= 0 {
		t.Fatalf("non-positive makespans: %+v", rows)
	}
	// Degradation must actually hurt, or the comparison is vacuous.
	if noReplan.MakespanMs <= healthy.MakespanMs {
		t.Errorf("channel loss did not slow the batch: degraded %.2fms vs healthy %.2fms",
			noReplan.MakespanMs, healthy.MakespanMs)
	}
	// The headline claim: re-planning at the degraded queue-depth supply
	// beats running the healthy plans into the shrunken device.
	if replan.MakespanMs >= noReplan.MakespanMs {
		t.Errorf("replanned makespan %.2fms not below no-replan %.2fms",
			replan.MakespanMs, noReplan.MakespanMs)
	}
	// The mechanism: the no-replan run overdrives the degraded channels and
	// pays throttle penalties; the replanned run stays under the limit.
	if noReplan.Throttled == 0 {
		t.Error("no-replan run paid no throttle penalties; the fault window was inert")
	}
	if replan.Throttled >= noReplan.Throttled {
		t.Errorf("replanned run throttled %d >= no-replan %d; supply shrink had no effect",
			replan.Throttled, noReplan.Throttled)
	}
	if healthy.Throttled != 0 {
		t.Errorf("healthy run throttled %d reads, want 0", healthy.Throttled)
	}
}
