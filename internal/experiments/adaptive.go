package experiments

import (
	"fmt"

	"pioqo"
	"pioqo/internal/obs"
)

// adaptiveStaticDegrees is the static-arm grid the adaptive run competes
// against: the optimizer's own degree enumeration.
var adaptiveStaticDegrees = []int{1, 2, 4, 8, 16, 32}

// AdaptiveRow is one cell of the adaptive-vs-static grid: a (device, skew,
// selectivity) point run once with the feedback controller and once per
// static degree. Best/Worst pick over the static arms by runtime; WithinPct
// is the adaptive run's gap to the best static arm (negative when adaptive
// wins outright).
type AdaptiveRow struct {
	Device string
	Skew   string  // "uniform" or "zipf"
	SelPct float64 // measured selectivity, percent of rows

	AdaptiveMs    float64
	BestStaticMs  float64
	BestDegree    int
	WorstStaticMs float64
	WorstDegree   int
	WithinPct     float64 // 100 * (adaptive - best) / best

	Retunes    int64 // mid-flight grow + shrink decisions
	SpecIssued int64 // speculatively prefetched pages
	SpecHits   int64 // speculated pages a worker later consumed
}

// adaptiveCell is one (device, skew) corner of the grid.
type adaptiveCell struct {
	device pioqo.DeviceKind
	name   string
	skew   string
	zipf   float64
}

// Adaptive runs the feedback-controller benchmark: a range-aggregate per
// selectivity point, each executed cold on a freshly calibrated system,
// once per static degree and once adaptively. The adaptive arm never sees
// the static grid — it seeds its degree from the calibration-fit DOP model
// and retunes from live queue-depth, pool-pressure, and throughput signals
// — yet must land within a few percent of whatever static degree happens
// to win that cell.
func (sc Scale) Adaptive() []AdaptiveRow {
	const rpp = 33
	cells := []adaptiveCell{
		{pioqo.SSD, "ssd", "uniform", 0},
		{pioqo.SSD, "ssd", "zipf", 1.3},
		{pioqo.HDD, "hdd", "uniform", 0},
		{pioqo.HDD, "hdd", "zipf", 1.3},
	}
	sels := selGrid(0.002, 0.6, sc.SelPoints)
	rows := sc.Pages * rpp

	// One system per (cell, arm): arm 0 is adaptive, arm i>0 is static
	// degree adaptiveStaticDegrees[i-1]. Every system is its own sim.Env,
	// so the sweep is byte-identical at any worker count.
	arms := 1 + len(adaptiveStaticDegrees)
	type armOut struct {
		ms         []float64 // per selectivity point
		selPct     []float64
		retunes    []int64
		specIssued []int64
		specHits   []int64
	}
	runArm := func(cell adaptiveCell, arm int) armOut {
		sys := pioqo.New(pioqo.Config{
			Device:    cell.device,
			PoolPages: sc.PoolPages,
			Cores:     sc.Cores,
			Adaptive:  arm == 0,
		})
		var topts []pioqo.TableOption
		if cell.zipf > 0 {
			topts = append(topts, pioqo.WithZipfData(cell.zipf))
		} else {
			topts = append(topts, pioqo.WithSyntheticData())
		}
		tab, err := sys.CreateTable("grid", rows, rpp, topts...)
		if err != nil {
			panic(fmt.Sprintf("adaptive: %v", err))
		}
		if _, err := sys.Calibrate(pioqo.CalibrationOptions{MaxReads: sc.CalibReads}); err != nil {
			panic(fmt.Sprintf("adaptive: %v", err))
		}
		out := armOut{
			ms:         make([]float64, len(sels)),
			selPct:     make([]float64, len(sels)),
			retunes:    make([]int64, len(sels)),
			specIssued: make([]int64, len(sels)),
			specHits:   make([]int64, len(sels)),
		}
		for i, sel := range sels {
			hi := int64(sel*float64(rows)) - 1
			if hi < 0 {
				hi = 0
			}
			q := pioqo.Query{Table: tab, Low: 0, High: hi}
			opts := []pioqo.QueryOption{pioqo.Cold()}
			if arm > 0 {
				opts = append(opts, pioqo.WithStaticDegree(adaptiveStaticDegrees[arm-1]))
			}
			before := sys.MetricsSnapshot()
			res, err := sys.Execute(q, opts...)
			if err != nil {
				panic(fmt.Sprintf("adaptive: %v", err))
			}
			diff := sys.MetricsSince(before)
			out.ms[i] = float64(res.Runtime) / 1e6
			out.selPct[i] = 100 * float64(res.Rows) / float64(rows)
			out.retunes[i] = diff.Counter(obs.MetricAdaptRetunes)
			out.specIssued[i] = diff.Counter(obs.MetricAdaptSpecIssued)
			out.specHits[i] = diff.Counter(obs.MetricAdaptSpecHits)
		}
		return out
	}

	results := sweep(sc.workers(), len(cells)*arms, func(i int) armOut {
		return runArm(cells[i/arms], i%arms)
	})

	var out []AdaptiveRow
	for ci, cell := range cells {
		adaptive := results[ci*arms]
		for si := range sels {
			row := AdaptiveRow{
				Device:     cell.name,
				Skew:       cell.skew,
				SelPct:     adaptive.selPct[si],
				AdaptiveMs: adaptive.ms[si],
				Retunes:    adaptive.retunes[si],
				SpecIssued: adaptive.specIssued[si],
				SpecHits:   adaptive.specHits[si],
			}
			for ai, d := range adaptiveStaticDegrees {
				ms := results[ci*arms+1+ai].ms[si]
				if row.BestDegree == 0 || ms < row.BestStaticMs {
					row.BestStaticMs, row.BestDegree = ms, d
				}
				if ms > row.WorstStaticMs {
					row.WorstStaticMs, row.WorstDegree = ms, d
				}
			}
			if row.BestStaticMs > 0 {
				row.WithinPct = 100 * (row.AdaptiveMs - row.BestStaticMs) / row.BestStaticMs
			}
			out = append(out, row)
		}
	}
	return out
}
