package experiments

import (
	"fmt"
	"time"

	"pioqo"
)

// DegradationRow is one fault-response strategy for a concurrent batch on
// a degraded device: its makespan, per-query latency, how many queries the
// broker re-planned, and how often the injector throttled reads issued
// above the degraded channel limit.
type DegradationRow struct {
	Strategy       string
	Queries        int
	ChannelLossPct float64
	MakespanMs     float64
	MeanLatMs      float64
	Replans        int
	Throttled      int64
	Throughput     float64 // device MB/s over the batch
}

// Degradation measures graceful degradation under injected channel loss.
// A fault schedule installed after calibration removes half the SSD's
// internal parallel slots for the rest of the run; reads issued above the
// shrunken limit pay a per-read overload penalty, so queue depth the device
// can no longer absorb actively hurts instead of merely not helping.
//
// Three runs of the same skewed batch: a healthy baseline; the degraded
// device with the broker's degradation response disabled
// (Config.NoDegradationReplan), which keeps planning and admitting at the
// healthy queue-depth supply; and the degraded device with the response on,
// where the broker observes the injector's channel loss, shrinks its credit
// supply proportionally, and admissions re-plan at a depth the degraded
// device can still turn into throughput. The re-planned makespan beating
// the no-replan makespan is the headline number.
func (sc Scale) Degradation(queries int) []DegradationRow {
	if queries < 2 {
		queries = 8
	}
	const loss = 0.5
	run := func(name string, chanLoss float64, noReplan bool) DegradationRow {
		sys := pioqo.New(pioqo.Config{
			Device:              pioqo.SSD,
			PoolPages:           sc.PoolPages,
			Cores:               sc.Cores,
			NoDegradationReplan: noReplan,
		})
		rows := sc.Pages * 33
		tab, err := sys.CreateTable("deg", rows, 33, pioqo.WithSyntheticData())
		if err != nil {
			panic(fmt.Sprintf("degradation: %v", err))
		}
		if _, err := sys.Calibrate(pioqo.CalibrationOptions{MaxReads: sc.CalibReads}); err != nil {
			panic(fmt.Sprintf("degradation: %v", err))
		}
		if chanLoss > 0 {
			// Post-calibration, so the cost model reflects the healthy
			// device — the degradation is a surprise the broker must absorb,
			// not something the optimizer was calibrated around.
			sys.InjectFaults(pioqo.FaultSchedule{
				Windows: []pioqo.FaultWindow{{ChannelLoss: chanLoss}},
			})
		}
		res, err := sys.ExecuteConcurrent(skewedMix(tab, rows, queries), pioqo.Cold())
		if err != nil {
			panic(fmt.Sprintf("degradation: %v", err))
		}
		var lat time.Duration
		replans := 0
		for i, r := range res.Results {
			lat += r.Runtime
			if res.Admissions[i].Replanned {
				replans++
			}
		}
		return DegradationRow{
			Strategy:       name,
			Queries:        queries,
			ChannelLossPct: chanLoss * 100,
			MakespanMs:     float64(res.Elapsed) / 1e6,
			MeanLatMs:      float64(lat) / float64(queries) / 1e6,
			Replans:        replans,
			Throttled:      sys.FaultStats().Throttled,
			Throughput:     res.IOThroughputMBps,
		}
	}
	strategies := []func() DegradationRow{
		func() DegradationRow { return run("healthy", 0, false) },
		func() DegradationRow { return run("50% channel loss, no replan", loss, true) },
		func() DegradationRow { return run("50% channel loss, degraded replan", loss, false) },
	}
	return sweep(sc.workers(), len(strategies), func(i int) DegradationRow {
		return strategies[i]()
	})
}
