package experiments

import (
	"fmt"
	"strings"

	"pioqo"
	"pioqo/internal/obs"
)

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

// SharedScanRow is one arm of the scan-sharing A/B: the same thousand-query
// point/scan mix over a few hot tables, run with the shared circulating
// scans enabled ("sharing") or disabled ("private").
type SharedScanRow struct {
	Arm     string // "sharing" or "private"
	Queries int
	Scans   int // full-table scans in the mix; the rest are point lookups

	MakespanMs float64
	ScanP50Ms  float64 // full-scan latency percentiles (wait + exec)
	ScanP95Ms  float64
	PointP95Ms float64 // point-lookup p95

	DeviceReads      int64 // device read requests over the batch
	SharedAdmissions int   // queries admitted onto a circulating scan
	Laps             int64 // circulations completed by the shared producers

	// Speedup is the private arm's makespan over this arm's (1.0 on the
	// private arm itself).
	Speedup float64
}

// SharedScan runs the heavy-traffic scan-sharing benchmark: `queries`
// concurrent queries (default 1000) over three hot wide-row tables — a few
// percent full-table scans, the rest indexed point lookups — once with
// scan sharing on and once off. With sharing, every eligible full scan
// attaches to its table's circulating producer: the device moves roughly
// one lap per table instead of one private copy per scan, and the scans
// are admitted immediately with zero queue-depth credits instead of
// waiting behind the point lookups for device capacity.
func (sc Scale) SharedScan(queries int) []SharedScanRow {
	if queries < 10 {
		queries = 1000
	}
	const tables = 3
	const rpp = 4 // wide rows: little CPU per page, so scans are I/O-shaped
	// The spindle's media rate (~36µs/page) dwarfs per-page CPU (~11µs),
	// which makes scan traffic device-bound — the regime the paper's shared
	// circulation targets. An SSD at this scale is CPU-bound instead, and
	// sharing the device work there buys nothing.
	scans := queries / 20 // 5% reporting scans riding on the point traffic
	if scans < tables {
		scans = tables
	}
	points := queries - scans

	run := func(arm string, off bool) SharedScanRow {
		sys := pioqo.New(pioqo.Config{
			Device:        pioqo.HDD,
			PoolPages:     sc.PoolPages,
			Cores:         sc.Cores,
			NoScanSharing: off,
		})
		rows := sc.Pages * rpp
		tabs := make([]*pioqo.Table, tables)
		for i := range tabs {
			tab, err := sys.CreateTable(fmt.Sprintf("hot%d", i), rows, rpp,
				pioqo.WithSyntheticData())
			if err != nil {
				panic(fmt.Sprintf("sharedscan: %v", err))
			}
			tabs[i] = tab
		}
		if _, err := sys.Calibrate(pioqo.CalibrationOptions{MaxReads: sc.CalibReads}); err != nil {
			panic(fmt.Sprintf("sharedscan: %v", err))
		}

		// Points first, scans last: by the time a scan plans, the table's
		// whole in-flight population has registered interest, so it prices
		// the attach path against the real rider count.
		qs := make([]pioqo.Query, 0, queries)
		// Point lookups hammer a hot 1% key stripe — the OLTP side of the
		// classic mixed workload. The stripe's leaf pages fit in the pool,
		// so after the first touches the points are buffer hits and the
		// batch's device traffic is the scans'.
		hot := rows / 100
		for i := 0; i < points; i++ {
			tab := tabs[i%tables]
			key := (int64(i)*7919 + 13) % hot
			qs = append(qs, pioqo.Query{Table: tab, Low: key, High: key})
		}
		for i := 0; i < scans; i++ {
			tab := tabs[i%tables]
			qs = append(qs, pioqo.Query{Table: tab, Low: 0, High: rows - 1})
		}

		before := sys.MetricsSnapshot()
		res, err := sys.ExecuteConcurrent(qs, pioqo.Cold())
		if err != nil {
			panic(fmt.Sprintf("sharedscan: %v", err))
		}
		diff := sys.MetricsSince(before)
		rep := res.SLOReport(qs)

		row := SharedScanRow{
			Arm:         arm,
			Queries:     queries,
			Scans:       scans,
			MakespanMs:  float64(rep.Makespan) / 1e6,
			DeviceReads: diff.Counter(obs.MetricDeviceRequests),
			Laps:        diff.Counter(obs.MetricScanShareLaps),
			Speedup:     1,
		}
		// Full scans have the 100%-selectivity shape; report the worst
		// per-shape percentile across the hot tables.
		for _, sh := range rep.Shapes {
			p50 := float64(sh.P50) / 1e6
			p95 := float64(sh.P95) / 1e6
			if strings.Contains(sh.Shape, " 100%") {
				row.ScanP50Ms = maxf(row.ScanP50Ms, p50)
				row.ScanP95Ms = maxf(row.ScanP95Ms, p95)
			} else {
				row.PointP95Ms = maxf(row.PointP95Ms, p95)
			}
		}
		for i := points; i < len(res.Admissions); i++ {
			if res.Admissions[i].Shared {
				row.SharedAdmissions++
			}
		}
		return row
	}

	private := run("private", true)
	sharing := run("sharing", false)
	if sharing.MakespanMs > 0 {
		sharing.Speedup = private.MakespanMs / sharing.MakespanMs
	}
	return []SharedScanRow{sharing, private}
}
