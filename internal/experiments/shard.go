package experiments

import (
	"fmt"

	"pioqo"
)

// ShardRow is one arm/point of the sharded scatter-gather experiment.
type ShardRow struct {
	// Arm names the sweep the row belongs to: "scale" (makespan vs shard
	// count across the skew grid), "hedge" (straggler hedging A/B), or
	// "rebalance" (partition-layout sweep on skewed keys).
	Arm       string
	Shards    int
	Partition string
	Zipf      float64

	// Plan is the chosen plan of the mix's full-range scan, fanout
	// included.
	Plan   string
	Fanout int

	// MakespanMs is the summed runtime of the query mix (queries run
	// back-to-back, each cold); Speedup is the 1-shard (or unhedged)
	// baseline divided by this row's makespan.
	MakespanMs float64
	Speedup    float64

	// HedgesIssued/HedgeWins report straggler-hedging activity (hedge arm).
	HedgesIssued int64
	HedgeWins    int64

	// HotRows/MeanRows expose the partition balance: the heaviest shard's
	// row count against the even-split mean (rebalance arm).
	HotRows  int64
	MeanRows int64
}

// shardSystem builds and calibrates a cluster over one partitioned table.
func (sc Scale) shardSystem(shards int, kind pioqo.PartitionKind, zipf float64, noHedge bool) (*pioqo.System, *pioqo.Table) {
	sys := pioqo.New(pioqo.Config{
		Device:    pioqo.SSD,
		PoolPages: sc.PoolPages,
		Cores:     sc.Cores,
		Shards:    shards,
		Partition: kind,
		NoHedge:   noHedge,
	})
	rows := sc.Pages * 33
	var opts []pioqo.TableOption
	if zipf > 0 {
		opts = append(opts, pioqo.WithZipfData(zipf))
	}
	tab, err := sys.CreateTable("shard", rows, 33, opts...)
	if err != nil {
		panic(fmt.Sprintf("shard: %v", err))
	}
	if _, err := sys.Calibrate(pioqo.CalibrationOptions{MaxReads: sc.CalibReads}); err != nil {
		panic(fmt.Sprintf("shard: %v", err))
	}
	return sys, tab
}

// shardMix is the experiment's skewed query mix: one full-range scan plus
// progressively narrower low-key ranges — which on a Zipf table is where
// the row mass lives, so narrow key ranges are still heavy scans.
func shardMix(tab *pioqo.Table, rows int64) []pioqo.Query {
	return []pioqo.Query{
		{Table: tab, Low: 0, High: rows - 1},
		{Table: tab, Low: 0, High: rows/4 - 1},
		{Table: tab, Low: 0, High: rows/20 - 1},
		{Table: tab, Low: rows / 2, High: rows/2 + rows/100},
	}
}

// runShardMix executes the mix back-to-back, each query cold, and reports
// the summed makespan plus the full-range scan's plan.
func runShardMix(sys *pioqo.System, tab *pioqo.Table, rows int64) (float64, string, int) {
	var total float64
	var plan string
	var fanout int
	for i, q := range shardMix(tab, rows) {
		res, err := sys.Execute(q, pioqo.Cold())
		if err != nil {
			panic(fmt.Sprintf("shard: %v", err))
		}
		total += float64(res.Runtime) / 1e6
		if i == 0 {
			plan, fanout = res.Plan.String(), res.Plan.Fanout
		}
	}
	return total, plan, fanout
}

// Shard runs the scatter-gather experiment: the shard-count scaling grid
// over uniform and Zipf data (hash partitioning), the straggler-hedging
// A/B, and the range-partition rebalance sweep. maxShards caps the scaling
// grid (<= 1 means 8).
func (sc Scale) Shard(maxShards int) []ShardRow {
	if maxShards <= 1 {
		maxShards = 8
	}
	var out []ShardRow
	rows := sc.Pages * 33

	// Scale arm: makespan vs shard count, uniform and skewed.
	for _, zipf := range []float64{0, 1.3} {
		var base float64
		for shards := 1; shards <= maxShards; shards *= 2 {
			sys, tab := sc.shardSystem(shards, pioqo.PartitionHash, zipf, false)
			ms, plan, fanout := runShardMix(sys, tab, rows)
			if shards == 1 {
				base = ms
			}
			out = append(out, ShardRow{
				Arm: "scale", Shards: shards, Partition: pioqo.PartitionHash.String(),
				Zipf: zipf, Plan: plan, Fanout: fanout,
				MakespanMs: ms, Speedup: base / ms,
			})
		}
	}

	// Hedge arm: same cluster and mix under injected stragglers, hedging
	// on vs off. Each node draws stragglers independently, so the slowest
	// shard sets the gather's makespan — exactly what hedging attacks.
	stragglers := pioqo.FaultSchedule{Windows: []pioqo.FaultWindow{{
		StragglerRate:    0.05,
		StragglerLatency: 20e6, // 20ms
	}}}
	var unhedged float64
	for _, noHedge := range []bool{true, false} {
		sys, tab := sc.shardSystem(maxShards, pioqo.PartitionHash, 0, noHedge)
		sys.InjectFaults(stragglers)
		ms, plan, fanout := runShardMix(sys, tab, rows)
		if noHedge {
			unhedged = ms
		}
		hs := sys.HedgeStats()
		arm := "hedged"
		if noHedge {
			arm = "unhedged"
		}
		out = append(out, ShardRow{
			Arm: "hedge-" + arm, Shards: maxShards, Partition: pioqo.PartitionHash.String(),
			Plan: plan, Fanout: fanout, MakespanMs: ms, Speedup: unhedged / ms,
			HedgesIssued: hs.Issued, HedgeWins: hs.Wins,
		})
	}

	// Rebalance arm: skewed keys under the three partition layouts. The
	// equal-width range split piles the Zipf mass onto one shard; the
	// quantile cuts spread it, and hash is the skew-oblivious reference.
	for _, kind := range []pioqo.PartitionKind{pioqo.PartitionRange, pioqo.PartitionRangeBalanced, pioqo.PartitionHash} {
		sys, tab := sc.shardSystem(maxShards, kind, 1.3, false)
		ms, plan, fanout := runShardMix(sys, tab, rows)
		var hot, total int64
		shardRows := tab.ShardRows()
		for _, r := range shardRows {
			total += r
			if r > hot {
				hot = r
			}
		}
		out = append(out, ShardRow{
			Arm: "rebalance", Shards: maxShards, Partition: kind.String(), Zipf: 1.3,
			Plan: plan, Fanout: fanout, MakespanMs: ms,
			HotRows: hot, MeanRows: total / int64(len(shardRows)),
		})
	}
	return out
}
