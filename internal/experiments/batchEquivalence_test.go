package experiments

// Batch-accounting equivalence gate (PR 3). The executor charges CPU to the
// simulator in page-batch quanta through exec's cpuBudget instead of one
// Proc.Use per row. The debt/settle discipline promises:
//
//   - degree-1 queries: byte-identical Results AND byte-identical virtual
//     completion times (debt is always settled before the next device
//     interaction, so every I/O is issued at exactly the row-at-a-time
//     schedule's virtual instant);
//   - contended (degree > 1) queries: identical answers, virtual times
//     within 1% of the row-at-a-time schedule (merged CPU grants coarsen
//     the FIFO interleaving on the CPU resource by at most one batch
//     quantum), and unchanged optimizer plan choices.
//
// The goldens in testdata/batch_*.golden were captured from the
// row-at-a-time implementation immediately before the batch kernel landed
// (same seeds, same scales). Re-run with -update-batch-goldens only when a
// deliberate change is documented here.
//
// Golden deltas (re-baselines), each documented per the PR-3 rule:
//   - none so far: the batch kernel reproduced every degree-1 golden
//     byte-for-byte and every contended golden within the 1% budget.

import (
	"flag"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"

	"pioqo/internal/exec"
	"pioqo/internal/sim"
	"pioqo/internal/workload"
)

var updateBatchGoldens = flag.Bool("update-batch-goldens", false,
	"rewrite testdata/batch_*.golden from the current implementation")

// batchTolerance is the allowed relative virtual-time drift for contended
// (degree > 1) executions under batch accounting.
const batchTolerance = 0.01

func goldenPath(name string) string { return filepath.Join("testdata", name) }

func readGolden(t *testing.T, name string) string {
	t.Helper()
	b, err := os.ReadFile(goldenPath(name))
	if err != nil {
		t.Fatalf("reading golden %s (run with -update-batch-goldens to create): %v", name, err)
	}
	return string(b)
}

func writeGolden(t *testing.T, name, content string) {
	t.Helper()
	if err := os.MkdirAll("testdata", 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(goldenPath(name), []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote %s", goldenPath(name))
}

// batchSystem assembles the equivalence battery's world: synthetic T33 on
// the given device, sized like QuickScale but fixed here so the goldens do
// not move if the shared scale constants are retuned.
func batchSystem(dev workload.DeviceKind) *workload.System {
	return workload.New(workload.Options{
		Device:      dev,
		Rows:        66_000,
		RowsPerPage: 33,
		PoolPages:   256,
		Cores:       8,
		Synthetic:   true,
	})
}

// batchCase is one goldened execution. Serial cases (degree 1 everywhere)
// must match runtime byte-for-byte; contended ones within batchTolerance.
type batchCase struct {
	name      string
	contended bool
	run       func() string // renders "value found rows runtime_ns [extra...]"
}

func renderResult(r exec.Result) string {
	return fmt.Sprintf("%d %v %d %d", r.Value, r.Found, r.RowsMatched, int64(r.Runtime))
}

func renderJoin(r exec.JoinResult) string {
	return fmt.Sprintf("%d %v %d %d build=%d probe=%d pairs=%d",
		r.Value, r.Found, r.RowsMatched, int64(r.Runtime), r.BuildRows, r.ProbeRows, r.Pairs)
}

func scanCase(name string, dev workload.DeviceKind, method exec.Method, degree, prefetch int, sel float64, contended bool) batchCase {
	return batchCase{name: name, contended: contended, run: func() string {
		s := batchSystem(dev)
		lo, hi := s.RangeFor(sel)
		spec := s.Spec(method, degree, lo, hi)
		spec.PrefetchPerWorker = prefetch
		return renderResult(s.Run(spec, true))
	}}
}

func batchCases() []batchCase {
	cases := []batchCase{
		// Serial access methods, SSD: exact equivalence required.
		scanCase("ssd-fts-d1", workload.SSD, exec.FullScan, 1, 0, 0.01, false),
		scanCase("ssd-is-d1", workload.SSD, exec.IndexScan, 1, 0, 0.001, false),
		scanCase("ssd-is-d1-pf8", workload.SSD, exec.IndexScan, 1, 8, 0.001, false),
		scanCase("ssd-sis-d1", workload.SSD, exec.SortedIndexScan, 1, 0, 0.001, false),
		scanCase("ssd-sis-d1-pf4", workload.SSD, exec.SortedIndexScan, 1, 4, 0.001, false),
		// Serial on HDD: the elevator makes issue timing visible in seeks.
		scanCase("hdd-fts-d1", workload.HDD, exec.FullScan, 1, 0, 0.01, false),
		scanCase("hdd-is-d1", workload.HDD, exec.IndexScan, 1, 0, 0.0005, false),
		// Contended: answers identical, virtual time within 1%.
		scanCase("ssd-pfts-d8", workload.SSD, exec.FullScan, 8, 0, 0.01, true),
		scanCase("ssd-pis-d32", workload.SSD, exec.IndexScan, 32, 0, 0.001, true),
		scanCase("ssd-pis-d8-pf8", workload.SSD, exec.IndexScan, 8, 8, 0.001, true),
		scanCase("ssd-sis-d8", workload.SSD, exec.SortedIndexScan, 8, 0, 0.001, true),
		scanCase("hdd-pfts-d8", workload.HDD, exec.FullScan, 8, 0, 0.01, true),

		// Warm rerun: second execution over a resident pool (exercises the
		// hit-fetch path, where batch accounting merges the most).
		{name: "ssd-fts-d1-warm", run: func() string {
			s := batchSystem(workload.SSD)
			lo, hi := s.RangeFor(0.01)
			s.Run(s.Spec(exec.FullScan, 1, lo, hi), true)
			return renderResult(exec.Execute(s.Ctx, s.Spec(exec.FullScan, 1, lo, hi)))
		}},
		{name: "ssd-is-d1-warm", run: func() string {
			s := batchSystem(workload.SSD)
			lo, hi := s.RangeFor(0.002)
			s.Run(s.Spec(exec.IndexScan, 1, lo, hi), true)
			return renderResult(exec.Execute(s.Ctx, s.Spec(exec.IndexScan, 1, lo, hi)))
		}},

		// Aggregate variants through the batched deliver path.
		{name: "ssd-fts-d1-count", run: func() string {
			s := batchSystem(workload.SSD)
			lo, hi := s.RangeFor(0.01)
			spec := s.Spec(exec.FullScan, 1, lo, hi)
			spec.Agg = exec.AggCount
			return renderResult(s.Run(spec, true))
		}},
		{name: "ssd-fts-d1-sum", run: func() string {
			s := batchSystem(workload.SSD)
			lo, hi := s.RangeFor(0.01)
			spec := s.Spec(exec.FullScan, 1, lo, hi)
			spec.Agg = exec.AggSum
			return renderResult(s.Run(spec, true))
		}},

		// Composite operators.
		{name: "ssd-groupby-is-d1", run: func() string {
			s := batchSystem(workload.SSD)
			lo, hi := s.RangeFor(0.002)
			s.Pool.Flush()
			res := exec.ExecuteGroupBy(s.Ctx, exec.GroupBySpec{
				Scan:       s.Spec(exec.IndexScan, 1, lo, hi),
				GroupWidth: 16,
				Agg:        exec.AggMax,
			})
			return fmt.Sprintf("groups=%d rows=%d runtime=%d sig=%d",
				len(res.Groups), res.Rows, int64(res.Runtime), groupSig(res))
		}},
		{name: "ssd-groupby-pfts-d8", contended: true, run: func() string {
			s := batchSystem(workload.SSD)
			lo, hi := s.RangeFor(0.05)
			s.Pool.Flush()
			res := exec.ExecuteGroupBy(s.Ctx, exec.GroupBySpec{
				Scan:       s.Spec(exec.FullScan, 8, lo, hi),
				GroupWidth: 64,
				Agg:        exec.AggSum,
			})
			return fmt.Sprintf("groups=%d rows=%d runtime=%d sig=%d",
				len(res.Groups), res.Rows, int64(res.Runtime), groupSig(res))
		}},
		{name: "ssd-hashjoin-d1", run: func() string {
			s := batchSystem(workload.SSD)
			lo, hi := s.RangeFor(0.001)
			s.Pool.Flush()
			res := exec.ExecuteJoin(s.Ctx, exec.JoinSpec{
				Build: s.Spec(exec.IndexScan, 1, lo, hi),
				Probe: s.Spec(exec.FullScan, 1, 0, s.Table.KeyDomain()-1),
				Agg:   exec.AggMax,
			})
			return renderJoin(res)
		}},
		{name: "ssd-hashjoin-d8", contended: true, run: func() string {
			s := batchSystem(workload.SSD)
			lo, hi := s.RangeFor(0.001)
			s.Pool.Flush()
			res := exec.ExecuteJoin(s.Ctx, exec.JoinSpec{
				Build: s.Spec(exec.IndexScan, 8, lo, hi),
				Probe: s.Spec(exec.FullScan, 8, 0, s.Table.KeyDomain()-1),
				Agg:   exec.AggMax,
			})
			return renderJoin(res)
		}},
		{name: "ssd-nljoin-d1", run: func() string {
			s := batchSystem(workload.SSD)
			lo, hi := s.RangeFor(0.0005)
			s.Pool.Flush()
			res := exec.ExecuteJoin(s.Ctx, exec.JoinSpec{
				Method: exec.IndexNLJoin,
				Build:  s.Spec(exec.IndexScan, 1, lo, hi),
				Probe:  s.Spec(exec.IndexScan, 1, 0, s.Table.KeyDomain()-1),
				Agg:    exec.AggMax,
			})
			return renderJoin(res)
		}},
		{name: "ssd-nljoin-d4", contended: true, run: func() string {
			s := batchSystem(workload.SSD)
			lo, hi := s.RangeFor(0.0005)
			s.Pool.Flush()
			res := exec.ExecuteJoin(s.Ctx, exec.JoinSpec{
				Method: exec.IndexNLJoin,
				Build:  s.Spec(exec.IndexScan, 1, lo, hi),
				Probe:  s.Spec(exec.IndexScan, 4, 0, s.Table.KeyDomain()-1),
				Agg:    exec.AggMax,
			})
			return renderJoin(res)
		}},
	}
	return cases
}

// groupSig folds a group-by result into one order-sensitive signature.
func groupSig(res exec.GroupByResult) int64 {
	var sig int64 = 1469598103934665603
	for _, g := range res.Groups {
		for _, v := range []int64{g.Key, g.Value, g.Rows} {
			sig = (sig ^ v) * 1099511628211
		}
	}
	return sig
}

func renderBatchCases() string {
	var b strings.Builder
	for _, c := range batchCases() {
		kind := "serial"
		if c.contended {
			kind = "contended"
		}
		fmt.Fprintf(&b, "%s\t%s\t%s\n", c.name, kind, c.run())
	}
	return b.String()
}

// TestBatchAccountingQueryEquivalence drives the operator battery and holds
// it against the row-at-a-time goldens: serial lines byte-for-byte
// (including the virtual runtime), contended lines with answers exact and
// runtime within batchTolerance.
func TestBatchAccountingQueryEquivalence(t *testing.T) {
	t.Parallel()
	got := renderBatchCases()
	if *updateBatchGoldens {
		writeGolden(t, "batch_queries.golden", got)
		return
	}
	want := readGolden(t, "batch_queries.golden")
	compareBatchLines(t, "batch_queries", want, got, isContendedLine, queryRuntimes)
}

// isContendedLine reports whether a battery golden line is from a
// contended execution (field 2).
func isContendedLine(line string) bool {
	f := strings.Split(line, "\t")
	return len(f) > 1 && f[1] == "contended"
}

// queryRuntimes extracts the virtual-time fields of a battery line, and the
// line with those fields blanked (the "answer" part that must stay exact).
func queryRuntimes(line string) (times []int64, rest string) {
	fields := strings.Fields(line)
	var restFields []string
	for _, f := range fields {
		v := f
		if i := strings.IndexByte(f, '='); i >= 0 && strings.HasPrefix(f, "runtime=") {
			v = f[i+1:]
		} else if i >= 0 {
			restFields = append(restFields, f)
			continue
		}
		// A bare integer in runtime position: battery lines put the runtime
		// as the 4th whitespace field ("value found rows runtime") or as
		// runtime=N; everything else is answer material.
		if n, err := strconv.ParseInt(v, 10, 64); err == nil && (len(restFields) == 5 || strings.HasPrefix(f, "runtime=")) {
			times = append(times, n)
			restFields = append(restFields, "<t>")
			continue
		}
		restFields = append(restFields, f)
	}
	return times, strings.Join(restFields, " ")
}

// compareBatchLines diffs two golden renderings line by line. Serial lines
// must be identical; contended lines must be identical after blanking the
// runtime fields, with each runtime within batchTolerance of the golden.
func compareBatchLines(t *testing.T, name, want, got string,
	contended func(string) bool, runtimes func(string) ([]int64, string)) {
	t.Helper()
	wantLines := strings.Split(strings.TrimRight(want, "\n"), "\n")
	gotLines := strings.Split(strings.TrimRight(got, "\n"), "\n")
	if len(wantLines) != len(gotLines) {
		t.Fatalf("%s: %d golden lines vs %d current", name, len(wantLines), len(gotLines))
	}
	for i := range wantLines {
		w, g := wantLines[i], gotLines[i]
		if w == g {
			continue
		}
		if !contended(w) {
			t.Errorf("%s line %d: serial execution drifted\n golden: %s\ncurrent: %s", name, i+1, w, g)
			continue
		}
		wt, wr := runtimes(w)
		gt, gr := runtimes(g)
		if wr != gr || len(wt) != len(gt) {
			t.Errorf("%s line %d: contended answer drifted (only virtual time may move)\n golden: %s\ncurrent: %s", name, i+1, w, g)
			continue
		}
		for j := range wt {
			if drift := relDrift(wt[j], gt[j]); drift > batchTolerance {
				t.Errorf("%s line %d: virtual time drift %.3f%% exceeds %.0f%%\n golden: %s\ncurrent: %s",
					name, i+1, drift*100, batchTolerance*100, w, g)
			}
		}
	}
}

func relDrift(a, b int64) float64 {
	if a == 0 {
		if b == 0 {
			return 0
		}
		return math.Inf(1)
	}
	return math.Abs(float64(b)-float64(a)) / math.Abs(float64(a))
}

// --- figure-level goldens -------------------------------------------------

// TestBatchAccountingFig4 holds fig4 (E33-SSD, quick scale, serial sweep)
// against its pre-batch golden: IS/FTS rows (degree 1) byte-identical,
// PIS32/PFTS32 rows within the contended tolerance.
func TestBatchAccountingFig4(t *testing.T) {
	t.Parallel()
	sc := quick()
	sc.Parallel = 1
	got := renderFig4(sc.Fig4(cfgFor(33, workload.SSD), []int{32}))
	if *updateBatchGoldens {
		writeGolden(t, "batch_fig4.golden", got)
		return
	}
	want := readGolden(t, "batch_fig4.golden")
	compareBatchLines(t, "batch_fig4", want, got,
		func(line string) bool {
			f := strings.Split(line, "\t")
			return len(f) > 2 && strings.HasPrefix(f[2], "P") // PIS32 / PFTS32
		},
		func(line string) ([]int64, string) {
			f := strings.Split(line, "\t")
			if len(f) < 4 {
				return nil, line
			}
			d, err := parseSimDuration(f[3])
			if err != nil {
				return nil, line
			}
			f[3] = "<t>"
			return []int64{d}, strings.Join(f, "\t")
		})
}

// TestBatchAccountingFig8 holds fig8 (E33-SSD, quick scale, serial sweep)
// against its pre-batch golden: old/new plan choices must be identical at
// every selectivity; runtimes (any degree) within the contended tolerance,
// and serial-plan runtimes exactly equal.
func TestBatchAccountingFig8(t *testing.T) {
	t.Parallel()
	sc := quick()
	sc.Parallel = 1
	got := renderFig8(sc.Fig8(cfgFor(33, workload.SSD)))
	if *updateBatchGoldens {
		writeGolden(t, "batch_fig8.golden", got)
		return
	}
	want := readGolden(t, "batch_fig8.golden")
	compareBatchLines(t, "batch_fig8", want, got,
		func(line string) bool {
			f := strings.Split(line, "\t")
			// Serial only when both executed plans are non-parallel.
			return len(f) > 3 && (strings.HasPrefix(f[2], "P") || strings.HasPrefix(f[3], "P"))
		},
		func(line string) ([]int64, string) {
			f := strings.Split(line, "\t")
			if len(f) < 7 {
				return nil, line
			}
			oldRt, err1 := parseSimDuration(f[4])
			newRt, err2 := parseSimDuration(f[5])
			if err1 != nil || err2 != nil {
				return nil, line
			}
			f[4], f[5], f[6] = "<t>", "<t>", "<t>" // speedup follows the runtimes
			return []int64{oldRt, newRt}, strings.Join(f, "\t")
		})
}

// TestBatchAccountingFig12 holds fig12 (calibration-grid interpolation)
// against its golden byte-for-byte: calibration drives the device directly,
// without executor CPU accounting, so batch accounting must be invisible.
func TestBatchAccountingFig12(t *testing.T) {
	t.Parallel()
	sc := quick()
	sc.Parallel = 1
	got := renderFig12(sc.Fig12())
	if *updateBatchGoldens {
		writeGolden(t, "batch_fig12.golden", got)
		return
	}
	if want := readGolden(t, "batch_fig12.golden"); want != got {
		t.Errorf("batch_fig12: calibration output drifted\n golden:\n%s\ncurrent:\n%s", want, got)
	}
}

// parseSimDuration inverts sim.Duration.String for golden comparison.
func parseSimDuration(s string) (int64, error) {
	switch {
	case strings.HasSuffix(s, "ns"):
		v, err := strconv.ParseInt(strings.TrimSuffix(s, "ns"), 10, 64)
		return v, err
	case strings.HasSuffix(s, "us"):
		v, err := strconv.ParseFloat(strings.TrimSuffix(s, "us"), 64)
		return int64(v * float64(sim.Microsecond)), err
	case strings.HasSuffix(s, "ms"):
		v, err := strconv.ParseFloat(strings.TrimSuffix(s, "ms"), 64)
		return int64(v * float64(sim.Millisecond)), err
	case strings.HasSuffix(s, "s"):
		v, err := strconv.ParseFloat(strings.TrimSuffix(s, "s"), 64)
		return int64(v * float64(sim.Second)), err
	}
	return 0, fmt.Errorf("unparseable duration %q", s)
}
