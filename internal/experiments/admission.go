package experiments

import (
	"fmt"

	"pioqo"
)

// AdmissionRow is one budgeting strategy for a skewed concurrent batch,
// with its makespan, per-query latency, admission-queue wait, and the
// number of queries re-planned under a re-brokered budget.
type AdmissionRow struct {
	Strategy   string
	Queries    int
	MakespanMs float64
	MeanLatMs  float64
	MeanWaitMs float64
	Replans    int
	Throughput float64 // device MB/s over the batch
}

// Admission contrasts the pre-broker static even queue-budget split with
// the resource broker's dynamic admission control (§4.3 plus the ROADMAP's
// admission-control north star) on a skewed batch: one query scans a
// quarter of the key domain while the rest scan small disjoint slivers.
//
// Under the static split every query — including the large one — is
// planned at total/n queue depth for its whole life, long after the small
// queries have finished. The broker instead admits a few well-budgeted
// queries at a time and re-brokers credits as queries complete and worker
// fleets wind down, so late admissions (and the survivors' stragglers) run
// at the depth actually available; the batch makespan is the headline
// number the re-budgeting must win on.
func (sc Scale) Admission(queries int) []AdmissionRow {
	if queries < 2 {
		queries = 8
	}
	run := func(name string, opts ...pioqo.QueryOption) AdmissionRow {
		sys := pioqo.New(pioqo.Config{
			Device:    pioqo.SSD,
			PoolPages: sc.PoolPages,
			Cores:     sc.Cores,
		})
		rows := sc.Pages * 33
		tab, err := sys.CreateTable("adm", rows, 33, pioqo.WithSyntheticData())
		if err != nil {
			panic(fmt.Sprintf("admission: %v", err))
		}
		if _, err := sys.Calibrate(pioqo.CalibrationOptions{MaxReads: sc.CalibReads}); err != nil {
			panic(fmt.Sprintf("admission: %v", err))
		}
		res, err := sys.ExecuteConcurrent(skewedMix(tab, rows, queries),
			append(opts, pioqo.Cold())...)
		if err != nil {
			panic(fmt.Sprintf("admission: %v", err))
		}
		var lat, wait float64
		replans := 0
		for i, r := range res.Results {
			lat += float64(r.Runtime)
			wait += float64(res.Admissions[i].Wait)
			if res.Admissions[i].Replanned {
				replans++
			}
		}
		n := float64(queries)
		return AdmissionRow{
			Strategy:   name,
			Queries:    queries,
			MakespanMs: float64(res.Elapsed) / 1e6,
			MeanLatMs:  lat / n / 1e6,
			MeanWaitMs: wait / n / 1e6,
			Replans:    replans,
			Throughput: res.IOThroughputMBps,
		}
	}
	strategies := []func() AdmissionRow{
		func() AdmissionRow { return run("static even split", pioqo.StaticSplit()) },
		func() AdmissionRow { return run("brokered admission") },
	}
	return sweep(sc.workers(), len(strategies), func(i int) AdmissionRow {
		return strategies[i]()
	})
}

// skewedMix builds the admission batch over a synthetic table whose C2
// domain is [0, rows): one mid-selectivity scan (~0.25%) and n-1 small
// disjoint scans (~0.05% each). The mid query sits right in the regime
// §4.3 is about: a parallel index scan beats the full scan only when the
// query's queue-depth budget is large enough, so the broker's generous
// admission grant flips its plan to the fast index scan while the static
// even split prices the same scan above the full-scan fallback.
func skewedMix(tab *pioqo.Table, rows int64, n int) []pioqo.Query {
	qs := make([]pioqo.Query, n)
	qs[0] = pioqo.Query{Table: tab, Low: 0, High: rows/400 - 1}
	small := rows / 2000
	if small < 1 {
		small = 1
	}
	for i := 1; i < n; i++ {
		lo := rows/400 + int64(i)*(rows-rows/400)/int64(n)
		qs[i] = pioqo.Query{Table: tab, Low: lo, High: lo + small - 1}
	}
	return qs
}
