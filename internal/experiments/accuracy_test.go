package experiments

import (
	"testing"

	"pioqo/internal/workload"
)

func TestAccuracyQDTTEstimatesTrackMeasurements(t *testing.T) {
	t.Parallel()
	rows := quick().Accuracy(cfgFor(33, workload.SSD))
	if len(rows) == 0 {
		t.Fatal("no rows")
	}
	// A cost model never matches measured runtimes exactly; what makes it
	// usable is staying within a modest constant band. Require the bulk of
	// estimates within 4x either way and none beyond 10x.
	outside4x, outside10x := 0, 0
	for _, r := range rows {
		if r.Ratio > 4 || r.Ratio < 0.25 {
			outside4x++
		}
		if r.Ratio > 10 || r.Ratio < 0.1 {
			outside10x++
			t.Logf("gross misestimate: %+v", r)
		}
	}
	if frac := float64(outside4x) / float64(len(rows)); frac > 0.3 {
		t.Errorf("%.0f%% of estimates outside 4x band", frac*100)
	}
	if outside10x > 0 {
		t.Errorf("%d estimates off by more than 10x", outside10x)
	}
}

func TestConcurrencyStrategies(t *testing.T) {
	t.Parallel()
	rows := quick().Concurrency()
	byName := map[string]ConcurrencyRow{}
	for _, r := range rows {
		byName[r.Strategy] = r
	}
	serialIS := byName["serial, IS"]
	interOnly := byName["concurrent, IS (inter-query only)"]
	budgeted := byName["concurrent, PIS8 (budgeted)"]
	over := byName["concurrent, PIS32 (oversubscribed)"]

	// Inter-query parallelism alone gives roughly the batch-size speedup.
	if gain := serialIS.MakespanMs / interOnly.MakespanMs; gain < 2.5 {
		t.Errorf("inter-query speedup = %.1fx, want near 4x for 4 queries", gain)
	}
	// Budgeting the beneficial depth matches oversubscription within ~30%
	// while using a quarter of the workers — the §4.3 point.
	if budgeted.MakespanMs > 1.3*over.MakespanMs {
		t.Errorf("budgeted makespan %.1fms vs oversubscribed %.1fms; want parity",
			budgeted.MakespanMs, over.MakespanMs)
	}
	// And intra-query parallelism dominates inter-query alone.
	if budgeted.MakespanMs > interOnly.MakespanMs/2 {
		t.Errorf("budgeted %.1fms not well below inter-query-only %.1fms",
			budgeted.MakespanMs, interOnly.MakespanMs)
	}
}

func TestMixedWorkloadQDTTWins(t *testing.T) {
	t.Parallel()
	rows := quick().Mixed(12)
	if len(rows) != 2 {
		t.Fatalf("%d rows, want 2", len(rows))
	}
	old, new_ := rows[0], rows[1]
	if gain := old.TotalMs / new_.TotalMs; gain < 1.5 {
		t.Errorf("QDTT whole-workload gain = %.2fx, want >= 1.5x", gain)
	}
	if new_.WorstMs > old.WorstMs {
		t.Errorf("QDTT worst-case %.1fms above DTT's %.1fms", new_.WorstMs, old.WorstMs)
	}
	if new_.ParallelQs < old.ParallelQs {
		t.Errorf("QDTT parallelized %d queries, DTT %d; expected more under QDTT",
			new_.ParallelQs, old.ParallelQs)
	}
}

func TestJoinsAblation(t *testing.T) {
	t.Parallel()
	rows := quick().Joins()
	if len(rows) != 5 {
		t.Fatalf("%d rows, want 5", len(rows))
	}
	sawNL := false
	for i, r := range rows {
		if r.Regret > 1.5 {
			t.Errorf("skew %.1f: planner regret %.2fx, want <= 1.5x", r.BuildSkew, r.Regret)
		}
		if r.Chosen == "IndexNLJoin" {
			sawNL = true
		}
		// Distinct ratio falls with skew, and the NL join keeps getting
		// relatively better.
		if i > 0 {
			if r.DistinctPct >= rows[i-1].DistinctPct {
				t.Errorf("distinct%% did not fall with skew: %.1f -> %.1f",
					rows[i-1].DistinctPct, r.DistinctPct)
			}
			if r.NLMs >= rows[i-1].NLMs {
				t.Errorf("NL runtime did not fall with skew: %.2f -> %.2f",
					rows[i-1].NLMs, r.NLMs)
			}
		}
	}
	if !sawNL {
		t.Error("planner never chose the NL join despite heavy skew")
	}
	if last := rows[len(rows)-1]; last.Chosen != "IndexNLJoin" {
		t.Errorf("heaviest skew chose %s, want IndexNLJoin", last.Chosen)
	}
}

func TestOptimalityQDTTBeatsDTT(t *testing.T) {
	t.Parallel()
	rows := quick().Optimality(cfgFor(33, workload.SSD))
	if len(rows) == 0 {
		t.Fatal("no rows")
	}
	oldMean := meanRegret(rows, true)
	newMean := meanRegret(rows, false)
	// The paper's headline: QDTT choices sit near the optimum while DTT
	// choices are off by large factors at low selectivities.
	if newMean > 2 {
		t.Errorf("mean QDTT regret = %.2fx, want near-optimal (<= 2x)", newMean)
	}
	if oldMean < 2*newMean {
		t.Errorf("mean DTT regret %.2fx not clearly worse than QDTT %.2fx",
			oldMean, newMean)
	}
	sawBigOldRegret := false
	for _, r := range rows {
		if r.NewRegret > 4 {
			t.Errorf("sel %.4f: QDTT regret %.1fx (chose %s, best %s)",
				r.Selectivity, r.NewRegret, r.NewPlan, r.BestPlan)
		}
		if r.OldRegret > 5 {
			sawBigOldRegret = true
		}
	}
	if !sawBigOldRegret {
		t.Error("DTT optimizer never suffered a >5x regret; expected large misses at low selectivity")
	}
}
