package experiments

import (
	"math"

	"pioqo/internal/exec"
	"pioqo/internal/opt"
	"pioqo/internal/workload"
)

// AccuracyRow compares one plan's estimated cost against its measured
// runtime at one selectivity.
type AccuracyRow struct {
	Config      string
	Selectivity float64
	Plan        string
	EstimatedMs float64
	MeasuredMs  float64
	Ratio       float64 // estimated / measured
}

// Accuracy validates the QDTT model the way the paper's abstract promises
// ("the best plans found by the optimizer would be much closer to
// optimal"): for every candidate access path at every swept selectivity,
// compare the QDTT-based cost estimate against the actually measured
// runtime. A usable cost model keeps the ratio within a small constant
// band; more importantly, it must *rank* plans correctly (see Optimality).
func (sc Scale) Accuracy(cfg workload.Config) []AccuracyRow {
	// Calibrate once on a dedicated system; the QDTT grid is immutable and
	// shared read-only. Each selectivity then enumerates and measures its
	// candidates on a fresh system, making the points independent.
	model := sc.calibrated(sc.system(cfg))

	lo, hi := fig4Grid(cfg)
	sels := selGrid(lo, hi, sc.SelPoints)
	perSel := sweep(sc.workers(), len(sels), func(i int) []AccuracyRow {
		sel := sels[i]
		s := sc.system(cfg)
		optCfg := opt.Config{
			Model:     model,
			Costs:     s.Ctx.Costs,
			Cores:     s.CPU.Capacity(),
			PoolPages: int64(s.Pool.Capacity()),
			Degrees:   []int{1, 8, 32},
		}
		plo, phi := s.RangeFor(sel)
		in := opt.Input{Table: s.Table, Index: s.Index, Pool: s.Pool, Lo: plo, Hi: phi}
		var rows []AccuracyRow
		for _, plan := range opt.Enumerate(optCfg, in) {
			res := s.Run(plan.Spec(in), true)
			measuredMs := res.Runtime.Millis()
			estimatedMs := plan.TotalMicros / 1e3
			rows = append(rows, AccuracyRow{
				Config:      cfg.Name,
				Selectivity: sel,
				Plan:        methodLabel(plan.Method, plan.Degree),
				EstimatedMs: estimatedMs,
				MeasuredMs:  measuredMs,
				Ratio:       estimatedMs / measuredMs,
			})
		}
		return rows
	})
	return flatten(perSel)
}

// OptimalityRow reports, for one selectivity, how far each optimizer's
// chosen plan was from the best measured plan among all candidates.
type OptimalityRow struct {
	Config      string
	Selectivity float64
	BestPlan    string  // fastest measured candidate
	BestMs      float64 // its runtime
	OldPlan     string  // DTT choice and its measured regret (runtime / best)
	OldRegret   float64
	NewPlan     string // QDTT choice and regret
	NewRegret   float64
}

// Optimality quantifies the paper's headline: execute *every* candidate
// plan at each selectivity to find the true optimum, then report the
// regret (chosen runtime over optimal runtime) of the DTT-based and
// QDTT-based optimizers. The paper's claim is that the QDTT optimizer's
// choices sit near regret 1 while the DTT optimizer's are off by up to
// ~20x at low selectivities.
func (sc Scale) Optimality(cfg workload.Config) []OptimalityRow {
	// As in Accuracy: one shared read-only calibration, one fresh system per
	// selectivity point.
	model := sc.calibrated(sc.system(cfg))

	lo, hi := fig4Grid(cfg)
	sels := selGrid(lo, hi, sc.SelPoints)
	return sweep(sc.workers(), len(sels), func(i int) OptimalityRow {
		sel := sels[i]
		s := sc.system(cfg)
		base := opt.Config{
			Costs:     s.Ctx.Costs,
			Cores:     s.CPU.Capacity(),
			PoolPages: int64(s.Pool.Capacity()),
			Degrees:   []int{1, 8, 32},
		}
		newCfg, oldCfg := base, base
		newCfg.Model = model
		oldCfg.Model = model.DepthOne()

		plo, phi := s.RangeFor(sel)
		in := opt.Input{Table: s.Table, Index: s.Index, Pool: s.Pool, Lo: plo, Hi: phi}

		// Measure every candidate once; key candidates by (method, degree).
		type key struct {
			m exec.Method
			d int
		}
		measured := map[key]float64{}
		best := math.Inf(1)
		bestPlan := ""
		for _, plan := range opt.Enumerate(newCfg, in) {
			k := key{plan.Method, plan.Degree}
			if _, done := measured[k]; done {
				continue
			}
			rt := s.Run(plan.Spec(in), true).Runtime.Millis()
			measured[k] = rt
			if rt < best {
				best = rt
				bestPlan = methodLabel(plan.Method, plan.Degree)
			}
		}

		oldChoice := opt.Choose(oldCfg, in)
		newChoice := opt.Choose(newCfg, in)
		oldRt := measured[key{oldChoice.Method, oldChoice.Degree}]
		newRt := measured[key{newChoice.Method, newChoice.Degree}]
		return OptimalityRow{
			Config:      cfg.Name,
			Selectivity: sel,
			BestPlan:    bestPlan,
			BestMs:      best,
			OldPlan:     methodLabel(oldChoice.Method, oldChoice.Degree),
			OldRegret:   oldRt / best,
			NewPlan:     methodLabel(newChoice.Method, newChoice.Degree),
			NewRegret:   newRt / best,
		}
	})
}

// meanRegret averages a column of Optimality output (used by tests and
// benches).
func meanRegret(rows []OptimalityRow, old bool) float64 {
	sum := 0.0
	for _, r := range rows {
		if old {
			sum += r.OldRegret
		} else {
			sum += r.NewRegret
		}
	}
	return sum / float64(len(rows))
}
