package experiments

import (
	"pioqo/internal/cost"
	"pioqo/internal/opt"
	"pioqo/internal/sim"
	"pioqo/internal/workload"
)

// Fig8Row is one selectivity point of the paper's Fig. 8: the runtime of
// query Q when the plan is chosen by the DTT-based ("old") optimizer versus
// the QDTT-based ("new") optimizer, and the resulting speedup.
type Fig8Row struct {
	Config      string
	Selectivity float64
	OldPlan     string
	NewPlan     string
	OldRuntime  sim.Duration
	NewRuntime  sim.Duration
	Speedup     float64
}

// Fig8 calibrates the configuration's device, then sweeps selectivities,
// letting each optimizer choose a plan that is then actually executed. The
// paper reports maximum speedups of 19.7 / 16.9 / 13.7 on E1/E33/E500-SSD
// and a 3–5x plateau at high selectivities.
func (sc Scale) Fig8(cfg workload.Config) []Fig8Row {
	// Calibrate once, on a dedicated system: the resulting QDTT grid is
	// immutable data that every grid point shares read-only. Each
	// selectivity then plans and executes on its own fresh system, making
	// the sweep's points independent.
	qdtt := sc.calibrated(sc.system(cfg))
	dtt := qdtt.DepthOne()

	lo, hi := fig4Grid(cfg)
	sels := selGrid(lo, hi, sc.SelPoints)
	return sweep(sc.workers(), len(sels), func(i int) Fig8Row {
		s := sc.system(cfg)
		optCfg := func(m cost.Model) opt.Config {
			return opt.Config{
				Model:     m,
				Costs:     s.Ctx.Costs,
				Cores:     s.CPU.Capacity(),
				PoolPages: int64(s.Pool.Capacity()),
			}
		}
		sel := sels[i]
		plo, phi := s.RangeFor(sel)
		in := opt.Input{Table: s.Table, Index: s.Index, Pool: s.Pool, Lo: plo, Hi: phi}

		oldPlan := opt.Choose(optCfg(dtt), in)
		newPlan := opt.Choose(optCfg(qdtt), in)

		oldRes := s.Run(oldPlan.Spec(in), true)
		newRes := s.Run(newPlan.Spec(in), true)

		return Fig8Row{
			Config:      cfg.Name,
			Selectivity: sel,
			OldPlan:     methodLabel(oldPlan.Method, oldPlan.Degree),
			NewPlan:     methodLabel(newPlan.Method, newPlan.Degree),
			OldRuntime:  oldRes.Runtime,
			NewRuntime:  newRes.Runtime,
			Speedup:     float64(oldRes.Runtime) / float64(newRes.Runtime),
		}
	})
}
