package experiments

import (
	"math"
	"testing"

	"pioqo/internal/workload"
)

// The experiment tests assert the paper's qualitative findings — who wins,
// where crossings fall, rough factors — at QuickScale. cmd/pioqo-bench runs
// the same experiments at DefaultScale.

func quick() Scale { return QuickScale() }

func cfgFor(rpp int, dev workload.DeviceKind) workload.Config {
	for _, c := range workload.Table1() {
		if c.RowsPerPage == rpp && c.Device == dev {
			return c
		}
	}
	panic("no such config")
}

func TestFig1Shape(t *testing.T) {
	t.Parallel()
	rows := quick().Fig1()
	byDev := map[string][]Fig1Row{}
	for _, r := range rows {
		byDev[r.Device] = append(byDev[r.Device], r)
	}
	ssd, hdd := byDev["SSD"], byDev["HDD"]
	if len(ssd) != 6 || len(hdd) != 6 {
		t.Fatalf("got %d SSD rows and %d HDD rows, want 6 each", len(ssd), len(hdd))
	}
	// SSD: monotone growth, QD32 near half of sequential (paper: 51.7%).
	for i := 1; i < len(ssd); i++ {
		if ssd[i].RandomMBps <= ssd[i-1].RandomMBps {
			t.Errorf("SSD random throughput not monotone at QD %d", ssd[i].QueueDepth)
		}
	}
	if got := ssd[5].RatioPercent; got < 30 || got > 75 {
		t.Errorf("SSD QD32 ratio = %.1f%%, paper reports ~51.7%%", got)
	}
	// HDD: QD32 random stays a tiny fraction of sequential (paper: ~1.3%).
	if got := hdd[5].RatioPercent; got > 5 {
		t.Errorf("HDD QD32 ratio = %.1f%%, paper reports ~1.3%%", got)
	}
	if hdd[5].RandomMBps <= hdd[0].RandomMBps {
		t.Error("HDD elevator produced no gain from QD1 to QD32")
	}
}

func TestFig4E1SSDShape(t *testing.T) {
	t.Parallel()
	rows := quick().Fig4(cfgFor(1, workload.SSD), []int{32})
	curve := map[string]map[float64]float64{} // method -> sel -> runtime
	var sels []float64
	for _, r := range rows {
		if curve[r.Method] == nil {
			curve[r.Method] = map[float64]float64{}
		}
		curve[r.Method][r.Selectivity] = float64(r.Runtime)
		if r.Method == "IS" {
			sels = append(sels, r.Selectivity)
		}
	}
	// PIS32 dominates IS at every selectivity, by a large factor somewhere.
	bestGain := 0.0
	for _, s := range sels {
		gain := curve["IS"][s] / curve["PIS32"][s]
		if gain < 1 {
			t.Errorf("sel %.4f: PIS32 slower than IS (gain %.2f)", s, gain)
		}
		bestGain = math.Max(bestGain, gain)
	}
	if bestGain < 6 {
		t.Errorf("max PIS32 gain over IS = %.1fx, paper reports avg 16.6x", bestGain)
	}
	// The IS/FTS crossing lies inside the sweep: IS wins at the low end,
	// FTS wins at the high end.
	first, last := sels[0], sels[len(sels)-1]
	if curve["IS"][first] >= curve["FTS"][first] {
		t.Errorf("at sel %.4f IS (%.0f) not below FTS (%.0f)",
			first, curve["IS"][first], curve["FTS"][first])
	}
	if curve["IS"][last] <= curve["FTS"][last] {
		t.Errorf("at sel %.4f IS (%.0f) not above FTS (%.0f)",
			last, curve["IS"][last], curve["FTS"][last])
	}
}

func TestFig4HDDParallelGainIsModest(t *testing.T) {
	t.Parallel()
	rows := quick().Fig4(cfgFor(1, workload.HDD), []int{32})
	var isSum, pisSum float64
	n := 0
	for _, r := range rows {
		switch r.Method {
		case "IS":
			isSum += float64(r.Runtime)
			n++
		case "PIS32":
			pisSum += float64(r.Runtime)
		}
	}
	gain := isSum / pisSum
	// Paper: PIS32 averages ~2.37x faster than IS on HDD — a modest gain.
	// At our reduced table sizes the band is narrow, seeks contribute
	// little, and the elevator's gain shrinks toward 1x; the requirement is
	// that parallel I/O never helps HDD much and never hurts.
	if gain < 0.95 || gain > 6 {
		t.Errorf("HDD avg PIS32 gain = %.2fx, paper reports ~2.4x (modest)", gain)
	}
}

func TestTable2BreakEvenShifts(t *testing.T) {
	t.Parallel()
	rows := quick().Table2()
	if len(rows) != 3 {
		t.Fatalf("%d rows, want 3", len(rows))
	}
	for _, r := range rows {
		// Parallelism shifts the break-even right on both devices...
		if r.PSSD <= r.NPSSD {
			t.Errorf("rpp=%d: SSD break-even did not shift right (%.5f -> %.5f)",
				r.RowsPerPage, r.NPSSD, r.PSSD)
		}
		// ...while the HDD crossing barely moves (paper: 1.1x-2.5x; at our
		// reduced scale PFTS's CPU-parallel gain can outweigh the small
		// elevator gain, nudging it slightly left — see DESIGN.md, Known
		// deviations). Either way the move is modest.
		if shift := r.PHDD / r.NPHDD; shift < 0.25 || shift > 8 {
			t.Errorf("rpp=%d: HDD parallel break-even moved %.1fx (%.6f -> %.6f), want modest",
				r.RowsPerPage, shift, r.NPHDD, r.PHDD)
		}
		// ...and the shift is much larger on SSD (the paper's key message).
		ssdShift := r.PSSD / r.NPSSD
		hddShift := r.PHDD / r.NPHDD
		if ssdShift < 1.5*hddShift {
			t.Errorf("rpp=%d: SSD shift %.1fx not clearly above HDD shift %.1fx",
				r.RowsPerPage, ssdShift, hddShift)
		}
		// SSD break-evens sit far right of HDD ones at equal rpp.
		if r.NPSSD <= r.NPHDD {
			t.Errorf("rpp=%d: SSD non-parallel break-even %.5f not right of HDD %.5f",
				r.RowsPerPage, r.NPSSD, r.NPHDD)
		}
	}
	// Break-evens shrink as rows-per-page grows (reading down Table 2).
	for i := 1; i < len(rows); i++ {
		if rows[i].NPSSD >= rows[i-1].NPSSD || rows[i].NPHDD >= rows[i-1].NPHDD {
			t.Errorf("break-evens did not shrink from rpp=%d to rpp=%d",
				rows[i-1].RowsPerPage, rows[i].RowsPerPage)
		}
	}
}

func TestTable3ThroughputRatios(t *testing.T) {
	t.Parallel()
	rows := quick().Table3()
	if len(rows) != 3 {
		t.Fatalf("%d rows, want 3", len(rows))
	}
	// Paper Table 3 shape: the SSD-over-HDD throughput ratio declines as
	// rows per page grow (PFTS32: 8.45x -> 5.46x -> 2.25x; FTS: 2.72x ->
	// 1.91x -> 1.13x), and PFTS exploits the SSD better than FTS does.
	for i, r := range rows {
		if r.PFTS32Ratio <= r.FTSRatio {
			t.Errorf("rpp=%d: PFTS32 SSD/HDD ratio %.2fx not above FTS ratio %.2fx",
				r.RowsPerPage, r.PFTS32Ratio, r.FTSRatio)
		}
		if i > 0 {
			prev := rows[i-1]
			if r.PFTS32Ratio >= prev.PFTS32Ratio {
				t.Errorf("PFTS32 SSD/HDD ratio did not decline: rpp=%d %.2fx vs rpp=%d %.2fx",
					prev.RowsPerPage, prev.PFTS32Ratio, r.RowsPerPage, r.PFTS32Ratio)
			}
		}
	}
	// HDD full scans run near the ~110 MB/s media rate once CPU allows:
	// with 33 rows/page one worker already saturates the spindle.
	r33 := rows[1]
	if r33.FTSHDD < 80 || r33.PFTS32HDD < 80 {
		t.Errorf("E33-HDD throughput FTS=%.0f PFTS32=%.0f, want near media rate",
			r33.FTSHDD, r33.PFTS32HDD)
	}
	// On E500 the HDD needs a second worker: PFTS32 saturates the media
	// rate while FTS is CPU-bound at roughly half of it (paper: 110 vs 51).
	r500 := rows[2]
	if r500.PFTS32HDD < 1.5*r500.FTSHDD {
		t.Errorf("E500-HDD PFTS32 %.0f MB/s not well above CPU-bound FTS %.0f MB/s",
			r500.PFTS32HDD, r500.FTSHDD)
	}
}

func TestFig5PrefetchingShape(t *testing.T) {
	t.Parallel()
	rows := quick().Fig5()
	rt := map[[2]int]float64{} // {degree, prefetch} -> runtime
	for _, r := range rows {
		rt[[2]int{r.Degree, r.Prefetch}] = float64(r.Runtime)
	}
	// Prefetching sharply improves the single-worker scan.
	if gain := rt[[2]int{1, 0}] / rt[[2]int{1, 32}]; gain < 4 {
		t.Errorf("1 worker: prefetch-32 gain = %.1fx, want >= 4x", gain)
	}
	// One worker prefetching n does not match n workers (paper: due to
	// imperfect overlap); n workers are at least as good.
	if rt[[2]int{8, 0}] > rt[[2]int{1, 8}] {
		t.Errorf("8 workers (%v) slower than 1 worker with prefetch 8 (%v)",
			rt[[2]int{8, 0}], rt[[2]int{1, 8}])
	}
	// Few workers with deep prefetch rival many workers without (paper: 4
	// workers x 32 prefetch beat 32 workers x 0 by 35%).
	if rt[[2]int{4, 32}] > 1.25*rt[[2]int{32, 0}] {
		t.Errorf("4 workers x 32 prefetch (%v) much slower than 32 workers (%v)",
			rt[[2]int{4, 32}], rt[[2]int{32, 0}])
	}
}

func TestFig8OptimizerSpeedup(t *testing.T) {
	t.Parallel()
	rows := quick().Fig8(cfgFor(33, workload.SSD))
	maxSpeedup, minSpeedup := 0.0, math.Inf(1)
	sawParallelNew := false
	for _, r := range rows {
		maxSpeedup = math.Max(maxSpeedup, r.Speedup)
		minSpeedup = math.Min(minSpeedup, r.Speedup)
		if r.NewPlan != r.OldPlan {
			sawParallelNew = true
		}
	}
	if maxSpeedup < 4 {
		t.Errorf("max QDTT speedup = %.1fx, paper reports up to 16.9x on E33-SSD", maxSpeedup)
	}
	if minSpeedup < 0.7 {
		t.Errorf("min speedup = %.2fx; QDTT plans should never be much worse", minSpeedup)
	}
	if !sawParallelNew {
		t.Error("new optimizer never chose a different plan than the old one")
	}
}

func TestFig9GWAndAWAgreeOnSSD(t *testing.T) {
	t.Parallel()
	rows := quick().Fig10()
	for _, r := range rows {
		if d := math.Abs(r.GWMinusAW); d > 15 {
			t.Errorf("band %d depth %d: |GW-AW| = %.1fus, want small on SSD",
				r.Band, r.Depth, d)
		}
	}
}

func TestFig11AWBeatsGWOnRAID(t *testing.T) {
	t.Parallel()
	rows := quick().Fig11()
	sawBigGap := false
	for _, r := range rows {
		if r.Depth >= 8 && r.GWMinusAW > 0.2*r.AWMicros {
			sawBigGap = true
		}
	}
	if !sawBigGap {
		t.Error("no depth>=8 point where GW exceeds AW by >20% on RAID")
	}
}

func TestFig12InterpolationAccuracy(t *testing.T) {
	t.Parallel()
	rows := quick().Fig12()
	if len(rows) == 0 {
		t.Fatal("no rows")
	}
	bad := 0
	for _, r := range rows {
		if math.Abs(r.ErrPercent) > 20 {
			bad++
		}
	}
	// The paper calls the exponential grid "fairly accurate"; allow a few
	// noisy points but not systematic failure.
	if frac := float64(bad) / float64(len(rows)); frac > 0.1 {
		t.Errorf("%.0f%% of interpolated points off by >20%%", frac*100)
	}
}

func TestEarlyStopComparison(t *testing.T) {
	t.Parallel()
	rows := quick().EarlyStop()
	byKey := map[[2]interface{}]EarlyStopRow{}
	for _, r := range rows {
		byKey[[2]interface{}{r.Device, r.Threshold}] = r
	}
	hddFull := byKey[[2]interface{}{"HDD", 0.0}]
	hddStop := byKey[[2]interface{}{"HDD", 0.20}]
	if !hddStop.StoppedEarly {
		t.Error("HDD calibration with T=20% did not stop early")
	}
	if hddStop.SimTime >= hddFull.SimTime {
		t.Errorf("HDD early stop saved no time (%v vs %v)", hddStop.SimTime, hddFull.SimTime)
	}
	ssdStop := byKey[[2]interface{}{"SSD", 0.20}]
	if ssdStop.StoppedEarly {
		t.Error("SSD calibration stopped early despite strong parallel gains")
	}
}

func TestSelGrid(t *testing.T) {
	g := selGrid(0.001, 0.1, 5)
	if len(g) != 5 {
		t.Fatalf("%d points, want 5", len(g))
	}
	if math.Abs(g[0]-0.001) > 1e-12 || math.Abs(g[4]-0.1) > 1e-9 {
		t.Errorf("endpoints %v, want [0.001 .. 0.1]", g)
	}
	for i := 1; i < len(g); i++ {
		ratio := g[i] / g[i-1]
		if math.Abs(ratio-g[1]/g[0]) > 1e-9 {
			t.Error("grid not geometric")
		}
	}
}
