package experiments

import (
	"pioqo/internal/exec"
	"pioqo/internal/sim"
	"pioqo/internal/workload"
)

// Fig5Row is one point of the paper's Fig. 5: index-scan runtime at a fixed
// selectivity as a function of the per-worker prefetch depth n, one curve
// per parallel degree.
type Fig5Row struct {
	Degree   int
	Prefetch int
	Runtime  sim.Duration
}

// Fig5 reproduces the prefetching experiment of §3.3: a range index scan on
// an SSD-resident T33-style table at selectivity 0.03 (3% of the rows, per
// the paper), sweeping the per-worker prefetch depth for parallel degrees
// 1..32. The paper's headline observations: prefetching sharply improves
// the scan; one worker prefetching n does not quite equal n workers; and a
// few workers with deep prefetch beat many workers without it.
func (sc Scale) Fig5() []Fig5Row {
	var rows []Fig5Row
	for _, degree := range []int{1, 2, 4, 8, 16, 32} {
		for _, prefetch := range []int{0, 1, 2, 4, 8, 16, 32} {
			// A fresh system per run keeps device and pool state identical
			// across the grid.
			s := sc.system(workload.Config{
				Name:        "fig5",
				RowsPerPage: 33,
				Device:      workload.SSD,
			})
			lo, hi := s.RangeFor(0.03)
			spec := s.Spec(exec.IndexScan, degree, lo, hi)
			spec.PrefetchPerWorker = prefetch
			res := s.Run(spec, true)
			rows = append(rows, Fig5Row{
				Degree:   degree,
				Prefetch: prefetch,
				Runtime:  res.Runtime,
			})
		}
	}
	return rows
}
