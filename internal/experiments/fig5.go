package experiments

import (
	"pioqo/internal/exec"
	"pioqo/internal/sim"
	"pioqo/internal/workload"
)

// Fig5Row is one point of the paper's Fig. 5: index-scan runtime at a fixed
// selectivity as a function of the per-worker prefetch depth n, one curve
// per parallel degree.
type Fig5Row struct {
	Degree   int
	Prefetch int
	Runtime  sim.Duration
}

// Fig5 reproduces the prefetching experiment of §3.3: a range index scan on
// an SSD-resident T33-style table at selectivity 0.03 (3% of the rows, per
// the paper), sweeping the per-worker prefetch depth for parallel degrees
// 1..32. The paper's headline observations: prefetching sharply improves
// the scan; one worker prefetching n does not quite equal n workers; and a
// few workers with deep prefetch beat many workers without it.
func (sc Scale) Fig5() []Fig5Row {
	degrees := []int{1, 2, 4, 8, 16, 32}
	prefetches := []int{0, 1, 2, 4, 8, 16, 32}
	n := len(degrees) * len(prefetches)
	// A fresh system per (degree, prefetch) point keeps device and pool
	// state identical across the grid — which also makes every point an
	// isolated simulation that can fan out across host workers.
	return sweep(sc.workers(), n, func(i int) Fig5Row {
		degree := degrees[i/len(prefetches)]
		prefetch := prefetches[i%len(prefetches)]
		s := sc.system(workload.Config{
			Name:        "fig5",
			RowsPerPage: 33,
			Device:      workload.SSD,
		})
		lo, hi := s.RangeFor(0.03)
		spec := s.Spec(exec.IndexScan, degree, lo, hi)
		spec.PrefetchPerWorker = prefetch
		res := s.Run(spec, true)
		return Fig5Row{
			Degree:   degree,
			Prefetch: prefetch,
			Runtime:  res.Runtime,
		}
	})
}
