package experiments

import "testing"

// TestSharedScanShape checks the A/B harness wiring at quick scale: the
// sharing arm must actually route every full scan onto a circulating
// producer and the private arm must never touch the share machinery.
// Speedup is asserted only at default scale (see BENCH_PR7.json): the
// quick pool is smaller than the three producers' windows, which is
// exactly the regime where sharing should not be expected to win.
func TestSharedScanShape(t *testing.T) {
	rows := QuickScale().SharedScan(300)
	if len(rows) != 2 || rows[0].Arm != "sharing" || rows[1].Arm != "private" {
		t.Fatalf("rows = %+v, want [sharing, private]", rows)
	}
	sharing, private := rows[0], rows[1]
	if sharing.Queries != 300 || sharing.Scans != 15 {
		t.Errorf("mix = %d queries / %d scans, want 300/15", sharing.Queries, sharing.Scans)
	}
	if sharing.SharedAdmissions != sharing.Scans {
		t.Errorf("sharing arm attached %d of %d scans", sharing.SharedAdmissions, sharing.Scans)
	}
	if sharing.Laps < 3 {
		t.Errorf("sharing arm completed %d laps, want one per hot table", sharing.Laps)
	}
	if private.SharedAdmissions != 0 || private.Laps != 0 {
		t.Errorf("private arm shows sharing activity: %+v", private)
	}
	for _, r := range rows {
		if r.MakespanMs <= 0 || r.ScanP95Ms <= 0 || r.PointP95Ms <= 0 || r.DeviceReads <= 0 {
			t.Errorf("%s arm has empty measurements: %+v", r.Arm, r)
		}
	}
	if private.Speedup != 1 || sharing.Speedup <= 0 {
		t.Errorf("speedup fields: sharing %.2f, private %.2f", sharing.Speedup, private.Speedup)
	}
}
