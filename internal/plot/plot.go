// Package plot renders small ASCII line charts, used by cmd/pioqo-bench to
// draw the paper's figures directly in a terminal. It is intentionally
// minimal: multiple named series over shared axes, optional log scales, a
// legend, and nothing else.
package plot

import (
	"fmt"
	"math"
	"strings"
)

// Series is one named curve.
type Series struct {
	Name string
	X, Y []float64
}

// Options control the canvas.
type Options struct {
	Width  int // plot area columns (default 64)
	Height int // plot area rows (default 16)
	LogX   bool
	LogY   bool
	Title  string
	XLabel string
	YLabel string
}

// markers assigns one rune per series, cycling if there are many.
var markers = []rune{'*', 'o', '+', 'x', '#', '@', '%', '~'}

// Render draws the series onto one text canvas. Series points with
// non-positive coordinates on a log axis are skipped.
func Render(series []Series, o Options) string {
	if o.Width <= 0 {
		o.Width = 64
	}
	if o.Height <= 0 {
		o.Height = 16
	}

	// Collect the visible points and the axis ranges.
	type pt struct {
		x, y float64
		m    rune
	}
	var pts []pt
	minX, maxX := math.Inf(1), math.Inf(-1)
	minY, maxY := math.Inf(1), math.Inf(-1)
	for si, s := range series {
		m := markers[si%len(markers)]
		for i := range s.X {
			x, y := s.X[i], s.Y[i]
			if (o.LogX && x <= 0) || (o.LogY && y <= 0) {
				continue
			}
			if o.LogX {
				x = math.Log10(x)
			}
			if o.LogY {
				y = math.Log10(y)
			}
			pts = append(pts, pt{x, y, m})
			minX, maxX = math.Min(minX, x), math.Max(maxX, x)
			minY, maxY = math.Min(minY, y), math.Max(maxY, y)
		}
	}
	if len(pts) == 0 {
		return "(no plottable points)"
	}
	if maxX == minX {
		maxX = minX + 1
	}
	if maxY == minY {
		maxY = minY + 1
	}

	// Paint the canvas, later series over earlier ones.
	grid := make([][]rune, o.Height)
	for r := range grid {
		grid[r] = []rune(strings.Repeat(" ", o.Width))
	}
	for _, p := range pts {
		col := int((p.x - minX) / (maxX - minX) * float64(o.Width-1))
		row := o.Height - 1 - int((p.y-minY)/(maxY-minY)*float64(o.Height-1))
		grid[row][col] = p.m
	}

	var b strings.Builder
	if o.Title != "" {
		fmt.Fprintf(&b, "%s\n", o.Title)
	}
	yLo, yHi := axisValue(minY, o.LogY), axisValue(maxY, o.LogY)
	for r, row := range grid {
		label := "          "
		if r == 0 {
			label = fmt.Sprintf("%-10s", compact(yHi))
		}
		if r == o.Height-1 {
			label = fmt.Sprintf("%-10s", compact(yLo))
		}
		fmt.Fprintf(&b, "%s|%s\n", label, string(row))
	}
	xLo, xHi := axisValue(minX, o.LogX), axisValue(maxX, o.LogX)
	fmt.Fprintf(&b, "%s+%s\n", strings.Repeat(" ", 10), strings.Repeat("-", o.Width))
	fmt.Fprintf(&b, "%s%-*s%s\n", strings.Repeat(" ", 11),
		o.Width-len(compact(xHi)), compact(xLo), compact(xHi))
	if o.XLabel != "" || o.YLabel != "" || o.LogX || o.LogY {
		fmt.Fprintf(&b, "x: %s   y: %s", o.XLabel, o.YLabel)
		if o.LogX || o.LogY {
			fmt.Fprint(&b, "   (log scale)")
		}
		fmt.Fprintln(&b)
	}
	var legend []string
	for si, s := range series {
		legend = append(legend, fmt.Sprintf("%c %s", markers[si%len(markers)], s.Name))
	}
	fmt.Fprintf(&b, "legend: %s", strings.Join(legend, "   "))
	return b.String()
}

func axisValue(v float64, log bool) float64 {
	if log {
		return math.Pow(10, v)
	}
	return v
}

// compact formats an axis value tersely.
func compact(v float64) string {
	av := math.Abs(v)
	switch {
	case av >= 1e9:
		return fmt.Sprintf("%.3ge9", v/1e9)
	case av >= 1e6:
		return fmt.Sprintf("%.3gM", v/1e6)
	case av >= 1e3:
		return fmt.Sprintf("%.3gk", v/1e3)
	case av >= 1:
		return fmt.Sprintf("%.3g", v)
	default:
		return fmt.Sprintf("%.2g", v)
	}
}
