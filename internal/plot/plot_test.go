package plot

import (
	"strings"
	"testing"
)

func lines(s string) []string { return strings.Split(s, "\n") }

func TestRenderBasicShape(t *testing.T) {
	out := Render([]Series{
		{Name: "a", X: []float64{1, 2, 3}, Y: []float64{1, 2, 3}},
	}, Options{Width: 20, Height: 5, Title: "T", XLabel: "x", YLabel: "y"})
	if !strings.HasPrefix(out, "T\n") {
		t.Error("missing title")
	}
	if !strings.Contains(out, "legend: * a") {
		t.Errorf("missing legend:\n%s", out)
	}
	got := lines(out)
	// title + 5 rows + axis + ticks + labels + legend
	if len(got) != 10 {
		t.Errorf("%d lines, want 10:\n%s", len(got), out)
	}
	// An increasing series puts a marker in the top row and the bottom row.
	if !strings.Contains(got[1], "*") {
		t.Errorf("top row empty for increasing series:\n%s", out)
	}
	if !strings.Contains(got[5], "*") {
		t.Errorf("bottom row empty for increasing series:\n%s", out)
	}
}

func TestRenderMonotoneMapping(t *testing.T) {
	out := Render([]Series{
		{Name: "up", X: []float64{0, 1}, Y: []float64{0, 10}},
	}, Options{Width: 10, Height: 4})
	rows := lines(out)
	// Low x, low y -> bottom-left; high x, high y -> top-right.
	top, bottom := rows[0], rows[3]
	if strings.IndexRune(top, '*') < strings.IndexRune(bottom, '*') {
		t.Errorf("mapping not monotone:\n%s", out)
	}
}

func TestRenderMultipleSeriesDistinctMarkers(t *testing.T) {
	out := Render([]Series{
		{Name: "a", X: []float64{1}, Y: []float64{1}},
		{Name: "b", X: []float64{2}, Y: []float64{2}},
	}, Options{Width: 10, Height: 4})
	if !strings.Contains(out, "*") || !strings.Contains(out, "o") {
		t.Errorf("markers missing:\n%s", out)
	}
	if !strings.Contains(out, "* a") || !strings.Contains(out, "o b") {
		t.Errorf("legend wrong:\n%s", out)
	}
}

func TestLogScaleSkipsNonPositive(t *testing.T) {
	out := Render([]Series{
		{Name: "a", X: []float64{0, 1, 10, 100}, Y: []float64{-1, 1, 10, 100}},
	}, Options{Width: 30, Height: 6, LogX: true, LogY: true})
	if strings.Contains(out, "(no plottable points)") {
		t.Fatal("all points skipped")
	}
	count := strings.Count(out, "*")
	if count != 4 { // legend marker + 3 valid points
		t.Errorf("marker count %d, want 4 (3 points + legend):\n%s", count, out)
	}
	if !strings.Contains(out, "(log scale)") {
		t.Error("log scale not labelled")
	}
}

func TestEmptyInput(t *testing.T) {
	if got := Render(nil, Options{}); got != "(no plottable points)" {
		t.Errorf("empty render = %q", got)
	}
	got := Render([]Series{{Name: "a", X: []float64{-1}, Y: []float64{1}}},
		Options{LogX: true})
	if got != "(no plottable points)" {
		t.Errorf("all-invalid render = %q", got)
	}
}

func TestDegenerateRanges(t *testing.T) {
	// A single point must not divide by zero.
	out := Render([]Series{{Name: "a", X: []float64{5}, Y: []float64{7}}},
		Options{Width: 10, Height: 4})
	if !strings.Contains(out, "*") {
		t.Errorf("single point not plotted:\n%s", out)
	}
}

func TestCompactFormatting(t *testing.T) {
	cases := map[float64]string{
		2_500_000_000: "2.5e9",
		3_200_000:     "3.2M",
		4_500:         "4.5k",
		7:             "7",
		0.25:          "0.25",
	}
	for v, want := range cases {
		if got := compact(v); got != want {
			t.Errorf("compact(%v) = %q, want %q", v, got, want)
		}
	}
}
