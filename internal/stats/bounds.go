package stats

import "sort"

// BalancedCuts computes range-partition cut points that spread the given
// key multiset near-evenly across shards: cut i is the smallest key value
// such that at least (i+1)/shards of the keys fall below it. The returned
// slice has shards-1 ascending upper-exclusive bounds, directly usable
// with table.RangeShard — the "shard rebalance" counterpart to the naive
// equal-width split, which a skewed (e.g. Zipf) key distribution overloads
// badly.
//
// Cuts are computed on a sorted copy; the input is not modified.
func BalancedCuts(keys []int64, shards int) []int64 {
	sorted := make([]int64, len(keys))
	copy(sorted, keys)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })

	cuts := make([]int64, shards-1)
	n := int64(len(sorted))
	for i := range cuts {
		rank := n * int64(i+1) / int64(shards)
		if rank >= n {
			rank = n - 1
		}
		cut := sorted[rank]
		// Cuts must ascend strictly or the shards they separate collapse
		// to zero rows in RangeShard's half-open intervals; under heavy
		// skew many quantiles land on the same hot key, so push each cut
		// past its predecessor.
		if i > 0 && cut <= cuts[i-1] {
			cut = cuts[i-1] + 1
		}
		cuts[i] = cut
	}
	return cuts
}
