// Package stats implements the column statistics the optimizer consults
// for cardinality estimation: an equi-width histogram over a table's C2
// column. The paper's experiments use uniformly distributed data, where the
// uniform assumption built into a naive estimator is exact; the histogram
// makes the optimizer robust on skewed data too (see the Zipf-distributed
// table backing), which is how commercial engines — including the paper's
// SQL Anywhere, whose self-managing statistics the authors cite — actually
// estimate predicate selectivities.
package stats

import (
	"fmt"

	"pioqo/internal/table"
)

// Histogram is an equi-width histogram over [0, domain), carrying the
// column's distinct-value count alongside the bucket counts.
type Histogram struct {
	domain   int64
	width    float64
	buckets  []int64 // row counts per bucket
	rows     int64
	distinct int64
}

// DefaultBuckets is the default bucket count for BuildHistogram.
const DefaultBuckets = 128

// BuildHistogram scans t's C2 values and builds a histogram with the given
// bucket count (0 means DefaultBuckets). The scan is a host-side pass over
// the generated data — the modelled engine would gather these statistics
// during load, as SQL Anywhere does.
func BuildHistogram(t table.Table, buckets int) *Histogram {
	if buckets <= 0 {
		buckets = DefaultBuckets
	}
	domain := t.KeyDomain()
	if int64(buckets) > domain {
		buckets = int(domain)
	}
	h := &Histogram{
		domain:  domain,
		width:   float64(domain) / float64(buckets),
		buckets: make([]int64, buckets),
		rows:    t.Rows(),
	}
	seen := make(map[int64]struct{}, t.Rows())
	for r := int64(0); r < t.Rows(); r++ {
		v := t.RowAt(r).C2
		h.buckets[h.bucketOf(v)]++
		seen[v] = struct{}{}
	}
	h.distinct = int64(len(seen))
	return h
}

func (h *Histogram) bucketOf(v int64) int {
	b := int(float64(v) / h.width)
	if b >= len(h.buckets) {
		b = len(h.buckets) - 1
	}
	if b < 0 {
		b = 0
	}
	return b
}

// Buckets returns the number of buckets.
func (h *Histogram) Buckets() int { return len(h.buckets) }

// Rows returns the total row count the histogram covers.
func (h *Histogram) Rows() int64 { return h.rows }

// Distinct returns the number of distinct C2 values. Join planning uses it
// to estimate how many index lookups an index nested-loop join would make.
func (h *Histogram) Distinct() int64 { return h.distinct }

// DistinctRatio returns distinct/rows, the per-row probability of carrying
// a previously unseen key.
func (h *Histogram) DistinctRatio() float64 {
	if h.rows == 0 {
		return 1
	}
	return float64(h.distinct) / float64(h.rows)
}

// EstimateRange estimates the number of rows with lo <= C2 <= hi, assuming
// uniformity within each bucket (the standard equi-width interpolation).
func (h *Histogram) EstimateRange(lo, hi int64) float64 {
	if hi < lo {
		return 0
	}
	if lo < 0 {
		lo = 0
	}
	if hi >= h.domain {
		hi = h.domain - 1
	}
	if lo >= h.domain || hi < 0 {
		return 0
	}
	loF, hiF := float64(lo), float64(hi)+1 // half-open [loF, hiF)
	est := 0.0
	first, last := h.bucketOf(lo), h.bucketOf(hi)
	for b := first; b <= last; b++ {
		bLo := float64(b) * h.width
		bHi := bLo + h.width
		if b == len(h.buckets)-1 {
			bHi = float64(h.domain)
		}
		overlapLo, overlapHi := maxF(bLo, loF), minF(bHi, hiF)
		if overlapHi <= overlapLo {
			continue
		}
		est += float64(h.buckets[b]) * (overlapHi - overlapLo) / (bHi - bLo)
	}
	return est
}

// Selectivity estimates the fraction of rows matched by [lo, hi].
func (h *Histogram) Selectivity(lo, hi int64) float64 {
	if h.rows == 0 {
		return 0
	}
	return h.EstimateRange(lo, hi) / float64(h.rows)
}

// String summarises the histogram shape for diagnostics.
func (h *Histogram) String() string {
	var minB, maxB int64
	first := true
	for _, c := range h.buckets {
		if first || c < minB {
			minB = c
		}
		if first || c > maxB {
			maxB = c
		}
		first = false
	}
	return fmt.Sprintf("histogram{%d buckets over [0,%d), rows=%d, bucket min=%d max=%d}",
		len(h.buckets), h.domain, h.rows, minB, maxB)
}

func maxF(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

func minF(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}
