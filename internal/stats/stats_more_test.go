package stats

import (
	"strings"
	"testing"

	"pioqo/internal/table"
)

func TestDistinctCounts(t *testing.T) {
	// Synthetic-style uniqueness is easiest to check with a tiny domain:
	// materialized uniform draws over [0, n) collide, Zipf collides harder.
	uni := table.NewMaterialized(newManager(), "u", 10000, 33, 4)
	zipf := table.NewMaterializedZipf(newManager(), "z", 10000, 33, 4, 1.5)
	hu, hz := BuildHistogram(uni, 0), BuildHistogram(zipf, 0)

	if hu.Distinct() <= hz.Distinct() {
		t.Errorf("uniform distinct %d not above zipf distinct %d",
			hu.Distinct(), hz.Distinct())
	}
	// Uniform draws of n values from n keys leave ~63.2% distinct.
	ratio := hu.DistinctRatio()
	if ratio < 0.55 || ratio > 0.72 {
		t.Errorf("uniform distinct ratio %.3f, want ~0.632", ratio)
	}
	if hz.DistinctRatio() > 0.35 {
		t.Errorf("zipf(1.5) distinct ratio %.3f, want heavily collapsed", hz.DistinctRatio())
	}
	// Exact cross-check against a brute-force count.
	seen := map[int64]bool{}
	for r := int64(0); r < uni.Rows(); r++ {
		seen[uni.RowAt(r).C2] = true
	}
	if int64(len(seen)) != hu.Distinct() {
		t.Errorf("Distinct() = %d, brute force %d", hu.Distinct(), len(seen))
	}
}

func TestHistogramString(t *testing.T) {
	h := BuildHistogram(table.NewMaterialized(newManager(), "t", 1000, 10, 1), 8)
	s := h.String()
	for _, want := range []string{"8 buckets", "rows=1000"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() = %q missing %q", s, want)
		}
	}
}

func TestEmptyishHistogramSelectivity(t *testing.T) {
	h := &Histogram{domain: 100, width: 10, buckets: make([]int64, 10)}
	if got := h.Selectivity(0, 99); got != 0 {
		t.Errorf("zero-row selectivity = %f", got)
	}
}
