package stats

import (
	"math"
	"testing"
	"testing/quick"

	"pioqo/internal/device"
	"pioqo/internal/disk"
	"pioqo/internal/sim"
	"pioqo/internal/table"
)

func newManager() *disk.Manager {
	return disk.NewManager(device.NewSSD(sim.NewEnv(1), device.DefaultSSDConfig()))
}

// trueCount counts rows of t with lo <= C2 <= hi.
func trueCount(t table.Table, lo, hi int64) int64 {
	n := int64(0)
	for r := int64(0); r < t.Rows(); r++ {
		if c2 := t.RowAt(r).C2; c2 >= lo && c2 <= hi {
			n++
		}
	}
	return n
}

func TestHistogramUniformDataIsAccurate(t *testing.T) {
	tab := table.NewMaterialized(newManager(), "t", 50000, 33, 9)
	h := BuildHistogram(tab, 0)
	for _, rg := range []struct{ lo, hi int64 }{{0, 499}, {10000, 19999}, {49000, 49999}} {
		want := float64(trueCount(tab, rg.lo, rg.hi))
		got := h.EstimateRange(rg.lo, rg.hi)
		if math.Abs(got-want) > 0.15*want+20 {
			t.Errorf("range [%d,%d]: estimate %.0f, true %.0f", rg.lo, rg.hi, got, want)
		}
	}
}

func TestHistogramCapturesZipfSkew(t *testing.T) {
	tab := table.NewMaterializedZipf(newManager(), "t", 50000, 33, 9, 1.3)
	h := BuildHistogram(tab, 256)

	// Head of the distribution: far denser than uniform would predict.
	headTrue := float64(trueCount(tab, 0, 499))
	headEst := h.EstimateRange(0, 499)
	uniformEst := 500.0 / 50000 * 50000 // = 500 rows under uniformity
	if headTrue < 5*uniformEst {
		t.Fatalf("zipf data not skewed: %0.f rows in head vs uniform %0.f", headTrue, uniformEst)
	}
	if rel := headEst / headTrue; rel < 0.7 || rel > 1.4 {
		t.Errorf("head estimate %.0f vs true %.0f (ratio %.2f), want close", headEst, headTrue, rel)
	}

	// Tail: far sparser than uniform.
	tailTrue := float64(trueCount(tab, 25000, 49999))
	tailEst := h.EstimateRange(25000, 49999)
	if tailTrue > 0.02*50000 {
		t.Fatalf("zipf tail unexpectedly dense: %.0f rows", tailTrue)
	}
	if math.Abs(tailEst-tailTrue) > 0.5*tailTrue+200 {
		t.Errorf("tail estimate %.0f vs true %.0f", tailEst, tailTrue)
	}
}

func TestHistogramRangeEdgeCases(t *testing.T) {
	tab := table.NewMaterialized(newManager(), "t", 1000, 10, 3)
	h := BuildHistogram(tab, 16)
	if got := h.EstimateRange(5, 4); got != 0 {
		t.Errorf("inverted range estimate %f, want 0", got)
	}
	if got := h.EstimateRange(-100, -1); got != 0 {
		t.Errorf("below-domain estimate %f, want 0", got)
	}
	if got := h.EstimateRange(0, 1<<40); math.Abs(got-1000) > 1e-6 {
		t.Errorf("whole-domain estimate %f, want 1000", got)
	}
	if got := h.Selectivity(0, 1<<40); math.Abs(got-1) > 1e-9 {
		t.Errorf("whole-domain selectivity %f, want 1", got)
	}
}

func TestHistogramBucketCountClamped(t *testing.T) {
	tab := table.NewMaterialized(newManager(), "t", 10, 1, 3)
	h := BuildHistogram(tab, 1000)
	if h.Buckets() > 10 {
		t.Errorf("%d buckets for a 10-value domain", h.Buckets())
	}
}

// Property: bucket counts sum to the row count, and any sub-range estimate
// is between 0 and the total.
func TestPropertyHistogramConservation(t *testing.T) {
	tab := table.NewMaterialized(newManager(), "t", 5000, 33, 11)
	h := BuildHistogram(tab, 64)
	f := func(loRaw, hiRaw uint16) bool {
		lo, hi := int64(loRaw)%5000, int64(hiRaw)%5000
		if lo > hi {
			lo, hi = hi, lo
		}
		est := h.EstimateRange(lo, hi)
		return est >= 0 && est <= float64(h.Rows())+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
	if got := h.EstimateRange(0, 4999); math.Abs(got-5000) > 1e-6 {
		t.Errorf("full-range estimate %f, want 5000", got)
	}
}

func TestZipfExponentValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for zipf exponent <= 1")
		}
	}()
	table.NewMaterializedZipf(newManager(), "t", 100, 10, 1, 1.0)
}
