package stats

import (
	"testing"

	"pioqo/internal/table"
)

// TestBalancedCutsUniform: on uniform keys the quantile cuts land near the
// equal-width ones and split the multiset evenly.
func TestBalancedCutsUniform(t *testing.T) {
	keys := make([]int64, 8000)
	for i := range keys {
		keys[i] = int64(i % 1000) // uniform over [0,1000)
	}
	cuts := BalancedCuts(keys, 4)
	if len(cuts) != 3 {
		t.Fatalf("got %d cuts for 4 shards", len(cuts))
	}
	for i, want := range []int64{250, 500, 750} {
		if cuts[i] < want-10 || cuts[i] > want+10 {
			t.Errorf("cut %d = %d, want ~%d", i, cuts[i], want)
		}
	}
	counts := make([]int, 4)
	for _, k := range keys {
		counts[table.RangeShard(k, cuts)]++
	}
	for s, c := range counts {
		if c < 1900 || c > 2100 {
			t.Errorf("shard %d holds %d of 8000 uniform keys: %v", s, c, counts)
		}
	}
}

// TestBalancedCutsSkewed: on a skewed multiset the quantile cuts beat the
// equal-width split — the equal-width layout piles nearly everything onto
// shard 0, the balanced one spreads the mass up to the unsplittable hot
// key.
func TestBalancedCutsSkewed(t *testing.T) {
	cols := table.DrawColumnsZipf(20000, 7, 1.3)
	heaviest := func(cuts []int64) int {
		counts := make([]int, 4)
		for _, k := range cols.C2 {
			counts[table.RangeShard(k, cuts)]++
		}
		max := 0
		for _, c := range counts {
			if c > max {
				max = c
			}
		}
		return max
	}
	naive := heaviest(table.EqualWidthCuts(cols.Domain, 4))
	balanced := heaviest(BalancedCuts(cols.C2, 4))
	if naive < 19000 {
		t.Errorf("equal-width split on zipf 1.3: hot shard %d of 20000, expected nearly all", naive)
	}
	if balanced*2 > naive {
		t.Errorf("balanced cuts hot shard %d did not halve naive %d", balanced, naive)
	}
}

// TestBalancedCutsStrictlyAscend: duplicate-heavy input must still yield
// strictly ascending cuts, or RangeShard collapses shards to zero width.
func TestBalancedCutsStrictlyAscend(t *testing.T) {
	keys := make([]int64, 1000) // all zeros: every quantile is the same key
	cuts := BalancedCuts(keys, 8)
	for i := 1; i < len(cuts); i++ {
		if cuts[i] <= cuts[i-1] {
			t.Fatalf("cuts not strictly ascending: %v", cuts)
		}
	}
}
