package sql

import (
	"strings"
	"testing"

	"pioqo"
)

// --- lexer ---

func TestLexBasics(t *testing.T) {
	tokens, err := lex("SELECT max(C1) FROM t_1 WHERE C2 BETWEEN -5 AND 10;")
	if err != nil {
		t.Fatal(err)
	}
	var kinds []tokenKind
	var texts []string
	for _, tk := range tokens {
		kinds = append(kinds, tk.kind)
		texts = append(texts, tk.text)
	}
	if texts[0] != "SELECT" || texts[1] != "MAX" {
		t.Errorf("keywords not upper-cased: %v", texts[:2])
	}
	if tokens[1].raw != "max" {
		t.Errorf("raw spelling lost: %q", tokens[1].raw)
	}
	found := false
	for _, tk := range tokens {
		if tk.kind == tokenNumber && tk.text == "-5" {
			found = true
		}
	}
	if !found {
		t.Error("negative number not lexed")
	}
	if kinds[len(kinds)-1] != tokenEOF {
		t.Error("missing EOF token")
	}
}

func TestLexRejectsGarbage(t *testing.T) {
	for _, bad := range []string{"SELECT @", "a # b", "x !"} {
		if _, err := lex(bad); err == nil {
			t.Errorf("lex(%q) succeeded", bad)
		}
	}
}

// --- parser ---

func TestParseSelect(t *testing.T) {
	st, err := Parse("SELECT MAX(C1) FROM orders WHERE C2 BETWEEN 10 AND 99;")
	if err != nil {
		t.Fatal(err)
	}
	if st.Kind != StmtSelect || st.Agg != "MAX" || st.From != "orders" ||
		st.Low != 10 || st.High != 99 || st.Explain {
		t.Errorf("parsed %+v", st)
	}
}

func TestParseCountStar(t *testing.T) {
	st, err := Parse("SELECT COUNT(*) FROM t WHERE C2 BETWEEN 0 AND 5")
	if err != nil {
		t.Fatal(err)
	}
	if st.Agg != "COUNT" {
		t.Errorf("agg = %q", st.Agg)
	}
}

func TestParseExplain(t *testing.T) {
	st, err := Parse("EXPLAIN SELECT SUM(C1) FROM t WHERE C2 BETWEEN 0 AND 5")
	if err != nil {
		t.Fatal(err)
	}
	if !st.Explain || st.Agg != "SUM" {
		t.Errorf("parsed %+v", st)
	}
}

func TestParseExplainAnalyze(t *testing.T) {
	st, err := Parse("EXPLAIN ANALYZE SELECT SUM(C1) FROM t WHERE C2 BETWEEN 0 AND 5")
	if err != nil {
		t.Fatal(err)
	}
	if !st.Analyze || st.Agg != "SUM" {
		t.Errorf("parsed %+v", st)
	}
	st, err = Parse("EXPLAIN SELECT SUM(C1) FROM t WHERE C2 BETWEEN 0 AND 5")
	if err != nil {
		t.Fatal(err)
	}
	if st.Analyze {
		t.Error("plain EXPLAIN parsed as ANALYZE")
	}
}

func TestParseCreateTable(t *testing.T) {
	st, err := Parse("CREATE TABLE t33 ROWS 400000 ROWSPERPAGE 33 SYNTHETIC NOINDEX")
	if err != nil {
		t.Fatal(err)
	}
	if st.Table != "t33" || st.Rows != 400000 || st.RowsPerPage != 33 ||
		!st.Synthetic || !st.NoIndex {
		t.Errorf("parsed %+v", st)
	}
}

func TestParseCalibrate(t *testing.T) {
	st, err := Parse("CALIBRATE METHOD GW READS 800 THRESHOLD 0.2")
	if err != nil {
		t.Fatal(err)
	}
	if st.Method != "GW" || st.Reads != 800 || st.Threshold != 0.2 {
		t.Errorf("parsed %+v", st)
	}
	st, err = Parse("CALIBRATE")
	if err != nil {
		t.Fatal(err)
	}
	if st.Method != "" || st.Threshold != -1 {
		t.Errorf("defaults wrong: %+v", st)
	}
}

func TestParseSetAndShow(t *testing.T) {
	for _, ok := range []string{
		"SET OPTIMIZER OLD", "SET OPTIMIZER NEW",
		"SET SORTEDSCAN ON", "SET PREFETCHPLANNING OFF",
		"SHOW TABLES", "SHOW MODEL", "FLUSH",
	} {
		if _, err := Parse(ok); err != nil {
			t.Errorf("Parse(%q): %v", ok, err)
		}
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"SELECT AVG(C1) FROM t WHERE C2 BETWEEN 0 AND 1",
		"SELECT MAX(C2) FROM t WHERE C2 BETWEEN 0 AND 1",
		"SELECT MAX(C1) FROM t WHERE C1 BETWEEN 0 AND 1",
		"SELECT MAX(C1) FROM t",
		"CREATE TABLE t",
		"SET OPTIMIZER SIDEWAYS",
		"SHOW EVERYTHING",
		"DROP TABLE t",
		"SELECT MAX(C1) FROM t WHERE C2 BETWEEN 0 AND 1 garbage",
	}
	for _, input := range bad {
		if _, err := Parse(input); err == nil {
			t.Errorf("Parse(%q) succeeded", input)
		}
	}
}

// --- session ---

func newSession(t *testing.T) *Session {
	t.Helper()
	return NewSession(pioqo.New(pioqo.Config{Device: pioqo.SSD, PoolPages: 1024}))
}

func (s *Session) mustExec(t *testing.T, stmt string) string {
	t.Helper()
	out, err := s.Exec(stmt)
	if err != nil {
		t.Fatalf("Exec(%q): %v", stmt, err)
	}
	return out
}

func TestSessionEndToEnd(t *testing.T) {
	s := newSession(t)
	s.mustExec(t, "CREATE TABLE t ROWS 50000 ROWSPERPAGE 33 SYNTHETIC;")
	s.mustExec(t, "CALIBRATE READS 640;")

	out := s.mustExec(t, "SELECT COUNT(*) FROM t WHERE C2 BETWEEN 0 AND 499;")
	if !strings.Contains(out, "COUNT(*) = 500") {
		t.Errorf("count output %q, want 500 (synthetic keys are dense)", out)
	}

	out = s.mustExec(t, "SELECT MAX(C1) FROM t WHERE C2 BETWEEN 600 AND 599;")
	if !strings.Contains(out, "NULL") {
		t.Errorf("empty-range MAX output %q, want NULL", out)
	}

	out = s.mustExec(t, "EXPLAIN SELECT MAX(C1) FROM t WHERE C2 BETWEEN 0 AND 499;")
	if !strings.Contains(out, "=>") {
		t.Errorf("explain output %q missing chosen-plan marker", out)
	}

	out = s.mustExec(t, "EXPLAIN ANALYZE SELECT MAX(C1) FROM t WHERE C2 BETWEEN 0 AND 499;")
	// The preceding COUNT warmed this range, so the run is all buffer hits
	// (zero counter deltas, device reads included, are omitted).
	for _, want := range []string{"query ", "optimize", "-- metrics --", "buffer.hits", "exec.scans +1"} {
		if !strings.Contains(out, want) {
			t.Errorf("EXPLAIN ANALYZE output missing %q:\n%s", want, out)
		}
	}

	out = s.mustExec(t, "SHOW TABLES;")
	if out != "t" {
		t.Errorf("SHOW TABLES = %q", out)
	}

	out = s.mustExec(t, "SHOW MODEL;")
	if !strings.Contains(out, "qd32") {
		t.Errorf("SHOW MODEL output %q missing depth columns", out)
	}
}

func TestSessionOptimizerToggle(t *testing.T) {
	s := newSession(t)
	s.mustExec(t, "CREATE TABLE t ROWS 100000 ROWSPERPAGE 33 SYNTHETIC;")
	s.mustExec(t, "CALIBRATE READS 640;")

	s.mustExec(t, "SET OPTIMIZER OLD;")
	oldOut := s.mustExec(t, "EXPLAIN SELECT MAX(C1) FROM t WHERE C2 BETWEEN 0 AND 99;")
	s.mustExec(t, "SET OPTIMIZER NEW;")
	newOut := s.mustExec(t, "EXPLAIN SELECT MAX(C1) FROM t WHERE C2 BETWEEN 0 AND 99;")
	oldPlan := strings.SplitN(oldOut, "\n", 2)[0]
	newPlan := strings.SplitN(newOut, "\n", 2)[0]
	if oldPlan == newPlan {
		t.Errorf("old and new optimizers chose the same plan:\n%s", oldPlan)
	}
	if !strings.Contains(newPlan, "PIS") {
		t.Errorf("new optimizer plan %q, want a parallel index scan", newPlan)
	}
}

func TestSessionSortedScanToggle(t *testing.T) {
	s := newSession(t)
	s.mustExec(t, "CREATE TABLE t ROWS 50000 ROWSPERPAGE 33 SYNTHETIC;")
	s.mustExec(t, "CALIBRATE READS 640;")
	s.mustExec(t, "SET SORTEDSCAN ON;")
	out := s.mustExec(t, "EXPLAIN SELECT MAX(C1) FROM t WHERE C2 BETWEEN 0 AND 4999;")
	if !strings.Contains(out, "SortedIS") {
		t.Errorf("explain with sorted scan on lacks SortedIS candidates:\n%s", out)
	}
}

func TestParseJoin(t *testing.T) {
	st, err := Parse("SELECT COUNT(*) FROM fact JOIN dim ON C2 WHERE C2 BETWEEN 0 AND 99")
	if err != nil {
		t.Fatal(err)
	}
	if st.From != "fact" || st.Join != "dim" || st.Agg != "COUNT" {
		t.Errorf("parsed %+v", st)
	}
	if _, err := Parse("SELECT MAX(C1) FROM a JOIN b ON C1 WHERE C2 BETWEEN 0 AND 1"); err == nil {
		t.Error("join on C1 accepted")
	}
	if _, err := Parse("SELECT MAX(C1) FROM a JOIN ON C2 WHERE C2 BETWEEN 0 AND 1"); err == nil {
		t.Error("join without table accepted")
	}
}

func TestSessionJoin(t *testing.T) {
	s := newSession(t)
	s.mustExec(t, "CREATE TABLE dim ROWS 3000 ROWSPERPAGE 33;")
	s.mustExec(t, "CREATE TABLE fact ROWS 20000 ROWSPERPAGE 33;")
	s.mustExec(t, "CALIBRATE READS 640;")
	out := s.mustExec(t, "SELECT COUNT(*) FROM fact JOIN dim ON C2 WHERE C2 BETWEEN 0 AND 499;")
	if !strings.Contains(out, "pairs") || !strings.Contains(out, "build") {
		t.Errorf("join output %q", out)
	}
	out = s.mustExec(t, "EXPLAIN SELECT COUNT(*) FROM fact JOIN dim ON C2 WHERE C2 BETWEEN 0 AND 9;")
	if !strings.Contains(out, "Join") || !strings.Contains(out, "=>") {
		t.Errorf("join explain output %q", out)
	}
	if _, err := s.Exec("SELECT COUNT(*) FROM fact JOIN missing ON C2 WHERE C2 BETWEEN 0 AND 9;"); err == nil {
		t.Error("join against missing table succeeded")
	}
}

func TestParseGroupBy(t *testing.T) {
	st, err := Parse("SELECT COUNT(*) FROM t WHERE C2 BETWEEN 0 AND 999 GROUP BY C2 DIV 100")
	if err != nil {
		t.Fatal(err)
	}
	if st.GroupWidth != 100 {
		t.Errorf("group width = %d", st.GroupWidth)
	}
	bad := []string{
		"SELECT COUNT(*) FROM t WHERE C2 BETWEEN 0 AND 9 GROUP BY C1 DIV 10",
		"SELECT COUNT(*) FROM t WHERE C2 BETWEEN 0 AND 9 GROUP BY C2 DIV 0",
		"SELECT COUNT(*) FROM a JOIN b ON C2 WHERE C2 BETWEEN 0 AND 9 GROUP BY C2 DIV 10",
	}
	for _, input := range bad {
		if _, err := Parse(input); err == nil {
			t.Errorf("Parse(%q) succeeded", input)
		}
	}
}

func TestSessionGroupBy(t *testing.T) {
	s := newSession(t)
	s.mustExec(t, "CREATE TABLE t ROWS 50000 ROWSPERPAGE 33 SYNTHETIC;")
	s.mustExec(t, "CALIBRATE READS 640;")
	out := s.mustExec(t, "SELECT COUNT(*) FROM t WHERE C2 BETWEEN 0 AND 999 GROUP BY C2 DIV 100;")
	if !strings.Contains(out, "10 groups") {
		t.Errorf("group-by output %q, want 10 groups (synthetic keys dense)", out)
	}
	if !strings.Contains(out, "COUNT = 100") {
		t.Errorf("group-by output %q, want groups of exactly 100", out)
	}
}

func TestParseUpdate(t *testing.T) {
	st, err := Parse("UPDATE t SET C1 = C1 + 7 WHERE C2 BETWEEN 10 AND 99;")
	if err != nil {
		t.Fatal(err)
	}
	if st.Kind != StmtUpdate || st.From != "t" || st.Delta != 7 ||
		st.Low != 10 || st.High != 99 {
		t.Errorf("parsed %+v", st)
	}
	bad := []string{
		"UPDATE t SET C2 = C2 + 1 WHERE C2 BETWEEN 0 AND 1",
		"UPDATE t SET C1 = C1 WHERE C2 BETWEEN 0 AND 1",
		"UPDATE t SET C1 = C1 + 1",
	}
	for _, input := range bad {
		if _, err := Parse(input); err == nil {
			t.Errorf("Parse(%q) succeeded", input)
		}
	}
}

func TestSessionUpdate(t *testing.T) {
	s := newSession(t)
	s.mustExec(t, "CREATE TABLE t ROWS 5000 ROWSPERPAGE 33;")
	s.mustExec(t, "CALIBRATE READS 640;")
	before := s.mustExec(t, "SELECT SUM(C1) FROM t WHERE C2 BETWEEN 0 AND 99;")
	out := s.mustExec(t, "UPDATE t SET C1 = C1 + 5 WHERE C2 BETWEEN 0 AND 99;")
	if !strings.Contains(out, "rows updated") || !strings.Contains(out, "pages written") {
		t.Errorf("update output %q", out)
	}
	after := s.mustExec(t, "SELECT SUM(C1) FROM t WHERE C2 BETWEEN 0 AND 99;")
	if before == after {
		t.Error("SUM unchanged after update")
	}
	if _, err := s.Exec("UPDATE missing SET C1 = C1 + 1 WHERE C2 BETWEEN 0 AND 1;"); err == nil {
		t.Error("update of missing table succeeded")
	}
}

func TestGroupBySlashSyntax(t *testing.T) {
	if _, err := Parse("SELECT COUNT(*) FROM t WHERE C2 BETWEEN 0 AND 9 GROUP BY C2 / 5"); err != nil {
		t.Errorf("slash grouping rejected: %v", err)
	}
}

func TestSessionErrors(t *testing.T) {
	s := newSession(t)
	if _, err := s.Exec("SELECT MAX(C1) FROM missing WHERE C2 BETWEEN 0 AND 1;"); err == nil {
		t.Error("query on missing table succeeded")
	}
	if _, err := s.Exec("SHOW MODEL;"); err == nil {
		t.Error("SHOW MODEL before calibration succeeded")
	}
	s.mustExec(t, "CREATE TABLE t ROWS 100 ROWSPERPAGE 10;")
	if _, err := s.Exec("SELECT MAX(C1) FROM t WHERE C2 BETWEEN 0 AND 1;"); err == nil {
		t.Error("query before calibration succeeded")
	}
	if _, err := s.Exec("CREATE TABLE t ROWS 100 ROWSPERPAGE 10;"); err == nil {
		t.Error("duplicate table succeeded")
	}
	if out := s.mustExec(t, "   "); out != "" {
		t.Errorf("blank statement output %q", out)
	}
	if _, err := s.Exec("EXPLAIN ANALYZE SELECT COUNT(*) FROM t WHERE C2 BETWEEN 0 AND 9 GROUP BY C2 / 5;"); err == nil {
		t.Error("EXPLAIN ANALYZE with GROUP BY succeeded")
	}
}
