// Package sql implements a small SQL dialect over the pioqo engine,
// covering the paper's probe-query shape plus the DDL and control
// statements needed to drive experiments interactively:
//
//	CREATE TABLE t ROWS 400000 ROWSPERPAGE 33 [SYNTHETIC] [NOINDEX];
//	CALIBRATE [METHOD AW|GW|MT] [READS n] [THRESHOLD 0.2];
//	SELECT MAX(C1) FROM t WHERE C2 BETWEEN 0 AND 999;
//	SELECT COUNT(*) FROM fact JOIN dim ON C2 WHERE C2 BETWEEN 0 AND 999;
//	SELECT SUM(C1) FROM t WHERE C2 BETWEEN 0 AND 9999 GROUP BY C2 / 1000;
//	UPDATE t SET C1 = C1 + 10 WHERE C2 BETWEEN 0 AND 999;
//	EXPLAIN SELECT COUNT(*) FROM t WHERE C2 BETWEEN 0 AND 999;
//	SET OPTIMIZER OLD | NEW;
//	SET SORTEDSCAN ON | OFF;
//	SET PREFETCHPLANNING ON | OFF;
//	SHOW TABLES;  SHOW MODEL;  FLUSH;
//
// Keywords are case-insensitive; statements end at ';' or end of input.
package sql

import (
	"fmt"
	"strings"
	"unicode"
)

// tokenKind classifies lexer output.
type tokenKind int

const (
	tokenEOF tokenKind = iota
	tokenIdent
	tokenNumber
	tokenSymbol // ( ) * , ;
)

type token struct {
	kind tokenKind
	text string // idents upper-cased; numbers and symbols verbatim
	raw  string // original spelling, for error messages and table names
	pos  int
}

// lex tokenizes input. Errors are positional.
func lex(input string) ([]token, error) {
	var tokens []token
	i := 0
	for i < len(input) {
		c := rune(input[i])
		switch {
		case unicode.IsSpace(c):
			i++
		case c == '(' || c == ')' || c == '*' || c == ',' || c == ';' || c == '=' || c == '+' || c == '/':
			tokens = append(tokens, token{tokenSymbol, string(c), string(c), i})
			i++
		case c == '-' || c == '.' || unicode.IsDigit(c):
			start := i
			if c == '-' {
				i++
			}
			seenDot := false
			for i < len(input) {
				d := input[i]
				if d == '.' && !seenDot {
					seenDot = true
					i++
					continue
				}
				if d < '0' || d > '9' {
					break
				}
				i++
			}
			text := input[start:i]
			if text == "-" || text == "." || text == "-." {
				return nil, fmt.Errorf("sql: invalid number at offset %d", start)
			}
			tokens = append(tokens, token{tokenNumber, text, text, start})
		case unicode.IsLetter(c) || c == '_':
			start := i
			for i < len(input) {
				d := rune(input[i])
				if !unicode.IsLetter(d) && !unicode.IsDigit(d) && d != '_' {
					break
				}
				i++
			}
			raw := input[start:i]
			tokens = append(tokens, token{tokenIdent, strings.ToUpper(raw), raw, start})
		default:
			return nil, fmt.Errorf("sql: unexpected character %q at offset %d", c, i)
		}
	}
	tokens = append(tokens, token{tokenEOF, "", "", len(input)})
	return tokens, nil
}
