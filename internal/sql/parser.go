package sql

import (
	"fmt"
	"strconv"
)

// Statement is a parsed statement; exactly one field group is meaningful,
// selected by Kind.
type Statement struct {
	Kind StatementKind

	// CREATE TABLE
	Table       string
	Rows        int64
	RowsPerPage int
	Synthetic   bool
	NoIndex     bool

	// CALIBRATE
	Method    string // "AW", "GW", "MT" ("" = default)
	Reads     int
	Threshold float64 // -1 when not given

	// SELECT / EXPLAIN SELECT
	Agg     string // MAX, MIN, SUM, COUNT
	From    string
	Join    string // "" for single-table queries; else the build table
	Low     int64
	High    int64
	Explain bool
	// Analyze marks EXPLAIN ANALYZE: execute the query and report its span
	// tree and attributed metrics alongside the result.
	Analyze bool

	// GROUP BY C2 / width (0 = no grouping)
	GroupWidth int64

	// UPDATE ... SET C1 = C1 + Delta
	Delta int64

	// SET
	Option string // OPTIMIZER, SORTEDSCAN, PREFETCHPLANNING
	Value  string // OLD/NEW/ON/OFF

	// SHOW
	Show string // TABLES, MODEL
}

// StatementKind discriminates Statement.
type StatementKind int

const (
	StmtCreateTable StatementKind = iota
	StmtCalibrate
	StmtSelect
	StmtUpdate
	StmtSet
	StmtShow
	StmtFlush
)

// Parse parses one statement (a trailing ';' is allowed).
func Parse(input string) (*Statement, error) {
	tokens, err := lex(input)
	if err != nil {
		return nil, err
	}
	p := &parser{tokens: tokens}
	st, err := p.statement()
	if err != nil {
		return nil, err
	}
	p.accept(tokenSymbol, ";")
	if !p.at(tokenEOF, "") {
		return nil, p.errorf("trailing input %q", p.peek().raw)
	}
	return st, nil
}

type parser struct {
	tokens []token
	pos    int
}

func (p *parser) peek() token { return p.tokens[p.pos] }

func (p *parser) at(kind tokenKind, text string) bool {
	t := p.peek()
	return t.kind == kind && (text == "" || t.text == text)
}

func (p *parser) accept(kind tokenKind, text string) bool {
	if p.at(kind, text) {
		p.pos++
		return true
	}
	return false
}

func (p *parser) expect(kind tokenKind, text string) (token, error) {
	t := p.peek()
	if !p.at(kind, text) {
		want := text
		if want == "" {
			want = map[tokenKind]string{
				tokenIdent: "identifier", tokenNumber: "number", tokenSymbol: "symbol",
			}[kind]
		}
		return t, p.errorf("expected %s, got %q", want, t.raw)
	}
	p.pos++
	return t, nil
}

func (p *parser) errorf(format string, args ...interface{}) error {
	return fmt.Errorf("sql: offset %d: "+format, append([]interface{}{p.peek().pos}, args...)...)
}

func (p *parser) number() (int64, error) {
	t, err := p.expect(tokenNumber, "")
	if err != nil {
		return 0, err
	}
	n, err := strconv.ParseInt(t.text, 10, 64)
	if err != nil {
		return 0, p.errorf("bad integer %q", t.raw)
	}
	return n, nil
}

func (p *parser) float() (float64, error) {
	t, err := p.expect(tokenNumber, "")
	if err != nil {
		return 0, err
	}
	f, err := strconv.ParseFloat(t.text, 64)
	if err != nil {
		return 0, p.errorf("bad number %q", t.raw)
	}
	return f, nil
}

func (p *parser) statement() (*Statement, error) {
	t := p.peek()
	if t.kind != tokenIdent {
		return nil, p.errorf("expected a statement, got %q", t.raw)
	}
	switch t.text {
	case "CREATE":
		return p.createTable()
	case "CALIBRATE":
		return p.calibrate()
	case "SELECT":
		return p.selectStmt(false)
	case "UPDATE":
		return p.updateStmt()
	case "EXPLAIN":
		p.pos++
		analyze := p.accept(tokenIdent, "ANALYZE")
		st, err := p.selectStmt(true)
		if err != nil {
			return nil, err
		}
		st.Analyze = analyze
		return st, nil
	case "SET":
		return p.set()
	case "SHOW":
		return p.show()
	case "FLUSH":
		p.pos++
		return &Statement{Kind: StmtFlush}, nil
	default:
		return nil, p.errorf("unknown statement %q", t.raw)
	}
}

func (p *parser) createTable() (*Statement, error) {
	p.pos++ // CREATE
	if _, err := p.expect(tokenIdent, "TABLE"); err != nil {
		return nil, err
	}
	name, err := p.expect(tokenIdent, "")
	if err != nil {
		return nil, err
	}
	st := &Statement{Kind: StmtCreateTable, Table: name.raw}
	if _, err := p.expect(tokenIdent, "ROWS"); err != nil {
		return nil, err
	}
	if st.Rows, err = p.number(); err != nil {
		return nil, err
	}
	if _, err := p.expect(tokenIdent, "ROWSPERPAGE"); err != nil {
		return nil, err
	}
	rpp, err := p.number()
	if err != nil {
		return nil, err
	}
	st.RowsPerPage = int(rpp)
	for {
		switch {
		case p.accept(tokenIdent, "SYNTHETIC"):
			st.Synthetic = true
		case p.accept(tokenIdent, "NOINDEX"):
			st.NoIndex = true
		default:
			return st, nil
		}
	}
}

func (p *parser) calibrate() (*Statement, error) {
	p.pos++ // CALIBRATE
	st := &Statement{Kind: StmtCalibrate, Threshold: -1}
	for {
		switch {
		case p.accept(tokenIdent, "METHOD"):
			m, err := p.expect(tokenIdent, "")
			if err != nil {
				return nil, err
			}
			switch m.text {
			case "AW", "GW", "MT":
				st.Method = m.text
			default:
				return nil, p.errorf("unknown calibration method %q", m.raw)
			}
		case p.accept(tokenIdent, "READS"):
			n, err := p.number()
			if err != nil {
				return nil, err
			}
			st.Reads = int(n)
		case p.accept(tokenIdent, "THRESHOLD"):
			f, err := p.float()
			if err != nil {
				return nil, err
			}
			st.Threshold = f
		default:
			return st, nil
		}
	}
}

func (p *parser) selectStmt(explain bool) (*Statement, error) {
	if _, err := p.expect(tokenIdent, "SELECT"); err != nil {
		return nil, err
	}
	st := &Statement{Kind: StmtSelect, Explain: explain}
	agg, err := p.expect(tokenIdent, "")
	if err != nil {
		return nil, err
	}
	switch agg.text {
	case "MAX", "MIN", "SUM", "COUNT":
		st.Agg = agg.text
	default:
		return nil, p.errorf("unsupported aggregate %q (MAX, MIN, SUM, COUNT)", agg.raw)
	}
	if _, err := p.expect(tokenSymbol, "("); err != nil {
		return nil, err
	}
	if st.Agg == "COUNT" {
		if !p.accept(tokenSymbol, "*") && !p.accept(tokenIdent, "C1") {
			return nil, p.errorf("COUNT takes * or C1")
		}
	} else {
		if _, err := p.expect(tokenIdent, "C1"); err != nil {
			return nil, p.errorf("aggregates apply to column C1")
		}
	}
	if _, err := p.expect(tokenSymbol, ")"); err != nil {
		return nil, err
	}
	if _, err := p.expect(tokenIdent, "FROM"); err != nil {
		return nil, err
	}
	from, err := p.expect(tokenIdent, "")
	if err != nil {
		return nil, err
	}
	st.From = from.raw
	if p.accept(tokenIdent, "JOIN") {
		join, err := p.expect(tokenIdent, "")
		if err != nil {
			return nil, err
		}
		st.Join = join.raw
		if _, err := p.expect(tokenIdent, "ON"); err != nil {
			return nil, err
		}
		if _, err := p.expect(tokenIdent, "C2"); err != nil {
			return nil, p.errorf("joins are equi-joins on C2")
		}
	}
	if _, err := p.expect(tokenIdent, "WHERE"); err != nil {
		return nil, err
	}
	if _, err := p.expect(tokenIdent, "C2"); err != nil {
		return nil, p.errorf("predicates apply to column C2")
	}
	if _, err := p.expect(tokenIdent, "BETWEEN"); err != nil {
		return nil, err
	}
	if st.Low, err = p.number(); err != nil {
		return nil, err
	}
	if _, err := p.expect(tokenIdent, "AND"); err != nil {
		return nil, err
	}
	if st.High, err = p.number(); err != nil {
		return nil, err
	}
	if p.accept(tokenIdent, "GROUP") {
		if st.Join != "" {
			return nil, p.errorf("GROUP BY is not supported on joins")
		}
		if _, err := p.expect(tokenIdent, "BY"); err != nil {
			return nil, err
		}
		if _, err := p.expect(tokenIdent, "C2"); err != nil {
			return nil, p.errorf("grouping is by C2 / width")
		}
		if !p.accept(tokenIdent, "DIV") && !p.accept(tokenSymbol, "/") {
			return nil, p.errorf("grouping is by C2 / width")
		}
		if st.GroupWidth, err = p.number(); err != nil {
			return nil, err
		}
		if st.GroupWidth <= 0 {
			return nil, p.errorf("group width must be positive")
		}
	}
	return st, nil
}

// updateStmt parses UPDATE t SET C1 = C1 + n WHERE C2 BETWEEN a AND b.
func (p *parser) updateStmt() (*Statement, error) {
	p.pos++ // UPDATE
	name, err := p.expect(tokenIdent, "")
	if err != nil {
		return nil, err
	}
	st := &Statement{Kind: StmtUpdate, From: name.raw}
	if _, err := p.expect(tokenIdent, "SET"); err != nil {
		return nil, err
	}
	if _, err := p.expect(tokenIdent, "C1"); err != nil {
		return nil, p.errorf("updates modify column C1")
	}
	if _, err := p.expect(tokenSymbol, "="); err != nil {
		return nil, p.errorf("update form is SET C1 = C1 + n")
	}
	if _, err := p.expect(tokenIdent, "C1"); err != nil {
		return nil, p.errorf("update form is SET C1 = C1 + n")
	}
	if _, err := p.expect(tokenSymbol, "+"); err != nil {
		return nil, p.errorf("update form is SET C1 = C1 + n")
	}
	if st.Delta, err = p.number(); err != nil {
		return nil, err
	}
	if _, err := p.expect(tokenIdent, "WHERE"); err != nil {
		return nil, err
	}
	if _, err := p.expect(tokenIdent, "C2"); err != nil {
		return nil, p.errorf("predicates apply to column C2")
	}
	if _, err := p.expect(tokenIdent, "BETWEEN"); err != nil {
		return nil, err
	}
	if st.Low, err = p.number(); err != nil {
		return nil, err
	}
	if _, err := p.expect(tokenIdent, "AND"); err != nil {
		return nil, err
	}
	if st.High, err = p.number(); err != nil {
		return nil, err
	}
	return st, nil
}

func (p *parser) set() (*Statement, error) {
	p.pos++ // SET
	opt, err := p.expect(tokenIdent, "")
	if err != nil {
		return nil, err
	}
	st := &Statement{Kind: StmtSet, Option: opt.text}
	val, err := p.expect(tokenIdent, "")
	if err != nil {
		return nil, err
	}
	st.Value = val.text
	switch st.Option {
	case "OPTIMIZER":
		if st.Value != "OLD" && st.Value != "NEW" {
			return nil, p.errorf("SET OPTIMIZER takes OLD or NEW")
		}
	case "SORTEDSCAN", "PREFETCHPLANNING":
		if st.Value != "ON" && st.Value != "OFF" {
			return nil, p.errorf("SET %s takes ON or OFF", st.Option)
		}
	default:
		return nil, p.errorf("unknown option %q", opt.raw)
	}
	return st, nil
}

func (p *parser) show() (*Statement, error) {
	p.pos++ // SHOW
	what, err := p.expect(tokenIdent, "")
	if err != nil {
		return nil, err
	}
	if what.text != "TABLES" && what.text != "MODEL" {
		return nil, p.errorf("SHOW takes TABLES or MODEL")
	}
	return &Statement{Kind: StmtShow, Show: what.text}, nil
}
