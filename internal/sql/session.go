package sql

import (
	"fmt"
	"strings"

	"pioqo"
)

// Session interprets statements against a pioqo system, holding the
// session-level optimizer settings.
type Session struct {
	sys *pioqo.System

	depthOblivious   bool
	sortedScan       bool
	prefetchPlanning bool
}

// NewSession returns a session over sys.
func NewSession(sys *pioqo.System) *Session {
	return &Session{sys: sys}
}

// Exec parses and executes one statement, returning its textual output.
func (s *Session) Exec(input string) (string, error) {
	if strings.TrimSpace(input) == "" {
		return "", nil
	}
	st, err := Parse(input)
	if err != nil {
		return "", err
	}
	switch st.Kind {
	case StmtCreateTable:
		return s.createTable(st)
	case StmtCalibrate:
		return s.calibrate(st)
	case StmtSelect:
		return s.selectStmt(st)
	case StmtUpdate:
		return s.updateStmt(st)
	case StmtSet:
		return s.set(st)
	case StmtShow:
		return s.show(st)
	case StmtFlush:
		s.sys.FlushBufferPool()
		return "buffer pool flushed", nil
	default:
		return "", fmt.Errorf("sql: unhandled statement kind %d", st.Kind)
	}
}

func (s *Session) createTable(st *Statement) (string, error) {
	var opts []pioqo.TableOption
	if st.Synthetic {
		opts = append(opts, pioqo.WithSyntheticData())
	}
	if st.NoIndex {
		opts = append(opts, pioqo.WithoutIndex())
	}
	tab, err := s.sys.CreateTable(st.Table, st.Rows, st.RowsPerPage, opts...)
	if err != nil {
		return "", err
	}
	return fmt.Sprintf("table %q created: %d rows, %d pages, indexed=%v",
		tab.Name(), tab.Rows(), tab.Pages(), tab.Indexed()), nil
}

func (s *Session) calibrate(st *Statement) (string, error) {
	opts := pioqo.CalibrationOptions{}
	switch st.Method {
	case "GW":
		opts.Method = pioqo.GroupWait
	case "MT":
		opts.Method = pioqo.MultiThread
	}
	if st.Reads > 0 {
		opts.MaxReads = st.Reads
	}
	if st.Threshold >= 0 {
		opts.StopThreshold = st.Threshold
		if st.Threshold == 0 {
			opts.StopThreshold = -1 // explicit 0 disables
		}
	}
	cal, err := s.sys.Calibrate(opts)
	if err != nil {
		return "", err
	}
	return fmt.Sprintf("calibrated %d bands x %d depths in %v (%d reads, stopped_early=%v)",
		len(cal.Bands), len(cal.Depths), cal.Elapsed, cal.Reads, cal.StoppedEarly), nil
}

func (s *Session) planOptions() pioqo.PlanOptions {
	return pioqo.PlanOptions{
		DepthOblivious:         s.depthOblivious,
		EnableSortedScan:       s.sortedScan,
		EnablePrefetchPlanning: s.prefetchPlanning,
	}
}

func (s *Session) query(st *Statement) (pioqo.Query, error) {
	tab, ok := s.sys.TableByName(st.From)
	if !ok {
		return pioqo.Query{}, fmt.Errorf("sql: unknown table %q", st.From)
	}
	q := pioqo.Query{Table: tab, Low: st.Low, High: st.High}
	switch st.Agg {
	case "MIN":
		q.Agg = pioqo.Min
	case "SUM":
		q.Agg = pioqo.Sum
	case "COUNT":
		q.Agg = pioqo.Count
	}
	return q, nil
}

func (s *Session) selectStmt(st *Statement) (string, error) {
	if st.Analyze && (st.Join != "" || st.GroupWidth > 0) {
		return "", fmt.Errorf("sql: EXPLAIN ANALYZE supports single-table scans only")
	}
	if st.Join != "" {
		return s.joinStmt(st)
	}
	if st.GroupWidth > 0 {
		return s.groupByStmt(st)
	}
	q, err := s.query(st)
	if err != nil {
		return "", err
	}
	if st.Analyze {
		return s.explainAnalyze(st, q)
	}
	if st.Explain {
		plans, err := s.sys.Explain(q, s.planOptions())
		if err != nil {
			return "", err
		}
		var b strings.Builder
		for i, p := range plans {
			marker := "  "
			if i == 0 {
				marker = "=>"
			}
			fmt.Fprintf(&b, "%s %v  io=%v cpu=%v\n", marker, p, p.EstimatedIO, p.EstimatedCPU)
		}
		return strings.TrimRight(b.String(), "\n"), nil
	}
	res, err := s.sys.Execute(q, pioqo.WithPlanOptions(s.planOptions()))
	if err != nil {
		return "", err
	}
	value := fmt.Sprint(res.Value)
	if !res.Found {
		value = "NULL"
	}
	return fmt.Sprintf("%s(%s) = %s  (%d rows, %v via %v)",
		st.Agg, aggArg(st.Agg), value, res.Rows, res.Runtime, res.Plan), nil
}

// explainAnalyze runs the query with telemetry capture and renders the
// answer, the virtual-time span tree (query → optimize → operator →
// workers), and the engine metrics attributed to exactly this query.
func (s *Session) explainAnalyze(st *Statement, q pioqo.Query) (string, error) {
	var tel pioqo.QueryTelemetry
	res, err := s.sys.Execute(q,
		pioqo.WithPlanOptions(s.planOptions()), pioqo.WithTrace(&tel))
	if err != nil {
		return "", err
	}
	value := fmt.Sprint(res.Value)
	if !res.Found {
		value = "NULL"
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s(%s) = %s  (%d rows, %v via %v)\n",
		st.Agg, aggArg(st.Agg), value, res.Rows, res.Runtime, res.Plan)
	b.WriteString(tel.Tree())
	if m := tel.Metrics.String(); m != "" {
		b.WriteString("\n-- metrics --\n")
		b.WriteString(m)
	}
	return b.String(), nil
}

// groupByStmt executes SELECT agg ... GROUP BY C2 DIV width as a parallel
// hash group-by; EXPLAIN is not supported for grouped queries.
func (s *Session) groupByStmt(st *Statement) (string, error) {
	if st.Explain {
		return "", fmt.Errorf("sql: EXPLAIN is not supported with GROUP BY")
	}
	q, err := s.query(st)
	if err != nil {
		return "", err
	}
	res, err := s.sys.ExecuteGroupBy(pioqo.GroupByQuery{
		Table:      q.Table,
		Low:        q.Low,
		High:       q.High,
		GroupWidth: st.GroupWidth,
		Agg:        q.Agg,
	}, pioqo.WithPlanOptions(s.planOptions()))
	if err != nil {
		return "", err
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%d groups over %d rows in %v via %v\n",
		len(res.Groups), res.Rows, res.Runtime, res.Plan)
	const maxShown = 20
	for i, g := range res.Groups {
		if i == maxShown {
			fmt.Fprintf(&b, "... (%d more groups)\n", len(res.Groups)-maxShown)
			break
		}
		fmt.Fprintf(&b, "group %d: %s = %d (%d rows)\n", g.Key, st.Agg, g.Value, g.Rows)
	}
	return strings.TrimRight(b.String(), "\n"), nil
}

// joinStmt executes (or, with EXPLAIN, plans) SELECT agg FROM probe JOIN
// build ON C2 WHERE ... .
func (s *Session) joinStmt(st *Statement) (string, error) {
	probe, ok := s.sys.TableByName(st.From)
	if !ok {
		return "", fmt.Errorf("sql: unknown table %q", st.From)
	}
	build, ok := s.sys.TableByName(st.Join)
	if !ok {
		return "", fmt.Errorf("sql: unknown table %q", st.Join)
	}
	jq := pioqo.JoinQuery{Build: build, Probe: probe, Low: st.Low, High: st.High}
	switch st.Agg {
	case "MIN":
		jq.Agg = pioqo.Min
	case "SUM":
		jq.Agg = pioqo.Sum
	case "COUNT":
		jq.Agg = pioqo.Count
	}
	if st.Explain {
		plan, err := s.sys.PlanJoin(jq, s.planOptions())
		if err != nil {
			return "", err
		}
		return fmt.Sprintf("=> %v", plan), nil
	}
	res, err := s.sys.ExecuteJoin(jq, pioqo.WithPlanOptions(s.planOptions()))
	if err != nil {
		return "", err
	}
	value := fmt.Sprint(res.Value)
	if !res.Found {
		value = "NULL"
	}
	return fmt.Sprintf("%s(%s) = %s  (%d pairs, %v; build %v, probe %v)",
		st.Agg, aggArg(st.Agg), value, res.Pairs, res.Runtime,
		res.BuildPlan, res.ProbePlan), nil
}

func aggArg(agg string) string {
	if agg == "COUNT" {
		return "*"
	}
	return "C1"
}

// updateStmt executes UPDATE t SET C1 = C1 + n WHERE C2 BETWEEN a AND b.
func (s *Session) updateStmt(st *Statement) (string, error) {
	tab, ok := s.sys.TableByName(st.From)
	if !ok {
		return "", fmt.Errorf("sql: unknown table %q", st.From)
	}
	res, err := s.sys.Update(pioqo.UpdateQuery{
		Table: tab, Low: st.Low, High: st.High, Delta: st.Delta,
	}, pioqo.WithPlanOptions(s.planOptions()))
	if err != nil {
		return "", err
	}
	return fmt.Sprintf("%d rows updated, %d pages written, %v via %v",
		res.RowsUpdated, res.PagesWritten, res.Runtime, res.Plan), nil
}

func (s *Session) set(st *Statement) (string, error) {
	switch st.Option {
	case "OPTIMIZER":
		s.depthOblivious = st.Value == "OLD"
	case "SORTEDSCAN":
		s.sortedScan = st.Value == "ON"
	case "PREFETCHPLANNING":
		s.prefetchPlanning = st.Value == "ON"
	}
	return fmt.Sprintf("%s = %s", st.Option, st.Value), nil
}

func (s *Session) show(st *Statement) (string, error) {
	switch st.Show {
	case "TABLES":
		names := s.sys.Tables()
		if len(names) == 0 {
			return "(no tables)", nil
		}
		return strings.Join(names, "\n"), nil
	case "MODEL":
		model, err := s.sys.Model()
		if err != nil {
			return "", err
		}
		var b strings.Builder
		fmt.Fprintf(&b, "band_pages")
		for _, d := range model.Depths() {
			fmt.Fprintf(&b, "\tqd%d", d)
		}
		for _, band := range model.Bands() {
			fmt.Fprintf(&b, "\n%d", band)
			for _, d := range model.Depths() {
				fmt.Fprintf(&b, "\t%.1f", model.PageCost(band, d))
			}
		}
		return b.String(), nil
	}
	return "", fmt.Errorf("sql: unknown SHOW %q", st.Show)
}
