package trace

import (
	"strings"
	"testing"

	"pioqo/internal/device"
	"pioqo/internal/exec"
	"pioqo/internal/sim"
	"pioqo/internal/workload"
)

func TestProfilerObservesPISQueueDepth(t *testing.T) {
	// §2 of the paper: PIS with n workers sustains a device queue depth
	// of n. Profile an 8-way PIS and check the plateau.
	s := workload.New(workload.Options{
		Device: workload.SSD, Rows: 60000, RowsPerPage: 1,
		PoolPages: 512, Synthetic: true,
	})
	prof := NewProfiler(s.Env, s.Dev, 500*sim.Microsecond)
	lo, hi := s.RangeFor(0.3)
	spec := s.Spec(exec.IndexScan, 8, lo, hi)

	var res exec.Result
	s.Env.Go("query", func(p *sim.Proc) {
		prof.Start()
		res = exec.RunScan(p, s.Ctx, spec)
		prof.Stop()
	})
	s.Env.Run()
	if res.RowsMatched == 0 {
		t.Fatal("query matched nothing")
	}
	st := prof.Profile().Stats()
	if st.Samples < 50 {
		t.Fatalf("only %d samples; interval too coarse for this run", st.Samples)
	}
	if st.P50 != 8 {
		t.Errorf("median queue depth = %d, want 8 (PIS with 8 workers)", st.P50)
	}
	if st.Mean < 6 || st.Mean > 9 {
		t.Errorf("mean queue depth = %.1f, want ~8", st.Mean)
	}
	if st.Max > 10 {
		t.Errorf("max queue depth = %d, want bounded near 8", st.Max)
	}
}

func TestProfilerIdleDeviceReadsZero(t *testing.T) {
	env := sim.NewEnv(1)
	dev := device.NewSSD(env, device.DefaultSSDConfig())
	prof := NewProfiler(env, dev, sim.Millisecond)
	env.Go("idle", func(p *sim.Proc) {
		prof.Start()
		p.Sleep(10 * sim.Millisecond)
		prof.Stop()
	})
	env.Run()
	st := prof.Profile().Stats()
	if st.Samples != 0 {
		t.Errorf("idle profile has %d non-zero-trimmed samples, want 0", st.Samples)
	}
}

func TestStatsPercentiles(t *testing.T) {
	pr := Profile{}
	for i, d := range []int{0, 2, 4, 4, 4, 8, 0} { // zeros trimmed
		pr.Samples = append(pr.Samples, Sample{At: sim.Time(i), Depth: d})
	}
	st := pr.Stats()
	if st.Samples != 5 {
		t.Fatalf("samples = %d, want 5 after trimming", st.Samples)
	}
	if st.P50 != 4 || st.Max != 8 {
		t.Errorf("p50=%d max=%d, want 4 and 8", st.P50, st.Max)
	}
	if st.Mean != 4.4 {
		t.Errorf("mean = %f, want 4.4", st.Mean)
	}
	if st.P90 != 8 {
		t.Errorf("p90 = %d, want 8", st.P90)
	}
}

func TestStatsPercentilesSmallProfiles(t *testing.T) {
	// Nearest-rank on tiny profiles: P50 of two samples is the lower one
	// (rank ceil(0.5·2) = 1), and every percentile stays in range.
	cases := []struct {
		depths   []int
		p50, p90 int
	}{
		{[]int{5}, 5, 5},
		{[]int{3, 7}, 3, 7},
		{[]int{2, 5, 9}, 5, 9},
	}
	for _, c := range cases {
		pr := Profile{}
		for i, d := range c.depths {
			pr.Samples = append(pr.Samples, Sample{At: sim.Time(i), Depth: d})
		}
		st := pr.Stats()
		if st.P50 != c.p50 || st.P90 != c.p90 {
			t.Errorf("depths %v: p50=%d p90=%d, want %d and %d",
				c.depths, st.P50, st.P90, c.p50, c.p90)
		}
	}
}

func TestHistogramBucketsCoverObservedRange(t *testing.T) {
	// A constant-depth profile must render as a single exact bucket; the
	// old [0, max+1) bucketing stretched the top bucket well past the
	// observed range.
	pr := Profile{}
	for i := 0; i < 20; i++ {
		pr.Samples = append(pr.Samples, Sample{At: sim.Time(i), Depth: 8})
	}
	out := pr.Histogram(4)
	if lines := strings.Split(out, "\n"); len(lines) != 1 {
		t.Fatalf("constant-depth histogram has %d buckets, want 1:\n%s", len(lines), out)
	}
	if !strings.Contains(out, "qd   8-  8") {
		t.Errorf("bucket range not pinned to the observed depth:\n%s", out)
	}

	// A narrow high range [7, 8] with a generous bucket budget clamps to
	// one bucket per depth, ending exactly at the maximum.
	pr = Profile{}
	for i := 0; i < 20; i++ {
		pr.Samples = append(pr.Samples, Sample{At: sim.Time(i), Depth: 7 + i%2})
	}
	out = pr.Histogram(8)
	lines := strings.Split(out, "\n")
	if len(lines) != 2 {
		t.Fatalf("two-depth histogram has %d buckets, want 2:\n%s", len(lines), out)
	}
	if !strings.Contains(lines[0], "qd   7-  7") || !strings.Contains(lines[1], "qd   8-  8") {
		t.Errorf("bucket edges not integer-aligned to the observed range:\n%s", out)
	}
}

func TestHistogramRenders(t *testing.T) {
	pr := Profile{}
	for i := 0; i < 100; i++ {
		pr.Samples = append(pr.Samples, Sample{At: sim.Time(i), Depth: 1 + i%4})
	}
	out := pr.Histogram(4)
	if !strings.Contains(out, "#") {
		t.Errorf("histogram has no bars:\n%s", out)
	}
	if len(strings.Split(out, "\n")) != 4 {
		t.Errorf("histogram rows != 4:\n%s", out)
	}
	if got := (Profile{}).Histogram(4); got != "(no samples)" {
		t.Errorf("empty profile histogram = %q", got)
	}
}

func TestBadIntervalPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for zero interval")
		}
	}()
	env := sim.NewEnv(1)
	NewProfiler(env, device.NewSSD(env, device.DefaultSSDConfig()), 0)
}
