// Package trace provides time-series instrumentation over simulated
// devices: a sampler that records the device queue depth over virtual
// time, and summary statistics over the samples.
//
// The paper relies on exactly this view (§2): "By profiling the I/O queue
// depth of the SSD during the execution of the PIS operator using n
// workers, a queue depth of n is clearly observable." The profiler
// reproduces that observable for any operator run.
package trace

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"pioqo/internal/device"
	"pioqo/internal/obs"
	"pioqo/internal/sim"
)

// Sample is one reading of the device's outstanding request count.
type Sample struct {
	At    sim.Time
	Depth int
}

// Profile is a queue-depth time series.
type Profile struct {
	Samples  []Sample
	Interval sim.Duration
}

// Profiler samples a device's queue depth on a fixed virtual-time period.
// Start it before the work of interest; it stops automatically when the
// simulation goes idle (its sampling stops scheduling once stopped
// explicitly, or keeps the run alive otherwise — so call Stop from the
// driving process when the measured work completes).
//
// It is a thin device-specific view over the obs.Sampler primitive.
type Profiler struct {
	interval sim.Duration
	sampler  *obs.Sampler
}

// NewProfiler returns a profiler sampling dev every interval.
func NewProfiler(env *sim.Env, dev device.Device, interval sim.Duration) *Profiler {
	if interval <= 0 {
		panic("trace: non-positive sampling interval")
	}
	return &Profiler{
		interval: interval,
		sampler: obs.NewSampler(env, interval, func() float64 {
			return float64(dev.Metrics().Outstanding())
		}),
	}
}

// Start begins sampling at the current virtual time.
func (p *Profiler) Start() { p.sampler.Start() }

// Stop ends sampling; the scheduled next tick becomes a no-op.
func (p *Profiler) Stop() { p.sampler.Stop() }

// Profile returns the collected series.
func (p *Profiler) Profile() Profile {
	series := p.sampler.Series()
	prof := Profile{Interval: p.interval, Samples: make([]Sample, len(series))}
	for i, s := range series {
		prof.Samples[i] = Sample{At: s.At, Depth: int(s.Value)}
	}
	return prof
}

// Stats summarises a profile.
type Stats struct {
	Samples int
	Mean    float64
	Max     int
	// P50 and P90 are depth percentiles across samples.
	P50, P90 int
}

// Stats computes summary statistics over the series, ignoring leading and
// trailing zero-depth samples (ramp-up and drain).
func (pr Profile) Stats() Stats {
	samples := pr.Samples
	for len(samples) > 0 && samples[0].Depth == 0 {
		samples = samples[1:]
	}
	for len(samples) > 0 && samples[len(samples)-1].Depth == 0 {
		samples = samples[:len(samples)-1]
	}
	st := Stats{Samples: len(samples)}
	if len(samples) == 0 {
		return st
	}
	depths := make([]int, len(samples))
	sum := 0
	for i, s := range samples {
		depths[i] = s.Depth
		sum += s.Depth
		if s.Depth > st.Max {
			st.Max = s.Depth
		}
	}
	sort.Ints(depths)
	st.Mean = float64(sum) / float64(len(depths))
	st.P50 = percentile(depths, 0.50)
	st.P90 = percentile(depths, 0.90)
	return st
}

// percentile returns the nearest-rank percentile over ascending-sorted
// values: the smallest value with at least p·n of the samples at or below
// it. Both reported percentiles use this one method, so P50 of a 2-sample
// profile is the lower sample, not an out-of-range index.
func percentile(sorted []int, p float64) int {
	rank := int(math.Ceil(p * float64(len(sorted))))
	if rank < 1 {
		rank = 1
	}
	if rank > len(sorted) {
		rank = len(sorted)
	}
	return sorted[rank-1]
}

// Histogram renders the series as a textual depth histogram with the given
// number of buckets over the observed depth range — a quick visual check
// that an operator sustains its intended queue depth.
func (pr Profile) Histogram(buckets int) string {
	st := pr.Stats()
	if st.Samples == 0 || buckets <= 0 {
		return "(no samples)"
	}
	// Bucket the observed non-zero depth range [min, max] with integer
	// boundaries min + i·span/buckets, so the top bucket ends exactly at
	// the maximum observed depth instead of overshooting the range.
	min := st.Max
	for _, s := range pr.Samples {
		if s.Depth > 0 && s.Depth < min {
			min = s.Depth
		}
	}
	span := st.Max - min + 1
	if buckets > span {
		buckets = span
	}
	counts := make([]int, buckets)
	for _, s := range pr.Samples {
		if s.Depth == 0 {
			continue
		}
		counts[(s.Depth-min)*buckets/span]++
	}
	maxCount := 0
	for _, c := range counts {
		if c > maxCount {
			maxCount = c
		}
	}
	var b strings.Builder
	for i, c := range counts {
		lo := min + i*span/buckets
		hi := min + (i+1)*span/buckets - 1
		bar := ""
		if maxCount > 0 {
			bar = strings.Repeat("#", c*40/maxCount)
		}
		fmt.Fprintf(&b, "qd %3d-%3d | %-40s %d\n", lo, hi, bar, c)
	}
	return strings.TrimRight(b.String(), "\n")
}
