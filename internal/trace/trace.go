// Package trace provides time-series instrumentation over simulated
// devices: a sampler that records the device queue depth over virtual
// time, and summary statistics over the samples.
//
// The paper relies on exactly this view (§2): "By profiling the I/O queue
// depth of the SSD during the execution of the PIS operator using n
// workers, a queue depth of n is clearly observable." The profiler
// reproduces that observable for any operator run.
package trace

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"pioqo/internal/device"
	"pioqo/internal/sim"
)

// Sample is one reading of the device's outstanding request count.
type Sample struct {
	At    sim.Time
	Depth int
}

// Profile is a queue-depth time series.
type Profile struct {
	Samples  []Sample
	Interval sim.Duration
}

// Profiler samples a device's queue depth on a fixed virtual-time period.
// Start it before the work of interest; it stops automatically when the
// simulation goes idle (its sampling stops scheduling once stopped
// explicitly, or keeps the run alive otherwise — so call Stop from the
// driving process when the measured work completes).
type Profiler struct {
	env      *sim.Env
	dev      device.Device
	interval sim.Duration
	profile  Profile
	stopped  bool
}

// NewProfiler returns a profiler sampling dev every interval.
func NewProfiler(env *sim.Env, dev device.Device, interval sim.Duration) *Profiler {
	if interval <= 0 {
		panic("trace: non-positive sampling interval")
	}
	return &Profiler{env: env, dev: dev, interval: interval,
		profile: Profile{Interval: interval}}
}

// Start begins sampling at the current virtual time.
func (p *Profiler) Start() {
	p.stopped = false
	p.tick()
}

func (p *Profiler) tick() {
	if p.stopped {
		return
	}
	p.profile.Samples = append(p.profile.Samples, Sample{
		At:    p.env.Now(),
		Depth: p.dev.Metrics().Outstanding(),
	})
	p.env.Schedule(p.interval, p.tick)
}

// Stop ends sampling; the scheduled next tick becomes a no-op.
func (p *Profiler) Stop() { p.stopped = true }

// Profile returns the collected series.
func (p *Profiler) Profile() Profile { return p.profile }

// Stats summarises a profile.
type Stats struct {
	Samples int
	Mean    float64
	Max     int
	// P50 and P90 are depth percentiles across samples.
	P50, P90 int
}

// Stats computes summary statistics over the series, ignoring leading and
// trailing zero-depth samples (ramp-up and drain).
func (pr Profile) Stats() Stats {
	samples := pr.Samples
	for len(samples) > 0 && samples[0].Depth == 0 {
		samples = samples[1:]
	}
	for len(samples) > 0 && samples[len(samples)-1].Depth == 0 {
		samples = samples[:len(samples)-1]
	}
	st := Stats{Samples: len(samples)}
	if len(samples) == 0 {
		return st
	}
	depths := make([]int, len(samples))
	sum := 0
	for i, s := range samples {
		depths[i] = s.Depth
		sum += s.Depth
		if s.Depth > st.Max {
			st.Max = s.Depth
		}
	}
	sort.Ints(depths)
	st.Mean = float64(sum) / float64(len(depths))
	st.P50 = depths[len(depths)/2]
	st.P90 = depths[int(math.Ceil(float64(len(depths))*0.9))-1]
	return st
}

// Histogram renders the series as a textual depth histogram with the given
// number of buckets over the observed depth range — a quick visual check
// that an operator sustains its intended queue depth.
func (pr Profile) Histogram(buckets int) string {
	st := pr.Stats()
	if st.Samples == 0 || buckets <= 0 {
		return "(no samples)"
	}
	if buckets > st.Max+1 {
		buckets = st.Max + 1
	}
	counts := make([]int, buckets)
	width := float64(st.Max+1) / float64(buckets)
	for _, s := range pr.Samples {
		if s.Depth == 0 {
			continue
		}
		b := int(float64(s.Depth) / width)
		if b >= buckets {
			b = buckets - 1
		}
		counts[b]++
	}
	maxCount := 0
	for _, c := range counts {
		if c > maxCount {
			maxCount = c
		}
	}
	var b strings.Builder
	for i, c := range counts {
		lo := int(float64(i) * width)
		hi := int(float64(i+1)*width) - 1
		if hi < lo {
			hi = lo
		}
		bar := ""
		if maxCount > 0 {
			bar = strings.Repeat("#", c*40/maxCount)
		}
		fmt.Fprintf(&b, "qd %3d-%3d | %-40s %d\n", lo, hi, bar, c)
	}
	return strings.TrimRight(b.String(), "\n")
}
