package fault

import (
	"fmt"
	"math/rand"

	"pioqo/internal/device"
	"pioqo/internal/obs/event"
	"pioqo/internal/sim"
)

// Window is one interval of a fault schedule. From and To are offsets from
// the moment the schedule is armed (Injector.Arm), so the same schedule
// replays identically no matter where in a run it is installed; To == 0
// means the window never closes.
//
// Within an active window each read independently draws, in order:
//
//  1. an injected error (probability ErrorRate): the read never reaches the
//     underlying device — its completion fails with ErrDeviceFault after
//     ErrorLatency;
//  2. a latency delay: ExtraLatency applies to every read, a straggler draw
//     (probability StragglerRate) adds StragglerLatency, and degraded
//     channels add throttling — with ChannelLoss > 0 the device's effective
//     parallel slots shrink to Slots×(1−ChannelLoss), and each read issued
//     with outstanding ≥ that limit pays (excess+1)×OverloadPenalty, so
//     running above the degraded depth actively costs rather than merely
//     not helping.
type Window struct {
	From sim.Duration // window opens at arm-time + From
	To   sim.Duration // window closes at arm-time + To; 0 = never

	ErrorRate    float64      // per-read probability of an injected I/O error
	ErrorLatency sim.Duration // how long a failing read takes; 0 → 200µs

	ExtraLatency sim.Duration // flat added latency per read

	StragglerRate    float64      // per-read probability of a straggler
	StragglerLatency sim.Duration // added latency for a straggler; 0 → 5ms

	ChannelLoss     float64      // fraction of parallel slots lost, 0..1
	OverloadPenalty sim.Duration // per-excess-request throttle cost; 0 → 100µs
}

// Schedule is a seeded, virtual-time-driven fault plan for one device.
// Identical (seed, windows) pairs replay byte-identically.
type Schedule struct {
	Seed    int64 // RNG seed for error/straggler draws; 0 → 1
	Slots   int   // healthy parallel slot count ChannelLoss scales; 0 → 48
	Windows []Window
}

// Stats counts what an injector actually did, for experiment reporting and
// tests.
type Stats struct {
	Errors     int64 // reads failed with ErrDeviceFault
	Stragglers int64 // reads that drew straggler latency
	Delayed    int64 // reads delayed for any reason (latency, straggler, throttle)
	Throttled  int64 // reads that paid an overload penalty
}

// Injector wraps a device.Device and applies an armed fault Schedule to its
// reads. Unarmed (or outside every window) it is pure passthrough: ReadAt
// returns the inner device's completion directly, scheduling no events and
// drawing no randomness, so a run with no schedule is byte-identical to one
// without the injector at all.
//
// The injector is also the degradation signal's source: Degradation reports
// the active window's ChannelLoss, which the broker polls to shrink its
// credit supply and trigger reduced-depth re-planning.
type Injector struct {
	env   *sim.Env
	inner device.Device

	armed bool
	sched Schedule
	base  sim.Time // virtual time the schedule was armed
	rng   *rand.Rand

	outstanding int // injector-tracked in-flight reads, for throttling
	stats       Stats

	// log receives one event per injected fault (error, straggler draw,
	// throttle); nil = disabled. Fault events are device-level and carry
	// event.NoQuery — per-query attribution happens at the executor's
	// retry sites, which see the fault as a failed read.
	log *event.Log
}

// Wrap returns an unarmed (passthrough) injector over inner.
func Wrap(env *sim.Env, inner device.Device) *Injector {
	return &Injector{env: env, inner: inner}
}

// SetLog installs (or, with nil, removes) the injector's event log.
// Emission is pure ring mutation — it draws no randomness and schedules no
// events, so logged and unlogged runs are byte-identical.
func (j *Injector) SetLog(l *event.Log) { j.log = l }

// Inner returns the wrapped device.
func (j *Injector) Inner() device.Device { return j.inner }

// Arm installs sched, effective immediately: window offsets are interpreted
// relative to the current virtual time. Arming replaces any previous
// schedule and resets the draw RNG and stats, so the same schedule armed at
// the same virtual time replays byte-identically.
func (j *Injector) Arm(sched Schedule) {
	if sched.Seed == 0 {
		sched.Seed = 1
	}
	if sched.Slots <= 0 {
		sched.Slots = 48
	}
	j.sched = sched
	j.base = j.env.Now()
	j.rng = rand.New(rand.NewSource(sched.Seed))
	j.armed = true
	j.stats = Stats{}
}

// Disarm returns the injector to passthrough.
func (j *Injector) Disarm() { j.armed = false }

// Armed reports whether a schedule is installed.
func (j *Injector) Armed() bool { return j.armed }

// Stats returns what the injector has done since it was last armed.
func (j *Injector) Stats() Stats { return j.stats }

// window returns the schedule window active at the current virtual time, or
// nil.
func (j *Injector) window() *Window {
	if !j.armed {
		return nil
	}
	since := sim.Duration(j.env.Now() - j.base)
	for i := range j.sched.Windows {
		w := &j.sched.Windows[i]
		if since >= w.From && (w.To == 0 || since < w.To) {
			return w
		}
	}
	return nil
}

// Degradation reports the channel-loss fraction of the currently active
// window, or 0 when healthy. The broker polls this to size its degraded
// credit supply.
func (j *Injector) Degradation() float64 {
	if w := j.window(); w != nil && w.ChannelLoss > 0 {
		loss := w.ChannelLoss
		if loss > 1 {
			loss = 1
		}
		return loss
	}
	return 0
}

// ReadAt applies the active window to the read: it may fail it outright,
// delay it, or pass it through untouched. Outside any window the inner
// completion is returned directly.
func (j *Injector) ReadAt(offset int64, length int) *sim.Completion {
	w := j.window()
	if w == nil {
		return j.inner.ReadAt(offset, length)
	}

	// Injected error: the read never reaches the device.
	if w.ErrorRate > 0 && j.rng.Float64() < w.ErrorRate {
		j.stats.Errors++
		j.log.Emit(event.EvFaultError, event.NoQuery, offset, 0)
		lat := w.ErrorLatency
		if lat <= 0 {
			lat = 200 * sim.Microsecond
		}
		c := sim.NewCompletion(j.env)
		j.env.Schedule(lat, func() {
			c.Fail(fmt.Errorf("%w: injected read error at offset %d", ErrDeviceFault, offset))
		})
		return c
	}

	delay := w.ExtraLatency
	if w.StragglerRate > 0 && j.rng.Float64() < w.StragglerRate {
		j.stats.Stragglers++
		lat := w.StragglerLatency
		if lat <= 0 {
			lat = 5 * sim.Millisecond
		}
		j.log.Emit(event.EvFaultStraggler, event.NoQuery, offset, int64(lat))
		delay += lat
	}
	if w.ChannelLoss > 0 {
		loss := w.ChannelLoss
		if loss > 1 {
			loss = 1
		}
		limit := int(float64(j.sched.Slots)*(1-loss) + 0.5)
		if limit < 1 {
			limit = 1
		}
		if j.outstanding >= limit {
			pen := w.OverloadPenalty
			if pen <= 0 {
				pen = 100 * sim.Microsecond
			}
			j.stats.Throttled++
			penalty := sim.Duration(j.outstanding-limit+1) * pen
			j.log.Emit(event.EvFaultThrottle, event.NoQuery, int64(j.outstanding), int64(penalty))
			delay += penalty
		}
	}

	j.outstanding++
	c := sim.NewCompletion(j.env)
	done := func() {
		inner := j.inner.ReadAt(offset, length)
		inner.OnFire(func() {
			j.outstanding--
			c.Fire()
		})
	}
	if delay > 0 {
		j.stats.Delayed++
		j.env.Schedule(delay, done)
	} else {
		done()
	}
	return c
}

// WriteAt passes through to the inner device; the fault model covers the
// read path, which is what the paper's workloads exercise.
func (j *Injector) WriteAt(offset int64, length int) *sim.Completion {
	return j.inner.WriteAt(offset, length)
}

// Size returns the inner device's capacity.
func (j *Injector) Size() int64 { return j.inner.Size() }

// Name returns the inner device's model name.
func (j *Injector) Name() string { return j.inner.Name() }

// Metrics returns the inner device's instrumentation.
func (j *Injector) Metrics() *device.Metrics { return j.inner.Metrics() }
