package fault

import (
	"pioqo/internal/device"
	"pioqo/internal/obs/event"
	"pioqo/internal/sim"
)

// Hedger is a straggler-hedging device layer: when a read has not
// completed after the configured delay, it re-issues the same read on the
// inner device and delivers whichever copy finishes first. Sitting above
// the fault injector, the speculative copy re-draws the injector's
// straggler probability — a hedge against the first read having drawn the
// straggler latency — which is exactly the paper-adjacent "re-issue the
// slow shard's read" policy the scatter-gather executor wants under
// injected stragglers.
//
// Exactly-once delivery is structural: the caller holds the single outer
// completion, so the losing copy completes into the hedger and goes no
// further — the buffer pool installs the page once and rows are delivered
// once, however many copies were in flight.
//
// A disarmed hedger (the default) forwards the inner device's completions
// untouched: it schedules nothing and allocates nothing, so non-gather
// traffic — calibration included — is byte-identical to an unhedged run.
// The gather executor arms it only for the span of a scatter-gather query.
type Hedger struct {
	env   *sim.Env
	inner device.Device
	delay sim.Duration
	armed bool
	log   *event.Log

	stats HedgeStats
}

// HedgeStats counts the hedger's activity since construction.
type HedgeStats struct {
	// Issued is the number of speculative duplicate reads issued.
	Issued int64
	// Wins is how many of those finished before the original read.
	Wins int64
}

// NewHedger wraps inner with a disarmed hedger that, once armed, re-issues
// reads still outstanding after delay.
func NewHedger(env *sim.Env, inner device.Device, delay sim.Duration) *Hedger {
	if delay <= 0 {
		panic("fault: NewHedger with non-positive delay")
	}
	return &Hedger{env: env, inner: inner, delay: delay}
}

// SetLog installs (or removes) the event log hedge decisions are emitted
// into. Hedge events are device-level (event.NoQuery).
func (h *Hedger) SetLog(l *event.Log) { h.log = l }

// Arm enables hedging; Disarm returns the hedger to pure passthrough.
// Toggling never affects reads already in flight.
func (h *Hedger) Arm()    { h.armed = true }
func (h *Hedger) Disarm() { h.armed = false }

// Armed reports whether the hedger is currently re-issuing slow reads.
func (h *Hedger) Armed() bool { return h.armed }

// Stats reports the hedger's cumulative activity.
func (h *Hedger) Stats() HedgeStats { return h.stats }

// ReadAt submits the read on the inner device and, while armed, schedules
// the hedging race: if the read is still outstanding after the delay, a
// duplicate is issued and the first copy to finish fires the returned
// completion. Both copies pay real device time — speculation is visible in
// the device metrics, as it would be on hardware.
func (h *Hedger) ReadAt(offset int64, length int) *sim.Completion {
	first := h.inner.ReadAt(offset, length)
	if !h.armed {
		return first
	}
	issued := h.env.Now()
	out := sim.NewCompletion(h.env)
	done := false
	deliver := func(c *sim.Completion) {
		if done {
			return
		}
		done = true
		if err := c.Err(); err != nil {
			out.Fail(err)
			return
		}
		out.Fire()
	}
	first.OnFire(func() { deliver(first) })
	h.env.Schedule(h.delay, func() {
		if done {
			return
		}
		h.stats.Issued++
		h.log.Emit(event.EvShardHedgeIssue, event.NoQuery, offset, int64(h.delay))
		second := h.inner.ReadAt(offset, length)
		second.OnFire(func() {
			if !done {
				h.stats.Wins++
				h.log.Emit(event.EvShardHedgeWin, event.NoQuery, offset,
					int64(h.env.Now()-issued))
			}
			deliver(second)
		})
	})
	return out
}

// WriteAt passes writes through unhedged: speculative duplicate writes
// would not be idempotent at the device level.
func (h *Hedger) WriteAt(offset int64, length int) *sim.Completion {
	return h.inner.WriteAt(offset, length)
}

// Size implements device.Device.
func (h *Hedger) Size() int64 { return h.inner.Size() }

// Name implements device.Device, reporting the inner device's name so
// model selection and rendering are hedging-agnostic.
func (h *Hedger) Name() string { return h.inner.Name() }

// Metrics implements device.Device; speculative reads count in the inner
// device's instrumentation like any other request.
func (h *Hedger) Metrics() *device.Metrics { return h.inner.Metrics() }
