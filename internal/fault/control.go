package fault

import (
	"context"
	"errors"

	"pioqo/internal/sim"
)

// Control is a per-query abort switch. The query driver installs the abort
// sources — an explicit Cancel, a virtual-time deadline, a host-context
// poll — and every executor checks Aborted() at batch boundaries, so a
// query stops within one virtual-time batch of the abort becoming visible.
//
// The deadline is polled, never scheduled: installing it adds no events to
// the simulation, so a query that finishes in time runs byte-identically to
// one with no deadline at all. A nil *Control is valid and never aborts,
// which lets execution paths that predate the fault layer (joins, group-by,
// calibration) run unchanged.
type Control struct {
	env      *sim.Env
	deadline sim.Time
	poll     func() error
	err      error
}

// NewControl returns an inert control bound to env: no deadline, no poll,
// not canceled.
func NewControl(env *sim.Env) *Control {
	return &Control{env: env}
}

// SetDeadline arms a virtual-time deadline: once env.Now() reaches t, the
// query is aborted with ErrDeadlineExceeded at its next batch boundary.
// A zero t means no deadline.
func (c *Control) SetDeadline(t sim.Time) { c.deadline = t }

// SetPoll installs a host-side abort source, typically ctx.Err from the
// caller's context. It is consulted on every Aborted() check; a non-nil
// return aborts the query with the mapped taxonomy error.
func (c *Control) SetPoll(fn func() error) { c.poll = fn }

// Cancel aborts the query with err. The first cause wins; later calls are
// no-ops. Cancel on a nil control is a no-op.
func (c *Control) Cancel(err error) {
	if c == nil || c.err != nil {
		return
	}
	if err == nil {
		err = ErrCanceled
	}
	c.err = err
}

// Err reports why the query was aborted, or nil. Safe on a nil control.
func (c *Control) Err() error {
	if c == nil {
		return nil
	}
	return c.err
}

// Aborted reports whether the query should stop, latching the cause on
// first detection. Executors call it at batch boundaries; it is cheap when
// no abort source has tripped. Safe on a nil control (always false).
func (c *Control) Aborted() bool {
	if c == nil {
		return false
	}
	if c.err != nil {
		return true
	}
	if c.deadline != 0 && c.env.Now() >= c.deadline {
		c.err = ErrDeadlineExceeded
		return true
	}
	if c.poll != nil {
		if err := c.poll(); err != nil {
			if errors.Is(err, context.DeadlineExceeded) {
				c.err = ErrDeadlineExceeded
			} else {
				c.err = ErrCanceled
			}
			return true
		}
	}
	return false
}
