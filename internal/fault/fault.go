// Package fault is the engine's deterministic fault-injection and
// degradation layer: a typed error taxonomy shared by every layer, a
// per-query abort control that carries cancellation and virtual-time
// deadlines through the executor, a bounded retry policy with exponential
// backoff in virtual time, and a seeded device injector that produces
// per-request I/O errors, latency stragglers, and degraded-channel
// throttling on virtual-time schedules.
//
// Everything here is deterministic by construction: the injector draws from
// its own seeded source, backoffs carry no jitter, and schedules are pure
// functions of virtual time — so a run with the same seed and schedule
// replays byte-identically, and a run with no schedule at all behaves
// exactly like one without the layer.
package fault

import (
	"context"
	"errors"
	"fmt"

	"pioqo/internal/sim"
)

// The sentinel errors every layer reports abort causes through. They are
// defined here — the one package below both the executor and the public
// API — so errors.Is identity holds across layers; the root package
// re-exports them verbatim. ErrCanceled and ErrDeadlineExceeded wrap their
// context counterparts, so errors.Is(err, context.Canceled) (and
// DeadlineExceeded) also hold for callers speaking stdlib.
var (
	// ErrCanceled reports a query aborted by caller cancellation.
	ErrCanceled = fmt.Errorf("pioqo: query canceled: %w", context.Canceled)

	// ErrDeadlineExceeded reports a query aborted by its (virtual-time or
	// context) deadline.
	ErrDeadlineExceeded = fmt.Errorf("pioqo: query deadline exceeded: %w", context.DeadlineExceeded)

	// ErrDeviceFault reports an unrecoverable device I/O failure — an
	// injected read error that survived the retry policy.
	ErrDeviceFault = errors.New("pioqo: device fault")

	// ErrAdmissionClosed reports a submission against a closed session.
	ErrAdmissionClosed = errors.New("pioqo: admission closed")
)

// MapContextErr converts a context error into the engine's taxonomy, so
// errors.Is against the sentinels works on anything that crossed a context
// boundary. Non-context errors pass through unchanged.
func MapContextErr(err error) error {
	switch {
	case err == nil:
		return nil
	case errors.Is(err, context.DeadlineExceeded):
		return ErrDeadlineExceeded
	case errors.Is(err, context.Canceled):
		return ErrCanceled
	default:
		return err
	}
}

// RetryPolicy bounds the executor's response to injected device faults:
// a faulted page read is retried up to MaxAttempts total attempts, sleeping
// an exponentially growing backoff in virtual time between them. Backoffs
// are deterministic (no jitter) so fault-injected runs replay
// byte-identically. The zero value means DefaultRetry.
type RetryPolicy struct {
	// MaxAttempts is the total number of attempts including the first.
	// 0 takes the default (4); 1 disables retries.
	MaxAttempts int

	// Backoff is the virtual-time sleep before the second attempt; each
	// further retry doubles it. 0 takes the default (200µs).
	Backoff sim.Duration

	// MaxBackoff caps a single backoff. 0 takes the default (10ms).
	MaxBackoff sim.Duration
}

// DefaultRetry is the policy the executor applies when a spec leaves the
// policy zero: four attempts, 200µs initial backoff doubling to a 10ms cap.
var DefaultRetry = RetryPolicy{
	MaxAttempts: 4,
	Backoff:     200 * sim.Microsecond,
	MaxBackoff:  10 * sim.Millisecond,
}

// Normalized fills zero fields with the defaults.
func (p RetryPolicy) Normalized() RetryPolicy {
	if p.MaxAttempts <= 0 {
		p.MaxAttempts = DefaultRetry.MaxAttempts
	}
	if p.Backoff <= 0 {
		p.Backoff = DefaultRetry.Backoff
	}
	if p.MaxBackoff <= 0 {
		p.MaxBackoff = DefaultRetry.MaxBackoff
	}
	return p
}

// BackoffFor reports the backoff before retry number retry (0-based: the
// sleep between the first and second attempt is BackoffFor(0)), doubling
// per retry and capped at MaxBackoff.
func (p RetryPolicy) BackoffFor(retry int) sim.Duration {
	d := p.Backoff
	for i := 0; i < retry && d < p.MaxBackoff; i++ {
		d *= 2
	}
	if d > p.MaxBackoff {
		d = p.MaxBackoff
	}
	return d
}
