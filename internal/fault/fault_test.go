package fault

import (
	"context"
	"errors"
	"fmt"
	"testing"

	"pioqo/internal/device"
	"pioqo/internal/sim"
)

// fakeDevice is a fixed-latency device for injector tests: every read
// completes after latency, and the device counts the reads that actually
// reached it.
type fakeDevice struct {
	env     *sim.Env
	latency sim.Duration
	reads   int
	metrics *device.Metrics
}

func newFakeDevice(env *sim.Env, latency sim.Duration) *fakeDevice {
	return &fakeDevice{env: env, latency: latency, metrics: device.NewMetrics(env)}
}

func (d *fakeDevice) ReadAt(offset int64, length int) *sim.Completion {
	d.reads++
	c := sim.NewCompletion(d.env)
	d.env.Schedule(d.latency, c.Fire)
	return c
}

func (d *fakeDevice) WriteAt(offset int64, length int) *sim.Completion {
	c := sim.NewCompletion(d.env)
	d.env.Schedule(d.latency, c.Fire)
	return c
}

func (d *fakeDevice) Size() int64              { return 1 << 30 }
func (d *fakeDevice) Name() string             { return "fake" }
func (d *fakeDevice) Metrics() *device.Metrics { return d.metrics }

func TestRetryPolicyDefaults(t *testing.T) {
	p := RetryPolicy{}.Normalized()
	if p != DefaultRetry {
		t.Fatalf("zero policy normalized to %+v, want %+v", p, DefaultRetry)
	}
	// Non-zero fields survive normalization.
	q := RetryPolicy{MaxAttempts: 2, Backoff: sim.Millisecond, MaxBackoff: 2 * sim.Millisecond}
	if got := q.Normalized(); got != q {
		t.Fatalf("normalized %+v, want unchanged", got)
	}
}

func TestRetryPolicyBackoffDoublesAndCaps(t *testing.T) {
	p := RetryPolicy{MaxAttempts: 8, Backoff: 100 * sim.Microsecond, MaxBackoff: 500 * sim.Microsecond}
	want := []sim.Duration{
		100 * sim.Microsecond,
		200 * sim.Microsecond,
		400 * sim.Microsecond,
		500 * sim.Microsecond, // capped
		500 * sim.Microsecond,
	}
	for i, w := range want {
		if got := p.BackoffFor(i); got != w {
			t.Errorf("BackoffFor(%d) = %v, want %v", i, got, w)
		}
	}
}

func TestMapContextErr(t *testing.T) {
	if got := MapContextErr(nil); got != nil {
		t.Fatalf("nil → %v", got)
	}
	if got := MapContextErr(context.Canceled); !errors.Is(got, ErrCanceled) {
		t.Fatalf("context.Canceled → %v", got)
	}
	if got := MapContextErr(context.DeadlineExceeded); !errors.Is(got, ErrDeadlineExceeded) {
		t.Fatalf("context.DeadlineExceeded → %v", got)
	}
	other := errors.New("boom")
	if got := MapContextErr(other); got != other {
		t.Fatalf("unrelated error mapped to %v", got)
	}
}

func TestSentinelsSatisfyContextTaxonomy(t *testing.T) {
	if !errors.Is(ErrCanceled, context.Canceled) {
		t.Error("ErrCanceled does not wrap context.Canceled")
	}
	if !errors.Is(ErrDeadlineExceeded, context.DeadlineExceeded) {
		t.Error("ErrDeadlineExceeded does not wrap context.DeadlineExceeded")
	}
}

func TestControlInertAndNil(t *testing.T) {
	env := sim.NewEnv(1)
	var nilCtl *Control
	if nilCtl.Aborted() || nilCtl.Err() != nil {
		t.Fatal("nil control must never abort")
	}
	nilCtl.Cancel(errors.New("ignored")) // must not panic

	ctl := NewControl(env)
	if ctl.Aborted() || ctl.Err() != nil {
		t.Fatal("fresh control must be inert")
	}
}

func TestControlCancelFirstCauseWins(t *testing.T) {
	ctl := NewControl(sim.NewEnv(1))
	first := fmt.Errorf("%w: first", ErrDeviceFault)
	ctl.Cancel(first)
	ctl.Cancel(errors.New("second"))
	if got := ctl.Err(); got != first {
		t.Fatalf("Err() = %v, want the first cause", got)
	}
	// Cancel(nil) defaults to ErrCanceled.
	ctl2 := NewControl(sim.NewEnv(1))
	ctl2.Cancel(nil)
	if !errors.Is(ctl2.Err(), ErrCanceled) {
		t.Fatalf("Cancel(nil) → %v, want ErrCanceled", ctl2.Err())
	}
}

func TestControlVirtualDeadline(t *testing.T) {
	env := sim.NewEnv(1)
	ctl := NewControl(env)
	ctl.SetDeadline(env.Now().Add(sim.Millisecond))
	if ctl.Aborted() {
		t.Fatal("aborted before the deadline")
	}
	env.Go("tick", func(p *sim.Proc) { p.Sleep(2 * sim.Millisecond) })
	env.Run()
	if !ctl.Aborted() {
		t.Fatal("not aborted after the deadline passed")
	}
	if !errors.Is(ctl.Err(), ErrDeadlineExceeded) {
		t.Fatalf("Err() = %v, want ErrDeadlineExceeded", ctl.Err())
	}
}

func TestControlPollMapsContextErrors(t *testing.T) {
	env := sim.NewEnv(1)
	ctl := NewControl(env)
	var pollErr error
	ctl.SetPoll(func() error { return pollErr })
	if ctl.Aborted() {
		t.Fatal("aborted with a nil poll result")
	}
	pollErr = context.Canceled
	if !ctl.Aborted() || !errors.Is(ctl.Err(), ErrCanceled) {
		t.Fatalf("canceled poll → aborted=%v err=%v", ctl.Aborted(), ctl.Err())
	}

	ctl2 := NewControl(env)
	ctl2.SetPoll(func() error { return context.DeadlineExceeded })
	if !ctl2.Aborted() || !errors.Is(ctl2.Err(), ErrDeadlineExceeded) {
		t.Fatalf("deadline poll → aborted=%v err=%v", ctl2.Aborted(), ctl2.Err())
	}
}

// run drives n reads through the injector, returning each read's completion
// virtual time and error (both zero-valued when the read is still pending,
// which the tests treat as a failure).
func runReads(t *testing.T, env *sim.Env, j *Injector, n int) ([]sim.Time, []error) {
	t.Helper()
	times := make([]sim.Time, n)
	errs := make([]error, n)
	env.Go("reader", func(p *sim.Proc) {
		for i := 0; i < n; i++ {
			c := j.ReadAt(int64(i)*4096, 4096)
			p.Wait(c)
			times[i] = c.FiredAt()
			errs[i] = c.Err()
		}
	})
	env.Run()
	return times, errs
}

func TestInjectorPassthroughUnarmed(t *testing.T) {
	// Unarmed, the injector must return the inner completion itself — not a
	// wrapper — so the simulation's event pattern is untouched.
	env := sim.NewEnv(1)
	dev := newFakeDevice(env, 100*sim.Microsecond)
	j := Wrap(env, dev)
	inner := dev.ReadAt(0, 4096)
	_ = inner
	c := j.ReadAt(4096, 4096)
	c2 := dev.ReadAt(4096, 4096)
	_ = c2
	if dev.reads != 3 {
		t.Fatalf("inner device saw %d reads, want 3", dev.reads)
	}
	if j.Armed() {
		t.Fatal("unarmed injector reports Armed")
	}
	env.Run()
	if c.Err() != nil {
		t.Fatalf("passthrough read failed: %v", c.Err())
	}
}

func TestInjectorErrorDraw(t *testing.T) {
	env := sim.NewEnv(1)
	dev := newFakeDevice(env, 100*sim.Microsecond)
	j := Wrap(env, dev)
	j.Arm(Schedule{Windows: []Window{{ErrorRate: 1}}})
	_, errs := runReads(t, env, j, 3)
	for i, err := range errs {
		if !errors.Is(err, ErrDeviceFault) {
			t.Fatalf("read %d: err = %v, want ErrDeviceFault", i, err)
		}
	}
	if dev.reads != 0 {
		t.Fatalf("failing reads reached the device %d times", dev.reads)
	}
	if st := j.Stats(); st.Errors != 3 {
		t.Fatalf("Stats.Errors = %d, want 3", st.Errors)
	}
}

func TestInjectorExtraLatency(t *testing.T) {
	env := sim.NewEnv(1)
	dev := newFakeDevice(env, 100*sim.Microsecond)
	j := Wrap(env, dev)
	j.Arm(Schedule{Windows: []Window{{ExtraLatency: 400 * sim.Microsecond}}})
	times, errs := runReads(t, env, j, 1)
	if errs[0] != nil {
		t.Fatalf("delayed read failed: %v", errs[0])
	}
	if want := sim.Time(500 * sim.Microsecond); times[0] != want {
		t.Fatalf("read completed at %v, want %v (400µs delay + 100µs device)", times[0], want)
	}
	if st := j.Stats(); st.Delayed != 1 {
		t.Fatalf("Stats.Delayed = %d, want 1", st.Delayed)
	}
}

func TestInjectorStragglerDraw(t *testing.T) {
	env := sim.NewEnv(1)
	dev := newFakeDevice(env, 100*sim.Microsecond)
	j := Wrap(env, dev)
	j.Arm(Schedule{Windows: []Window{{StragglerRate: 1, StragglerLatency: sim.Millisecond}}})
	times, errs := runReads(t, env, j, 1)
	if errs[0] != nil {
		t.Fatalf("straggler read failed: %v", errs[0])
	}
	if want := sim.Time(1100 * sim.Microsecond); times[0] != want {
		t.Fatalf("straggler completed at %v, want %v", times[0], want)
	}
	if st := j.Stats(); st.Stragglers != 1 || st.Delayed != 1 {
		t.Fatalf("stats = %+v, want 1 straggler, 1 delayed", st)
	}
}

func TestInjectorThrottleAboveDegradedLimit(t *testing.T) {
	env := sim.NewEnv(1)
	dev := newFakeDevice(env, sim.Millisecond)
	j := Wrap(env, dev)
	// 4 slots, 50% loss → limit 2. Issue 4 concurrent reads: the third and
	// fourth are above the limit and pay escalating penalties.
	j.Arm(Schedule{Slots: 4, Windows: []Window{{ChannelLoss: 0.5, OverloadPenalty: 100 * sim.Microsecond}}})
	done := 0
	for i := 0; i < 4; i++ {
		c := j.ReadAt(int64(i)*4096, 4096)
		c.OnFire(func() { done++ })
	}
	env.Run()
	if done != 4 {
		t.Fatalf("%d reads completed, want 4", done)
	}
	if st := j.Stats(); st.Throttled != 2 {
		t.Fatalf("Stats.Throttled = %d, want 2", st.Throttled)
	}
}

func TestInjectorWindowSchedule(t *testing.T) {
	env := sim.NewEnv(1)
	dev := newFakeDevice(env, 100*sim.Microsecond)
	j := Wrap(env, dev)
	// Errors only inside [1ms, 2ms) from arm time.
	j.Arm(Schedule{Windows: []Window{{From: sim.Millisecond, To: 2 * sim.Millisecond, ErrorRate: 1}}})

	var before, inside, after error
	env.Go("reader", func(p *sim.Proc) {
		c := j.ReadAt(0, 4096)
		p.Wait(c)
		before = c.Err()
		p.Sleep(sim.Millisecond) // into the window (~1.1ms)
		c = j.ReadAt(4096, 4096)
		p.Wait(c)
		inside = c.Err()
		p.Sleep(sim.Millisecond) // past the window (~2.3ms)
		c = j.ReadAt(8192, 4096)
		p.Wait(c)
		after = c.Err()
	})
	env.Run()
	if before != nil || after != nil {
		t.Fatalf("reads outside the window failed: before=%v after=%v", before, after)
	}
	if !errors.Is(inside, ErrDeviceFault) {
		t.Fatalf("read inside the window: err = %v, want ErrDeviceFault", inside)
	}
}

func TestInjectorDegradationProbe(t *testing.T) {
	env := sim.NewEnv(1)
	j := Wrap(env, newFakeDevice(env, 100*sim.Microsecond))
	if got := j.Degradation(); got != 0 {
		t.Fatalf("unarmed Degradation() = %v, want 0", got)
	}
	j.Arm(Schedule{Windows: []Window{{ChannelLoss: 0.5}}})
	if got := j.Degradation(); got != 0.5 {
		t.Fatalf("Degradation() = %v, want 0.5", got)
	}
	j.Arm(Schedule{Windows: []Window{{ChannelLoss: 3}}})
	if got := j.Degradation(); got != 1 {
		t.Fatalf("over-unity loss: Degradation() = %v, want clamped 1", got)
	}
	j.Disarm()
	if got := j.Degradation(); got != 0 {
		t.Fatalf("disarmed Degradation() = %v, want 0", got)
	}
}

func TestInjectorDeterministicReplay(t *testing.T) {
	sched := Schedule{
		Seed:  7,
		Slots: 8,
		Windows: []Window{{
			ErrorRate:        0.2,
			StragglerRate:    0.3,
			StragglerLatency: 2 * sim.Millisecond,
			ChannelLoss:      0.5,
		}},
	}
	run := func() ([]sim.Time, []string) {
		env := sim.NewEnv(1)
		j := Wrap(env, newFakeDevice(env, 150*sim.Microsecond))
		j.Arm(sched)
		times, errs := runReads(t, env, j, 64)
		strs := make([]string, len(errs))
		for i, err := range errs {
			if err != nil {
				strs[i] = err.Error()
			}
		}
		return times, strs
	}
	t1, e1 := run()
	t2, e2 := run()
	for i := range t1 {
		if t1[i] != t2[i] || e1[i] != e2[i] {
			t.Fatalf("read %d diverged across replays: (%v,%q) vs (%v,%q)",
				i, t1[i], e1[i], t2[i], e2[i])
		}
	}
}
