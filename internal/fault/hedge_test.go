package fault

import (
	"testing"

	"pioqo/internal/device"
	"pioqo/internal/sim"
)

// readAll issues n sequential 4 KiB reads on dev and reports the finish
// time plus how many completions fired (each must fire exactly once).
func readAll(env *sim.Env, dev device.Device, n int) (sim.Time, int) {
	fired := 0
	env.Go("reader", func(p *sim.Proc) {
		for i := 0; i < n; i++ {
			c := dev.ReadAt(int64(i)*4096, 4096)
			c.OnFire(func() { fired++ })
			p.Wait(c)
		}
	})
	return env.Run(), fired
}

// TestHedgerDisarmedIsPassthrough: a disarmed hedger must not change
// completion timing at all — it returns the inner completion directly.
func TestHedgerDisarmedIsPassthrough(t *testing.T) {
	run := func(hedged bool) sim.Time {
		env := sim.NewEnv(1)
		var dev device.Device = device.NewSSD(env, device.DefaultSSDConfig())
		if hedged {
			dev = NewHedger(env, dev, sim.Duration(2*sim.Millisecond))
		}
		end, fired := readAll(env, dev, 64)
		if fired != 64 {
			t.Fatalf("hedged=%v: %d completions fired, want 64", hedged, fired)
		}
		return end
	}
	if bare, hedged := run(false), run(true); bare != hedged {
		t.Errorf("disarmed hedger changed timing: bare %d, hedged %d", bare, hedged)
	}
}

// TestHedgerRacesStragglers: above an injector that turns every read into a
// straggler on the first draw only, an armed hedger's speculative copy
// re-draws and wins, capping the read near delay + base latency instead of
// the full straggler latency.
func TestHedgerRacesStragglers(t *testing.T) {
	run := func(armed bool) (sim.Time, HedgeStats, int) {
		env := sim.NewEnv(1)
		inj := Wrap(env, device.NewSSD(env, device.DefaultSSDConfig()))
		inj.Arm(Schedule{Seed: 7, Windows: []Window{{
			StragglerRate:    0.5,
			StragglerLatency: sim.Duration(50 * sim.Millisecond),
		}}})
		h := NewHedger(env, inj, sim.Duration(1*sim.Millisecond))
		if armed {
			h.Arm()
		}
		end, fired := readAll(env, h, 64)
		return end, h.Stats(), fired
	}
	slow, offStats, offFired := run(false)
	fast, onStats, onFired := run(true)
	if offFired != 64 || onFired != 64 {
		t.Fatalf("completions fired %d/%d, want 64/64 — a losing copy leaked", offFired, onFired)
	}
	if offStats.Issued != 0 {
		t.Errorf("disarmed hedger issued %d speculative reads", offStats.Issued)
	}
	if onStats.Issued == 0 || onStats.Wins == 0 {
		t.Fatalf("armed hedger under 50%% stragglers: issued=%d wins=%d, want both > 0",
			onStats.Issued, onStats.Wins)
	}
	if fast >= slow {
		t.Errorf("hedging did not help: %d hedged vs %d unhedged", fast, slow)
	}
}

// TestHedgerExactlyOnce: when both copies are in flight, the outer
// completion fires exactly once (the winner), and the loser's completion
// is absorbed by the hedger.
func TestHedgerExactlyOnce(t *testing.T) {
	env := sim.NewEnv(1)
	inj := Wrap(env, device.NewSSD(env, device.DefaultSSDConfig()))
	// Every read is a straggler: the hedge always launches, and its copy is
	// just as slow, so both copies run to completion.
	inj.Arm(Schedule{Seed: 3, Windows: []Window{{
		StragglerRate:    1.0,
		StragglerLatency: sim.Duration(30 * sim.Millisecond),
	}}})
	h := NewHedger(env, inj, sim.Duration(1*sim.Millisecond))
	h.Arm()
	_, fired := readAll(env, h, 16)
	if fired != 16 {
		t.Fatalf("outer completions fired %d times for 16 reads", fired)
	}
	if h.Stats().Issued != 16 {
		t.Errorf("issued %d hedges for 16 always-straggling reads", h.Stats().Issued)
	}
	st := inj.Stats()
	if st.Stragglers != 32 {
		t.Errorf("injector saw %d straggler draws, want 32 (both copies of every read)", st.Stragglers)
	}
}
