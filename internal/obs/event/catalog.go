package event

// Type identifies one kind of engine event. Every type the engine can emit
// is declared here, in this catalog file, with its JSONL name and operand
// names — emit sites reference these constants and nothing else
// (scripts/verify.sh rejects Emit calls whose type argument is not an
// event.Ev* constant).
type Type uint8

// The event catalog. Grouped by emitting subsystem.
const (
	// EvNone is the zero Type; it is never emitted.
	EvNone Type = iota

	// Query lifecycle (pioqo session layer).
	EvQueryStart // A = estimated pages, B = granted queue budget
	EvQueryDone  // A = pages processed, B = runtime ns

	// internal/broker: admission control and credit re-brokering.
	EvAdmissionEnqueue // A = demand cap (0 = uncapped)
	EvAdmissionGrant   // A = granted credits (0 = unbounded), B = wait ns
	EvAdmissionReplan  // A = granted credits the re-plan ran under
	EvCreditsReclaim   // A = credits reclaimed, B = credits still held
	EvLeaseRelease     // A = credits returned, B = pool pages returned
	EvSupplyDegrade    // A = degraded supply, B = calibrated total

	// internal/exec: worker lifecycle and fault retries.
	EvWorkerStart  // A = worker index
	EvWorkerExit   // A = worker index
	EvReadRetry    // A = page, B = attempt (0-based)
	EvRetryBackoff // A = page, B = backoff ns

	// internal/fault: injected device behaviour.
	EvFaultError     // A = device offset
	EvFaultStraggler // A = device offset, B = added latency ns
	EvFaultThrottle  // A = outstanding reads, B = penalty ns

	// internal/buffer: pool housekeeping the executor cannot see.
	EvFrameUninstall // A = page, B = residency epoch after the uninstall

	// internal/buffer: circulating shared scans.
	EvScanShareAttach // A = join block (producer position), B = attached consumers after
	EvScanShareDetach // A = blocks consumed by the departing consumer, B = attached consumers after
	EvScanShareLap    // A = laps completed, B = attached consumers

	// internal/opt: plan-cache traffic.
	EvPlanCacheHit  // A = cached candidate plans replayed
	EvPlanCacheMiss // A = candidate plans enumerated fresh

	// internal/opt: parameterized cache and greedy fast path.
	EvPlanBandHit    // A = selectivity band, B = 1 when the stable O(1) path served it
	EvPlanBandMiss   // A = selectivity band
	EvPlanRevalidate // A = selectivity band, B = 1 kept on epoch drift, 0 re-enumerated
	EvGreedyPlan     // A = selectivity band, B = candidates priced
	EvGreedyFallback // A = selectivity band, B = candidates priced before falling back

	// internal/exec gather operator + internal/fault hedger: sharded
	// scatter-gather lifecycle and straggler hedging.
	EvShardScatter    // A = shards fanned out, B = shards pruned
	EvShardPartial    // A = shard id, B = rows in the shard's partial
	EvShardHedgeIssue // A = device offset, B = hedge delay ns
	EvShardHedgeWin   // A = device offset, B = total read latency ns
	EvShardGatherDone // A = shards merged, B = merged rows

	// internal/broker: mid-flight lease growth (the upgrade direction of
	// the degradation re-plan path).
	EvLeaseGrow // A = credits granted by the grow, B = total granted after

	// internal/adapt: the feedback controller and speculative prefetcher.
	EvAdaptSeed       // A = seeded initial degree, B = statically planned degree
	EvAdaptGrow       // A = new target degree, B = previous target
	EvAdaptShrink     // A = new target degree, B = previous target
	EvAdaptSpecIssue  // A = first page of the speculative run, B = pages issued
	EvAdaptSpecCancel // A = speculative pages dropped, B = speculative hits

	numTypes // sentinel; keep last
)

// Desc names a type for renderers: the JSONL event name and the names of
// the A and B operands ("" = the operand is unused and omitted).
type Desc struct {
	Name string
	A, B string
}

// catalog maps every Type to its schema. A Type without an entry here is a
// bug TestCatalogComplete catches.
var catalog = [numTypes]Desc{
	EvQueryStart: {Name: "query.start", A: "est_pages", B: "budget"},
	EvQueryDone:  {Name: "query.done", A: "pages", B: "runtime_ns"},

	EvAdmissionEnqueue: {Name: "admission.enqueue", A: "demand"},
	EvAdmissionGrant:   {Name: "admission.grant", A: "granted", B: "wait_ns"},
	EvAdmissionReplan:  {Name: "admission.replan", A: "granted"},
	EvCreditsReclaim:   {Name: "credits.reclaim", A: "reclaimed", B: "held"},
	EvLeaseRelease:     {Name: "lease.release", A: "credits", B: "pool_pages"},
	EvSupplyDegrade:    {Name: "supply.degrade", A: "supply", B: "total"},

	EvWorkerStart:  {Name: "worker.start", A: "worker"},
	EvWorkerExit:   {Name: "worker.exit", A: "worker"},
	EvReadRetry:    {Name: "read.retry", A: "page", B: "attempt"},
	EvRetryBackoff: {Name: "retry.backoff", A: "page", B: "backoff_ns"},

	EvFaultError:     {Name: "fault.error", A: "offset"},
	EvFaultStraggler: {Name: "fault.straggler", A: "offset", B: "delay_ns"},
	EvFaultThrottle:  {Name: "fault.throttle", A: "outstanding", B: "penalty_ns"},

	EvFrameUninstall: {Name: "frame.uninstall", A: "page", B: "epoch"},

	EvScanShareAttach: {Name: "scanshare.attach", A: "join_block", B: "consumers"},
	EvScanShareDetach: {Name: "scanshare.detach", A: "blocks", B: "consumers"},
	EvScanShareLap:    {Name: "scanshare.lap", A: "laps", B: "consumers"},

	EvPlanCacheHit:  {Name: "plancache.hit", A: "plans"},
	EvPlanCacheMiss: {Name: "plancache.miss", A: "plans"},

	EvPlanBandHit:    {Name: "plancache.band_hit", A: "band", B: "stable"},
	EvPlanBandMiss:   {Name: "plancache.band_miss", A: "band"},
	EvPlanRevalidate: {Name: "plancache.revalidate", A: "band", B: "kept"},
	EvGreedyPlan:     {Name: "planner.greedy", A: "band", B: "candidates"},
	EvGreedyFallback: {Name: "planner.fallback", A: "band", B: "candidates"},

	EvShardScatter:    {Name: "shard.scatter", A: "shards", B: "pruned"},
	EvShardPartial:    {Name: "shard.partial", A: "shard", B: "rows"},
	EvShardHedgeIssue: {Name: "shard.hedge.issue", A: "offset", B: "delay_ns"},
	EvShardHedgeWin:   {Name: "shard.hedge.win", A: "offset", B: "latency_ns"},
	EvShardGatherDone: {Name: "shard.gather.done", A: "shards", B: "rows"},

	EvLeaseGrow: {Name: "lease.grow", A: "granted", B: "total_granted"},

	EvAdaptSeed:       {Name: "adapt.seed", A: "degree", B: "planned"},
	EvAdaptGrow:       {Name: "adapt.grow", A: "degree", B: "previous"},
	EvAdaptShrink:     {Name: "adapt.shrink", A: "degree", B: "previous"},
	EvAdaptSpecIssue:  {Name: "adapt.spec.issue", A: "page", B: "pages"},
	EvAdaptSpecCancel: {Name: "adapt.spec.cancel", A: "dropped", B: "hits"},
}

// Describe returns the schema entry for t (the zero Desc for an unknown
// type).
func Describe(t Type) Desc {
	if int(t) < len(catalog) {
		return catalog[t]
	}
	return Desc{}
}

// Types returns every emittable event type, in catalog order — the lint
// and completeness tests iterate it.
func Types() []Type {
	out := make([]Type, 0, int(numTypes)-1)
	for t := EvNone + 1; t < numTypes; t++ {
		out = append(out, t)
	}
	return out
}
