package event

import (
	"bytes"
	"strings"
	"testing"

	"pioqo/internal/sim"
)

func TestCatalogComplete(t *testing.T) {
	seen := make(map[string]Type)
	for _, typ := range Types() {
		d := Describe(typ)
		if d.Name == "" {
			t.Errorf("type %d has no catalog entry", typ)
			continue
		}
		if prev, dup := seen[d.Name]; dup {
			t.Errorf("event name %q used by both type %d and %d", d.Name, prev, typ)
		}
		seen[d.Name] = typ
		if d.B != "" && d.A == "" {
			t.Errorf("event %q names operand B but not A", d.Name)
		}
	}
	if Describe(numTypes).Name != "" {
		t.Errorf("out-of-range Describe should return the zero Desc")
	}
}

func TestRingBounds(t *testing.T) {
	env := sim.NewEnv(1)
	l := NewLog(env, 4)
	for i := int64(0); i < 10; i++ {
		l.Emit(EvWorkerStart, i, i, 0)
	}
	if l.Total() != 10 {
		t.Fatalf("Total = %d, want 10", l.Total())
	}
	if l.Dropped() != 6 {
		t.Fatalf("Dropped = %d, want 6", l.Dropped())
	}
	evs := l.Events()
	if len(evs) != 4 {
		t.Fatalf("Len = %d, want 4", len(evs))
	}
	for i, e := range evs {
		if want := uint64(6 + i); e.Seq != want {
			t.Errorf("event %d: Seq = %d, want %d (oldest-first)", i, e.Seq, want)
		}
	}
}

func TestNilLogIsInert(t *testing.T) {
	var l *Log
	l.Emit(EvReadRetry, 1, 2, 3) // must not panic
	l.Reset()
	if l.Total() != 0 || l.Dropped() != 0 || l.Len() != 0 || l.Events() != nil {
		t.Fatal("nil log should report empty everything")
	}
	var buf bytes.Buffer
	if err := l.WriteJSONL(&buf); err != nil || buf.Len() != 0 {
		t.Fatalf("nil WriteJSONL: err=%v len=%d", err, buf.Len())
	}
}

func TestJSONLDeterministicAndTyped(t *testing.T) {
	export := func() string {
		env := sim.NewEnv(7)
		l := NewLog(env, 16)
		l.Emit(EvAdmissionGrant, 0, 4, 0)
		env.Schedule(5*sim.Microsecond, func() {
			l.Emit(EvReadRetry, 1, 42, 0)
			l.Emit(EvFaultError, NoQuery, 8192, 0)
		})
		env.Run()
		var buf bytes.Buffer
		if err := l.WriteJSONL(&buf); err != nil {
			t.Fatalf("WriteJSONL: %v", err)
		}
		return buf.String()
	}
	a, b := export(), export()
	if a != b {
		t.Fatalf("same-seed exports differ:\n%s\nvs\n%s", a, b)
	}
	lines := strings.Split(strings.TrimSuffix(a, "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("got %d lines, want 3:\n%s", len(lines), a)
	}
	want := []string{
		`{"seq":0,"at_ns":0,"event":"admission.grant","query":0,"granted":4,"wait_ns":0}`,
		`{"seq":1,"at_ns":5000,"event":"read.retry","query":1,"page":42,"attempt":0}`,
		`{"seq":2,"at_ns":5000,"event":"fault.error","offset":8192}`,
	}
	for i, w := range want {
		if lines[i] != w {
			t.Errorf("line %d:\n got %s\nwant %s", i, lines[i], w)
		}
	}
}

// BenchmarkEmitDisabled is the zero-overhead gate: the disabled (nil) log's
// Emit must cost one comparison and 0 allocs/op. scripts/verify.sh runs it
// with -benchmem and rejects any allocation.
func BenchmarkEmitDisabled(b *testing.B) {
	var l *Log
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		l.Emit(EvReadRetry, int64(i), 1, 2)
	}
}

// BenchmarkEmitEnabled documents that even the enabled path allocates
// nothing per event — the ring is preallocated.
func BenchmarkEmitEnabled(b *testing.B) {
	env := sim.NewEnv(1)
	l := NewLog(env, DefaultCapacity)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l.Emit(EvReadRetry, int64(i), 1, 2)
	}
}
