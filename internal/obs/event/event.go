// Package event is the engine's structured decision log: a bounded,
// virtual-time-stamped ring of typed events recording every load-bearing
// choice the engine makes — admission grants and re-brokered budgets, lease
// degradation, fault injections, executor retries and backoff, worker
// lifecycle, buffer-frame uninstalls, plan-cache hits and misses.
//
// The log is strictly an observer. Emit mutates a preallocated ring and
// nothing else: it schedules no simulation events, draws no randomness, and
// allocates no memory, so an instrumented run is byte-identical to an
// uninstrumented one and two same-seed runs produce byte-identical JSONL
// exports. A nil *Log is the disabled log — every method is a no-op — and
// the nil check is the entire cost of disabled observability on the hot
// path (benchmarked at 0 allocs/op by BenchmarkEmitDisabled).
//
// Events carry a typed schema, not strings: a Type from the catalog, the
// owning query's id (or NoQuery), and two int64 operands whose meaning the
// catalog names per type. Renderers (WriteJSONL) look the names up in the
// catalog, so emit sites stay allocation-free and the schema lives in one
// place (scripts/verify.sh lints emit sites against it).
package event

import (
	"bufio"
	"io"
	"strconv"

	"pioqo/internal/sim"
)

// NoQuery marks an event not attributable to a single query (device-level
// faults, buffer-pool housekeeping, plan-cache traffic).
const NoQuery int64 = -1

// Event is one recorded engine decision. A and B are the per-type operands
// named by the catalog entry for Type.
type Event struct {
	Seq   uint64   // emission sequence number, dense from 0
	At    sim.Time // virtual timestamp
	Type  Type
	Query int64 // owning query id, or NoQuery
	A, B  int64
}

// DefaultCapacity is the ring size NewLog uses when given a non-positive
// capacity: large enough to hold every event of the experiment workloads,
// small enough to stay cache-resident.
const DefaultCapacity = 4096

// Log is a bounded event ring. The zero-cost disabled form is a nil *Log;
// an enabled log overwrites its oldest events once the ring fills, so the
// memory bound holds for arbitrarily long runs (Dropped reports the
// overwritten count).
//
// Like every other engine structure the log is confined to simulation
// context and needs no locking.
type Log struct {
	env *sim.Env
	buf []Event
	n   uint64 // total events emitted since NewLog
}

// NewLog returns a log with room for capacity events (DefaultCapacity when
// capacity <= 0).
func NewLog(env *sim.Env, capacity int) *Log {
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	return &Log{env: env, buf: make([]Event, capacity)}
}

// Emit records one event. Nil-safe and allocation-free: the disabled (nil)
// log returns after one comparison, the enabled log writes one ring slot.
func (l *Log) Emit(t Type, query, a, b int64) {
	if l == nil {
		return
	}
	l.buf[l.n%uint64(len(l.buf))] = Event{
		Seq: l.n, At: l.env.Now(), Type: t, Query: query, A: a, B: b,
	}
	l.n++
}

// Total reports how many events have been emitted since the log was
// created, including any the ring has since overwritten. Nil-safe.
func (l *Log) Total() uint64 {
	if l == nil {
		return 0
	}
	return l.n
}

// Dropped reports how many emitted events the ring has overwritten.
// Nil-safe.
func (l *Log) Dropped() uint64 {
	if l == nil {
		return 0
	}
	if cap := uint64(len(l.buf)); l.n > cap {
		return l.n - cap
	}
	return 0
}

// Len reports how many events the ring currently retains. Nil-safe.
func (l *Log) Len() int {
	if l == nil {
		return 0
	}
	if l.n < uint64(len(l.buf)) {
		return int(l.n)
	}
	return len(l.buf)
}

// Events returns the retained events oldest-first, as a fresh copy.
// Nil-safe (nil log returns nil).
func (l *Log) Events() []Event {
	n := l.Len()
	if n == 0 {
		return nil
	}
	out := make([]Event, 0, n)
	start := l.n - uint64(n)
	for i := uint64(0); i < uint64(n); i++ {
		out = append(out, l.buf[(start+i)%uint64(len(l.buf))])
	}
	return out
}

// Reset drops every retained event and restarts the sequence numbering.
// Nil-safe.
func (l *Log) Reset() {
	if l == nil {
		return
	}
	l.n = 0
}

// appendJSON renders the event as one JSON object with a fixed field
// order — seq, at_ns, event, query, then the catalog-named operands — so
// exports are byte-identical across runs. Operand fields with an empty
// catalog name are omitted; query is omitted for NoQuery events.
func (e Event) appendJSON(buf []byte) []byte {
	d := Describe(e.Type)
	buf = append(buf, `{"seq":`...)
	buf = strconv.AppendUint(buf, e.Seq, 10)
	buf = append(buf, `,"at_ns":`...)
	buf = strconv.AppendInt(buf, int64(e.At), 10)
	buf = append(buf, `,"event":"`...)
	buf = append(buf, d.Name...)
	buf = append(buf, '"')
	if e.Query != NoQuery {
		buf = append(buf, `,"query":`...)
		buf = strconv.AppendInt(buf, e.Query, 10)
	}
	if d.A != "" {
		buf = append(buf, `,"`...)
		buf = append(buf, d.A...)
		buf = append(buf, `":`...)
		buf = strconv.AppendInt(buf, e.A, 10)
	}
	if d.B != "" {
		buf = append(buf, `,"`...)
		buf = append(buf, d.B...)
		buf = append(buf, `":`...)
		buf = strconv.AppendInt(buf, e.B, 10)
	}
	return append(buf, '}')
}

// String renders the event as its JSONL line (without the newline).
func (e Event) String() string { return string(e.appendJSON(nil)) }

// WriteJSONL exports the retained events oldest-first as JSON Lines. The
// rendering is fully deterministic — fixed field order, integer-only
// values — so two same-seed runs export byte-identical logs. Nil-safe (a
// nil log writes nothing).
func (l *Log) WriteJSONL(w io.Writer) error {
	bw := bufio.NewWriter(w)
	var line []byte
	for _, e := range l.Events() {
		line = e.appendJSON(line[:0])
		line = append(line, '\n')
		if _, err := bw.Write(line); err != nil {
			return err
		}
	}
	return bw.Flush()
}
