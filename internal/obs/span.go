package obs

import (
	"fmt"
	"strings"

	"pioqo/internal/sim"
)

// Attr is one span attribute. Values are formatted with %v at render time.
type Attr struct {
	Key   string
	Value interface{}
}

// KV builds an attribute.
func KV(key string, value interface{}) Attr { return Attr{Key: key, Value: value} }

// Span is one node of a virtual-time trace: a named interval with
// attributes and child spans. Spans are created through a Tracer and closed
// with End; all times are read from the tracer's sim clock.
//
// Every method is nil-safe: instrumented code paths hold a possibly-nil
// *Span and need no guards, so tracing costs nothing when disabled.
type Span struct {
	Name     string
	Start    sim.Time
	Finish   sim.Time
	Attrs    []Attr
	Children []*Span

	tracer *Tracer
	tid    int
	ended  bool
}

// SetAttr appends (or replaces) an attribute on the span.
func (s *Span) SetAttr(key string, value interface{}) {
	if s == nil {
		return
	}
	for i := range s.Attrs {
		if s.Attrs[i].Key == key {
			s.Attrs[i].Value = value
			return
		}
	}
	s.Attrs = append(s.Attrs, Attr{Key: key, Value: value})
}

// Attr returns the formatted value of the named attribute, if present.
func (s *Span) Attr(key string) (string, bool) {
	if s == nil {
		return "", false
	}
	for _, a := range s.Attrs {
		if a.Key == key {
			return fmt.Sprint(a.Value), true
		}
	}
	return "", false
}

// End closes the span at the current virtual time. Ending twice is a no-op
// (the first End wins), so deferred and explicit closes compose.
func (s *Span) End() {
	if s == nil || s.ended {
		return
	}
	s.ended = true
	s.Finish = s.tracer.env.Now()
}

// Duration reports the span's virtual-time length. An unended span reads
// zero.
func (s *Span) Duration() sim.Duration {
	if s == nil || !s.ended {
		return 0
	}
	return sim.Duration(s.Finish - s.Start)
}

// Track reports the span's track id: 0 for the main lane, a distinct id per
// StartTrack span. Spans on different tracks ran concurrently.
func (s *Span) Track() int {
	if s == nil {
		return 0
	}
	return s.tid
}

// Trace collects spans across one or more tracers. It is environment-
// agnostic: a benchmark sweep that builds a fresh sim.Env per configuration
// attaches one Tracer per env to a shared Trace and exports them all into
// one Chrome trace file (each tracer becomes a process there).
type Trace struct {
	tracers []*Tracer
}

// NewTrace returns an empty trace.
func NewTrace() *Trace { return &Trace{} }

// Tracers returns the attached tracers, in attachment order.
func (t *Trace) Tracers() []*Tracer { return t.tracers }

// Spans returns every root span across all tracers, in creation order.
func (t *Trace) Spans() []*Span {
	var roots []*Span
	for _, tr := range t.tracers {
		roots = append(roots, tr.roots...)
	}
	return roots
}

// NewTracer attaches a tracer bound to env's clock. name labels the tracer
// (the process name in Chrome exports).
func (t *Trace) NewTracer(env *sim.Env, name string) *Tracer {
	tr := &Tracer{env: env, name: name, pid: len(t.tracers) + 1}
	t.tracers = append(t.tracers, tr)
	return tr
}

// NewTracer returns a standalone tracer with its own single-tracer Trace —
// the common case of tracing one query on one system.
func NewTracer(env *sim.Env, name string) *Tracer {
	return NewTrace().NewTracer(env, name)
}

// Tracer opens spans against one sim.Env's clock.
//
// A nil *Tracer is valid and inert: Start returns a nil span, so components
// thread an optional tracer without guards.
type Tracer struct {
	env  *sim.Env
	name string
	pid  int

	roots   []*Span
	nextTID int

	// Detail enables high-volume inner spans (per-leaf I/O batches). Off by
	// default: a full benchmark sweep traced with Detail on would record one
	// span per index leaf visited.
	Detail bool
}

// Name returns the tracer's label.
func (tr *Tracer) Name() string {
	if tr == nil {
		return ""
	}
	return tr.name
}

// Detailed reports whether high-volume inner spans should be recorded.
func (tr *Tracer) Detailed() bool { return tr != nil && tr.Detail }

// Start opens a span at the current virtual time under parent (nil parent
// makes a root span). The span inherits its parent's track; use StartTrack
// for concurrent siblings (workers) that should render side by side.
func (tr *Tracer) Start(parent *Span, name string, attrs ...Attr) *Span {
	return tr.start(parent, name, false, attrs)
}

// StartTrack opens a span like Start but on a fresh track (Chrome thread
// lane), for spans that run concurrently with their siblings.
func (tr *Tracer) StartTrack(parent *Span, name string, attrs ...Attr) *Span {
	return tr.start(parent, name, true, attrs)
}

func (tr *Tracer) start(parent *Span, name string, newTrack bool, attrs []Attr) *Span {
	if tr == nil {
		return nil
	}
	s := &Span{Name: name, Start: tr.env.Now(), Attrs: attrs, tracer: tr}
	switch {
	case newTrack:
		tr.nextTID++
		s.tid = tr.nextTID
	case parent != nil:
		s.tid = parent.tid
	}
	if parent != nil {
		parent.Children = append(parent.Children, s)
	} else {
		tr.roots = append(tr.roots, s)
	}
	return s
}

// maxTreeChildren caps how many children of one span the text tree shows;
// the remainder collapse into a single "… (n more)" line. Chrome exports
// are never truncated.
const maxTreeChildren = 12

// Tree renders the span and its descendants as an indented text tree with
// durations and attributes — the EXPLAIN ANALYZE view.
func (s *Span) Tree() string {
	if s == nil {
		return ""
	}
	var b strings.Builder
	s.tree(&b, "", "", "")
	return strings.TrimRight(b.String(), "\n")
}

func (s *Span) tree(b *strings.Builder, lead, branch, childLead string) {
	b.WriteString(lead + branch + s.label() + "\n")
	n := len(s.Children)
	shown := n
	if shown > maxTreeChildren {
		shown = maxTreeChildren
	}
	for i := 0; i < shown; i++ {
		last := i == n-1
		br, cl := "├─ ", "│  "
		if last {
			br, cl = "└─ ", "   "
		}
		s.Children[i].tree(b, lead+childLead, br, cl)
	}
	if shown < n {
		var rest sim.Duration
		for _, c := range s.Children[shown:] {
			rest += c.Duration()
		}
		fmt.Fprintf(b, "%s└─ … (%d more spans, %v)\n", lead+childLead, n-shown, rest)
	}
}

func (s *Span) label() string {
	d := "open"
	if s.ended {
		d = s.Duration().String()
	}
	label := fmt.Sprintf("%s %s", s.Name, d)
	if len(s.Attrs) > 0 {
		parts := make([]string, len(s.Attrs))
		for i, a := range s.Attrs {
			parts[i] = fmt.Sprintf("%s=%v", a.Key, a.Value)
		}
		label += " [" + strings.Join(parts, " ") + "]"
	}
	return label
}

// Walk visits the span and every descendant depth-first.
func (s *Span) Walk(fn func(*Span)) {
	if s == nil {
		return
	}
	fn(s)
	for _, c := range s.Children {
		c.Walk(fn)
	}
}
