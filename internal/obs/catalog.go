package obs

// The metric-name catalog: every instrument name the engine registers, in
// one place. Emit sites reference these constants — never ad-hoc string
// literals — so the full metric surface is greppable here and
// scripts/verify.sh rejects stringly registrations elsewhere.
//
// Naming convention: "<subsystem>.<measure>", with a unit suffix (_us, _ns)
// when the measure is not a plain count.
const (
	// internal/device — published by Metrics.Publish.
	MetricDeviceQueueDepth = "device.queue_depth" // gauge: outstanding requests
	MetricDeviceRequests   = "device.requests"    // counter: completed requests
	MetricDeviceBytes      = "device.bytes"       // counter: completed bytes
	MetricDeviceLatencyNs  = "device.latency_ns"  // counter: summed request latency
	MetricDeviceLatencyUs  = "device.latency_us"  // histogram: request latency

	// internal/buffer — published by Pool.Publish.
	MetricBufferHits            = "buffer.hits"
	MetricBufferMisses          = "buffer.misses"
	MetricBufferJoinedLoads     = "buffer.joined_loads"
	MetricBufferPrefetchReads   = "buffer.prefetch_reads"   // counter: device ops issued
	MetricBufferPrefetchedPages = "buffer.prefetched_pages" // counter: pages covered by those ops
	MetricBufferEvictions       = "buffer.evictions"
	MetricBufferDirtyWrites     = "buffer.dirty_writes"
	MetricBufferReadErrors      = "buffer.read_errors"
	MetricBufferCachedPages     = "buffer.cached_pages" // gauge: resident frames

	// internal/buffer scan sharing — published by Shares.Publish.
	MetricScanShareAttaches = "scanshare.attaches"
	MetricScanShareDetaches = "scanshare.detaches"
	MetricScanShareLaps     = "scanshare.laps"

	// internal/broker — registered by broker.New.
	MetricBrokerCreditsTotal     = "broker.credits_total" // gauge: calibrated supply
	MetricBrokerCreditsInUse     = "broker.credits_in_use"
	MetricBrokerWorkersInUse     = "broker.workers_in_use"
	MetricBrokerAdmissions       = "broker.admissions"
	MetricBrokerSharedAdmissions = "broker.shared_admissions" // joined a live circulating scan, no credits
	MetricBrokerReplans          = "broker.replans"
	MetricBrokerReclaims         = "broker.reclaims"
	MetricBrokerGrows            = "broker.grows"             // counter: credits re-leased mid-flight
	MetricBrokerAdmissionWaitUs  = "broker.admission_wait_us" // histogram

	// internal/exec.
	MetricExecScans       = "exec.scans"
	MetricExecRowsMatched = "exec.rows_matched"
	MetricExecReadFaults  = "exec.read_faults"

	// internal/opt.
	MetricOptOptimizations   = "opt.optimizations"
	MetricOptPlansEnumerated = "opt.plans_enumerated"
	MetricOptMemoHits        = "opt.memo_hits"
	MetricOptMemoMisses      = "opt.memo_misses"

	// internal/opt parameterized cache + greedy fast path (serving plan
	// path). Band metrics count selectivity-band cache traffic; greedy
	// metrics split fast-path decisions from crossover fallbacks to full
	// enumeration.
	MetricOptBandHits          = "opt.band_hits"
	MetricOptBandMisses        = "opt.band_misses"
	MetricOptBandRevalidations = "opt.band_revalidations" // epoch drift survived by winner/runner re-pricing
	MetricOptGreedyPlans       = "opt.greedy_plans"
	MetricOptGreedyFallbacks   = "opt.greedy_fallbacks"

	// Sharded scatter-gather execution (internal/exec gather operator +
	// the public cluster layer). Scatters counts gather queries; partials
	// counts per-shard scans they fanned out; pruned counts shards a
	// range-partitioned query skipped entirely; hedge counters track the
	// straggler-hedging policy's speculative duplicate reads and how many
	// of them beat the original.
	MetricShardScatters    = "shard.scatters"
	MetricShardPartials    = "shard.partials"
	MetricShardPruned      = "shard.pruned"
	MetricShardHedgeIssued = "shard.hedge_issued"
	MetricShardHedgeWins   = "shard.hedge_wins"

	// internal/adapt — the feedback controller and speculative prefetcher.
	// Retunes counts controller decisions that changed the target degree
	// (grows + shrinks); spec_* track the speculation ledger in pages.
	MetricAdaptRetunes      = "adapt.retunes"
	MetricAdaptGrows        = "adapt.grows"
	MetricAdaptShrinks      = "adapt.shrinks"
	MetricAdaptSpecIssued   = "adapt.spec_issued"
	MetricAdaptSpecHits     = "adapt.spec_hits"
	MetricAdaptSpecCanceled = "adapt.spec_canceled"
)
