package obs

import (
	"fmt"

	"pioqo/internal/sim"
)

// Sample is one periodic reading of an instantaneous value.
type Sample struct {
	At    sim.Time
	Value float64
}

// Sampler reads a value on a fixed virtual-time period into a time series —
// the primitive behind queue-depth profiling (§2 of the paper). Start it
// before the work of interest and Stop it from the driving process when the
// work completes: an unstopped sampler keeps scheduling ticks and keeps the
// simulation alive.
type Sampler struct {
	env      *sim.Env
	interval sim.Duration
	read     func() float64
	samples  []Sample
	stopped  bool
}

// NewSampler returns a sampler calling read every interval.
func NewSampler(env *sim.Env, interval sim.Duration, read func() float64) *Sampler {
	if interval <= 0 {
		panic(fmt.Sprintf("obs: non-positive sampling interval %v", interval))
	}
	if read == nil {
		panic("obs: sampler without a read function")
	}
	return &Sampler{env: env, interval: interval, read: read}
}

// Start begins sampling at the current virtual time. Restarting an active
// or stopped sampler appends to the existing series.
func (s *Sampler) Start() {
	s.stopped = false
	s.tick()
}

func (s *Sampler) tick() {
	if s.stopped {
		return
	}
	s.samples = append(s.samples, Sample{At: s.env.Now(), Value: s.read()})
	s.env.Schedule(s.interval, s.tick)
}

// Stop ends sampling; the scheduled next tick becomes a no-op.
func (s *Sampler) Stop() { s.stopped = true }

// Interval returns the sampling period.
func (s *Sampler) Interval() sim.Duration { return s.interval }

// Series returns the collected samples.
func (s *Sampler) Series() []Sample { return s.samples }
