package obs

import (
	"encoding/json"
	"fmt"
	"io"

	"pioqo/internal/sim"
)

// chromeEvent is one Chrome trace_event. Complete events ("ph":"X") carry a
// start timestamp and duration in microseconds; metadata events ("ph":"M")
// name processes and threads.
type chromeEvent struct {
	Name string                 `json:"name"`
	Cat  string                 `json:"cat,omitempty"`
	Ph   string                 `json:"ph"`
	Ts   float64                `json:"ts"`
	Dur  *float64               `json:"dur,omitempty"`
	Pid  int                    `json:"pid"`
	Tid  int                    `json:"tid"`
	Args map[string]interface{} `json:"args,omitempty"`
}

type chromeFile struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// WriteChrome exports the trace as Chrome trace_event JSON — the format
// chrome://tracing and ui.perfetto.dev load directly. Each tracer becomes a
// process; each track becomes a thread, so concurrent worker spans render
// as parallel lanes. Timestamps are virtual microseconds since simulation
// start.
func (t *Trace) WriteChrome(w io.Writer) error {
	file := chromeFile{DisplayTimeUnit: "ms", TraceEvents: []chromeEvent{}}
	for _, tr := range t.tracers {
		file.TraceEvents = append(file.TraceEvents, chromeEvent{
			Name: "process_name", Ph: "M", Pid: tr.pid,
			Args: map[string]interface{}{"name": tr.name},
		})
		named := map[int]bool{}
		for _, root := range tr.roots {
			root.Walk(func(s *Span) {
				if !named[s.tid] {
					named[s.tid] = true
					file.TraceEvents = append(file.TraceEvents, chromeEvent{
						Name: "thread_name", Ph: "M", Pid: tr.pid, Tid: s.tid,
						Args: map[string]interface{}{"name": trackName(s)},
					})
				}
				file.TraceEvents = append(file.TraceEvents, s.chrome(tr.pid))
			})
		}
	}
	enc := json.NewEncoder(w)
	return enc.Encode(file)
}

// trackName labels a Chrome thread lane after the first span seen on it.
func trackName(s *Span) string {
	if s.tid == 0 {
		return "main"
	}
	return s.Name
}

func (s *Span) chrome(pid int) chromeEvent {
	ev := chromeEvent{
		Name: s.Name,
		Cat:  "span",
		Ph:   "X",
		Ts:   sim.Duration(s.Start).Micros(),
		Pid:  pid,
		Tid:  s.tid,
	}
	dur := s.Duration().Micros()
	ev.Dur = &dur
	if len(s.Attrs) > 0 {
		ev.Args = make(map[string]interface{}, len(s.Attrs))
		for _, a := range s.Attrs {
			switch v := a.Value.(type) {
			case int, int64, int32, float64, float32, bool, string:
				ev.Args[a.Key] = v
			case sim.Duration:
				ev.Args[a.Key] = v.String()
			default:
				ev.Args[a.Key] = fmt.Sprint(v)
			}
		}
	}
	return ev
}
