package obs

import (
	"fmt"
	"sort"
	"strings"

	"pioqo/internal/sim"
)

// Counter is a monotonically increasing count. Counters in a Registry are
// cumulative for the life of the simulation — per-interval numbers come
// from snapshot diffs, never from resetting the counter, so two queries
// metered back-to-back cannot leak counts into each other.
type Counter struct {
	v int64
}

// Add increments the counter by n (>= 0).
func (c *Counter) Add(n int64) {
	if n < 0 {
		panic(fmt.Sprintf("obs: counter decrement by %d", n))
	}
	c.v += n
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v++ }

// Value reports the cumulative count.
func (c *Counter) Value() int64 { return c.v }

// Gauge is an instantaneous value that additionally integrates itself over
// virtual time, so any interval's time-weighted mean is exact:
//
//	mean over [a, b] = (Integral(b) - Integral(a)) / (b - a)
//
// This is the generalisation of the queue-depth integrator the device
// metrics used to carry privately.
type Gauge struct {
	env      *sim.Env
	v        float64
	integral float64 // ∫ v dt, in value·ns
	last     sim.Time
}

// NewGauge returns a zero gauge integrating against e's clock. Gauges used
// standalone (unregistered) are created here; Registry.Gauge both creates
// and registers.
func NewGauge(e *sim.Env) *Gauge { return &Gauge{env: e} }

func (g *Gauge) integrate() {
	now := g.env.Now()
	g.integral += g.v * float64(now-g.last)
	g.last = now
}

// Set replaces the gauge's value at the current virtual time.
func (g *Gauge) Set(v float64) {
	g.integrate()
	g.v = v
}

// Add shifts the gauge's value by delta at the current virtual time.
func (g *Gauge) Add(delta float64) {
	g.integrate()
	g.v += delta
}

// Value reports the instantaneous value.
func (g *Gauge) Value() float64 { return g.v }

// Integral reports ∫ value dt since the start of the simulation, in
// value·nanoseconds.
func (g *Gauge) Integral() float64 {
	g.integrate()
	return g.integral
}

// Histogram is a fixed-bucket histogram: Edges are ascending upper bounds,
// with an implicit overflow bucket above the last edge.
type Histogram struct {
	edges  []float64
	counts []int64
	sum    float64
	n      int64
}

// NewHistogram returns a histogram with the given ascending bucket upper
// bounds.
func NewHistogram(edges []float64) *Histogram {
	if len(edges) == 0 {
		panic("obs: histogram with no bucket edges")
	}
	for i := 1; i < len(edges); i++ {
		if edges[i] <= edges[i-1] {
			panic("obs: histogram edges not ascending")
		}
	}
	return &Histogram{edges: append([]float64(nil), edges...),
		counts: make([]int64, len(edges)+1)}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.edges, v)
	h.counts[i]++
	h.sum += v
	h.n++
}

// Edges returns the bucket upper bounds.
func (h *Histogram) Edges() []float64 { return h.edges }

// Count reports the number of observations.
func (h *Histogram) Count() int64 { return h.n }

// Registry is the engine-wide named-instrument registry. Components create
// (or adopt) instruments by name at startup; observers snapshot the whole
// registry at any virtual time and diff two snapshots to attribute traffic
// to the interval between them.
//
// Like the rest of the simulation state, a Registry is confined to
// simulation context and needs no locking: the sim kernel guarantees mutual
// exclusion between processes.
type Registry struct {
	env      *sim.Env
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// NewRegistry returns an empty registry bound to e's clock.
func NewRegistry(e *sim.Env) *Registry {
	return &Registry{
		env:      e,
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
	}
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	g, ok := r.gauges[name]
	if !ok {
		g = NewGauge(r.env)
		r.gauges[name] = g
	}
	return g
}

// AdoptGauge registers an existing gauge under name — used by components
// (like the device metrics) whose gauge predates the registry.
func (r *Registry) AdoptGauge(name string, g *Gauge) {
	r.gauges[name] = g
}

// Histogram returns the named histogram, creating it with the given edges
// on first use. Edges are ignored for an existing histogram.
func (r *Registry) Histogram(name string, edges []float64) *Histogram {
	h, ok := r.hists[name]
	if !ok {
		h = NewHistogram(edges)
		r.hists[name] = h
	}
	return h
}

// GaugeSample is a gauge's state inside a snapshot.
type GaugeSample struct {
	Value    float64 // instantaneous value at snapshot time
	Integral float64 // ∫ value dt since simulation start, value·ns
}

// HistogramSample is a histogram's state inside a snapshot.
type HistogramSample struct {
	Edges  []float64 // shared with the live histogram; treat as read-only
	Counts []int64
	Sum    float64
	Count  int64
}

// Snapshot is a point-in-time copy of every instrument in a registry.
type Snapshot struct {
	At         sim.Time
	Counters   map[string]int64
	Gauges     map[string]GaugeSample
	Histograms map[string]HistogramSample
}

// Snapshot copies the current state of every instrument.
func (r *Registry) Snapshot() Snapshot {
	s := Snapshot{
		At:         r.env.Now(),
		Counters:   make(map[string]int64, len(r.counters)),
		Gauges:     make(map[string]GaugeSample, len(r.gauges)),
		Histograms: make(map[string]HistogramSample, len(r.hists)),
	}
	for name, c := range r.counters {
		s.Counters[name] = c.v
	}
	for name, g := range r.gauges {
		s.Gauges[name] = GaugeSample{Value: g.Value(), Integral: g.Integral()}
	}
	for name, h := range r.hists {
		s.Histograms[name] = HistogramSample{
			Edges:  h.edges,
			Counts: append([]int64(nil), h.counts...),
			Sum:    h.sum,
			Count:  h.n,
		}
	}
	return s
}

// GaugeDiff summarises a gauge over a snapshot interval.
type GaugeDiff struct {
	Mean float64 // time-weighted mean over the interval
	Last float64 // instantaneous value at the end of the interval
}

// Diff is the change between two snapshots of the same registry: counter
// deltas, gauge time-weighted means, and histogram count deltas over the
// interval. Instruments created after the earlier snapshot appear with the
// earlier state taken as zero.
type Diff struct {
	Elapsed    sim.Duration
	Counters   map[string]int64
	Gauges     map[string]GaugeDiff
	Histograms map[string]HistogramSample
}

// Sub reports the change from the earlier snapshot to s. It panics if
// earlier was taken after s.
func (s Snapshot) Sub(earlier Snapshot) Diff {
	if earlier.At > s.At {
		panic("obs: snapshot diff with reversed interval")
	}
	d := Diff{
		Elapsed:    sim.Duration(s.At - earlier.At),
		Counters:   make(map[string]int64, len(s.Counters)),
		Gauges:     make(map[string]GaugeDiff, len(s.Gauges)),
		Histograms: make(map[string]HistogramSample, len(s.Histograms)),
	}
	for name, v := range s.Counters {
		if delta := v - earlier.Counters[name]; delta != 0 {
			d.Counters[name] = delta
		}
	}
	for name, g := range s.Gauges {
		gd := GaugeDiff{Last: g.Value}
		if d.Elapsed > 0 {
			gd.Mean = (g.Integral - earlier.Gauges[name].Integral) / float64(d.Elapsed)
		} else {
			gd.Mean = g.Value
		}
		d.Gauges[name] = gd
	}
	for name, h := range s.Histograms {
		prev := earlier.Histograms[name]
		counts := append([]int64(nil), h.Counts...)
		for i := range prev.Counts {
			if i < len(counts) {
				counts[i] -= prev.Counts[i]
			}
		}
		d.Histograms[name] = HistogramSample{
			Edges:  h.Edges,
			Counts: counts,
			Sum:    h.Sum - prev.Sum,
			Count:  h.Count - prev.Count,
		}
	}
	return d
}

// String renders the diff as sorted "name value" lines: counter deltas
// first, then gauge means, omitting zero counters.
func (d Diff) String() string {
	var lines []string
	for name, v := range d.Counters {
		lines = append(lines, fmt.Sprintf("%s +%d", name, v))
	}
	for name, g := range d.Gauges {
		lines = append(lines, fmt.Sprintf("%s mean=%.2f last=%.2f", name, g.Mean, g.Last))
	}
	sort.Strings(lines)
	return strings.Join(lines, "\n")
}
