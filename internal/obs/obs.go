// Package obs is the engine-wide observability subsystem: virtual-time
// span tracing, a metrics registry, and exporters.
//
// The paper's central empirical move is *observing* the I/O pipeline — §2
// profiles the device queue depth during a parallel index scan to show that
// "a queue depth of n is clearly observable". This package generalises that
// single signal to the whole stack:
//
//   - Spans (span.go) form a hierarchical virtual-time trace of one or more
//     query executions: query → optimize → operator → worker → I/O batch.
//     Each span carries attributes (plan chosen, degree, pages read, cache
//     hits, CPU vs I/O wait split) and renders as a compact text tree
//     (EXPLAIN ANALYZE) or as Chrome trace_event JSON loadable in
//     chrome://tracing and Perfetto (chrome.go).
//
//   - The metrics registry (metrics.go) holds named counters, gauges, and
//     fixed-bucket histograms that the device, buffer pool, executor, and
//     optimizer register into. Gauges integrate over virtual time, so a
//     snapshot diff between two instants yields exact time-weighted means —
//     the mean device queue depth of a single query, for example. Counters
//     are cumulative and never reset; per-query attribution is always a
//     diff of two snapshots, which cannot leak across queries.
//
//   - The sampler (sampler.go) periodically reads any instantaneous value
//     into a time series; internal/trace's queue-depth Profiler is a thin
//     shim over it.
//
// Everything runs against sim.Env's clock: the subsystem observes virtual
// time, not host time, so traces and metrics are bit-reproducible across
// runs with the same seed.
package obs
