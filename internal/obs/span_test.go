package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"pioqo/internal/sim"
)

func TestSpanTreeStructureAndTiming(t *testing.T) {
	env := sim.NewEnv(1)
	tr := NewTracer(env, "test")
	var query *Span
	env.Go("driver", func(p *sim.Proc) {
		query = tr.Start(nil, "query", KV("table", "T"))
		op := tr.Start(query, "PIS8", KV("degree", 8))
		for w := 0; w < 2; w++ {
			ws := tr.StartTrack(op, "worker")
			p.Sleep(2 * sim.Millisecond)
			ws.SetAttr("pages", 10)
			ws.End()
		}
		op.End()
		query.End()
	})
	env.Run()

	if query.Duration() != 4*sim.Millisecond {
		t.Errorf("query duration = %v, want 4ms", query.Duration())
	}
	op := query.Children[0]
	if len(op.Children) != 2 {
		t.Fatalf("operator has %d children, want 2", len(op.Children))
	}
	if op.Children[0].tid == op.Children[1].tid {
		t.Errorf("worker spans share track %d; StartTrack should separate them", op.Children[0].tid)
	}
	if v, ok := op.Children[0].Attr("pages"); !ok || v != "10" {
		t.Errorf("worker pages attr = %q, %v", v, ok)
	}

	tree := query.Tree()
	for _, want := range []string{"query", "PIS8", "worker", "degree=8", "pages=10", "└─"} {
		if !strings.Contains(tree, want) {
			t.Errorf("tree missing %q:\n%s", want, tree)
		}
	}
}

func TestNilTracerAndSpanAreInert(t *testing.T) {
	var tr *Tracer
	s := tr.Start(nil, "query")
	if s != nil {
		t.Fatal("nil tracer returned a span")
	}
	// All of these must be no-ops, not panics.
	s.SetAttr("k", 1)
	s.End()
	if s.Duration() != 0 || s.Tree() != "" {
		t.Error("nil span is not inert")
	}
	if _, ok := s.Attr("k"); ok {
		t.Error("nil span has attributes")
	}
	if tr.Detailed() {
		t.Error("nil tracer is detailed")
	}
	child := tr.StartTrack(s, "w")
	if child != nil {
		t.Error("nil tracer created a track span")
	}
}

func TestTreeCollapsesManyChildren(t *testing.T) {
	env := sim.NewEnv(1)
	tr := NewTracer(env, "test")
	root := tr.Start(nil, "op")
	for i := 0; i < maxTreeChildren+5; i++ {
		tr.Start(root, "leaf").End()
	}
	root.End()
	tree := root.Tree()
	if !strings.Contains(tree, "(5 more spans") {
		t.Errorf("tree does not collapse the tail:\n%s", tree)
	}
	if got := strings.Count(tree, "leaf"); got != maxTreeChildren {
		t.Errorf("tree shows %d leaves, want %d", got, maxTreeChildren)
	}
}

func TestChromeExport(t *testing.T) {
	trace := NewTrace()
	env := sim.NewEnv(1)
	tr := trace.NewTracer(env, "E1-HDD")
	env.Go("driver", func(p *sim.Proc) {
		q := tr.Start(nil, "query")
		w := tr.StartTrack(q, "pis-w0", KV("pages", 3))
		p.Sleep(sim.Millisecond)
		w.End()
		q.End()
	})
	env.Run()

	var buf bytes.Buffer
	if err := trace.WriteChrome(&buf); err != nil {
		t.Fatal(err)
	}
	var file struct {
		TraceEvents []struct {
			Name string                 `json:"name"`
			Ph   string                 `json:"ph"`
			Ts   float64                `json:"ts"`
			Dur  float64                `json:"dur"`
			Pid  int                    `json:"pid"`
			Tid  int                    `json:"tid"`
			Args map[string]interface{} `json:"args"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(buf.Bytes(), &file); err != nil {
		t.Fatalf("export is not valid JSON: %v", err)
	}
	if file.DisplayTimeUnit != "ms" {
		t.Errorf("displayTimeUnit = %q", file.DisplayTimeUnit)
	}
	var complete, meta int
	for _, ev := range file.TraceEvents {
		switch ev.Ph {
		case "X":
			complete++
			if ev.Name == "pis-w0" {
				if ev.Dur != 1000 {
					t.Errorf("worker dur = %g us, want 1000", ev.Dur)
				}
				if ev.Args["pages"] != float64(3) {
					t.Errorf("worker args = %v", ev.Args)
				}
				if ev.Tid == 0 {
					t.Error("worker on tid 0; StartTrack should allocate a lane")
				}
			}
		case "M":
			meta++
		}
	}
	if complete != 2 {
		t.Errorf("complete events = %d, want 2", complete)
	}
	if meta < 2 { // process_name + at least one thread_name
		t.Errorf("metadata events = %d", meta)
	}
}

func TestTraceMultipleTracersGetDistinctPids(t *testing.T) {
	trace := NewTrace()
	a := trace.NewTracer(sim.NewEnv(1), "sys-a")
	b := trace.NewTracer(sim.NewEnv(2), "sys-b")
	if a.pid == b.pid {
		t.Errorf("tracers share pid %d", a.pid)
	}
	a.Start(nil, "x").End()
	b.Start(nil, "y").End()
	if len(trace.Spans()) != 2 {
		t.Errorf("trace has %d roots, want 2", len(trace.Spans()))
	}
}
