package obs

import (
	"math"
	"strings"
	"testing"

	"pioqo/internal/sim"
)

func TestGaugeIntegral(t *testing.T) {
	env := sim.NewEnv(1)
	g := NewGauge(env)
	env.Go("driver", func(p *sim.Proc) {
		g.Set(2)
		p.Sleep(10 * sim.Millisecond)
		g.Set(6)
		p.Sleep(10 * sim.Millisecond)
		g.Set(0)
	})
	env.Run()
	// 2 for 10 ms, then 6 for 10 ms: integral = 80 ms·units.
	want := 80 * float64(sim.Millisecond)
	if got := g.Integral(); math.Abs(got-want) > 1e-6 {
		t.Errorf("integral = %g, want %g", got, want)
	}
	if g.Value() != 0 {
		t.Errorf("value = %g, want 0", g.Value())
	}
}

func TestSnapshotDiffAttributesInterval(t *testing.T) {
	env := sim.NewEnv(1)
	r := NewRegistry(env)
	reads := r.Counter("device.requests")
	depth := r.Gauge("device.queue_depth")

	var first, second Diff
	env.Go("driver", func(p *sim.Proc) {
		// Interval one: 100 reads at depth 8 for 20 ms.
		s0 := r.Snapshot()
		depth.Set(8)
		reads.Add(100)
		p.Sleep(20 * sim.Millisecond)
		depth.Set(0)
		first = r.Snapshot().Sub(s0)

		// Interval two: 3 reads at depth 1 for 5 ms.
		s1 := r.Snapshot()
		depth.Set(1)
		reads.Add(3)
		p.Sleep(5 * sim.Millisecond)
		depth.Set(0)
		second = r.Snapshot().Sub(s1)
	})
	env.Run()

	if first.Counters["device.requests"] != 100 || second.Counters["device.requests"] != 3 {
		t.Errorf("counter deltas = %d, %d; want 100, 3",
			first.Counters["device.requests"], second.Counters["device.requests"])
	}
	if m := first.Gauges["device.queue_depth"].Mean; math.Abs(m-8) > 1e-9 {
		t.Errorf("first interval mean depth = %g, want 8", m)
	}
	if m := second.Gauges["device.queue_depth"].Mean; math.Abs(m-1) > 1e-9 {
		t.Errorf("second interval mean depth = %g, want 1", m)
	}
	if first.Elapsed != 20*sim.Millisecond || second.Elapsed != 5*sim.Millisecond {
		t.Errorf("elapsed = %v, %v", first.Elapsed, second.Elapsed)
	}
}

func TestCounterRejectsNegative(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on negative counter add")
		}
	}()
	(&Counter{}).Add(-1)
}

func TestHistogramBuckets(t *testing.T) {
	h := NewHistogram([]float64{10, 100, 1000})
	for _, v := range []float64{5, 10, 11, 500, 5000} {
		h.Observe(v)
	}
	want := []int64{2, 1, 1, 1} // (..10], (10..100], (100..1000], overflow
	for i, c := range h.counts {
		if c != want[i] {
			t.Errorf("bucket %d = %d, want %d", i, c, want[i])
		}
	}
	if h.Count() != 5 {
		t.Errorf("count = %d, want 5", h.Count())
	}
}

func TestHistogramDiff(t *testing.T) {
	env := sim.NewEnv(1)
	r := NewRegistry(env)
	h := r.Histogram("device.latency_us", []float64{100, 1000})
	h.Observe(50)
	s0 := r.Snapshot()
	h.Observe(500)
	h.Observe(5000)
	d := r.Snapshot().Sub(s0)
	hd := d.Histograms["device.latency_us"]
	if hd.Count != 2 {
		t.Errorf("diff count = %d, want 2", hd.Count)
	}
	if hd.Counts[0] != 0 || hd.Counts[1] != 1 || hd.Counts[2] != 1 {
		t.Errorf("diff counts = %v, want [0 1 1]", hd.Counts)
	}
}

func TestDiffStringRendersSorted(t *testing.T) {
	env := sim.NewEnv(1)
	r := NewRegistry(env)
	r.Counter("b.count").Add(2)
	r.Gauge("a.depth").Set(3)
	d := r.Snapshot().Sub(Snapshot{Counters: map[string]int64{}, Gauges: map[string]GaugeSample{}})
	out := d.String()
	if !strings.Contains(out, "b.count +2") || !strings.Contains(out, "a.depth") {
		t.Errorf("diff string missing instruments:\n%s", out)
	}
	if strings.Index(out, "a.depth") > strings.Index(out, "b.count") {
		t.Errorf("diff string not sorted:\n%s", out)
	}
}

func TestSamplerSeries(t *testing.T) {
	env := sim.NewEnv(1)
	v := 0.0
	s := NewSampler(env, sim.Millisecond, func() float64 { return v })
	env.Go("driver", func(p *sim.Proc) {
		s.Start()
		v = 4
		p.Sleep(5 * sim.Millisecond)
		s.Stop()
	})
	env.Run()
	series := s.Series()
	if len(series) < 5 {
		t.Fatalf("only %d samples", len(series))
	}
	if series[0].Value != 0 {
		t.Errorf("first sample = %g, want 0 (sampled before the write)", series[0].Value)
	}
	if series[2].Value != 4 {
		t.Errorf("later sample = %g, want 4", series[2].Value)
	}
	if series[1].At-series[0].At != sim.Time(sim.Millisecond) {
		t.Errorf("sample spacing = %v", series[1].At-series[0].At)
	}
}
