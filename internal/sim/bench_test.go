package sim

import (
	"fmt"
	"testing"
)

// BenchmarkEventThroughput measures raw scheduler throughput: how many
// plain events the kernel fires per second of host time.
func BenchmarkEventThroughput(b *testing.B) {
	e := NewEnv(1)
	var tick func()
	fired := 0
	tick = func() {
		fired++
		if fired < b.N {
			e.Schedule(Microsecond, tick)
		}
	}
	b.ResetTimer()
	e.Schedule(Microsecond, tick)
	e.Run()
}

// BenchmarkProcessContextSwitch measures the coroutine handoff cost: one
// process sleeping is two channel operations per event.
func BenchmarkProcessContextSwitch(b *testing.B) {
	e := NewEnv(1)
	e.Go("sleeper", func(p *Proc) {
		for i := 0; i < b.N; i++ {
			p.Sleep(Microsecond)
		}
	})
	b.ResetTimer()
	e.Run()
}

// BenchmarkManyProcesses interleaves 64 sleeping processes.
func BenchmarkManyProcesses(b *testing.B) {
	e := NewEnv(1)
	const procs = 64
	each := b.N/procs + 1
	for w := 0; w < procs; w++ {
		e.Go(fmt.Sprintf("p%d", w), func(p *Proc) {
			for i := 0; i < each; i++ {
				p.Sleep(Microsecond)
			}
		})
	}
	b.ResetTimer()
	e.Run()
}

// BenchmarkTypedEvents isolates the two event representations so a
// regression in either stays visible: wakeup events carry the process in the
// event itself (the Sleep/Wait/grant path, zero allocations), callback
// events carry a func() (the Schedule path).
func BenchmarkTypedEvents(b *testing.B) {
	b.Run("wakeup-only", func(b *testing.B) {
		// One process sleeping in a tight loop: every event is a proc wakeup.
		e := NewEnv(1)
		e.Go("sleeper", func(p *Proc) {
			for i := 0; i < b.N; i++ {
				p.Sleep(Microsecond)
			}
		})
		b.ReportAllocs()
		b.ResetTimer()
		e.Run()
	})
	b.Run("callback-heavy", func(b *testing.B) {
		// A self-rescheduling callback chain: every event runs a func().
		e := NewEnv(1)
		var tick func()
		fired := 0
		tick = func() {
			fired++
			if fired < b.N {
				e.Schedule(Microsecond, tick)
			}
		}
		b.ReportAllocs()
		b.ResetTimer()
		e.Schedule(Microsecond, tick)
		e.Run()
	})
	b.Run("mixed", func(b *testing.B) {
		// Completions fired from callbacks waking a waiting process: each
		// iteration exercises one callback event and one wakeup event.
		e := NewEnv(1)
		next := NewCompletion(e)
		e.Go("waiter", func(p *Proc) {
			for i := 0; i < b.N; i++ {
				c := next
				p.Wait(c)
				next = NewCompletion(e)
			}
		})
		var arm func()
		fired := 0
		arm = func() {
			fired++
			next.Fire()
			if fired < b.N {
				e.Schedule(Microsecond, arm)
			}
		}
		b.ReportAllocs()
		b.ResetTimer()
		e.Schedule(Microsecond, arm)
		e.Run()
	})
}

// BenchmarkResourceContention measures acquire/release under queueing.
func BenchmarkResourceContention(b *testing.B) {
	e := NewEnv(1)
	r := NewResource(e, "core", 4)
	const procs = 16
	each := b.N/procs + 1
	for w := 0; w < procs; w++ {
		e.Go(fmt.Sprintf("w%d", w), func(p *Proc) {
			for i := 0; i < each; i++ {
				p.Use(r, Microsecond)
			}
		})
	}
	b.ResetTimer()
	e.Run()
}
