package sim

import (
	"fmt"
	"testing"
)

// BenchmarkEventThroughput measures raw scheduler throughput: how many
// plain events the kernel fires per second of host time.
func BenchmarkEventThroughput(b *testing.B) {
	e := NewEnv(1)
	var tick func()
	fired := 0
	tick = func() {
		fired++
		if fired < b.N {
			e.Schedule(Microsecond, tick)
		}
	}
	b.ResetTimer()
	e.Schedule(Microsecond, tick)
	e.Run()
}

// BenchmarkProcessContextSwitch measures the coroutine handoff cost: one
// process sleeping is two channel operations per event.
func BenchmarkProcessContextSwitch(b *testing.B) {
	e := NewEnv(1)
	e.Go("sleeper", func(p *Proc) {
		for i := 0; i < b.N; i++ {
			p.Sleep(Microsecond)
		}
	})
	b.ResetTimer()
	e.Run()
}

// BenchmarkManyProcesses interleaves 64 sleeping processes.
func BenchmarkManyProcesses(b *testing.B) {
	e := NewEnv(1)
	const procs = 64
	each := b.N/procs + 1
	for w := 0; w < procs; w++ {
		e.Go(fmt.Sprintf("p%d", w), func(p *Proc) {
			for i := 0; i < each; i++ {
				p.Sleep(Microsecond)
			}
		})
	}
	b.ResetTimer()
	e.Run()
}

// BenchmarkResourceContention measures acquire/release under queueing.
func BenchmarkResourceContention(b *testing.B) {
	e := NewEnv(1)
	r := NewResource(e, "core", 4)
	const procs = 16
	each := b.N/procs + 1
	for w := 0; w < procs; w++ {
		e.Go(fmt.Sprintf("w%d", w), func(p *Proc) {
			for i := 0; i < each; i++ {
				p.Use(r, Microsecond)
			}
		})
	}
	b.ResetTimer()
	e.Run()
}
