package sim

import (
	"errors"
	"testing"
)

func TestCompletionFail(t *testing.T) {
	env := NewEnv(1)
	c := NewCompletion(env)
	if c.Err() != nil {
		t.Fatal("unfired completion has an error")
	}
	cause := errors.New("boom")
	var sawErrInCallback error
	callbackRan := false
	c.OnFire(func() {
		callbackRan = true
		sawErrInCallback = c.Err()
	})

	var waiterErr error
	env.Go("waiter", func(p *Proc) {
		p.Wait(c)
		waiterErr = c.Err()
	})
	env.Schedule(Millisecond, func() { c.Fail(cause) })
	env.Run()

	if !c.Fired() {
		t.Fatal("Fail did not fire the completion")
	}
	if !callbackRan {
		t.Fatal("OnFire callback did not run")
	}
	// OnFire callbacks run before waiters resume and must already see the
	// error — the buffer pool's failed-read uninstall depends on this order.
	if sawErrInCallback != cause {
		t.Fatalf("callback saw err %v, want %v", sawErrInCallback, cause)
	}
	if waiterErr != cause {
		t.Fatalf("waiter saw err %v, want %v", waiterErr, cause)
	}
	if c.FiredAt() != Time(Millisecond) {
		t.Fatalf("failed at %v, want 1ms", c.FiredAt())
	}
}

func TestCompletionFailNilPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Fail(nil) did not panic")
		}
	}()
	NewCompletion(NewEnv(1)).Fail(nil)
}

func TestLiveProcs(t *testing.T) {
	env := NewEnv(1)
	if env.LiveProcs() != 0 {
		t.Fatalf("fresh env has %d live procs", env.LiveProcs())
	}
	var during int
	env.Go("a", func(p *Proc) {
		during = p.Env().LiveProcs()
		p.Sleep(Millisecond)
	})
	env.Go("b", func(p *Proc) { p.Sleep(Microsecond) })
	env.Run()
	if during != 2 {
		t.Fatalf("LiveProcs during run = %d, want 2", during)
	}
	if env.LiveProcs() != 0 {
		t.Fatalf("LiveProcs after drain = %d, want 0", env.LiveProcs())
	}
}
