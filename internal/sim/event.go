package sim

// Completion is a one-shot event that processes can wait on and any context
// (process, device callback, event callback) can fire. It is the rendezvous
// used for asynchronous I/O: the issuer receives a *Completion when it
// submits a request and waits on it when — and only if — it needs the result.
//
// Waiting on an already-fired Completion returns immediately, which makes
// group waiting ("fire n, wait for all n in any order") trivial.
//
// A completion can also carry a failure: Fail(err) fires it with an error
// attached, which waiters read back through Err. This is how injected
// device faults propagate to the issuer without a second signalling path.
type Completion struct {
	env       *Env
	fired     bool
	at        Time
	err       error
	waiters   []*Proc
	callbacks []func()
}

// NewCompletion returns an unfired completion bound to e.
func NewCompletion(e *Env) *Completion {
	return &Completion{env: e}
}

// Fired reports whether the completion has fired.
func (c *Completion) Fired() bool { return c.fired }

// FiredAt returns the virtual time the completion fired. It panics if the
// completion has not fired.
func (c *Completion) FiredAt() Time {
	if !c.fired {
		panic("sim: FiredAt on unfired completion")
	}
	return c.at
}

// Fire marks the completion done at the current virtual time and schedules
// every waiter to resume. Firing twice panics: a completion represents a
// single asynchronous result.
func (c *Completion) Fire() {
	if c.fired {
		panic("sim: completion fired twice")
	}
	c.fired = true
	c.at = c.env.now
	waiters := c.waiters
	c.waiters = nil
	for _, p := range waiters {
		c.env.wake(p, 0)
	}
	callbacks := c.callbacks
	c.callbacks = nil
	for _, fn := range callbacks {
		fn()
	}
}

// Fail fires the completion with err attached: waiters resume as with Fire
// and read the error back through Err. Failing twice, or failing after a
// Fire, panics like a double Fire would.
func (c *Completion) Fail(err error) {
	if err == nil {
		panic("sim: Fail with nil error")
	}
	c.err = err
	c.Fire()
}

// Err reports the error the completion failed with, or nil if it fired
// normally (or has not fired yet).
func (c *Completion) Err() error { return c.err }

// OnFire registers fn to run (in event context, at the firing time) when c
// fires. If c has already fired, fn runs immediately.
func (c *Completion) OnFire(fn func()) {
	if c.fired {
		fn()
		return
	}
	c.callbacks = append(c.callbacks, fn)
}

// Wait suspends the process until c fires. If c has already fired, Wait
// returns immediately without yielding.
func (p *Proc) Wait(c *Completion) {
	if c.fired {
		return
	}
	c.waiters = append(c.waiters, p)
	p.park(parkCompletion, 0, "")
}

// WaitAll suspends the process until every completion in cs has fired.
func (p *Proc) WaitAll(cs []*Completion) {
	for _, c := range cs {
		p.Wait(c)
	}
}

// WaitGroup counts outstanding work items across processes, like
// sync.WaitGroup but in virtual time. Add and Done may be called from any
// simulation context; Wait only from process context.
type WaitGroup struct {
	env     *Env
	count   int
	waiters []*Proc
}

// NewWaitGroup returns an empty wait group bound to e.
func NewWaitGroup(e *Env) *WaitGroup {
	return &WaitGroup{env: e}
}

// Add adds delta (which may be negative) to the counter. The counter going
// negative panics. When the counter reaches zero, all waiters resume.
func (w *WaitGroup) Add(delta int) {
	w.count += delta
	if w.count < 0 {
		panic("sim: negative WaitGroup counter")
	}
	if w.count == 0 && len(w.waiters) > 0 {
		waiters := w.waiters
		w.waiters = nil
		for _, p := range waiters {
			w.env.wake(p, 0)
		}
	}
}

// Done decrements the counter by one.
func (w *WaitGroup) Done() { w.Add(-1) }

// WaitFor suspends the process until the counter is zero. If it is already
// zero, WaitFor returns immediately.
func (p *Proc) WaitFor(w *WaitGroup) {
	if w.count == 0 {
		return
	}
	w.waiters = append(w.waiters, p)
	p.park(parkWaitGroup, 0, "")
}
