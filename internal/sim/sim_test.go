package sim

import (
	"fmt"
	"testing"
	"testing/quick"
)

func TestClockStartsAtZero(t *testing.T) {
	e := NewEnv(1)
	if e.Now() != 0 {
		t.Fatalf("Now() = %d, want 0", e.Now())
	}
}

func TestSleepAdvancesClock(t *testing.T) {
	e := NewEnv(1)
	var woke Time
	e.Go("sleeper", func(p *Proc) {
		p.Sleep(5 * Millisecond)
		woke = p.Now()
	})
	end := e.Run()
	if woke != Time(5*Millisecond) {
		t.Errorf("woke at %v, want 5ms", Duration(woke))
	}
	if end != woke {
		t.Errorf("Run returned %v, want %v", end, woke)
	}
}

func TestSequentialSleeps(t *testing.T) {
	e := NewEnv(1)
	var times []Time
	e.Go("p", func(p *Proc) {
		for i := 0; i < 3; i++ {
			p.Sleep(Millisecond)
			times = append(times, p.Now())
		}
	})
	e.Run()
	want := []Time{Time(Millisecond), Time(2 * Millisecond), Time(3 * Millisecond)}
	for i := range want {
		if times[i] != want[i] {
			t.Errorf("wake %d at %v, want %v", i, times[i], want[i])
		}
	}
}

func TestNegativeSleepPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on negative sleep")
		}
	}()
	e := NewEnv(1)
	e.Go("p", func(p *Proc) { p.Sleep(-1) })
	e.Run()
}

func TestTwoProcessesInterleaveDeterministically(t *testing.T) {
	run := func() []string {
		e := NewEnv(7)
		var log []string
		e.Go("a", func(p *Proc) {
			for i := 0; i < 3; i++ {
				p.Sleep(2 * Millisecond)
				log = append(log, fmt.Sprintf("a@%v", Duration(p.Now())))
			}
		})
		e.Go("b", func(p *Proc) {
			for i := 0; i < 2; i++ {
				p.Sleep(3 * Millisecond)
				log = append(log, fmt.Sprintf("b@%v", Duration(p.Now())))
			}
		})
		e.Run()
		return log
	}
	first := run()
	for trial := 0; trial < 5; trial++ {
		got := run()
		if len(got) != len(first) {
			t.Fatalf("trial %d: %d events, want %d", trial, len(got), len(first))
		}
		for i := range first {
			if got[i] != first[i] {
				t.Fatalf("trial %d: event %d = %q, want %q", trial, i, got[i], first[i])
			}
		}
	}
}

func TestSimultaneousEventsFireInScheduleOrder(t *testing.T) {
	e := NewEnv(1)
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		e.Schedule(Millisecond, func() { order = append(order, i) })
	}
	e.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("order[%d] = %d, want %d", i, v, i)
		}
	}
}

func TestCompletionWaitAfterFire(t *testing.T) {
	e := NewEnv(1)
	c := NewCompletion(e)
	var waited Time = -1
	e.Go("firer", func(p *Proc) {
		p.Sleep(Millisecond)
		c.Fire()
	})
	e.Go("waiter", func(p *Proc) {
		p.Sleep(2 * Millisecond) // fires before we wait
		p.Wait(c)
		waited = p.Now()
	})
	e.Run()
	if waited != Time(2*Millisecond) {
		t.Errorf("late waiter resumed at %v, want 2ms (immediate)", Duration(waited))
	}
	if c.FiredAt() != Time(Millisecond) {
		t.Errorf("FiredAt = %v, want 1ms", Duration(c.FiredAt()))
	}
}

func TestCompletionWaitBeforeFire(t *testing.T) {
	e := NewEnv(1)
	c := NewCompletion(e)
	var waited Time = -1
	e.Go("waiter", func(p *Proc) {
		p.Wait(c)
		waited = p.Now()
	})
	e.Go("firer", func(p *Proc) {
		p.Sleep(4 * Millisecond)
		c.Fire()
	})
	e.Run()
	if waited != Time(4*Millisecond) {
		t.Errorf("waiter resumed at %v, want 4ms", Duration(waited))
	}
}

func TestCompletionMultipleWaiters(t *testing.T) {
	e := NewEnv(1)
	c := NewCompletion(e)
	woke := 0
	for i := 0; i < 5; i++ {
		e.Go(fmt.Sprintf("w%d", i), func(p *Proc) {
			p.Wait(c)
			woke++
		})
	}
	e.Go("firer", func(p *Proc) {
		p.Sleep(Millisecond)
		c.Fire()
	})
	e.Run()
	if woke != 5 {
		t.Errorf("woke = %d, want 5", woke)
	}
}

func TestCompletionDoubleFirePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on double fire")
		}
	}()
	e := NewEnv(1)
	c := NewCompletion(e)
	e.Go("p", func(p *Proc) {
		c.Fire()
		c.Fire()
	})
	e.Run()
}

func TestWaitAllWaitsForSlowest(t *testing.T) {
	e := NewEnv(1)
	var cs []*Completion
	for i := 1; i <= 4; i++ {
		c := NewCompletion(e)
		d := Duration(i) * Millisecond
		e.Schedule(d, c.Fire)
		cs = append(cs, c)
	}
	var done Time
	e.Go("p", func(p *Proc) {
		p.WaitAll(cs)
		done = p.Now()
	})
	e.Run()
	if done != Time(4*Millisecond) {
		t.Errorf("WaitAll returned at %v, want 4ms", Duration(done))
	}
}

func TestWaitGroup(t *testing.T) {
	e := NewEnv(1)
	wg := NewWaitGroup(e)
	var done Time = -1
	for i := 1; i <= 3; i++ {
		wg.Add(1)
		d := Duration(i) * Millisecond
		e.Go(fmt.Sprintf("w%d", i), func(p *Proc) {
			p.Sleep(d)
			wg.Done()
		})
	}
	e.Go("waiter", func(p *Proc) {
		p.WaitFor(wg)
		done = p.Now()
	})
	e.Run()
	if done != Time(3*Millisecond) {
		t.Errorf("WaitFor returned at %v, want 3ms", Duration(done))
	}
}

func TestWaitGroupAlreadyZero(t *testing.T) {
	e := NewEnv(1)
	wg := NewWaitGroup(e)
	ran := false
	e.Go("p", func(p *Proc) {
		p.WaitFor(wg)
		ran = true
	})
	e.Run()
	if !ran {
		t.Fatal("WaitFor on zero counter did not return")
	}
}

func TestWaitGroupNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on negative counter")
		}
	}()
	e := NewEnv(1)
	wg := NewWaitGroup(e)
	wg.Done()
}

func TestResourceSerializesWhenFull(t *testing.T) {
	e := NewEnv(1)
	r := NewResource(e, "core", 1)
	var ends []Time
	for i := 0; i < 3; i++ {
		e.Go(fmt.Sprintf("w%d", i), func(p *Proc) {
			p.Use(r, Millisecond)
			ends = append(ends, p.Now())
		})
	}
	e.Run()
	want := []Time{Time(Millisecond), Time(2 * Millisecond), Time(3 * Millisecond)}
	for i := range want {
		if ends[i] != want[i] {
			t.Errorf("worker %d finished at %v, want %v", i, ends[i], want[i])
		}
	}
}

func TestResourceParallelismMatchesCapacity(t *testing.T) {
	// 8 workers each needing 1ms of a 4-unit resource: two waves, 2ms total.
	e := NewEnv(1)
	r := NewResource(e, "core", 4)
	for i := 0; i < 8; i++ {
		e.Go(fmt.Sprintf("w%d", i), func(p *Proc) { p.Use(r, Millisecond) })
	}
	end := e.Run()
	if end != Time(2*Millisecond) {
		t.Errorf("8 workers on 4 cores ended at %v, want 2ms", Duration(end))
	}
}

func TestResourceFIFOOrder(t *testing.T) {
	e := NewEnv(1)
	r := NewResource(e, "core", 1)
	var order []int
	for i := 0; i < 5; i++ {
		i := i
		e.Go(fmt.Sprintf("w%d", i), func(p *Proc) {
			p.Acquire(r)
			order = append(order, i)
			p.Sleep(Millisecond)
			r.Release()
		})
	}
	e.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("grant order %v, want FIFO", order)
		}
	}
}

func TestResourceUtilization(t *testing.T) {
	e := NewEnv(1)
	r := NewResource(e, "core", 2)
	// One worker busy for the whole run on a 2-unit resource: 50% utilisation.
	e.Go("w", func(p *Proc) { p.Use(r, 10*Millisecond) })
	e.Run()
	if u := r.Utilization(); u < 0.49 || u > 0.51 {
		t.Errorf("utilization = %f, want ~0.5", u)
	}
}

func TestResourceOverReleasePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on over-release")
		}
	}()
	e := NewEnv(1)
	r := NewResource(e, "core", 1)
	r.Release()
}

func TestZeroCapacityResourcePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on zero capacity")
		}
	}()
	NewResource(NewEnv(1), "bad", 0)
}

func TestDeadlockDetected(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on deadlock")
		}
	}()
	e := NewEnv(1)
	c := NewCompletion(e) // never fired
	e.Go("stuck", func(p *Proc) { p.Wait(c) })
	e.Run()
}

func TestRunUntilStopsAtDeadline(t *testing.T) {
	e := NewEnv(1)
	ticks := 0
	e.Go("ticker", func(p *Proc) {
		for i := 0; i < 100; i++ {
			p.Sleep(Millisecond)
			ticks++
		}
	})
	drained := e.RunUntil(Time(10 * Millisecond))
	if drained {
		t.Error("RunUntil reported drained, want deadline cut-off")
	}
	if ticks != 10 {
		t.Errorf("ticks = %d, want 10", ticks)
	}
}

func TestScheduleIntoPastPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic scheduling into the past")
		}
	}()
	NewEnv(1).Schedule(-1, func() {})
}

func TestDurationString(t *testing.T) {
	cases := []struct {
		d    Duration
		want string
	}{
		{500, "500ns"},
		{1500, "1.50us"},
		{2500 * Microsecond, "2.500ms"},
		{3 * Second, "3.0000s"},
	}
	for _, c := range cases {
		if got := c.d.String(); got != c.want {
			t.Errorf("%d.String() = %q, want %q", int64(c.d), got, c.want)
		}
	}
}

// Property: for any set of sleep durations, every process wakes exactly at
// the cumulative sum of its sleeps, regardless of how many processes run.
func TestPropertySleepAccumulates(t *testing.T) {
	f := func(raw []uint16) bool {
		if len(raw) == 0 {
			return true
		}
		if len(raw) > 64 {
			raw = raw[:64]
		}
		e := NewEnv(42)
		var total Duration
		for _, r := range raw {
			total += Duration(r)
		}
		ok := true
		e.Go("p", func(p *Proc) {
			for _, r := range raw {
				p.Sleep(Duration(r))
			}
			ok = p.Now() == Time(total)
		})
		e.Run()
		return ok
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: a capacity-c resource with n identical jobs of length d always
// finishes at ceil(n/c)*d.
func TestPropertyResourceMakespan(t *testing.T) {
	f := func(nRaw, cRaw uint8) bool {
		n := int(nRaw%20) + 1
		c := int(cRaw%8) + 1
		e := NewEnv(1)
		r := NewResource(e, "core", c)
		for i := 0; i < n; i++ {
			e.Go(fmt.Sprintf("w%d", i), func(p *Proc) { p.Use(r, Millisecond) })
		}
		end := e.Run()
		waves := (n + c - 1) / c
		return end == Time(Duration(waves)*Millisecond)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
