package sim

import "fmt"

// Resource is a counted resource with FIFO admission, used to model CPU
// cores: a worker acquires a core to burn compute time and releases it while
// blocked on I/O. Capacity is fixed at construction.
type Resource struct {
	env      *Env
	name     string
	capacity int
	inUse    int
	queue    []*resourceWaiter

	// busyTime integrates (units in use) × (time), for utilisation reports.
	busyTime     Duration
	lastChange   Time
	acquisitions int64
}

type resourceWaiter struct {
	proc    *Proc
	granted bool
}

// NewResource returns a resource with the given capacity (> 0).
func NewResource(e *Env, name string, capacity int) *Resource {
	if capacity <= 0 {
		panic(fmt.Sprintf("sim: resource %q with capacity %d", name, capacity))
	}
	return &Resource{env: e, name: name, capacity: capacity}
}

// Capacity returns the total number of units.
func (r *Resource) Capacity() int { return r.capacity }

// InUse returns the number of units currently held.
func (r *Resource) InUse() int { return r.inUse }

// QueueLen returns the number of processes waiting for a unit.
func (r *Resource) QueueLen() int { return len(r.queue) }

func (r *Resource) account() {
	now := r.env.now
	r.busyTime += Duration(now-r.lastChange) * Duration(r.inUse)
	r.lastChange = now
}

// Utilization reports the time-averaged fraction of capacity in use since
// the start of the simulation.
func (r *Resource) Utilization() float64 {
	if r.env.now == 0 {
		return 0
	}
	r.account()
	return float64(r.busyTime) / (float64(r.env.now) * float64(r.capacity))
}

// Acquire blocks the process until a unit of r is available and takes it.
// Units are granted in FIFO order.
func (p *Proc) Acquire(r *Resource) {
	if r.inUse < r.capacity && len(r.queue) == 0 {
		r.account()
		r.inUse++
		r.acquisitions++
		return
	}
	w := &resourceWaiter{proc: p}
	r.queue = append(r.queue, w)
	p.park(parkResource, 0, r.name)
	if !w.granted {
		panic("sim: resumed without grant from resource " + r.name)
	}
}

// Release returns one unit of r, waking the longest-waiting process if any.
// It may be called from any simulation context. Releasing more units than
// were acquired panics.
func (r *Resource) Release() {
	if r.inUse <= 0 {
		panic("sim: release of idle resource " + r.name)
	}
	if len(r.queue) > 0 {
		// Hand the unit directly to the next waiter: inUse is unchanged.
		w := r.queue[0]
		r.queue = r.queue[1:]
		w.granted = true
		r.acquisitions++
		r.env.wake(w.proc, 0)
		return
	}
	r.account()
	r.inUse--
}

// Use acquires a unit, holds it for d of virtual time, and releases it.
// This is the common "burn CPU for d" idiom.
func (p *Proc) Use(r *Resource, d Duration) {
	p.Acquire(r)
	p.Sleep(d)
	r.Release()
}
