// Package sim implements a deterministic discrete-event simulation (DES)
// kernel with coroutine-style processes.
//
// All database operators, calibration drivers, and storage devices in this
// repository run in virtual time on top of this kernel: the clock jumps from
// event to event, exactly one process executes at a time, and reruns with the
// same seed are bit-identical. This is what lets a parameter sweep that
// models minutes of device time finish in milliseconds of host time.
//
// The programming model mirrors classic process-oriented simulators
// (SimPy, CSIM): a process is an ordinary function running on its own
// goroutine that blocks in virtual time via Proc.Sleep, Proc.Wait, or
// Proc.Acquire. The scheduler guarantees mutual exclusion between
// processes, so simulation state needs no locking.
package sim

import (
	"container/heap"
	"fmt"
	"math/rand"
	"sort"
)

// Time is a point in virtual time, in nanoseconds since the start of the
// simulation.
type Time int64

// Duration is a span of virtual time in nanoseconds.
type Duration int64

// Common durations, mirroring the time package.
const (
	Nanosecond  Duration = 1
	Microsecond          = 1000 * Nanosecond
	Millisecond          = 1000 * Microsecond
	Second               = 1000 * Millisecond
)

// Micros reports d as a floating-point number of microseconds.
func (d Duration) Micros() float64 { return float64(d) / float64(Microsecond) }

// Millis reports d as a floating-point number of milliseconds.
func (d Duration) Millis() float64 { return float64(d) / float64(Millisecond) }

// Seconds reports d as a floating-point number of seconds.
func (d Duration) Seconds() float64 { return float64(d) / float64(Second) }

func (d Duration) String() string {
	switch {
	case d < Microsecond:
		return fmt.Sprintf("%dns", int64(d))
	case d < Millisecond:
		return fmt.Sprintf("%.2fus", d.Micros())
	case d < Second:
		return fmt.Sprintf("%.3fms", d.Millis())
	default:
		return fmt.Sprintf("%.4fs", d.Seconds())
	}
}

// Sub reports the duration t - u.
func (t Time) Sub(u Time) Duration { return Duration(t - u) }

// Add reports the time t + d.
func (t Time) Add(d Duration) Time { return t + Time(d) }

// event is a scheduled callback. Events with equal times fire in the order
// they were scheduled (seq breaks ties), which keeps the simulation
// deterministic.
type event struct {
	at  Time
	seq uint64
	fn  func()
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(*event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return e
}

// Env is a simulation environment: a virtual clock, an event queue, and the
// set of live processes. An Env is not safe for concurrent use from host
// goroutines; all interaction happens from process context or between calls
// to Run.
type Env struct {
	now    Time
	events eventHeap
	seq    uint64
	rng    *rand.Rand

	yield  chan struct{} // signalled when the running process parks or exits
	live   map[*Proc]struct{}
	parked map[*Proc]string // parked process -> wait reason, for deadlock reports

	// panicked carries a panic raised inside a process goroutine so that it
	// can be re-raised on the scheduler goroutine, where callers of Run can
	// recover it.
	panicked interface{}
}

// NewEnv returns an environment whose clock reads zero and whose random
// source is seeded with seed. Two environments built with the same seed and
// driven by the same process logic produce identical event sequences.
func NewEnv(seed int64) *Env {
	return &Env{
		rng:    rand.New(rand.NewSource(seed)),
		yield:  make(chan struct{}),
		live:   make(map[*Proc]struct{}),
		parked: make(map[*Proc]string),
	}
}

// Now reports the current virtual time.
func (e *Env) Now() Time { return e.now }

// Rand returns the environment's deterministic random source.
func (e *Env) Rand() *rand.Rand { return e.rng }

// Schedule registers fn to run at time e.Now()+d. It may be called from
// process context or from another event callback. Scheduling into the past
// panics: it would make the clock non-monotonic.
func (e *Env) Schedule(d Duration, fn func()) {
	if d < 0 {
		panic(fmt.Sprintf("sim: scheduling %v into the past", d))
	}
	e.seq++
	heap.Push(&e.events, &event{at: e.now.Add(d), seq: e.seq, fn: fn})
}

// Proc is a simulation process: a goroutine that runs under the scheduler's
// control and blocks in virtual time. Methods on Proc must only be called
// from the process's own goroutine.
type Proc struct {
	env    *Env
	name   string
	resume chan struct{}
	done   bool
}

// Env returns the environment the process runs in.
func (p *Proc) Env() *Env { return p.env }

// Name returns the diagnostic name the process was spawned with.
func (p *Proc) Name() string { return p.name }

// Now reports the current virtual time.
func (p *Proc) Now() Time { return p.env.now }

// Go spawns fn as a new process named name. The process starts at the
// current virtual time, after the caller yields. Go may be called before Run
// or from any process or event context.
func (e *Env) Go(name string, fn func(p *Proc)) *Proc {
	p := &Proc{env: e, name: name, resume: make(chan struct{})}
	e.live[p] = struct{}{}
	e.Schedule(0, func() {
		go func() {
			<-p.resume // wait for the scheduler to hand over control
			defer func() {
				if r := recover(); r != nil {
					e.panicked = r
				}
				p.done = true
				delete(e.live, p)
				e.yield <- struct{}{}
			}()
			fn(p)
		}()
		e.handoff(p, "start")
	})
	return p
}

// handoff transfers control to p and blocks until p parks or exits. It must
// run on the scheduler's goroutine (inside an event callback).
func (e *Env) handoff(p *Proc, why string) {
	delete(e.parked, p)
	_ = why
	p.resume <- struct{}{}
	<-e.yield
	if r := e.panicked; r != nil {
		e.panicked = nil
		panic(r)
	}
}

// park suspends the calling process, recording why for deadlock reports, and
// returns control to the scheduler until the process is resumed.
func (p *Proc) park(why string) {
	p.env.parked[p] = why
	p.env.yield <- struct{}{}
	<-p.resume
}

// Sleep suspends the process for d of virtual time.
func (p *Proc) Sleep(d Duration) {
	if d < 0 {
		panic(fmt.Sprintf("sim: %s sleeping %v", p.name, d))
	}
	e := p.env
	e.Schedule(d, func() { e.handoff(p, "sleep") })
	p.park(fmt.Sprintf("sleeping %v", d))
}

// Run drives the simulation until the event queue is empty. It returns the
// final virtual time. If processes are still parked when the queue drains,
// the simulation has deadlocked and Run panics with the parked processes'
// names and wait reasons.
func (e *Env) Run() Time {
	for len(e.events) > 0 {
		ev := heap.Pop(&e.events).(*event)
		if ev.at < e.now {
			panic("sim: event queue went backwards")
		}
		e.now = ev.at
		ev.fn()
	}
	if len(e.parked) > 0 {
		var stuck []string
		for p, why := range e.parked {
			stuck = append(stuck, fmt.Sprintf("%s (%s)", p.name, why))
		}
		sort.Strings(stuck)
		panic(fmt.Sprintf("sim: deadlock at t=%v: %d process(es) still waiting: %v",
			Duration(e.now), len(stuck), stuck))
	}
	return e.now
}

// RunUntil drives the simulation until the event queue is empty or the clock
// would pass deadline. Events at exactly deadline still fire. It reports
// whether the queue drained (true) or the deadline cut the run short (false).
func (e *Env) RunUntil(deadline Time) bool {
	for len(e.events) > 0 {
		if e.events[0].at > deadline {
			return false
		}
		ev := heap.Pop(&e.events).(*event)
		e.now = ev.at
		ev.fn()
	}
	return true
}
