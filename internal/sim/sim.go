// Package sim implements a deterministic discrete-event simulation (DES)
// kernel with coroutine-style processes.
//
// All database operators, calibration drivers, and storage devices in this
// repository run in virtual time on top of this kernel: the clock jumps from
// event to event, exactly one process executes at a time, and reruns with the
// same seed are bit-identical. This is what lets a parameter sweep that
// models minutes of device time finish in milliseconds of host time.
//
// The programming model mirrors classic process-oriented simulators
// (SimPy, CSIM): a process is an ordinary function running on its own
// goroutine that blocks in virtual time via Proc.Sleep, Proc.Wait, or
// Proc.Acquire. The scheduler guarantees mutual exclusion between
// processes, so simulation state needs no locking.
package sim

import (
	"fmt"
	"math/rand"
	"sort"
)

// Time is a point in virtual time, in nanoseconds since the start of the
// simulation.
type Time int64

// Duration is a span of virtual time in nanoseconds.
type Duration int64

// Common durations, mirroring the time package.
const (
	Nanosecond  Duration = 1
	Microsecond          = 1000 * Nanosecond
	Millisecond          = 1000 * Microsecond
	Second               = 1000 * Millisecond
)

// Micros reports d as a floating-point number of microseconds.
func (d Duration) Micros() float64 { return float64(d) / float64(Microsecond) }

// Millis reports d as a floating-point number of milliseconds.
func (d Duration) Millis() float64 { return float64(d) / float64(Millisecond) }

// Seconds reports d as a floating-point number of seconds.
func (d Duration) Seconds() float64 { return float64(d) / float64(Second) }

func (d Duration) String() string {
	switch {
	case d < Microsecond:
		return fmt.Sprintf("%dns", int64(d))
	case d < Millisecond:
		return fmt.Sprintf("%.2fus", d.Micros())
	case d < Second:
		return fmt.Sprintf("%.3fms", d.Millis())
	default:
		return fmt.Sprintf("%.4fs", d.Seconds())
	}
}

// Sub reports the duration t - u.
func (t Time) Sub(u Time) Duration { return Duration(t - u) }

// Add reports the time t + d.
func (t Time) Add(d Duration) Time { return t + Time(d) }

// event is one scheduled occurrence. Events with equal times fire in the
// order they were scheduled (seq breaks ties), which keeps the simulation
// deterministic. An event either resumes a parked process (proc != nil) —
// the common Sleep/Wait/grant case, which carries the process in the event
// itself and allocates nothing — or runs a callback (fn != nil).
type event struct {
	at   Time
	seq  uint64
	proc *Proc
	fn   func()
}

// eventQueue is a value-typed binary min-heap ordered by (at, seq). Keeping
// events by value in one slice avoids the per-event heap allocation and the
// interface{} boxing of container/heap, and the slice's storage is reused
// across Schedule calls as the queue grows and drains. Because (at, seq) is
// a total order (seq is unique), any correct heap pops events in exactly the
// same sequence, so swapping the implementation preserves bit-identical
// simulations.
type eventQueue []event

func (q eventQueue) less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}

func (q *eventQueue) push(ev event) {
	h := append(*q, ev)
	*q = h
	i := len(h) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !h.less(i, parent) {
			break
		}
		h[i], h[parent] = h[parent], h[i]
		i = parent
	}
}

func (q *eventQueue) pop() event {
	h := *q
	top := h[0]
	n := len(h) - 1
	h[0] = h[n]
	h[n] = event{} // release the callback for GC before shrinking
	h = h[:n]
	*q = h
	i := 0
	for {
		child := 2*i + 1
		if child >= n {
			break
		}
		if r := child + 1; r < n && h.less(r, child) {
			child = r
		}
		if !h.less(child, i) {
			break
		}
		h[i], h[child] = h[child], h[i]
		i = child
	}
	return top
}

// Env is a simulation environment: a virtual clock, an event queue, and the
// set of live processes. An Env is not safe for concurrent use from host
// goroutines; all interaction happens from process context or between calls
// to Run.
type Env struct {
	now    Time
	events eventQueue
	seq    uint64
	rng    *rand.Rand

	yield   chan struct{} // signalled when the running process parks or exits
	live    map[*Proc]struct{}
	nParked int // live processes currently parked, for deadlock detection

	// panicked carries a panic raised inside a process goroutine so that it
	// can be re-raised on the scheduler goroutine, where callers of Run can
	// recover it.
	panicked interface{}
}

// NewEnv returns an environment whose clock reads zero and whose random
// source is seeded with seed. Two environments built with the same seed and
// driven by the same process logic produce identical event sequences.
func NewEnv(seed int64) *Env {
	return &Env{
		rng:   rand.New(rand.NewSource(seed)),
		yield: make(chan struct{}),
		live:  make(map[*Proc]struct{}),
	}
}

// Now reports the current virtual time.
func (e *Env) Now() Time { return e.now }

// LiveProcs reports how many spawned processes have not yet exited —
// running, parked, or scheduled to start. After a clean Run it is zero;
// test harnesses assert that to catch leaked simulation processes, the way
// goleak catches leaked goroutines.
func (e *Env) LiveProcs() int { return len(e.live) }

// Rand returns the environment's deterministic random source.
func (e *Env) Rand() *rand.Rand { return e.rng }

// Schedule registers fn to run at time e.Now()+d. It may be called from
// process context or from another event callback. Scheduling into the past
// panics: it would make the clock non-monotonic.
func (e *Env) Schedule(d Duration, fn func()) {
	if d < 0 {
		panic(fmt.Sprintf("sim: scheduling %v into the past", d))
	}
	e.seq++
	e.events.push(event{at: e.now.Add(d), seq: e.seq, fn: fn})
}

// wake schedules p to be handed control at e.Now()+d. This is the kernel's
// internal fast path: the process rides in the event itself, so the common
// sleep/completion/grant wakeups allocate no closure.
func (e *Env) wake(p *Proc, d Duration) {
	e.seq++
	e.events.push(event{at: e.now.Add(d), seq: e.seq, proc: p})
}

// parkKind says why a process is parked. The human-readable reason is only
// materialised (parkReason) when a deadlock report is actually built, so
// parking costs no allocation on the happy path.
type parkKind uint8

const (
	parkNone parkKind = iota
	parkSleep
	parkCompletion
	parkWaitGroup
	parkResource
)

// Proc is a simulation process: a goroutine that runs under the scheduler's
// control and blocks in virtual time. Methods on Proc must only be called
// from the process's own goroutine.
type Proc struct {
	env    *Env
	name   string
	resume chan struct{}
	done   bool

	parked    bool
	parkKind  parkKind
	parkDur   Duration // parkSleep: the sleep length
	parkExtra string   // parkResource: the resource name
}

// Env returns the environment the process runs in.
func (p *Proc) Env() *Env { return p.env }

// Name returns the diagnostic name the process was spawned with.
func (p *Proc) Name() string { return p.name }

// Now reports the current virtual time.
func (p *Proc) Now() Time { return p.env.now }

// parkReason renders why the process is parked, for deadlock reports.
func (p *Proc) parkReason() string {
	switch p.parkKind {
	case parkSleep:
		return fmt.Sprintf("sleeping %v", p.parkDur)
	case parkCompletion:
		return "completion"
	case parkWaitGroup:
		return "waitgroup"
	case parkResource:
		return "resource " + p.parkExtra
	default:
		return "unknown"
	}
}

// Go spawns fn as a new process named name. The process starts at the
// current virtual time, after the caller yields. Go may be called before Run
// or from any process or event context.
func (e *Env) Go(name string, fn func(p *Proc)) *Proc {
	p := &Proc{env: e, name: name, resume: make(chan struct{})}
	e.live[p] = struct{}{}
	e.Schedule(0, func() {
		go func() {
			<-p.resume // wait for the scheduler to hand over control
			defer func() {
				if r := recover(); r != nil {
					e.panicked = r
				}
				p.done = true
				delete(e.live, p)
				e.yield <- struct{}{}
			}()
			fn(p)
		}()
		e.handoff(p)
	})
	return p
}

// handoff transfers control to p and blocks until p parks or exits. It must
// run on the scheduler's goroutine (inside an event callback).
func (e *Env) handoff(p *Proc) {
	if p.parked {
		p.parked = false
		p.parkKind = parkNone
		e.nParked--
	}
	p.resume <- struct{}{}
	<-e.yield
	if r := e.panicked; r != nil {
		e.panicked = nil
		panic(r)
	}
}

// park suspends the calling process, recording a typed wait reason for
// deadlock reports, and returns control to the scheduler until the process
// is resumed.
func (p *Proc) park(kind parkKind, d Duration, extra string) {
	p.parked = true
	p.parkKind = kind
	p.parkDur = d
	p.parkExtra = extra
	p.env.nParked++
	p.env.yield <- struct{}{}
	<-p.resume
}

// Sleep suspends the process for d of virtual time.
func (p *Proc) Sleep(d Duration) {
	if d < 0 {
		panic(fmt.Sprintf("sim: %s sleeping %v", p.name, d))
	}
	p.env.wake(p, d)
	p.park(parkSleep, d, "")
}

// step advances the clock to ev and fires it.
func (e *Env) step(ev event) {
	if ev.at < e.now {
		panic("sim: event queue went backwards")
	}
	e.now = ev.at
	if ev.proc != nil {
		e.handoff(ev.proc)
		return
	}
	ev.fn()
}

// checkDeadlock panics with the parked processes' names and wait reasons if
// any process is still parked once the event queue has drained.
func (e *Env) checkDeadlock() {
	if e.nParked == 0 {
		return
	}
	var stuck []string
	for p := range e.live {
		if p.parked {
			stuck = append(stuck, fmt.Sprintf("%s (%s)", p.name, p.parkReason()))
		}
	}
	sort.Strings(stuck)
	panic(fmt.Sprintf("sim: deadlock at t=%v: %d process(es) still waiting: %v",
		Duration(e.now), len(stuck), stuck))
}

// Run drives the simulation until the event queue is empty. It returns the
// final virtual time. If processes are still parked when the queue drains,
// the simulation has deadlocked and Run panics with the parked processes'
// names and wait reasons.
func (e *Env) Run() Time {
	for len(e.events) > 0 {
		e.step(e.events.pop())
	}
	e.checkDeadlock()
	return e.now
}

// RunUntil drives the simulation until the event queue is empty or the clock
// would pass deadline. Events at exactly deadline still fire. It reports
// whether the queue drained (true) or the deadline cut the run short (false).
// Like Run, it enforces clock monotonicity and panics with a deadlock report
// if the queue drains while processes are still parked.
func (e *Env) RunUntil(deadline Time) bool {
	for len(e.events) > 0 {
		if e.events[0].at > deadline {
			return false
		}
		e.step(e.events.pop())
	}
	e.checkDeadlock()
	return true
}
